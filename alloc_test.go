// Allocation-regression tests: the per-sample hot path of every detector
// must be zero-allocation in steady state (ISSUE 1 tentpole). A regression
// here silently reintroduces GC pressure into the paper's "negligible
// overhead" claim (Table 3), so these are hard assertions, not benchmarks.
package dpd_test

import (
	"testing"

	"dpd"
)

func TestEventDetectorFeedSteadyStateAllocFree(t *testing.T) {
	det, err := dpd.NewEventDetector(dpd.Config{Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past every lag window so all code paths are steady-state.
	for i := 0; i < 3*256; i++ {
		det.Feed(int64(i % 7))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		det.Feed(int64(i % 7))
		i++
	}); n != 0 {
		t.Fatalf("EventDetector.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestMagnitudeDetectorFeedSteadyStateAllocFree(t *testing.T) {
	det, err := dpd.NewMagnitudeDetector(dpd.Config{Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		det.Feed(float64(i%44) * 0.5)
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		det.Feed(float64(i%44) * 0.5)
		i++
	}); n != 0 {
		t.Fatalf("MagnitudeDetector.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestMultiScaleDetectorFeedSteadyStateAllocFree(t *testing.T) {
	ms, err := dpd.NewMultiScaleDetector(nil, dpd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm past the largest ladder window so every level is awake.
	for i := 0; i < 3*1024; i++ {
		ms.Feed(int64(i % 12))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		ms.Feed(int64(i % 12))
		i++
	}); n != 0 {
		t.Fatalf("MultiScaleDetector.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestMultiScaleDetectorBatchPathAllocFree(t *testing.T) {
	ms, err := dpd.NewMultiScaleDetector(nil, dpd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int64, 256)
	for i := range batch {
		batch[i] = int64(i % 12)
	}
	var dst []dpd.MultiResult
	// First batches allocate dst and its PerLevel backing; afterwards the
	// recycled dst must make FeedAll fully allocation-free.
	for i := 0; i < 16; i++ {
		dst = ms.FeedAll(batch, dst)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = ms.FeedAll(batch, dst)
	}); n != 0 {
		t.Fatalf("MultiScaleDetector.FeedAll allocates %.1f objects/op with recycled dst, want 0", n)
	}
}

func TestPoolFeedBatchSteadyStateAllocFree(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const streams = 512
	batch := make([]dpd.KeyedSample, streams)
	for i := range batch {
		batch[i].Key = uint64(i)
	}
	// Warm past window+lag fill so every stream is locked and every
	// staging buffer, freelist and map bucket has reached steady state.
	round := 0
	feed := func() {
		v := int64(round % 8)
		for j := range batch {
			batch[j].Value = v
		}
		p.FeedBatch(batch)
		round++
	}
	for round < 3*64 {
		feed()
	}
	if n := testing.AllocsPerRun(100, feed); n != 0 {
		t.Fatalf("Pool.FeedBatch allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestPoolFeedSteadyStateAllocFree(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3*64; i++ {
		p.Feed(7, int64(i%5))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		p.Feed(7, int64(i%5))
		i++
	}); n != 0 {
		t.Fatalf("Pool.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestPoolSnapshotRecycledDstAllocFree(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 32}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	batch := make([]dpd.KeyedSample, 128)
	for i := range batch {
		batch[i] = dpd.KeyedSample{Key: uint64(i), Value: int64(i % 4)}
	}
	p.FeedBatch(batch)
	var dst []dpd.StreamStat
	dst = p.Snapshot(dst)
	if n := testing.AllocsPerRun(100, func() {
		dst = p.Snapshot(dst)
	}); n != 0 {
		t.Fatalf("Pool.Snapshot allocates %.1f objects/op with recycled dst, want 0", n)
	}
}

func TestDPDPredictAllocFree(t *testing.T) {
	d := dpd.NewDPD()
	for i := 0; i < 1100; i++ {
		d.Feed(int64(i % 5))
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := d.Predict(); !ok {
			t.Fatal("no prediction despite lock")
		}
	}); n != 0 {
		t.Fatalf("DPD.Predict allocates %.1f objects/op, want 0", n)
	}
}

func TestDPDBatchPathAllocFree(t *testing.T) {
	d := dpd.NewDPD()
	batch := make([]int64, 256)
	for i := range batch {
		batch[i] = int64(i % 9)
	}
	var dst []dpd.Result
	for i := 0; i < 16; i++ {
		dst = d.FeedAll(batch, dst)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = d.FeedAll(batch, dst)
	}); n != 0 {
		t.Fatalf("DPD.FeedAll allocates %.1f objects/op with recycled dst, want 0", n)
	}
}
