// Allocation-regression tests: the per-sample hot path of every detector
// must be zero-allocation in steady state (ISSUE 1 tentpole). A regression
// here silently reintroduces GC pressure into the paper's "negligible
// overhead" claim (Table 3), so these are hard assertions, not benchmarks.
package dpd_test

import (
	"testing"
	"time"

	"dpd"
	"dpd/internal/apps"
	"dpd/internal/core"
	"dpd/internal/obs"
	"dpd/internal/server"
	"dpd/internal/wire"
)

func TestEventDetectorFeedSteadyStateAllocFree(t *testing.T) {
	det, err := dpd.NewEventDetector(dpd.Config{Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past every lag window so all code paths are steady-state.
	for i := 0; i < 3*256; i++ {
		det.Feed(int64(i % 7))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		det.Feed(int64(i % 7))
		i++
	}); n != 0 {
		t.Fatalf("EventDetector.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestMagnitudeDetectorFeedSteadyStateAllocFree(t *testing.T) {
	det, err := dpd.NewMagnitudeDetector(dpd.Config{Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		det.Feed(float64(i%44) * 0.5)
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		det.Feed(float64(i%44) * 0.5)
		i++
	}); n != 0 {
		t.Fatalf("MagnitudeDetector.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestMultiScaleDetectorFeedSteadyStateAllocFree(t *testing.T) {
	ms, err := dpd.NewMultiScaleDetector(nil, dpd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm past the largest ladder window so every level is awake.
	for i := 0; i < 3*1024; i++ {
		ms.Feed(int64(i % 12))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		ms.Feed(int64(i % 12))
		i++
	}); n != 0 {
		t.Fatalf("MultiScaleDetector.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestMultiScaleDetectorBatchPathAllocFree(t *testing.T) {
	ms, err := dpd.NewMultiScaleDetector(nil, dpd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]int64, 256)
	for i := range batch {
		batch[i] = int64(i % 12)
	}
	var dst []dpd.MultiResult
	// First batches allocate dst and its PerLevel backing; afterwards the
	// recycled dst must make FeedAll fully allocation-free.
	for i := 0; i < 16; i++ {
		dst = ms.FeedAll(batch, dst)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = ms.FeedAll(batch, dst)
	}); n != 0 {
		t.Fatalf("MultiScaleDetector.FeedAll allocates %.1f objects/op with recycled dst, want 0", n)
	}
}

func TestPoolFeedBatchSteadyStateAllocFree(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const streams = 512
	batch := make([]dpd.KeyedSample, streams)
	for i := range batch {
		batch[i].Key = uint64(i)
	}
	// Warm past window+lag fill so every stream is locked and every
	// staging buffer, freelist and map bucket has reached steady state.
	round := 0
	feed := func() {
		v := int64(round % 8)
		for j := range batch {
			batch[j].Value = v
		}
		p.FeedBatch(batch)
		round++
	}
	for round < 3*64 {
		feed()
	}
	if n := testing.AllocsPerRun(100, feed); n != 0 {
		t.Fatalf("Pool.FeedBatch allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestPoolFeedSteadyStateAllocFree(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3*64; i++ {
		p.Feed(7, int64(i%5))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		p.Feed(7, int64(i%5))
		i++
	}); n != 0 {
		t.Fatalf("Pool.Feed allocates %.1f objects/op in steady state, want 0", n)
	}
}

func TestPoolSnapshotRecycledDstAllocFree(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 32}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	batch := make([]dpd.KeyedSample, 128)
	for i := range batch {
		batch[i] = dpd.KeyedSample{Key: uint64(i), Value: int64(i % 4)}
	}
	p.FeedBatch(batch)
	var dst []dpd.StreamStat
	dst = p.Snapshot(dst)
	if n := testing.AllocsPerRun(100, func() {
		dst = p.Snapshot(dst)
	}); n != 0 {
		t.Fatalf("Pool.Snapshot allocates %.1f objects/op with recycled dst, want 0", n)
	}
}

func TestDPDPredictAllocFree(t *testing.T) {
	d := dpd.NewDPD()
	for i := 0; i < 1100; i++ {
		d.Feed(int64(i % 5))
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := d.Predict(); !ok {
			t.Fatal("no prediction despite lock")
		}
	}); n != 0 {
		t.Fatalf("DPD.Predict allocates %.1f objects/op, want 0", n)
	}
}

func TestDPDBatchPathAllocFree(t *testing.T) {
	d := dpd.NewDPD()
	batch := make([]int64, 256)
	for i := range batch {
		batch[i] = int64(i % 9)
	}
	var dst []dpd.Result
	for i := 0; i < 16; i++ {
		dst = d.FeedAll(batch, dst)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = d.FeedAll(batch, dst)
	}); n != 0 {
		t.Fatalf("DPD.FeedAll allocates %.1f objects/op with recycled dst, want 0", n)
	}
}

// TestCheckpointReusedBufferAllocFree: serializing the event engine
// into a recycled buffer is 0 allocs/op, so a serving loop can
// checkpoint periodically without disturbing its allocation-free feed
// path (ISSUE 4: warm restarts must not cost GC pressure while live).
func TestCheckpointReusedBufferAllocFree(t *testing.T) {
	det := dpd.Must(dpd.WithWindow(256))
	for i := 0; i < 3*256; i++ {
		det.Feed(dpd.EventSample(int64(i % 7)))
	}
	buf, err := dpd.AppendCheckpoint(det, nil)
	if err != nil {
		t.Fatal(err)
	}
	var encErr error
	if n := testing.AllocsPerRun(1000, func() {
		buf, encErr = dpd.AppendCheckpoint(det, buf[:0])
	}); n != 0 {
		t.Fatalf("AppendCheckpoint into a reused buffer allocates %.1f objects/op, want 0", n)
	}
	if encErr != nil {
		t.Fatal(encErr)
	}
}

// TestPoolFeedBatchAllocFreeAcrossRebalance: the pool's batch feed path
// returns to 0 allocs/op immediately after a live Rebalance — migrated
// streams land pre-inserted in the new shard maps and the batch staging
// buffers keep their warmed capacities across shard-count changes.
// (testing.AllocsPerRun reads the global allocation counter, so the
// Rebalance calls — which legitimately allocate during migration — run
// between measurements, not inside them; the concurrent-correctness
// side is covered by TestPoolRebalanceUnderConcurrentFeeders in
// internal/pool under -race.)
func TestPoolFeedBatchAllocFreeAcrossRebalance(t *testing.T) {
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const streams = 256
	batch := make([]dpd.KeyedSample, streams)
	for i := range batch {
		batch[i].Key = uint64(i)
	}
	round := 0
	feed := func() {
		v := int64(round % 8)
		for j := range batch {
			batch[j].Value = v
		}
		p.FeedBatch(batch)
		round++
	}
	warm := func(rounds int) {
		for i := 0; i < rounds; i++ {
			feed()
		}
	}
	warm(3 * 64)
	// Visit both shard shapes once so each shape's staging buffers have
	// grown to steady state.
	for _, n := range []int{6, 4, 6} {
		if err := p.Rebalance(n); err != nil {
			t.Fatal(err)
		}
		warm(4)
	}
	if n := testing.AllocsPerRun(100, feed); n != 0 {
		t.Fatalf("FeedBatch allocates %.1f objects/op at 6 shards after rebalance, want 0", n)
	}
	if err := p.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, feed); n != 0 {
		t.Fatalf("FeedBatch allocates %.1f objects/op immediately after rebalancing back to 4 shards, want 0", n)
	}
}

// TestIngestFrameDecodeAllocFree: the serving layer's frame decode path
// is 0 allocs/op in steady state (ISSUE 5) — a reused Frame recycles its
// sample and read buffers, so a connection decoding batch frames adds no
// GC pressure on top of the pool's allocation-free feed path. Both batch
// kinds and the small control frames are covered.
func TestIngestFrameDecodeAllocFree(t *testing.T) {
	var enc server.Enc
	strip := func(frame []byte) []byte {
		var d wire.Dec
		d.Reset(frame)
		d.Uvarint()
		return frame[d.Offset():]
	}
	events := make([]int64, 256)
	mags := make([]float64, 256)
	for i := range events {
		events[i] = int64(i % 9)
		mags[i] = float64(i % 9)
	}
	payloads := [][]byte{
		strip(enc.AppendEventBatch(nil, 42, events)),
		strip((&server.Enc{}).AppendMagnitudeBatch(nil, 43, mags)),
		strip((&server.Enc{}).AppendPing(nil, 7)),
	}
	var f server.Frame
	for _, p := range payloads {
		if err := server.DecodeFrame(p, &f); err != nil { // warm the buffers
			t.Fatal(err)
		}
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		if err := server.DecodeFrame(payloads[i%len(payloads)], &f); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("ingest frame decode allocates %.1f objects/op with a reused Frame, want 0", n)
	}
}

// TestPaperBenchColdStartAllocFree gates the cold-start story of the
// paper's bench table (ISSUE 9 satellite, closing ROADMAP item 4): a
// warmed detector Reset and replayed over a full application trace must
// be allocation-free AND detect exactly what a freshly constructed one
// does. This is what lets BenchmarkFig4DistanceCurve and
// BenchmarkTable2Detection report 0 allocs/op — construction happens
// once, every subsequent replay recycles the detector, the tracker's
// period slots and the significant-period slice.
func TestPaperBenchColdStartAllocFree(t *testing.T) {
	t.Run("fig4-magnitude", func(t *testing.T) {
		tr := apps.FTCPUTrace(50, 20010513)
		det := core.MustMagnitudeDetector(core.Config{Window: 100, Confirm: 3})
		replay := func() core.Result {
			det.Reset()
			var last core.Result
			for _, v := range tr.Samples {
				last = det.Feed(v)
			}
			return last
		}
		fresh := replay() // also warms lazily-grown internals
		if fresh.Period < 43 || fresh.Period > 45 {
			t.Fatalf("period=%d, want ≈44", fresh.Period)
		}
		var last core.Result
		if n := testing.AllocsPerRun(10, func() { last = replay() }); n != 0 {
			t.Fatalf("Fig4 Reset-replay allocates %.1f objects per pass, want 0", n)
		}
		if last != fresh {
			t.Fatalf("Reset-replay diverged: %+v != first pass %+v", last, fresh)
		}
	})
	t.Run("table2-multiscale", func(t *testing.T) {
		app := apps.Turb3d() // nested periodicities: exercises every ladder level
		vals := app.Trace().Values
		ms := core.MustMultiScaleDetector(nil, core.Config{})
		pt := core.NewPeriodTracker()
		var got []int
		replay := func() {
			ms.Reset()
			pt.Reset()
			for _, v := range vals {
				pt.ObserveMulti(ms.Feed(v), ms)
			}
			got = pt.AppendSignificant(8, got[:0])
		}
		replay() // warm the tracker's period slots and the result slice
		check := func() {
			if len(got) != len(app.ExpectPeriods) {
				t.Fatalf("periods %v, want %v", got, app.ExpectPeriods)
			}
			for i, p := range app.ExpectPeriods {
				if got[i] != p {
					t.Fatalf("periods %v, want %v", got, app.ExpectPeriods)
				}
			}
		}
		check()
		if n := testing.AllocsPerRun(5, replay); n != 0 {
			t.Fatalf("Table2 Reset-replay allocates %.1f objects per pass, want 0", n)
		}
		check() // recycled tracker still detects the exact Table 2 set
	})
}

// newSurfaceEngines is the alloc matrix for the unified API: every
// engine constructible through dpd.New, with a steady-state warmup and
// a sample generator.
func newSurfaceEngines() []struct {
	name   string
	opts   []dpd.Option
	warm   int
	sample func(i int) dpd.Sample
} {
	return []struct {
		name   string
		opts   []dpd.Option
		warm   int
		sample func(i int) dpd.Sample
	}{
		{"event", []dpd.Option{dpd.WithWindow(256)}, 3 * 256,
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 7)) }},
		{"magnitude", []dpd.Option{dpd.WithMagnitude(0.5), dpd.WithWindow(100)}, 500,
			func(i int) dpd.Sample { return dpd.MagnitudeSample(float64(i%44) * 0.5) }},
		{"multiscale", []dpd.Option{dpd.WithLadder()}, 3 * 1024,
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 12)) }},
		{"adaptive", []dpd.Option{dpd.WithAdaptive(dpd.DefaultAdaptivePolicy())}, 3 * 1024,
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 9)) }},
	}
}

// TestNewDetectorFeedSteadyStateAllocFree: dpd.New(...).Feed is 0
// allocs/op in steady state for every engine — the unified interface
// adds no boxing or bookkeeping allocation over the raw detectors.
func TestNewDetectorFeedSteadyStateAllocFree(t *testing.T) {
	for _, tc := range newSurfaceEngines() {
		t.Run(tc.name, func(t *testing.T) {
			det := dpd.Must(tc.opts...)
			for i := 0; i < tc.warm; i++ {
				det.Feed(tc.sample(i))
			}
			i := tc.warm
			if n := testing.AllocsPerRun(1000, func() {
				det.Feed(tc.sample(i))
				i++
			}); n != 0 {
				t.Fatalf("%s engine Feed allocates %.1f objects/op in steady state, want 0", tc.name, n)
			}
		})
	}
}

// TestObserverDispatchAllocFree: observer dispatch reuses the engine's
// Event scratch, so a subscribed detector stays 0 allocs/op even while
// callbacks fire on every sample (period-2 stream: a segment start
// every other sample).
func TestObserverDispatchAllocFree(t *testing.T) {
	var starts, locks, unlocks uint64
	obs := dpd.ObserverFuncs{
		Lock:         func(e *dpd.Event) { locks++ },
		SegmentStart: func(e *dpd.Event) { starts++ },
		Unlock:       func(e *dpd.Event) { unlocks++ },
	}
	for _, tc := range newSurfaceEngines() {
		t.Run(tc.name, func(t *testing.T) {
			det := dpd.Must(append(tc.opts, dpd.WithObserver(obs))...)
			for i := 0; i < tc.warm; i++ {
				det.Feed(tc.sample(i))
			}
			before := starts
			i := tc.warm
			if n := testing.AllocsPerRun(1000, func() {
				det.Feed(tc.sample(i))
				i++
			}); n != 0 {
				t.Fatalf("%s engine with observer allocates %.1f objects/op, want 0", tc.name, n)
			}
			if starts == before {
				t.Fatalf("%s engine: observer saw no segment starts during the alloc run", tc.name)
			}
		})
	}
}

// TestSnapshotAllocFree: Snapshot is a read-only value copy on every
// engine, safe on serving paths.
func TestSnapshotAllocFree(t *testing.T) {
	for _, tc := range newSurfaceEngines() {
		det := dpd.Must(tc.opts...)
		for i := 0; i < tc.warm; i++ {
			det.Feed(tc.sample(i))
		}
		if n := testing.AllocsPerRun(1000, func() {
			_ = det.Snapshot()
		}); n != 0 {
			t.Fatalf("%s engine Snapshot allocates %.1f objects/op, want 0", tc.name, n)
		}
	}
}

// TestPoolInjectedEnginesFeedBatchAllocFree: pooled magnitude and
// multi-scale streams stay 0 allocs/op through the sharded batch path.
func TestPoolInjectedEnginesFeedBatchAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func() dpd.Detector
		sample  func(round int) dpd.Sample
		warm    int
	}{
		{
			"magnitude",
			func() dpd.Detector { return dpd.Must(dpd.WithMagnitude(0.5), dpd.WithWindow(64)) },
			func(r int) dpd.Sample { return dpd.MagnitudeSample(float64(r % 8)) },
			3 * 64,
		},
		{
			"multiscale",
			func() dpd.Detector { return dpd.Must(dpd.WithLadder(8, 64)) },
			func(r int) dpd.Sample { return dpd.EventSample(int64(r % 8)) },
			3 * 64,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := dpd.NewPool(dpd.PoolConfig{Shards: 4, NewDetector: tc.factory})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			const streams = 256
			batch := make([]dpd.KeyedSample, streams)
			for i := range batch {
				batch[i].Key = uint64(i)
			}
			round := 0
			feed := func() {
				s := tc.sample(round)
				for j := range batch {
					batch[j].Value, batch[j].Magnitude = s.Value, s.Magnitude
				}
				p.FeedBatch(batch)
				round++
			}
			for round < tc.warm {
				feed()
			}
			if n := testing.AllocsPerRun(100, feed); n != 0 {
				t.Fatalf("pooled %s FeedBatch allocates %.1f objects/op in steady state, want 0", tc.name, n)
			}
		})
	}
}

// TestPoolFeedBatchInstrumentedAllocFree: the PR 10 observability core
// must not cost the feed path its zero-allocation guarantee — FeedBatch
// with the flight recorder wired and the sampled latency histogram
// electing every batch (stride 1, the worst case) stays 0 allocs/op.
func TestPoolFeedBatchInstrumentedAllocFree(t *testing.T) {
	lat := obs.NewSampledHist(1) // every call elected: worst-case timing cost
	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:      4,
		Detector:    dpd.Config{Window: 64},
		Recorder:    obs.NewRecorder(256),
		FeedLatency: lat,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const streams = 512
	batch := make([]dpd.KeyedSample, streams)
	for i := range batch {
		batch[i].Key = uint64(i)
	}
	round := 0
	feed := func() {
		v := int64(round % 8)
		for j := range batch {
			batch[j].Value = v
		}
		p.FeedBatch(batch)
		round++
	}
	for round < 3*64 {
		feed()
	}
	if n := testing.AllocsPerRun(100, feed); n != 0 {
		t.Fatalf("instrumented Pool.FeedBatch allocates %.1f objects/op in steady state, want 0", n)
	}
	if got := lat.Stat().Count; got == 0 {
		t.Fatal("latency histogram observed nothing — the gate proved the wrong path")
	}
}

// TestIngestInstrumentedDecodeAllocFree: the instrumented ingest inner
// loop — frame decode plus the strided election, timestamp stamp and
// latency observation PR 10 added around it — is 0 allocs/op with a
// reused Frame.
func TestIngestInstrumentedDecodeAllocFree(t *testing.T) {
	var enc server.Enc
	strip := func(frame []byte) []byte {
		var d wire.Dec
		d.Reset(frame)
		d.Uvarint()
		return frame[d.Offset():]
	}
	events := make([]int64, 256)
	for i := range events {
		events[i] = int64(i % 9)
	}
	payload := strip(enc.AppendEventBatch(nil, 42, events))
	ingest := obs.NewSampledHist(obs.DefaultIngestEvery)
	var f server.Frame
	if err := server.DecodeFrame(payload, &f); err != nil { // warm the buffers
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		var t0 time.Time
		if ingest.Sampled() {
			t0 = time.Now()
		}
		if err := server.DecodeFrame(payload, &f); err != nil {
			t.Fatal(err)
		}
		if !t0.IsZero() {
			ingest.Observe(time.Since(t0))
		}
	}); n != 0 {
		t.Fatalf("instrumented ingest decode allocates %.1f objects/op, want 0", n)
	}
	if got := ingest.Stat().Count; got == 0 {
		t.Fatal("ingest histogram observed nothing — the gate proved the wrong path")
	}
}
