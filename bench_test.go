// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4), plus ablation benches for the design
// choices. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: ns/elem is the per-sample DPD cost (Table 3's
// TimexElem column), pct_overhead the Table 3 Percentage column.
package dpd_test

import (
	"testing"
	"time"

	"dpd"
	"dpd/internal/apps"
	"dpd/internal/core"
	"dpd/internal/ditools"
	"dpd/internal/dsp"
	"dpd/internal/experiments"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/obs"
	"dpd/internal/selfanalyzer"
	"dpd/internal/series"
	"dpd/internal/server"
	"dpd/internal/wire"
)

// BenchmarkFig3FTTrace regenerates Figure 3: the simulated MPI/OpenMP FT
// run with 1 ms CPU sampling.
func BenchmarkFig3FTTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := apps.FTCPUTrace(50, 20010513)
		if tr.Len() < 2000 {
			b.Fatal("trace too short")
		}
	}
}

// BenchmarkFig4DistanceCurve regenerates Figure 4: the eq. (1) distance
// curve over the FT trace, minimum at m = 44.
func BenchmarkFig4DistanceCurve(b *testing.B) {
	tr := apps.FTCPUTrace(50, 20010513)
	// Cold-start cost is construction, not detection: build once, Reset
	// per replay (byte-equivalent to a fresh detector — pinned by
	// TestPaperBenchColdStartAllocFree), so the whole table runs at 0
	// allocs/op.
	det := core.MustMagnitudeDetector(core.Config{Window: 100, Confirm: 3})
	replay := func() {
		det.Reset()
		var last core.Result
		for _, v := range tr.Samples {
			last = det.Feed(v)
		}
		if last.Period < 43 || last.Period > 45 {
			b.Fatalf("period=%d, want ≈44", last.Period)
		}
	}
	replay() // warm any lazily-grown internals before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay()
	}
}

// BenchmarkFig7Segmentation regenerates Figure 7: segmentation of the
// five SPECfp95 address streams.
func BenchmarkFig7Segmentation(b *testing.B) {
	traces := make(map[string][]int64)
	for _, app := range apps.SPECfp95() {
		traces[app.Name] = app.Trace().Values
	}
	ms := core.MustMultiScaleDetector(nil, core.Config{})
	replay := func() {
		for name, vals := range traces {
			ms.Reset()
			starts := 0
			for _, v := range vals {
				if mr := ms.Feed(v); mr.Primary.Start {
					starts++
				}
			}
			if starts == 0 {
				b.Fatalf("%s: no segmentation", name)
			}
		}
	}
	replay() // warm the pending-start queue before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay()
	}
}

// BenchmarkTable2Detection regenerates Table 2: detected periodicities of
// every application, one sub-benchmark per app.
func BenchmarkTable2Detection(b *testing.B) {
	for _, app := range apps.SPECfp95() {
		app := app
		vals := app.Trace().Values
		b.Run(app.Name, func(b *testing.B) {
			ms := core.MustMultiScaleDetector(nil, core.Config{})
			pt := core.NewPeriodTracker()
			var got []int
			replay := func() {
				ms.Reset()
				pt.Reset()
				for _, v := range vals {
					pt.ObserveMulti(ms.Feed(v), ms)
				}
				got = pt.AppendSignificant(8, got[:0])
				if len(got) != len(app.ExpectPeriods) {
					b.Fatalf("periods %v, want %v", got, app.ExpectPeriods)
				}
			}
			replay() // warm the tracker's period slots before measuring
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				replay()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(vals)), "ns/elem")
		})
	}
}

// BenchmarkTable3Overhead regenerates Table 3: per-element DPD processing
// cost on each application trace, with the detector sized to the app's
// periodicity structure (flat apps: small window; nested: full ladder).
func BenchmarkTable3Overhead(b *testing.B) {
	ladder := func(app *apps.App) []int {
		maxP := 0
		for _, p := range app.ExpectPeriods {
			if p > maxP {
				maxP = p
			}
		}
		switch {
		case maxP <= 8:
			return []int{16}
		case maxP <= 100:
			return []int{8, 128}
		default:
			return core.DefaultLadder
		}
	}
	for _, app := range apps.SPECfp95() {
		app := app
		vals := app.Trace().Values
		apex := app.SequentialTime()
		b.Run(app.Name, func(b *testing.B) {
			b.ReportAllocs()
			ms := core.MustMultiScaleDetector(ladder(app), core.Config{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, v := range vals {
					ms.Feed(v)
				}
			}
			perElem := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(vals))
			b.ReportMetric(perElem, "ns/elem")
			// Percentage column: whole-trace processing time vs ApExTime.
			procNs := perElem * float64(len(vals))
			b.ReportMetric(100*procNs/float64(apex.Nanoseconds()), "pct_overhead")
		})
	}
}

// BenchmarkSelfAnalyzer reproduces the §5 case study: dynamic region
// identification and speedup measurement under interposition.
func BenchmarkSelfAnalyzer(b *testing.B) {
	app := apps.Tomcatv()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := machine.New(16)
		reg := ditools.NewRegistry()
		rt := nanos.MustNew(m, machine.DefaultCostModel(), 16, reg)
		sa := selfanalyzer.MustAttach(rt, reg, selfanalyzer.Config{})
		app.RunIterations(rt, 60)
		if _, ok := sa.Speedup(); !ok {
			b.Fatal("no speedup measured")
		}
	}
}

// BenchmarkSchedulerPolicies reproduces the [Corbalan2000] consumer:
// equipartition vs performance-driven allocation on the SPECfp95-derived
// workload, reporting the CPU-time saving as a custom metric.
func BenchmarkSchedulerPolicies(b *testing.B) {
	b.ReportAllocs()
	var saving float64
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Scheduler(16)
		if err != nil {
			b.Fatal(err)
		}
		saving = sr.CPUSaving
	}
	b.ReportMetric(saving, "cpu_saving_x")
}

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

// BenchmarkWindowSweep: per-sample cost as a function of window size N —
// the reason Table 3's hydro2d/turb3d rows cost ~30× more per element.
func BenchmarkWindowSweep(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512, 1024} {
		n := n
		b.Run(benchName("N", n), func(b *testing.B) {
			det := core.MustEventDetector(core.Config{Window: n})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Feed(int64(i % 5))
			}
		})
	}
}

// BenchmarkMetrics: eq. (1) magnitude metric vs eq. (2) event metric at
// the same window size.
func BenchmarkMetrics(b *testing.B) {
	const n = 256
	b.Run("eq2-event", func(b *testing.B) {
		det := core.MustEventDetector(core.Config{Window: n})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Feed(int64(i % 7))
		}
	})
	b.Run("eq1-magnitude", func(b *testing.B) {
		det := core.MustMagnitudeDetector(core.Config{Window: n})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Feed(float64(i % 7))
		}
	})
}

// BenchmarkBaselines: the online DPD against offline autocorrelation and
// periodogram estimators over the same frame.
func BenchmarkBaselines(b *testing.B) {
	g := series.NewPatternGenerator([]float64{0, 1, 2, 3, 4, 3, 2, 1})
	frame := series.Take(g, 1024)
	ints := make([]int64, len(frame))
	for i, v := range frame {
		ints[i] = int64(v)
	}
	b.Run("dpd-online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det := core.MustEventDetector(core.Config{Window: 64})
			var last core.Result
			for _, v := range ints {
				last = det.Feed(v)
			}
			if last.Period != 8 {
				b.Fatalf("period=%d", last.Period)
			}
		}
	})
	b.Run("acf-online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := dsp.MustOnlineACF(64, 0.01)
			for _, v := range frame {
				a.Feed(v)
			}
			if p := a.EstimatePeriod(0.5); p != 8 {
				b.Fatalf("period=%d", p)
			}
		}
	})
	b.Run("autocorr-fft", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if p := dsp.EstimatePeriodACF(frame, 100, 0.5); p != 8 {
				b.Fatalf("period=%d", p)
			}
		}
	})
	b.Run("periodogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if p := dsp.EstimatePeriodSpectral(frame); p != 8 {
				b.Fatalf("period=%d", p)
			}
		}
	})
}

// BenchmarkIncrementalVsNaive: the O(M) incremental curve update against
// recomputing the distance from scratch each sample (O(N·M)). Uses the
// eq. (1) magnitude metric, whose naive form cannot early-out on the
// first mismatch — the case the incremental design exists for.
func BenchmarkIncrementalVsNaive(b *testing.B) {
	const n = 128
	pat := []float64{1, 2, 3, 4, 5, 6}
	b.Run("incremental", func(b *testing.B) {
		det := core.MustMagnitudeDetector(core.Config{Window: n})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Feed(pat[i%len(pat)])
		}
	})
	b.Run("naive", func(b *testing.B) {
		// Pre-fill so every lag is valid from the first measured sample.
		hist := make([]float64, 0, b.N+2*n)
		for i := 0; i < 2*n; i++ {
			hist = append(hist, pat[i%len(pat)])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hist = append(hist, pat[i%len(pat)])
			core.NaiveCurveL1(hist, n, n-1)
		}
	})
}

// BenchmarkAdaptiveWindow: fixed large window vs the adaptive policy that
// shrinks after lock (paper §3.1/§4) on a short-period stream.
func BenchmarkAdaptiveWindow(b *testing.B) {
	b.Run("fixed-1024", func(b *testing.B) {
		det := core.MustEventDetector(core.Config{Window: 1024})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Feed(int64(i % 5))
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		det := core.MustAdaptiveDetector(core.DefaultAdaptivePolicy(), core.Config{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.Feed(int64(i % 5))
		}
	})
}

// BenchmarkBatchVsPerSample: the FeedAll batch entry points against the
// per-sample Feed loop on the same stream — the amortization the batch API
// exists for (ISSUE 1 layer 4), and the path future sharded multi-stream
// serving builds on.
func BenchmarkBatchVsPerSample(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i % 9)
	}
	b.Run("event-feed", func(b *testing.B) {
		det := core.MustEventDetector(core.Config{Window: 128})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				det.Feed(v)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(vals)), "ns/elem")
	})
	b.Run("event-feedall", func(b *testing.B) {
		det := core.MustEventDetector(core.Config{Window: 128})
		dst := make([]core.Result, len(vals))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = det.FeedAll(vals, dst)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(vals)), "ns/elem")
	})
	b.Run("multiscale-feed", func(b *testing.B) {
		ms := core.MustMultiScaleDetector(nil, core.Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, v := range vals {
				ms.Feed(v)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(vals)), "ns/elem")
	})
	b.Run("multiscale-feedall", func(b *testing.B) {
		ms := core.MustMultiScaleDetector(nil, core.Config{})
		dst := make([]core.MultiResult, len(vals))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = ms.FeedAll(vals, dst)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(vals)), "ns/elem")
	})
}

// BenchmarkPoolFeed: aggregate multi-stream throughput of the sharded
// pool (ISSUE 2 tentpole) across shard counts and stream populations.
// Every stream cycles a period-8 pattern, so the steady state is the
// locked, allocation-free hot path; ns/elem is the per-sample cost seen
// by a runtime system watching the whole workload, elems/s the aggregate
// ingest rate. Parallel speedup from sharding requires GOMAXPROCS > 1.
func BenchmarkPoolFeed(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		b.Run(benchName("shards", shards), func(b *testing.B) {
			for _, streams := range []int{1000, 100000} {
				streams := streams
				b.Run(benchName("streams", streams), func(b *testing.B) {
					p, err := dpd.NewPool(dpd.PoolConfig{
						Shards:   shards,
						Detector: dpd.Config{Window: 32},
					})
					if err != nil {
						b.Fatal(err)
					}
					defer p.Close()
					batch := make([]dpd.KeyedSample, streams)
					for i := range batch {
						batch[i].Key = uint64(i)
					}
					feed := func(round int) {
						v := int64(round % 8)
						for j := range batch {
							batch[j].Value = v
						}
						p.FeedBatch(batch)
					}
					// Warm every lag window so measurement sees only the
					// locked steady state.
					for r := 0; r < 48; r++ {
						feed(r)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						feed(i)
					}
					b.StopTimer()
					elems := float64(b.N) * float64(streams)
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/elems, "ns/elem")
					b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
				})
			}
		})
	}
}

// BenchmarkPoolFeedAdaptive: cost and payoff of contention-adaptive
// hot-stream placement (ISSUE 9 tentpole).
//
//   - uniform: 512 equally popular streams, where the sampler runs on
//     every sample but nothing ever qualifies for promotion — the
//     on/off delta is the total overhead of the adaptive machinery on
//     well-behaved traffic (budget: ≤2%).
//   - skewed: one celebrity key carries half of every batch. With
//     adaptive on, the benchmark first waits for the coordinator to
//     promote it, so the measured steady state serves the hot key off
//     its dedicated single-producer ring instead of a contended shard.
func BenchmarkPoolFeedAdaptive(b *testing.B) {
	mkBatch := func(skewed bool) []dpd.KeyedSample {
		const n = 512
		batch := make([]dpd.KeyedSample, n)
		for i := range batch {
			if skewed && i%2 == 0 {
				batch[i].Key = 7 // celebrity: 50% of every batch
			} else {
				batch[i].Key = 100 + uint64(i)
			}
		}
		return batch
	}
	for _, shape := range []struct {
		name   string
		skewed bool
	}{{"uniform", false}, {"skewed", true}} {
		shape := shape
		b.Run(shape.name, func(b *testing.B) {
			for _, adaptive := range []bool{false, true} {
				adaptive := adaptive
				name := "adaptive=off"
				if adaptive {
					name = "adaptive=on"
				}
				b.Run(name, func(b *testing.B) {
					cfg := dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 32}}
					if adaptive {
						// Uniform measures the inline cost at the default
						// coordinator cadence (nothing ever promotes); the
						// skewed cell runs a hair-trigger cadence so the
						// promotion it is waiting for happens quickly.
						cfg.Adaptive = dpd.AdaptiveConfig{Enable: true}
						if shape.skewed {
							cfg.Adaptive = dpd.AdaptiveConfig{
								Enable:         true,
								FoldEvery:      2 * time.Millisecond,
								PromoteShare:   0.30,
								PromoteAfter:   1,
								DemoteAfter:    1 << 30, // hold hot placement for the whole run
								MinFoldSamples: 1,
							}
						}
					}
					p, err := dpd.NewPool(cfg)
					if err != nil {
						b.Fatal(err)
					}
					defer p.Close()
					batch := mkBatch(shape.skewed)
					feed := func(round int) {
						v := int64(round % 8)
						for j := range batch {
							batch[j].Value = v
						}
						p.FeedBatch(batch)
					}
					for r := 0; r < 48; r++ {
						feed(r)
					}
					if adaptive && shape.skewed {
						// Measure the promoted steady state, not the
						// transition: feed until the coordinator moves
						// the celebrity onto its hot worker.
						deadline := time.Now().Add(10 * time.Second)
						for r := 48; p.AdaptiveStats().HotStreams == 0; r++ {
							if time.Now().After(deadline) {
								b.Fatalf("celebrity never promoted: %+v", p.AdaptiveStats())
							}
							feed(r)
							time.Sleep(time.Millisecond)
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						feed(i)
					}
					b.StopTimer()
					if adaptive && shape.skewed {
						st := p.AdaptiveStats()
						if st.HotStreams == 0 {
							b.Fatalf("celebrity demoted mid-measurement: %+v", st)
						}
					}
					elems := float64(b.N) * float64(len(batch))
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/elems, "ns/elem")
					b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
				})
			}
		})
	}
}

// BenchmarkPoolFeedObs: total overhead of the PR 10 observability core
// on the pool's batch feed path — flight recorder wired plus the
// FeedBatch latency histogram at its default 1-in-8 stride, exactly the
// instrumentation a live server runs. The obs=off/obs=on ns/elem delta
// is the overhead scripts/bench.sh guards at ≤2%.
func BenchmarkPoolFeedObs(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "obs=off"
		if on {
			name = "obs=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 32}}
			if on {
				cfg.Recorder = obs.NewRecorder(0)
				cfg.FeedLatency = obs.NewSampledHist(obs.DefaultFeedBatchEvery)
			}
			p, err := dpd.NewPool(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			const streams = 512
			batch := make([]dpd.KeyedSample, streams)
			for i := range batch {
				batch[i].Key = uint64(i)
			}
			feed := func(round int) {
				v := int64(round % 8)
				for j := range batch {
					batch[j].Value = v
				}
				p.FeedBatch(batch)
			}
			for r := 0; r < 48; r++ {
				feed(r)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				feed(i)
			}
			b.StopTimer()
			elems := float64(b.N) * float64(streams)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/elems, "ns/elem")
			b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
		})
	}
}

// BenchmarkInterposition: cost of the DITools dispatch path per loop call.
func BenchmarkInterposition(b *testing.B) {
	reg := ditools.NewRegistry()
	det := core.MustEventDetector(core.Config{Window: 32})
	reg.OnCall(func(e ditools.Event) { det.Feed(e.Addr) })
	body := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Call(time.Duration(i), int64(0x100+(i%5)*0x40), body)
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "=" + string(buf[i:])
}

// BenchmarkIngestFrameDecode: the serving layer's per-frame decode cost
// (ISSUE 5) — one 256-sample event batch frame parsed into a reused
// Frame, the exact steady-state read path of an ingest connection.
// ns/elem is the per-sample protocol overhead the network surface adds
// before Pool.FeedBatch; 0 allocs/op is asserted in alloc_test.go.
func BenchmarkIngestFrameDecode(b *testing.B) {
	const batch = 256
	values := make([]int64, batch)
	for i := range values {
		values[i] = int64(i % 9)
	}
	var enc server.Enc
	framed := enc.AppendEventBatch(nil, 42, values)
	var d wire.Dec
	d.Reset(framed)
	d.Uvarint() // skip the length prefix: decode consumes the bare payload
	payload := framed[d.Offset():]
	var f server.Frame
	if err := server.DecodeFrame(payload, &f); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := server.DecodeFrame(payload, &f); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elems := float64(b.N) * batch
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/elems, "ns/elem")
	b.ReportMetric(elems/b.Elapsed().Seconds(), "elems/s")
}
