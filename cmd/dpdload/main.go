// Command dpdload generates ingest traffic against a running dpdserver:
// N connections × M keyed streams of periodic samples, batched, rate
// limited, ping-barriered — and reports end-to-end throughput in
// Melem/s with batch-accept latency quantiles. Connections ride the
// resilient internal/client, so a run survives server restarts and
// overload shedding, replaying unacked batches exactly once. It is the
// local stand-in for "heavy traffic from millions of users" and the
// driver of the serving integration test.
//
// Beyond the steady uniform sweep, dpdload speaks the adversarial
// dialects of internal/loadgen: zipf-skewed key popularity, churn
// storms through fresh key windows, bursty on/off arrivals, and mixed
// event/magnitude traffic — all reproducible from -seed.
//
//	dpdload -addr localhost:7700 -conns 8 -streams 1000 -samples 4096 -period 12
//	dpdload -dist zipf:0.99 -seed 42 -churn 8 -burst 4096:250ms -mixed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dpd"
	"dpd/internal/client"
	"dpd/internal/loadgen"
	"dpd/internal/obs"
)

// options carries every dpdload flag in parsed-string form, so flag
// handling is a pure testable function rather than main's side effects.
type options struct {
	addr        string
	cluster     string
	conns       int
	streams     int
	keyBase     uint64
	samples     int
	batch       int
	period      int
	stride      int64
	magnitude   bool
	rate        float64
	window      int
	ack         string
	retryBudget string

	dist  string
	seed  uint64
	churn int
	burst string
	mixed bool

	httpAddr  string
	quantiles bool
}

// buildConfig validates one dpdload invocation and assembles the
// loadgen spec it describes. All flag errors surface here.
func buildConfig(o options) (loadgen.Config, error) {
	cfg := loadgen.Config{
		Addr:             o.addr,
		ClusterHTTP:      splitAddrs(o.cluster),
		Conns:            o.conns,
		Streams:          o.streams,
		KeyBase:          o.keyBase,
		SamplesPerStream: o.samples,
		BatchSize:        o.batch,
		Period:           o.period,
		PatternStride:    o.stride,
		Magnitude:        o.magnitude,
		Rate:             o.rate,
		Window:           o.window,
	}
	switch o.ack {
	case "", "applied":
		cfg.Ack = client.AckApplied
	case "durable":
		cfg.Ack = client.AckDurable
	default:
		return loadgen.Config{}, fmt.Errorf("unknown -ack %q (want applied|durable)", o.ack)
	}
	if o.retryBudget != "" {
		d, err := time.ParseDuration(o.retryBudget)
		if err != nil {
			return loadgen.Config{}, fmt.Errorf("bad -retry-budget: %w", err)
		}
		cfg.RetryBudget = d
	}
	dist, err := loadgen.ParseDist(o.dist)
	if err != nil {
		return loadgen.Config{}, fmt.Errorf("bad -dist: %w", err)
	}
	phases, err := loadgen.ParseBurst(o.burst)
	if err != nil {
		return loadgen.Config{}, fmt.Errorf("bad -burst: %w", err)
	}
	if o.churn < 0 {
		return loadgen.Config{}, fmt.Errorf("bad -churn %d: want >= 0 generations", o.churn)
	}
	if o.mixed && o.magnitude {
		return loadgen.Config{}, fmt.Errorf("-mixed and -magnitude are exclusive: mixed already interleaves both traffic kinds")
	}
	cfg.Workload = loadgen.Workload{
		Dist:   dist,
		Seed:   o.seed,
		Churn:  o.churn,
		Phases: phases,
		Mixed:  o.mixed,
	}
	return cfg, nil
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// printDetails renders the adversarial extras under the report's
// summary line: the per-phase breakdown, the hottest streams, and the
// workload fingerprint that must agree across same-seed runs.
func printDetails(w io.Writer, rep loadgen.Report) {
	if len(rep.Phases) > 1 || (len(rep.Phases) == 1 && rep.Phases[0].Name != "steady") {
		fmt.Fprintf(w, "phases:\n")
		for _, ph := range rep.Phases {
			fmt.Fprintf(w, "  %-8s %10d samples  %8.2f Melem/s  p50=%v p99=%v p999=%v\n",
				ph.Name, ph.Samples, ph.MelemsPerSec, ph.P50, ph.P99, ph.P999)
		}
	}
	type kc struct {
		key uint64
		n   uint64
	}
	hot := make([]kc, 0, len(rep.StreamSamples))
	for k, n := range rep.StreamSamples {
		hot = append(hot, kc{k, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].key < hot[j].key
	})
	if len(hot) > 8 {
		hot = hot[:8]
	}
	fmt.Fprintf(w, "hottest streams:")
	for _, h := range hot {
		fmt.Fprintf(w, " %d×%d", h.key, h.n)
	}
	fmt.Fprintf(w, "\nworkload fingerprint: %#x over %d distinct streams\n",
		rep.Fingerprint, rep.DistinctStreams)
}

// printServerHotSet fetches the server's /metrics adaptive section and
// prints its hot set next to dpdload's own observed hottest streams, so
// a skewed run shows at a glance whether the celebrities the generator
// produced are the ones the server promoted.
func printServerHotSet(w io.Writer, httpAddr string) error {
	url := "http://" + httpAddr + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap struct {
		Adaptive *dpd.AdaptiveStats `json:"adaptive"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	if snap.Adaptive == nil || !snap.Adaptive.Enabled {
		fmt.Fprintf(w, "server adaptive placement: disabled\n")
		return nil
	}
	a := snap.Adaptive
	fmt.Fprintf(w, "server hot set (%d/%d promoted; %d promotions, %d demotions, %d folds):",
		a.HotStreams, a.MaxHot, a.Promotions, a.Demotions, a.Folds)
	hot := append([]dpd.HotStreamInfo(nil), a.Hot...)
	sort.Slice(hot, func(i, j int) bool { return hot[i].Fed > hot[j].Fed })
	for _, h := range hot {
		fmt.Fprintf(w, " %d×%d (%.0f/s)", h.Key, h.Fed, h.Rate)
	}
	fmt.Fprintf(w, "\n")
	return nil
}

// printServerQuantiles fetches the server's /metrics latency section
// and prints each instrumented site's quantiles, so one run report
// shows client-observed accept latency and the server's own
// decode→feed, pool-feed, checkpoint and migration timings side by
// side.
func printServerQuantiles(w io.Writer, httpAddr string) error {
	url := "http://" + httpAddr + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap struct {
		Latency *struct {
			Ingest          obs.HistStat `json:"ingest"`
			FeedBatch       obs.HistStat `json:"feed_batch"`
			CheckpointWrite obs.HistStat `json:"checkpoint_write"`
			MigrationPause  obs.HistStat `json:"migration_pause"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	if snap.Latency == nil {
		fmt.Fprintf(w, "server latency: not reported (older server)\n")
		return nil
	}
	sites := []struct {
		name string
		st   obs.HistStat
	}{
		{"ingest", snap.Latency.Ingest},
		{"feed_batch", snap.Latency.FeedBatch},
		{"checkpoint_write", snap.Latency.CheckpointWrite},
		{"migration_pause", snap.Latency.MigrationPause},
	}
	fmt.Fprintf(w, "server latency quantiles:\n")
	for _, s := range sites {
		if s.st.Count == 0 {
			fmt.Fprintf(w, "  %-17s (no samples)\n", s.name)
			continue
		}
		fmt.Fprintf(w, "  %-17s p50 %v  p99 %v  p999 %v  max %v  (%d samples, 1-in-%d)\n",
			s.name,
			time.Duration(s.st.P50Ns), time.Duration(s.st.P99Ns),
			time.Duration(s.st.P999Ns), time.Duration(s.st.MaxNs),
			s.st.Count, s.st.SampleEvery)
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "localhost:7700", "dpdserver ingest address")
	flag.StringVar(&o.cluster, "cluster", "", "comma-separated cluster HTTP addresses: route batches per owner via the routing table (overrides -addr)")
	flag.IntVar(&o.conns, "conns", 4, "concurrent connections")
	flag.IntVar(&o.streams, "streams", 64, "total keyed streams, partitioned across connections")
	flag.Uint64Var(&o.keyBase, "key-base", 0, "first stream key")
	flag.IntVar(&o.samples, "samples", 4096, "samples per stream")
	flag.IntVar(&o.batch, "batch", 256, "samples per batch frame")
	flag.IntVar(&o.period, "period", 8, "synthetic pattern period")
	flag.Int64Var(&o.stride, "stride", 0, "per-stream value offset (0 = shared alphabet)")
	flag.BoolVar(&o.magnitude, "magnitude", false, "send magnitude batches (float64) instead of event batches")
	flag.Float64Var(&o.rate, "rate", 0, "aggregate rate limit in samples/second (0 = unlimited)")
	flag.IntVar(&o.window, "window", 0, "per-connection replay window in batches (0 = client default)")
	flag.StringVar(&o.ack, "ack", "applied", "window-release ack mode: applied|durable")
	flag.StringVar(&o.retryBudget, "retry-budget", "", "max retry time without progress (empty = client default)")
	flag.StringVar(&o.dist, "dist", "uniform", "key popularity: uniform or zipf:<theta> (e.g. zipf:0.99)")
	flag.Uint64Var(&o.seed, "seed", 1, "workload PRNG seed: same seed + flags ⇒ identical sample sequence")
	flag.IntVar(&o.churn, "churn", 0, "churn generations: cycle streams through N fresh key windows (0/1 = off)")
	flag.StringVar(&o.burst, "burst", "", "bursty arrivals: <on-samples>:<off-duration> per connection (e.g. 4096:250ms)")
	flag.BoolVar(&o.mixed, "mixed", false, "interleave magnitude streams (every third key) with event streams")
	flag.StringVar(&o.httpAddr, "http", "", "dpdserver HTTP address: after the run, print the server's adaptive hot set next to the observed hottest streams")
	flag.BoolVar(&o.quantiles, "quantiles", false, "with -http: also print the server-side latency quantiles (ingest, feed, checkpoint, migration) next to the client-observed ones")
	flag.Parse()

	cfg, err := buildConfig(o)
	if err != nil {
		log.Fatalf("dpdload: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatalf("dpdload: %v", err)
	}
	fmt.Println(rep)
	printDetails(os.Stdout, rep)
	if o.httpAddr != "" {
		if err := printServerHotSet(os.Stdout, o.httpAddr); err != nil {
			log.Fatalf("dpdload: %v", err)
		}
		if o.quantiles {
			if err := printServerQuantiles(os.Stdout, o.httpAddr); err != nil {
				log.Fatalf("dpdload: %v", err)
			}
		}
	}
}
