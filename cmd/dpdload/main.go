// Command dpdload generates ingest traffic against a running dpdserver:
// N connections × M keyed streams of periodic samples, batched, rate
// limited, ping-barriered — and reports end-to-end throughput in
// Melem/s. Connections ride the resilient internal/client, so a run
// survives server restarts and overload shedding, replaying unacked
// batches exactly once. It is the local stand-in for "heavy traffic from millions of
// users" and the driver of the serving integration test.
//
//	dpdload -addr localhost:7700 -conns 8 -streams 1000 -samples 4096 -period 12
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dpd/internal/client"
	"dpd/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "localhost:7700", "dpdserver ingest address")
	conns := flag.Int("conns", 4, "concurrent connections")
	streams := flag.Int("streams", 64, "total keyed streams, partitioned across connections")
	keyBase := flag.Uint64("key-base", 0, "first stream key")
	samples := flag.Int("samples", 4096, "samples per stream")
	batch := flag.Int("batch", 256, "samples per batch frame")
	period := flag.Int("period", 8, "synthetic pattern period")
	stride := flag.Int64("stride", 0, "per-stream value offset (0 = shared alphabet)")
	magnitude := flag.Bool("magnitude", false, "send magnitude batches (float64) instead of event batches")
	rate := flag.Float64("rate", 0, "aggregate rate limit in samples/second (0 = unlimited)")
	window := flag.Int("window", 0, "per-connection replay window in batches (0 = client default)")
	ack := flag.String("ack", "applied", "window-release ack mode: applied|durable")
	retryBudget := flag.Duration("retry-budget", 0, "max retry time without progress (0 = client default)")
	flag.Parse()

	var ackMode client.AckMode
	switch *ack {
	case "applied":
		ackMode = client.AckApplied
	case "durable":
		ackMode = client.AckDurable
	default:
		log.Fatalf("dpdload: unknown -ack %q (want applied|durable)", *ack)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Addr:             *addr,
		Conns:            *conns,
		Streams:          *streams,
		KeyBase:          *keyBase,
		SamplesPerStream: *samples,
		BatchSize:        *batch,
		Period:           *period,
		PatternStride:    *stride,
		Magnitude:        *magnitude,
		Rate:             *rate,
		Window:           *window,
		Ack:              ackMode,
		RetryBudget:      *retryBudget,
	})
	if err != nil {
		log.Fatalf("dpdload: %v", err)
	}
	fmt.Println(rep)
}
