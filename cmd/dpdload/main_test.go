package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"dpd"
	"dpd/internal/client"
	"dpd/internal/loadgen"
)

// TestBuildConfigValidation is the table of flag combinations dpdload
// accepts and rejects, and what each one assembles.
func TestBuildConfigValidation(t *testing.T) {
	base := options{
		addr: "localhost:7700", conns: 4, streams: 64, samples: 4096,
		batch: 256, period: 8, ack: "applied", dist: "uniform", seed: 1,
	}
	for _, tc := range []struct {
		name    string
		mut     func(*options)
		check   func(t *testing.T, cfg loadgen.Config)
		wantErr string
	}{
		{
			name: "defaults",
			mut:  func(o *options) {},
			check: func(t *testing.T, cfg loadgen.Config) {
				if cfg.Workload.Dist.Kind != loadgen.DistUniform || cfg.Workload.Seed != 1 {
					t.Errorf("defaults built workload %+v", cfg.Workload)
				}
				if cfg.Ack != client.AckApplied {
					t.Errorf("defaults built ack %v", cfg.Ack)
				}
			},
		},
		{
			name: "zipf with churn and burst",
			mut: func(o *options) {
				o.dist, o.seed, o.churn, o.burst, o.mixed = "zipf:0.99", 42, 8, "4096:250ms", true
			},
			check: func(t *testing.T, cfg loadgen.Config) {
				w := cfg.Workload
				if w.Dist.Kind != loadgen.DistZipf || w.Dist.Theta != 0.99 || w.Seed != 42 || w.Churn != 8 || !w.Mixed {
					t.Errorf("built workload %+v", w)
				}
				if len(w.Phases) != 1 || w.Phases[0].Samples != 4096 || w.Phases[0].Pause != 250*time.Millisecond {
					t.Errorf("built phases %+v", w.Phases)
				}
			},
		},
		{
			name: "durable ack and retry budget",
			mut:  func(o *options) { o.ack, o.retryBudget = "durable", "30s" },
			check: func(t *testing.T, cfg loadgen.Config) {
				if cfg.Ack != client.AckDurable || cfg.RetryBudget != 30*time.Second {
					t.Errorf("built ack=%v budget=%v", cfg.Ack, cfg.RetryBudget)
				}
			},
		},
		{name: "bad ack", mut: func(o *options) { o.ack = "never" }, wantErr: "-ack"},
		{name: "bad retry budget", mut: func(o *options) { o.retryBudget = "soon" }, wantErr: "-retry-budget"},
		{name: "bare zipf", mut: func(o *options) { o.dist = "zipf" }, wantErr: "-dist"},
		{name: "bad theta", mut: func(o *options) { o.dist = "zipf:hot" }, wantErr: "-dist"},
		{name: "negative theta", mut: func(o *options) { o.dist = "zipf:-1" }, wantErr: "-dist"},
		{name: "unknown dist", mut: func(o *options) { o.dist = "pareto" }, wantErr: "-dist"},
		{name: "bad burst shape", mut: func(o *options) { o.burst = "4096" }, wantErr: "-burst"},
		{name: "bad burst on", mut: func(o *options) { o.burst = "0:250ms" }, wantErr: "-burst"},
		{name: "bad burst off", mut: func(o *options) { o.burst = "64:often" }, wantErr: "-burst"},
		{name: "negative churn", mut: func(o *options) { o.churn = -2 }, wantErr: "-churn"},
		{name: "mixed with magnitude", mut: func(o *options) { o.mixed, o.magnitude = true, true }, wantErr: "exclusive"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mut(&o)
			cfg, err := buildConfig(o)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("buildConfig err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, cfg)
		})
	}
}

// TestGoldenSequenceSameFlags: two runs assembled from the identical
// flag set produce the identical per-stream sample sequence — equal
// fingerprints, equal per-stream counts, equal detector states. This is
// the CLI-level reproducibility contract behind `dpdload -seed`.
func TestGoldenSequenceSameFlags(t *testing.T) {
	o := options{
		conns: 4, streams: 32, samples: 128, batch: 16, period: 6,
		ack: "applied", dist: "zipf:0.99", seed: 42, churn: 2,
	}
	run := func() (loadgen.Report, map[uint64]dpd.Stat) {
		cfg, err := buildConfig(o)
		if err != nil {
			t.Fatal(err)
		}
		p, err := dpd.NewPool(dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rep, err := loadgen.RunPool(context.Background(), cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		stats := make(map[uint64]dpd.Stat)
		for _, st := range p.Snapshot(nil) {
			stats[st.Key] = st.Stat
		}
		return rep, stats
	}
	repA, statsA := run()
	repB, statsB := run()
	if repA.Fingerprint != repB.Fingerprint {
		t.Fatalf("same flags, different fingerprints: %#x != %#x", repA.Fingerprint, repB.Fingerprint)
	}
	if repA.Samples != repB.Samples || repA.DistinctStreams != repB.DistinctStreams {
		t.Fatalf("same flags, different totals: %d/%d vs %d/%d",
			repA.Samples, repA.DistinctStreams, repB.Samples, repB.DistinctStreams)
	}
	for k, n := range repA.StreamSamples {
		if repB.StreamSamples[k] != n {
			t.Fatalf("stream %d: %d samples vs %d", k, n, repB.StreamSamples[k])
		}
	}
	if len(statsA) != len(statsB) {
		t.Fatalf("different stream counts: %d vs %d", len(statsA), len(statsB))
	}
	for k, st := range statsA {
		if statsB[k] != st {
			t.Fatalf("stream %d: detector state differs across identical flag runs", k)
		}
	}
}

// TestPrintDetails: the extras renderer surfaces phases, hottest
// streams and the fingerprint.
func TestPrintDetails(t *testing.T) {
	rep := loadgen.Report{
		DistinctStreams: 2,
		Fingerprint:     0xabc,
		StreamSamples:   map[uint64]uint64{3: 100, 9: 40},
		Phases: []loadgen.PhaseReport{
			{Name: "burst", Samples: 140, MelemsPerSec: 1.5},
		},
	}
	var sb strings.Builder
	printDetails(&sb, rep)
	out := sb.String()
	for _, want := range []string{"burst", "3×100", "9×40", "0xabc", "2 distinct"} {
		if !strings.Contains(out, want) {
			t.Errorf("printDetails output missing %q:\n%s", want, out)
		}
	}
}
