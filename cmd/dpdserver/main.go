// Command dpdserver serves the detector pool over the network: a binary
// ingest listener (the dpd ingest protocol; see internal/server), an
// HTTP query/control plane, and a durable checkpoint loop so a restart
// continues every stream byte-identically.
//
// Start a durable server, generate load, query a stream:
//
//	dpdserver -ingest :7700 -http :7701 -checkpoint-dir /var/lib/dpd &
//	dpdload -addr localhost:7700 -conns 8 -streams 1000 -samples 4096
//	curl localhost:7701/streams/42
//
// SIGINT/SIGTERM shut the server down gracefully: ingest drains, the
// pool quiesces, and a final checkpoint captures the complete state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dpd"
	"dpd/internal/cluster"
	"dpd/internal/obs"
	"dpd/internal/server"
)

func main() {
	ingest := flag.String("ingest", ":7700", "binary ingest plane listen address")
	httpAddr := flag.String("http", ":7701", "HTTP query/control plane listen address (empty disables)")
	debugAddr := flag.String("debug-addr", "", "pprof debug plane listen address (empty disables /debug/pprof)")
	recorderEvents := flag.Int("recorder-events", 0, "flight-recorder ring capacity in events (0 = default 4096)")
	engine := flag.String("engine", "event", "per-stream detector engine: event|magnitude|multiscale|adaptive")
	window := flag.Int("window", 0, "window size N (0 = engine default; invalid for multiscale/adaptive)")
	confirm := flag.Int("confirm", 0, "consecutive confirmations before locking (0 = default)")
	grace := flag.Int("grace", -1, "violations tolerated before unlocking (-1 = default)")
	magThresh := flag.Float64("mag-threshold", 0, "magnitude engine relative threshold (0 = default 0.5)")
	ladder := flag.String("ladder", "", "multiscale ladder windows, comma-separated (empty = default ladder)")
	shards := flag.Int("shards", 0, "pool shard count (0 = GOMAXPROCS)")
	idleTTL := flag.Uint64("idle-ttl", 0, "evict a stream after this many shard samples without traffic (0 = never)")
	adaptive := flag.Bool("adaptive", false, "enable contention-adaptive hot-stream placement (celebrity streams get dedicated pinned workers)")
	adaptiveMaxHot := flag.Int("adaptive-max-hot", 0, "max streams promoted at once (0 = default)")
	adaptiveFoldEvery := flag.Duration("adaptive-fold-every", 0, "coordinator sampling-fold cadence (0 = default)")
	adaptivePromote := flag.Float64("adaptive-promote-share", 0, "global traffic share that promotes a stream, e.g. 0.10 (0 = default)")
	adaptiveDemote := flag.Float64("adaptive-demote-share", 0, "traffic share below which a hot stream cools (0 = default promote/4)")
	adaptivePromoteAfter := flag.Int("adaptive-promote-after", 0, "consecutive qualifying folds before promotion (0 = default)")
	adaptiveDemoteAfter := flag.Int("adaptive-demote-after", 0, "consecutive cold folds before demotion (0 = default)")
	adaptiveSampleEvery := flag.Int("adaptive-sample-every", 0, "mean feed calls between contention-sketch observations (0 = default)")
	ckptDir := flag.String("checkpoint-dir", "", "durable checkpoint directory (empty disables durability)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "interval between durable checkpoints")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoint files to retain")
	maxConns := flag.Int("max-conns", 0, "ingest connection admission limit (0 = unlimited)")
	maxPending := flag.Int64("max-pending-bytes", 0, "global pending-memory limit in bytes before shedding (0 = unlimited)")
	connPending := flag.Int64("conn-pending-bytes", 0, "per-connection pending-memory limit in bytes (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "back-off hint sent with overload error frames")
	clusterSelf := flag.String("cluster-self", "", "this node's cluster member name (enables cluster mode)")
	clusterTransfer := flag.String("cluster-transfer", "", "transfer-plane listen address (cluster mode; default ingest port+2)")
	var clusterNodes nodeFlags
	flag.Var(&clusterNodes, "cluster-node", "cluster member as name=ingest,http,transfer (repeatable; must include -cluster-self; omit to join via a later table POST)")
	followEvery := flag.Duration("follow-every", 200*time.Millisecond, "follower replication cadence (cluster mode)")
	flag.Parse()

	factory, err := engineFactory(*engine, *window, *confirm, *grace, *magThresh, *ladder)
	if err != nil {
		log.Fatalf("dpdserver: %v", err)
	}

	// One observability core for the whole process: the server, its pool
	// and (in cluster mode) the node all record into the same flight
	// recorder, so /debug/events interleaves every layer on one clock.
	obsSet := obs.NewSet(*recorderEvents)

	scfg := server.Config{
		IngestAddr: *ingest,
		HTTPAddr:   *httpAddr,
		DebugAddr:  *debugAddr,
		Obs:        obsSet,
		Pool: dpd.PoolConfig{
			Shards:      *shards,
			NewDetector: factory,
			IdleTTL:     *idleTTL,
			Adaptive: dpd.AdaptiveConfig{
				Enable:       *adaptive,
				MaxHot:       *adaptiveMaxHot,
				FoldEvery:    *adaptiveFoldEvery,
				PromoteShare: *adaptivePromote,
				DemoteShare:  *adaptiveDemote,
				PromoteAfter: *adaptivePromoteAfter,
				DemoteAfter:  *adaptiveDemoteAfter,
				SampleEvery:  *adaptiveSampleEvery,
			},
		},
		CheckpointDir:    *ckptDir,
		CheckpointEvery:  *ckptEvery,
		CheckpointKeep:   *ckptKeep,
		MaxConns:         *maxConns,
		MaxPendingBytes:  *maxPending,
		ConnPendingBytes: *connPending,
		RetryAfter:       *retryAfter,
	}

	// Cluster mode: build the node first so its hooks (ownership check,
	// /cluster/* routes, metrics section) ride the server's planes, and
	// hand durability to the replication loop.
	var node *cluster.Node
	if *clusterSelf != "" {
		taddr := *clusterTransfer
		if taddr == "" {
			var terr error
			if taddr, terr = defaultTransferAddr(*ingest); terr != nil {
				log.Fatalf("dpdserver: -cluster-transfer required: %v", terr)
			}
		}
		node, err = cluster.NewNode(cluster.NodeConfig{
			Self:         *clusterSelf,
			TransferAddr: taddr,
			FollowEvery:  *followEvery,
			Logf:         log.Printf,
			Obs:          obsSet,
		})
		if err != nil {
			log.Fatalf("dpdserver: %v", err)
		}
		scfg.OwnerCheck = node.OwnerCheck
		scfg.RegisterHTTP = node.RegisterHTTP
		scfg.ClusterMetrics = node.Metrics
		scfg.ExternalDurability = true
	}

	srv, err := server.New(scfg)
	if err != nil {
		log.Fatalf("dpdserver: %v", err)
	}
	if node != nil {
		node.Start(srv)
		if len(clusterNodes.members) > 0 {
			table, terr := cluster.NewTable(1, clusterNodes.members, nil)
			if terr != nil {
				log.Fatalf("dpdserver: -cluster-node: %v", terr)
			}
			if !table.Has(*clusterSelf) {
				log.Fatalf("dpdserver: -cluster-node list does not include -cluster-self %q", *clusterSelf)
			}
			if terr := node.InstallTable(table); terr != nil {
				log.Fatalf("dpdserver: %v", terr)
			}
		}
	}
	srv.Start()
	adaptNote := ""
	if st := srv.Pool().AdaptiveStats(); st.Enabled {
		adaptNote = fmt.Sprintf(", adaptive placement (max %d hot)", st.MaxHot)
	}
	if node != nil {
		log.Printf("dpdserver: ingest on %s, http on %s, engine %s, %d shards%s, cluster node %q (transfer on %s)",
			srv.Addr(), srv.HTTPAddr(), *engine, srv.Pool().Shards(), adaptNote, *clusterSelf, node.TransferAddr())
	} else {
		log.Printf("dpdserver: ingest on %s, http on %s, engine %s, %d shards%s",
			srv.Addr(), srv.HTTPAddr(), *engine, srv.Pool().Shards(), adaptNote)
	}
	if da := srv.DebugAddr(); da != "" {
		log.Printf("dpdserver: pprof debug plane on %s", da)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("dpdserver: shutting down (draining ingest, quiescing pool, final checkpoint)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if node != nil {
		node.Close()
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("dpdserver: shutdown: %v", err)
	}
	log.Printf("dpdserver: stopped cleanly")
}

// nodeFlags collects repeated -cluster-node flags, each of the form
// name=ingest,http,transfer.
type nodeFlags struct {
	members []cluster.Member
}

// String renders the accumulated members (flag.Value).
func (f *nodeFlags) String() string {
	parts := make([]string, len(f.members))
	for i, m := range f.members {
		parts[i] = fmt.Sprintf("%s=%s,%s,%s", m.Name, m.Ingest, m.HTTP, m.Transfer)
	}
	return strings.Join(parts, " ")
}

// Set parses one -cluster-node value (flag.Value).
func (f *nodeFlags) Set(v string) error {
	name, addrs, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=ingest,http,transfer, got %q", v)
	}
	parts := strings.Split(addrs, ",")
	if len(parts) != 3 {
		return fmt.Errorf("want name=ingest,http,transfer, got %q", v)
	}
	f.members = append(f.members, cluster.Member{
		Name:     name,
		Ingest:   strings.TrimSpace(parts[0]),
		HTTP:     strings.TrimSpace(parts[1]),
		Transfer: strings.TrimSpace(parts[2]),
	})
	return nil
}

// defaultTransferAddr derives the transfer listen address from the
// ingest one: same host, port+2 (the HTTP plane conventionally sits at
// port+1).
func defaultTransferAddr(ingest string) (string, error) {
	host, port, err := net.SplitHostPort(ingest)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil || p == 0 {
		return "", fmt.Errorf("cannot derive a transfer port from ingest address %q", ingest)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+2)), nil
}

// engineFactory builds and validates the per-stream detector factory
// from the engine flags; validation happens once, up front, so shard
// workers can never hit a construction error.
func engineFactory(engine string, window, confirm, grace int, magThresh float64, ladder string) (func() dpd.Detector, error) {
	var opts []dpd.Option
	switch engine {
	case "event":
	case "magnitude":
		opts = append(opts, dpd.WithMagnitude(magThresh))
	case "multiscale":
		var windows []int
		if ladder != "" {
			for _, f := range strings.Split(ladder, ",") {
				w, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("bad -ladder entry %q: %v", f, err)
				}
				windows = append(windows, w)
			}
		}
		opts = append(opts, dpd.WithLadder(windows...))
	case "adaptive":
		opts = append(opts, dpd.WithAdaptive(dpd.DefaultAdaptivePolicy()))
	default:
		return nil, fmt.Errorf("unknown -engine %q (want event|magnitude|multiscale|adaptive)", engine)
	}
	if window != 0 {
		opts = append(opts, dpd.WithWindow(window))
	}
	if confirm != 0 {
		opts = append(opts, dpd.WithConfirm(confirm))
	}
	if grace >= 0 {
		opts = append(opts, dpd.WithGrace(grace))
	}
	if _, err := dpd.New(opts...); err != nil {
		return nil, err
	}
	return func() dpd.Detector { return dpd.Must(opts...) }, nil
}
