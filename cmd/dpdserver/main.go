// Command dpdserver serves the detector pool over the network: a binary
// ingest listener (the dpd ingest protocol; see internal/server), an
// HTTP query/control plane, and a durable checkpoint loop so a restart
// continues every stream byte-identically.
//
// Start a durable server, generate load, query a stream:
//
//	dpdserver -ingest :7700 -http :7701 -checkpoint-dir /var/lib/dpd &
//	dpdload -addr localhost:7700 -conns 8 -streams 1000 -samples 4096
//	curl localhost:7701/streams/42
//
// SIGINT/SIGTERM shut the server down gracefully: ingest drains, the
// pool quiesces, and a final checkpoint captures the complete state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dpd"
	"dpd/internal/server"
)

func main() {
	ingest := flag.String("ingest", ":7700", "binary ingest plane listen address")
	httpAddr := flag.String("http", ":7701", "HTTP query/control plane listen address (empty disables)")
	engine := flag.String("engine", "event", "per-stream detector engine: event|magnitude|multiscale|adaptive")
	window := flag.Int("window", 0, "window size N (0 = engine default; invalid for multiscale/adaptive)")
	confirm := flag.Int("confirm", 0, "consecutive confirmations before locking (0 = default)")
	grace := flag.Int("grace", -1, "violations tolerated before unlocking (-1 = default)")
	magThresh := flag.Float64("mag-threshold", 0, "magnitude engine relative threshold (0 = default 0.5)")
	ladder := flag.String("ladder", "", "multiscale ladder windows, comma-separated (empty = default ladder)")
	shards := flag.Int("shards", 0, "pool shard count (0 = GOMAXPROCS)")
	idleTTL := flag.Uint64("idle-ttl", 0, "evict a stream after this many shard samples without traffic (0 = never)")
	ckptDir := flag.String("checkpoint-dir", "", "durable checkpoint directory (empty disables durability)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "interval between durable checkpoints")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoint files to retain")
	maxConns := flag.Int("max-conns", 0, "ingest connection admission limit (0 = unlimited)")
	maxPending := flag.Int64("max-pending-bytes", 0, "global pending-memory limit in bytes before shedding (0 = unlimited)")
	connPending := flag.Int64("conn-pending-bytes", 0, "per-connection pending-memory limit in bytes (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "back-off hint sent with overload error frames")
	flag.Parse()

	factory, err := engineFactory(*engine, *window, *confirm, *grace, *magThresh, *ladder)
	if err != nil {
		log.Fatalf("dpdserver: %v", err)
	}

	srv, err := server.New(server.Config{
		IngestAddr: *ingest,
		HTTPAddr:   *httpAddr,
		Pool: dpd.PoolConfig{
			Shards:      *shards,
			NewDetector: factory,
			IdleTTL:     *idleTTL,
		},
		CheckpointDir:    *ckptDir,
		CheckpointEvery:  *ckptEvery,
		CheckpointKeep:   *ckptKeep,
		MaxConns:         *maxConns,
		MaxPendingBytes:  *maxPending,
		ConnPendingBytes: *connPending,
		RetryAfter:       *retryAfter,
	})
	if err != nil {
		log.Fatalf("dpdserver: %v", err)
	}
	srv.Start()
	log.Printf("dpdserver: ingest on %s, http on %s, engine %s, %d shards",
		srv.Addr(), srv.HTTPAddr(), *engine, srv.Pool().Shards())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("dpdserver: shutting down (draining ingest, quiescing pool, final checkpoint)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("dpdserver: shutdown: %v", err)
	}
	log.Printf("dpdserver: stopped cleanly")
}

// engineFactory builds and validates the per-stream detector factory
// from the engine flags; validation happens once, up front, so shard
// workers can never hit a construction error.
func engineFactory(engine string, window, confirm, grace int, magThresh float64, ladder string) (func() dpd.Detector, error) {
	var opts []dpd.Option
	switch engine {
	case "event":
	case "magnitude":
		opts = append(opts, dpd.WithMagnitude(magThresh))
	case "multiscale":
		var windows []int
		if ladder != "" {
			for _, f := range strings.Split(ladder, ",") {
				w, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("bad -ladder entry %q: %v", f, err)
				}
				windows = append(windows, w)
			}
		}
		opts = append(opts, dpd.WithLadder(windows...))
	case "adaptive":
		opts = append(opts, dpd.WithAdaptive(dpd.DefaultAdaptivePolicy()))
	default:
		return nil, fmt.Errorf("unknown -engine %q (want event|magnitude|multiscale|adaptive)", engine)
	}
	if window != 0 {
		opts = append(opts, dpd.WithWindow(window))
	}
	if confirm != 0 {
		opts = append(opts, dpd.WithConfirm(confirm))
	}
	if grace >= 0 {
		opts = append(opts, dpd.WithGrace(grace))
	}
	if _, err := dpd.New(opts...); err != nil {
		return nil, err
	}
	return func() dpd.Detector { return dpd.Must(opts...) }, nil
}
