// Command dpdtool runs the DPD over a recorded trace file and reports the
// detected periodicities, segmentation and (for CPU traces) the distance
// curve — the offline twin of the paper's synthetic overhead benchmark.
//
// Usage:
//
//	tracegen -app hydro2d -o h.trc && dpdtool h.trc
//	tracegen -app ft -kind cpu -o ft.trc && dpdtool -curve ft.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dpd/internal/core"
	"dpd/internal/textplot"
	"dpd/internal/trace"
)

func main() {
	window := flag.Int("window", 100, "window size N for cpu traces")
	minLock := flag.Uint64("min-lock", 8, "samples a periodicity must hold to be reported")
	showCurve := flag.Bool("curve", false, "plot the final distance curve (cpu traces)")
	binary := flag.Bool("binary", false, "input is in binary trace format")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpdtool [flags] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var ev *trace.EventTrace
	var cpu *trace.CPUTrace
	if *binary {
		ev, cpu, err = trace.ReadBinary(f)
	} else {
		ev, cpu, err = trace.ReadText(f)
	}
	if err != nil {
		fatal(err)
	}

	switch {
	case ev != nil:
		analyzeEvents(ev, *minLock)
	case cpu != nil:
		analyzeCPU(cpu, *window, *showCurve)
	}
}

func analyzeEvents(ev *trace.EventTrace, minLock uint64) {
	ms := core.MustMultiScaleDetector(nil, core.Config{})
	pt := core.NewPeriodTracker()
	start := time.Now()
	segments := 0
	for _, v := range ev.Values {
		mr := ms.Feed(v)
		pt.ObserveMulti(mr, ms)
		if mr.Primary.Start {
			segments++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("trace %q: %d events\n", ev.Name, ev.Len())
	rows := [][]string{{"period", "first at", "locked samples", "segments", "window"}}
	for _, s := range pt.Stats() {
		if s.Samples < minLock {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Period),
			fmt.Sprintf("%d", s.FirstAt),
			fmt.Sprintf("%d", s.Samples),
			fmt.Sprintf("%d", s.Starts),
			fmt.Sprintf("%d", s.Window),
		})
	}
	fmt.Print(textplot.Table(rows))
	fmt.Printf("%d primary segmentation marks; processed in %v (%.3f µs/element)\n",
		segments, elapsed, float64(elapsed.Microseconds())/float64(ev.Len()))
}

func analyzeCPU(cpu *trace.CPUTrace, window int, showCurve bool) {
	det, err := core.NewMagnitudeDetector(core.Config{Window: window, Confirm: 3})
	if err != nil {
		fatal(err)
	}
	var last core.Result
	start := time.Now()
	for _, v := range cpu.Samples {
		last = det.Feed(v)
	}
	elapsed := time.Since(start)

	fmt.Printf("trace %q: %d samples at %v\n", cpu.Name, cpu.Len(), cpu.Interval)
	if last.Locked {
		fmt.Printf("periodicity m=%d samples (%v), confidence %.2f\n",
			last.Period, time.Duration(last.Period)*cpu.Interval, last.Confidence)
	} else {
		fmt.Println("no periodicity established at end of trace")
	}
	fmt.Printf("processed in %v (%.3f µs/element)\n", elapsed, float64(elapsed.Microseconds())/float64(cpu.Len()))
	if showCurve {
		c := det.Curve()
		fmt.Print(textplot.Curve(c.D, last.Period, textplot.Options{
			Width: 99, Height: 14,
			YLabel: fmt.Sprintf("distance d(m), window N=%d", window),
			XLabel: "lag m",
		}))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dpdtool: %v\n", err)
	os.Exit(1)
}
