// Command dpdtool runs a detector over a recorded trace file and reports
// the detected periodicities, segmentation and (for CPU traces) the
// distance curve — the offline twin of the paper's synthetic overhead
// benchmark, rebuilt on the unified dpd.New options surface.
//
// Usage:
//
//	tracegen -app hydro2d -o h.trc && dpdtool h.trc
//	tracegen -app ft -kind cpu -o ft.trc && dpdtool -curve ft.trc
//	dpdtool -engine adaptive -observer h.trc      # print lock/segment events
//	dpdtool -engine multiscale -json h.trc        # machine-readable output
//
//	dpdtool -save warm.dpds first-half.trc        # checkpoint after the trace
//	dpdtool -load warm.dpds second-half.trc       # resume from the checkpoint
//
// The -engine flag selects any of the four engines (event, magnitude,
// multiscale, adaptive); the default is multiscale for event traces and
// magnitude for CPU traces, matching the paper's usage of eq. (2) and
// eq. (1).
//
// -save writes the detector's full state after the trace has been fed;
// -load resumes from such a checkpoint, so a trace can be analyzed in
// installments without ever cold-starting the lock. With -load the
// engine and its configuration come from the checkpoint itself; any
// -engine/-window/-confirm flags given alongside are validated against
// it and a mismatch is an error, not a silent reconfiguration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dpd"
	"dpd/internal/textplot"
	"dpd/internal/trace"
)

func main() {
	engine := flag.String("engine", "", "detector engine: event|magnitude|multiscale|adaptive (default: multiscale for event traces, magnitude for cpu traces)")
	window := flag.Int("window", 0, "window size N (0 = engine default; invalid for multiscale/adaptive)")
	confirm := flag.Int("confirm", 0, "consecutive confirmations before locking (0 = default; 3 for cpu traces)")
	minLock := flag.Uint64("min-lock", 8, "samples a periodicity must hold to be reported")
	observe := flag.Bool("observer", false, "print lock/period-change/segment/unlock events as they happen")
	jsonOut := flag.Bool("json", false, "emit the analysis as JSON for scripting")
	showCurve := flag.Bool("curve", false, "plot the final distance curve (magnitude engine)")
	binary := flag.Bool("binary", false, "input is in binary trace format")
	saveFile := flag.String("save", "", "write a detector checkpoint to this file after the trace")
	loadFile := flag.String("load", "", "resume from a detector checkpoint instead of cold-starting")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dpdtool [flags] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var ev *trace.EventTrace
	var cpu *trace.CPUTrace
	if *binary {
		ev, cpu, err = trace.ReadBinary(f)
	} else {
		ev, cpu, err = trace.ReadText(f)
	}
	if err != nil {
		fatal(err)
	}

	// Assemble the option list from the flags; dpd.New (or dpd.Restore,
	// which validates the options against the checkpoint) reports every
	// invalid combination in one error.
	isCPU := cpu != nil
	eng := *engine
	if eng == "" && *loadFile == "" {
		if isCPU {
			eng = "magnitude"
		} else {
			eng = "multiscale"
		}
	}
	var opts []dpd.Option
	switch eng {
	case "", "event":
	case "magnitude", "multiscale", "adaptive":
		if *loadFile == "" {
			// Fresh construction: the named engine brings its default
			// parameters. With -load, -engine asserts only the KIND
			// (checked after restore) — appending the default ladder /
			// policy / threshold here would wrongly reject checkpoints
			// taken with non-default parameters.
			switch eng {
			case "magnitude":
				opts = append(opts, dpd.WithMagnitude(0))
				if *confirm == 0 {
					*confirm = 3 // the paper's setting for noisy CPU curves
				}
			case "multiscale":
				opts = append(opts, dpd.WithLadder())
			case "adaptive":
				opts = append(opts, dpd.WithAdaptive(dpd.DefaultAdaptivePolicy()))
			}
		}
	default:
		fatal(fmt.Errorf("unknown engine %q (want event|magnitude|multiscale|adaptive)", eng))
	}
	if *showCurve && *jsonOut {
		fatal(fmt.Errorf("-curve and -json are mutually exclusive output modes"))
	}
	if *window != 0 {
		opts = append(opts, dpd.WithWindow(*window))
	}
	// No -window: dpd.New's defaults already match the paper (1024 for
	// the event engine, 100 for the magnitude engine).
	if *confirm != 0 {
		opts = append(opts, dpd.WithConfirm(*confirm))
	}

	// The subscription API replaces per-sample polling for the event log.
	type obsEvent struct {
		Kind   string `json:"kind"`
		T      uint64 `json:"t"`
		Period int    `json:"period,omitempty"`
		Prev   int    `json:"prev_period,omitempty"`
	}
	var events []obsEvent
	record := func(e *dpd.Event) {
		oe := obsEvent{Kind: e.Kind.String(), T: e.T, Period: e.Period, Prev: e.PrevPeriod}
		if *observe && !*jsonOut {
			fmt.Printf("t=%-8d %-13s period=%-5d prev=%d\n", oe.T, oe.Kind, oe.Period, oe.Prev)
		}
		// Only the JSON output consumes the event log; starts are
		// summarized there via stat.starts rather than listed.
		if *jsonOut && e.Kind != dpd.EventSegmentStart {
			events = append(events, oe)
		}
	}
	if *observe || *jsonOut {
		opts = append(opts, dpd.WithObserver(dpd.ObserverFuncs{
			Lock: record, PeriodChange: record, SegmentStart: record, Unlock: record,
		}))
	}

	var det dpd.Detector
	if *loadFile != "" {
		blob, rerr := os.ReadFile(*loadFile)
		if rerr != nil {
			fatal(rerr)
		}
		det, err = dpd.Restore(blob, opts...)
		if err != nil {
			fatal(err)
		}
		got := engineName(det)
		if eng != "" && got != eng {
			fatal(fmt.Errorf("checkpoint %s holds %s-engine state but -engine requests %s", *loadFile, got, eng))
		}
		eng = got
	} else {
		det, err = dpd.New(opts...)
		if err != nil {
			fatal(err)
		}
	}
	// The engine must match the trace kind: magnitude engines read
	// Sample.Magnitude, event engines Sample.Value — a mismatch would
	// confidently analyze a stream of zeros. Checked after -load so a
	// checkpoint's engine is held to the same rule.
	if isCPU && eng != "magnitude" {
		fatal(fmt.Errorf("engine %q cannot analyze a cpu trace (magnitude stream); use -engine magnitude", eng))
	}
	if !isCPU && eng == "magnitude" {
		fatal(fmt.Errorf("the magnitude engine cannot analyze an event trace; use -engine event|multiscale|adaptive"))
	}
	if *showCurve && eng != "magnitude" {
		fatal(fmt.Errorf("-curve requires the magnitude engine (got %s)", eng))
	}

	// Feed the whole trace through the unified interface.
	name, n := "", 0
	pt := dpd.NewPeriodTracker()
	start := time.Now()
	if isCPU {
		name, n = cpu.Name, cpu.Len()
		for _, v := range cpu.Samples {
			pt.Observe(det.Feed(dpd.MagnitudeSample(v)), det.Window())
		}
	} else {
		name, n = ev.Name, ev.Len()
		for _, v := range ev.Values {
			pt.Observe(det.Feed(dpd.EventSample(v)), det.Window())
		}
	}
	elapsed := time.Since(start)
	st := det.Snapshot()

	if *saveFile != "" {
		blob, err := dpd.Checkpoint(det)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*saveFile, blob, 0o644); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("checkpoint: %d bytes (%d samples of accumulated state) -> %s\n", len(blob), st.Samples, *saveFile)
		}
	}

	// The tracker observed the unified (primary) result, so for the
	// multi-scale engine every period's Window was recorded as the
	// outermost ladder window; restore the documented meaning — the
	// smallest window that can confirm the period, which is the level
	// that certifies it first (smaller windows fill sooner).
	periods := pt.Stats()
	if ms, ok := det.(*dpd.MultiScaleEngine); ok {
		for i := range periods {
			for l := 0; l < ms.Ladder().Levels(); l++ {
				if w := ms.Ladder().Level(l).Window(); w > periods[i].Period {
					periods[i].Window = w
					break
				}
			}
		}
	}

	if *jsonOut {
		out := struct {
			Trace   string           `json:"trace"`
			Kind    string           `json:"kind"`
			Engine  string           `json:"engine"`
			Samples int              `json:"samples"`
			Stat    dpd.Stat         `json:"stat"`
			Periods []dpd.PeriodStat `json:"periods"`
			Events  []obsEvent       `json:"events"`
			NsPerEl float64          `json:"ns_per_elem"`
		}{
			Trace: name, Kind: kindName(isCPU), Engine: eng, Samples: n,
			Stat: st, Periods: periods, Events: events,
			NsPerEl: float64(elapsed.Nanoseconds()) / float64(n),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("trace %q (%s): %d samples, engine %s\n", name, kindName(isCPU), n, eng)
	rows := [][]string{{"period", "first at", "locked samples", "segments"}}
	for _, s := range periods {
		if s.Samples < *minLock {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Period),
			fmt.Sprintf("%d", s.FirstAt),
			fmt.Sprintf("%d", s.Samples),
			fmt.Sprintf("%d", s.Starts),
		})
	}
	fmt.Print(textplot.Table(rows))
	if st.Locked {
		fmt.Printf("final lock: period %d (confidence %.2f, window %d)\n", st.Period, st.Confidence, st.Window)
	} else {
		fmt.Println("no periodicity established at end of trace")
	}
	if ms, ok := det.(*dpd.MultiScaleEngine); ok {
		fmt.Printf("ladder locks per level: %v\n", ms.Ladder().LockedPeriods())
	}
	fmt.Printf("%d segment starts; processed in %v (%.3f µs/element)\n",
		st.Starts, elapsed, float64(elapsed.Microseconds())/float64(n))
	if *showCurve {
		c := det.(*dpd.MagnitudeEngine).Detector().Curve()
		fmt.Print(textplot.Curve(c.D, st.Period, textplot.Options{
			Width: 99, Height: 14,
			YLabel: fmt.Sprintf("distance d(m), window N=%d", det.Window()),
			XLabel: "lag m",
		}))
	}
}

// kindName names the trace kind for output.
func kindName(isCPU bool) string {
	if isCPU {
		return "cpu"
	}
	return "event"
}

// engineName maps a restored detector's dynamic type back to the
// -engine flag vocabulary.
func engineName(det dpd.Detector) string {
	switch det.(type) {
	case *dpd.EventEngine:
		return "event"
	case *dpd.MagnitudeEngine:
		return "magnitude"
	case *dpd.MultiScaleEngine:
		return "multiscale"
	case *dpd.AdaptiveEngine:
		return "adaptive"
	}
	return "unknown"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dpdtool: %v\n", err)
	os.Exit(1)
}
