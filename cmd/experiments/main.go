// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [fig3|fig4|fig7|table2|table3|casestudy|sched|all]
//
// With no argument, everything is printed in paper order.
package main

import (
	"flag"
	"fmt"
	"os"

	"dpd/internal/experiments"
)

func main() {
	cpus := flag.Int("cpus", 16, "machine size for the case study and scheduler experiments")
	iters := flag.Int("ft-iterations", 50, "FT iterations for figures 3/4")
	seed := flag.Uint64("seed", 20010513, "jitter seed for the FT trace (0 = exactly periodic)")
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	run := func(name string, f func() error) {
		if what != "all" && what != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var fig3 experiments.Fig3Result
	fig3Ready := false
	ensureFig3 := func() {
		if !fig3Ready {
			fig3 = experiments.Figure3(*iters, *seed)
			fig3Ready = true
		}
	}

	run("fig3", func() error {
		ensureFig3()
		fmt.Println(fig3.Plot)
		return nil
	})
	run("fig4", func() error {
		ensureFig3()
		r := experiments.Figure4(fig3)
		fmt.Println(r.Plot)
		fmt.Printf("detected periodicity m=%d (confidence %.2f, locked at sample %d)\n\n",
			r.BestLag, r.Confidence, r.LockedAt)
		return nil
	})
	run("fig7", func() error {
		for _, p := range experiments.Figure7() {
			fmt.Println(p.Plot)
		}
		return nil
	})
	run("table2", func() error {
		fmt.Println(experiments.FormatTable2(experiments.Table2()))
		return nil
	})
	run("table3", func() error {
		fmt.Println(experiments.FormatTable3(experiments.Table3()))
		return nil
	})
	run("casestudy", func() error {
		fmt.Println(experiments.FormatCaseStudy(experiments.CaseStudy(*cpus)))
		return nil
	})
	run("sched", func() error {
		sr, err := experiments.Scheduler(*cpus)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScheduler(sr))
		return nil
	})

	switch what {
	case "all", "fig3", "fig4", "fig7", "table2", "table3", "casestudy", "sched":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", what)
		fmt.Fprintln(os.Stderr, "usage: experiments [fig3|fig4|fig7|table2|table3|casestudy|sched|all]")
		os.Exit(2)
	}
}
