// Command selfanalyze runs one of the evaluation applications on the
// simulated machine under the SelfAnalyzer (paper §5) and reports the
// dynamically identified region, measured speedup, and execution-time
// estimate against the actual run.
//
// Usage:
//
//	selfanalyze -app tomcatv -cpus 16
//	selfanalyze -app turb3d -cpus 8 -baseline 2
package main

import (
	"flag"
	"fmt"
	"os"

	"dpd/internal/apps"
	"dpd/internal/ditools"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/selfanalyzer"
)

func main() {
	appName := flag.String("app", "tomcatv", "application: tomcatv|swim|apsi|hydro2d|turb3d")
	cpus := flag.Int("cpus", 16, "machine size")
	alloc := flag.Int("alloc", 0, "processors allocated to the application (default: all)")
	baseline := flag.Int("baseline", 1, "baseline processor count for the speedup reference")
	probe := flag.Int("probe", 40, "iterations to run before printing the mid-run estimate")
	flag.Parse()

	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	if *alloc == 0 {
		*alloc = *cpus
	}

	m := machine.New(*cpus)
	reg := ditools.NewRegistry()
	rt, err := nanos.New(m, machine.DefaultCostModel(), *alloc, reg)
	if err != nil {
		fatal(err)
	}
	sa, err := selfanalyzer.Attach(rt, reg, selfanalyzer.Config{Baseline: *baseline})
	if err != nil {
		fatal(err)
	}

	n := *probe
	if n > app.Iterations {
		n = app.Iterations
	}
	app.RunIterations(rt, n)

	fmt.Printf("application %s on %d CPUs (allocated %d, baseline %d)\n", app.Name, *cpus, *alloc, *baseline)
	r := sa.Region()
	if r == nil {
		fmt.Println("no iterative structure identified yet")
		os.Exit(0)
	}
	fmt.Printf("parallel region: start address %#x, period %d loop calls (identified at %v)\n",
		r.StartAddr, r.Period, r.IdentifiedAt)
	st := sa.Snapshot()
	fmt.Printf("detector: %d events fed, outer period %d, %d period starts (window %d)\n",
		st.Samples, st.Period, st.Starts, st.Window)
	if s, ok := sa.Speedup(); ok {
		fmt.Printf("iteration time: %v on %d CPUs, %v on %d CPUs → speedup %.2f (efficiency %.2f)\n",
			r.CurrentTime, r.CurrentProcs, r.BaselineTime, r.BaselineProcs, s, r.Efficiency())
	} else {
		fmt.Println("speedup measurement still in progress")
	}
	if est, ok := sa.EstimateTotal(app.Iterations); ok {
		fmt.Printf("estimated total execution time (%d iterations): %v\n", app.Iterations, est)
		for i := n; i < app.Iterations; i++ {
			rt.RunIteration(app.Body)
		}
		actual := rt.Now()
		fmt.Printf("actual total execution time:                     %v (estimate off by %+.2f%%)\n",
			actual, 100*(float64(est)-float64(actual))/float64(actual))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "selfanalyze: %v\n", err)
	os.Exit(1)
}
