// Command tracegen produces the evaluation traces: the loop-address
// streams of the SPECfp95 skeletons and the FT CPU-usage trace.
//
// Usage:
//
//	tracegen -app tomcatv                  # event trace, text, stdout
//	tracegen -app ft -kind cpu -o ft.trc   # FT CPU trace to a file
//	tracegen -app hydro2d -format binary -o hydro2d.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpd/internal/apps"
	"dpd/internal/trace"
)

func main() {
	appName := flag.String("app", "tomcatv", "application: tomcatv|swim|apsi|hydro2d|turb3d|ft")
	kind := flag.String("kind", "event", "trace kind: event (loop addresses) or cpu (FT usage)")
	format := flag.String("format", "text", "output format: text or binary")
	out := flag.String("o", "", "output file (default stdout)")
	iters := flag.Int("ft-iterations", 50, "FT iterations for -kind cpu")
	seed := flag.Uint64("seed", 20010513, "jitter seed for -kind cpu (0 = exactly periodic)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	switch *kind {
	case "event":
		app, err := apps.ByName(*appName)
		if err != nil {
			fatal(err)
		}
		tr := app.Trace()
		if *format == "binary" {
			err = trace.WriteEventBinary(w, tr)
		} else {
			err = trace.WriteEventText(w, tr)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s, %d events\n", tr.Name, tr.Len())
	case "cpu":
		if *appName != "ft" {
			fatal(fmt.Errorf("cpu traces are produced by the ft model only"))
		}
		tr := apps.FTCPUTrace(*iters, *seed)
		var err error
		if *format == "binary" {
			err = trace.WriteCPUBinary(w, tr)
		} else {
			err = trace.WriteCPUText(w, tr)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s, %d samples at %v\n", tr.Name, tr.Len(), tr.Interval)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
