// Command tracegen produces the evaluation traces: the loop-address
// streams of the SPECfp95 skeletons and the FT CPU-usage trace.
//
// Usage:
//
//	tracegen -app tomcatv                  # event trace, text, stdout
//	tracegen -app ft -kind cpu -o ft.trc   # FT CPU trace to a file
//	tracegen -app hydro2d -format binary -o hydro2d.bin
//	tracegen -app swim -check -o s.trc     # verify the trace locks
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpd"
	"dpd/internal/apps"
	"dpd/internal/trace"
)

func main() {
	appName := flag.String("app", "tomcatv", "application: tomcatv|swim|apsi|hydro2d|turb3d|ft")
	kind := flag.String("kind", "event", "trace kind: event (loop addresses) or cpu (FT usage)")
	format := flag.String("format", "text", "output format: text or binary")
	out := flag.String("o", "", "output file (default stdout)")
	iters := flag.Int("ft-iterations", 50, "FT iterations for -kind cpu")
	seed := flag.Uint64("seed", 20010513, "jitter seed for -kind cpu (0 = exactly periodic)")
	check := flag.Bool("check", false, "feed the produced trace through a detector and report what it locks")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	switch *kind {
	case "event":
		app, err := apps.ByName(*appName)
		if err != nil {
			fatal(err)
		}
		tr := app.Trace()
		if *format == "binary" {
			err = trace.WriteEventBinary(w, tr)
		} else {
			err = trace.WriteEventText(w, tr)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s, %d events\n", tr.Name, tr.Len())
		if *check {
			// Sanity-check the produced trace: the multi-scale ladder
			// must establish the app's iterative structure.
			det := dpd.Must(dpd.WithLadder())
			for _, v := range tr.Values {
				det.Feed(dpd.EventSample(v))
			}
			st := det.Snapshot()
			if !st.Locked {
				fatal(fmt.Errorf("check: no periodicity locked over %d events", tr.Len()))
			}
			fmt.Fprintf(os.Stderr, "tracegen: check ok — outer period %d, %d segment starts\n", st.Period, st.Starts)
		}
	case "cpu":
		if *appName != "ft" {
			fatal(fmt.Errorf("cpu traces are produced by the ft model only"))
		}
		tr := apps.FTCPUTrace(*iters, *seed)
		var err error
		if *format == "binary" {
			err = trace.WriteCPUBinary(w, tr)
		} else {
			err = trace.WriteCPUText(w, tr)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s, %d samples at %v\n", tr.Name, tr.Len(), tr.Interval)
		if *check {
			det := dpd.Must(dpd.WithMagnitude(0), dpd.WithWindow(100), dpd.WithConfirm(3))
			for _, v := range tr.Samples {
				det.Feed(dpd.MagnitudeSample(v))
			}
			st := det.Snapshot()
			if !st.Locked {
				fatal(fmt.Errorf("check: no periodicity locked over %d samples", tr.Len()))
			}
			fmt.Fprintf(os.Stderr, "tracegen: check ok — period %d samples (confidence %.2f)\n", st.Period, st.Confidence)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
