// State portability: Checkpoint serializes a detector's complete
// run-time state — lag banks, wrap cursors, lock and segmentation
// fields — into a versioned binary blob, and Restore rebuilds a
// detector from one that produces byte-identical Result and Stat
// sequences to a detector that never stopped. The paper's DPD is an
// online algorithm whose value is the lock it has accumulated over
// thousands of samples; checkpoints make that accumulated state survive
// restarts and move between processes (and, inside Pool.Rebalance,
// between shards).
package dpd

import (
	"errors"
	"fmt"
	"io"

	"dpd/internal/core"
	"dpd/internal/pool"
)

// checkpointMagic and checkpointVersion head every detector checkpoint;
// the engine-level format (type tag, per-engine layout) is versioned
// separately inside internal/core.
const (
	checkpointMagic   = "DPDS"
	checkpointVersion = 1
)

// Checkpoint serializes det's complete state into a fresh buffer. Only
// detectors constructed by this package (the four engines returned by
// New and the deprecated constructors) are checkpointable; a custom
// Detector implementation is reported as an error.
func Checkpoint(det Detector) ([]byte, error) {
	return AppendCheckpoint(det, nil)
}

// AppendCheckpoint is Checkpoint into a caller-supplied buffer: the
// checkpoint is appended to buf and the extended slice returned. With
// sufficient capacity the append performs no allocation, so a serving
// loop can checkpoint periodically into one reused buffer without
// disturbing its 0 allocs/op feed path.
func AppendCheckpoint(det Detector, buf []byte) ([]byte, error) {
	buf = append(buf, checkpointMagic...)
	buf = append(buf, checkpointVersion)
	buf, err := core.AppendCheckpoint(det, buf)
	if err != nil {
		return nil, fmt.Errorf("dpd.Checkpoint: %w", err)
	}
	return buf, nil
}

// Restore rebuilds a detector from a checkpoint produced by Checkpoint.
// With no options, the detector is reconstructed with exactly the
// engine and configuration the checkpoint carries. Options may be
// passed to assert the expected configuration — every option must match
// the checkpoint (engine kind, window, ladder, policy, …) or Restore
// returns a descriptive error instead of a silently misconfigured
// detector. WithObserver is the exception: observers are runtime
// wiring, not configuration, and are attached to the restored detector.
//
// Restore never panics on corrupted, truncated or version-skewed input:
// it returns an error, and it never allocates more than a small factor
// of the input length while deciding.
func Restore(data []byte, opts ...Option) (Detector, error) {
	if len(data) < len(checkpointMagic)+1 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, errors.New("dpd.Restore: not a detector checkpoint (bad magic)")
	}
	if v := data[len(checkpointMagic)]; v != checkpointVersion {
		return nil, fmt.Errorf("dpd.Restore: unsupported checkpoint version %d (this build reads version %d)", v, checkpointVersion)
	}
	state := data[len(checkpointMagic)+1:]
	spec, err := core.DecodeSpec(state)
	if err != nil {
		return nil, fmt.Errorf("dpd.Restore: %w", err)
	}

	b := builder{}
	for _, opt := range opts {
		opt(&b)
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("dpd.Restore: %w", errors.Join(b.errs...))
	}
	if err := b.matchSpec(spec); err != nil {
		return nil, fmt.Errorf("dpd.Restore: %w", err)
	}

	det, err := core.RestoreCheckpoint(state)
	if err != nil {
		return nil, fmt.Errorf("dpd.Restore: %w", err)
	}
	if b.obs != nil {
		det.(observable).SetObserver(b.obs)
	}
	return det, nil
}

// matchSpec verifies that every configuration option the caller passed
// to Restore agrees with the checkpoint's spec. Unset options are
// unconstrained: the checkpoint's own configuration fills them.
func (b *builder) matchSpec(spec core.Spec) error {
	name := spec.EngineName()
	if b.engine != "" && b.engine != name {
		return fmt.Errorf("checkpoint holds %s-engine state but the options select the %s engine", name, b.engine)
	}
	var errs []error
	structural := spec.Tag == core.TagMultiScale || spec.Tag == core.TagAdaptive
	if b.windowSet {
		if structural {
			errs = append(errs, fmt.Errorf("WithWindow does not apply to a %s checkpoint", name))
		} else if b.cfg.Window != spec.Cfg.Window {
			errs = append(errs, fmt.Errorf("options set window %d but the checkpoint was taken at window %d", b.cfg.Window, spec.Cfg.Window))
		}
	}
	if b.maxLagSet {
		if structural {
			errs = append(errs, fmt.Errorf("WithMaxLag does not apply to a %s checkpoint", name))
		} else if b.cfg.MaxLag != spec.Cfg.MaxLag {
			errs = append(errs, fmt.Errorf("options set max lag %d but the checkpoint was taken with max lag %d", b.cfg.MaxLag, spec.Cfg.MaxLag))
		}
	}
	if b.cfg.Confirm != 0 && b.cfg.Confirm != spec.Cfg.Confirm {
		errs = append(errs, fmt.Errorf("options set confirm %d but the checkpoint was taken with confirm %d", b.cfg.Confirm, spec.Cfg.Confirm))
	}
	if b.graceSet && b.cfg.Grace != spec.Cfg.Grace {
		errs = append(errs, fmt.Errorf("options set grace %d but the checkpoint was taken with grace %d", b.cfg.Grace, spec.Cfg.Grace))
	}
	if b.engine == "magnitude" {
		want := b.cfg.RelThreshold
		if want == 0 {
			want = core.DefaultRelThreshold
		}
		if want != spec.Cfg.RelThreshold {
			errs = append(errs, fmt.Errorf("options set magnitude threshold %g but the checkpoint was taken with %g", want, spec.Cfg.RelThreshold))
		}
	}
	if b.ladder != nil {
		if len(b.ladder) != len(spec.Ladder) {
			errs = append(errs, fmt.Errorf("options set a %d-level ladder but the checkpoint has %d levels", len(b.ladder), len(spec.Ladder)))
		} else {
			for i, w := range b.ladder {
				if w != spec.Ladder[i] {
					errs = append(errs, fmt.Errorf("options set ladder window %d at level %d but the checkpoint has %d", w, i, spec.Ladder[i]))
					break
				}
			}
		}
	}
	if b.engine == "adaptive" && b.policy != spec.Policy {
		errs = append(errs, fmt.Errorf("options set adaptive policy %+v but the checkpoint was taken with %+v", b.policy, spec.Policy))
	}
	return errors.Join(errs...)
}

// RestorePool rebuilds a started multi-stream pool from a checkpoint
// stream written by Pool.Checkpoint. The configuration chooses the new
// serving topology (shard count, eviction policy) freely — shard count
// is not part of a checkpoint — but its detector factory must match the
// engine configuration of the checkpointed streams; a mismatch is a
// descriptive error. See Pool.Checkpoint and Pool.Rebalance for the
// shard-by-shard quiesce discipline all three share.
func RestorePool(r io.Reader, cfg PoolConfig) (*Pool, error) {
	return pool.Restore(r, cfg)
}
