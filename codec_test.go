package dpd_test

import (
	"bytes"
	"strings"
	"testing"

	"dpd"
)

// checkpointCases: one per engine, constructed through the public
// options surface, with a sample stream that locks mid-run.
func checkpointCases() []struct {
	name   string
	opts   []dpd.Option
	sample func(i int) dpd.Sample
} {
	return []struct {
		name   string
		opts   []dpd.Option
		sample func(i int) dpd.Sample
	}{
		{"event", []dpd.Option{dpd.WithWindow(64), dpd.WithGrace(1)},
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 7)) }},
		{"magnitude", []dpd.Option{dpd.WithMagnitude(0.5), dpd.WithWindow(48), dpd.WithConfirm(2)},
			func(i int) dpd.Sample { return dpd.MagnitudeSample(float64(i%11) * 1.5) }},
		{"multiscale", []dpd.Option{dpd.WithLadder(8, 32, 128)},
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 4)) }},
		{"adaptive", []dpd.Option{dpd.WithAdaptive(dpd.DefaultAdaptivePolicy())},
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 5)) }},
	}
}

// TestCheckpointRestoreDifferential: the public-surface round trip for
// every engine — restore, with and without re-asserted options, then
// verify byte-identical continuation against the uninterrupted
// original.
func TestCheckpointRestoreDifferential(t *testing.T) {
	const cut, total = 250, 500
	for _, tc := range checkpointCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := dpd.Must(tc.opts...)
			for i := 0; i < cut; i++ {
				ref.Feed(tc.sample(i))
			}
			blob, err := dpd.Checkpoint(ref)
			if err != nil {
				t.Fatal(err)
			}
			// Restore twice: bare, and with the construction options
			// re-asserted (they match, so both must succeed).
			bare, err := dpd.Restore(blob)
			if err != nil {
				t.Fatalf("bare restore: %v", err)
			}
			asserted, err := dpd.Restore(blob, tc.opts...)
			if err != nil {
				t.Fatalf("restore with matching options: %v", err)
			}
			for i := cut; i < total; i++ {
				s := tc.sample(i)
				want := ref.Feed(s)
				if got := bare.Feed(s); got != want {
					t.Fatalf("sample %d: bare-restored result %+v != %+v", i, got, want)
				}
				if got := asserted.Feed(s); got != want {
					t.Fatalf("sample %d: option-restored result %+v != %+v", i, got, want)
				}
			}
			if got, want := bare.Snapshot(), ref.Snapshot(); got != want {
				t.Fatalf("final snapshot %+v != %+v", got, want)
			}
		})
	}
}

// TestRestoreRejectsMismatchedOptions: every way an option can disagree
// with the checkpoint must produce a descriptive error.
func TestRestoreRejectsMismatchedOptions(t *testing.T) {
	eventBlob, err := dpd.Checkpoint(dpd.Must(dpd.WithWindow(64)))
	if err != nil {
		t.Fatal(err)
	}
	ladderBlob, err := dpd.Checkpoint(dpd.Must(dpd.WithLadder(8, 32)))
	if err != nil {
		t.Fatal(err)
	}
	magBlob, err := dpd.Checkpoint(dpd.Must(dpd.WithMagnitude(0.4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		blob []byte
		opts []dpd.Option
		want string
	}{
		{"wrong engine", eventBlob, []dpd.Option{dpd.WithMagnitude(0.5)}, "select"},
		{"wrong window", eventBlob, []dpd.Option{dpd.WithWindow(128)}, "window 128"},
		{"wrong grace", eventBlob, []dpd.Option{dpd.WithGrace(3)}, "grace 3"},
		{"wrong confirm", eventBlob, []dpd.Option{dpd.WithConfirm(4)}, "confirm 4"},
		{"window on ladder", ladderBlob, []dpd.Option{dpd.WithLadder(8, 32), dpd.WithWindow(64)}, "WithWindow"},
		{"wrong ladder", ladderBlob, []dpd.Option{dpd.WithLadder(8, 64)}, "ladder"},
		{"wrong threshold", magBlob, []dpd.Option{dpd.WithMagnitude(0.9)}, "threshold"},
		{"wrong policy", eventBlob, []dpd.Option{dpd.WithAdaptive(dpd.DefaultAdaptivePolicy())}, "select"},
	} {
		if _, err := dpd.Restore(tc.blob, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRestoreAttachesObserver: WithObserver is runtime wiring, always
// accepted by Restore, and the observer sees the restored stream's
// transitions from the restored state onward.
func TestRestoreAttachesObserver(t *testing.T) {
	ref := dpd.Must(dpd.WithWindow(32))
	for i := 0; i < 200; i++ {
		ref.Feed(dpd.EventSample(int64(i % 5))) // locked, period 5
	}
	blob, err := dpd.Checkpoint(ref)
	if err != nil {
		t.Fatal(err)
	}
	var starts int
	det, err := dpd.Restore(blob, dpd.WithObserver(dpd.ObserverFuncs{
		SegmentStart: func(*dpd.Event) { starts++ },
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 250; i++ {
		det.Feed(dpd.EventSample(int64(i % 5)))
	}
	if starts != 10 { // 50 samples of period 5
		t.Fatalf("observer saw %d segment starts, want 10", starts)
	}
}

// TestRestoreGarbage: magic/version/content corruption errors cleanly.
func TestRestoreGarbage(t *testing.T) {
	if _, err := dpd.Restore(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := dpd.Restore([]byte("not a checkpoint at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	blob, err := dpd.Checkpoint(dpd.Must(dpd.WithWindow(32)))
	if err != nil {
		t.Fatal(err)
	}
	skew := bytes.Clone(blob)
	skew[4] = 42 // container version byte
	if _, err := dpd.Restore(skew); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: err = %v", err)
	}
	// Trailing bytes mean corruption or mis-concatenation; the leading
	// valid state must not be silently accepted.
	trailing := append(bytes.Clone(blob), 1, 2, 3, 4, 5, 6, 7)
	if _, err := dpd.Restore(trailing); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage: err = %v", err)
	}
}

// TestRestoreNonDefaultStructuralConfig: checkpoints of engines built
// with non-default ladders/policies restore bare and with the matching
// options, and reject the defaults.
func TestRestoreNonDefaultStructuralConfig(t *testing.T) {
	ladder := dpd.Must(dpd.WithLadder(64, 256))
	for i := 0; i < 500; i++ {
		ladder.Feed(dpd.EventSample(int64(i % 9)))
	}
	blob, err := dpd.Checkpoint(ladder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dpd.Restore(blob); err != nil {
		t.Fatalf("bare restore of custom ladder: %v", err)
	}
	if _, err := dpd.Restore(blob, dpd.WithLadder(64, 256)); err != nil {
		t.Fatalf("matching-ladder restore: %v", err)
	}
	if _, err := dpd.Restore(blob, dpd.WithLadder()); err == nil {
		t.Fatal("default-ladder assertion accepted a custom-ladder checkpoint")
	}
}

// TestPoolCheckpointRestorePublicSurface: the pool round trip through
// the public NewPool / Pool.Checkpoint / RestorePool names.
func TestPoolCheckpointRestorePublicSurface(t *testing.T) {
	cfg := dpd.PoolConfig{Shards: 3, Detector: dpd.Config{Window: 32}}
	p, err := dpd.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 120; i++ {
		for k := uint64(0); k < 10; k++ {
			p.Feed(k, int64((i+int(k))%4))
		}
	}
	var sink bytes.Buffer
	if err := p.Checkpoint(&sink); err != nil {
		t.Fatal(err)
	}
	q, err := dpd.RestorePool(&sink, dpd.PoolConfig{Shards: 5, Detector: dpd.Config{Window: 32}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.Len() != 10 {
		t.Fatalf("restored pool has %d streams, want 10", q.Len())
	}
	for k := uint64(0); k < 10; k++ {
		got, ok := q.Stat(k)
		want, _ := p.Stat(k)
		if !ok || got != want {
			t.Fatalf("stream %d: restored %+v (ok=%v) != %+v", k, got, ok, want)
		}
	}
	// Shard count is a runtime knob on the restored pool too.
	if err := q.Rebalance(2); err != nil {
		t.Fatal(err)
	}
	if q.Shards() != 2 || q.Len() != 10 {
		t.Fatalf("after rebalance: shards=%d len=%d", q.Shards(), q.Len())
	}
}
