// Interface-conformance and differential tests for the unified Detector
// surface (ISSUE 3 tentpole): every engine constructed through dpd.New
// must satisfy Detector and produce results byte-identical to its
// pre-redesign constructor, so the API redesign provably changes no
// detection output (Table 2 periods, Figure 4 minimum, segmentation
// counts).
package dpd_test

import (
	"testing"

	"dpd"
)

// Compile-time conformance: dynamic engine types satisfy Detector.
var (
	_ dpd.Detector = (*dpd.EventEngine)(nil)
	_ dpd.Detector = (*dpd.MagnitudeEngine)(nil)
	_ dpd.Detector = (*dpd.MultiScaleEngine)(nil)
	_ dpd.Detector = (*dpd.AdaptiveEngine)(nil)
)

// eventStream is a deterministic mixed stream: aperiodic prefix, a
// period-5 phase, a glitch, then a period-3 phase.
func eventStream(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		switch {
		case i < 23:
			out[i] = int64(i) * 997
		case i < n/2:
			out[i] = int64(i % 5)
		case i == n/2:
			out[i] = -1
		default:
			out[i] = int64(i % 3)
		}
	}
	return out
}

func TestNewEventEngineMatchesLegacyConstructor(t *testing.T) {
	det := dpd.Must(dpd.WithWindow(64), dpd.WithGrace(2))
	legacy, err := dpd.NewEventDetector(dpd.Config{Window: 64, Grace: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range eventStream(600) {
		got := det.Feed(dpd.EventSample(v))
		want := legacy.Feed(v)
		if got != want {
			t.Fatalf("sample %d: New engine %+v != legacy %+v", i, got, want)
		}
	}
	st := det.Snapshot()
	if want := legacy.Locked(); (st.Period != want) || (st.Locked != (want != 0)) {
		t.Errorf("snapshot period %d (locked=%v), legacy %d", st.Period, st.Locked, want)
	}
	if st.Window != legacy.Window() {
		t.Errorf("snapshot window %d, legacy %d", st.Window, legacy.Window())
	}
	if v, ok := legacy.PredictNext(); ok != st.PredictedValid || (ok && v != st.Predicted) {
		t.Errorf("snapshot prediction (%d,%v), legacy (%d,%v)", st.Predicted, st.PredictedValid, v, ok)
	}
}

func TestNewMagnitudeEngineMatchesLegacyConstructor(t *testing.T) {
	det := dpd.Must(dpd.WithMagnitude(0), dpd.WithWindow(100), dpd.WithConfirm(3))
	legacy, err := dpd.NewMagnitudeDetector(dpd.Config{Window: 100, Confirm: 3})
	if err != nil {
		t.Fatal(err)
	}
	wave := func(i int) float64 {
		// The paper's Figure 3/4 shape: period 44.
		if i%44 < 30 {
			return 16
		}
		return 1
	}
	var last dpd.Result
	for i := 0; i < 500; i++ {
		got := det.Feed(dpd.MagnitudeSample(wave(i)))
		want := legacy.Feed(wave(i))
		if got != want {
			t.Fatalf("sample %d: New engine %+v != legacy %+v", i, got, want)
		}
		last = got
	}
	if !last.Locked || last.Period != 44 {
		t.Fatalf("figure 4 period: got %+v, want locked m=44", last)
	}
	if st := det.Snapshot(); st.Period != 44 || st.Confidence != last.Confidence {
		t.Errorf("snapshot %+v does not carry the magnitude lock", st)
	}
}

func TestNewMultiScaleEngineMatchesLegacyPrimary(t *testing.T) {
	windows := []int{8, 32, 128}
	det := dpd.Must(dpd.WithLadder(windows...))
	legacy, err := dpd.NewMultiScaleDetector(windows, dpd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Nested stream: inner period 4, outer period 20.
	value := func(i int) int64 {
		if i%20 == 0 {
			return 77
		}
		return int64(i % 4)
	}
	for i := 0; i < 800; i++ {
		got := det.Feed(dpd.EventSample(value(i)))
		want := legacy.Feed(value(i)).Primary
		if got != want {
			t.Fatalf("sample %d: New engine %+v != legacy primary %+v", i, got, want)
		}
	}
	// The engine exposes the full ladder for per-level access.
	eng := det.(*dpd.MultiScaleEngine)
	if lp := eng.Ladder().LockedPeriods(); len(lp) != len(windows) {
		t.Fatalf("Ladder() reports %d levels, want %d", len(lp), len(windows))
	}
	if st := det.Snapshot(); !st.Locked || st.Period != 20 {
		t.Errorf("snapshot %+v, want outer period 20", st)
	}
}

func TestNewAdaptiveEngineMatchesLegacyConstructor(t *testing.T) {
	policy := dpd.AdaptivePolicy{MinWindow: 8, MaxWindow: 256, ShrinkAfter: 24, Headroom: 2.5, GrowAfter: 48}
	det := dpd.Must(dpd.WithAdaptive(policy))
	legacy, err := dpd.NewAdaptiveDetector(policy, dpd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range eventStream(900) {
		got := det.Feed(dpd.EventSample(v))
		want := legacy.Feed(v)
		if got != want {
			t.Fatalf("sample %d: New engine %+v != legacy %+v", i, got, want)
		}
		if got, want := det.Window(), legacy.Window(); got != want {
			t.Fatalf("sample %d: window %d != legacy %d (policy diverged)", i, got, want)
		}
	}
	eng := det.(*dpd.AdaptiveEngine)
	if got, want := eng.Adaptive().Resizes(), legacy.Resizes(); got != want {
		t.Errorf("resizes %d != legacy %d", got, want)
	}
}

func TestTable1DPDMatchesNewDefault(t *testing.T) {
	// The Table-1 DPD wrapper is a shim over New(): identical output.
	shim := dpd.NewDPD()
	det := dpd.Must()
	if shim.Window() != dpd.DefaultDPDWindow || det.Window() != dpd.DefaultDPDWindow {
		t.Fatalf("defaults: shim window %d, New window %d, want %d",
			shim.Window(), det.Window(), dpd.DefaultDPDWindow)
	}
	for i := 0; i < 2200; i++ {
		v := int64(i % 5)
		start, period := shim.Feed(v)
		r := det.Feed(dpd.EventSample(v))
		wantStart := 0
		if r.Locked && r.Start {
			wantStart = 1
		}
		wantPeriod := 0
		if r.Locked {
			wantPeriod = r.Period
		}
		if start != wantStart || period != wantPeriod {
			t.Fatalf("sample %d: DPD (%d,%d) != New (%d,%d)", i, start, period, wantStart, wantPeriod)
		}
	}
	if shim.AsDetector().Snapshot() != det.Snapshot() {
		t.Errorf("DPD.AsDetector snapshot %+v != New snapshot %+v",
			shim.AsDetector().Snapshot(), det.Snapshot())
	}
}

func TestDetectorFeedAllMatchesFeed(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []dpd.Option
	}{
		{"event", []dpd.Option{dpd.WithWindow(32)}},
		{"magnitude", []dpd.Option{dpd.WithMagnitude(0.5), dpd.WithWindow(48)}},
		{"multiscale", []dpd.Option{dpd.WithLadder(8, 32)}},
		{"adaptive", []dpd.Option{dpd.WithAdaptive(dpd.AdaptivePolicy{
			MinWindow: 8, MaxWindow: 64, ShrinkAfter: 16, Headroom: 2, GrowAfter: 32})}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batchDet := dpd.Must(tc.opts...)
			stepDet := dpd.Must(tc.opts...)
			samples := make([]dpd.Sample, 300)
			for i := range samples {
				samples[i] = dpd.Sample{Value: int64(i % 6), Magnitude: float64(i % 6)}
			}
			var dst []dpd.Result
			dst = batchDet.FeedAll(samples, dst)
			for i, s := range samples {
				if want := stepDet.Feed(s); dst[i] != want {
					t.Fatalf("sample %d: FeedAll %+v != Feed %+v", i, dst[i], want)
				}
			}
			if batchDet.Snapshot() != stepDet.Snapshot() {
				t.Errorf("snapshots diverge: batch %+v != step %+v", batchDet.Snapshot(), stepDet.Snapshot())
			}
		})
	}
}

func TestDetectorResetRestoresFreshState(t *testing.T) {
	det := dpd.Must(dpd.WithWindow(16))
	for i := 0; i < 100; i++ {
		det.Feed(dpd.EventSample(int64(i % 2)))
	}
	if st := det.Snapshot(); !st.Locked || st.Starts == 0 {
		t.Fatalf("setup failed to lock: %+v", st)
	}
	det.Reset()
	if st := det.Snapshot(); st != (dpd.Stat{Window: 16}) {
		t.Errorf("Reset left state behind: %+v", st)
	}
}

// TestObserverEventSequence pins the subscription semantics: lock →
// segment starts each period → unlock on a broken stream, with the
// same transitions a per-sample poller of Result would reconstruct.
func TestObserverEventSequence(t *testing.T) {
	type rec struct {
		kind   dpd.EventKind
		t      uint64
		period int
		prev   int
	}
	var events []rec
	capture := func(e *dpd.Event) {
		events = append(events, rec{e.Kind, e.T, e.Period, e.PrevPeriod})
	}
	det := dpd.Must(
		dpd.WithWindow(16),
		dpd.WithObserver(dpd.ObserverFuncs{
			Lock: capture, PeriodChange: capture, SegmentStart: capture, Unlock: capture,
		}),
	)

	// Phase 1: period 4 until sample 59; then an aperiodic burst.
	var fromPoll []rec
	var locked bool
	var period int
	for i := 0; i < 90; i++ {
		v := int64(i % 4)
		if i >= 60 {
			v = int64(1000 + i) // breaks the periodicity
		}
		r := det.Feed(dpd.EventSample(v))
		switch {
		case !locked && r.Locked:
			fromPoll = append(fromPoll, rec{dpd.EventLock, r.T, r.Period, period})
		case locked && r.Locked && r.Period != period:
			fromPoll = append(fromPoll, rec{dpd.EventPeriodChange, r.T, r.Period, period})
		case locked && !r.Locked:
			fromPoll = append(fromPoll, rec{dpd.EventUnlock, r.T, 0, period})
		}
		if r.Start {
			fromPoll = append(fromPoll, rec{dpd.EventSegmentStart, r.T, r.Period, period})
		}
		locked, period = r.Locked, r.Period
	}

	if len(events) == 0 {
		t.Fatal("observer received no events")
	}
	if len(events) != len(fromPoll) {
		t.Fatalf("observer saw %d events, poller reconstructed %d:\n  observer: %v\n  poller:   %v",
			len(events), len(fromPoll), events, fromPoll)
	}
	for i := range events {
		if events[i] != fromPoll[i] {
			t.Fatalf("event %d: observer %+v != poller %+v", i, events[i], fromPoll[i])
		}
	}
	// The sequence must begin with the lock and end with the unlock.
	if events[0].kind != dpd.EventLock {
		t.Errorf("first event %+v, want lock", events[0])
	}
	if last := events[len(events)-1]; last.kind != dpd.EventUnlock || last.prev != 4 {
		t.Errorf("last event %+v, want unlock with prev period 4", last)
	}
}

// TestObserverPeriodChange pins the re-lock transition: a stream whose
// fundamental period halves mid-run must deliver OnPeriodChange, not an
// unlock/lock pair.
func TestObserverPeriodChange(t *testing.T) {
	var changes []dpd.Event
	det := dpd.Must(
		dpd.WithWindow(32),
		dpd.WithGrace(64),
		dpd.WithObserver(dpd.ObserverFuncs{
			PeriodChange: func(e *dpd.Event) { changes = append(changes, *e) },
		}),
	)
	// Period 6 first (9,1,2,9,4,5), then its period-3 prefix (9,1,2):
	// the transition pushes a few lag-6 mismatches through the window,
	// so the grace budget carries the old lock while the shorter
	// fundamental confirms — a re-lock, not an unlock/lock pair.
	p6 := []int64{9, 1, 2, 9, 4, 5}
	for i := 0; i < 120; i++ {
		det.Feed(dpd.EventSample(p6[i%6]))
	}
	p3 := []int64{9, 1, 2}
	for i := 0; i < 120; i++ {
		det.Feed(dpd.EventSample(p3[i%3]))
	}
	if len(changes) == 0 {
		t.Fatal("no OnPeriodChange delivered")
	}
	last := changes[len(changes)-1]
	if last.Period != 3 || last.PrevPeriod != 6 {
		t.Errorf("period change %+v, want 6 → 3", last)
	}
}

// TestPoolRunsEveryEngine is the acceptance matrix: a pooled stream can
// run each of the four engines via PoolConfig.NewDetector.
func TestPoolRunsEveryEngine(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func() dpd.Detector
		sample  func(i int) dpd.Sample
		period  int
	}{
		{
			"event",
			func() dpd.Detector { return dpd.Must(dpd.WithWindow(32)) },
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 4)) },
			4,
		},
		{
			"magnitude",
			func() dpd.Detector { return dpd.Must(dpd.WithMagnitude(0.5), dpd.WithWindow(100), dpd.WithConfirm(3)) },
			func(i int) dpd.Sample {
				if i%44 < 30 {
					return dpd.MagnitudeSample(16)
				}
				return dpd.MagnitudeSample(1)
			},
			44,
		},
		{
			"multiscale",
			func() dpd.Detector { return dpd.Must(dpd.WithLadder(8, 64)) },
			func(i int) dpd.Sample {
				if i%12 == 0 {
					return dpd.EventSample(99)
				}
				return dpd.EventSample(int64(i % 3))
			},
			12,
		},
		{
			"adaptive",
			func() dpd.Detector {
				return dpd.Must(dpd.WithAdaptive(dpd.AdaptivePolicy{
					MinWindow: 8, MaxWindow: 128, ShrinkAfter: 16, Headroom: 2.5, GrowAfter: 32}))
			},
			func(i int) dpd.Sample { return dpd.EventSample(int64(i % 7)) },
			7,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := dpd.NewPool(dpd.PoolConfig{Shards: 2, NewDetector: tc.factory})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			const key = 12345
			for i := 0; i < 500; i++ {
				s := tc.sample(i)
				p.FeedBatch([]dpd.KeyedSample{{Key: key, Value: s.Value, Magnitude: s.Magnitude}})
			}
			st, ok := p.Stat(key)
			if !ok {
				t.Fatal("stream missing")
			}
			if !st.Locked || st.Period != tc.period {
				t.Errorf("pooled %s engine: locked=%v period=%d, want %d", tc.name, st.Locked, st.Period, tc.period)
			}
		})
	}
}
