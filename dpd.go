// Package dpd is a Go implementation of the Dynamic Periodicity Detector
// of Freitag, Corbalán and Labarta, "A Dynamic Periodicity Detector:
// Application to Speedup Computation" (IPDPS 2001): an online detector
// that estimates the periodicity of data series produced by executing
// applications, segments the stream into periods, predicts future values,
// and feeds run-time speedup computation.
//
// The package exposes one unified surface plus legacy shims:
//
//   - The Detector interface, constructed through New with functional
//     options: every engine — event (eq. 2), magnitude (eq. 1),
//     multi-scale ladder, adaptive window — satisfies Feed / FeedAll /
//     Snapshot / Reset / Window / Resize, and WithObserver subscribes
//     callbacks to lock, period-change, segment-start and unlock
//     transitions instead of polling per-sample results.
//
//   - The multi-stream Pool, which serves many keyed streams through
//     sharded workers; PoolConfig.NewDetector injects any Detector
//     engine per stream.
//
//   - The paper's Table 1 interface, ported faithfully as a thin shim:
//     a stateful DPD whose Feed method mirrors `int DPD(long sample,
//     int *period)` and whose WindowSize method mirrors
//     `void DPDWindowSize(int size)`. The engine-specific New*
//     constructors likewise remain as deprecated shims.
//
//   - The systems around it (simulated SMP machine, NANOS-like runtime,
//     DITools interposition, SelfAnalyzer, allocation policies) live in
//     internal packages and are exercised by the example programs and the
//     experiment harness (cmd/experiments) that regenerates every table
//     and figure of the paper.
package dpd

import (
	"dpd/internal/core"
	"dpd/internal/pool"
)

// Re-exported unified-interface types; see the core package for full
// documentation. New constructs Detectors; Sample is the unit fed to
// them; Stat is what Snapshot returns.
type (
	// Detector is the unified per-stream interface every engine
	// satisfies: Feed, FeedAll, Snapshot, Reset, Window, Resize.
	Detector = core.Detector
	// Sample is one observation: Value for event streams (eq. 2),
	// Magnitude for magnitude streams (eq. 1).
	Sample = core.Sample
	// Stat is a point-in-time snapshot of one stream (samples, lock,
	// period, confidence, segment starts, prediction, window).
	Stat = core.Stat
	// EventEngine is the dynamic type New returns for event streams.
	EventEngine = core.EventEngine
	// MagnitudeEngine is the dynamic type New returns for WithMagnitude.
	MagnitudeEngine = core.MagnitudeEngine
	// MultiScaleEngine is the dynamic type New returns for WithLadder.
	MultiScaleEngine = core.MultiScaleEngine
	// AdaptiveEngine is the dynamic type New returns for WithAdaptive.
	AdaptiveEngine = core.AdaptiveEngine
)

// Re-exported detector toolkit types. These aliases are the public names
// of the core implementation; see the core package for full documentation.
type (
	// Config parameterizes a detector (window size N, max lag M,
	// confirmation count, grace, magnitude threshold).
	Config = core.Config
	// Result is the per-sample detection outcome.
	Result = core.Result
	// Curve is a snapshot of the distance function d(m).
	Curve = core.Curve
	// EventDetector detects exact periodicity in event streams (eq. 2).
	EventDetector = core.EventDetector
	// MagnitudeDetector detects periodicity in magnitude streams (eq. 1).
	MagnitudeDetector = core.MagnitudeDetector
	// MultiScaleDetector runs a ladder of event detectors for nested
	// periodicities.
	MultiScaleDetector = core.MultiScaleDetector
	// MultiResult aggregates per-ladder-level results.
	MultiResult = core.MultiResult
	// AdaptiveDetector resizes its window automatically.
	AdaptiveDetector = core.AdaptiveDetector
	// AdaptivePolicy parameterizes adaptive window management.
	AdaptivePolicy = core.AdaptivePolicy
	// PeriodTracker aggregates the distinct periodicities of a stream.
	PeriodTracker = core.PeriodTracker
	// PeriodStat describes one tracked periodicity.
	PeriodStat = core.PeriodStat
	// EventPredictor forecasts future events from a locked periodicity.
	EventPredictor = core.EventPredictor
	// MagnitudePredictor forecasts future magnitudes.
	MagnitudePredictor = core.MagnitudePredictor
	// Segmenter turns detector output into explicit stream segments.
	Segmenter = core.Segmenter
	// Segment is one periodicity-governed stretch of a stream.
	Segment = core.Segment
)

// Re-exported multi-stream pool types; see the pool package for full
// documentation of the sharded serving model.
type (
	// Pool serves many concurrent keyed streams, one detector per
	// stream, sharded across worker goroutines.
	Pool = pool.Pool
	// PoolConfig parameterizes a Pool (shard count, per-stream detector
	// configuration, idle-TTL eviction, in-flight batch bound).
	PoolConfig = pool.Config
	// KeyedSample is one sample of one keyed stream, the unit of work of
	// Pool.FeedBatch.
	KeyedSample = pool.KeyedSample
	// StreamStat is a point-in-time view of one pooled stream (period,
	// segment boundaries, prediction).
	StreamStat = pool.StreamStat
	// AdaptiveConfig parameterizes contention-adaptive hot-stream
	// placement (PoolConfig.Adaptive): per-shard feed-rate sampling and
	// promotion of celebrity streams onto dedicated pinned workers.
	AdaptiveConfig = pool.AdaptiveConfig
	// AdaptiveStats is a point-in-time view of the adaptive placement
	// tier: promotion/demotion counters, fold count and the current hot
	// set (Pool.AdaptiveStats).
	AdaptiveStats = pool.AdaptiveStats
	// HotStreamInfo describes one currently promoted stream (key,
	// samples fed since promotion, feed rate).
	HotStreamInfo = pool.HotStreamInfo
)

// ClusterNodeMetrics is the per-node cluster section of a server's
// /metrics snapshot. It is defined here — below both the server and the
// cluster tier in the import graph — so the snapshot can carry it as a
// concrete type (rather than `any`) and the public-API check can guard
// its shape. The cluster package aliases it as cluster.NodeMetrics.
type ClusterNodeMetrics struct {
	// Self is this node's member name.
	Self string `json:"self"`
	// Epoch is the current routing epoch.
	Epoch uint64 `json:"epoch"`
	// Members is the member count of the current table.
	Members int `json:"members"`
	// StreamsOwned is the number of live streams in this node's pool.
	StreamsOwned int `json:"streams_owned"`
	// ReplicaStreams is the number of standby replicas held for other
	// nodes' streams.
	ReplicaStreams int `json:"replica_streams"`
	// MigrationsIn counts streams attached via handoff frames.
	MigrationsIn uint64 `json:"migrations_in"`
	// MigrationsOut counts streams this node migrated away.
	MigrationsOut uint64 `json:"migrations_out"`
	// PromotedStreams counts replicas promoted into the pool (failover).
	PromotedStreams uint64 `json:"promoted_streams"`
	// ReplicationRounds counts completed replication rounds.
	ReplicationRounds uint64 `json:"replication_rounds"`
	// ReplicationErrors counts failed follower sends.
	ReplicationErrors uint64 `json:"replication_errors"`
	// FollowerLagFrames is the number of stream frames shipped in the
	// newest round that followers have not yet acknowledged (0 when the
	// last round fully acked).
	FollowerLagFrames int64 `json:"follower_lag_frames"`
	// PendingDurableMarks is the number of durable marks awaiting a
	// fully-acknowledged replication round.
	PendingDurableMarks int `json:"pending_durable_marks"`
}

// DefaultLadder is the default multi-scale window ladder.
var DefaultLadder = core.DefaultLadder

// NewEventDetector returns a detector for event streams (loop addresses,
// message tags): paper eq. (2).
//
// Deprecated: construct through New (e.g. New(WithWindow(n))), which
// returns the unified Detector interface; this shim remains for
// existing callers and for direct access to the raw engine.
func NewEventDetector(cfg Config) (*EventDetector, error) { return core.NewEventDetector(cfg) }

// NewMagnitudeDetector returns a detector for magnitude streams (CPU
// counts, hardware counters): paper eq. (1).
//
// Deprecated: construct through New(WithMagnitude(thresh), ...).
func NewMagnitudeDetector(cfg Config) (*MagnitudeDetector, error) {
	return core.NewMagnitudeDetector(cfg)
}

// NewMultiScaleDetector returns a ladder of event detectors; windows nil
// selects DefaultLadder.
//
// Deprecated: construct through New(WithLadder(windows...)).
func NewMultiScaleDetector(windows []int, cfg Config) (*MultiScaleDetector, error) {
	return core.NewMultiScaleDetector(windows, cfg)
}

// NewAdaptiveDetector returns an event detector with automatic window
// management (paper §3.1/§4).
//
// Deprecated: construct through New(WithAdaptive(policy)).
func NewAdaptiveDetector(policy AdaptivePolicy, cfg Config) (*AdaptiveDetector, error) {
	return core.NewAdaptiveDetector(policy, cfg)
}

// NewEventPredictor returns an event forecaster over a detector.
func NewEventPredictor(cfg Config) (*EventPredictor, error) { return core.NewEventPredictor(cfg) }

// NewMagnitudePredictor returns a magnitude forecaster over a detector.
func NewMagnitudePredictor(cfg Config) (*MagnitudePredictor, error) {
	return core.NewMagnitudePredictor(cfg)
}

// NewPeriodTracker returns an empty periodicity tracker.
func NewPeriodTracker() *PeriodTracker { return core.NewPeriodTracker() }

// NewSegmenter returns a stream segmenter over an event detector.
func NewSegmenter(cfg Config) (*Segmenter, error) { return core.NewSegmenter(cfg) }

// DefaultAdaptivePolicy returns the paper-calibrated adaptive policy.
func DefaultAdaptivePolicy() AdaptivePolicy { return core.DefaultAdaptivePolicy() }

// NewPool returns a started multi-stream detector pool. The zero
// PoolConfig selects GOMAXPROCS shards, the paper-default per-stream
// detector, and no idle eviction. Call Close when done feeding.
func NewPool(cfg PoolConfig) (*Pool, error) { return pool.New(cfg) }
