package dpd_test

import (
	"fmt"
	"testing"

	"dpd"
)

func TestPaperInterfaceSegmentation(t *testing.T) {
	d, err := dpd.NewDPDWithWindow(32)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []int64{0x100, 0x140, 0x180, 0x1C0} // 4 loops per iteration
	var starts []int
	for i := 0; i < 200; i++ {
		start, period := d.Feed(addrs[i%4])
		if start != 0 {
			if period != 4 {
				t.Fatalf("start with period=%d, want 4", period)
			}
			starts = append(starts, i)
		}
	}
	if len(starts) < 10 {
		t.Fatalf("only %d period starts", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != 4 {
			t.Fatalf("starts %v not spaced by 4", starts)
		}
	}
	if d.Period() != 4 {
		t.Fatalf("Period()=%d", d.Period())
	}
}

func TestPaperInterfaceDefaultWindow(t *testing.T) {
	d := dpd.NewDPD()
	if d.Window() != 1024 {
		t.Fatalf("default window=%d, want 1024 (captures periods to 1023)", d.Window())
	}
}

func TestPaperInterfaceWindowSize(t *testing.T) {
	d := dpd.NewDPD()
	if err := d.WindowSize(16); err != nil {
		t.Fatal(err)
	}
	if d.Window() != 16 {
		t.Fatalf("window=%d after WindowSize(16)", d.Window())
	}
	if err := d.WindowSize(0); err == nil {
		t.Fatal("WindowSize(0) accepted")
	}
	if err := d.WindowSize(-3); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestPaperInterfaceNoLockReturnsZeros(t *testing.T) {
	d := dpd.NewDPD()
	for i := int64(0); i < 100; i++ {
		start, period := d.Feed(i * 997)
		if start != 0 || period != 0 {
			t.Fatalf("aperiodic stream: start=%d period=%d", start, period)
		}
	}
}

func TestPaperInterfaceReset(t *testing.T) {
	d, _ := dpd.NewDPDWithWindow(16)
	for i := 0; i < 100; i++ {
		d.Feed(int64(i % 2))
	}
	if d.Period() != 2 {
		t.Fatalf("period=%d", d.Period())
	}
	d.Reset()
	if d.Period() != 0 {
		t.Fatal("period survived reset")
	}
}

func TestNewDPDWithWindowValidation(t *testing.T) {
	if _, err := dpd.NewDPDWithWindow(1); err == nil {
		t.Fatal("window 1 accepted")
	}
}

func TestReexportedConstructors(t *testing.T) {
	if _, err := dpd.NewEventDetector(dpd.Config{Window: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := dpd.NewMagnitudeDetector(dpd.Config{Window: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := dpd.NewMultiScaleDetector(nil, dpd.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dpd.NewAdaptiveDetector(dpd.DefaultAdaptivePolicy(), dpd.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dpd.NewEventPredictor(dpd.Config{Window: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := dpd.NewMagnitudePredictor(dpd.Config{Window: 16}); err != nil {
		t.Fatal(err)
	}
	if tr := dpd.NewPeriodTracker(); tr == nil {
		t.Fatal("nil tracker")
	}
	if len(dpd.DefaultLadder) == 0 {
		t.Fatal("empty default ladder")
	}
}

// ExampleDPD demonstrates the paper's Table 1 interface: feeding a stream
// of parallel-loop addresses and reacting to period starts.
func ExampleDPD() {
	d, _ := dpd.NewDPDWithWindow(16)
	loops := []int64{0xA0, 0xB0, 0xC0} // three parallel loops per iteration
	reported := false
	for i := 0; i < 60; i++ {
		start, period := d.Feed(loops[i%3])
		if start != 0 && !reported {
			fmt.Printf("parallel region identified: period %d loops\n", period)
			reported = true
		}
	}
	// Output:
	// parallel region identified: period 3 loops
}

// ExampleMagnitudeDetector demonstrates eq. (1) on a CPU-usage-like wave.
func ExampleMagnitudeDetector() {
	det, _ := dpd.NewMagnitudeDetector(dpd.Config{Window: 100})
	var last dpd.Result
	for i := 0; i < 400; i++ {
		// 30 samples at 16 CPUs, 14 samples at 1 CPU → period 44.
		v := 1.0
		if i%44 < 30 {
			v = 16.0
		}
		last = det.Feed(v)
	}
	fmt.Printf("periodicity m=%d\n", last.Period)
	// Output:
	// periodicity m=44
}
