// Runnable examples for the unified Detector surface: functional-option
// construction through New and the subscription/event API.
package dpd_test

import (
	"fmt"

	"dpd"
)

// ExampleNew builds the paper's default detector (event engine, window
// 1024) through the unified entry point and reads its state with
// Snapshot instead of per-sample polling.
func ExampleNew() {
	det, err := dpd.New(dpd.WithWindow(16))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 40; i++ {
		det.Feed(dpd.EventSample(int64(i % 3))) // period-3 loop addresses
	}
	st := det.Snapshot()
	fmt.Printf("period %d after %d samples, %d segment starts\n", st.Period, st.Samples, st.Starts)
	// Output:
	// period 3 after 40 samples, 8 segment starts
}

// ExampleNew_magnitude selects the eq. (1) magnitude engine for a
// CPU-usage-like stream; magnitude samples ride in Sample.Magnitude.
func ExampleNew_magnitude() {
	det := dpd.Must(dpd.WithMagnitude(0.5), dpd.WithWindow(100), dpd.WithConfirm(3))
	for i := 0; i < 400; i++ {
		v := 1.0
		if i%44 < 30 { // 30 samples at 16 CPUs, 14 at 1 CPU → period 44
			v = 16.0
		}
		det.Feed(dpd.MagnitudeSample(v))
	}
	fmt.Printf("periodicity m=%d\n", det.Snapshot().Period)
	// Output:
	// periodicity m=44
}

// ExampleNew_ladder selects the multi-scale engine: a ladder of event
// detectors for nested periodicities. The unified Feed reports the
// outermost locked structure; the full ladder stays reachable by
// type-asserting to *MultiScaleEngine.
func ExampleNew_ladder() {
	det := dpd.Must(dpd.WithLadder(8, 64))
	value := func(i int) int64 {
		if i%12 == 0 {
			return 99 // outer marker every 12 events
		}
		return int64(i % 3) // inner period 3
	}
	for i := 0; i < 300; i++ {
		det.Feed(dpd.EventSample(value(i)))
	}
	fmt.Printf("outer period %d\n", det.Snapshot().Period)
	fmt.Printf("per level: %v\n", det.(*dpd.MultiScaleEngine).Ladder().LockedPeriods())
	// Output:
	// outer period 12
	// per level: [3 12]
}

// ExampleWithObserver subscribes callbacks to the detector's state
// transitions: the push-style form of the paper's Figure 6 wiring,
// instead of checking every per-sample Result.
func ExampleWithObserver() {
	det := dpd.Must(
		dpd.WithWindow(16),
		dpd.WithObserver(dpd.ObserverFuncs{
			Lock: func(e *dpd.Event) {
				fmt.Printf("sample %d: locked period %d\n", e.T, e.Period)
			},
			Unlock: func(e *dpd.Event) {
				fmt.Printf("sample %d: lost period %d\n", e.T, e.PrevPeriod)
			},
		}),
	)
	for i := 0; i < 40; i++ {
		det.Feed(dpd.EventSample(int64(i % 4))) // period-4 loop addresses
	}
	det.Feed(dpd.EventSample(1000)) // aperiodic glitch breaks the lock
	// Output:
	// sample 19: locked period 4
	// sample 40: lost period 4
}
