// Runnable examples for the public API, rendered on pkg.go.dev: the
// paper's Table 1 interface and the multi-stream pool.
package dpd_test

import (
	"fmt"
	"sort"

	"dpd"
)

// ExampleDPD_Predict forecasts the next sample from a locked
// periodicity: x̂[t+1] = x[t+1−p].
func ExampleDPD_Predict() {
	d, err := dpd.NewDPDWithWindow(16)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 40; i++ {
		d.Feed(int64(i % 3)) // stream 0,1,2,0,1,2,…
	}
	next, ok := d.Predict()
	fmt.Println(next, ok)
	// Output:
	// 1 true
}

// ExampleNewPool serves two independent keyed streams through one pool.
func ExampleNewPool() {
	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:   2,
		Detector: dpd.Config{Window: 16},
	})
	if err != nil {
		panic(err)
	}
	defer p.Close()

	for i := 0; i < 64; i++ {
		p.Feed(1, int64(i%3)) // stream 1: period 3
		p.Feed(2, int64(i%5)) // stream 2: period 5
	}
	a, _ := p.Stat(1)
	b, _ := p.Stat(2)
	fmt.Printf("stream 1: period %d\nstream 2: period %d\n", a.Period, b.Period)
	// Output:
	// stream 1: period 3
	// stream 2: period 5
}

// ExamplePool_FeedBatch is the multi-stream hot path: one batch carries
// interleaved samples of many streams, and the pool shards them across
// its workers. Recycling the batch slice keeps the path allocation-free.
func ExamplePool_FeedBatch() {
	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:   4,
		Detector: dpd.Config{Window: 16},
	})
	if err != nil {
		panic(err)
	}
	defer p.Close()

	batch := make([]dpd.KeyedSample, 0, 3)
	for i := 0; i < 64; i++ {
		batch = batch[:0]
		batch = append(batch,
			dpd.KeyedSample{Key: 10, Value: int64(i % 2)},
			dpd.KeyedSample{Key: 20, Value: int64(i % 4)},
			dpd.KeyedSample{Key: 30, Value: int64(i % 6)},
		)
		p.FeedBatch(batch)
	}
	for _, key := range []uint64{10, 20, 30} {
		st, _ := p.Stat(key)
		fmt.Printf("stream %d: period %d after %d samples\n", key, st.Period, st.Samples)
	}
	// Output:
	// stream 10: period 2 after 64 samples
	// stream 20: period 4 after 64 samples
	// stream 30: period 6 after 64 samples
}

// ExamplePool_Snapshot reads every stream's current state without
// stopping ingest; order is unspecified, so sort for stable output.
func ExamplePool_Snapshot() {
	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:   2,
		Detector: dpd.Config{Window: 16},
	})
	if err != nil {
		panic(err)
	}
	defer p.Close()

	for i := 0; i < 48; i++ {
		p.Feed(5, int64(i%2))
		p.Feed(6, int64(i%3))
	}
	stats := p.Snapshot(nil)
	sort.Slice(stats, func(i, j int) bool { return stats[i].Key < stats[j].Key })
	for _, st := range stats {
		next, _ := st.Predicted, st.PredictedValid
		fmt.Printf("stream %d: period %d, starts %d, next %d\n", st.Key, st.Period, st.Starts, next)
	}
	// Output:
	// stream 5: period 2, starts 16, next 0
	// stream 6: period 3, starts 10, next 0
}
