// CPU-load analysis: eq. (1) magnitude detection and value prediction on
// a sampled CPU-usage signal — the paper's Figure 3/4 scenario.
//
// The stream is the number of active CPUs sampled every millisecond while
// an MPI/OpenMP application opens and closes parallelism. The magnitude
// detector finds the iteration period from the usage shape alone, and the
// predictor forecasts the upcoming load, which a resource manager can use
// to co-schedule work into the serial phases.
//
// Run with: go run ./examples/cpuload
package main

import (
	"fmt"

	"dpd"
)

// usage produces one CPU-usage sample per call: 10 ms at 16 CPUs, 4 ms of
// communication at 4 CPUs, 12 ms at 16 CPUs, 3 ms serial at 1 CPU, then
// 15 ms at 16 CPUs — a 44 ms iteration, like the paper's FT trace.
func usage(t int) float64 {
	switch m := t % 44; {
	case m < 10:
		return 16
	case m < 14:
		return 4
	case m < 26:
		return 16
	case m < 29:
		return 1
	default:
		return 16
	}
}

func main() {
	// Detection runs through the unified magnitude engine with an
	// observer announcing the lock; forecasting runs through the
	// MagnitudePredictor fed the same signal.
	det := dpd.Must(
		dpd.WithMagnitude(0), dpd.WithWindow(100), dpd.WithConfirm(3),
		dpd.WithObserver(dpd.ObserverFuncs{
			Lock: func(e *dpd.Event) {
				fmt.Printf("t=%3d ms: periodicity detected, m=%d ms\n", e.T, e.Period)
			},
		}),
	)
	pred, err := dpd.NewMagnitudePredictor(dpd.Config{Window: 100, Confirm: 3})
	if err != nil {
		panic(err)
	}

	for t := 0; t < 600; t++ {
		det.Feed(dpd.MagnitudeSample(usage(t)))
		pred.Feed(usage(t))
	}
	st := det.Snapshot()
	fmt.Printf("final lock: m=%d ms (confidence %.2f)\n\n", st.Period, st.Confidence)

	// Forecast the next 8 ms of load and compare with the true signal.
	fmt.Println("forecast vs actual:")
	for k := 1; k <= 8; k++ {
		forecast, ok := pred.Predict(k)
		if !ok {
			fmt.Println("  no forecast available")
			break
		}
		fmt.Printf("  t+%d ms: predicted %2.0f CPUs, actual %2.0f\n", k, forecast, usage(600+k-1))
	}

	mae, n := pred.MeanAbsError()
	fmt.Printf("\none-step prediction: mean absolute error %.3f CPUs over %d samples\n", mae, n)
}
