// Command multistream simulates the paper's motivating scenario at
// workload scale: a runtime system watching every application of a
// multiprogrammed machine at once. Hundreds of concurrent streams — each
// an instance of one of the SPECfp95 loop-address traces (Table 2),
// started at its own phase — are fed through one sharded dpd.Pool by
// several producer goroutines, and the final snapshot reports what the
// pool detected per application.
//
// The pool is generic over the unified Detector interface: -engine
// selects the per-stream engine (plain event detector, adaptive window,
// or a multi-scale ladder) injected through PoolConfig.NewDetector.
//
// Usage:
//
//	go run ./examples/multistream
//	go run ./examples/multistream -streams 500 -shards 8 -events 6000
//	go run ./examples/multistream -engine adaptive
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"dpd"
	"dpd/internal/apps"
	"dpd/internal/trace"
)

func main() {
	streams := flag.Int("streams", 300, "number of concurrent keyed streams")
	shards := flag.Int("shards", 0, "pool shards (0 = GOMAXPROCS)")
	events := flag.Int("events", 4000, "samples fed per stream")
	feeders := flag.Int("feeders", 4, "producer goroutines")
	window := flag.Int("window", 512, "detector window (must exceed the largest expected period)")
	chunk := flag.Int("chunk", 32, "consecutive samples per stream per batch")
	engine := flag.String("engine", "event", "per-stream engine: event|adaptive|multiscale")
	flag.Parse()

	// One recorded address trace per application (paper Figure 7); each
	// stream replays one of them from its own starting phase, so the pool
	// sees hundreds of identical applications at different points of
	// their execution — the multiprogrammed-workload picture.
	var traces []*trace.EventTrace
	for _, app := range apps.SPECfp95() {
		traces = append(traces, app.Trace())
	}

	// Each stream gets its own engine from the injected factory; any
	// Detector works behind the pool. The option set is validated once
	// up front so flag errors exit cleanly instead of panicking inside
	// the factory.
	var opts []dpd.Option
	switch *engine {
	case "event":
		opts = []dpd.Option{dpd.WithWindow(*window)}
	case "adaptive":
		policy := dpd.DefaultAdaptivePolicy()
		policy.MaxWindow = *window
		opts = []dpd.Option{dpd.WithAdaptive(policy)}
	case "multiscale":
		opts = []dpd.Option{dpd.WithLadder(8, 64, *window)}
	default:
		fmt.Fprintf(os.Stderr, "multistream: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	if _, err := dpd.New(opts...); err != nil {
		fmt.Fprintln(os.Stderr, "multistream:", err)
		os.Exit(2)
	}
	factory := func() dpd.Detector { return dpd.Must(opts...) }

	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:      *shards,
		NewDetector: factory,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "multistream:", err)
		os.Exit(1)
	}
	defer p.Close()

	appOf := func(key uint64) *trace.EventTrace { return traces[key%uint64(len(traces))] }
	sampleOf := func(key uint64, i int) int64 {
		tr := appOf(key)
		phase := int(key/uint64(len(traces))) * 17 % tr.Len()
		return tr.Values[(phase+i)%tr.Len()]
	}

	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < *feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			// Feeder f owns keys f, feeders+f, 2*feeders+f, … and
			// interleaves chunks of its streams within every batch.
			var keys []uint64
			for k := f; k < *streams; k += *feeders {
				keys = append(keys, uint64(k))
			}
			batch := make([]dpd.KeyedSample, 0, len(keys)**chunk)
			for i := 0; i < *events; i += *chunk {
				batch = batch[:0]
				for _, k := range keys {
					for j := 0; j < *chunk && i+j < *events; j++ {
						batch = append(batch, dpd.KeyedSample{Key: k, Value: sampleOf(k, i+j)})
					}
				}
				p.FeedBatch(batch)
			}
		}(f)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := p.Snapshot(nil)
	sort.Slice(stats, func(i, j int) bool { return stats[i].Key < stats[j].Key })

	// Aggregate detection state per application.
	type agg struct {
		streams, locked int
		periods         map[int]int
	}
	byApp := map[string]*agg{}
	var total uint64
	for _, st := range stats {
		name := appOf(st.Key).Name
		a := byApp[name]
		if a == nil {
			a = &agg{periods: map[int]int{}}
			byApp[name] = a
		}
		a.streams++
		total += st.Samples
		if st.Locked {
			a.locked++
			a.periods[st.Period]++
		}
	}

	fmt.Printf("pool: %d streams over %d shards, %d samples in %v (%.1f Melem/s)\n\n",
		p.Len(), p.Shards(), total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("%-10s %8s %8s  %s\n", "app", "streams", "locked", "periods (count)")
	names := make([]string, 0, len(byApp))
	for name := range byApp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byApp[name]
		var ps []int
		for per := range a.periods {
			ps = append(ps, per)
		}
		sort.Ints(ps)
		desc := ""
		for _, per := range ps {
			desc += fmt.Sprintf(" %d(×%d)", per, a.periods[per])
		}
		fmt.Printf("%-10s %8d %8d %s\n", name, a.streams, a.locked, desc)
	}
}
