// Nested periodicities: multi-scale detection on a hydro2d-like stream.
//
// Applications with nested parallel structure expose different
// periodicities at different scales and execution phases: a loop called
// many times in a row (period 1), an inner group of loops iterated
// several times (period = group size), and the outer main-loop iteration
// (period = whole body). No single window captures all three — the
// multi-scale ladder does (paper Table 2: hydro2d detects 1, 24, 269).
//
// Run with: go run ./examples/nested
package main

import (
	"fmt"

	"dpd"
)

func main() {
	// Build one outer iteration: 4 header loops, one loop called 12×,
	// an inner group of 6 loops repeated 5×, 3 footer loops → period 49.
	var body []int64
	for i := 0; i < 4; i++ {
		body = append(body, int64(0x1000+i*0x40))
	}
	for i := 0; i < 12; i++ {
		body = append(body, 0x2000)
	}
	for r := 0; r < 5; r++ {
		for i := 0; i < 6; i++ {
			body = append(body, int64(0x3000+i*0x40))
		}
	}
	for i := 0; i < 3; i++ {
		body = append(body, int64(0x4000+i*0x40))
	}
	fmt.Printf("outer iteration length: %d loop calls\n\n", len(body))

	ms, err := dpd.NewMultiScaleDetector([]int{8, 32, 128}, dpd.Config{})
	if err != nil {
		panic(err)
	}
	tracker := dpd.NewPeriodTracker()

	for iter := 0; iter < 10; iter++ {
		for _, addr := range body {
			mr := ms.Feed(addr)
			tracker.ObserveMulti(mr, ms)
		}
	}

	fmt.Println("periodicities detected over the run (window = smallest that certified it):")
	for _, s := range tracker.Stats() {
		if s.Samples < 8 {
			continue // transient flickers
		}
		fmt.Printf("  period %3d  first seen at event %5d  locked for %5d events  window %d\n",
			s.Period, s.FirstAt, s.Samples, s.Window)
	}

	fmt.Println("\ncurrent locks per ladder level:")
	for i := 0; i < ms.Levels(); i++ {
		lvl := ms.Level(i)
		fmt.Printf("  window %4d: period %d\n", lvl.Window(), lvl.Locked())
	}
}
