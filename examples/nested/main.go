// Nested periodicities: multi-scale detection on a hydro2d-like stream.
//
// Applications with nested parallel structure expose different
// periodicities at different scales and execution phases: a loop called
// many times in a row (period 1), an inner group of loops iterated
// several times (period = group size), and the outer main-loop iteration
// (period = whole body). No single window captures all three — the
// multi-scale ladder built with dpd.New(dpd.WithLadder(...)) does
// (paper Table 2: hydro2d detects 1, 24, 269). The observer reports the
// outer structure emerging scale by scale as larger windows fill.
//
// Run with: go run ./examples/nested
package main

import (
	"fmt"

	"dpd"
)

func main() {
	// Build one outer iteration: 4 header loops, one loop called 12×,
	// an inner group of 6 loops repeated 5×, 3 footer loops → period 49.
	var body []int64
	for i := 0; i < 4; i++ {
		body = append(body, int64(0x1000+i*0x40))
	}
	for i := 0; i < 12; i++ {
		body = append(body, 0x2000)
	}
	for r := 0; r < 5; r++ {
		for i := 0; i < 6; i++ {
			body = append(body, int64(0x3000+i*0x40))
		}
	}
	for i := 0; i < 3; i++ {
		body = append(body, int64(0x4000+i*0x40))
	}
	fmt.Printf("outer iteration length: %d loop calls\n\n", len(body))

	// The observer sees the primary (outermost locked) structure refine
	// itself as deeper ladder levels wake: 1 → 6 → 49.
	det := dpd.Must(
		dpd.WithLadder(8, 32, 128),
		dpd.WithObserver(dpd.ObserverFuncs{
			Lock: func(e *dpd.Event) {
				fmt.Printf("  event %4d: outer structure locked, period %d\n", e.T, e.Period)
			},
			PeriodChange: func(e *dpd.Event) {
				fmt.Printf("  event %4d: outer structure refined, period %d → %d\n", e.T, e.PrevPeriod, e.Period)
			},
		}),
	)

	fmt.Println("outer-structure transitions (observer callbacks):")
	for iter := 0; iter < 10; iter++ {
		for _, addr := range body {
			det.Feed(dpd.EventSample(addr))
		}
	}

	fmt.Println("\ncurrent locks per ladder level:")
	ladder := det.(*dpd.MultiScaleEngine).Ladder()
	for i := 0; i < ladder.Levels(); i++ {
		lvl := ladder.Level(i)
		fmt.Printf("  window %4d: period %d\n", lvl.Window(), lvl.Locked())
	}
	st := det.Snapshot()
	fmt.Printf("\nprimary: period %d over %d samples, %d outer-period starts\n",
		st.Period, st.Samples, st.Starts)
}
