// Quickstart: the unified detector surface on a loop-address stream.
//
// A parallel application executes the same sequence of encapsulated
// parallel loops every iteration of its main loop. Feeding the loop
// "addresses" to a detector built with dpd.New yields the iteration
// structure; subscribing an Observer delivers the period starts as
// callbacks instead of per-sample polling (the paper's Figure 6 wiring).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dpd"
)

func main() {
	// The detector starts with a large window so that any periodicity up
	// to 1023 events can be captured (paper §3.1); the observer fires on
	// every lock and period start.
	det := dpd.Must(
		dpd.WithObserver(dpd.ObserverFuncs{
			Lock: func(e *dpd.Event) {
				fmt.Printf("event %4d: locked period of %d loops\n", e.T, e.Period)
			},
			SegmentStart: func(e *dpd.Event) {
				fmt.Printf("event %4d: starts a period of %d loops\n", e.T, e.Period)
			},
		}),
	)

	// An application iterating over four parallel loops, with a short
	// aperiodic initialization phase first.
	init := []int64{0xF00, 0xF40, 0xF80}
	loops := []int64{0x100, 0x140, 0x180, 0x1C0}

	for _, a := range init {
		det.Feed(dpd.EventSample(a))
	}
	// Once a satisfying periodicity is expected to be small, the window
	// can be shrunk at run time to cut the per-event cost (DPDWindowSize).
	if err := det.Resize(16); err != nil {
		panic(err)
	}
	for iter := 0; iter < 8; iter++ {
		for _, a := range loops {
			det.Feed(dpd.EventSample(a))
		}
	}

	st := det.Snapshot()
	fmt.Printf("\nfinal state: period %d, window %d, %d samples, %d period starts\n",
		st.Period, st.Window, st.Samples, st.Starts)
}
