// Quickstart: the paper's Table 1 interface on a loop-address stream.
//
// A parallel application executes the same sequence of encapsulated
// parallel loops every iteration of its main loop. Feeding the loop
// "addresses" to the DPD yields the iteration structure: the period
// length and a flag on the first loop of each iteration.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dpd"
)

func main() {
	// The detector starts with a large window so that any periodicity up
	// to 1023 events can be captured (paper §3.1).
	det := dpd.NewDPD()

	// An application iterating over four parallel loops, with a short
	// aperiodic initialization phase first.
	init := []int64{0xF00, 0xF40, 0xF80}
	loops := []int64{0x100, 0x140, 0x180, 0x1C0}

	feed := func(addr int64, i int) {
		start, period := det.Feed(addr)
		if start != 0 {
			fmt.Printf("event %4d: address %#x starts a period of %d loops\n", i, addr, period)
		}
	}

	i := 0
	for _, a := range init {
		feed(a, i)
		i++
	}
	// Once a satisfying periodicity is expected to be small, the window
	// can be shrunk at run time to cut the per-event cost (DPDWindowSize).
	if err := det.WindowSize(16); err != nil {
		panic(err)
	}
	for iter := 0; iter < 8; iter++ {
		for _, a := range loops {
			feed(a, i)
			i++
		}
	}

	fmt.Printf("\nfinal state: period %d, window %d\n", det.Period(), det.Window())
}
