// Segmentation: splitting a multi-phase stream into explicit segments.
//
// The paper's first use case: "the dynamic segmentation of the data
// stream in periods. Periods in a data stream or multiples of them may
// represent reasonable intervals for performance measurement." This
// example derives the measurement intervals from the subscription API
// alone — OnLock opens a segment, OnSegmentStart extends it, OnUnlock
// and OnPeriodChange close it — with no per-sample polling. (The
// polling-era Segmenter type remains available for batch use.)
//
// Run with: go run ./examples/segmentation
package main

import (
	"fmt"

	"dpd"
)

// segment is one periodicity-governed measurement interval.
type segment struct {
	start, end uint64
	period     int
	periods    int
}

func main() {
	var (
		segments []segment
		open     *segment
	)
	closeAt := func(end uint64) {
		if open != nil {
			open.end = end
			if open.periods >= 3 { // ignore stretches under 3 full periods
				segments = append(segments, *open)
			}
			open = nil
		}
	}
	det := dpd.Must(
		dpd.WithWindow(16),
		dpd.WithGrace(4),
		dpd.WithObserver(dpd.ObserverFuncs{
			Lock: func(e *dpd.Event) {
				open = &segment{start: e.T, period: e.Period}
			},
			PeriodChange: func(e *dpd.Event) {
				closeAt(e.T)
				open = &segment{start: e.T, period: e.Period}
			},
			SegmentStart: func(e *dpd.Event) {
				if open != nil && e.T > open.start {
					open.periods++
				}
			},
			Unlock: func(e *dpd.Event) { closeAt(e.T) },
		}),
	)

	feedPattern := func(pat []int64, reps int) {
		for i := 0; i < reps*len(pat); i++ {
			det.Feed(dpd.EventSample(pat[i%len(pat)]))
		}
	}

	// Phase 1: aperiodic initialization (distinct addresses).
	for i := int64(0); i < 25; i++ {
		det.Feed(dpd.EventSample(0xE000 + i*0x40))
	}
	// Phase 2: solver, 4 parallel loops per iteration, 40 iterations.
	feedPattern([]int64{0x100, 0x140, 0x180, 0x1C0}, 40)
	// Phase 3: postprocessing, 7 loops per iteration, 20 iterations.
	feedPattern([]int64{0x900, 0x940, 0x980, 0x9C0, 0xA00, 0xA40, 0xA80}, 20)
	closeAt(det.Snapshot().Samples) // flush the segment still open at EOF

	fmt.Println("measurement intervals derived from observer events:")
	for i, s := range segments {
		fmt.Printf("  segment %d: events [%d, %d) — period %d loops, %d complete periods\n",
			i+1, s.start, s.end, s.period, s.periods)
	}
	fmt.Println("\na performance tool can now measure one period per segment and")
	fmt.Println("predict the rest, instead of monitoring continuously (paper §1).")
}
