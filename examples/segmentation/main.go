// Segmentation: splitting a multi-phase stream into explicit segments.
//
// The paper's first use case: "the dynamic segmentation of the data
// stream in periods. Periods in a data stream or multiples of them may
// represent reasonable intervals for performance measurement." This
// example feeds a three-phase stream (initialization, a solver with a
// 4-loop body, a postprocessing nest with a 7-loop body) through the
// Segmenter and prints the measurement intervals it derives.
//
// Run with: go run ./examples/segmentation
package main

import (
	"fmt"

	"dpd"
)

func main() {
	seg, err := dpd.NewSegmenter(dpd.Config{Window: 16, Grace: 4})
	if err != nil {
		panic(err)
	}
	seg.MinPeriods = 3 // ignore stretches shorter than 3 full periods

	feedPattern := func(pat []int64, reps int) {
		for i := 0; i < reps*len(pat); i++ {
			seg.Feed(pat[i%len(pat)])
		}
	}

	// Phase 1: aperiodic initialization (distinct addresses).
	for i := int64(0); i < 25; i++ {
		seg.Feed(0xE000 + i*0x40)
	}
	// Phase 2: solver, 4 parallel loops per iteration, 40 iterations.
	feedPattern([]int64{0x100, 0x140, 0x180, 0x1C0}, 40)
	// Phase 3: postprocessing, 7 loops per iteration, 20 iterations.
	feedPattern([]int64{0x900, 0x940, 0x980, 0x9C0, 0xA00, 0xA40, 0xA80}, 20)

	fmt.Println("measurement intervals derived from the stream:")
	for i, s := range seg.Flush() {
		fmt.Printf("  segment %d: events [%d, %d) — period %d loops, %d complete periods\n",
			i+1, s.Start, s.End, s.Period, s.Periods)
	}
	fmt.Println("\na performance tool can now measure one period per segment and")
	fmt.Println("predict the rest, instead of monitoring continuously (paper §1).")
}
