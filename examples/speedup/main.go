// Speedup computation: the paper's full §5 pipeline on the simulated
// system — DITools interposition feeds loop addresses to the DPD, the
// SelfAnalyzer identifies the iterative parallel region, measures one
// iteration at a baseline allocation and one at the current allocation,
// computes the speedup, and predicts the total execution time. The
// measured speedups then drive the performance-driven processor
// allocation policy of [Corbalan2000].
//
// Run with: go run ./examples/speedup
package main

import (
	"fmt"
	"time"

	"dpd/internal/apps"
	"dpd/internal/ditools"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/sched"
	"dpd/internal/selfanalyzer"
)

func main() {
	const cpus = 16

	fmt.Printf("=== SelfAnalyzer on a %d-CPU simulated machine ===\n\n", cpus)
	speedups := map[string]float64{}
	for _, app := range apps.SPECfp95() {
		m := machine.New(cpus)
		reg := ditools.NewRegistry()
		rt := nanos.MustNew(m, machine.DefaultCostModel(), cpus, reg)
		sa := selfanalyzer.MustAttach(rt, reg, selfanalyzer.Config{})

		probe := 40
		if probe > app.Iterations {
			probe = app.Iterations
		}
		app.RunIterations(rt, probe)

		r := sa.Region()
		if r == nil {
			fmt.Printf("%-8s no iterative structure found\n", app.Name)
			continue
		}
		s, _ := sa.Speedup()
		est, _ := sa.EstimateTotal(app.Iterations)
		st := sa.Snapshot() // unified detector state behind the analyzer
		fmt.Printf("%-8s region period %3d  speedup %5.2f on %2d CPUs  estimated total %8.1fs  (%d events, %d starts)\n",
			app.Name, r.Period, s, r.CurrentProcs, est.Seconds(), st.Samples, st.Starts)
		speedups[app.Name] = s
	}

	fmt.Printf("\n=== Feeding measured speedups into processor allocation ===\n\n")
	// Build a workload whose speedup curves interpolate the SelfAnalyzer
	// measurements (measured point at `cpus`, S(1)=1, Amdahl in between).
	var jobs []sched.Job
	for _, app := range apps.SPECfp95() {
		s := speedups[app.Name]
		if s == 0 {
			continue
		}
		// Solve Amdahl's serial fraction from the measured S(cpus):
		// S(p) = 1/(f + (1−f)/p) → f = (cpus/S − 1)/(cpus − 1).
		f := (float64(cpus)/s - 1) / float64(cpus-1)
		jobs = append(jobs, sched.Job{
			Name: app.Name,
			Work: app.SequentialTime(),
			Speedup: func(p int) float64 {
				if p <= 0 {
					return 0
				}
				return 1 / (f + (1-f)/float64(p))
			},
		})
	}
	for _, pol := range []sched.Policy{sched.Equipartition{}, sched.PerformanceDriven{}} {
		r, err := sched.Simulate(jobs, cpus, 100*time.Millisecond, pol)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s makespan %6.1fs  avg turnaround %6.1fs  cpu time %7.1fs\n",
			pol.Name(), r.Makespan.Seconds(), r.AvgTurnaround.Seconds(), r.CPUTime.Seconds())
	}
}
