// Fuzz target for the checkpoint decoder: dpd.Restore consumes bytes
// that may come from disk or the network, so truncated, corrupted and
// version-skewed input must produce a descriptive error — never a
// panic, an over-read, or an allocation orders of magnitude beyond the
// input. Run with:
//
//	go test -fuzz FuzzRestore -fuzztime 30s .
//
// The seed corpus covers a valid checkpoint of every engine plus the
// interesting malformations (truncations at layer boundaries, version
// skew on both the container and the engine codec, bit flips in the
// packed bitset region), so even the non-fuzzing `go test` run
// exercises each decode path.
package dpd_test

import (
	"bytes"
	"testing"

	"dpd"
)

// fuzzSeedBlobs builds one warmed, locked checkpoint per engine.
func fuzzSeedBlobs(tb testing.TB) [][]byte {
	tb.Helper()
	var blobs [][]byte
	for _, tc := range checkpointCases() {
		det := dpd.Must(tc.opts...)
		for i := 0; i < 400; i++ {
			det.Feed(tc.sample(i))
		}
		blob, err := dpd.Checkpoint(det)
		if err != nil {
			tb.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	return blobs
}

func FuzzRestore(f *testing.F) {
	for _, blob := range fuzzSeedBlobs(f) {
		f.Add(blob)
		f.Add(blob[:len(blob)/2]) // mid-state truncation
		f.Add(blob[:5])           // header only
		skew := bytes.Clone(blob)
		skew[4] = 2 // container version
		f.Add(skew)
		skew = bytes.Clone(blob)
		skew[6] = 99 // engine format version
		f.Add(skew)
		flip := bytes.Clone(blob)
		for i := 20; i < len(flip); i += 37 {
			flip[i] ^= 0x81
		}
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("DPDS\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		det, err := dpd.Restore(data)
		if err != nil {
			return // rejected input is the expected outcome
		}
		// Accepted input must yield a fully usable detector: feeding,
		// snapshotting and re-checkpointing must not panic.
		for i := 0; i < 64; i++ {
			det.Feed(dpd.Sample{Value: int64(i % 5), Magnitude: float64(i % 5)})
		}
		_ = det.Snapshot()
		if _, err := dpd.Checkpoint(det); err != nil {
			t.Fatalf("restored detector failed to re-checkpoint: %v", err)
		}
	})
}

// FuzzRestoreRoundTrip drives the encoder and decoder against each
// other: interpret the fuzz input as a sample stream, checkpoint after
// feeding it, and require the restored detector to continue
// byte-identically. This hunts state the codec forgets to carry, not
// just decode crashes.
func FuzzRestoreRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3})
	f.Add([]byte("aaaaabaaaaabaaaaab"))
	f.Fuzz(func(t *testing.T, stream []byte) {
		if len(stream) > 4096 {
			stream = stream[:4096]
		}
		det := dpd.Must(dpd.WithWindow(16), dpd.WithGrace(1))
		for _, v := range stream {
			det.Feed(dpd.EventSample(int64(v)))
		}
		blob, err := dpd.Checkpoint(det)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := dpd.Restore(blob)
		if err != nil {
			t.Fatalf("own checkpoint rejected: %v", err)
		}
		for i := 0; i < 64; i++ {
			v := dpd.EventSample(int64(i % 3))
			if got, want := restored.Feed(v), det.Feed(v); got != want {
				t.Fatalf("sample %d after restore: %+v != %+v", i, got, want)
			}
		}
	})
}
