module dpd

go 1.24
