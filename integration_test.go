package dpd_test

// End-to-end integration tests across module boundaries: application →
// runtime → interposition → trace codec → detector → analyzer, the full
// path the paper's Figure 6 describes plus the offline replay path of
// its overhead benchmark.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dpd"
	"dpd/internal/apps"
	"dpd/internal/core"
	"dpd/internal/ditools"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/selfanalyzer"
	"dpd/internal/trace"
)

// TestPipelineTraceFileReplay: record an application's address stream to
// a file in both codecs, read it back, and verify the DPD detects the
// same periodicities from the replayed file as from the live stream —
// exactly the paper's synthetic benchmark methodology (§6.3).
func TestPipelineTraceFileReplay(t *testing.T) {
	app := apps.Turb3d()
	live := app.Trace()

	dir := t.TempDir()
	detect := func(values []int64) []int {
		ms := core.MustMultiScaleDetector(nil, core.Config{})
		pt := core.NewPeriodTracker()
		for _, v := range values {
			pt.ObserveMulti(ms.Feed(v), ms)
		}
		return pt.SignificantPeriods(8)
	}
	wantPeriods := detect(live.Values)

	// Text codec round trip through a real file.
	textPath := filepath.Join(dir, "turb3d.trc")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteEventText(f, live); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(textPath)
	if err != nil {
		t.Fatal(err)
	}
	ev, _, err := trace.ReadText(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := detect(ev.Values)
	if len(got) != len(wantPeriods) {
		t.Fatalf("text replay periods %v, live %v", got, wantPeriods)
	}
	for i := range got {
		if got[i] != wantPeriods[i] {
			t.Fatalf("text replay periods %v, live %v", got, wantPeriods)
		}
	}

	// Binary codec round trip through a buffer.
	var buf bytes.Buffer
	if err := trace.WriteEventBinary(&buf, live); err != nil {
		t.Fatal(err)
	}
	ev2, _, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got2 := detect(ev2.Values)
	for i := range got2 {
		if got2[i] != wantPeriods[i] {
			t.Fatalf("binary replay periods %v, live %v", got2, wantPeriods)
		}
	}
}

// TestPipelinePublicInterfaceOnAppStream: the paper's Table 1 interface
// consuming a real application stream end to end.
func TestPipelinePublicInterfaceOnAppStream(t *testing.T) {
	tr := apps.Tomcatv().Trace()
	det := dpd.NewDPD()
	if err := det.WindowSize(32); err != nil {
		t.Fatal(err)
	}
	starts := 0
	var lastPeriod int
	for _, v := range tr.Values {
		s, p := det.Feed(v)
		if s != 0 {
			starts++
			lastPeriod = p
		}
	}
	if lastPeriod != 5 {
		t.Fatalf("period=%d, want 5", lastPeriod)
	}
	// 750 iterations; segmentation starts shortly after window fill.
	if starts < 700 {
		t.Fatalf("starts=%d, want ≈740+", starts)
	}
}

// TestPipelineFigure6Wiring: DITools → DPD → SelfAnalyzer on the live
// runtime, asserting the analyzer's view agrees with the runtime's own
// accounting.
func TestPipelineFigure6Wiring(t *testing.T) {
	m := machine.New(8)
	reg := ditools.NewRegistry()
	rt := nanos.MustNew(m, machine.DefaultCostModel(), 8, reg)
	sa := selfanalyzer.MustAttach(rt, reg, selfanalyzer.Config{})

	app := apps.Swim()
	app.RunIterations(rt, 50)

	if sa.Events() != reg.Calls() {
		t.Fatalf("analyzer saw %d events, registry %d", sa.Events(), reg.Calls())
	}
	r := sa.Region()
	if r == nil || r.Period != 6 {
		t.Fatalf("region=%+v", r)
	}
	// Region start address is one of swim's body loops.
	if r.StartAddr < 0x402000 || r.StartAddr > 0x402000+6*0x40 {
		t.Fatalf("start address %#x outside swim's body", r.StartAddr)
	}
	// The runtime executed prologue (2) + 50×6 loops.
	if rt.LoopsExecuted() != 302 {
		t.Fatalf("loops executed=%d", rt.LoopsExecuted())
	}
	// Busy time never exceeds cpus × elapsed.
	if m.BusyTime() > 8*m.Now() {
		t.Fatal("busy time exceeds machine capacity")
	}
}

// TestPipelineCPUTraceToMagnitudeDetector: FT trace through the text
// codec and into the eq. (1) detector (the fig3 → fig4 path).
func TestPipelineCPUTraceToMagnitudeDetector(t *testing.T) {
	cpuTr := apps.FTCPUTrace(40, 99)
	var buf bytes.Buffer
	if err := trace.WriteCPUText(&buf, cpuTr); err != nil {
		t.Fatal(err)
	}
	_, rt, err := trace.ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	det, err := dpd.NewMagnitudeDetector(dpd.Config{Window: 100, Confirm: 3})
	if err != nil {
		t.Fatal(err)
	}
	var last dpd.Result
	for _, v := range rt.Samples {
		last = det.Feed(v)
	}
	if !last.Locked || last.Period < 43 || last.Period > 45 {
		t.Fatalf("replayed FT trace: %+v, want ≈44", last)
	}
}
