package dpd

// DPD is the paper's Table 1 interface, ported to Go:
//
//	int DPD(long sample, int *period)   → Feed(sample) (start, period)
//	void DPDWindowSize(int size)        → WindowSize(size)
//
// Feed processes one sample of the data series and returns a non-zero
// start flag exactly when the sample begins a new period, together with
// the detected period length — the segmentation contract the
// SelfAnalyzer consumes in the paper's Figure 6:
//
//	start, period := d.Feed(address)
//	if start != 0 {
//	        InitParallelRegion(address, period)
//	}
//
// Since the unified-interface redesign, DPD is a thin shim over the
// event engine returned by New: new code should use New directly (and
// WithObserver instead of polling the start flag), but this type stays
// as the faithful paper port.
//
// The zero value is not usable; construct with NewDPD.
type DPD struct {
	eng *EventEngine
}

// NewDPD returns a detector with the paper's default setting: a window of
// 1024 samples, large enough to capture periodicities of up to 1023
// samples; call WindowSize to shrink it once a satisfying periodicity is
// detected (paper §3.1). It is equivalent to New() with no options.
func NewDPD() *DPD {
	return &DPD{eng: Must().(*EventEngine)}
}

// NewDPDWithWindow returns a detector with an explicit window size. It is
// equivalent to New(WithWindow(size)).
func NewDPDWithWindow(size int) (*DPD, error) {
	det, err := New(WithWindow(size))
	if err != nil {
		return nil, err
	}
	return &DPD{eng: det.(*EventEngine)}, nil
}

// Feed processes one sample. start is 1 when the sample begins a new
// period (the paper's non-zero return), else 0; period is the detected
// periodicity in samples (0 while no periodicity is established).
func (d *DPD) Feed(sample int64) (start, period int) {
	r := d.eng.Feed(Sample{Value: sample})
	if !r.Locked {
		return 0, 0
	}
	if r.Start {
		start = 1
	}
	return start, r.Period
}

// FeedAll processes a batch of samples, writing one Result per sample into
// dst (grown if needed) and returning the filled slice. Result.Start and
// Result.Period carry the paper's start flag and period for each sample.
// Passing a dst with sufficient capacity makes the batch path
// allocation-free; this is the entry point for amortized multi-stream
// serving where per-call overhead matters.
func (d *DPD) FeedAll(samples []int64, dst []Result) []Result {
	if cap(dst) < len(samples) {
		dst = make([]Result, len(samples))
	}
	dst = dst[:len(samples)]
	for i, v := range samples {
		dst[i] = d.eng.Feed(Sample{Value: v})
	}
	return dst
}

// WindowSize adjusts the data window size during execution
// (paper Table 1: DPDWindowSize). Invalid sizes are rejected.
func (d *DPD) WindowSize(size int) error { return d.eng.Resize(size) }

// Window returns the current window size.
func (d *DPD) Window() int { return d.eng.Window() }

// Period returns the currently locked periodicity (0 if none).
func (d *DPD) Period() int { return d.eng.Detector().Locked() }

// Predict returns the forecast for the next sample under the locked
// periodicity, x̂[t+1] = x[t+1−p], and whether a forecast is possible —
// the paper's prediction-of-future-values use of the DPD without the
// bookkeeping of a full EventPredictor. It does not allocate.
func (d *DPD) Predict() (int64, bool) { return d.eng.Detector().PredictNext() }

// Reset clears all detector state.
func (d *DPD) Reset() { d.eng.Reset() }

// AsDetector exposes the shimmed event engine as the unified Detector
// interface (Snapshot, observer-capable construction lives in New).
func (d *DPD) AsDetector() Detector { return d.eng }
