// Package apps provides the evaluation workloads: loop-structure
// skeletons of the five hand-parallelized SPECFp95 applications used in
// the paper's Table 2/3 and Figure 7 (tomcatv, swim, apsi, hydro2d,
// turb3d) plus the MPI/OpenMP NAS FT model behind Figures 3/4.
//
// Substitution note (see DESIGN.md §3): the real benchmarks' numerics are
// irrelevant to the DPD — it only observes the *sequence of encapsulated
// parallel-loop addresses* (Table 2, Figure 7) and the *CPU-usage signal*
// (Figures 3/4). Each skeleton reproduces, exactly, the paper's stream
// length and nesting structure:
//
//	tomcatv  3750 events  = 750 iterations × 5 loops          period 5
//	swim     5402 events  = 2 + 900 × 6                       period 6
//	apsi     5762 events  = 2 + 960 × 6                       period 6
//	hydro2d  53814 events = 14 + 200 × 269                    periods 1, 24, 269
//	         269 = 10 header + 30× one loop + 9 × 24 + 13 footer
//	turb3d   1580 events  = 18 + 11 × 142                     periods 12, 142
//	         142 = 10 header + 10 × 12 + 12 footer
//
// Per-iteration work is calibrated so the simulated sequential execution
// times land near the paper's Table 3 ApExTime column (136.33 s, 135.17 s,
// 95.9 s, 183.92 s, 266.44 s).
package apps

import (
	"fmt"
	"time"

	"dpd/internal/ditools"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/series"
	"dpd/internal/trace"
)

// App is an iterative parallel application: a prologue followed by a main
// sequential loop whose body is a fixed segment list.
type App struct {
	// Name is the benchmark name (lower case, as in the paper's tables).
	Name string
	// Prologue runs once before the main loop.
	Prologue []nanos.Segment
	// Body is one iteration of the main sequential loop.
	Body []nanos.Segment
	// Iterations is the trip count of the main loop.
	Iterations int
	// ExpectPeriods is the ground-truth periodicity set (paper Table 2).
	ExpectPeriods []int
}

// segEvents returns how many loop-call events a segment emits.
func segEvents(s nanos.Segment) int {
	if s.Loop.ID == 0 {
		return 0
	}
	if s.Loop.Repeat > 1 {
		return s.Loop.Repeat
	}
	return 1
}

// EventsPerIteration returns the number of loop-call events per main-loop
// iteration (the outer periodicity of the address stream).
func (a *App) EventsPerIteration() int {
	n := 0
	for _, s := range a.Body {
		n += segEvents(s)
	}
	return n
}

// EventCount returns the total length of the address stream.
func (a *App) EventCount() int {
	n := 0
	for _, s := range a.Prologue {
		n += segEvents(s)
	}
	return n + a.Iterations*a.EventsPerIteration()
}

// Run executes the application to completion on the given runtime.
func (a *App) Run(rt *nanos.Runtime) {
	for _, s := range a.Prologue {
		rt.RunSegment(s)
	}
	for i := 0; i < a.Iterations; i++ {
		rt.RunIteration(a.Body)
	}
}

// RunIterations executes the prologue and the first n iterations only.
func (a *App) RunIterations(rt *nanos.Runtime, n int) {
	if n > a.Iterations {
		n = a.Iterations
	}
	for _, s := range a.Prologue {
		rt.RunSegment(s)
	}
	for i := 0; i < n; i++ {
		rt.RunIteration(a.Body)
	}
}

// Trace runs the application on a fresh single-CPU machine with DITools
// interposition and returns the loop-address stream — the exact data
// series of the paper's Figure 7 / Table 2.
func (a *App) Trace() *trace.EventTrace {
	m := machine.New(1)
	reg := ditools.NewRegistry()
	rt := nanos.MustNew(m, machine.DefaultCostModel(), 1, reg)
	out := &trace.EventTrace{Name: a.Name}
	reg.OnCall(func(e ditools.Event) { out.Append(e.Addr) })
	a.Run(rt)
	if out.Len() != a.EventCount() {
		panic(fmt.Sprintf("apps: %s produced %d events, expected %d", a.Name, out.Len(), a.EventCount()))
	}
	return out
}

// SequentialTime returns the simulated execution time on one processor
// (Table 3's ApExTime column).
func (a *App) SequentialTime() time.Duration {
	m := machine.New(1)
	rt := nanos.MustNew(m, machine.DefaultCostModel(), 1, nil)
	a.Run(rt)
	return m.Now()
}

// loop is shorthand for a single-call loop segment.
func loop(id nanos.LoopID, trip int, perIter time.Duration) nanos.Segment {
	return nanos.Segment{Loop: nanos.Loop{ID: id, Trip: trip, PerIter: perIter}}
}

// loopN is shorthand for a loop called `repeat` times consecutively.
func loopN(id nanos.LoopID, trip int, perIter time.Duration, repeat int) nanos.Segment {
	return nanos.Segment{Loop: nanos.Loop{ID: id, Trip: trip, PerIter: perIter, Repeat: repeat}}
}

// distinctLoops builds n consecutive single-call loop segments with
// addresses base, base+0x40, ... — the compiler lays encapsulated loop
// functions out consecutively in the text section.
func distinctLoops(base nanos.LoopID, n, trip int, perIter time.Duration) []nanos.Segment {
	out := make([]nanos.Segment, n)
	for i := range out {
		out[i] = loop(base+nanos.LoopID(i*0x40), trip, perIter)
	}
	return out
}

// Tomcatv returns the tomcatv skeleton: one flat periodicity of 5.
func Tomcatv() *App {
	return &App{
		Name:          "tomcatv",
		Body:          distinctLoops(0x401000, 5, 101, 360*time.Microsecond),
		Iterations:    750,
		ExpectPeriods: []int{5},
	}
}

// Swim returns the swim skeleton: one flat periodicity of 6.
func Swim() *App {
	return &App{
		Name:          "swim",
		Prologue:      distinctLoops(0x4F1000, 2, 50, 100*time.Microsecond),
		Body:          distinctLoops(0x402000, 6, 125, 200*time.Microsecond),
		Iterations:    900,
		ExpectPeriods: []int{6},
	}
}

// Apsi returns the apsi skeleton: one flat periodicity of 6.
func Apsi() *App {
	return &App{
		Name:          "apsi",
		Prologue:      distinctLoops(0x4F2000, 2, 50, 100*time.Microsecond),
		Body:          distinctLoops(0x403000, 6, 111, 150*time.Microsecond),
		Iterations:    960,
		ExpectPeriods: []int{6},
	}
}

// Hydro2d returns the hydro2d skeleton: nested iterative structure with
// periodicities 1 (a loop called 30× consecutively), 24 (an inner group
// of 24 loops repeated 9×), and 269 (the whole outer iteration).
func Hydro2d() *App {
	var body []nanos.Segment
	body = append(body, distinctLoops(0x404000, 10, 100, 34*time.Microsecond)...) // header
	body = append(body, loopN(0x404800, 50, 68*time.Microsecond, 30))             // 30× same loop → period 1
	inner := distinctLoops(0x405000, 24, 100, 34*time.Microsecond)
	for r := 0; r < 9; r++ { // 9 × 24 → period 24
		body = append(body, inner...)
	}
	body = append(body, distinctLoops(0x406000, 13, 100, 34*time.Microsecond)...) // footer
	return &App{
		Name:          "hydro2d",
		Prologue:      distinctLoops(0x4F3000, 14, 50, 40*time.Microsecond),
		Body:          body,
		Iterations:    200,
		ExpectPeriods: []int{1, 24, 269},
	}
}

// Turb3d returns the turb3d skeleton: nested iterative structure with
// periodicities 12 (inner group repeated 10×) and 142 (outer iteration).
func Turb3d() *App {
	var body []nanos.Segment
	body = append(body, distinctLoops(0x407000, 10, 200, 853*time.Microsecond)...) // header
	inner := distinctLoops(0x408000, 12, 200, 853*time.Microsecond)
	for r := 0; r < 10; r++ { // 10 × 12 → period 12
		body = append(body, inner...)
	}
	body = append(body, distinctLoops(0x409000, 12, 200, 853*time.Microsecond)...) // footer
	return &App{
		Name:          "turb3d",
		Prologue:      distinctLoops(0x4F4000, 18, 50, 40*time.Microsecond),
		Body:          body,
		Iterations:    11,
		ExpectPeriods: []int{12, 142},
	}
}

// SPECfp95 returns the five evaluation applications in the paper's
// Table 2 order.
func SPECfp95() []*App {
	return []*App{Apsi(), Hydro2d(), Swim(), Tomcatv(), Turb3d()}
}

// ByName returns the named application (SPECfp95 set + "ft") or an error.
func ByName(name string) (*App, error) {
	switch name {
	case "tomcatv":
		return Tomcatv(), nil
	case "swim":
		return Swim(), nil
	case "apsi":
		return Apsi(), nil
	case "hydro2d":
		return Hydro2d(), nil
	case "turb3d":
		return Turb3d(), nil
	case "ft":
		return FT(), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// FT returns the NAS FT model: an MPI/OpenMP application on 16 CPUs
// (4 processes × 4 threads). Each iteration of its main loop opens and
// closes parallelism a few times and exchanges messages between
// processes; at the paper's 1 ms sampling this yields a CPU-usage
// pattern with periodicity 44 samples (Figure 3/4).
func FT() *App {
	body := []nanos.Segment{
		{Serial: 3 * time.Millisecond},                 // 1 CPU:  3 ms (transpose setup)
		loop(0x40A000, 1600, 100*time.Microsecond),     // 16 CPU: 10 ms (FFT dimension 1)
		{CommProcs: 4, CommTime: 4 * time.Millisecond}, // 4 CPU:  4 ms (MPI all-to-all)
		loop(0x40A040, 1920, 100*time.Microsecond),     // 16 CPU: 12 ms (FFT dimension 2)
		{Serial: 2 * time.Millisecond},                 // 1 CPU:  2 ms (checksum)
		loop(0x40A080, 1600, 100*time.Microsecond),     // 16 CPU: 10 ms (FFT dimension 3)
		{CommProcs: 4, CommTime: 3 * time.Millisecond}, // 4 CPU:  3 ms (MPI exchange)
	}
	return &App{
		Name:          "ft",
		Prologue:      []nanos.Segment{{Serial: 5 * time.Millisecond}},
		Body:          body,
		Iterations:    60,
		ExpectPeriods: []int{44}, // in 1 ms CPU samples, not events
	}
}

// ftCostModel has no fork/join overhead or contention so that the FT
// iteration takes exactly 44 ms on 16 CPUs (3+10+4+12+2+10+3); the
// communication cost that dominates FT is modeled explicitly by the
// Communicate segments instead.
func ftCostModel() machine.CostModel { return machine.CostModel{} }

// FTCPUTrace runs the FT model on a 16-CPU machine with a 1 ms sampler
// and returns the CPU-usage trace of the paper's Figure 3. jitterSeed
// perturbs per-iteration loop trip counts by up to ±3% so that successive
// iterations are similar but not identical ("it can be noted that the
// pattern of CPU use is not exactly the same"); seed 0 disables jitter.
func FTCPUTrace(iterations int, jitterSeed uint64) *trace.CPUTrace {
	if iterations <= 0 {
		iterations = 60
	}
	app := FT()
	m := machine.New(16)
	rt := nanos.MustNew(m, ftCostModel(), 16, nil)
	sampler := trace.NewSampler("ft", time.Millisecond)
	m.Observe(func(now time.Duration, active int) {
		sampler.Observe(now, float64(active))
	})

	var rng *series.RNG
	if jitterSeed != 0 {
		rng = series.NewRNG(jitterSeed)
	}
	for _, s := range app.Prologue {
		rt.RunSegment(s)
	}
	for i := 0; i < iterations; i++ {
		for _, s := range app.Body {
			if rng != nil && s.Loop.ID != 0 {
				j := s.Loop
				// ±3% trip jitter: similar but not identical iterations.
				delta := int(float64(j.Trip) * 0.03 * (2*rng.Float64() - 1))
				j.Trip += delta
				rt.RunSegment(nanos.Segment{Loop: j})
				continue
			}
			rt.RunSegment(s)
		}
	}
	return sampler.Finish(m.Now())
}
