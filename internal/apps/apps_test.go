package apps

import (
	"testing"
	"time"

	"dpd/internal/core"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/series"
)

// Table 2 ground truth: stream lengths.
func TestStreamLengthsMatchTable2(t *testing.T) {
	want := map[string]int{
		"apsi":    5762,
		"hydro2d": 53814,
		"swim":    5402,
		"tomcatv": 3750,
		"turb3d":  1580,
	}
	for _, app := range SPECfp95() {
		if got := app.EventCount(); got != want[app.Name] {
			t.Errorf("%s: EventCount=%d, want %d", app.Name, got, want[app.Name])
		}
		tr := app.Trace()
		if tr.Len() != want[app.Name] {
			t.Errorf("%s: trace len=%d, want %d", app.Name, tr.Len(), want[app.Name])
		}
	}
}

func TestEventsPerIterationIsOuterPeriod(t *testing.T) {
	want := map[string]int{
		"tomcatv": 5, "swim": 6, "apsi": 6, "hydro2d": 269, "turb3d": 142,
	}
	for _, app := range SPECfp95() {
		if got := app.EventsPerIteration(); got != want[app.Name] {
			t.Errorf("%s: EventsPerIteration=%d, want %d", app.Name, got, want[app.Name])
		}
	}
}

func TestTracesAreExactlyOuterPeriodic(t *testing.T) {
	for _, app := range SPECfp95() {
		tr := app.Trace()
		p := app.EventsPerIteration()
		// Skip the prologue; the iterative part must be exactly p-periodic.
		pro := tr.Len() - app.Iterations*p
		body := tr.Values[pro:]
		if !series.IsPeriodicInt(body, p) {
			t.Errorf("%s: body not %d-periodic", app.Name, p)
		}
		if f := series.FundamentalPeriodInt(body[:min(len(body), 10*p)], p); f != p {
			t.Errorf("%s: fundamental=%d, want %d (no shorter global period)", app.Name, f, p)
		}
	}
}

func TestHydro2dNestedStructure(t *testing.T) {
	tr := Hydro2d().Trace()
	body := tr.Values[14 : 14+269] // first outer iteration
	// Header: 10 distinct, then 30× one address.
	run := body[10:40]
	for i, v := range run {
		if v != run[0] {
			t.Fatalf("run position %d: %#x != %#x", i, v, run[0])
		}
	}
	// Inner: 9 repetitions of a 24-address group.
	inner := body[40 : 40+216]
	if !series.IsPeriodicInt(inner, 24) {
		t.Fatal("inner region not 24-periodic")
	}
	if series.FundamentalPeriodInt(inner, 24) != 24 {
		t.Fatal("inner region has a shorter period than 24")
	}
}

func TestTurb3dNestedStructure(t *testing.T) {
	tr := Turb3d().Trace()
	body := tr.Values[18 : 18+142]
	inner := body[10 : 10+120]
	if !series.IsPeriodicInt(inner, 12) {
		t.Fatal("inner region not 12-periodic")
	}
	if series.FundamentalPeriodInt(inner, 12) != 12 {
		t.Fatal("inner region has a shorter period than 12")
	}
}

// The headline reproduction: the multi-scale DPD must detect exactly the
// paper's Table 2 periodicities on every application.
func TestTable2DetectedPeriodicities(t *testing.T) {
	for _, app := range SPECfp95() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			tr := app.Trace()
			ms := core.MustMultiScaleDetector(nil, core.Config{})
			pt := core.NewPeriodTracker()
			for _, v := range tr.Values {
				pt.ObserveMulti(ms.Feed(v), ms)
			}
			got := pt.SignificantPeriods(8)
			want := app.ExpectPeriods
			if len(got) != len(want) {
				t.Fatalf("periods=%v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("periods=%v, want %v", got, want)
				}
			}
		})
	}
}

func TestSequentialTimesNearPaper(t *testing.T) {
	// Table 3 ApExTime: simulated sequential times must land within 5% of
	// the paper's seconds (the skeletons are calibrated for this).
	want := map[string]float64{
		"tomcatv": 136.33,
		"swim":    135.17,
		"apsi":    95.9,
		"hydro2d": 183.92,
		"turb3d":  266.44,
	}
	for _, app := range SPECfp95() {
		got := app.SequentialTime().Seconds()
		w := want[app.Name]
		if got < w*0.95 || got > w*1.05 {
			t.Errorf("%s: sequential time %.2fs, want within 5%% of %.2fs", app.Name, got, w)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"tomcatv", "swim", "apsi", "hydro2d", "turb3d", "ft"} {
		app, err := ByName(n)
		if err != nil || app.Name != n {
			t.Errorf("ByName(%q)=%v,%v", n, app, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFTIterationIs44ms(t *testing.T) {
	app := FT()
	m := machine.New(16)
	rt := nanos.MustNew(m, ftCostModel(), 16, nil)
	for _, s := range app.Prologue {
		rt.RunSegment(s)
	}
	start := m.Now()
	rt.RunIteration(app.Body)
	if d := m.Now() - start; d != 44*time.Millisecond {
		t.Fatalf("FT iteration=%v, want exactly 44ms", d)
	}
}

func TestFTCPUTraceShape(t *testing.T) {
	tr := FTCPUTrace(50, 0) // no jitter: exactly periodic
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Interval != time.Millisecond {
		t.Fatalf("interval=%v", tr.Interval)
	}
	lo, hi := series.MinMax(tr.Samples)
	if hi != 16 {
		t.Fatalf("peak CPUs=%v, want 16", hi)
	}
	if lo < 0 {
		t.Fatalf("min CPUs=%v", lo)
	}
	// After the 5ms prologue the sampled stream is exactly 44-periodic.
	body := tr.Samples[6:]
	if !series.IsPeriodic(body[:len(body)-50], 44) {
		t.Fatal("jitter-free FT CPU trace not 44-periodic")
	}
}

func TestFTCPUTraceFigure4Periodicity(t *testing.T) {
	// With jitter (the realistic Figure 3 trace), eq. (1) must still find
	// the periodicity at m = 44.
	tr := FTCPUTrace(50, 12345)
	d := core.MustMagnitudeDetector(core.Config{Window: 100, Confirm: 3})
	var last core.Result
	for _, v := range tr.Samples {
		last = d.Feed(v)
	}
	if !last.Locked || last.Period < 43 || last.Period > 45 {
		t.Fatalf("FT jittered trace: %+v, want period ≈44", last)
	}
}

func TestFTCPUTraceJitterChangesIterations(t *testing.T) {
	a := FTCPUTrace(30, 7)
	b := FTCPUTrace(30, 0)
	if len(a.Samples) == len(b.Samples) {
		// Same length is possible but the contents must differ.
		same := true
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("jittered trace identical to jitter-free trace")
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	a := Tomcatv().Trace()
	b := Tomcatv().Trace()
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic trace length")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("nondeterministic value at %d", i)
		}
	}
}

func TestAppsHaveDisjointAddressSpaces(t *testing.T) {
	seen := map[int64]string{}
	for _, app := range SPECfp95() {
		tr := app.Trace()
		for _, v := range tr.Values {
			if owner, ok := seen[v]; ok && owner != app.Name {
				t.Fatalf("address %#x used by both %s and %s", v, owner, app.Name)
			}
			seen[v] = app.Name
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
