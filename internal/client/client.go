// Package client is the Go client for the DPDI binary ingest protocol:
// the resilient counterpart of the ad-hoc dialer loadgen used to carry.
// It speaks protocol version 2 (preamble, length-prefixed frames, ping
// barriers, subscriptions, cursors, durable marks) and survives the
// ingest plane's failure domain: connection loss at any byte, server
// restarts, overload shedding and corrupted frames.
//
// The resilience contract:
//
//   - Every batch is held in a bounded in-flight window (window.go)
//     until the server acknowledges it — by ping barrier in AckApplied
//     mode, by durable checkpoint mark in AckDurable mode.
//   - On any connection failure the client redials with exponential
//     backoff, seeded jitter and a wall-clock retry budget, then runs a
//     cursor resync: it asks the server for each windowed stream's
//     applied sample count and replays exactly the suffix the server
//     has not seen. Acks lost to the network therefore never cause
//     duplicates, and a server restart never loses samples the window
//     still holds — delivery is exactly-once by per-stream accounting.
//   - An overloaded server (typed error frame with a retry-after hint)
//     is honored: the client sleeps the hint before redialing.
//
// The exactly-once guarantee assumes this client is the stream's only
// writer and that the server-side history of each stream consists of
// this client's sends (fresh keys, or a server restored from
// checkpoints of the same run). Multiple writers per stream need
// producer identities in the protocol — a multi-node concern this
// client does not claim.
//
// A Client is not safe for concurrent use; give each goroutine its own
// connection, as the server's per-connection ordering is the basis of
// the barrier semantics. The steady-state send path performs no
// allocation: frames stage into a reused buffer, window slots recycle
// their sample storage, and ack decoding reuses one frame.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"dpd"
	"dpd/internal/server"
	"dpd/internal/wire"
)

// AckMode selects which server acknowledgement releases batches from
// the replay window.
type AckMode int

// Ack modes.
const (
	// AckApplied prunes on ping barriers (pongs): a batch leaves the
	// window once the server has applied it to the pool. Survives
	// connection loss and graceful restarts; a kill -9 can lose batches
	// applied after the last durable checkpoint.
	AckApplied AckMode = iota
	// AckDurable prunes only on durable marks: a batch leaves the window
	// once a checkpoint covering it is on disk. Survives kill -9 at the
	// cost of window turnover limited by the checkpoint cadence. Against
	// a server without a checkpoint directory, applied counts as durable
	// (the server says so with a durable mark per pong).
	AckDurable
)

// ErrBudget is wrapped by every operation that gives up because the
// retry budget elapsed without progress.
var ErrBudget = errors.New("client: retry budget exhausted")

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// ServerError is a typed error frame received from the server.
type ServerError struct {
	// Code classifies the error (server.CodeOverloaded, …).
	Code server.ErrCode
	// RetryAfterMs is the server's back-off hint in milliseconds.
	RetryAfterMs uint64
	// Msg is the server's message.
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error %s: %s", e.Code, e.Msg)
}

// Config parameterizes a Client. Addr is required; everything else has
// serving defaults.
type Config struct {
	// Addr is the server's ingest address.
	Addr string
	// DialTimeout bounds each dial and each write; 0 selects 5s.
	DialTimeout time.Duration
	// RetryBudget is the longest the client keeps retrying without
	// progress (a successful reconnect or a pruned ack) before an
	// operation fails with ErrBudget; 0 selects 30s.
	RetryBudget time.Duration
	// BackoffMin is the first reconnect delay; 0 selects 50ms.
	BackoffMin time.Duration
	// BackoffMax caps the exponential reconnect delay; 0 selects 2s.
	BackoffMax time.Duration
	// Seed drives the backoff jitter; the zero seed is valid.
	Seed uint64
	// Window is the replay window depth in batches; a full window
	// blocks Send until an ack frees a slot. 0 selects 256.
	Window int
	// PingEvery sends a ping barrier after this many batches, keeping
	// acks (and durable marks) flowing; 0 selects 16.
	PingEvery int
	// Ack selects the window-release mode (AckApplied or AckDurable).
	Ack AckMode
	// OnEvent, when set, receives subscribed stream events.
	OnEvent func(key uint64, ev *dpd.Event)
	// OnWrongNode, when set, is called when the server rejects a batch
	// with a wrong-node frame (cluster mode): the key has been voided on
	// this connection and its windowed samples rescued — the callback's
	// owner is the router's cue to TakeOrphan and re-route. It runs on
	// the goroutine driving the client (inside Send/Barrier) and must
	// not call back into the client.
	OnWrongNode func(key uint64, epoch uint64, owner string)
	// Logf receives reconnect/backoff log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Stats counts what the client has done; read it via Client.Stats.
type Stats struct {
	// Dials counts connection attempts that reached the handshake.
	Dials uint64
	// Reconnects counts recoveries after an established connection
	// failed.
	Reconnects uint64
	// ReplayedBatches counts batches re-sent (fully or as a suffix)
	// during cursor resyncs.
	ReplayedBatches uint64
	// ReplayedSamples counts samples re-sent during cursor resyncs.
	ReplayedSamples uint64
	// OverloadBackoffs counts retry-after hints honored.
	OverloadBackoffs uint64
	// ProtocolErrors counts malformed or error frames that forced a
	// reconnect.
	ProtocolErrors uint64
	// SentBatches counts first-send batches (replays excluded).
	SentBatches uint64
	// SentSamples counts first-send samples (replays excluded).
	SentSamples uint64
	// WrongNodeRedirects counts keys voided by wrong-node rejections
	// (cluster mode).
	WrongNodeRedirects uint64
}

// flushThreshold is the staged-write size that forces a flush to the
// socket mid-stream.
const flushThreshold = 48 << 10

// Client is one resilient ingest connection. Construct with Dial.
type Client struct {
	cfg Config

	nc net.Conn
	br *bufio.Reader

	enc  server.Enc
	wbuf []byte // staged frames awaiting flush
	rbuf []byte // reused frame-read buffer
	sf   server.ServerFrame

	win  *window
	sent map[uint64]uint64 // per-key cumulative samples handed to Send

	seq        uint64 // newest batch sequence number
	lastPing   uint64 // newest ping token sent
	ackedPong  uint64 // newest pong token received, plus one (0 = never)
	sincePing  int    // batches since the last ping
	cursorsGot int    // cursor entries received in the current resync

	cursors  map[uint64]uint64 // resync scratch: key → applied samples
	keysBuf  []uint64          // resync scratch: distinct windowed keys
	seen     map[uint64]struct{}
	voided   map[uint64]*Orphan // keys rejected wrong-node, with rescued samples
	oneKey   [1]uint64          // QueryCursor scratch
	subOn    bool               // re-subscribe after reconnect
	subKeys  []uint64
	attempts int
	rng      uint64
	lastErr  error

	progressAt time.Time
	closed     bool

	stats Stats
}

// Dial connects to cfg.Addr, retrying within the budget, and returns a
// ready client.
func Dial(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 30 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = 16
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Client{
		cfg:        cfg,
		win:        newWindow(cfg.Window),
		sent:       make(map[uint64]uint64),
		cursors:    make(map[uint64]uint64),
		seen:       make(map[uint64]struct{}),
		rng:        cfg.Seed,
		progressAt: time.Now(),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// Stats returns a copy of the client's counters.
func (c *Client) Stats() Stats { return c.stats }

// Close flushes, sends the graceful terminator and closes the socket.
// Batches still in the window are NOT waited for; call Barrier first
// when the run's accounting matters.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.nc == nil {
		return nil
	}
	c.flush()
	c.nc.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	wire.WriteFrame(c.nc, nil)
	return c.nc.Close()
}

// SendEvents sends one event batch for key, blocking while the replay
// window is full. Connection failures are recovered internally
// (reconnect, cursor resync, replay); the returned error is only ever
// budget exhaustion or a closed client.
func (c *Client) SendEvents(key uint64, values []int64) error {
	return c.send(key, values, nil)
}

// SendMagnitudes sends one magnitude batch for key under the same
// contract as SendEvents.
func (c *Client) SendMagnitudes(key uint64, values []float64) error {
	return c.send(key, nil, values)
}

// send is the shared batch path: reserve a window slot (draining acks
// when full), record the batch, stage the frame, ping on cadence.
func (c *Client) send(key uint64, evs []int64, mags []float64) error {
	if c.closed {
		return ErrClosed
	}
	for c.win.full() {
		if err := c.waitAck(); err != nil {
			return err
		}
	}
	// A wrong-node rejection (possibly processed during the ack drain
	// just above) voids the key on this connection: refuse the batch so
	// the caller re-routes it. The length guard keeps the zero-alloc,
	// zero-lookup hot path outside cluster mode.
	if len(c.voided) != 0 {
		if o := c.voided[key]; o != nil {
			return &RedirectError{Key: key, Epoch: o.Epoch, Owner: o.Owner}
		}
	}
	c.seq++
	start := c.sent[key]
	n := len(evs) + len(mags)
	c.win.push(c.seq, key, start, evs, mags)
	c.sent[key] = start + uint64(n)
	if mags != nil {
		c.wbuf = c.enc.AppendMagnitudeBatch(c.wbuf, key, mags)
	} else {
		c.wbuf = c.enc.AppendEventBatch(c.wbuf, key, evs)
	}
	c.stats.SentBatches++
	c.stats.SentSamples += uint64(n)
	c.sincePing++
	if c.sincePing >= c.cfg.PingEvery {
		if err := c.ping(); err != nil {
			return c.recover(err)
		}
	} else if len(c.wbuf) >= flushThreshold {
		if err := c.flush(); err != nil {
			return c.recover(err)
		}
	}
	return nil
}

// Subscribe opts into event write-back for keys (none = all streams);
// the subscription survives reconnects. Events are delivered to
// Config.OnEvent whenever the client reads the connection (ack waits,
// barriers).
func (c *Client) Subscribe(keys ...uint64) error {
	if c.closed {
		return ErrClosed
	}
	c.subOn = true
	c.subKeys = append(c.subKeys[:0], keys...)
	c.wbuf = c.enc.AppendSubscribe(c.wbuf, c.subKeys)
	if err := c.flush(); err != nil {
		return c.recover(err)
	}
	return nil
}

// Flush pushes any staged frames to the socket now (Send batches
// writes up to a threshold or ping cadence). Connection failures are
// recovered like Send's.
func (c *Client) Flush() error {
	if c.closed {
		return ErrClosed
	}
	if err := c.flush(); err != nil {
		return c.recover(err)
	}
	return nil
}

// Barrier blocks until every batch sent so far is acknowledged as
// applied by the server (a pong covering the newest batch), recovering
// from connection failures along the way. In AckDurable mode the window
// may still hold applied-but-not-yet-durable batches afterwards.
func (c *Client) Barrier() error {
	if c.closed {
		return ErrClosed
	}
	for c.ackedPong <= c.seq {
		var err error
		if c.lastPing < c.seq {
			err = c.ping()
		} else {
			err = c.readProcess()
		}
		if err != nil {
			if err = c.recover(err); err != nil {
				return err
			}
		}
	}
	return nil
}

// waitAck makes one blocking attempt to free window space: ensure the
// newest batch is behind a ping barrier (acks only cover pinged
// prefixes), then read and process one server frame.
func (c *Client) waitAck() error {
	var err error
	if c.lastPing < c.seq {
		err = c.ping()
	} else {
		err = c.readProcess()
	}
	if err != nil {
		return c.recover(err)
	}
	return nil
}

// ping stages a barrier for everything sent so far and flushes.
func (c *Client) ping() error {
	c.lastPing = c.seq
	c.sincePing = 0
	c.wbuf = c.enc.AppendPing(c.wbuf, c.seq)
	return c.flush()
}

// flush writes the staged frames under a write deadline.
func (c *Client) flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.cfg.DialTimeout))
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// readProcess flushes anything staged, then reads and processes one
// server frame under the budget deadline.
func (c *Client) readProcess() error {
	if err := c.flush(); err != nil {
		return err
	}
	c.nc.SetReadDeadline(time.Now().Add(c.cfg.RetryBudget))
	payload, err := wire.ReadFrame(c.br, server.MaxFrame, c.rbuf)
	if err != nil {
		return err
	}
	if payload == nil {
		return &server.ProtoError{Code: server.CodeBadFrame, Msg: "server sent a terminator frame"}
	}
	c.rbuf = payload[:cap(payload)]
	return c.process(payload)
}

// process dispatches one decoded server frame. It never panics on
// hostile input: malformed frames come back as *server.ProtoError,
// error frames as *ServerError, and everything else mutates only the
// client's ack state.
func (c *Client) process(payload []byte) error {
	if err := server.DecodeServerFrame(payload, &c.sf); err != nil {
		return err
	}
	switch c.sf.Kind {
	case server.KindPong:
		if c.sf.Token+1 > c.ackedPong {
			c.ackedPong = c.sf.Token + 1
		}
		if c.cfg.Ack == AckApplied {
			c.prune(c.sf.Token)
		}
	case server.KindDurable:
		// Durable implies applied; prune in both modes.
		c.prune(c.sf.Token)
	case server.KindEvent:
		if c.cfg.OnEvent != nil {
			ev := c.sf.Event
			c.cfg.OnEvent(c.sf.Key, &ev)
		}
	case server.KindWrongNode:
		c.orphanKey(c.sf.Key, c.sf.Epoch, c.sf.Msg)
	case server.KindCursorsReply:
		for _, cur := range c.sf.Cursors {
			c.cursors[cur.Key] = cur.Samples
		}
		c.cursorsGot += len(c.sf.Cursors)
	case server.KindError:
		return &ServerError{Code: c.sf.Code, RetryAfterMs: c.sf.RetryAfterMs, Msg: c.sf.Msg}
	}
	return nil
}

// prune releases the acknowledged window prefix and counts it as
// budget progress.
func (c *Client) prune(token uint64) {
	if c.win.pruneTo(token) > 0 {
		c.progressAt = time.Now()
	}
}

// recover classifies a connection failure and reconnects with resync
// and replay. It returns nil once a connection is reestablished, or the
// budget error once retries are exhausted.
func (c *Client) recover(err error) error {
	c.stats.Reconnects++
	c.classify(err)
	return c.connect()
}

// classify updates failure stats and honors retry-after hints.
func (c *Client) classify(err error) {
	c.lastErr = err
	var se *ServerError
	var pe *server.ProtoError
	switch {
	case errors.As(err, &se):
		if se.Code == server.CodeOverloaded {
			c.stats.OverloadBackoffs++
			c.sleep(time.Duration(se.RetryAfterMs) * time.Millisecond)
		} else {
			c.stats.ProtocolErrors++
		}
	case errors.As(err, &pe):
		c.stats.ProtocolErrors++
	}
}

// connect dials until the handshake (preamble, cursor resync, replay,
// re-subscribe, liveness barrier) succeeds or the budget runs out.
func (c *Client) connect() error {
	for {
		if c.nc != nil {
			c.nc.Close()
			c.nc = nil
		}
		if time.Since(c.progressAt) > c.cfg.RetryBudget {
			if c.lastErr != nil {
				return fmt.Errorf("%w after %v (last error: %v)", ErrBudget, c.cfg.RetryBudget, c.lastErr)
			}
			return fmt.Errorf("%w after %v", ErrBudget, c.cfg.RetryBudget)
		}
		if c.attempts > 0 {
			c.sleep(c.backoff())
		}
		c.attempts++
		if err := c.tryConnect(); err != nil {
			c.cfg.Logf("client: connect attempt %d: %v", c.attempts, err)
			c.classify(err)
			continue
		}
		c.attempts = 0
		c.progressAt = time.Now()
		return nil
	}
}

// tryConnect performs one full connection attempt.
func (c *Client) tryConnect() error {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	c.nc = nc
	if c.br == nil {
		c.br = bufio.NewReaderSize(nc, 64<<10)
	} else {
		c.br.Reset(nc)
	}
	c.stats.Dials++
	c.wbuf = server.AppendPreamble(c.wbuf[:0])
	if !c.win.empty() {
		if err := c.resync(); err != nil {
			nc.Close()
			return err
		}
	}
	if c.subOn {
		c.wbuf = c.enc.AppendSubscribe(c.wbuf, c.subKeys)
	}
	// Liveness barrier: forces an admission rejection to surface here
	// (as a typed overload error) and re-arms the server's durable
	// marks, which only cover acknowledged pings.
	if err := c.ping(); err != nil {
		nc.Close()
		return err
	}
	for c.ackedPong <= c.lastPing {
		if err := c.readProcess(); err != nil {
			nc.Close()
			return err
		}
	}
	return nil
}

// resync runs the cursors exchange and replays the window suffix the
// server has not applied.
func (c *Client) resync() error {
	c.keysBuf = c.win.keys(c.keysBuf[:0], c.seen)
	if len(c.voided) != 0 {
		// Voided keys are the router's problem now: their windowed
		// samples were rescued as orphans, so neither query nor replay
		// them here.
		kept := c.keysBuf[:0]
		for _, k := range c.keysBuf {
			if _, v := c.voided[k]; !v {
				kept = append(kept, k)
			}
		}
		c.keysBuf = kept
	}
	for k := range c.cursors {
		delete(c.cursors, k)
	}
	c.cursorsGot = 0
	for at := 0; at < len(c.keysBuf); at += server.MaxCursorKeys {
		end := at + server.MaxCursorKeys
		if end > len(c.keysBuf) {
			end = len(c.keysBuf)
		}
		c.wbuf = c.enc.AppendCursors(c.wbuf, c.keysBuf[at:end])
	}
	if err := c.flush(); err != nil {
		return err
	}
	for c.cursorsGot < len(c.keysBuf) {
		if err := c.readProcess(); err != nil {
			return err
		}
	}
	// Replay exactly what the server is missing, oldest first. An entry
	// straddling the server's cursor is re-sent from the cursor on.
	var ferr error
	c.win.each(func(e *entry) {
		if ferr != nil {
			return
		}
		if len(c.voided) != 0 {
			if _, v := c.voided[e.key]; v {
				return // rescued as an orphan; the router replays it
			}
		}
		applied := c.cursors[e.key]
		n := uint64(len(e.evs) + len(e.mags))
		if e.start+n <= applied {
			return // server already has all of it
		}
		from := uint64(0)
		if applied > e.start {
			from = applied - e.start
		}
		if e.isMag {
			c.wbuf = c.enc.AppendMagnitudeBatch(c.wbuf, e.key, e.mags[from:])
		} else {
			c.wbuf = c.enc.AppendEventBatch(c.wbuf, e.key, e.evs[from:])
		}
		c.stats.ReplayedBatches++
		c.stats.ReplayedSamples += n - from
		if len(c.wbuf) >= flushThreshold {
			ferr = c.flush()
		}
	})
	return ferr
}

// backoff computes the next exponential delay with seeded jitter in
// [0.5, 1.5).
func (c *Client) backoff() time.Duration {
	d := c.cfg.BackoffMin
	for i := 1; i < c.attempts && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	jitter := 0.5 + float64(c.next()>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// sleep pauses for d, capped at the remaining budget.
func (c *Client) sleep(d time.Duration) {
	if rem := c.cfg.RetryBudget - time.Since(c.progressAt); d > rem {
		d = rem
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// next advances the client's splitmix64 jitter stream.
func (c *Client) next() uint64 {
	c.rng += 0x9E3779B97F4A7C15
	x := c.rng
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
