package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"dpd"
	"dpd/internal/faults"
	"dpd/internal/server"
)

// startServer boots an in-process dpdserver on loopback.
func startServer(t testing.TB, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.IngestAddr == "" {
		cfg.IngestAddr = "127.0.0.1:0"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Pool.NewDetector == nil && cfg.Pool.Detector.Window == 0 {
		cfg.Pool = dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}}
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = time.Hour
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s
}

// streamSamples reads one stream's applied sample count through the
// query plane — the server's own public accounting, not the pool API.
func streamSamples(t *testing.T, s *server.Server, key uint64) uint64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/streams/%d", s.HTTPAddr(), key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /streams/%d = %d", key, resp.StatusCode)
	}
	var body struct {
		Samples uint64 `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Samples
}

// TestExactlyOnceThroughFlakyProxy drives a full workload through a
// proxy that cuts, stalls, and corrupts the first six connections at
// seeded offsets — mid-frame cuts included. The client must reconnect
// through every fault and the server must end with exactly the expected
// per-stream sample counts: replays deduplicated by cursor resync,
// lost batches resent, nothing double-applied.
func TestExactlyOnceThroughFlakyProxy(t *testing.T) {
	const (
		cuts    = 6
		span    = 4096
		streams = 16
		keyBase = 1000
		samples = 2048
		batch   = 64
	)
	s := startServer(t, server.Config{})
	defer s.Abort()
	proxy, err := faults.NewProxy("127.0.0.1:0", s.Addr(), func(i int) faults.ConnPlan {
		return faults.ChaosPlan(42, i, cuts, span)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := Dial(Config{
		Addr:        proxy.Addr(),
		Window:      64,
		PingEvery:   8,
		RetryBudget: 30 * time.Second,
		BackoffMin:  2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, batch)
	for t0 := 0; t0 < samples; t0 += batch {
		for k := 0; k < streams; k++ {
			for i := range vals {
				vals[i] = int64((t0 + i) % 8)
			}
			if err := c.SendEvents(keyBase+uint64(k), vals); err != nil {
				t.Fatalf("send at t=%d key=%d: %v", t0, k, err)
			}
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	st := c.Stats()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The total payload (~37KB) exceeds the sum of every scripted cut
	// offset (≤ 6×4096B), so all six faulty connections must have been
	// severed before the workload could finish — at least six forced
	// disconnects survived.
	if proxy.Conns() < cuts+1 {
		t.Fatalf("proxy saw %d connections, want > %d (every faulty conn consumed)", proxy.Conns(), cuts)
	}
	if st.Dials < cuts || st.Reconnects < 1 {
		t.Fatalf("stats %+v: want >= %d dials and >= 1 reconnect", st, cuts)
	}
	t.Logf("chaos run: %d dials, %d reconnects, %d batches / %d samples replayed, %d protocol errors",
		st.Dials, st.Reconnects, st.ReplayedBatches, st.ReplayedSamples, st.ProtocolErrors)

	for k := 0; k < streams; k++ {
		if got := streamSamples(t, s, keyBase+uint64(k)); got != samples {
			t.Errorf("stream %d: %d samples, want exactly %d", keyBase+k, got, samples)
		}
	}
	if st.SentSamples != streams*samples {
		t.Fatalf("client counted %d first-send samples, want %d", st.SentSamples, streams*samples)
	}
}

// TestOverloadRetryAfter: a client refused at admission honors the
// server's retry-after hint and gets in once the slot frees.
func TestOverloadRetryAfter(t *testing.T) {
	s := startServer(t, server.Config{
		MaxConns:   1,
		RetryAfter: 50 * time.Millisecond,
	})
	defer s.Abort()

	c1, err := Dial(Config{Addr: s.Addr()})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		c   *Client
		err error
	}
	ch := make(chan result, 1)
	go func() {
		c2, err := Dial(Config{
			Addr:        s.Addr(),
			RetryBudget: 15 * time.Second,
			BackoffMin:  2 * time.Millisecond,
		})
		ch <- result{c2, err}
	}()

	// Hold the slot long enough that the second client is rejected at
	// least once, then release it.
	time.Sleep(300 * time.Millisecond)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("second client never admitted: %v", r.err)
	}
	defer r.c.Close()
	if st := r.c.Stats(); st.OverloadBackoffs == 0 {
		t.Fatalf("stats %+v: the rejection's retry-after hint was never honored", st)
	}
	if err := r.c.SendEvents(1, []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := streamSamples(t, s, 1); got != 3 {
		t.Fatalf("stream 1 has %d samples, want 3", got)
	}
}

// TestDurableAckWaitsForCheckpoint: in AckDurable mode the window only
// drains on durable marks, so a barriered workload against a
// checkpointing server both completes and ends with an empty window
// after the next checkpoint lands.
func TestDurableAckWaitsForCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, server.Config{
		CheckpointDir:   dir,
		CheckpointEvery: 25 * time.Millisecond,
	})
	defer s.Abort()
	c, err := Dial(Config{Addr: s.Addr(), Ack: AckDurable, Window: 8, PingEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vals := []int64{1, 2, 3, 4}
	for i := 0; i < 64; i++ { // 8× the window: forces durable-gated turnover
		if err := c.SendEvents(uint64(i%4), vals); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4; k++ {
		if got := streamSamples(t, s, k); got != 64 {
			t.Fatalf("stream %d: %d samples, want 64", k, got)
		}
	}
}

// BenchmarkClientSend measures the steady-state send path against a
// live loopback server: stage, window-copy, periodic ping, ack drain.
// The interesting number is allocs/op, which must be zero.
func BenchmarkClientSend(b *testing.B) {
	s := startServer(b, server.Config{})
	defer s.Abort()
	c, err := Dial(Config{Addr: s.Addr(), Window: 1024, PingEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i % 8)
	}
	// Warm up: grow the staging buffer, window slots, and read buffer to
	// steady-state sizes before measuring.
	for i := 0; i < 4096; i++ {
		if err := c.SendEvents(5, vals); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(vals)) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendEvents(5, vals); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := c.Barrier(); err != nil {
		b.Fatal(err)
	}
}
