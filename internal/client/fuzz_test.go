package client

import (
	"errors"
	"testing"

	"dpd"
	"dpd/internal/server"
)

// newFuzzClient builds a client with live ack state but no socket:
// process touches only decode and window bookkeeping, which is exactly
// the surface a hostile or corrupted server frame reaches.
func newFuzzClient() *Client {
	c := &Client{
		cfg: Config{
			Ack:     AckDurable,
			OnEvent: func(key uint64, ev *dpd.Event) {},
		},
		win:     newWindow(8),
		sent:    make(map[uint64]uint64),
		cursors: make(map[uint64]uint64),
		seen:    make(map[uint64]struct{}),
	}
	// Seed in-flight batches so prune paths run on pong/durable tokens.
	c.win.push(1, 5, 0, []int64{1, 2, 3}, nil)
	c.win.push(2, 5, 3, nil, []float64{4.5})
	c.win.push(3, 9, 0, []int64{7}, nil)
	return c
}

// FuzzClientFrame throws arbitrary bytes at the client's server-frame
// dispatch. The contract under fuzzing: never panic, and classify every
// failure as a typed error — a *server.ProtoError for malformed frames
// or a *ServerError for well-formed error frames. Anything else (or a
// panic) is a client bug that would take down a production sender on a
// corrupted reply stream.
func FuzzClientFrame(f *testing.F) {
	f.Add([]byte{server.KindPong, 0x2A})
	f.Add([]byte{server.KindDurable, 0x07})
	f.Add([]byte{server.KindError, 0x05, 0xDC, 0x0B, 's', 'h', 'e', 'd'})
	f.Add([]byte{server.KindCursorsReply, 0x01, 0x05, 0x0A})
	f.Add([]byte{server.KindCursorsReply, 0x02, 0x05, 0x0A, 0x09, 0x00})
	f.Add([]byte{server.KindEvent, 0x05, 0x01, 0x02, 0x03})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		c := newFuzzClient()
		err := c.process(payload)
		if err == nil {
			return
		}
		var se *ServerError
		var pe *server.ProtoError
		if !errors.As(err, &se) && !errors.As(err, &pe) {
			t.Fatalf("untyped error %T from client frame dispatch: %v", err, err)
		}
	})
}
