package client

import (
	"fmt"
)

// Cluster redirect support. In cluster mode a server may refuse a batch
// with a wrong-node frame: the key is owned by another node under a
// newer routing epoch, and the batch was NOT applied. Rejections arrive
// asynchronously — by the time the client reads one, later pongs on the
// connection may be about to prune the rejected entries out of the
// replay window (the ping barrier covers a rejected batch's sequence
// number even though the batch was not applied). The client therefore
// copies the key's windowed samples into an orphan buffer the moment
// the rejection is processed, voids the key on this connection, and
// hands the orphan to whoever routes (the cluster Router) via
// TakeOrphan. The router replays the orphan to the new owner, trimmed
// against the owner's applied cursor, so migration keeps the
// exactly-once accounting.

// RedirectError is returned by Send on a key this connection has
// voided after a wrong-node rejection: the caller must re-route the key
// (and the orphaned samples) to the owning node.
type RedirectError struct {
	// Key is the voided stream key.
	Key uint64
	// Epoch is the routing epoch the server rejected under.
	Epoch uint64
	// Owner is the node name the server believes owns the key.
	Owner string
}

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("client: key %d redirected to node %q (epoch %d)", e.Key, e.Owner, e.Epoch)
}

// Orphan is one stream's rescued in-flight suffix: samples the server
// refused (or, after Abandon, never acknowledged), with the stream's
// cumulative sample offset of the first one. Exactly one of Evs/Mags is
// populated per the stream's batch kind.
type Orphan struct {
	// Start is the stream's cumulative sample count before Evs/Mags.
	Start uint64
	// IsMag reports a magnitude stream.
	IsMag bool
	// Evs are the rescued event samples.
	Evs []int64
	// Mags are the rescued magnitude samples.
	Mags []float64
	// Epoch is the newest routing epoch seen in this key's rejections
	// (0 after Abandon, which sees no server frame).
	Epoch uint64
	// Owner is the owning node named by the newest rejection ("" after
	// Abandon).
	Owner string
}

// end returns the cumulative sample count after the orphan's samples.
func (o *Orphan) end() uint64 { return o.Start + uint64(len(o.Evs)+len(o.Mags)) }

// orphanKey voids key on this connection and merges its windowed
// samples into the key's orphan, before any later pong can prune them.
// Safe to run repeatedly: each rejected batch triggers one wrong-node
// frame, and entries already rescued (start below the orphan's end) are
// skipped.
func (c *Client) orphanKey(key, epoch uint64, owner string) {
	if c.voided == nil {
		c.voided = make(map[uint64]*Orphan)
	}
	o := c.voided[key]
	fresh := o == nil
	if fresh {
		o = &Orphan{}
		c.voided[key] = o
		c.stats.WrongNodeRedirects++
	}
	o.Epoch, o.Owner = epoch, owner
	inited := !fresh
	c.win.each(func(e *entry) {
		if e.key != key {
			return
		}
		if !inited {
			o.Start, o.IsMag = e.start, e.isMag
			inited = true
		} else if e.start < o.end() {
			return // already rescued by an earlier rejection
		}
		o.Evs = append(o.Evs, e.evs...)
		o.Mags = append(o.Mags, e.mags...)
	})
	if c.cfg.OnWrongNode != nil {
		c.cfg.OnWrongNode(key, epoch, owner)
	}
}

// TakeOrphan removes and returns key's orphan, un-voiding the key on
// this connection. ok is false when the key was never voided. The
// orphan's samples may overlap what the new owner already applied
// (migrated state includes everything the old owner fed): replay must
// be trimmed against the new owner's cursor (QueryCursor) before
// resending.
func (c *Client) TakeOrphan(key uint64) (o Orphan, ok bool) {
	op := c.voided[key]
	if op == nil {
		return Orphan{}, false
	}
	delete(c.voided, key)
	return *op, true
}

// Voided reports whether key is currently voided on this connection.
func (c *Client) Voided(key uint64) bool {
	_, ok := c.voided[key]
	return ok
}

// QueryCursor asks the server for key's applied sample count — the
// routing client's dedup handshake before replaying an orphan to a
// stream's new owner. Connection failures are recovered under the
// usual budget.
func (c *Client) QueryCursor(key uint64) (uint64, error) {
	if c.closed {
		return 0, ErrClosed
	}
	for {
		delete(c.cursors, key)
		c.oneKey[0] = key
		c.wbuf = c.enc.AppendCursors(c.wbuf, c.oneKey[:])
		err := c.flush()
		for err == nil {
			if v, ok := c.cursors[key]; ok {
				return v, nil
			}
			err = c.readProcess()
		}
		if err = c.recover(err); err != nil {
			return 0, err
		}
	}
}

// PresetCursor aligns this connection's per-key sample numbering with a
// server-side count: the next batch for key is numbered as samples
// [n, n+len). The routing client calls it before the first send of a
// migrated key to its new owner, whose stream already carries the
// migrated pre-history — without the preset, a later cursor resync
// would compare server-cumulative counts against client-local ones and
// silently skip needed replays. It must only be called while no batch
// for key is in flight on this connection.
func (c *Client) PresetCursor(key, n uint64) {
	c.sent[key] = n
}

// Abandon closes the connection immediately (no terminator, no drain)
// and rescues every unacknowledged windowed sample as per-key orphans,
// merged with any prior wrong-node orphans. It is the failover path:
// when the node behind this connection is declared dead, the returned
// orphans — trimmed against the replacement owner's cursors — are
// exactly the samples whose durability the dead node never proved.
// The client is closed afterwards; every later operation returns
// ErrClosed.
func (c *Client) Abandon() map[uint64]Orphan {
	out := make(map[uint64]Orphan, len(c.voided))
	for k, o := range c.voided {
		out[k] = *o
	}
	c.win.each(func(e *entry) {
		o, ok := out[e.key]
		if !ok {
			o = Orphan{Start: e.start, IsMag: e.isMag}
		} else if e.start < o.end() {
			return // already rescued by a wrong-node rejection
		}
		o.Evs = append(o.Evs, e.evs...)
		o.Mags = append(o.Mags, e.mags...)
		out[e.key] = o
	})
	c.voided = nil
	c.closed = true
	if c.nc != nil {
		c.nc.Close()
	}
	return out
}
