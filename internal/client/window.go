package client

// The replay window: a bounded ring of sent-but-unacknowledged batches.
//
// Every batch the client sends is copied into a ring slot before it
// goes on the wire, stamped with a monotone sequence number and with
// its stream's cumulative sample offset at send time. Ping barriers
// carry the newest sequence number; the server's acknowledgements
// (pongs in applied-ack mode, durable marks in durable-ack mode) prune
// the ring prefix they cover. On reconnect the client asks the server
// for each windowed stream's applied sample count (a cursors exchange)
// and replays exactly the per-stream suffix the server has not seen:
// entries wholly below the server's cursor are skipped, an entry
// straddling it is re-sent from the cursor on. Replaying by cursor
// instead of "everything unacked" is what turns at-least-once delivery
// into exactly-once sample counts — an ack lost to the network never
// causes a duplicate, because the server's own counts referee.
//
// Slot storage is recycled: a pruned entry keeps its backing arrays for
// the next batch, so the steady-state send path allocates nothing.

// entry is one in-flight batch.
type entry struct {
	seq   uint64 // monotone batch sequence; ping tokens quote these
	key   uint64 // stream key
	start uint64 // stream's cumulative sample count before this batch
	isMag bool   // magnitude batch (mags) vs event batch (evs)
	evs   []int64
	mags  []float64
}

// window is the bounded in-flight ring. head is the oldest live entry,
// count the number live; slots [head, head+count) mod len are in use.
type window struct {
	ring  []entry
	head  int
	count int
}

// newWindow sizes the ring.
func newWindow(n int) *window {
	return &window{ring: make([]entry, n)}
}

// full reports whether the ring has no free slot.
func (w *window) full() bool { return w.count == len(w.ring) }

// empty reports whether no batch is in flight.
func (w *window) empty() bool { return w.count == 0 }

// push records one sent batch, copying the samples into the slot's
// recycled storage. The caller must check full() first.
func (w *window) push(seq, key, start uint64, evs []int64, mags []float64) {
	e := &w.ring[(w.head+w.count)%len(w.ring)]
	e.seq, e.key, e.start = seq, key, start
	e.isMag = mags != nil
	e.evs = append(e.evs[:0], evs...)
	e.mags = append(e.mags[:0], mags...)
	w.count++
}

// pruneTo drops every entry with seq <= token (acknowledgements cover
// the whole prefix: the server applies a connection's frames in order),
// returning how many were dropped.
func (w *window) pruneTo(token uint64) int {
	dropped := 0
	for w.count > 0 {
		e := &w.ring[w.head]
		if e.seq > token {
			break
		}
		w.head = (w.head + 1) % len(w.ring)
		w.count--
		dropped++
	}
	return dropped
}

// each visits the live entries oldest-first.
func (w *window) each(fn func(*entry)) {
	for i := 0; i < w.count; i++ {
		fn(&w.ring[(w.head+i)%len(w.ring)])
	}
}

// keys appends the distinct stream keys of the live entries to dst
// (reusing seen to dedupe) and returns the extended slice.
func (w *window) keys(dst []uint64, seen map[uint64]struct{}) []uint64 {
	for k := range seen {
		delete(seen, k)
	}
	w.each(func(e *entry) {
		if _, ok := seen[e.key]; !ok {
			seen[e.key] = struct{}{}
			dst = append(dst, e.key)
		}
	})
	return dst
}
