package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dpd"
	"dpd/internal/obs"
	"dpd/internal/pool"
	"dpd/internal/server"
	"dpd/internal/wire"
)

// Node is one cluster member: it owns a pool.Pool of the streams the
// routing table places on it, fences and rejects batches for streams
// it does not own, serves the transfer plane (inbound migrations,
// replica frames, topology installs), runs the replication loop that
// tails checkpoint frames to each stream's follower, and mounts the
// /cluster/* control routes on the embedding server's HTTP plane.
//
// Wiring order (cmd/dpdserver): NewNode first, then build the
// server.Server with the node's OwnerCheck/RegisterHTTP/Metrics hooks
// in its Config (plus ExternalDurability: true), then Start(srv) to
// hand the node the server it needs for feed fencing and durable-mark
// capture.
//
// In cluster mode the node's replication loop owns durability: it
// captures the server's pending durable marks, checkpoints the pool,
// ships each stream's frame to its follower, and releases the marks
// only when every follower acknowledged the round — so an AckDurable
// client's window drains exactly when the batch would survive this
// node's death. Disk checkpoints (if configured) keep running but no
// longer release marks.
type Node struct {
	cfg NodeConfig

	pool *pool.Pool
	srv  *server.Server

	// hc carries table broadcasts and other control-plane calls over the
	// node's own HTTP transport, so Close can drop its pooled
	// connections instead of leaving them on peers' control planes.
	hc *http.Client
	tr *http.Transport

	table atomic.Pointer[Table]

	ln net.Listener

	// instMu serializes table installs, migrations and failovers: every
	// epoch transition happens under it, so two transitions can never
	// interleave their fence/transfer/flip sequences.
	instMu sync.Mutex

	// mu guards replicas, migrating, marks and conns.
	mu        sync.Mutex
	replicas  map[uint64]replica
	migrating map[uint64]migTarget
	marks     []server.DurableMark
	conns     map[net.Conn]struct{}

	// migCount keeps the per-batch ownership check off the mutex when
	// no migration is in flight (the steady state).
	migCount atomic.Int64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	migrationsIn  atomic.Uint64
	migrationsOut atomic.Uint64
	promoted      atomic.Uint64
	replRounds    atomic.Uint64
	replErrors    atomic.Uint64
	replLag       atomic.Int64
}

// migTarget records where a mid-migration key is headed: rejections
// name the target and the epoch that will own it, so routing clients
// chase the migration rather than the stale table.
type migTarget struct {
	name  string
	epoch uint64
}

// replica is one standby copy of another node's stream: its engine
// checkpoint plus the routing epoch its owner held when it shipped.
// The epoch orders copies — a frame from a stale previous owner can
// never overwrite one from the current owner — and decides, at
// promotion time, whether the replica or a resident copy is fresher.
type replica struct {
	epoch uint64
	state []byte
}

// stagedHandoff is one handoff frame held back until its connection's
// terminator commits the transfer (state is an owned copy).
type stagedHandoff struct {
	key   uint64
	state []byte
}

// maxStagedHandoffs bounds the handoff frames one transfer connection
// may stage before its terminator, capping the memory a sender can
// pin on the receiver.
const maxStagedHandoffs = 4096

// NodeConfig parameterizes a Node.
type NodeConfig struct {
	// Self is this node's member name; the routing table entry whose
	// Name matches is this node.
	Self string
	// Pool is the stream pool the node serves; nil adopts the embedding
	// server's pool at Start.
	Pool *pool.Pool
	// TransferAddr is the transfer-plane listen address (e.g.
	// "127.0.0.1:0"); required.
	TransferAddr string
	// FollowEvery is the replication cadence; 0 selects 200ms.
	FollowEvery time.Duration
	// GossipEvery is the anti-entropy cadence: how often the node
	// re-broadcasts its current table to every member, healing peers
	// that missed a broadcast (a rollback pin, a failover) or restarted
	// empty; 0 selects max(2s, 5×FollowEvery).
	GossipEvery time.Duration
	// DialTimeout bounds transfer dials, writes and ack waits; 0
	// selects 5s.
	DialTimeout time.Duration
	// Logf receives cluster log lines; nil discards them.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives flight-recorder events for epoch
	// installs, migrations and failovers, and samples migration feed
	// pauses. Share one Set with the embedding server.Config so a
	// /debug/events dump interleaves cluster and server transitions on
	// one clock.
	Obs *obs.Set
}

// NewNode validates cfg, binds the transfer listener (so an ephemeral
// TransferAddr resolves before the routing table is built) and returns
// a node with no routing table. Until InstallTable or a table POST
// installs one, every batch is rejected: a cluster member that cannot
// prove ownership (a fresh boot, or a member that restarted and lost
// its table) must not accept writes, or it would fork history with
// the real owners. Peer gossip and routing clients both push tables
// at a memberless node, so the window closes without operator help.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: NodeConfig.Self is required")
	}
	if cfg.FollowEvery <= 0 {
		cfg.FollowEvery = 200 * time.Millisecond
	}
	if cfg.GossipEvery <= 0 {
		cfg.GossipEvery = 5 * cfg.FollowEvery
		if cfg.GossipEvery < 2*time.Second {
			cfg.GossipEvery = 2 * time.Second
		}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.TransferAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: transfer listen: %w", err)
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	return &Node{
		cfg:       cfg,
		pool:      cfg.Pool,
		hc:        &http.Client{Timeout: cfg.DialTimeout, Transport: tr},
		tr:        tr,
		ln:        ln,
		replicas:  make(map[uint64]replica),
		migrating: make(map[uint64]migTarget),
		conns:     make(map[net.Conn]struct{}),
		stop:      make(chan struct{}),
	}, nil
}

// TransferAddr returns the bound transfer-plane address.
func (n *Node) TransferAddr() string { return n.ln.Addr().String() }

// Table returns the current routing table (nil before any install).
func (n *Node) Table() *Table { return n.table.Load() }

// Start hands the node its embedding server (feed fencing, durable
// marks, and the pool when NodeConfig.Pool was nil) and starts the
// transfer accept loop, the replication loop and the gossip loop.
func (n *Node) Start(srv *server.Server) {
	n.srv = srv
	if n.pool == nil {
		n.pool = srv.Pool()
	}
	n.wg.Add(3)
	go n.acceptLoop()
	go n.replicate()
	go n.gossip()
}

// Close stops the loops, the listener and every transfer connection.
// Pending durable marks are released (the embedding server is shutting
// down; holding client windows hostage helps nobody).
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	close(n.stop)
	n.ln.Close()
	n.mu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	n.tr.CloseIdleConnections()
	n.releaseMarks()
}

// epoch returns the current routing epoch (0 before any table).
func (n *Node) epoch() uint64 {
	if t := n.table.Load(); t != nil {
		return t.Epoch
	}
	return 0
}

// OwnerCheck is the server.Config hook: it runs under the server's
// shared route fence for every batch frame and decides whether this
// node owns the batch's stream. Mid-migration keys are rejected toward
// the migration target under the epoch that will commit it, so clients
// chase the move instead of racing it.
func (n *Node) OwnerCheck(key uint64) (owner string, epoch uint64, ok bool) {
	if n.migCount.Load() != 0 {
		n.mu.Lock()
		mt, mig := n.migrating[key]
		n.mu.Unlock()
		if mig {
			return mt.name, mt.epoch, false
		}
	}
	t := n.table.Load()
	if t == nil {
		// No table yet: this node cannot prove it owns anything, so it
		// must not accept anything — a restarted member that accepted
		// batches while waiting for a table would fork history with the
		// real owners. The empty owner and epoch 0 tell routing clients
		// to heal the node (push their table) rather than chase an epoch.
		return "", 0, false
	}
	m := t.Owner(key)
	if m.Name == n.cfg.Self {
		return "", t.Epoch, true
	}
	return m.Name, t.Epoch, false
}

// NodeMetrics is the per-node cluster section of /metrics. The concrete
// struct lives in the root package (dpd.ClusterNodeMetrics) so the
// server's snapshot can carry it typed without importing this package.
type NodeMetrics = dpd.ClusterNodeMetrics

// Metrics is the server.Config ClusterMetrics hook.
func (n *Node) Metrics() *dpd.ClusterNodeMetrics {
	m := NodeMetrics{
		Self:              n.cfg.Self,
		Epoch:             n.epoch(),
		MigrationsIn:      n.migrationsIn.Load(),
		MigrationsOut:     n.migrationsOut.Load(),
		PromotedStreams:   n.promoted.Load(),
		ReplicationRounds: n.replRounds.Load(),
		ReplicationErrors: n.replErrors.Load(),
		FollowerLagFrames: n.replLag.Load(),
	}
	if n.pool != nil {
		m.StreamsOwned = n.pool.Len()
	}
	if t := n.table.Load(); t != nil {
		m.Members = len(t.Members)
	}
	n.mu.Lock()
	m.ReplicaStreams = len(n.replicas)
	m.PendingDurableMarks = len(n.marks)
	n.mu.Unlock()
	return &m
}

// InstallTable installs a routing table with a strictly higher epoch,
// promoting any held replicas of keys the new table places on this
// node (attach before flip, under the feed fence). Re-installing the
// current epoch is a no-op; a lower epoch is an error (epoch skew).
func (n *Node) InstallTable(next *Table) error {
	n.instMu.Lock()
	defer n.instMu.Unlock()
	return n.installLocked(next)
}

// installLocked is InstallTable under an already-held instMu.
func (n *Node) installLocked(next *Table) error {
	cur := n.table.Load()
	if cur != nil {
		if next.Epoch == cur.Epoch {
			return nil
		}
		if next.Epoch < cur.Epoch {
			return fmt.Errorf("cluster: table epoch %d is stale (current epoch %d)", next.Epoch, cur.Epoch)
		}
	}
	var curEpoch uint64
	if cur != nil {
		curEpoch = cur.Epoch
	}
	// Collect replicas of keys the new table says are ours: they must be
	// live in the pool before the table becomes visible, or a routing
	// client could be redirected here and find nothing.
	var keys []uint64
	var reps []replica
	n.mu.Lock()
	for k, r := range n.replicas {
		if next.Owner(k).Name == n.cfg.Self {
			keys = append(keys, k)
			reps = append(reps, r)
		}
	}
	n.mu.Unlock()
	flip := func() {
		for i, k := range keys {
			err := n.pool.Attach(k, reps[i].state)
			switch {
			case err == nil:
				n.promoted.Add(1)
			case errors.Is(err, pool.ErrStreamExists):
				// A resident copy already holds the key (it arrived via a
				// committed handoff, or this node kept feeding it through a
				// fork). The replica wins only when its owner shipped it
				// under a newer epoch than this node's table knew — proof a
				// truer owner produced it; otherwise the resident copy is
				// at least as fresh and the replica is discarded.
				if reps[i].epoch > curEpoch {
					if _, _, derr := n.pool.Detach(k, nil); derr == nil {
						if aerr := n.pool.Attach(k, reps[i].state); aerr != nil {
							n.cfg.Logf("cluster: promote stream %d over stale resident: %v", k, aerr)
						} else {
							n.promoted.Add(1)
						}
					}
				}
			default:
				n.cfg.Logf("cluster: promote stream %d: %v", k, err)
			}
		}
		n.sweepStrays(curEpoch, next)
		n.table.Store(next)
	}
	if n.srv != nil {
		n.srv.FeedBarrier(flip)
	} else {
		flip()
	}
	if len(keys) > 0 {
		n.mu.Lock()
		for _, k := range keys {
			delete(n.replicas, k)
		}
		n.mu.Unlock()
	}
	n.cfg.Obs.Rec().Record(obs.SubCluster, obs.EvEpochInstall, next.Epoch, uint64(len(keys)))
	n.cfg.Logf("cluster: installed routing table epoch %d (%d members, %d overrides, %d promoted)",
		next.Epoch, len(next.Members), len(next.Overrides), len(keys))
	return nil
}

// sweepStrays detaches every resident stream the incoming table does
// not place on this node. Such strays are how split ownership starts:
// a handoff whose ack was lost leaves the receiver holding a live copy
// the sender rolled back, and as long as it stays resident it blocks
// re-migration and can shadow the real owner's state at a later
// failover. Runs inside the install flip (under the feed barrier), so
// no admission decision races the detach. When this node is the key's
// follower under the new table the detached state is kept as a standby
// replica stamped with the outgoing epoch — the real owner's next
// replication round (a higher epoch) overwrites it.
func (n *Node) sweepStrays(curEpoch uint64, next *Table) {
	if n.pool == nil {
		return
	}
	var page []pool.StreamStat
	var from uint64
	swept := 0
	for {
		var more bool
		page, from, more = n.pool.SnapshotPage(from, 1024, page[:0])
		for _, st := range page {
			if next.Owner(st.Key).Name == n.cfg.Self {
				continue
			}
			state, had, err := n.pool.Detach(st.Key, nil)
			if err != nil || !had {
				continue
			}
			swept++
			if f, ok := next.Follower(st.Key); ok && f.Name == n.cfg.Self {
				n.mu.Lock()
				if r, held := n.replicas[st.Key]; !held || r.epoch < curEpoch {
					n.replicas[st.Key] = replica{epoch: curEpoch, state: state}
				}
				n.mu.Unlock()
			}
		}
		if !more {
			break
		}
	}
	if swept > 0 {
		n.cfg.Logf("cluster: table install detached %d resident streams owned elsewhere", swept)
	}
}

// fence marks key as mid-migration toward (to, epoch): the ownership
// check rejects its batches until unfence.
func (n *Node) fence(key uint64, to string, epoch uint64) {
	n.mu.Lock()
	n.migrating[key] = migTarget{name: to, epoch: epoch}
	n.mu.Unlock()
	n.migCount.Add(1)
}

// unfence lifts a migration fence.
func (n *Node) unfence(key uint64) {
	n.mu.Lock()
	delete(n.migrating, key)
	n.mu.Unlock()
	n.migCount.Add(-1)
}

// Move migrates key from this node (which must own it) to member name
// to: fence + detach under the feed fence, ship the state and the
// epoch+1 table over the transfer plane, and flip the local table only
// after the target acknowledged — so at every instant exactly one node
// accepts the stream's batches, and the target is never named owner
// before it holds the stream. A key that is not resident (never fed,
// or idle-evicted) migrates as a zero-stream transfer: ownership moves,
// no state does. On transfer failure the stream is re-attached and the
// table jumps to epoch+2 pinning the key here, outrunning an epoch+1
// the target may have committed before the link died.
func (n *Node) Move(key uint64, to string) (*Table, error) {
	n.instMu.Lock()
	defer n.instMu.Unlock()
	cur := n.table.Load()
	if cur == nil {
		return nil, errors.New("cluster: no routing table installed")
	}
	tm, ok := cur.Lookup(to)
	if !ok {
		return nil, fmt.Errorf("cluster: no member named %q", to)
	}
	own := cur.Owner(key)
	if own.Name != n.cfg.Self {
		return nil, fmt.Errorf("cluster: key %d is owned by %q, not this node", key, own.Name)
	}
	if to == n.cfg.Self {
		return cur, nil
	}
	// Prefer dropping an override over stacking one: moving a key back
	// to its rendezvous owner erases its pin.
	var next *Table
	var err error
	if best, _ := cur.top2(key); cur.Members[best].Name == to {
		next, err = cur.WithoutOverride(key, 1)
	} else {
		next, err = cur.WithOverride(key, to, 1)
	}
	if err != nil {
		return nil, err
	}

	var state []byte
	var had bool
	var derr error
	pauseStart := time.Now()
	n.srv.FeedBarrier(func() {
		n.fence(key, to, next.Epoch)
		state, had, derr = n.pool.Detach(key, nil)
	})
	n.cfg.Obs.Rec().Record(obs.SubCluster, obs.EvMigrationFence, key, next.Epoch)
	if derr != nil {
		n.unfence(key)
		return nil, derr
	}

	rollback := func(cause error) error {
		n.cfg.Obs.Rec().Record(obs.SubCluster, obs.EvMigrationAbort, key, next.Epoch)
		if had {
			n.srv.FeedBarrier(func() {
				if aerr := n.pool.Attach(key, state); aerr != nil {
					n.cfg.Logf("cluster: rollback re-attach of stream %d: %v", key, aerr)
				}
				n.unfence(key)
			})
		} else {
			n.unfence(key)
		}
		if pin, perr := cur.WithOverride(key, n.cfg.Self, 2); perr == nil {
			n.table.Store(pin)
			// The target may have committed epoch+1 before the link died;
			// until it learns the pin, both nodes would accept the key's
			// batches (forked history). Push the pin at the target until it
			// acknowledges — the best-effort broadcast and the periodic
			// gossip cover everyone else.
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.pushTable(tm, pin)
			}()
			go n.broadcast(pin)
		}
		return fmt.Errorf("cluster: move of key %d to %q failed (stream restored): %w", key, to, cause)
	}

	tc, err := dialTransfer(tm.Transfer, n.cfg.Self, cur.Epoch, n.cfg.DialTimeout)
	if err != nil {
		return nil, rollback(err)
	}
	defer tc.close()
	if had {
		tc.wbuf = AppendHandoff(tc.wbuf, key, state)
	}
	tc.wbuf = AppendTableFrame(tc.wbuf, next)
	tc.wbuf = wire.AppendFrame(tc.wbuf, nil)
	if err := tc.awaitOK(0); err != nil {
		return nil, rollback(err)
	}
	var shipped uint64
	if had {
		shipped = 1
	}
	n.cfg.Obs.Rec().Record(obs.SubCluster, obs.EvMigrationShip, key, shipped)

	n.srv.FeedBarrier(func() {
		n.table.Store(next)
		n.unfence(key)
	})
	n.cfg.Obs.Rec().Record(obs.SubCluster, obs.EvMigrationFlip, key, next.Epoch)
	if mp := n.cfg.Obs; mp != nil {
		mp.MigrationPause.Observe(time.Since(pauseStart))
	}
	n.mu.Lock()
	delete(n.replicas, key)
	n.mu.Unlock()
	n.migrationsOut.Add(1)
	n.cfg.Logf("cluster: moved stream %d to %q (epoch %d)", key, to, next.Epoch)
	go n.broadcast(next)
	return next, nil
}

// Failover removes member dead from the table (epoch+1, its overrides
// dropped) and installs the result, promoting any replicas this node
// holds for keys that now land on it. Idempotent: a table that no
// longer lists dead is returned as-is. The caller (a routing client
// whose retry budget on dead ran out, or an operator) is responsible
// for the death verdict; the node does no liveness probing.
func (n *Node) Failover(dead string) (*Table, error) {
	n.instMu.Lock()
	defer n.instMu.Unlock()
	cur := n.table.Load()
	if cur == nil {
		return nil, errors.New("cluster: no routing table installed")
	}
	if dead == n.cfg.Self {
		return nil, errors.New("cluster: refusing to fail over this node from itself")
	}
	if !cur.Has(dead) {
		return cur, nil
	}
	next, err := cur.WithoutMember(dead)
	if err != nil {
		return nil, err
	}
	if err := n.installLocked(next); err != nil {
		return nil, err
	}
	n.cfg.Obs.Rec().Record(obs.SubCluster, obs.EvFailover, next.Epoch, uint64(len(next.Members)))
	go n.broadcast(next)
	return next, nil
}

// broadcast POSTs a table to every other member's HTTP plane,
// best-effort: a node that is down catches up from the next gossip
// round (and every wrong-node rejection names the epoch, so clients
// refetch in the meantime).
func (n *Node) broadcast(t *Table) {
	for _, m := range t.Members {
		if m.Name == n.cfg.Self {
			continue
		}
		n.postTable(m, t)
	}
}

// postTable POSTs one table to one member's control plane. ok means
// the table no longer needs delivering: the peer installed it (200) or
// already holds that epoch or newer (409).
func (n *Node) postTable(m Member, t *Table) bool {
	if m.HTTP == "" {
		return true
	}
	body, err := json.Marshal(t)
	if err != nil {
		return true
	}
	resp, err := n.hc.Post("http://"+m.HTTP+"/cluster/table", "application/json", bytes.NewReader(body))
	if err != nil {
		n.cfg.Logf("cluster: table post to %q: %v", m.Name, err)
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict
}

// pushTable delivers t to member m reliably: retry with backoff until
// the member acknowledges it, the node shuts down, or a newer table
// supersedes t (whoever installed that newer epoch owns propagating
// it). Rollback pins ride this path — the one table a single missed
// broadcast must not be allowed to lose.
func (n *Node) pushTable(m Member, t *Table) {
	backoff := 100 * time.Millisecond
	for {
		if cur := n.table.Load(); cur == nil || cur.Epoch > t.Epoch {
			return
		}
		if n.postTable(m, t) {
			return
		}
		select {
		case <-n.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// gossip is the anti-entropy loop: every GossipEvery it re-broadcasts
// the current table to every member. A peer that missed a broadcast
// (rollback pin, failover) or restarted with no table converges within
// one gossip period; peers already at the epoch answer with a cheap
// no-op install.
func (n *Node) gossip() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.GossipEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		if t := n.table.Load(); t != nil {
			n.broadcast(t)
		}
	}
}

// releaseMarks releases every pending durable mark.
func (n *Node) releaseMarks() {
	n.mu.Lock()
	marks := n.marks
	n.marks = nil
	n.mu.Unlock()
	for _, m := range marks {
		m.Durable()
	}
}

// replicate is the follower-replication loop: every FollowEvery it
// captures the server's durable marks, checkpoints the pool, ships
// each owned stream's frame to that stream's follower, and releases
// the marks once every follower acknowledged the round. A round that
// fails leaves the marks pending; the next round's checkpoint covers
// them too, so durability is never claimed early — at the price of
// client windows draining at replication speed, which is the deal
// cluster durability is.
func (n *Node) replicate() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.FollowEvery)
	defer ticker.Stop()
	conns := make(map[string]*transferConn)
	defer func() {
		for _, tc := range conns {
			tc.close()
		}
	}()
	var round uint64
	var ckpt bytes.Buffer
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		var marks []server.DurableMark
		if n.srv != nil {
			marks = n.srv.CaptureDurableMarks()
		}
		if len(marks) > 0 {
			n.mu.Lock()
			n.marks = append(n.marks, marks...)
			n.mu.Unlock()
		}
		t := n.table.Load()
		if t == nil || len(t.Members) < 2 {
			// No follower exists: local application is the only durability
			// domain there is, so the marks release now.
			n.releaseMarks()
			n.replLag.Store(0)
			continue
		}
		ckpt.Reset()
		if err := n.pool.Checkpoint(&ckpt); err != nil {
			n.replErrors.Add(1)
			n.cfg.Logf("cluster: replication checkpoint: %v", err)
			continue
		}
		perDest, frames, err := n.bucketFrames(t, ckpt.Bytes())
		if err != nil {
			n.replErrors.Add(1)
			n.cfg.Logf("cluster: replication frame parse: %v", err)
			continue
		}
		round++
		n.replLag.Store(int64(frames))
		allOK := true
		for dest, payload := range perDest {
			tc := conns[dest]
			if tc == nil {
				m, ok := t.Lookup(dest)
				if !ok {
					continue
				}
				tc, err = dialTransfer(m.Transfer, n.cfg.Self, t.Epoch, n.cfg.DialTimeout)
				if err != nil {
					n.replErrors.Add(1)
					n.cfg.Logf("cluster: replication dial %q: %v", dest, err)
					allOK = false
					continue
				}
				conns[dest] = tc
			}
			tc.wbuf = append(tc.wbuf, payload...)
			tc.wbuf = AppendBarrier(tc.wbuf, round)
			if err := tc.awaitOK(round); err != nil {
				n.replErrors.Add(1)
				n.cfg.Logf("cluster: replication round %d to %q: %v", round, dest, err)
				tc.close()
				delete(conns, dest)
				allOK = false
			}
		}
		n.replRounds.Add(1)
		if allOK {
			n.releaseMarks()
			n.replLag.Store(0)
		}
	}
}

// bucketFrames parses a pool checkpoint stream and groups each owned
// stream's frame, re-framed as a replica frame, by the follower member
// that should hold it. Streams the current table does not place on
// this node are skipped (a rolled-back migration can leave a stray
// resident stream; replicating it would overwrite the real owner's
// fresher replica).
func (n *Node) bucketFrames(t *Table, ckpt []byte) (perDest map[string][]byte, frames int, err error) {
	if len(ckpt) < 5 {
		return nil, 0, errors.New("cluster: short pool checkpoint")
	}
	br := bytes.NewReader(ckpt[5:]) // skip pool magic + version
	perDest = make(map[string][]byte)
	var buf []byte
	for {
		payload, rerr := wire.ReadFrame(br, MaxTransferFrame, buf)
		if rerr != nil {
			return nil, 0, rerr
		}
		if payload == nil {
			return perDest, frames, nil
		}
		buf = payload[:cap(payload)]
		d := wire.NewDec(payload)
		key := d.Uvarint()
		if d.Err() != nil {
			return nil, 0, d.Err()
		}
		if t.Owner(key).Name != n.cfg.Self {
			continue
		}
		f, ok := t.Follower(key)
		if !ok {
			continue
		}
		perDest[f.Name] = AppendReplica(perDest[f.Name], key, t.Epoch, payload[d.Offset():])
		frames++
	}
}

// acceptLoop serves the transfer listener.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		nc, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed.Load() {
			// Shutdown began between Accept and registration: Close's
			// teardown sweep may already have run, so registering now
			// would leave the connection (and its serveTransfer read) to
			// outlive Close.
			n.mu.Unlock()
			nc.Close()
			continue
		}
		n.conns[nc] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveTransfer(nc)
			n.mu.Lock()
			delete(n.conns, nc)
			n.mu.Unlock()
		}()
	}
}

// transferIdleTimeout bounds reads on an inbound transfer connection;
// replication connections idle between rounds, so it is generous.
const transferIdleTimeout = 10 * time.Minute

// serveTransfer handles one inbound transfer connection: preamble,
// hello (with the epoch-skew check), then handoff/replica/table/
// barrier frames until a terminator or an error. Handoff and table
// frames are staged and commit together at the terminator — a sender
// that dies mid-transfer (or whose ack is lost after it rolled back)
// leaves nothing applied on this node. Replica frames apply as they
// arrive, gated per key by the sender's epoch.
func (n *Node) serveTransfer(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	var wbuf []byte
	fail := func(msg string) {
		nc.SetWriteDeadline(time.Now().Add(n.cfg.DialTimeout))
		nc.Write(AppendTransferErr(wbuf[:0], msg))
	}
	reply := func(token uint64) bool {
		nc.SetWriteDeadline(time.Now().Add(n.cfg.DialTimeout))
		_, err := nc.Write(AppendOK(wbuf[:0], token))
		return err == nil
	}
	if err := readTransferPreamble(br); err != nil {
		n.cfg.Logf("cluster: inbound transfer: %v", err)
		return
	}
	var rbuf []byte
	var fr TransferFrame
	var pending *Table
	var staged []stagedHandoff
	helloed := false
	peer := "?"
	for {
		nc.SetReadDeadline(time.Now().Add(transferIdleTimeout))
		payload, err := wire.ReadFrame(br, MaxTransferFrame, rbuf)
		if err != nil {
			return
		}
		if payload == nil {
			// Terminator: commit the staged handoffs and table together,
			// acknowledge, done.
			if err := n.commitTransfer(staged, pending); err != nil {
				fail(err.Error())
				return
			}
			reply(0)
			return
		}
		rbuf = payload[:cap(payload)]
		if err := DecodeTransferFrame(payload, &fr); err != nil {
			fail(err.Error())
			return
		}
		if !helloed {
			if fr.Kind != KindHello {
				fail("first transfer frame must be hello")
				return
			}
			if cur := n.epoch(); fr.Epoch < cur {
				fail(fmt.Sprintf("epoch skew: sender epoch %d below local epoch %d; refetch the routing table", fr.Epoch, cur))
				return
			}
			peer = fr.Name
			helloed = true
			continue
		}
		switch fr.Kind {
		case KindHandoff:
			if len(staged) >= maxStagedHandoffs {
				fail(fmt.Sprintf("more than %d handoff frames before a terminator", maxStagedHandoffs))
				return
			}
			staged = append(staged, stagedHandoff{key: fr.Key, state: append([]byte(nil), fr.State...)})
		case KindReplica:
			if cur := n.table.Load(); cur != nil && fr.Epoch < cur.Epoch && cur.Owner(fr.Key).Name == n.cfg.Self {
				// A previous owner's in-flight round, outrun by a migration
				// or failover that made this node the key's owner: its copy
				// is behind the live stream.
				continue
			}
			n.mu.Lock()
			if r, held := n.replicas[fr.Key]; !held || fr.Epoch >= r.epoch {
				r.epoch = fr.Epoch
				r.state = append(r.state[:0], fr.State...)
				n.replicas[fr.Key] = r
			}
			n.mu.Unlock()
		case KindTable:
			pending = fr.Table
		case KindBarrier:
			if !reply(fr.Token) {
				return
			}
		default:
			fail(fmt.Sprintf("unexpected transfer frame kind %d from %q", fr.Kind, peer))
			return
		}
	}
}

// commitTransfer applies one transfer connection's staged work at its
// terminator: attach every staged handoff, then install the staged
// table, under the install lock so no other epoch transition
// interleaves. A resident copy of a handed-off key can only be a stray
// from an earlier handoff whose ack was lost (the sender rolled back
// and owns the key again), so the state the owner ships now replaces
// it. If any step fails every attach is undone and the sender sees an
// error instead of an ack — both sides agree nothing moved.
func (n *Node) commitTransfer(staged []stagedHandoff, tab *Table) error {
	if len(staged) == 0 && tab == nil {
		return nil
	}
	n.instMu.Lock()
	defer n.instMu.Unlock()
	attached := make([]uint64, 0, len(staged))
	undo := func() {
		for _, k := range attached {
			if _, _, derr := n.pool.Detach(k, nil); derr != nil {
				n.cfg.Logf("cluster: undo handoff attach of stream %d: %v", k, derr)
			}
		}
	}
	var aerr error
	apply := func() {
		for _, h := range staged {
			err := n.pool.Attach(h.key, h.state)
			if errors.Is(err, pool.ErrStreamExists) {
				if _, _, derr := n.pool.Detach(h.key, nil); derr == nil {
					err = n.pool.Attach(h.key, h.state)
				}
			}
			if err != nil {
				aerr = fmt.Errorf("attach stream %d: %w", h.key, err)
				return
			}
			attached = append(attached, h.key)
		}
	}
	// The attach (and any stray replacement) runs under the feed
	// barrier: no admission decision is in flight while a stream is
	// swapped, so a feeder can never re-materialize a key mid-swap.
	if n.srv != nil {
		n.srv.FeedBarrier(apply)
	} else {
		apply()
	}
	if aerr != nil {
		undo()
		return aerr
	}
	if tab != nil {
		if err := n.installLocked(tab); err != nil {
			undo()
			return err
		}
	}
	n.migrationsIn.Add(uint64(len(attached)))
	return nil
}

// RegisterHTTP is the server.Config hook mounting the cluster control
// routes on the node's HTTP plane:
//
//	GET  /cluster/route            current routing table (404 until one installs)
//	POST /cluster/table            install a table (JSON body; epoch must be higher)
//	POST /cluster/move?key=K&to=N  migrate stream K to member N (owner only)
//	POST /cluster/failover?node=N  remove dead member N, promote replicas
func (n *Node) RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster/route", n.handleRoute)
	mux.HandleFunc("POST /cluster/table", n.handleTable)
	mux.HandleFunc("POST /cluster/move", n.handleMove)
	mux.HandleFunc("POST /cluster/failover", n.handleFailover)
}

// clusterJSON renders one control-plane response body.
func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clusterError renders a JSON error body.
func clusterError(w http.ResponseWriter, status int, msg string) {
	clusterJSON(w, status, map[string]string{"error": msg})
}

// handleRoute serves the current routing table.
func (n *Node) handleRoute(w http.ResponseWriter, r *http.Request) {
	t := n.table.Load()
	if t == nil {
		clusterError(w, http.StatusNotFound, "no routing table installed")
		return
	}
	clusterJSON(w, http.StatusOK, t)
}

// handleTable installs a POSTed routing table.
func (n *Node) handleTable(w http.ResponseWriter, r *http.Request) {
	var t Table
	if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
		clusterError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := n.InstallTable(&t); err != nil {
		clusterError(w, http.StatusConflict, err.Error())
		return
	}
	clusterJSON(w, http.StatusOK, n.table.Load())
}

// handleMove drives a live migration from the control plane.
func (n *Node) handleMove(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		clusterError(w, http.StatusBadRequest, "key must be an unsigned integer")
		return
	}
	to := r.URL.Query().Get("to")
	if to == "" {
		clusterError(w, http.StatusBadRequest, "to must name a member")
		return
	}
	t, err := n.Move(key, to)
	if err != nil {
		clusterError(w, http.StatusConflict, err.Error())
		return
	}
	clusterJSON(w, http.StatusOK, t)
}

// handleFailover removes a dead member from the control plane.
func (n *Node) handleFailover(w http.ResponseWriter, r *http.Request) {
	dead := r.URL.Query().Get("node")
	if dead == "" {
		clusterError(w, http.StatusBadRequest, "node must name a member")
		return
	}
	t, err := n.Failover(dead)
	if err != nil {
		clusterError(w, http.StatusConflict, err.Error())
		return
	}
	clusterJSON(w, http.StatusOK, t)
}
