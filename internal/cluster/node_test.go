package cluster

// Regression tests for the node's transfer-commit, replica-ordering
// and admission invariants:
//
//   - handoff frames are staged and apply only at the terminator, so a
//     sender that dies (or rolls back after a lost ack) leaves nothing
//     on the receiver;
//   - a committed handoff replaces a stray resident copy instead of
//     failing forever on ErrStreamExists;
//   - replica frames are ordered per key by the sender's epoch, so a
//     stale previous owner can never overwrite the current owner's
//     replica;
//   - installing a table detaches resident streams the table places
//     elsewhere;
//   - a node with no routing table accepts nothing.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dpd/internal/pool"
	"dpd/internal/wire"
)

// feedAndDetach feeds n samples into a scratch pool and detaches the
// resulting engine state.
func feedAndDetach(t *testing.T, src *pool.Pool, key uint64, n int) []byte {
	t.Helper()
	for i := 0; i < n; i++ {
		src.Feed(key, int64(i%5))
	}
	state, had, err := src.Detach(key, nil)
	if err != nil || !had {
		t.Fatalf("detach: %v %v", err, had)
	}
	return state
}

func TestHandoffStagedUntilTerminator(t *testing.T) {
	n, dst := testNode(t, "n1")
	src, err := pool.New(pool.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const key = 41
	state := feedAndDetach(t, src, key, 48)

	// Ship the handoff but never the terminator: the barrier ack proves
	// the receiver processed the frame, yet nothing may be applied.
	tc, err := dialTransfer(n.TransferAddr(), "n2", 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tc.wbuf = AppendHandoff(tc.wbuf, key, state)
	tc.wbuf = AppendBarrier(tc.wbuf, 1)
	if err := tc.awaitOK(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Stat(key); ok {
		t.Fatal("handoff applied before the terminator")
	}
	tc.close() // sender dies mid-transfer: the stage must be dropped
	if _, ok := dst.Stat(key); ok {
		t.Fatal("aborted transfer left a stream attached")
	}
	if got := n.migrationsIn.Load(); got != 0 {
		t.Fatalf("aborted transfer counted %d migrations in", got)
	}

	// A complete transfer of the same stream still lands.
	tc2, err := dialTransfer(n.TransferAddr(), "n2", 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.close()
	tc2.wbuf = AppendHandoff(tc2.wbuf, key, state)
	tc2.wbuf = wire.AppendFrame(tc2.wbuf, nil)
	if err := tc2.awaitOK(0); err != nil {
		t.Fatalf("clean retry rejected: %v", err)
	}
	if _, ok := dst.Stat(key); !ok {
		t.Fatal("committed transfer did not attach the stream")
	}
	if got := n.migrationsIn.Load(); got != 1 {
		t.Fatalf("committed transfer counted %d migrations in, want 1", got)
	}
}

func TestHandoffReplacesStaleResident(t *testing.T) {
	n, dst := testNode(t, "n1")
	src, err := pool.New(pool.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const key = 55

	// Plant a stale resident copy — the stray a rolled-back migration
	// leaves behind when its commit ack is lost.
	stale := feedAndDetach(t, src, key, 16)
	if err := dst.Attach(key, stale); err != nil {
		t.Fatal(err)
	}

	// The owner ships a fresher copy: the commit must replace the stray,
	// not fail with ErrStreamExists.
	for i := 0; i < 64; i++ {
		src.Feed(key, int64(i%5))
	}
	want, _ := src.Stat(key)
	fresh, had, err := src.Detach(key, nil)
	if err != nil || !had {
		t.Fatalf("detach: %v %v", err, had)
	}
	tc, err := dialTransfer(n.TransferAddr(), "n2", 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	tc.wbuf = AppendHandoff(tc.wbuf, key, fresh)
	tc.wbuf = wire.AppendFrame(tc.wbuf, nil)
	if err := tc.awaitOK(0); err != nil {
		t.Fatalf("handoff over a stale resident rejected: %v", err)
	}
	got, ok := dst.Stat(key)
	if !ok {
		t.Fatal("stream missing after commit")
	}
	if got != want {
		t.Fatalf("commit kept the stale copy:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplicaFrameEpochOrdering(t *testing.T) {
	n, _ := testNode(t, "n1")
	const key = 9
	newer := []byte{1, 2, 3, 4}
	older := []byte{9, 9}

	tc, err := dialTransfer(n.TransferAddr(), "n2", 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	// An epoch-5 round followed by a straggling epoch-3 round (a stale
	// previous owner): the stale frame must not overwrite.
	tc.wbuf = AppendReplica(tc.wbuf, key, 5, newer)
	tc.wbuf = AppendReplica(tc.wbuf, key, 3, older)
	tc.wbuf = AppendBarrier(tc.wbuf, 1)
	if err := tc.awaitOK(1); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	r := n.replicas[key]
	n.mu.Unlock()
	if r.epoch != 5 || !bytes.Equal(r.state, newer) {
		t.Fatalf("stale replica frame won: epoch %d state %x", r.epoch, r.state)
	}

	// A newer epoch overwrites.
	tc.wbuf = AppendReplica(tc.wbuf, key, 6, older)
	tc.wbuf = AppendBarrier(tc.wbuf, 2)
	if err := tc.awaitOK(2); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	r = n.replicas[key]
	n.mu.Unlock()
	if r.epoch != 6 || !bytes.Equal(r.state, older) {
		t.Fatalf("newer replica frame lost: epoch %d state %x", r.epoch, r.state)
	}
}

func TestInstallSweepsStrayResidents(t *testing.T) {
	n, p := testNode(t, "n1")
	const key = 123
	for i := 0; i < 32; i++ {
		p.Feed(key, int64(i%4))
	}
	// A table that pins the key to another member: the resident copy is
	// now a stray and must not stay live (it would shadow the real
	// owner's state and block re-migration).
	tab, err := NewTable(4, members3(), map[uint64]string{key: "n2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallTable(tab); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Stat(key); ok {
		t.Fatal("stray resident stream survived the table install")
	}
	if f, ok := tab.Follower(key); ok && f.Name == "n1" {
		n.mu.Lock()
		_, held := n.replicas[key]
		n.mu.Unlock()
		if !held {
			t.Fatal("demoted stray was not kept as a standby replica")
		}
	}
}

func TestOwnerCheckRejectsWithoutTable(t *testing.T) {
	n, _ := testNode(t, "n1")
	if owner, epoch, ok := n.OwnerCheck(7); ok || owner != "" || epoch != 0 {
		t.Fatalf("memberless node accepted a batch: owner=%q epoch=%d ok=%v", owner, epoch, ok)
	}
	tab, err := NewTable(1, []Member{{Name: "n1"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallTable(tab); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := n.OwnerCheck(7); !ok {
		t.Fatal("sole member rejected a batch after the table installed")
	}
}

func TestCommitTransferRejectsStaleTable(t *testing.T) {
	n, dst := testNode(t, "n1")
	cur, err := NewTable(9, members3(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallTable(cur); err != nil {
		t.Fatal(err)
	}
	src, err := pool.New(pool.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const key = 77
	state := feedAndDetach(t, src, key, 32)
	stale, err := NewTable(4, members3(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hello passes (epoch 9) but the staged table is stale: the commit
	// must fail and undo the handoff attach.
	tc, err := dialTransfer(n.TransferAddr(), "n2", 9, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	tc.wbuf = AppendHandoff(tc.wbuf, key, state)
	tc.wbuf = AppendTableFrame(tc.wbuf, stale)
	tc.wbuf = wire.AppendFrame(tc.wbuf, nil)
	if err := tc.awaitOK(0); err == nil {
		t.Fatal("stale staged table committed")
	}
	if _, ok := dst.Stat(key); ok {
		t.Fatal("failed commit left the handoff attached")
	}
	if got := n.Table(); got == nil || got.Epoch != 9 {
		t.Fatalf("table regressed: %+v", got)
	}
}

// TestAttachErrorSurfaceIsTyped keeps pool.ErrStreamExists matchable —
// the commit path branches on it.
func TestAttachErrorSurfaceIsTyped(t *testing.T) {
	p, err := pool.New(pool.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	src, err := pool.New(pool.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	state := feedAndDetach(t, src, 5, 16)
	if err := p.Attach(5, state); err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(5, state); !errors.Is(err, pool.ErrStreamExists) {
		t.Fatalf("duplicate attach error is not ErrStreamExists: %v", err)
	}
}
