package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"dpd/internal/client"
)

// Router is the cluster-aware ingest client: it fetches the routing
// table from any member's HTTP plane, keeps one resilient client per
// owner, fans each batch to its key's owner, and preserves the
// exactly-once contract across migration and failover:
//
//   - A wrong-node rejection voids the key on that connection and
//     rescues its windowed samples as an orphan (client.Orphan); the
//     router refetches the table up to the rejection's epoch, asks the
//     new owner for the stream's applied cursor, trims the orphan to
//     the unapplied suffix, aligns the connection's numbering with
//     PresetCursor, and resends — migrated pre-history is never
//     double-fed, unapplied samples are never dropped.
//   - A connection whose retry budget runs out declares its member
//     dead: the router asks any survivor to fail the member over
//     (POST /cluster/failover), abandons the connection — rescuing its
//     entire unacknowledged window as orphans — and replays each
//     orphan to its new owner under the same cursor handshake.
//
// A Router is not safe for concurrent use, mirroring client.Client;
// give each sending goroutine its own Router.
type Router struct {
	cfg   RouterConfig
	table *Table
	conns map[string]*client.Client
	// pending maps a voided key to the member name of the connection
	// holding its orphan, filled by each connection's OnWrongNode hook.
	pending map[uint64]string
	hc      *http.Client
	// tr is the router's own HTTP transport: not shared with the
	// process default, so Close can drop its pooled connections without
	// leaving half-open sockets on member control planes.
	tr    *http.Transport
	stats RouterStats
	// closedStats accumulates the counters of connections that were
	// closed or abandoned, so Stats never loses their history.
	closedStats client.Stats
	closed      bool
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// HTTPAddrs are bootstrap HTTP addresses of one or more cluster
	// members; the routing table is fetched from the first that answers.
	HTTPAddrs []string
	// Client is the per-connection template. Addr and OnWrongNode are
	// set by the router; everything else (window, ack mode, budget,
	// backoff, OnEvent, Logf) applies to every connection.
	Client client.Config
	// FetchBudget bounds how long the router keeps polling for a table
	// of a required epoch during a redirect; 0 selects the client retry
	// budget (or its 30s default).
	FetchBudget time.Duration
	// Logf receives routing log lines; nil discards them.
	Logf func(format string, args ...any)
}

// RouterStats counts the router's own work; per-connection transport
// counters are aggregated in Client.
type RouterStats struct {
	// Redirects counts orphans replayed to a new owner (migration or
	// failover rescues).
	Redirects uint64
	// ReplayedSamples counts orphan samples resent to a new owner.
	ReplayedSamples uint64
	// TrimmedSamples counts orphan samples dropped because the new
	// owner's cursor proved them already applied.
	TrimmedSamples uint64
	// Failovers counts members this router declared dead.
	Failovers uint64
	// TableFetches counts routing-table fetch sweeps.
	TableFetches uint64
	// Client is the sum of every connection's client.Stats, including
	// closed and abandoned connections.
	Client client.Stats
}

// maxRouteAttempts bounds the reroute loop of one batch: each attempt
// is a redirect chase or a failover, so hitting the bound means the
// cluster is reshaping faster than the router can follow.
const maxRouteAttempts = 16

// DialRouter fetches the routing table from cfg.HTTPAddrs and returns
// a ready router. Connections to owners are dialed lazily on first
// send.
func DialRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.HTTPAddrs) == 0 {
		return nil, errors.New("cluster: RouterConfig.HTTPAddrs is required")
	}
	if cfg.FetchBudget <= 0 {
		if cfg.Client.RetryBudget > 0 {
			cfg.FetchBudget = cfg.Client.RetryBudget
		} else {
			cfg.FetchBudget = 30 * time.Second
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	to := cfg.Client.DialTimeout
	if to <= 0 {
		to = 5 * time.Second
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	r := &Router{
		cfg:     cfg,
		conns:   make(map[string]*client.Client),
		pending: make(map[uint64]string),
		hc:      &http.Client{Timeout: to, Transport: tr},
		tr:      tr,
	}
	if err := r.refetch(0); err != nil {
		return nil, err
	}
	return r, nil
}

// Table returns the router's current routing table.
func (r *Router) Table() *Table { return r.table }

// Stats returns the router's counters with per-connection transport
// stats summed in.
func (r *Router) Stats() RouterStats {
	s := r.stats
	s.Client = r.closedStats
	for _, c := range r.conns {
		addStats(&s.Client, c.Stats())
	}
	return s
}

// addStats accumulates b into a.
func addStats(a *client.Stats, b client.Stats) {
	a.Dials += b.Dials
	a.Reconnects += b.Reconnects
	a.ReplayedBatches += b.ReplayedBatches
	a.ReplayedSamples += b.ReplayedSamples
	a.OverloadBackoffs += b.OverloadBackoffs
	a.ProtocolErrors += b.ProtocolErrors
	a.SentBatches += b.SentBatches
	a.SentSamples += b.SentSamples
	a.WrongNodeRedirects += b.WrongNodeRedirects
}

// Close gracefully closes every connection. Call Barrier first when
// the run's accounting matters.
func (r *Router) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	for name, c := range r.conns {
		addStats(&r.closedStats, c.Stats())
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(r.conns, name)
	}
	r.tr.CloseIdleConnections()
	return first
}

// SendEvents routes one event batch for key to its owner, following
// redirects and failing over dead members as needed.
func (r *Router) SendEvents(key uint64, values []int64) error {
	return r.send(key, values, nil)
}

// SendMagnitudes routes one magnitude batch for key under the same
// contract as SendEvents.
func (r *Router) SendMagnitudes(key uint64, values []float64) error {
	return r.send(key, nil, values)
}

// send is the routing fan-out: pick the owner from the table, send,
// and on rejection or death chase the cluster's new shape.
func (r *Router) send(key uint64, evs []int64, mags []float64) error {
	if r.closed {
		return client.ErrClosed
	}
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		owner := r.table.Owner(key)
		c, err := r.conn(owner)
		if err != nil {
			if ferr := r.failover(owner.Name); ferr != nil {
				return ferr
			}
			continue
		}
		if mags != nil {
			err = c.SendMagnitudes(key, mags)
		} else {
			err = c.SendEvents(key, evs)
		}
		var re *client.RedirectError
		switch {
		case err == nil:
			if len(r.pending) != 0 {
				if derr := r.drain(); derr != nil {
					return derr
				}
			}
			return nil
		case errors.As(err, &re):
			// The batch was refused before entering the window; replay the
			// key's rescued orphan to the new owner, then retry this batch.
			if derr := r.drain(); derr != nil {
				return derr
			}
			if re.Epoch > r.table.Epoch {
				if ferr := r.refetch(re.Epoch); ferr != nil {
					return ferr
				}
			} else if re.Epoch < r.table.Epoch {
				// The member rejected under an older epoch than the router
				// holds — typically a member that restarted empty and
				// accepts nothing until it has a table. Offer it ours.
				r.pushTable(owner)
			}
		case errors.Is(err, client.ErrBudget):
			if ferr := r.failover(owner.Name); ferr != nil {
				return ferr
			}
		default:
			return err
		}
	}
	return fmt.Errorf("cluster: key %d unroutable after %d attempts", key, maxRouteAttempts)
}

// Barrier blocks until every batch handed to the router is applied by
// the node that owns its stream — draining redirect orphans that
// surface along the way — and recovers failovers like send does.
func (r *Router) Barrier() error {
	if r.closed {
		return client.ErrClosed
	}
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		names := make([]string, 0, len(r.conns))
		for name := range r.conns {
			names = append(names, name)
		}
		clean := true
		for _, name := range names {
			c := r.conns[name]
			if c == nil {
				continue
			}
			if err := c.Barrier(); err != nil {
				if errors.Is(err, client.ErrBudget) {
					if ferr := r.failover(name); ferr != nil {
						return ferr
					}
					clean = false
					break
				}
				return err
			}
		}
		if len(r.pending) != 0 {
			if err := r.drain(); err != nil {
				return err
			}
			clean = false
		}
		if clean {
			return nil
		}
	}
	return fmt.Errorf("cluster: barrier unsettled after %d passes", maxRouteAttempts)
}

// conn returns (dialing if needed) the connection to member m.
func (r *Router) conn(m Member) (*client.Client, error) {
	if c := r.conns[m.Name]; c != nil {
		return c, nil
	}
	ccfg := r.cfg.Client
	ccfg.Addr = m.Ingest
	ccfg.Seed ^= nameHash(m.Name)
	name := m.Name
	onWrong := r.cfg.Client.OnWrongNode
	ccfg.OnWrongNode = func(key, epoch uint64, owner string) {
		r.pending[key] = name
		if onWrong != nil {
			onWrong(key, epoch, owner)
		}
	}
	c, err := client.Dial(ccfg)
	if err != nil {
		return nil, err
	}
	r.conns[m.Name] = c
	return c, nil
}

// drain replays every pending orphan to its stream's current owner.
func (r *Router) drain() error {
	for len(r.pending) != 0 {
		var key uint64
		var from string
		for k, m := range r.pending {
			key, from = k, m
			break
		}
		delete(r.pending, key)
		c := r.conns[from]
		if c == nil {
			continue
		}
		o, ok := c.TakeOrphan(key)
		if !ok {
			continue
		}
		if err := r.replayOrphan(key, o); err != nil {
			return err
		}
	}
	return nil
}

// replayOrphan delivers one rescued orphan to the key's current owner
// exactly once: query the owner's applied cursor, trim the prefix the
// cursor proves applied, align the connection's numbering to the
// cursor, send the suffix. The cursor handshake makes the replay safe
// against both directions of skew: migrated pre-history (cursor ahead
// of the orphan) trims to nothing, replication lag after a failover
// (cursor behind) replays the whole orphan against the replica's
// shorter history.
func (r *Router) replayOrphan(key uint64, o client.Orphan) error {
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		if o.Epoch > r.table.Epoch {
			if err := r.refetch(o.Epoch); err != nil {
				return err
			}
		}
		owner := r.table.Owner(key)
		if o.Epoch < r.table.Epoch {
			// The newest rejection carried an epoch below the router's
			// table — epoch 0 is a member with no table at all. Heal the
			// owner before the cursor handshake, not after the replay
			// bounces: a rejected send still advances this connection's
			// sample numbering, and a retrim against the owner's cursor
			// after that drift would replay the wrong suffix.
			r.pushTable(owner)
		}
		c, err := r.conn(owner)
		if err != nil {
			if ferr := r.failover(owner.Name); ferr != nil {
				return ferr
			}
			continue
		}
		applied, err := c.QueryCursor(key)
		if err != nil {
			if errors.Is(err, client.ErrBudget) {
				if ferr := r.failover(owner.Name); ferr != nil {
					return ferr
				}
				continue
			}
			return err
		}
		n := uint64(len(o.Evs) + len(o.Mags))
		trim := uint64(0)
		if applied > o.Start {
			trim = applied - o.Start
			if trim > n {
				trim = n
			}
		}
		c.PresetCursor(key, applied)
		r.stats.TrimmedSamples += trim
		if trim == n {
			r.stats.Redirects++
			return nil
		}
		if o.IsMag {
			err = c.SendMagnitudes(key, o.Mags[trim:])
		} else {
			err = c.SendEvents(key, o.Evs[trim:])
		}
		var re *client.RedirectError
		switch {
		case err == nil:
			r.stats.Redirects++
			r.stats.ReplayedSamples += n - trim
			return nil
		case errors.As(err, &re):
			// Refused: the key was voided on this connection between the
			// cursor handshake and the send (the cluster moved again). Any
			// samples this connection already carried for the key were
			// rescued into its orphan; splice our unsent suffix after them
			// and chase the new epoch.
			if o2, ok := c.TakeOrphan(key); ok {
				if len(o2.Evs) == 0 && len(o2.Mags) == 0 {
					o2.Start, o2.IsMag = o.Start+trim, o.IsMag
				}
				o2.Evs = append(o2.Evs, o.Evs[trim:]...)
				o2.Mags = append(o2.Mags, o.Mags[trim:]...)
				o2.Epoch, o2.Owner = re.Epoch, re.Owner
				o = o2
			} else {
				o.Epoch = re.Epoch
			}
			if re.Epoch < r.table.Epoch {
				// Rejected under an older epoch: the owner is a member that
				// restarted without a table. Heal it so the next attempt
				// lands instead of burning the attempt budget.
				r.pushTable(owner)
			}
		case errors.Is(err, client.ErrBudget):
			if ferr := r.failover(owner.Name); ferr != nil {
				return ferr
			}
		default:
			return err
		}
	}
	return fmt.Errorf("cluster: orphan for key %d undeliverable after %d attempts", key, maxRouteAttempts)
}

// pushTable offers the router's table to a member that proved to be
// behind it (a wrong-node rejection under a lower epoch). Best-effort:
// node-to-node gossip heals the same gap on its own cadence, this just
// closes it before the router's next attempt.
func (r *Router) pushTable(m Member) {
	if m.HTTP == "" || r.table == nil {
		return
	}
	body, err := json.Marshal(r.table)
	if err != nil {
		return
	}
	resp, err := r.hc.Post("http://"+m.HTTP+"/cluster/table", "application/json", bytes.NewReader(body))
	if err != nil {
		r.cfg.Logf("cluster: table push to %q: %v", m.Name, err)
		return
	}
	resp.Body.Close()
}

// failover declares member dead: ask any survivor to remove it from
// the table, adopt the survivor's new table, abandon the dead
// connection and replay every rescued orphan to its new owner.
func (r *Router) failover(dead string) error {
	r.stats.Failovers++
	r.cfg.Logf("cluster: router declaring %q dead", dead)
	var next *Table
	for _, m := range r.table.Members {
		if m.Name == dead || m.HTTP == "" {
			continue
		}
		resp, err := r.hc.Post("http://"+m.HTTP+"/cluster/failover?node="+url.QueryEscape(dead), "application/json", nil)
		if err != nil {
			continue
		}
		var t Table
		derr := json.NewDecoder(resp.Body).Decode(&t)
		resp.Body.Close()
		if derr == nil && resp.StatusCode == http.StatusOK {
			next = &t
			break
		}
	}
	if next == nil {
		return fmt.Errorf("cluster: no surviving member accepted failover of %q", dead)
	}
	if next.Epoch >= r.table.Epoch {
		r.table = next
	}
	c := r.conns[dead]
	if c == nil {
		return nil
	}
	delete(r.conns, dead)
	addStats(&r.closedStats, c.Stats())
	orphans := c.Abandon()
	// Pending entries pointing at the dead connection are covered by the
	// abandon rescue (it merges prior wrong-node orphans).
	for k, m := range r.pending {
		if m == dead {
			delete(r.pending, k)
		}
	}
	for k, o := range orphans {
		if err := r.replayOrphan(k, o); err != nil {
			return err
		}
	}
	return nil
}

// refetch sweeps every known HTTP plane (current members first, then
// the bootstrap list) for the highest-epoch routing table, polling
// until one with epoch ≥ minEpoch appears or the fetch budget runs
// out. minEpoch 0 accepts any table.
func (r *Router) refetch(minEpoch uint64) error {
	deadline := time.Now().Add(r.cfg.FetchBudget)
	for {
		r.stats.TableFetches++
		best := r.table
		try := func(addr string) {
			resp, err := r.hc.Get("http://" + addr + "/cluster/route")
			if err != nil {
				return
			}
			var t Table
			derr := json.NewDecoder(resp.Body).Decode(&t)
			resp.Body.Close()
			if derr != nil || resp.StatusCode != http.StatusOK {
				return
			}
			if best == nil || t.Epoch > best.Epoch {
				best = &t
			}
		}
		if r.table != nil {
			for _, m := range r.table.Members {
				if m.HTTP != "" {
					try(m.HTTP)
				}
			}
		}
		for _, addr := range r.cfg.HTTPAddrs {
			try(addr)
		}
		if best != nil && best.Epoch >= minEpoch {
			r.table = best
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: no routing table of epoch ≥ %d within %v", minEpoch, r.cfg.FetchBudget)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
