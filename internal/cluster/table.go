// Package cluster is dpdserver's multi-node tier: rendezvous-hash
// stream placement with an epoch-numbered routing table, live
// cross-node stream migration over a dedicated transfer plane, and
// follower failover driven by checkpoint-frame replication.
//
// The design splits into four pieces:
//
//   - Table (table.go): the routing contract. Every node and every
//     routing client holds a Table {epoch, members, overrides} and
//     computes Owner(key) identically — rendezvous (highest-random-
//     weight) hashing over the member set, with an override map for
//     streams migrated away from their hash-owner. Tables are
//     immutable; topology changes install a whole new table under a
//     strictly higher epoch, and every carrier of a table (transfer
//     frame, HTTP route payload, wrong-node rejection) names its epoch
//     so stale tables are rejected rather than merged.
//   - Transfer plane (transfer.go): a second listener per node speaking
//     length-prefixed frames that ship portable detector state between
//     nodes — handoff frames during migration, replica frames during
//     follower replication, table frames during topology installs.
//   - Node (node.go): glues a server.Server + pool.Pool to the table:
//     ownership checks on the ingest path, the migration state machine,
//     the replication loop, and the /cluster/* HTTP routes.
//   - Router (router.go): the client side — fans batches per owner,
//     follows wrong-node redirects across epoch bumps, and replays
//     rescued samples exactly once after migration or failover.
//
// The placement function is rendezvous hashing rather than a token
// ring: each member's score for a key is an avalanche mix of the key
// and the member's name hash, the owner is the highest score, and the
// follower (replica target) is the second-highest. Rendezvous gives
// the property failover leans on: removing one member reassigns each
// of its keys exactly to that key's follower — the node already
// holding the replica — and moves nothing else.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"dpd/internal/wire"
)

// Codec bounds: a table is rejected (never partially decoded) when it
// exceeds these. They size scratch allocation before any payload is
// trusted, per the wire codec contract.
const (
	// MaxMembers bounds the member list in a decoded table.
	MaxMembers = 1024
	// MaxOverrides bounds the override map in a decoded table.
	MaxOverrides = 1 << 20
	// MaxAddrLen bounds every name/address string in a decoded table.
	MaxAddrLen = 256
)

// Member is one cluster node as the routing table sees it: a unique
// name plus the three addresses its planes listen on.
type Member struct {
	// Name is the node's unique cluster-wide identity; rendezvous
	// scores hash it, so renaming a node reshuffles its keys.
	Name string `json:"name"`
	// Ingest is the node's DPDI binary ingest address (TCP).
	Ingest string `json:"ingest"`
	// HTTP is the node's query/control-plane address.
	HTTP string `json:"http"`
	// Transfer is the node's DPDT transfer-plane address (TCP).
	Transfer string `json:"transfer"`
}

// Table is one immutable routing epoch: the member set plus the
// override map for streams that have been migrated away from their
// rendezvous owner. Construct with NewTable (or decode); do not
// mutate a Table after construction — topology changes build a new
// Table under a higher epoch.
type Table struct {
	// Epoch orders tables: a carrier of epoch E replaces any table with
	// a lower epoch and is rejected by any holder of a higher one.
	Epoch uint64
	// Members is the node set, sorted by name.
	Members []Member
	// Overrides pins individual keys to a named member regardless of
	// their rendezvous score — the record of live migrations. Nil when
	// empty.
	Overrides map[uint64]string

	// hashes[i] is the avalanche-ready hash of Members[i].Name.
	hashes []uint64
	// index maps member name → Members offset.
	index map[string]int
}

// NewTable validates and indexes a routing table: members are sorted
// by name, names must be unique and non-empty, and every override
// must point at a member. The members slice is copied; the overrides
// map is retained (treat it as owned by the table).
func NewTable(epoch uint64, members []Member, overrides map[uint64]string) (*Table, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: table needs at least one member")
	}
	if len(members) > MaxMembers {
		return nil, fmt.Errorf("cluster: %d members exceeds limit %d", len(members), MaxMembers)
	}
	t := &Table{
		Epoch:     epoch,
		Members:   append([]Member(nil), members...),
		Overrides: overrides,
		index:     make(map[string]int, len(members)),
	}
	sort.Slice(t.Members, func(i, j int) bool { return t.Members[i].Name < t.Members[j].Name })
	t.hashes = make([]uint64, len(t.Members))
	for i, m := range t.Members {
		if m.Name == "" {
			return nil, fmt.Errorf("cluster: member %d has an empty name", i)
		}
		if _, dup := t.index[m.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		t.index[m.Name] = i
		t.hashes[i] = nameHash(m.Name)
	}
	if len(overrides) > MaxOverrides {
		return nil, fmt.Errorf("cluster: %d overrides exceeds limit %d", len(overrides), MaxOverrides)
	}
	for k, name := range overrides {
		if _, ok := t.index[name]; !ok {
			return nil, fmt.Errorf("cluster: override for key %d names unknown member %q", k, name)
		}
	}
	return t, nil
}

// nameHash is FNV-1a over the member name; mix finishes the avalanche
// per key, so a plain byte hash suffices here.
func nameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// mix is the rendezvous score: a murmur3-style finalizer over the key
// and the member's name hash. Full avalanche keeps adjacent keys from
// clustering on one member.
func mix(key, nh uint64) uint64 {
	x := key ^ nh
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// top2 returns the indexes of the highest- and second-highest-scoring
// members for key (ties break toward the lexically smaller name, which
// is the lower index). second is -1 with fewer than two members.
func (t *Table) top2(key uint64) (best, second int) {
	best, second = 0, -1
	var bs, ss uint64
	for i, nh := range t.hashes {
		s := mix(key, nh)
		switch {
		case i == 0:
			bs = s
		case s > bs:
			second, ss = best, bs
			best, bs = i, s
		case second < 0 || s > ss:
			second, ss = i, s
		}
	}
	return best, second
}

// Owner returns the member that owns key under this table: the
// override target when the key is pinned, otherwise the
// highest-scoring member.
func (t *Table) Owner(key uint64) Member {
	if name, ok := t.Overrides[key]; ok {
		return t.Members[t.index[name]]
	}
	best, _ := t.top2(key)
	return t.Members[best]
}

// Follower returns the member that holds key's replica: the
// highest-scoring member other than the owner. ok is false on a
// single-member table. Removing the owner from the table makes the
// follower the new rendezvous owner — the property failover relies
// on to find every dead node's streams already resident.
func (t *Table) Follower(key uint64) (Member, bool) {
	if len(t.Members) < 2 {
		return Member{}, false
	}
	best, second := t.top2(key)
	if name, ok := t.Overrides[key]; ok {
		// The owner is pinned elsewhere: the replica target is the best
		// scorer that is not the pinned owner.
		oi := t.index[name]
		if oi != best {
			return t.Members[best], true
		}
		return t.Members[second], true
	}
	return t.Members[second], true
}

// Lookup returns the member with the given name.
func (t *Table) Lookup(name string) (Member, bool) {
	i, ok := t.index[name]
	if !ok {
		return Member{}, false
	}
	return t.Members[i], true
}

// Has reports whether name is a member of this table.
func (t *Table) Has(name string) bool {
	_, ok := t.index[name]
	return ok
}

// WithOverride builds the successor table (epoch+delta) with key
// pinned to member name — the commit step of a migration. delta is
// normally 1; rollback paths use 2 to outrun an uncommitted epoch+1.
func (t *Table) WithOverride(key uint64, name string, delta uint64) (*Table, error) {
	ov := make(map[uint64]string, len(t.Overrides)+1)
	for k, v := range t.Overrides {
		ov[k] = v
	}
	ov[key] = name
	return NewTable(t.Epoch+delta, t.Members, ov)
}

// WithoutOverride builds the successor table (epoch+delta) with key's
// pin removed, reverting it to rendezvous placement.
func (t *Table) WithoutOverride(key uint64, delta uint64) (*Table, error) {
	ov := make(map[uint64]string, len(t.Overrides))
	for k, v := range t.Overrides {
		if k != key {
			ov[k] = v
		}
	}
	return NewTable(t.Epoch+delta, t.Members, ov)
}

// WithoutMember builds the successor table (epoch+1) with member name
// removed and every override pointing at it dropped — the failover
// table. Keys the dead member owned by rendezvous land on their
// followers; keys pinned to it revert to rendezvous placement over
// the survivors (which is exactly the pre-failover follower, since
// the follower is the best scorer other than the pinned owner).
func (t *Table) WithoutMember(name string) (*Table, error) {
	members := make([]Member, 0, len(t.Members))
	for _, m := range t.Members {
		if m.Name != name {
			members = append(members, m)
		}
	}
	if len(members) == len(t.Members) {
		return nil, fmt.Errorf("cluster: no member named %q", name)
	}
	var ov map[uint64]string
	if len(t.Overrides) > 0 {
		ov = make(map[uint64]string, len(t.Overrides))
		for k, v := range t.Overrides {
			if v != name {
				ov[k] = v
			}
		}
	}
	return NewTable(t.Epoch+1, members, ov)
}

// AppendTable appends the table's binary form:
//
//	epoch uvarint | nmembers uvarint
//	  per member: name, ingest, http, transfer (each: len uvarint | bytes)
//	noverrides uvarint
//	  per override: key uvarint | member-index uvarint
//
// Members are written in sorted order, so encode∘decode is
// byte-stable. Overrides reference members by index to keep large
// override sets compact; their order is key-sorted for the same
// byte-stability.
func AppendTable(dst []byte, t *Table) []byte {
	dst = wire.AppendUvarint(dst, t.Epoch)
	dst = wire.AppendUint(dst, len(t.Members))
	for _, m := range t.Members {
		for _, s := range [4]string{m.Name, m.Ingest, m.HTTP, m.Transfer} {
			dst = wire.AppendUint(dst, len(s))
			dst = append(dst, s...)
		}
	}
	dst = wire.AppendUint(dst, len(t.Overrides))
	if len(t.Overrides) > 0 {
		keys := make([]uint64, 0, len(t.Overrides))
		for k := range t.Overrides {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			dst = wire.AppendUvarint(dst, k)
			dst = wire.AppendUint(dst, t.index[t.Overrides[k]])
		}
	}
	return dst
}

// DecodeTable decodes AppendTable's form, validating like NewTable.
// It never panics or over-reads on hostile input and rejects payloads
// with trailing bytes.
func DecodeTable(payload []byte) (*Table, error) {
	d := wire.NewDec(payload)
	epoch := d.Uvarint()
	nm := d.Uint(MaxMembers)
	if d.Err() != nil {
		return nil, fmt.Errorf("cluster: table header: %w", d.Err())
	}
	members := make([]Member, nm)
	for i := range members {
		var f [4]string
		for j := range f {
			n := d.Uint(MaxAddrLen)
			b := d.Bytes(n)
			if d.Err() != nil {
				return nil, fmt.Errorf("cluster: table member %d: %w", i, d.Err())
			}
			f[j] = string(b)
		}
		members[i] = Member{Name: f[0], Ingest: f[1], HTTP: f[2], Transfer: f[3]}
	}
	no := d.Uint(MaxOverrides)
	if d.Err() != nil {
		return nil, fmt.Errorf("cluster: table overrides: %w", d.Err())
	}
	var ov map[uint64]string
	if no > 0 {
		ov = make(map[uint64]string, no)
		for i := 0; i < no; i++ {
			k := d.Uvarint()
			mi := d.Uint(len(members) - 1)
			if d.Err() != nil {
				return nil, fmt.Errorf("cluster: table override %d: %w", i, d.Err())
			}
			ov[k] = members[mi].Name
		}
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("cluster: table has %d trailing bytes", d.Remaining())
	}
	return NewTable(epoch, members, ov)
}

// tableJSON is the HTTP route form of a Table (GET /cluster/route,
// POST /cluster/table). Override keys are decimal strings because
// JSON object keys must be strings.
type tableJSON struct {
	// Epoch is the table's epoch.
	Epoch uint64 `json:"epoch"`
	// Members is the sorted member set.
	Members []Member `json:"members"`
	// Overrides maps decimal stream key → owning member name.
	Overrides map[string]string `json:"overrides,omitempty"`
}

// MarshalJSON renders the HTTP route form.
func (t *Table) MarshalJSON() ([]byte, error) {
	j := tableJSON{Epoch: t.Epoch, Members: t.Members}
	if len(t.Overrides) > 0 {
		j.Overrides = make(map[string]string, len(t.Overrides))
		for k, v := range t.Overrides {
			j.Overrides[strconv.FormatUint(k, 10)] = v
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the HTTP route form, validating like NewTable.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	var ov map[uint64]string
	if len(j.Overrides) > 0 {
		ov = make(map[uint64]string, len(j.Overrides))
		for ks, v := range j.Overrides {
			k, err := strconv.ParseUint(ks, 10, 64)
			if err != nil {
				return fmt.Errorf("cluster: override key %q: %w", ks, err)
			}
			ov[k] = v
		}
	}
	nt, err := NewTable(j.Epoch, j.Members, ov)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}
