package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// members3 is the standard three-node test topology.
func members3() []Member {
	return []Member{
		{Name: "n1", Ingest: "127.0.0.1:7700", HTTP: "127.0.0.1:7701", Transfer: "127.0.0.1:7702"},
		{Name: "n2", Ingest: "127.0.0.1:7710", HTTP: "127.0.0.1:7711", Transfer: "127.0.0.1:7712"},
		{Name: "n3", Ingest: "127.0.0.1:7720", HTTP: "127.0.0.1:7721", Transfer: "127.0.0.1:7722"},
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(1, nil, nil); err == nil {
		t.Fatal("empty member set accepted")
	}
	dup := []Member{{Name: "a"}, {Name: "a"}}
	if _, err := NewTable(1, dup, nil); err == nil {
		t.Fatal("duplicate member names accepted")
	}
	if _, err := NewTable(1, []Member{{Name: ""}}, nil); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := NewTable(1, members3(), map[uint64]string{7: "nope"}); err == nil {
		t.Fatal("override to unknown member accepted")
	}
}

// TestRendezvousProperties pins the placement function's contract: the
// owner is deterministic, spreads keys across members, and removing a
// member reassigns each of its keys exactly to that key's follower —
// every other key keeps its owner. Failover correctness rests on this.
func TestRendezvousProperties(t *testing.T) {
	tab, err := NewTable(1, members3(), nil)
	if err != nil {
		t.Fatal(err)
	}
	perOwner := map[string]int{}
	for key := uint64(0); key < 2000; key++ {
		perOwner[tab.Owner(key).Name]++
	}
	for _, m := range members3() {
		if perOwner[m.Name] < 200 {
			t.Fatalf("member %s owns only %d of 2000 keys — placement badly skewed: %v", m.Name, perOwner[m.Name], perOwner)
		}
	}

	for _, dead := range []string{"n1", "n2", "n3"} {
		shrunk, err := tab.WithoutMember(dead)
		if err != nil {
			t.Fatal(err)
		}
		if shrunk.Epoch != tab.Epoch+1 {
			t.Fatalf("WithoutMember epoch = %d, want %d", shrunk.Epoch, tab.Epoch+1)
		}
		for key := uint64(0); key < 2000; key++ {
			before := tab.Owner(key).Name
			after := shrunk.Owner(key).Name
			if before != dead {
				if after != before {
					t.Fatalf("key %d moved %s→%s although %s died", key, before, after, dead)
				}
				continue
			}
			f, ok := tab.Follower(key)
			if !ok {
				t.Fatalf("no follower for key %d on a 3-member table", key)
			}
			if after != f.Name {
				t.Fatalf("key %d owned by dead %s landed on %s, want its follower %s", key, dead, after, f.Name)
			}
		}
	}
}

func TestTableOverrides(t *testing.T) {
	tab, err := NewTable(3, members3(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var key uint64
	for key = 0; tab.Owner(key).Name != "n1"; key++ {
	}
	moved, err := tab.WithOverride(key, "n2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := moved.Owner(key).Name; got != "n2" {
		t.Fatalf("override ignored: owner %s, want n2", got)
	}
	if f, ok := moved.Follower(key); !ok || f.Name == "n2" {
		t.Fatalf("follower of a pinned key must not be its owner: %v %v", f.Name, ok)
	}
	// The pinned owner's death reverts the key to rendezvous placement
	// over the survivors — which is n1, its original owner.
	dead, err := moved.WithoutMember("n2")
	if err != nil {
		t.Fatal(err)
	}
	if got := dead.Owner(key).Name; got != "n1" {
		t.Fatalf("after pinned owner died, key %d landed on %s, want n1", key, got)
	}
	if len(dead.Overrides) != 0 {
		t.Fatalf("dead member's overrides not dropped: %v", dead.Overrides)
	}
	back, err := moved.WithoutOverride(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Owner(key).Name; got != "n1" {
		t.Fatalf("WithoutOverride owner %s, want n1", got)
	}
}

func TestTableBinaryCodecRoundTrip(t *testing.T) {
	tab, err := NewTable(42, members3(), map[uint64]string{5: "n2", 9: "n3"})
	if err != nil {
		t.Fatal(err)
	}
	enc := AppendTable(nil, tab)
	got, err := DecodeTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 42 || len(got.Members) != 3 || len(got.Overrides) != 2 {
		t.Fatalf("decode mismatch: %+v", got)
	}
	if got.Overrides[5] != "n2" || got.Overrides[9] != "n3" {
		t.Fatalf("override mismatch: %v", got.Overrides)
	}
	for key := uint64(0); key < 256; key++ {
		if got.Owner(key).Name != tab.Owner(key).Name {
			t.Fatalf("decoded table routes key %d differently", key)
		}
	}
	if re := AppendTable(nil, got); !bytes.Equal(re, enc) {
		t.Fatal("encode∘decode∘encode is not byte-stable")
	}
}

// TestDecodeTableHostile truncates a valid table at every byte and
// flips the limits; every input must come back as an error, never a
// panic or a partial table.
func TestDecodeTableHostile(t *testing.T) {
	tab, err := NewTable(7, members3(), map[uint64]string{1: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	enc := AppendTable(nil, tab)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeTable(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := DecodeTable(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab, err := NewTable(9, members3(), map[uint64]string{3: "n3"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || len(got.Members) != 3 || got.Overrides[3] != "n3" {
		t.Fatalf("JSON roundtrip mismatch: %+v", got)
	}
	if got.Owner(3).Name != "n3" {
		t.Fatal("unmarshalled table lost its index")
	}
	var bad Table
	if err := json.Unmarshal([]byte(`{"epoch":1,"members":[]}`), &bad); err == nil {
		t.Fatal("JSON with no members accepted")
	}
}
