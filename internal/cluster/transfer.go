package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"dpd/internal/wire"
)

// DPDT transfer plane: the node-to-node channel that ships portable
// detector state. Each node listens on its Member.Transfer address; a
// connection starts with a fixed preamble, then length-prefixed frames
// (internal/wire framing, same as the ingest plane):
//
//	preamble: "DPDT" | version u8 (=1)
//
//	hello    (kind 1): epoch uvarint | sender name (remaining bytes)
//	handoff  (kind 2): key uvarint | engine checkpoint (remaining bytes)
//	replica  (kind 3): key uvarint | epoch uvarint | engine checkpoint (remaining bytes)
//	table    (kind 4): routing table (AppendTable layout)
//	barrier  (kind 5): token uvarint
//	ok       (kind 6): token uvarint
//	error    (kind 7): message (remaining bytes, UTF-8)
//	terminator: zero-length frame
//
// The first frame on a connection must be hello; the receiver rejects
// a sender whose epoch is below its own (epoch skew — a stale node
// must refetch the table before it may ship state). Handoff frames
// stage streams for attach on the receiver (migration) and a table
// frame stages a topology install; the terminator commits both
// together, so a connection that dies mid-transfer leaves nothing
// applied. Replica frames update the receiver's standby store as they
// arrive (follower replication); each carries the routing epoch the
// sender held when it shipped, and the receiver drops frames older
// than the newest it holds for that key — a stale previous owner's
// in-flight round can never overwrite the current owner's replica.
// The receiver speaks only ok/error frames: ok answers a barrier
// (echoing its token) and a terminator (token 0); error carries a
// reason and ends the connection with nothing committed.
//
// A zero-stream transfer — hello, table, terminator, with no handoff
// frames — is valid and is how a topology change propagates over the
// transfer plane without moving state.
//
// The codec below follows the wire contract: decoders never panic or
// over-read on hostile input, and every length is checked against a
// limit before allocation.

// Transfer-plane constants.
const (
	// transferMagic heads every transfer connection.
	transferMagic = "DPDT"
	// transferVersion is the protocol version after the magic.
	transferVersion = 1
	// MaxTransferFrame bounds one transfer frame; engine checkpoints
	// dominate, so this matches the pool's per-stream frame bound.
	MaxTransferFrame = 1 << 30
)

// Transfer frame kinds.
const (
	// KindHello identifies the sender and its routing epoch.
	KindHello uint8 = 1
	// KindHandoff ships one stream's state for migration (staged until
	// the terminator commits).
	KindHandoff uint8 = 2
	// KindReplica ships one stream's state for standby replication,
	// stamped with the sender's routing epoch.
	KindReplica uint8 = 3
	// KindTable stages a routing table for install at the terminator.
	KindTable uint8 = 4
	// KindBarrier asks the receiver to acknowledge everything before it.
	KindBarrier uint8 = 5
	// KindOK acknowledges a barrier (echoed token) or a terminator.
	KindOK uint8 = 6
	// KindTransferErr carries the receiver's reason for aborting.
	KindTransferErr uint8 = 7
)

// TransferFrame is one decoded transfer-plane frame. Which fields are
// meaningful depends on Kind; State aliases the decode payload and
// must be copied if retained past the next read.
type TransferFrame struct {
	// Kind is the frame kind (KindHello..KindTransferErr).
	Kind uint8
	// Key is the stream key of a handoff/replica frame.
	Key uint64
	// State is the engine checkpoint of a handoff/replica frame
	// (aliases the payload).
	State []byte
	// Epoch is a hello or replica frame's sender epoch.
	Epoch uint64
	// Token is a barrier/ok token.
	Token uint64
	// Name is a hello frame's sender name.
	Name string
	// Msg is an error frame's message.
	Msg string
	// Table is a table frame's decoded routing table.
	Table *Table
}

// AppendTransferPreamble appends the connection preamble.
func AppendTransferPreamble(dst []byte) []byte {
	dst = append(dst, transferMagic...)
	return append(dst, transferVersion)
}

// readTransferPreamble consumes and validates the preamble.
func readTransferPreamble(br *bufio.Reader) error {
	var hdr [5]byte
	for i := range hdr {
		b, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("cluster: transfer preamble: %w", err)
		}
		hdr[i] = b
	}
	if string(hdr[:4]) != transferMagic {
		return fmt.Errorf("cluster: transfer preamble: bad magic %q", hdr[:4])
	}
	if hdr[4] != transferVersion {
		return fmt.Errorf("cluster: transfer preamble: unsupported version %d", hdr[4])
	}
	return nil
}

// AppendHello appends a hello frame (framed).
func AppendHello(dst []byte, name string, epoch uint64) []byte {
	p := make([]byte, 0, 2+10+len(name))
	p = append(p, KindHello)
	p = wire.AppendUvarint(p, epoch)
	p = append(p, name...)
	return wire.AppendFrame(dst, p)
}

// AppendHandoff appends a migration handoff frame (framed).
func AppendHandoff(dst []byte, key uint64, state []byte) []byte {
	p := make([]byte, 0, 1+10+len(state))
	p = append(p, KindHandoff)
	p = wire.AppendUvarint(p, key)
	p = append(p, state...)
	return wire.AppendFrame(dst, p)
}

// AppendReplica appends a replication frame stamped with the sender's
// routing epoch (framed).
func AppendReplica(dst []byte, key, epoch uint64, state []byte) []byte {
	p := make([]byte, 0, 1+20+len(state))
	p = append(p, KindReplica)
	p = wire.AppendUvarint(p, key)
	p = wire.AppendUvarint(p, epoch)
	p = append(p, state...)
	return wire.AppendFrame(dst, p)
}

// AppendTableFrame appends a table frame (framed).
func AppendTableFrame(dst []byte, t *Table) []byte {
	p := make([]byte, 0, 64)
	p = append(p, KindTable)
	p = AppendTable(p, t)
	return wire.AppendFrame(dst, p)
}

// AppendBarrier appends a barrier frame (framed).
func AppendBarrier(dst []byte, token uint64) []byte {
	var p [11]byte
	b := append(p[:0], KindBarrier)
	b = wire.AppendUvarint(b, token)
	return wire.AppendFrame(dst, b)
}

// AppendOK appends an ok frame (framed).
func AppendOK(dst []byte, token uint64) []byte {
	var p [11]byte
	b := append(p[:0], KindOK)
	b = wire.AppendUvarint(b, token)
	return wire.AppendFrame(dst, b)
}

// AppendTransferErr appends an error frame (framed).
func AppendTransferErr(dst []byte, msg string) []byte {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, KindTransferErr)
	p = append(p, msg...)
	return wire.AppendFrame(dst, p)
}

// DecodeTransferFrame decodes one transfer frame payload into f. It
// never panics or over-reads on hostile input; unknown kinds and
// malformed payloads return an error. f.State and f.Table retain no
// reference to long-lived decoder state, but State aliases payload.
func DecodeTransferFrame(payload []byte, f *TransferFrame) error {
	*f = TransferFrame{}
	d := wire.NewDec(payload)
	if !d.Need(1) {
		return fmt.Errorf("cluster: transfer frame: empty payload")
	}
	f.Kind = d.U8()
	switch f.Kind {
	case KindHello:
		f.Epoch = d.Uvarint()
		if d.Err() != nil {
			return fmt.Errorf("cluster: hello frame: %w", d.Err())
		}
		rest := payload[d.Offset():]
		if len(rest) == 0 || len(rest) > MaxAddrLen {
			return fmt.Errorf("cluster: hello frame: sender name length %d outside [1,%d]", len(rest), MaxAddrLen)
		}
		f.Name = string(rest)
	case KindHandoff, KindReplica:
		f.Key = d.Uvarint()
		if f.Kind == KindReplica {
			f.Epoch = d.Uvarint()
		}
		if d.Err() != nil {
			return fmt.Errorf("cluster: keyed frame: %w", d.Err())
		}
		f.State = payload[d.Offset():]
		if len(f.State) == 0 {
			return fmt.Errorf("cluster: keyed frame for stream %d has no state", f.Key)
		}
	case KindTable:
		t, err := DecodeTable(payload[1:])
		if err != nil {
			return err
		}
		f.Table = t
	case KindBarrier, KindOK:
		f.Token = d.Uvarint()
		if d.Err() != nil {
			return fmt.Errorf("cluster: token frame: %w", d.Err())
		}
		if d.Remaining() != 0 {
			return fmt.Errorf("cluster: token frame has %d trailing bytes", d.Remaining())
		}
	case KindTransferErr:
		f.Msg = string(payload[1:])
	default:
		return fmt.Errorf("cluster: unknown transfer frame kind %d", f.Kind)
	}
	return nil
}

// transferConn is the sender side of one transfer connection: staged
// framed writes, one reused read buffer, deadline-bounded awaits.
type transferConn struct {
	nc      net.Conn
	br      *bufio.Reader
	wbuf    []byte
	rbuf    []byte
	fr      TransferFrame
	timeout time.Duration
}

// dialTransfer opens a transfer connection and stages the preamble and
// hello; nothing is written until the first flush.
func dialTransfer(addr, self string, epoch uint64, timeout time.Duration) (*transferConn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	tc := &transferConn{nc: nc, br: bufio.NewReaderSize(nc, 64<<10), timeout: timeout}
	tc.wbuf = AppendTransferPreamble(tc.wbuf)
	tc.wbuf = AppendHello(tc.wbuf, self, epoch)
	return tc, nil
}

// flush writes the staged frames under the write deadline.
func (tc *transferConn) flush() error {
	if len(tc.wbuf) == 0 {
		return nil
	}
	tc.nc.SetWriteDeadline(time.Now().Add(tc.timeout))
	_, err := tc.nc.Write(tc.wbuf)
	tc.wbuf = tc.wbuf[:0]
	return err
}

// awaitOK flushes, then blocks for an ok frame with the given token.
// An error frame surfaces as a Go error; so does any other frame.
func (tc *transferConn) awaitOK(token uint64) error {
	if err := tc.flush(); err != nil {
		return err
	}
	tc.nc.SetReadDeadline(time.Now().Add(tc.timeout))
	payload, err := wire.ReadFrame(tc.br, MaxTransferFrame, tc.rbuf)
	if err != nil {
		return err
	}
	if payload == nil {
		return fmt.Errorf("cluster: transfer peer closed before acknowledging")
	}
	tc.rbuf = payload[:cap(payload)]
	if err := DecodeTransferFrame(payload, &tc.fr); err != nil {
		return err
	}
	switch tc.fr.Kind {
	case KindOK:
		if tc.fr.Token != token {
			return fmt.Errorf("cluster: transfer ack token %d, want %d", tc.fr.Token, token)
		}
		return nil
	case KindTransferErr:
		return fmt.Errorf("cluster: transfer peer rejected: %s", tc.fr.Msg)
	default:
		return fmt.Errorf("cluster: unexpected transfer frame kind %d awaiting ack", tc.fr.Kind)
	}
}

// close tears the connection down.
func (tc *transferConn) close() {
	if tc.nc != nil {
		tc.nc.Close()
		tc.nc = nil
	}
}
