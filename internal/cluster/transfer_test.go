package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dpd/internal/pool"
	"dpd/internal/wire"
)

// readOneFrame decodes one framed transfer frame from enc.
func readOneFrame(t *testing.T, enc []byte) TransferFrame {
	t.Helper()
	payload, err := wire.ReadFrame(bytes.NewReader(enc), MaxTransferFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	var f TransferFrame
	if err := DecodeTransferFrame(payload, &f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTransferFrameRoundTrip(t *testing.T) {
	if f := readOneFrame(t, AppendHello(nil, "node-a", 17)); f.Kind != KindHello || f.Name != "node-a" || f.Epoch != 17 {
		t.Fatalf("hello roundtrip: %+v", f)
	}
	state := []byte{1, 2, 3, 4}
	if f := readOneFrame(t, AppendHandoff(nil, 99, state)); f.Kind != KindHandoff || f.Key != 99 || !bytes.Equal(f.State, state) {
		t.Fatalf("handoff roundtrip: %+v", f)
	}
	if f := readOneFrame(t, AppendReplica(nil, 7, 21, state)); f.Kind != KindReplica || f.Key != 7 || f.Epoch != 21 || !bytes.Equal(f.State, state) {
		t.Fatalf("replica roundtrip: %+v", f)
	}
	tab, err := NewTable(3, members3(), map[uint64]string{11: "n2"})
	if err != nil {
		t.Fatal(err)
	}
	if f := readOneFrame(t, AppendTableFrame(nil, tab)); f.Kind != KindTable || f.Table == nil || f.Table.Epoch != 3 || f.Table.Overrides[11] != "n2" {
		t.Fatalf("table roundtrip: %+v", f)
	}
	if f := readOneFrame(t, AppendBarrier(nil, 5)); f.Kind != KindBarrier || f.Token != 5 {
		t.Fatalf("barrier roundtrip: %+v", f)
	}
	if f := readOneFrame(t, AppendOK(nil, 6)); f.Kind != KindOK || f.Token != 6 {
		t.Fatalf("ok roundtrip: %+v", f)
	}
	if f := readOneFrame(t, AppendTransferErr(nil, "boom")); f.Kind != KindTransferErr || f.Msg != "boom" {
		t.Fatalf("error roundtrip: %+v", f)
	}
}

func TestDecodeTransferFrameHostile(t *testing.T) {
	var f TransferFrame
	cases := [][]byte{
		nil,                     // empty payload
		{KindHello},             // hello with no epoch
		{KindHello, 0x80},       // mid-uvarint epoch
		{KindHello, 1},          // hello with empty name
		{KindHandoff},           // handoff with no key
		{KindHandoff, 0x80},     // mid-uvarint key
		{KindHandoff, 42},       // handoff with empty state
		{KindReplica, 42},       // replica with no epoch or state
		{KindReplica, 42, 3},    // replica with empty state
		{KindReplica, 42, 0x80}, // replica with mid-uvarint epoch
		{KindTable},             // table with no payload
		{KindBarrier},           // barrier with no token
		{KindBarrier, 1, 0xff},  // barrier with trailing byte
		{KindOK, 0x80},          // mid-uvarint token
		{42, 1, 2, 3},           // unknown kind
		{0},                     // kind zero
	}
	longName := append([]byte{KindHello, 1}, bytes.Repeat([]byte{'x'}, MaxAddrLen+1)...)
	cases = append(cases, longName)
	for i, payload := range cases {
		if err := DecodeTransferFrame(payload, &f); err == nil {
			t.Fatalf("hostile payload %d (%x) decoded successfully: %+v", i, payload, f)
		}
	}
}

// testNode boots a pool-backed node with no embedding server — enough
// to exercise the transfer plane in isolation.
func testNode(t *testing.T, self string) (*Node, *pool.Pool) {
	t.Helper()
	p, err := pool.New(pool.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	n, err := NewNode(NodeConfig{
		Self:         self,
		Pool:         p,
		TransferAddr: "127.0.0.1:0",
		DialTimeout:  2 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start(nil)
	t.Cleanup(n.Close)
	return n, p
}

// TestZeroStreamTransfer ships a topology change with no stream state —
// hello, table, terminator — and expects the staged table to commit at
// the terminator.
func TestZeroStreamTransfer(t *testing.T) {
	n, _ := testNode(t, "n1")
	tab, err := NewTable(5, members3(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := dialTransfer(n.TransferAddr(), "n2", 5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	tc.wbuf = AppendTableFrame(tc.wbuf, tab)
	tc.wbuf = wire.AppendFrame(tc.wbuf, nil)
	if err := tc.awaitOK(0); err != nil {
		t.Fatalf("zero-stream transfer rejected: %v", err)
	}
	got := n.Table()
	if got == nil || got.Epoch != 5 {
		t.Fatalf("table not installed by zero-stream transfer: %+v", got)
	}
}

// TestTransferEpochSkewRejected pins the hello check: a sender whose
// epoch is below the receiver's must be turned away before it can ship
// anything.
func TestTransferEpochSkewRejected(t *testing.T) {
	n, _ := testNode(t, "n1")
	tab, err := NewTable(9, members3(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallTable(tab); err != nil {
		t.Fatal(err)
	}
	tc, err := dialTransfer(n.TransferAddr(), "n2", 3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	tc.wbuf = wire.AppendFrame(tc.wbuf, nil)
	err = tc.awaitOK(0)
	if err == nil {
		t.Fatal("stale-epoch sender accepted")
	}
	if !strings.Contains(err.Error(), "epoch skew") {
		t.Fatalf("want epoch-skew rejection, got: %v", err)
	}
}

// TestTransferHandoffAttaches moves real detector state over the wire:
// detach a fed stream from one pool, hand it to a node, and expect the
// receiving pool to continue it byte-identically.
func TestTransferHandoffAttaches(t *testing.T) {
	n, dst := testNode(t, "n1")
	src, err := pool.New(pool.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	const key = 77
	for i := 0; i < 64; i++ {
		src.Feed(key, int64(i%8))
	}
	want, ok := src.Stat(key)
	if !ok {
		t.Fatal("fed stream missing from source pool")
	}
	state, had, err := src.Detach(key, nil)
	if err != nil || !had {
		t.Fatalf("detach: %v %v", err, had)
	}
	tc, err := dialTransfer(n.TransferAddr(), "n2", 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	tc.wbuf = AppendHandoff(tc.wbuf, key, state)
	tc.wbuf = wire.AppendFrame(tc.wbuf, nil)
	if err := tc.awaitOK(0); err != nil {
		t.Fatalf("handoff rejected: %v", err)
	}
	got, ok := dst.Stat(key)
	if !ok {
		t.Fatal("handed-off stream missing from destination pool")
	}
	if got != want {
		t.Fatalf("stream state diverged across handoff:\n got %+v\nwant %+v", got, want)
	}
}

// FuzzTransferFrame throws truncated and mutated transfer frames at the
// decoder. Seeds cut a valid frame of every kind at each layer
// boundary: after the kind byte, mid-uvarint, mid-name, mid-state, and
// inside the table member list. The decoder must never panic, and any
// payload it accepts must re-encode to a frame that decodes to the
// same logical content.
func FuzzTransferFrame(f *testing.F) {
	tab, err := NewTable(6, []Member{
		{Name: "a", Ingest: "i", HTTP: "h", Transfer: "t"},
		{Name: "b", Ingest: "i2", HTTP: "h2", Transfer: "t2"},
	}, map[uint64]string{4: "b"})
	if err != nil {
		f.Fatal(err)
	}
	frames := [][]byte{
		AppendHello(nil, "node-name", 1<<40),
		AppendHandoff(nil, 1<<33, []byte("engine-state-bytes")),
		AppendReplica(nil, 3, 9, []byte{0xff, 0x00, 0x7f}),
		AppendTableFrame(nil, tab),
		AppendBarrier(nil, 1<<50),
		AppendOK(nil, 0),
		AppendTransferErr(nil, "reason text"),
	}
	for _, enc := range frames {
		payload, rerr := wire.ReadFrame(bytes.NewReader(enc), MaxTransferFrame, nil)
		if rerr != nil {
			f.Fatal(rerr)
		}
		f.Add(append([]byte(nil), payload...))
		// Truncate at every byte: this covers the kind boundary, every
		// uvarint byte, and each position inside names, states and the
		// table's member strings.
		for cut := 0; cut < len(payload); cut++ {
			f.Add(append([]byte(nil), payload[:cut]...))
		}
		// And one past-the-end extension per frame.
		f.Add(append(append([]byte(nil), payload...), 0))
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		var fr TransferFrame
		if err := DecodeTransferFrame(payload, &fr); err != nil {
			return
		}
		var re []byte
		switch fr.Kind {
		case KindHello:
			re = AppendHello(nil, fr.Name, fr.Epoch)
		case KindHandoff:
			re = AppendHandoff(nil, fr.Key, fr.State)
		case KindReplica:
			re = AppendReplica(nil, fr.Key, fr.Epoch, fr.State)
		case KindTable:
			re = AppendTableFrame(nil, fr.Table)
		case KindBarrier:
			re = AppendBarrier(nil, fr.Token)
		case KindOK:
			re = AppendOK(nil, fr.Token)
		case KindTransferErr:
			re = AppendTransferErr(nil, fr.Msg)
		}
		payload2, err := wire.ReadFrame(bytes.NewReader(re), MaxTransferFrame, nil)
		if err != nil {
			t.Fatalf("re-encoded frame unreadable: %v", err)
		}
		var fr2 TransferFrame
		if err := DecodeTransferFrame(payload2, &fr2); err != nil {
			t.Fatalf("re-encoded frame undecodable: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Key != fr.Key || fr2.Epoch != fr.Epoch ||
			fr2.Token != fr.Token || fr2.Name != fr.Name || fr2.Msg != fr.Msg ||
			!bytes.Equal(fr2.State, fr.State) {
			t.Fatalf("re-encode not stable:\n got %+v\nwant %+v", fr2, fr)
		}
		if (fr.Table == nil) != (fr2.Table == nil) {
			t.Fatalf("table presence flipped: %+v vs %+v", fr, fr2)
		}
		if fr.Table != nil && fr2.Table.Epoch != fr.Table.Epoch {
			t.Fatalf("table epoch flipped: %d vs %d", fr2.Table.Epoch, fr.Table.Epoch)
		}
	})
}
