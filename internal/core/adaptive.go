package core

import "fmt"

// AdaptivePolicy implements the paper's §3.1/§4 window-management advice:
// start with a large window so that large periodicities can be captured,
// then shrink once a satisfying periodicity is detected (saving per-sample
// cost), and grow back if the lock is lost.
type AdaptivePolicy struct {
	// MinWindow and MaxWindow bound the window size.
	MinWindow, MaxWindow int
	// ShrinkAfter is the number of consecutive locked samples after which
	// the window shrinks to Headroom×period (clamped to the bounds).
	ShrinkAfter int
	// Headroom is the window-to-period ratio kept after shrinking; must be
	// > 1 so the shrunken window can still confirm the period.
	Headroom float64
	// GrowAfter is the number of consecutive unlocked samples after which
	// the window doubles (up to MaxWindow).
	GrowAfter int
}

// DefaultAdaptivePolicy mirrors the paper's settings: initial/maximum
// window 1024 (captures periods up to 1023), minimum 8 (short periods
// need windows below 10), shrink promptly after a stable lock.
func DefaultAdaptivePolicy() AdaptivePolicy {
	return AdaptivePolicy{
		MinWindow:   8,
		MaxWindow:   1024,
		ShrinkAfter: 32,
		Headroom:    2.5,
		GrowAfter:   64,
	}
}

// Validate reports whether the policy is well-formed (bounds ordered,
// counters positive, headroom above 1).
func (p AdaptivePolicy) Validate() error { return p.validate() }

func (p AdaptivePolicy) validate() error {
	if p.MinWindow < 2 || p.MaxWindow < p.MinWindow {
		return fmt.Errorf("core: adaptive bounds [%d,%d] invalid", p.MinWindow, p.MaxWindow)
	}
	if p.ShrinkAfter < 1 || p.GrowAfter < 1 {
		return fmt.Errorf("core: adaptive ShrinkAfter/GrowAfter must be >= 1")
	}
	if p.Headroom <= 1 {
		return fmt.Errorf("core: adaptive headroom %g must be > 1", p.Headroom)
	}
	return nil
}

// target returns the shrunken window for a locked period.
func (p AdaptivePolicy) target(period int) int {
	w := int(p.Headroom*float64(period)) + 1
	if w < p.MinWindow {
		w = p.MinWindow
	}
	if w > p.MaxWindow {
		w = p.MaxWindow
	}
	return w
}

// AdaptiveDetector wraps an EventDetector with the adaptive window policy.
type AdaptiveDetector struct {
	det    *EventDetector
	policy AdaptivePolicy

	lockedRun   int
	unlockedRun int
	resizes     int
}

// NewAdaptiveDetector builds an adaptive detector starting at MaxWindow.
func NewAdaptiveDetector(policy AdaptivePolicy, cfg Config) (*AdaptiveDetector, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	cfg.Window = policy.MaxWindow
	cfg.MaxLag = 0
	det, err := NewEventDetector(cfg)
	if err != nil {
		return nil, err
	}
	return &AdaptiveDetector{det: det, policy: policy}, nil
}

// MustAdaptiveDetector panics on config errors.
func MustAdaptiveDetector(policy AdaptivePolicy, cfg Config) *AdaptiveDetector {
	a, err := NewAdaptiveDetector(policy, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Window returns the current window size.
func (a *AdaptiveDetector) Window() int { return a.det.Window() }

// Resizes returns how many automatic resizes have happened (diagnostics
// and the adaptive-window ablation bench).
func (a *AdaptiveDetector) Resizes() int { return a.resizes }

// Locked returns the currently locked period (0 if none).
func (a *AdaptiveDetector) Locked() int { return a.det.Locked() }

// Detector exposes the wrapped event detector.
func (a *AdaptiveDetector) Detector() *EventDetector { return a.det }

// Feed processes one event, applying the window policy.
func (a *AdaptiveDetector) Feed(v int64) Result {
	r := a.det.Feed(v)
	if r.Locked {
		a.lockedRun++
		a.unlockedRun = 0
		if a.lockedRun == a.policy.ShrinkAfter {
			if w := a.policy.target(r.Period); w < a.det.Window() {
				// Shrink: cheaper per-sample cost while the lock holds.
				if err := a.det.Resize(w); err == nil {
					a.resizes++
				}
			}
		}
	} else {
		a.unlockedRun++
		a.lockedRun = 0
		if a.unlockedRun >= a.policy.GrowAfter && a.det.Window() < a.policy.MaxWindow {
			w := a.det.Window() * 2
			if w > a.policy.MaxWindow {
				w = a.policy.MaxWindow
			}
			// Grow: a periodicity larger than the current window may exist.
			if err := a.det.Resize(w); err == nil {
				a.resizes++
			}
			a.unlockedRun = 0
		}
	}
	return r
}

// Resize manually overrides the window size (paper DPDWindowSize); the
// policy resumes automatic shrinking/growing from the new size. Sizes
// outside the policy bounds are clamped into [MinWindow, MaxWindow].
// Manual overrides are not counted by Resizes, which tracks only the
// policy's automatic decisions.
func (a *AdaptiveDetector) Resize(newWindow int) error {
	if newWindow < a.policy.MinWindow {
		newWindow = a.policy.MinWindow
	}
	if newWindow > a.policy.MaxWindow {
		newWindow = a.policy.MaxWindow
	}
	return a.det.Resize(newWindow)
}

// Reset clears the wrapped detector and restores the maximum window.
func (a *AdaptiveDetector) Reset() {
	a.det.Reset()
	if a.det.Window() != a.policy.MaxWindow {
		_ = a.det.Resize(a.policy.MaxWindow)
	}
	a.lockedRun, a.unlockedRun, a.resizes = 0, 0, 0
}
