package core

import (
	"testing"

	"dpd/internal/series"
)

func TestAdaptiveShrinksAfterStableLock(t *testing.T) {
	p := AdaptivePolicy{MinWindow: 8, MaxWindow: 256, ShrinkAfter: 20, Headroom: 2.5, GrowAfter: 50}
	a := MustAdaptiveDetector(p, Config{})
	if a.Window() != 256 {
		t.Fatalf("initial window=%d, want max 256", a.Window())
	}
	for i := 0; i < 600; i++ {
		a.Feed(int64(i % 5))
	}
	if a.Locked() != 5 {
		t.Fatalf("lock=%d, want 5", a.Locked())
	}
	// Shrunk to ~Headroom·period, clamped at MinWindow.
	if a.Window() != 13 {
		t.Fatalf("window=%d, want int(2.5*5)+1=13", a.Window())
	}
	if a.Resizes() != 1 {
		t.Fatalf("resizes=%d, want 1", a.Resizes())
	}
}

func TestAdaptiveShrinkKeepsLockAndSegmentation(t *testing.T) {
	p := AdaptivePolicy{MinWindow: 8, MaxWindow: 128, ShrinkAfter: 10, Headroom: 3, GrowAfter: 50}
	a := MustAdaptiveDetector(p, Config{})
	var starts []uint64
	for i := 0; i < 500; i++ {
		if r := a.Feed(int64(i % 4)); r.Start {
			starts = append(starts, r.T)
		}
	}
	if len(starts) < 50 {
		t.Fatalf("only %d starts", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != 4 {
			t.Fatalf("starts not spaced by 4 around resize: %v", starts[max(0, i-3):i+1])
		}
	}
}

func TestAdaptiveGrowsOnLockLoss(t *testing.T) {
	p := AdaptivePolicy{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 10, Headroom: 2.5, GrowAfter: 15}
	a := MustAdaptiveDetector(p, Config{})
	// Lock on period 2 and shrink.
	for i := 0; i < 100; i++ {
		a.Feed(int64(i % 2))
	}
	small := a.Window()
	if small >= 64 {
		t.Fatalf("window did not shrink: %d", small)
	}
	// Switch to a period too large for the small window: 20-periodic.
	rng := series.NewRNG(1)
	pat := make([]int64, 20)
	for i := range pat {
		pat[i] = int64(1000 + rng.Intn(1<<20)*0 + i) // distinct
	}
	for i := 0; i < 400; i++ {
		a.Feed(pat[i%20])
	}
	// The window must have grown enough to certify lag 20 (then possibly
	// shrunk again to Headroom·20 = 41 once re-locked).
	if a.Locked() != 20 {
		t.Fatalf("lock=%d, want 20 after growth", a.Locked())
	}
	if w := a.Window(); w <= 20 {
		t.Fatalf("window=%d cannot certify period 20", w)
	}
	if a.Resizes() < 2 {
		t.Fatalf("resizes=%d, want shrink+grow cycles", a.Resizes())
	}
}

func TestAdaptiveWindowNeverExceedsBounds(t *testing.T) {
	p := AdaptivePolicy{MinWindow: 8, MaxWindow: 32, ShrinkAfter: 5, Headroom: 2, GrowAfter: 5}
	a := MustAdaptiveDetector(p, Config{})
	rng := series.NewRNG(77)
	for i := 0; i < 2000; i++ {
		var v int64
		if i/200%2 == 0 {
			v = int64(i % 3) // periodic phase
		} else {
			v = int64(rng.Intn(1000)) // noise phase
		}
		a.Feed(v)
		if w := a.Window(); w < 8 || w > 32 {
			t.Fatalf("window %d escaped bounds at step %d", w, i)
		}
	}
}

func TestAdaptivePolicyValidation(t *testing.T) {
	bad := []AdaptivePolicy{
		{MinWindow: 1, MaxWindow: 64, ShrinkAfter: 1, Headroom: 2, GrowAfter: 1},
		{MinWindow: 16, MaxWindow: 8, ShrinkAfter: 1, Headroom: 2, GrowAfter: 1},
		{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 0, Headroom: 2, GrowAfter: 1},
		{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 1, Headroom: 1, GrowAfter: 1},
		{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 1, Headroom: 2, GrowAfter: 0},
	}
	for i, p := range bad {
		if _, err := NewAdaptiveDetector(p, Config{}); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
}

func TestAdaptiveDefaultPolicyIsValid(t *testing.T) {
	if _, err := NewAdaptiveDetector(DefaultAdaptivePolicy(), Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveReset(t *testing.T) {
	p := AdaptivePolicy{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 5, Headroom: 2, GrowAfter: 10}
	a := MustAdaptiveDetector(p, Config{})
	for i := 0; i < 200; i++ {
		a.Feed(int64(i % 2))
	}
	a.Reset()
	if a.Window() != 64 || a.Locked() != 0 || a.Resizes() != 0 {
		t.Fatalf("after reset window=%d lock=%d resizes=%d", a.Window(), a.Locked(), a.Resizes())
	}
}

func TestAdaptiveCheaperAfterShrink(t *testing.T) {
	// The point of shrinking: fewer lag updates per sample. Verify the
	// wrapped detector's MaxLag dropped.
	p := AdaptivePolicy{MinWindow: 8, MaxWindow: 512, ShrinkAfter: 10, Headroom: 2, GrowAfter: 50}
	a := MustAdaptiveDetector(p, Config{})
	for i := 0; i < 600; i++ {
		a.Feed(int64(i % 3))
	}
	if got := a.Detector().MaxLag(); got >= 511 {
		t.Fatalf("MaxLag=%d after shrink, want small", got)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
