package core

import (
	"errors"
	"fmt"

	"dpd/internal/wire"
)

// State checkpoint codec: every engine adapter serializes its complete
// run-time state — the underlying detector's lag banks (via the series
// codecs), its lock/segment fields, and the adapter's own tracking
// counters — behind a per-engine type tag and a format version. A
// restored engine produces byte-identical Result and Stat sequences to
// one that never stopped; the differential tests in codec_test.go pin
// that property for all four engines.
//
// Layout of one engine checkpoint:
//
//	tag u8 | version u8 |
//	structural header (multiscale: ladder windows; adaptive: policy) |
//	detector state (leads with its Config) | track counters
//
// Decoding is built on wire.Dec and never panics, never reads past the
// input, and never allocates more than a small constant factor of the
// input length — a hostile few-byte spec cannot demand a huge bank
// allocation, because every allocation is gated on the input actually
// containing that bank's bulk arrays.

// Engine type tags. The tag is the first byte of an engine checkpoint
// and selects the constructor on restore; it never changes meaning
// across versions.
const (
	// TagEvent marks an EventEngine checkpoint (paper eq. 2).
	TagEvent uint8 = 1
	// TagMagnitude marks a MagnitudeEngine checkpoint (paper eq. 1).
	TagMagnitude uint8 = 2
	// TagMultiScale marks a MultiScaleEngine checkpoint (window ladder).
	TagMultiScale uint8 = 3
	// TagAdaptive marks an AdaptiveEngine checkpoint (managed window).
	TagAdaptive uint8 = 4
)

// StateVersion is the checkpoint format version this build writes; a
// decoder rejects other versions rather than guessing at their layout.
const StateVersion = 1

// maxCounter bounds decoded free-running counters (confirmation runs,
// resize counts) so a corrupted varint cannot smuggle a negative value
// through an int conversion.
const maxCounter = 1 << 31

// StateCodec is the two-method checkpoint surface every engine adapter
// implements, mirroring the series-level codecs: AppendState appends
// the complete engine state to buf (allocation-free when the capacity
// suffices), LoadState restores it and returns the bytes consumed.
type StateCodec interface {
	// AppendState appends the engine's checkpoint to buf.
	AppendState(buf []byte) []byte
	// LoadState restores the engine from a checkpoint produced by
	// AppendState on an engine of the same configuration.
	LoadState(data []byte) (int, error)
}

// Spec identifies the engine kind and construction-time configuration
// of a checkpoint, decoded without restoring any state. Restore uses it
// to rebuild the engine; callers use it to validate that a checkpoint
// matches an expected configuration before adopting it.
type Spec struct {
	// Tag is the engine type tag (TagEvent, TagMagnitude, …).
	Tag uint8
	// Cfg is the detector configuration. For event and magnitude
	// engines all fields are meaningful; for multi-scale and adaptive
	// engines Window and MaxLag are zero (each level / the policy owns
	// the window) and only Confirm, Grace and RelThreshold apply.
	Cfg Config
	// Ladder is the multi-scale window ladder (nil for other engines).
	Ladder []int
	// Policy is the adaptive window policy (zero for other engines).
	Policy AdaptivePolicy
}

// EngineName returns the option-surface name of the engine kind.
func (s Spec) EngineName() string {
	switch s.Tag {
	case TagEvent:
		return "event"
	case TagMagnitude:
		return "magnitude"
	case TagMultiScale:
		return "multiscale"
	case TagAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("engine-tag(%d)", s.Tag)
}

// Equal reports whether two specs describe the same engine kind and
// configuration.
func (s Spec) Equal(o Spec) bool {
	if s.Tag != o.Tag || s.Cfg != o.Cfg || s.Policy != o.Policy || len(s.Ladder) != len(o.Ladder) {
		return false
	}
	for i, w := range s.Ladder {
		if o.Ladder[i] != w {
			return false
		}
	}
	return true
}

// appendConfig appends the five Config fields.
func appendConfig(buf []byte, c Config) []byte {
	buf = wire.AppendUint(buf, c.Window)
	buf = wire.AppendUint(buf, c.MaxLag)
	buf = wire.AppendUint(buf, c.Confirm)
	buf = wire.AppendUint(buf, c.Grace)
	buf = wire.AppendF64(buf, c.RelThreshold)
	return buf
}

// decodeConfig reads a Config and validates it through the same rules
// as construction, so a decoded configuration is always one a
// constructor would accept.
func decodeConfig(d *wire.Dec) (Config, error) {
	var c Config
	c.Window = d.Uint(MaxWindow)
	c.MaxLag = d.Uint(MaxWindow)
	c.Confirm = d.Uint(maxCounter)
	c.Grace = d.Uint(maxCounter)
	c.RelThreshold = d.F64()
	if err := d.Err(); err != nil {
		return c, err
	}
	c, err := c.withDefaults()
	if err != nil {
		return c, err
	}
	return c, nil
}

// appendPolicy appends the five AdaptivePolicy fields.
func appendPolicy(buf []byte, p AdaptivePolicy) []byte {
	buf = wire.AppendUint(buf, p.MinWindow)
	buf = wire.AppendUint(buf, p.MaxWindow)
	buf = wire.AppendUint(buf, p.ShrinkAfter)
	buf = wire.AppendUint(buf, p.GrowAfter)
	buf = wire.AppendF64(buf, p.Headroom)
	return buf
}

// decodePolicy reads and validates an AdaptivePolicy.
func decodePolicy(d *wire.Dec) (AdaptivePolicy, error) {
	var p AdaptivePolicy
	p.MinWindow = d.Uint(MaxWindow)
	p.MaxWindow = d.Uint(MaxWindow)
	p.ShrinkAfter = d.Uint(maxCounter)
	p.GrowAfter = d.Uint(maxCounter)
	p.Headroom = d.F64()
	if err := d.Err(); err != nil {
		return p, err
	}
	if err := p.validate(); err != nil {
		return p, err
	}
	return p, nil
}

// countBankBytes is the bulk-array size of an event lag bank's encoded
// state for a configuration: the allocation gate used before any
// geometry-changing restore.
func countBankBytes(c Config) int {
	wpl := (c.MaxLag + 63) / 64
	return 8 * (c.Window*wpl + wpl + c.MaxLag)
}

// sumBankBytes is the bulk-array size of a magnitude lag bank's encoded
// state for a configuration.
func sumBankBytes(c Config) int {
	return 8 * (c.MaxLag*c.Window + c.MaxLag)
}

// AppendState appends the detector's full state: configuration, lag
// bank, and the lock/segmentation fields.
func (d *EventDetector) AppendState(buf []byte) []byte {
	buf = appendConfig(buf, d.cfg)
	buf = d.bank.AppendState(buf)
	buf = appendBool(buf, d.locked)
	buf = wire.AppendUint(buf, d.period)
	buf = wire.AppendUvarint(buf, d.anchor)
	buf = wire.AppendUint(buf, d.graceLeft)
	buf = wire.AppendUvarint(buf, d.t)
	return buf
}

// LoadState restores the detector from data, returning the bytes
// consumed. The encoded configuration replaces the receiver's when they
// differ (the adaptive engine checkpoints mid-resize windows); the bank
// is reallocated only after the input is verified to actually carry a
// bank of that geometry. On error the receiver's state is unspecified —
// restore into a fresh detector.
func (d *EventDetector) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	cfg, err := decodeConfig(dec)
	if err != nil {
		return 0, fmt.Errorf("core: event state config: %w", err)
	}
	if cfg != d.cfg {
		if dec.Remaining() < countBankBytes(cfg) {
			return 0, fmt.Errorf("%w: event state shorter than its declared %d-byte bank", wire.ErrTruncated, countBankBytes(cfg))
		}
		d.cfg = cfg
		d.alloc()
	}
	n, err := d.bank.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	locked := decodeBool(dec)
	period := dec.Uint(cfg.MaxLag)
	anchor := dec.Uvarint()
	graceLeft := dec.Uint(cfg.Grace)
	t := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: event state: %w", err)
	}
	if locked && period < 1 {
		return 0, errors.New("core: event state locked without a period")
	}
	d.locked, d.period, d.anchor, d.graceLeft, d.t = locked, period, anchor, graceLeft, t
	return dec.Offset(), nil
}

// AppendState appends the detector's full state: configuration, lag
// bank, magnitude-scale EWMA, and the candidate/lock fields.
func (d *MagnitudeDetector) AppendState(buf []byte) []byte {
	buf = appendConfig(buf, d.cfg)
	buf = d.bank.AppendState(buf)
	buf = d.scale.AppendState(buf)
	buf = wire.AppendUint(buf, d.lastCand)
	buf = wire.AppendUint(buf, d.candRun)
	buf = appendBool(buf, d.locked)
	buf = wire.AppendUint(buf, d.period)
	buf = wire.AppendUvarint(buf, d.anchor)
	buf = wire.AppendUint(buf, d.graceLeft)
	buf = wire.AppendF64(buf, d.conf)
	buf = wire.AppendUvarint(buf, d.t)
	return buf
}

// LoadState restores the detector from data; see EventDetector.LoadState
// for the reallocation and error contract.
func (d *MagnitudeDetector) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	cfg, err := decodeConfig(dec)
	if err != nil {
		return 0, fmt.Errorf("core: magnitude state config: %w", err)
	}
	if cfg != d.cfg {
		if dec.Remaining() < sumBankBytes(cfg) {
			return 0, fmt.Errorf("%w: magnitude state shorter than its declared %d-byte bank", wire.ErrTruncated, sumBankBytes(cfg))
		}
		d.cfg = cfg
		d.alloc()
	}
	n, err := d.bank.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	n, err = d.scale.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	lastCand := dec.Uint(cfg.MaxLag)
	candRun := dec.Uint(maxCounter)
	locked := decodeBool(dec)
	period := dec.Uint(cfg.MaxLag)
	anchor := dec.Uvarint()
	graceLeft := dec.Uint(cfg.Grace)
	conf := dec.F64()
	t := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: magnitude state: %w", err)
	}
	if locked && period < 1 {
		return 0, errors.New("core: magnitude state locked without a period")
	}
	d.lastCand, d.candRun = lastCand, candRun
	d.locked, d.period, d.anchor, d.graceLeft, d.conf = locked, period, anchor, graceLeft, conf
	d.t = t
	return dec.Offset(), nil
}

// AppendState appends the ladder's full state: every level's detector
// state, the dormant-level replay buffer, and the wake cursor.
func (ms *MultiScaleDetector) AppendState(buf []byte) []byte {
	buf = wire.AppendUint(buf, len(ms.levels))
	for _, det := range ms.levels {
		buf = det.AppendState(buf)
	}
	buf = wire.AppendUint(buf, ms.awake)
	buf = wire.AppendUint(buf, len(ms.pend))
	buf = wire.AppendI64s(buf, ms.pend)
	buf = wire.AppendUvarint(buf, ms.t)
	return buf
}

// LoadState restores the ladder from data. The level count and every
// level's window must match the receiver's construction: the ladder's
// structure is configuration, not state.
func (ms *MultiScaleDetector) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	n := dec.Uint(MaxWindow)
	if dec.Err() == nil && n != len(ms.levels) {
		return 0, fmt.Errorf("core: ladder of %d levels cannot load state of %d levels", len(ms.levels), n)
	}
	for i, det := range ms.levels {
		want := det.Window()
		consumed, err := det.LoadState(data[dec.Offset():])
		if err != nil {
			return 0, fmt.Errorf("core: ladder level %d: %w", i, err)
		}
		if det.Window() != want {
			return 0, fmt.Errorf("core: ladder level %d state has window %d, construction says %d", i, det.Window(), want)
		}
		dec.Bytes(consumed)
	}
	awake := dec.Uint(len(ms.levels))
	npend := dec.Uint(cap(ms.pend))
	pend := ms.pend[:npend]
	dec.I64s(pend)
	t := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: ladder state: %w", err)
	}
	ms.awake = awake
	ms.pend = pend
	ms.t = t
	return dec.Offset(), nil
}

// AppendState appends the adaptive detector's full state: the wrapped
// event detector (including its current, possibly policy-shrunken
// configuration) and the policy's run counters.
func (a *AdaptiveDetector) AppendState(buf []byte) []byte {
	buf = a.det.AppendState(buf)
	buf = wire.AppendUint(buf, a.lockedRun)
	buf = wire.AppendUint(buf, a.unlockedRun)
	buf = wire.AppendUint(buf, a.resizes)
	return buf
}

// LoadState restores the adaptive detector from data. The policy itself
// is construction configuration and is not decoded here; the wrapped
// detector adopts the checkpoint's current window.
func (a *AdaptiveDetector) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	consumed, err := a.det.LoadState(data)
	if err != nil {
		return 0, err
	}
	dec.Bytes(consumed)
	lockedRun := dec.Uint(maxCounter)
	unlockedRun := dec.Uint(maxCounter)
	resizes := dec.Uint(maxCounter)
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: adaptive state: %w", err)
	}
	a.lockedRun, a.unlockedRun, a.resizes = lockedRun, unlockedRun, resizes
	return dec.Offset(), nil
}

// appendTrack appends the adapter-level segmentation counters.
func (tr *track) appendState(buf []byte) []byte {
	buf = appendBool(buf, tr.locked)
	buf = wire.AppendUint(buf, tr.period)
	buf = wire.AppendUvarint(buf, tr.starts)
	buf = wire.AppendUvarint(buf, tr.lastStart)
	return buf
}

// loadState restores the adapter-level counters; the observer
// registration (and its scratch) is runtime wiring, not state.
func (tr *track) loadState(dec *wire.Dec) {
	tr.locked = decodeBool(dec)
	tr.period = dec.Uint(MaxWindow)
	tr.starts = dec.Uvarint()
	tr.lastStart = dec.Uvarint()
}

// appendHeader appends the engine tag and format version.
func appendHeader(buf []byte, tag uint8) []byte {
	return wire.AppendU8(wire.AppendU8(buf, tag), StateVersion)
}

// decodeHeader reads and validates the engine tag and format version.
func decodeHeader(dec *wire.Dec) (uint8, error) {
	tag := dec.U8()
	version := dec.U8()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	if tag < TagEvent || tag > TagAdaptive {
		return 0, fmt.Errorf("core: unknown engine tag %d", tag)
	}
	if version != StateVersion {
		return 0, fmt.Errorf("core: unsupported state format version %d (this build reads version %d)", version, StateVersion)
	}
	return tag, nil
}

// expectTag verifies that a checkpoint targets the receiver's engine.
func expectTag(dec *wire.Dec, want uint8) error {
	tag, err := decodeHeader(dec)
	if err != nil {
		return err
	}
	if tag != want {
		return fmt.Errorf("core: checkpoint is for the %s engine, not %s", Spec{Tag: tag}.EngineName(), Spec{Tag: want}.EngineName())
	}
	return nil
}

// AppendState implements StateCodec: tag, version, detector state,
// tracking counters.
func (e *EventEngine) AppendState(buf []byte) []byte {
	buf = appendHeader(buf, TagEvent)
	buf = e.det.AppendState(buf)
	return e.tr.appendState(buf)
}

// LoadState implements StateCodec.
func (e *EventEngine) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	if err := expectTag(dec, TagEvent); err != nil {
		return 0, err
	}
	n, err := e.det.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	e.tr.loadState(dec)
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: event engine state: %w", err)
	}
	return dec.Offset(), nil
}

// AppendState implements StateCodec.
func (e *MagnitudeEngine) AppendState(buf []byte) []byte {
	buf = appendHeader(buf, TagMagnitude)
	buf = e.det.AppendState(buf)
	return e.tr.appendState(buf)
}

// LoadState implements StateCodec.
func (e *MagnitudeEngine) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	if err := expectTag(dec, TagMagnitude); err != nil {
		return 0, err
	}
	n, err := e.det.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	e.tr.loadState(dec)
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: magnitude engine state: %w", err)
	}
	return dec.Offset(), nil
}

// AppendState implements StateCodec: the structural header carries the
// ladder windows so Restore can rebuild the levels before loading them.
func (e *MultiScaleEngine) AppendState(buf []byte) []byte {
	buf = appendHeader(buf, TagMultiScale)
	buf = wire.AppendUint(buf, e.ms.Levels())
	for i := 0; i < e.ms.Levels(); i++ {
		buf = wire.AppendUint(buf, e.ms.Level(i).Window())
	}
	buf = e.ms.AppendState(buf)
	return e.tr.appendState(buf)
}

// LoadState implements StateCodec; the encoded ladder must match the
// receiver's construction.
func (e *MultiScaleEngine) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	if err := expectTag(dec, TagMultiScale); err != nil {
		return 0, err
	}
	windows, err := decodeLadder(dec)
	if err != nil {
		return 0, err
	}
	if len(windows) != e.ms.Levels() {
		return 0, fmt.Errorf("core: checkpoint ladder has %d levels, engine has %d", len(windows), e.ms.Levels())
	}
	for i, w := range windows {
		if w != e.ms.Level(i).Window() {
			return 0, fmt.Errorf("core: checkpoint ladder level %d has window %d, engine has %d", i, w, e.ms.Level(i).Window())
		}
	}
	n, err := e.ms.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	e.tr.loadState(dec)
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: multiscale engine state: %w", err)
	}
	return dec.Offset(), nil
}

// AppendState implements StateCodec: the structural header carries the
// window policy so Restore can rebuild the wrapper before loading it.
func (e *AdaptiveEngine) AppendState(buf []byte) []byte {
	buf = appendHeader(buf, TagAdaptive)
	buf = appendPolicy(buf, e.a.policy)
	buf = e.a.AppendState(buf)
	return e.tr.appendState(buf)
}

// LoadState implements StateCodec; the encoded policy must match the
// receiver's construction.
func (e *AdaptiveEngine) LoadState(data []byte) (int, error) {
	dec := wire.NewDec(data)
	if err := expectTag(dec, TagAdaptive); err != nil {
		return 0, err
	}
	policy, err := decodePolicy(dec)
	if err != nil {
		return 0, err
	}
	if policy != e.a.policy {
		return 0, fmt.Errorf("core: checkpoint policy %+v does not match engine policy %+v", policy, e.a.policy)
	}
	n, err := e.a.LoadState(data[dec.Offset():])
	if err != nil {
		return 0, err
	}
	dec.Bytes(n)
	e.tr.loadState(dec)
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("core: adaptive engine state: %w", err)
	}
	return dec.Offset(), nil
}

// decodeLadder reads the multi-scale structural header: a level count
// and strictly increasing windows, validated like construction.
func decodeLadder(dec *wire.Dec) ([]int, error) {
	n := dec.Uint(MaxWindow)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errors.New("core: checkpoint has an empty window ladder")
	}
	// Each window costs at least one encoded byte, so gating on n bytes
	// bounds the slice allocation by the input length.
	if !dec.Need(n) {
		return nil, dec.Err()
	}
	windows := make([]int, n)
	prev := 1
	for i := range windows {
		w := dec.Uint(MaxWindow)
		if err := dec.Err(); err != nil {
			return nil, err
		}
		if w <= prev {
			return nil, fmt.Errorf("core: checkpoint ladder windows not strictly increasing at level %d", i)
		}
		windows[i] = w
		prev = w
	}
	return windows, nil
}

// AppendCheckpoint appends a complete engine checkpoint for d to buf.
// It fails only when d is not one of the four engine adapters (an
// injected custom Detector implementation has no codec). With
// sufficient buffer capacity the append performs no allocation.
func AppendCheckpoint(d Detector, buf []byte) ([]byte, error) {
	c, ok := d.(StateCodec)
	if !ok {
		return nil, fmt.Errorf("core: detector type %T has no state codec; only the built-in engines are checkpointable", d)
	}
	return c.AppendState(buf), nil
}

// DecodeSpec reads the engine kind and construction configuration of a
// checkpoint without restoring state. For multi-scale and adaptive
// checkpoints, the shared Confirm/Grace/RelThreshold settings are
// lifted from the first embedded detector configuration.
func DecodeSpec(data []byte) (Spec, error) {
	dec := wire.NewDec(data)
	tag, err := decodeHeader(dec)
	if err != nil {
		return Spec{}, err
	}
	spec := Spec{Tag: tag}
	switch tag {
	case TagMultiScale:
		if spec.Ladder, err = decodeLadder(dec); err != nil {
			return Spec{}, err
		}
		// Skip the ladder state's own level count to land on the first
		// level's embedded detector configuration.
		dec.Uint(MaxWindow)
	case TagAdaptive:
		if spec.Policy, err = decodePolicy(dec); err != nil {
			return Spec{}, err
		}
	}
	cfg, err := decodeConfig(dec)
	if err != nil {
		return Spec{}, fmt.Errorf("core: checkpoint config: %w", err)
	}
	if tag == TagMultiScale || tag == TagAdaptive {
		// The embedded config's window belongs to the level / the
		// current policy state, not to the construction surface.
		cfg.Window, cfg.MaxLag = 0, 0
	}
	spec.Cfg = cfg
	return spec, nil
}

// RestoreCheckpoint rebuilds an engine from a checkpoint produced by
// AppendCheckpoint: decode the spec, construct a fresh engine of that
// configuration, and load the state into it. Construction allocations
// are gated on the input actually containing the encoded banks, so a
// corrupted spec cannot demand absurd memory.
func RestoreCheckpoint(data []byte) (Detector, error) {
	spec, err := DecodeSpec(data)
	if err != nil {
		return nil, err
	}
	dec := wire.NewDec(data)
	if _, err := decodeHeader(dec); err != nil {
		return nil, err
	}
	var eng Detector
	switch spec.Tag {
	case TagEvent:
		if dec.Remaining() < countBankBytes(spec.Cfg) {
			return nil, fmt.Errorf("%w: event checkpoint shorter than its declared bank", wire.ErrTruncated)
		}
		d, err := NewEventDetector(spec.Cfg)
		if err != nil {
			return nil, err
		}
		eng = NewEventEngine(d)
	case TagMagnitude:
		if dec.Remaining() < sumBankBytes(spec.Cfg) {
			return nil, fmt.Errorf("%w: magnitude checkpoint shorter than its declared bank", wire.ErrTruncated)
		}
		d, err := NewMagnitudeDetector(spec.Cfg)
		if err != nil {
			return nil, err
		}
		eng = NewMagnitudeEngine(d)
	case TagMultiScale:
		need := 0
		for _, w := range spec.Ladder {
			need += countBankBytes(Config{Window: w, MaxLag: w - 1})
		}
		if dec.Remaining() < need {
			return nil, fmt.Errorf("%w: multiscale checkpoint shorter than its declared %d-byte ladder", wire.ErrTruncated, need)
		}
		d, err := NewMultiScaleDetector(spec.Ladder, spec.Cfg)
		if err != nil {
			return nil, err
		}
		eng = NewMultiScaleEngine(d)
	case TagAdaptive:
		// Peek the inner detector's current configuration and gate the
		// construction on it: an adaptive engine checkpointed after a
		// policy shrink is restored straight at the shrunken window,
		// never through an intermediate MaxWindow-sized allocation.
		pdec := wire.NewDec(data)
		if _, err := decodeHeader(pdec); err != nil {
			return nil, err
		}
		if _, err := decodePolicy(pdec); err != nil {
			return nil, err
		}
		innerCfg, err := decodeConfig(pdec)
		if err != nil {
			return nil, fmt.Errorf("core: adaptive checkpoint inner config: %w", err)
		}
		if pdec.Remaining() < countBankBytes(innerCfg) {
			return nil, fmt.Errorf("%w: adaptive checkpoint shorter than its declared bank", wire.ErrTruncated)
		}
		d, err := NewEventDetector(innerCfg)
		if err != nil {
			return nil, err
		}
		eng = NewAdaptiveEngine(&AdaptiveDetector{det: d, policy: spec.Policy})
	}
	codec := eng.(StateCodec)
	n, err := codec.LoadState(data)
	if err != nil {
		return nil, err
	}
	// A checkpoint is exactly one engine state: trailing bytes mean a
	// corrupted or mis-concatenated blob whose tail would silently be
	// dropped, so reject it loudly.
	if n != len(data) {
		return nil, fmt.Errorf("core: checkpoint has %d trailing bytes after the engine state", len(data)-n)
	}
	return eng, nil
}

// appendBool appends a bool as one byte.
func appendBool(buf []byte, v bool) []byte {
	var b uint8
	if v {
		b = 1
	}
	return wire.AppendU8(buf, b)
}

// decodeBool reads one byte as a bool (any non-zero value is true).
func decodeBool(dec *wire.Dec) bool {
	return dec.U8() != 0
}

// Compile-time conformance: every engine adapter implements StateCodec.
var (
	_ StateCodec = (*EventEngine)(nil)
	_ StateCodec = (*MagnitudeEngine)(nil)
	_ StateCodec = (*MultiScaleEngine)(nil)
	_ StateCodec = (*AdaptiveEngine)(nil)
)
