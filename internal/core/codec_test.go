package core

import (
	"math"
	"testing"
)

// engineCase builds one engine of each kind plus a deterministic sample
// stream that exercises locks, period changes and (for the adaptive
// engine) policy resizes.
type engineCase struct {
	name   string
	build  func(t *testing.T) Detector
	sample func(i int) Sample
}

func codecEngineCases() []engineCase {
	return []engineCase{
		{
			"event",
			func(t *testing.T) Detector {
				d, err := NewEventDetector(Config{Window: 64, Grace: 2})
				if err != nil {
					t.Fatal(err)
				}
				return NewEventEngine(d)
			},
			func(i int) Sample {
				if i%97 == 5 {
					return Sample{Value: int64(1000 + i)} // occasional violation
				}
				return Sample{Value: int64(i % 7)}
			},
		},
		{
			"magnitude",
			func(t *testing.T) Detector {
				d, err := NewMagnitudeDetector(Config{Window: 48, Confirm: 2})
				if err != nil {
					t.Fatal(err)
				}
				return NewMagnitudeEngine(d)
			},
			func(i int) Sample {
				return Sample{Magnitude: 10 + 5*math.Sin(2*math.Pi*float64(i)/11) + 0.01*float64(i%3)}
			},
		},
		{
			"multiscale",
			func(t *testing.T) Detector {
				d, err := NewMultiScaleDetector([]int{8, 32, 128}, Config{})
				if err != nil {
					t.Fatal(err)
				}
				return NewMultiScaleEngine(d)
			},
			func(i int) Sample {
				// Nested structure: inner period 4, outer marker every 64.
				if i%64 == 0 {
					return Sample{Value: 999}
				}
				return Sample{Value: int64(i % 4)}
			},
		},
		{
			"adaptive",
			func(t *testing.T) Detector {
				policy := AdaptivePolicy{MinWindow: 8, MaxWindow: 128, ShrinkAfter: 24, Headroom: 2.5, GrowAfter: 40}
				d, err := NewAdaptiveDetector(policy, Config{Grace: 1})
				if err != nil {
					t.Fatal(err)
				}
				return NewAdaptiveEngine(d)
			},
			func(i int) Sample {
				// Phases: periodic, then noise (forces unlock + regrow),
				// then a different period.
				switch {
				case i < 300:
					return Sample{Value: int64(i % 5)}
				case i < 380:
					return Sample{Value: int64(i * 2654435761)} // noise
				default:
					return Sample{Value: int64(i % 9)}
				}
			},
		},
	}
}

// TestEngineCheckpointRoundTrip is the tentpole differential: at many
// cut points, checkpoint A → restore into B → keep feeding both; every
// subsequent Result and the final Stat must be identical, for all four
// engines.
func TestEngineCheckpointRoundTrip(t *testing.T) {
	const total = 600
	for _, tc := range codecEngineCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, cut := range []int{0, 1, 17, 100, 333, 599} {
				ref := tc.build(t)
				for i := 0; i < cut; i++ {
					ref.Feed(tc.sample(i))
				}
				buf, err := AppendCheckpoint(ref, nil)
				if err != nil {
					t.Fatalf("cut=%d: checkpoint: %v", cut, err)
				}
				restored, err := RestoreCheckpoint(buf)
				if err != nil {
					t.Fatalf("cut=%d: restore: %v", cut, err)
				}
				if got, want := restored.Snapshot(), ref.Snapshot(); got != want {
					t.Fatalf("cut=%d: restored snapshot %+v != %+v", cut, got, want)
				}
				for i := cut; i < total; i++ {
					s := tc.sample(i)
					got, want := restored.Feed(s), ref.Feed(s)
					if got != want {
						t.Fatalf("cut=%d sample=%d: restored result %+v != uninterrupted %+v", cut, i, got, want)
					}
				}
				if got, want := restored.Snapshot(), ref.Snapshot(); got != want {
					t.Fatalf("cut=%d: final snapshot %+v != %+v", cut, got, want)
				}
				if got, want := restored.Window(), ref.Window(); got != want {
					t.Fatalf("cut=%d: window %d != %d", cut, got, want)
				}
			}
		})
	}
}

// TestEngineCheckpointAfterResize: an event engine resized at run time
// checkpoints its current (not construction) configuration, and the
// restored engine continues identically.
func TestEngineCheckpointAfterResize(t *testing.T) {
	d, err := NewEventDetector(Config{Window: 128})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEventEngine(d)
	for i := 0; i < 400; i++ {
		eng.Feed(Sample{Value: int64(i % 6)})
	}
	if err := eng.Resize(32); err != nil {
		t.Fatal(err)
	}
	buf, err := AppendCheckpoint(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := DecodeSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cfg.Window != 32 {
		t.Fatalf("spec window = %d after resize, want 32", spec.Cfg.Window)
	}
	restored, err := RestoreCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s := Sample{Value: int64(i % 6)}
		if got, want := restored.Feed(s), eng.Feed(s); got != want {
			t.Fatalf("sample %d: %+v != %+v", i, got, want)
		}
	}
}

// TestDecodeSpecReportsEngineAndConfig: the spec of each engine's
// checkpoint names its kind and carries its construction configuration.
func TestDecodeSpecReportsEngineAndConfig(t *testing.T) {
	for _, tc := range codecEngineCases() {
		eng := tc.build(t)
		buf, err := AppendCheckpoint(eng, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		spec, err := DecodeSpec(buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if spec.EngineName() != tc.name {
			t.Errorf("spec engine = %q, want %q", spec.EngineName(), tc.name)
		}
		switch tc.name {
		case "event":
			if spec.Cfg.Window != 64 || spec.Cfg.Grace != 2 {
				t.Errorf("event spec cfg = %+v", spec.Cfg)
			}
		case "magnitude":
			if spec.Cfg.Window != 48 || spec.Cfg.Confirm != 2 {
				t.Errorf("magnitude spec cfg = %+v", spec.Cfg)
			}
		case "multiscale":
			if len(spec.Ladder) != 3 || spec.Ladder[2] != 128 || spec.Cfg.Window != 0 {
				t.Errorf("multiscale spec = %+v", spec)
			}
		case "adaptive":
			if spec.Policy.MaxWindow != 128 || spec.Cfg.Grace != 1 || spec.Cfg.Window != 0 {
				t.Errorf("adaptive spec = %+v", spec)
			}
		}
	}
}

// TestLoadStateRejectsWrongEngine: a checkpoint restored into an engine
// of a different kind must error descriptively.
func TestLoadStateRejectsWrongEngine(t *testing.T) {
	evt := NewEventEngine(MustEventDetector(Config{Window: 32}))
	buf := evt.AppendState(nil)
	mag := NewMagnitudeEngine(MustMagnitudeDetector(Config{Window: 32}))
	if _, err := mag.LoadState(buf); err == nil {
		t.Fatal("magnitude engine accepted an event checkpoint")
	}
}

// TestRestoreRejectsVersionSkew: flipping the version byte must produce
// a descriptive error, not a misparse.
func TestRestoreRejectsVersionSkew(t *testing.T) {
	eng := NewEventEngine(MustEventDetector(Config{Window: 32}))
	buf := eng.AppendState(nil)
	buf[1] = 99 // version byte follows the tag
	if _, err := RestoreCheckpoint(buf); err == nil {
		t.Fatal("version-skewed checkpoint accepted")
	}
}

// TestRestoreTruncatedNeverPanics: every prefix of a valid checkpoint
// of every engine must error, never panic.
func TestRestoreTruncatedNeverPanics(t *testing.T) {
	for _, tc := range codecEngineCases() {
		eng := tc.build(t)
		for i := 0; i < 300; i++ {
			eng.Feed(tc.sample(i))
		}
		buf, err := AppendCheckpoint(eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		step := len(buf)/97 + 1
		for cut := 0; cut < len(buf); cut += step {
			if _, err := RestoreCheckpoint(buf[:cut]); err == nil {
				t.Fatalf("%s cut=%d: truncated checkpoint accepted", tc.name, cut)
			}
		}
	}
}

// TestCheckpointReusedBufferIdentical: appending into a reused buffer
// yields the same bytes as a fresh encode (no stale-state leakage).
func TestCheckpointReusedBufferIdentical(t *testing.T) {
	eng := NewEventEngine(MustEventDetector(Config{Window: 64}))
	for i := 0; i < 500; i++ {
		eng.Feed(Sample{Value: int64(i % 5)})
	}
	fresh, err := AppendCheckpoint(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	reused := make([]byte, 0, 2*len(fresh))
	reused, err = AppendCheckpoint(eng, reused)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(reused) {
		t.Fatal("reused-buffer encode differs from fresh encode")
	}
}

// TestAppendCheckpointRejectsForeignDetector: injected custom Detector
// implementations have no codec and must be reported, not mis-encoded.
func TestAppendCheckpointRejectsForeignDetector(t *testing.T) {
	if _, err := AppendCheckpoint(foreignDetector{}, nil); err == nil {
		t.Fatal("foreign detector type accepted")
	}
}

type foreignDetector struct{}

func (foreignDetector) Feed(Sample) Result                      { return Result{} }
func (foreignDetector) FeedAll(v []Sample, d []Result) []Result { return d }
func (foreignDetector) Snapshot() Stat                          { return Stat{} }
func (foreignDetector) Reset()                                  {}
func (foreignDetector) Window() int                             { return 0 }
func (foreignDetector) Resize(int) error                        { return nil }
