package core

import "fmt"

// Default configuration values. The paper reports N = 100 as sufficient
// for most streams, windows down to below 10 for very short periodicities,
// and up to N = 1024 to capture periods of up to 1023 samples (§3.1).
const (
	DefaultWindow       = 100
	DefaultConfirm      = 1
	DefaultGrace        = 0
	DefaultRelThreshold = 0.5
	MaxWindow           = 1 << 16

	// harmonicTol is the depth slack (as a fraction of the curve mean)
	// within which a smaller lag is preferred over a marginally deeper
	// multiple; see Curve.BestFundamentalMinimum.
	harmonicTol = 0.15
)

// Config parameterizes a detector.
type Config struct {
	// Window is the frame size N. Periods up to MaxLag can be detected.
	Window int
	// MaxLag is M in the paper, the largest lag probed; 0 means Window−1.
	// Must satisfy MaxLag ≤ Window (paper: M ≤ N) and MaxLag ≥ 1.
	MaxLag int
	// Confirm is the number of consecutive steps a candidate period must
	// hold before the detector locks. 1 locks immediately on a zero /
	// significant minimum.
	Confirm int
	// Grace is the number of consecutive violating steps tolerated before
	// a locked period is dropped. 0 drops the lock on the first violation.
	Grace int
	// RelThreshold (magnitude metric only) is the fraction of the curve
	// mean a local minimum must stay below to count as a periodicity.
	RelThreshold float64
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Window < 2 || c.Window > MaxWindow {
		return c, fmt.Errorf("core: window %d outside [2,%d]", c.Window, MaxWindow)
	}
	if c.MaxLag == 0 {
		c.MaxLag = c.Window - 1
	}
	if c.MaxLag < 1 || c.MaxLag > c.Window {
		return c, fmt.Errorf("core: max lag %d outside [1,window=%d]", c.MaxLag, c.Window)
	}
	if c.Confirm == 0 {
		c.Confirm = DefaultConfirm
	}
	if c.Confirm < 1 {
		return c, fmt.Errorf("core: confirm %d must be >= 1", c.Confirm)
	}
	if c.Grace < 0 {
		return c, fmt.Errorf("core: grace %d must be >= 0", c.Grace)
	}
	if c.RelThreshold == 0 {
		c.RelThreshold = DefaultRelThreshold
	}
	if c.RelThreshold < 0 || c.RelThreshold > 1 {
		return c, fmt.Errorf("core: relative threshold %g outside [0,1]", c.RelThreshold)
	}
	return c, nil
}

// Result is the per-sample output of a detector, mirroring the paper's
// int DPD(long sample, int *period) interface: Start corresponds to the
// non-zero return value and Period to the reported length.
type Result struct {
	// Locked reports whether a periodicity is currently established.
	Locked bool
	// Period is the locked period in samples (0 when not locked).
	Period int
	// Start is true exactly when the current sample begins a new period,
	// the paper's segmentation signal.
	Start bool
	// Confidence is 1 for exact (event) locks; for magnitude locks it is
	// the prominence of the minimum in [0,1].
	Confidence float64
	// T is the zero-based index of the sample that produced this result.
	T uint64
}
