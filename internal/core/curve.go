package core

import (
	"fmt"
	"math"

	"dpd/internal/series"
)

// Curve is a snapshot of the DPD distance function d(m) for lags
// m = 1..len(D). D[i] holds d(i+1). Lags whose window has not yet filled
// are marked invalid (NaN for magnitude curves, -1 for event curves are
// normalized to NaN here).
type Curve struct {
	// D holds d(m) for m = i+1. NaN marks a lag without a full window yet.
	D []float64
}

// Valid reports whether lag m (1-based) has a fully evaluated distance.
func (c Curve) Valid(m int) bool {
	return m >= 1 && m <= len(c.D) && !math.IsNaN(c.D[m-1])
}

// At returns d(m). It panics if m is out of range.
func (c Curve) At(m int) float64 {
	if m < 1 || m > len(c.D) {
		panic(fmt.Sprintf("core: curve lag %d out of range [1,%d]", m, len(c.D)))
	}
	return c.D[m-1]
}

// MaxLag returns the largest lag the curve covers.
func (c Curve) MaxLag() int { return len(c.D) }

// ZeroLags returns all valid lags with d(m) <= eps, in increasing order.
// For event curves eps is 0; for magnitude curves a small absolute
// tolerance absorbs float drift.
func (c Curve) ZeroLags(eps float64) []int {
	var out []int
	for m := 1; m <= len(c.D); m++ {
		if c.Valid(m) && c.D[m-1] <= eps {
			out = append(out, m)
		}
	}
	return out
}

// Fundamental returns the smallest zero lag, or 0 if none.
func (c Curve) Fundamental(eps float64) int {
	for m := 1; m <= len(c.D); m++ {
		if c.Valid(m) && c.D[m-1] <= eps {
			return m
		}
	}
	return 0
}

// Mean returns the mean of all valid distances (0 if none are valid).
func (c Curve) Mean() float64 {
	var s float64
	n := 0
	for m := 1; m <= len(c.D); m++ {
		if c.Valid(m) {
			s += c.D[m-1]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// ValidCount returns the number of lags with a full window.
func (c Curve) ValidCount() int {
	n := 0
	for m := 1; m <= len(c.D); m++ {
		if c.Valid(m) {
			n++
		}
	}
	return n
}

// LocalMinima returns the valid lags that are strict local minima of d:
// d(m) < d(m−1) and d(m) <= d(m+1). A lag without a valid left neighbor
// never qualifies — on a slowly drifting aperiodic stream d is increasing
// from lag 1, and treating the left boundary as a minimum would lock a
// bogus period 1 (exactly zero lags, including genuine period-1 constant
// runs, are detected separately via ZeroLags/Fundamental). The right
// boundary qualifies when strictly below its left neighbor.
func (c Curve) LocalMinima() []int {
	var out []int
	for m := 2; m <= len(c.D); m++ {
		if !c.Valid(m) || !c.Valid(m-1) {
			continue
		}
		v := c.D[m-1]
		if v >= c.D[m-2] {
			continue
		}
		if m < len(c.D) && c.Valid(m+1) && v > c.D[m] {
			continue
		}
		out = append(out, m)
	}
	return out
}

// BestMinimum returns the deepest local minimum (smallest d; ties resolve
// to the smallest lag, preferring the fundamental over its multiples) and
// whether one exists.
func (c Curve) BestMinimum() (lag int, ok bool) {
	minima := c.LocalMinima()
	if len(minima) == 0 {
		return 0, false
	}
	best := minima[0]
	for _, m := range minima[1:] {
		if c.D[m-1] < c.D[best-1] {
			best = m
		}
	}
	return best, true
}

// BestFundamentalMinimum is BestMinimum with harmonic suppression: on a
// noisy p-periodic stream the minima at p, 2p, 3p… have the same expected
// depth, and sampling noise can make a multiple marginally deeper than the
// fundamental. Among minima whose depth is within tol·mean of the deepest
// one, the smallest lag wins.
func (c Curve) BestFundamentalMinimum(tol float64) (lag int, ok bool) {
	minima := c.LocalMinima()
	if len(minima) == 0 {
		return 0, false
	}
	deepest := minima[0]
	for _, m := range minima[1:] {
		if c.D[m-1] < c.D[deepest-1] {
			deepest = m
		}
	}
	slack := tol * c.Mean()
	best := deepest
	for _, m := range minima {
		if m < best && c.D[m-1] <= c.D[deepest-1]+slack {
			best = m
		}
	}
	return best, true
}

// NaiveCurveL1 computes the paper's eq. (1) distance curve directly from a
// history slice: the window is the last n samples of hist, and for each
// lag m = 1..maxLag, d(m) = (1/n)·Σ_{i} |x[i] − x[i−m]| over the window.
// Lags whose shifted frame would reach before the start of hist are
// marked NaN. This is the O(N·M) reference the incremental detector is
// differential-tested against.
func NaiveCurveL1(hist []float64, n, maxLag int) Curve {
	if n <= 0 || maxLag <= 0 {
		panic(fmt.Sprintf("core: NaiveCurveL1 needs positive n=%d maxLag=%d", n, maxLag))
	}
	d := make([]float64, maxLag)
	end := len(hist)
	start := end - n
	for m := 1; m <= maxLag; m++ {
		if start-m < 0 || start < 0 {
			d[m-1] = math.NaN()
			continue
		}
		var s float64
		for i := start; i < end; i++ {
			s += math.Abs(hist[i] - hist[i-m])
		}
		d[m-1] = s / float64(n)
	}
	return Curve{D: d}
}

// NaiveCurveSign computes the paper's eq. (2) distance curve directly:
// d(m) = 0 if the last n events repeat exactly with lag m, else 1.
// Unavailable lags are NaN.
func NaiveCurveSign(hist []int64, n, maxLag int) Curve {
	if n <= 0 || maxLag <= 0 {
		panic(fmt.Sprintf("core: NaiveCurveSign needs positive n=%d maxLag=%d", n, maxLag))
	}
	d := make([]float64, maxLag)
	end := len(hist)
	start := end - n
	for m := 1; m <= maxLag; m++ {
		if start-m < 0 || start < 0 {
			d[m-1] = math.NaN()
			continue
		}
		v := 0.0
		for i := start; i < end; i++ {
			if hist[i] != hist[i-m] {
				v = 1.0
				break
			}
		}
		d[m-1] = v
	}
	return Curve{D: d}
}

// CurveFromSeries is a convenience for offline analysis (Figure 4): it
// computes the magnitude curve over the final window of a full series.
func CurveFromSeries(xs []float64, window, maxLag int) Curve {
	return NaiveCurveL1(xs, window, maxLag)
}

// Prominence returns how deep lag m's distance sits below the curve mean,
// normalized to [0,1]: 1 − d(m)/mean. Zero or negative means the lag is
// not below average and should not be trusted as a periodicity. Returns 0
// when the mean is 0 (flat curve).
func (c Curve) Prominence(m int) float64 {
	if !c.Valid(m) {
		return 0
	}
	mean := c.Mean()
	if mean <= 0 {
		return 0
	}
	p := 1 - c.At(m)/mean
	if p < 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// OracleFundamental returns the ground-truth fundamental period of the
// last n samples of hist (0 if aperiodic within maxLag). Test helper.
func OracleFundamental(hist []float64, n, maxLag int) int {
	if len(hist) < n {
		n = len(hist)
	}
	return series.FundamentalPeriod(hist[len(hist)-n:], maxLag)
}
