package core

import (
	"math"
	"testing"

	"dpd/internal/series"
)

func TestNaiveCurveL1ExactPeriodic(t *testing.T) {
	// 4-periodic stream: d(4), d(8) must be zero, others positive.
	hist := series.Repeat([]float64{1, 5, 2, 7}, 8) // 32 samples
	c := NaiveCurveL1(hist, 16, 12)
	for m := 1; m <= 12; m++ {
		v := c.At(m)
		if m%4 == 0 {
			if v != 0 {
				t.Errorf("d(%d)=%v, want 0", m, v)
			}
		} else if !(v > 0) {
			t.Errorf("d(%d)=%v, want > 0", m, v)
		}
	}
}

func TestNaiveCurveL1UnavailableLagsAreNaN(t *testing.T) {
	hist := []float64{1, 2, 3, 4, 5, 6}
	c := NaiveCurveL1(hist, 4, 5)
	// window = last 4, start index 2; lag m needs start-m >= 0 → m <= 2.
	for m := 1; m <= 2; m++ {
		if !c.Valid(m) {
			t.Errorf("lag %d should be valid", m)
		}
	}
	for m := 3; m <= 5; m++ {
		if c.Valid(m) {
			t.Errorf("lag %d should be NaN", m)
		}
	}
}

func TestNaiveCurveL1Values(t *testing.T) {
	hist := []float64{0, 0, 0, 3, 0, 3} // window [0,3,0,3]
	c := NaiveCurveL1(hist, 4, 2)
	// lag 1: |0-0|+|3-0|+|0-3|+|3-0| = 9 → 9/4
	if got := c.At(1); math.Abs(got-2.25) > 1e-12 {
		t.Errorf("d(1)=%v, want 2.25", got)
	}
	// lag 2: |0-0|+|3-0|+|0-0|+|3-3| = 3 → 0.75
	if got := c.At(2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("d(2)=%v, want 0.75", got)
	}
}

func TestNaiveCurveSignZeroAndOne(t *testing.T) {
	hist := series.RepeatInt([]int64{10, 20, 30}, 6) // 18 samples, 3-periodic
	c := NaiveCurveSign(hist, 9, 9)
	for m := 1; m <= 9; m++ {
		v := c.At(m)
		if m%3 == 0 {
			if v != 0 {
				t.Errorf("d(%d)=%v, want 0", m, v)
			}
		} else if v != 1 {
			t.Errorf("d(%d)=%v, want 1", m, v)
		}
	}
}

func TestCurveZeroLagsAndFundamental(t *testing.T) {
	c := Curve{D: []float64{1, 0, 1, 0, math.NaN()}}
	zs := c.ZeroLags(0)
	if len(zs) != 2 || zs[0] != 2 || zs[1] != 4 {
		t.Fatalf("ZeroLags=%v, want [2 4]", zs)
	}
	if c.Fundamental(0) != 2 {
		t.Fatalf("Fundamental=%d, want 2", c.Fundamental(0))
	}
}

func TestCurveFundamentalNoneIsZero(t *testing.T) {
	c := Curve{D: []float64{1, 0.5, 0.2}}
	if c.Fundamental(0) != 0 {
		t.Fatal("aperiodic curve must have fundamental 0")
	}
}

func TestCurveMeanSkipsNaN(t *testing.T) {
	c := Curve{D: []float64{2, math.NaN(), 4}}
	if got := c.Mean(); got != 3 {
		t.Fatalf("Mean=%v, want 3", got)
	}
	if c.ValidCount() != 2 {
		t.Fatalf("ValidCount=%d, want 2", c.ValidCount())
	}
	empty := Curve{D: []float64{math.NaN()}}
	if empty.Mean() != 0 {
		t.Fatal("all-NaN mean must be 0")
	}
}

func TestCurveLocalMinimaInterior(t *testing.T) {
	// Clear V shape at lag 3.
	c := Curve{D: []float64{5, 4, 1, 4, 5}}
	ms := c.LocalMinima()
	found := false
	for _, m := range ms {
		if m == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("LocalMinima=%v, want to contain 3", ms)
	}
}

func TestCurveLocalMinimaExcludesBoundaryLagOne(t *testing.T) {
	// Lag 1 has no left neighbor and must never qualify as a local
	// minimum: increasing curves (drifting aperiodic streams) would
	// otherwise lock a bogus period 1. Flat-zero curves are handled by
	// the Fundamental/ZeroLags exact path instead.
	increasing := Curve{D: []float64{1, 2, 3, 4}}
	if ms := increasing.LocalMinima(); len(ms) != 0 {
		t.Fatalf("LocalMinima on increasing curve=%v, want none", ms)
	}
	flat := Curve{D: []float64{0, 0, 0, 0}}
	if ms := flat.LocalMinima(); len(ms) != 0 {
		t.Fatalf("LocalMinima on flat curve=%v, want none (use Fundamental)", ms)
	}
	if flat.Fundamental(0) != 1 {
		t.Fatal("flat-zero curve fundamental must be 1")
	}
}

func TestCurveBestFundamentalMinimumSuppressesHarmonics(t *testing.T) {
	// Minimum at lag 3 (depth 1.0) and a noise-deepened harmonic at lag 6
	// (depth 0.9): the fundamental must win within tolerance.
	c := Curve{D: []float64{5, 5, 1.0, 5, 5, 0.9, 5, 5}}
	lag, ok := c.BestFundamentalMinimum(0.15)
	if !ok || lag != 3 {
		t.Fatalf("BestFundamentalMinimum=(%d,%v), want (3,true)", lag, ok)
	}
	// With zero tolerance the raw deepest wins.
	lag, _ = c.BestFundamentalMinimum(0)
	if lag != 6 {
		t.Fatalf("tol=0 gave %d, want 6", lag)
	}
}

func TestCurveBestMinimumPicksDeepest(t *testing.T) {
	c := Curve{D: []float64{5, 2, 5, 1, 5}}
	lag, ok := c.BestMinimum()
	if !ok || lag != 4 {
		t.Fatalf("BestMinimum=(%d,%v), want (4,true)", lag, ok)
	}
}

func TestCurveBestMinimumTieBreaksToSmallestLag(t *testing.T) {
	// Equal minima at lags 2 and 4: fundamental (smaller) must win.
	c := Curve{D: []float64{5, 1, 5, 1, 5}}
	lag, ok := c.BestMinimum()
	if !ok || lag != 2 {
		t.Fatalf("BestMinimum=(%d,%v), want (2,true)", lag, ok)
	}
}

func TestCurveProminence(t *testing.T) {
	c := Curve{D: []float64{4, 0, 4, 4}} // mean 3, d(2)=0 → prominence 1
	if got := c.Prominence(2); got != 1 {
		t.Errorf("Prominence(2)=%v, want 1", got)
	}
	if got := c.Prominence(1); got != 0 { // above mean → clamped to 0
		t.Errorf("Prominence(1)=%v, want 0", got)
	}
	flat := Curve{D: []float64{0, 0}}
	if flat.Prominence(1) != 0 {
		t.Error("flat curve prominence must be 0")
	}
}

func TestCurveAtPanicsOutOfRange(t *testing.T) {
	c := Curve{D: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("At(2) did not panic")
		}
	}()
	c.At(2)
}

func TestNaiveCurvePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaiveCurveL1 with n=0 did not panic")
		}
	}()
	NaiveCurveL1([]float64{1, 2}, 0, 1)
}

func TestOracleFundamental(t *testing.T) {
	hist := series.Repeat([]float64{1, 2, 3}, 10)
	if got := OracleFundamental(hist, 12, 6); got != 3 {
		t.Fatalf("oracle=%d, want 3", got)
	}
}

func TestCurveFromSeriesFigure4Shape(t *testing.T) {
	// A 44-periodic CPU-usage-like wave: the curve must dip at 44 and 88.
	gen := series.Square(16, 1, 30, 14)
	xs := series.Take(gen, 400)
	c := CurveFromSeries(xs, 100, 99)
	if c.At(44) != 0 {
		t.Fatalf("d(44)=%v, want 0", c.At(44))
	}
	if c.At(88) != 0 {
		t.Fatalf("d(88)=%v, want 0", c.At(88))
	}
	if !(c.At(22) > 0) {
		t.Fatalf("d(22)=%v, want > 0", c.At(22))
	}
	lag, ok := c.BestMinimum()
	if !ok || lag != 44 {
		t.Fatalf("best minimum=%d, want 44 (the paper's Figure 4)", lag)
	}
}
