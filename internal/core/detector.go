package core

import "fmt"

// Sample is one observation of a data series: the unit of work of the
// unified Detector interface. The paper distinguishes two stream kinds,
// and a Sample carries a slot for each: event engines (eq. 2 — loop
// addresses, message tags) read Value, the magnitude engine (eq. 1 —
// CPU counts, hardware counters) reads Magnitude. Exactly one slot is
// meaningful per stream; the other stays zero.
type Sample struct {
	// Value is the event-stream sample, consumed by the event,
	// multi-scale and adaptive engines.
	Value int64
	// Magnitude is the magnitude-stream sample, consumed by the
	// magnitude engine.
	Magnitude float64
}

// Detector is the unified per-stream interface: the paper's tiny
// two-call contract (Table 1: feed a sample, adjust the window)
// generalized so that every engine — event, magnitude, multi-scale
// ladder, adaptive window — presents one composable surface. All
// engines are allocation-free on the Feed path in steady state, so any
// of them can sit behind a serving pool.
//
// Implementations are not safe for concurrent use; a pool serializes
// access per stream.
type Detector interface {
	// Feed processes one sample and returns the per-sample detection
	// result (lock state, period, period-start flag).
	Feed(s Sample) Result
	// FeedAll processes a batch, writing one Result per sample into dst
	// (grown if needed) and returning the filled slice. A dst with
	// sufficient capacity makes the batch path allocation-free.
	FeedAll(vs []Sample, dst []Result) []Result
	// Snapshot returns the stream's current aggregate state. It does
	// not allocate, so it is safe on paths that must not disturb a
	// serving hot loop.
	Snapshot() Stat
	// Reset clears all detector state but keeps the configuration.
	Reset()
	// Window returns the current window size N.
	Window() int
	// Resize changes the window size at run time (paper Table 1:
	// DPDWindowSize), replaying retained history. Engines with fixed
	// window structure (the multi-scale ladder) reject it.
	Resize(n int) error
}

// Stat is a point-in-time view of one stream: the per-stream results
// the paper's runtime consumers (SelfAnalyzer, scheduler) need,
// captured without feeding. It unifies what used to be the pool's
// StreamStat with the standalone detectors' accessor methods.
type Stat struct {
	// Samples is the number of samples fed since creation or Reset.
	Samples uint64 `json:"samples"`
	// Locked reports whether a periodicity is currently established.
	Locked bool `json:"locked"`
	// Period is the locked periodicity in samples (0 when not locked).
	Period int `json:"period"`
	// Confidence is the confidence of the current lock: 1 for exact
	// (event) locks, the minimum's prominence in [0,1] for magnitude
	// locks, 0 when not locked.
	Confidence float64 `json:"confidence"`
	// Starts counts the period starts observed so far — the stream's
	// segment boundaries in the sense of the paper's Figure 6.
	Starts uint64 `json:"starts"`
	// LastStart is the stream-local sample index of the most recent
	// period start (valid when Starts > 0).
	LastStart uint64 `json:"last_start"`
	// Predicted is the forecast for the stream's next sample,
	// x̂[t+1] = x[t+1−p]; valid only when PredictedValid. Magnitude
	// engines do not forecast through Stat (use MagnitudePredictor).
	Predicted int64 `json:"predicted"`
	// PredictedValid reports whether Predicted holds a forecast.
	PredictedValid bool `json:"predicted_valid"`
	// Window is the detector's current window size N (for the
	// multi-scale ladder, the largest level's window).
	Window int `json:"window"`
}

// EventKind identifies one detector state transition delivered to an
// Observer.
type EventKind uint8

// Observer event kinds, in the order they can occur on one sample:
// a lock transition first, then the segment-start mark.
const (
	// EventLock: an unlocked detector established a periodicity.
	EventLock EventKind = iota + 1
	// EventPeriodChange: a locked detector re-locked onto a different
	// period (e.g. a shorter, more fundamental one emerged).
	EventPeriodChange
	// EventSegmentStart: the current sample begins a new period — the
	// paper's non-zero DPD return, as a push notification.
	EventSegmentStart
	// EventUnlock: the lock was lost (violations exhausted the grace
	// budget and no other confirmed lag took over).
	EventUnlock
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventLock:
		return "lock"
	case EventPeriodChange:
		return "period-change"
	case EventSegmentStart:
		return "segment-start"
	case EventUnlock:
		return "unlock"
	}
	return fmt.Sprintf("event-kind(%d)", uint8(k))
}

// Event describes one detector state transition. The pointer passed to
// Observer callbacks aliases a scratch owned by the engine — it is
// valid only for the duration of the callback and is overwritten by the
// next transition; callers that retain events must copy the struct.
type Event struct {
	// Kind is the transition type.
	Kind EventKind
	// T is the zero-based index of the sample that caused it.
	T uint64
	// Period is the period after the transition (0 for EventUnlock).
	Period int
	// PrevPeriod is the period before the transition (0 for EventLock
	// from an unlocked state).
	PrevPeriod int
	// Confidence is the lock confidence after the transition.
	Confidence float64
}

// Observer receives detector state transitions as they happen, so
// callers stop polling per-sample Results for the rare interesting
// moments (paper Figure 6: the detection point identifies the region).
// Callbacks run synchronously on the Feed path and must be cheap and
// allocation-free to preserve the hot-path guarantees; the *Event is a
// reused scratch (see Event).
type Observer interface {
	// OnLock fires when an unlocked detector establishes a periodicity.
	OnLock(*Event)
	// OnPeriodChange fires when a locked detector re-locks onto a
	// different period.
	OnPeriodChange(*Event)
	// OnSegmentStart fires when a sample begins a new period (including
	// the locking sample itself, after OnLock/OnPeriodChange).
	OnSegmentStart(*Event)
	// OnUnlock fires when the lock is lost.
	OnUnlock(*Event)
}

// ObserverFuncs adapts free functions to the Observer interface; nil
// fields are no-ops. The zero value is a valid do-nothing Observer.
type ObserverFuncs struct {
	// Lock handles EventLock.
	Lock func(*Event)
	// PeriodChange handles EventPeriodChange.
	PeriodChange func(*Event)
	// SegmentStart handles EventSegmentStart.
	SegmentStart func(*Event)
	// Unlock handles EventUnlock.
	Unlock func(*Event)
}

// OnLock implements Observer.
func (o ObserverFuncs) OnLock(e *Event) {
	if o.Lock != nil {
		o.Lock(e)
	}
}

// OnPeriodChange implements Observer.
func (o ObserverFuncs) OnPeriodChange(e *Event) {
	if o.PeriodChange != nil {
		o.PeriodChange(e)
	}
}

// OnSegmentStart implements Observer.
func (o ObserverFuncs) OnSegmentStart(e *Event) {
	if o.SegmentStart != nil {
		o.SegmentStart(e)
	}
}

// OnUnlock implements Observer.
func (o ObserverFuncs) OnUnlock(e *Event) {
	if o.Unlock != nil {
		o.Unlock(e)
	}
}

// track folds the per-sample Result stream into the segmentation
// counters of Stat and dispatches Observer callbacks on state
// transitions. One track is embedded in every engine adapter; the Event
// scratch is reused, so observer dispatch performs no allocation.
type track struct {
	obs Observer
	ev  *Event // reused callback scratch, allocated with the observer

	locked bool
	period int

	starts    uint64
	lastStart uint64
}

// setObserver registers obs and allocates the callback scratch; nil
// detaches. Engines keep no per-sample confidence or event state when
// unobserved, so an idle track costs three compares per sample.
func (tr *track) setObserver(obs Observer) {
	tr.obs = obs
	if obs != nil && tr.ev == nil {
		tr.ev = &Event{}
	}
}

// observe folds in one result and emits any due callbacks. The fast
// path (no transition, no start, no observer) is branch-only and kept
// well under the inliner budget, and takes the result by value so it
// never forces the caller's Result out of registers; everything rare
// lives in slow. A lock transition always changes Period (locked
// results have Period > 0, unlocked ones 0), so comparing the period
// alone detects it.
func (tr *track) observe(r Result) {
	if r.Start || r.Period != tr.period || tr.obs != nil {
		tr.slow(r)
	}
}

// slow handles starts, state transitions and observer dispatch.
func (tr *track) slow(r Result) {
	if r.Start {
		tr.starts++
		tr.lastStart = r.T
	}
	if tr.obs != nil {
		switch {
		case !tr.locked && r.Locked:
			tr.emit(EventLock, r)
		case tr.locked && r.Locked && r.Period != tr.period:
			tr.emit(EventPeriodChange, r)
		case tr.locked && !r.Locked:
			tr.emit(EventUnlock, r)
		}
		if r.Start {
			tr.emit(EventSegmentStart, r)
		}
	}
	tr.locked, tr.period = r.Locked, r.Period
}

// emit fills the scratch event and dispatches one callback.
func (tr *track) emit(k EventKind, r Result) {
	*tr.ev = Event{Kind: k, T: r.T, Period: r.Period, PrevPeriod: tr.period, Confidence: r.Confidence}
	switch k {
	case EventLock:
		tr.obs.OnLock(tr.ev)
	case EventPeriodChange:
		tr.obs.OnPeriodChange(tr.ev)
	case EventSegmentStart:
		tr.obs.OnSegmentStart(tr.ev)
	case EventUnlock:
		tr.obs.OnUnlock(tr.ev)
	}
}

// fill copies the tracked counters into a Stat; Samples and Confidence
// come from the engine itself (tracking them here too would push
// observe past the inliner budget on the hot path).
func (tr *track) fill(s *Stat) {
	s.Starts = tr.starts
	s.LastStart = tr.lastStart
}

// reset clears the tracked state but keeps the observer registration.
func (tr *track) reset() {
	if tr.ev != nil {
		*tr.ev = Event{}
	}
	tr.locked, tr.period = false, 0
	tr.starts, tr.lastStart = 0, 0
}

// Compile-time conformance: every engine satisfies Detector.
var (
	_ Detector = (*EventEngine)(nil)
	_ Detector = (*MagnitudeEngine)(nil)
	_ Detector = (*MultiScaleEngine)(nil)
	_ Detector = (*AdaptiveEngine)(nil)
)

// EventEngine adapts an EventDetector (paper eq. 2) to the unified
// Detector interface, tracking segmentation counters and dispatching
// observer callbacks. Results are identical to feeding the wrapped
// detector directly.
type EventEngine struct {
	det *EventDetector
	tr  track
}

// NewEventEngine wraps det. The engine owns the detector: feed samples
// only through the engine, or the tracked counters go stale.
func NewEventEngine(det *EventDetector) *EventEngine {
	return &EventEngine{det: det}
}

// NewEventEngineConfig builds the detector and its engine as one
// contiguous allocation, keeping the per-sample pointer chase within a
// cache line pair — the constructor serving pools use for their default
// per-stream engines.
func NewEventEngineConfig(cfg Config) (*EventEngine, error) {
	box := &struct {
		e EventEngine
		d EventDetector
	}{}
	d, err := NewEventDetector(cfg)
	if err != nil {
		return nil, err
	}
	box.d = *d
	box.e.det = &box.d
	return &box.e, nil
}

// SetObserver registers obs for state-transition callbacks (nil
// detaches). Not safe to call concurrently with Feed.
func (e *EventEngine) SetObserver(obs Observer) { e.tr.setObserver(obs) }

// Feed implements Detector, consuming s.Value. The detector's Feed
// body is fused inline (push, decide, advance the clock — keep in sync
// with EventDetector.Feed) so the engine adds one branch, not one call
// frame, over the raw hot path; TestNewEventEngineMatchesLegacyConstructor
// pins the equivalence.
func (e *EventEngine) Feed(s Sample) Result {
	d := e.det
	d.bank.Push(s.Value)
	r := d.decide()
	d.t++
	e.tr.observe(r)
	return r
}

// FeedAll implements Detector.
func (e *EventEngine) FeedAll(vs []Sample, dst []Result) []Result {
	dst = growResults(dst, len(vs))
	for i, s := range vs {
		dst[i] = e.Feed(s)
	}
	return dst
}

// Snapshot implements Detector.
func (e *EventEngine) Snapshot() Stat {
	st := Stat{Window: e.det.Window(), Samples: e.det.Samples()}
	e.tr.fill(&st)
	if p := e.det.Locked(); p != 0 {
		st.Locked, st.Period, st.Confidence = true, p, 1
	}
	if v, ok := e.det.PredictNext(); ok {
		st.Predicted, st.PredictedValid = v, true
	}
	return st
}

// Reset implements Detector.
func (e *EventEngine) Reset() {
	e.det.Reset()
	e.tr.reset()
}

// Window implements Detector.
func (e *EventEngine) Window() int { return e.det.Window() }

// Resize implements Detector, replaying retained history.
func (e *EventEngine) Resize(n int) error { return e.det.Resize(n) }

// Detector exposes the wrapped event detector (diagnostics, curve
// access). Feeding it directly bypasses the engine's tracking.
func (e *EventEngine) Detector() *EventDetector { return e.det }

// MagnitudeEngine adapts a MagnitudeDetector (paper eq. 1) to the
// unified Detector interface.
type MagnitudeEngine struct {
	det *MagnitudeDetector
	tr  track
}

// NewMagnitudeEngine wraps det; see NewEventEngine for ownership.
func NewMagnitudeEngine(det *MagnitudeDetector) *MagnitudeEngine {
	return &MagnitudeEngine{det: det}
}

// SetObserver registers obs for state-transition callbacks (nil
// detaches). Not safe to call concurrently with Feed.
func (e *MagnitudeEngine) SetObserver(obs Observer) { e.tr.setObserver(obs) }

// Feed implements Detector, consuming s.Magnitude.
func (e *MagnitudeEngine) Feed(s Sample) Result {
	r := e.det.Feed(s.Magnitude)
	e.tr.observe(r)
	return r
}

// FeedAll implements Detector.
func (e *MagnitudeEngine) FeedAll(vs []Sample, dst []Result) []Result {
	dst = growResults(dst, len(vs))
	for i, s := range vs {
		dst[i] = e.Feed(s)
	}
	return dst
}

// Snapshot implements Detector. Magnitude streams are forecast by
// MagnitudePredictor, not through Stat, so PredictedValid is always
// false.
func (e *MagnitudeEngine) Snapshot() Stat {
	st := Stat{Window: e.det.Window(), Samples: e.det.Samples()}
	e.tr.fill(&st)
	if p := e.det.Locked(); p != 0 {
		st.Locked, st.Period, st.Confidence = true, p, e.det.Confidence()
	}
	return st
}

// Reset implements Detector.
func (e *MagnitudeEngine) Reset() {
	e.det.Reset()
	e.tr.reset()
}

// Window implements Detector.
func (e *MagnitudeEngine) Window() int { return e.det.Window() }

// Resize implements Detector, replaying retained history.
func (e *MagnitudeEngine) Resize(n int) error { return e.det.Resize(n) }

// Detector exposes the wrapped magnitude detector (curve access).
func (e *MagnitudeEngine) Detector() *MagnitudeDetector { return e.det }

// MultiScaleEngine adapts a MultiScaleDetector ladder to the unified
// Detector interface. Feed returns the ladder's Primary result — the
// outermost locked periodicity, which is what the SelfAnalyzer times;
// per-level results remain reachable through Ladder.
type MultiScaleEngine struct {
	ms *MultiScaleDetector
	tr track
}

// NewMultiScaleEngine wraps ms; see NewEventEngine for ownership.
func NewMultiScaleEngine(ms *MultiScaleDetector) *MultiScaleEngine {
	return &MultiScaleEngine{ms: ms}
}

// SetObserver registers obs for state-transition callbacks on the
// ladder's Primary result (nil detaches). Not safe to call concurrently
// with Feed.
func (e *MultiScaleEngine) SetObserver(obs Observer) { e.tr.setObserver(obs) }

// Feed implements Detector, consuming s.Value and reducing the ladder's
// per-level results to MultiResult.Primary.
func (e *MultiScaleEngine) Feed(s Sample) Result {
	r := e.ms.Feed(s.Value).Primary
	e.tr.observe(r)
	return r
}

// FeedAll implements Detector.
func (e *MultiScaleEngine) FeedAll(vs []Sample, dst []Result) []Result {
	dst = growResults(dst, len(vs))
	for i, s := range vs {
		dst[i] = e.Feed(s)
	}
	return dst
}

// Snapshot implements Detector: lock state and prediction come from the
// largest locked level (the Primary), Window from the largest level.
func (e *MultiScaleEngine) Snapshot() Stat {
	st := Stat{Window: e.ms.Level(e.ms.Levels() - 1).Window(), Samples: e.ms.Samples()}
	e.tr.fill(&st)
	for i := e.ms.Levels() - 1; i >= 0; i-- {
		lvl := e.ms.Level(i)
		if p := lvl.Locked(); p != 0 {
			st.Locked, st.Period, st.Confidence = true, p, 1
			if v, ok := lvl.PredictNext(); ok {
				st.Predicted, st.PredictedValid = v, true
			}
			break
		}
	}
	return st
}

// Reset implements Detector.
func (e *MultiScaleEngine) Reset() {
	e.ms.Reset()
	e.tr.reset()
}

// Window implements Detector: the largest (outermost) level's window.
func (e *MultiScaleEngine) Window() int {
	return e.ms.Level(e.ms.Levels() - 1).Window()
}

// Resize implements Detector. The ladder's windows are its structure,
// so run-time resizing is rejected; build a new ladder instead.
func (e *MultiScaleEngine) Resize(n int) error {
	return fmt.Errorf("core: multi-scale ladder windows are fixed; cannot resize to %d", n)
}

// Ladder exposes the wrapped ladder (per-level results, LockedPeriods).
// Feeding it directly bypasses the engine's tracking.
func (e *MultiScaleEngine) Ladder() *MultiScaleDetector { return e.ms }

// AdaptiveEngine adapts an AdaptiveDetector (automatic window
// management, paper §3.1/§4) to the unified Detector interface.
type AdaptiveEngine struct {
	a  *AdaptiveDetector
	tr track
}

// NewAdaptiveEngine wraps a; see NewEventEngine for ownership.
func NewAdaptiveEngine(a *AdaptiveDetector) *AdaptiveEngine {
	return &AdaptiveEngine{a: a}
}

// SetObserver registers obs for state-transition callbacks (nil
// detaches). Not safe to call concurrently with Feed.
func (e *AdaptiveEngine) SetObserver(obs Observer) { e.tr.setObserver(obs) }

// Feed implements Detector, consuming s.Value under the window policy.
func (e *AdaptiveEngine) Feed(s Sample) Result {
	r := e.a.Feed(s.Value)
	e.tr.observe(r)
	return r
}

// FeedAll implements Detector.
func (e *AdaptiveEngine) FeedAll(vs []Sample, dst []Result) []Result {
	dst = growResults(dst, len(vs))
	for i, s := range vs {
		dst[i] = e.Feed(s)
	}
	return dst
}

// Snapshot implements Detector.
func (e *AdaptiveEngine) Snapshot() Stat {
	st := Stat{Window: e.a.Window(), Samples: e.a.Detector().Samples()}
	e.tr.fill(&st)
	if p := e.a.Locked(); p != 0 {
		st.Locked, st.Period, st.Confidence = true, p, 1
	}
	if v, ok := e.a.Detector().PredictNext(); ok {
		st.Predicted, st.PredictedValid = v, true
	}
	return st
}

// Reset implements Detector, restoring the policy's maximum window.
func (e *AdaptiveEngine) Reset() {
	e.a.Reset()
	e.tr.reset()
}

// Window implements Detector: the current (policy-managed) window.
func (e *AdaptiveEngine) Window() int { return e.a.Window() }

// Resize implements Detector as a manual override; the policy resumes
// shrinking/growing from the new size.
func (e *AdaptiveEngine) Resize(n int) error { return e.a.Resize(n) }

// Adaptive exposes the wrapped adaptive detector (Resizes diagnostics).
// Feeding it directly bypasses the engine's tracking.
func (e *AdaptiveEngine) Adaptive() *AdaptiveDetector { return e.a }

// growResults returns dst resized to n, reallocating only when the
// capacity is insufficient.
func growResults(dst []Result, n int) []Result {
	if cap(dst) < n {
		dst = make([]Result, n)
	}
	return dst[:n]
}
