// Package core implements the Dynamic Periodicity Detector (DPD) of
// Freitag, Corbalán and Labarta (IPDPS 2001): an online, frame-based
// detector that estimates the periodicity of a data stream while the
// stream is being produced, segments the stream into periods, and supports
// dynamic window resizing.
//
// Two distance metrics are provided, matching the paper's equations:
//
//   - eq. (1), magnitude streams (MagnitudeDetector):
//     d(m) = (1/N) * Σ_{n=0}^{N-1} |x[n] − x[n−m]|
//     The periodicity is the lag m at which d(m) has a significant local
//     minimum. Used for sampled quantities such as the number of active
//     CPUs (paper Figures 3 and 4).
//
//   - eq. (2), event streams (EventDetector):
//     d(m) = sign(Σ_{i=0}^{N-1} |x[i] − x[i−m]|)
//     The periodicity is any lag with d(m) == 0, i.e. the last N events
//     repeat exactly with lag m. Used for streams of code addresses
//     (paper Figure 7, Table 2).
//
// Both detectors maintain, for every lag m in 1..M (M ≤ N), an
// incrementally updated window accumulator, so the per-sample cost is
// O(M) with O(N·M) worst-case memory for the event detector's mismatch
// windows — the memory/compute trade-off the paper attributes to
// [Freitag00]. A naive reference implementation (NaiveCurve*) is kept for
// differential testing and for the incremental-vs-naive ablation bench.
//
// MultiScaleDetector runs a ladder of event detectors with geometrically
// spaced window sizes so that short inner periodicities and long outer
// ones (hydro2d's {1, 24, 269}, turb3d's {12, 142} in Table 2) are
// captured concurrently, and PeriodTracker aggregates the distinct
// periodicities observed over a stream's lifetime.
package core
