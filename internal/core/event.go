package core

import (
	"fmt"
	"math"

	"dpd/internal/series"
)

// EventDetector implements the paper's eq. (2) metric for event streams
// (e.g. parallel-loop addresses): d(m) = sign(Σ |x[i] − x[i−m]|), which is
// zero exactly when the last N events repeat with lag m.
//
// All per-lag state lives in one flat series.CountBank: feeding one sample
// is a single compare pass over the contiguous history plus a word-level
// delta update of the packed mismatch windows, with zero allocation.
// History of the last N + M samples is retained to support window
// resizing by replay.
type EventDetector struct {
	cfg  Config
	bank *series.CountBank

	locked    bool
	period    int
	anchor    uint64 // sample index where the current period phase starts
	graceLeft int

	t uint64 // samples fed so far
}

// NewEventDetector returns a detector for event streams.
func NewEventDetector(cfg Config) (*EventDetector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &EventDetector{cfg: c}
	d.alloc()
	return d, nil
}

// MustEventDetector is NewEventDetector that panics on config errors; for
// use with static configurations in examples and tools.
func MustEventDetector(cfg Config) *EventDetector {
	d, err := NewEventDetector(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *EventDetector) alloc() {
	d.bank = series.NewCountBank(d.cfg.Window, d.cfg.MaxLag)
}

// Window returns the current window size N.
func (d *EventDetector) Window() int { return d.cfg.Window }

// MaxLag returns the largest probed lag M.
func (d *EventDetector) MaxLag() int { return d.cfg.MaxLag }

// Samples returns the number of samples fed so far.
func (d *EventDetector) Samples() uint64 { return d.t }

// Locked returns the currently locked period (0 if none).
func (d *EventDetector) Locked() int {
	if !d.locked {
		return 0
	}
	return d.period
}

// Feed processes one event sample and returns the detection result.
// NOTE: the body is mirrored in EventEngine.Feed (detector.go), which
// fuses it with the engine's tracking to save a call frame on the
// pooled serving path — keep the two in sync.
func (d *EventDetector) Feed(v int64) Result {
	d.bank.Push(v)
	res := d.decide()
	d.t++
	return res
}

// FeedAll processes a batch of samples, writing one Result per sample into
// dst (grown if needed) and returning the filled slice. Passing a dst with
// sufficient capacity makes the batch path allocation-free.
func (d *EventDetector) FeedAll(vs []int64, dst []Result) []Result {
	if cap(dst) < len(vs) {
		dst = make([]Result, len(vs))
	}
	dst = dst[:len(vs)]
	for i, v := range vs {
		dst[i] = d.Feed(v)
	}
	return dst
}

// decide applies the lock/segmentation policy after the bank is updated.
func (d *EventDetector) decide() Result {
	res := Result{T: d.t}

	// Candidate: smallest lag that has been zero for Confirm pushes.
	cand := d.bank.FirstConfirmed(d.cfg.Confirm)

	switch {
	case !d.locked && cand > 0:
		// New lock: the current sample is defined as a period start
		// (paper Figure 6: the detection point identifies the region).
		d.locked = true
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, 1

	case d.locked && cand > 0 && cand < d.period:
		// A shorter (more fundamental) periodicity emerged; re-lock.
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, 1

	case d.locked && d.bank.Zero(d.period):
		// Lock holds.
		d.graceLeft = d.cfg.Grace
		res.Locked, res.Period, res.Confidence = true, d.period, 1
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked && d.graceLeft > 0:
		// Violation inside the grace budget: keep the lock provisionally.
		d.graceLeft--
		res.Locked, res.Period, res.Confidence = true, d.period, 1
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked:
		// Lock lost. If another confirmed lag exists, switch immediately.
		d.locked = false
		d.period = 0
		if cand > 0 {
			d.locked = true
			d.period = cand
			d.anchor = d.t
			d.graceLeft = d.cfg.Grace
			res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, 1
		}
	}
	return res
}

// Curve returns the current event distance curve: d(m) ∈ {0,1}, NaN for
// lags whose comparison window has not filled.
func (d *EventDetector) Curve() Curve {
	out := make([]float64, d.cfg.MaxLag)
	for m := 1; m <= d.cfg.MaxLag; m++ {
		switch {
		case !d.bank.Full(m):
			out[m-1] = math.NaN()
		case d.bank.Ones(m) == 0:
			out[m-1] = 0
		default:
			out[m-1] = 1
		}
	}
	return Curve{D: out}
}

// MismatchCount returns the raw mismatch count for lag m (diagnostics).
// It returns −1 when the lag's window has not filled yet.
func (d *EventDetector) MismatchCount(m int) int {
	if m < 1 || m > d.cfg.MaxLag || !d.bank.Full(m) {
		return -1
	}
	return d.bank.Ones(m)
}

// History returns the retained samples, oldest first (test/diagnostic aid).
func (d *EventDetector) History() []int64 { return d.bank.History(nil) }

// PredictNext returns the forecast for the next sample under the locked
// periodicity, x̂[t+1] = x[t+1−p], and whether a forecast is possible (a
// lock is held and the history is deep enough). It does not allocate, so
// it is safe on snapshot paths that must not disturb a serving hot path.
func (d *EventDetector) PredictNext() (int64, bool) {
	if !d.locked || d.period < 1 {
		return 0, false
	}
	return d.bank.Recent(d.period - 1)
}

// Reset clears all state but keeps the configuration.
func (d *EventDetector) Reset() {
	d.bank.Reset()
	d.locked = false
	d.period = 0
	d.anchor = 0
	d.graceLeft = 0
	d.t = 0
}

// Resize changes the window size N (paper interface DPDWindowSize) and
// sets MaxLag to newWindow−1. Retained history is replayed so that the
// detector warms up as far as the kept samples allow. The absolute sample
// clock and any compatible lock survive the resize.
func (d *EventDetector) Resize(newWindow int) error {
	if newWindow < 2 {
		return fmt.Errorf("core: window %d outside [2,%d]", newWindow, MaxWindow)
	}
	nc := d.cfg
	nc.Window = newWindow
	nc.MaxLag = 0 // recompute as newWindow−1
	nc, err := nc.withDefaults()
	if err != nil {
		return err
	}
	old := d.bank.History(nil)
	wasLocked, oldPeriod, oldAnchor := d.locked, d.period, d.anchor
	d.cfg = nc
	d.alloc()

	// Replay retained history through the new lag bank. The absolute time
	// base d.t is preserved; replay only rebuilds window state.
	keep := len(old)
	max := nc.Window + nc.MaxLag
	if keep > max {
		old = old[keep-max:]
	}
	for _, v := range old {
		d.bank.Push(v)
	}

	// Preserve the lock only if the new window still confirms it.
	if wasLocked && oldPeriod <= nc.MaxLag && d.bank.Zero(oldPeriod) {
		d.locked = true
		d.period = oldPeriod
		d.anchor = oldAnchor
		d.graceLeft = nc.Grace
	} else {
		d.locked = false
		d.period = 0
	}
	return nil
}
