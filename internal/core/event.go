package core

import (
	"fmt"
	"math"

	"dpd/internal/series"
)

// EventDetector implements the paper's eq. (2) metric for event streams
// (e.g. parallel-loop addresses): d(m) = sign(Σ |x[i] − x[i−m]|), which is
// zero exactly when the last N events repeat with lag m.
//
// Per lag m it keeps a sliding window of N mismatch bits updated in O(1),
// so feeding one sample costs O(M) comparisons. History of the last
// N + M samples is retained to support window resizing by replay.
type EventDetector struct {
	cfg  Config
	hist *series.IntRing // last Window+MaxLag samples
	// counts[m-1] tracks mismatches of x[t] vs x[t−m] over the last Window
	// comparisons; d(m) == 0 ⟺ counts[m-1].Zero().
	counts  []*series.SlidingCount
	zeroRun []int // consecutive steps each lag has been zero

	locked    bool
	period    int
	anchor    uint64 // sample index where the current period phase starts
	graceLeft int

	t uint64 // samples fed so far
}

// NewEventDetector returns a detector for event streams.
func NewEventDetector(cfg Config) (*EventDetector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &EventDetector{cfg: c}
	d.alloc()
	return d, nil
}

// MustEventDetector is NewEventDetector that panics on config errors; for
// use with static configurations in examples and tools.
func MustEventDetector(cfg Config) *EventDetector {
	d, err := NewEventDetector(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *EventDetector) alloc() {
	d.hist = series.NewIntRing(d.cfg.Window + d.cfg.MaxLag)
	d.counts = make([]*series.SlidingCount, d.cfg.MaxLag)
	d.zeroRun = make([]int, d.cfg.MaxLag)
	for i := range d.counts {
		d.counts[i] = series.NewSlidingCount(d.cfg.Window)
	}
}

// Window returns the current window size N.
func (d *EventDetector) Window() int { return d.cfg.Window }

// MaxLag returns the largest probed lag M.
func (d *EventDetector) MaxLag() int { return d.cfg.MaxLag }

// Samples returns the number of samples fed so far.
func (d *EventDetector) Samples() uint64 { return d.t }

// Locked returns the currently locked period (0 if none).
func (d *EventDetector) Locked() int {
	if !d.locked {
		return 0
	}
	return d.period
}

// Feed processes one event sample and returns the detection result.
func (d *EventDetector) Feed(v int64) Result {
	// Update every lag's mismatch window against the retained history.
	avail := d.hist.Len()
	for m := 1; m <= d.cfg.MaxLag; m++ {
		if m > avail {
			break // no sample x[t−m] yet; deeper lags are unavailable too
		}
		mismatch := v != d.hist.Last(m-1)
		c := d.counts[m-1]
		c.Push(mismatch)
		if c.Zero() {
			d.zeroRun[m-1]++
		} else {
			d.zeroRun[m-1] = 0
		}
	}
	d.hist.Push(v)
	res := d.decide()
	d.t++
	return res
}

// decide applies the lock/segmentation policy after counters are updated.
func (d *EventDetector) decide() Result {
	res := Result{T: d.t}

	// Candidate: smallest lag whose zero run reached the confirm count.
	cand := 0
	for m := 1; m <= d.cfg.MaxLag; m++ {
		if d.zeroRun[m-1] >= d.cfg.Confirm {
			cand = m
			break
		}
	}

	switch {
	case !d.locked && cand > 0:
		// New lock: the current sample is defined as a period start
		// (paper Figure 6: the detection point identifies the region).
		d.locked = true
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, 1

	case d.locked && cand > 0 && cand < d.period:
		// A shorter (more fundamental) periodicity emerged; re-lock.
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, 1

	case d.locked && d.counts[d.period-1].Zero():
		// Lock holds.
		d.graceLeft = d.cfg.Grace
		res.Locked, res.Period, res.Confidence = true, d.period, 1
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked && d.graceLeft > 0:
		// Violation inside the grace budget: keep the lock provisionally.
		d.graceLeft--
		res.Locked, res.Period, res.Confidence = true, d.period, 1
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked:
		// Lock lost. If another confirmed lag exists, switch immediately.
		d.locked = false
		d.period = 0
		if cand > 0 {
			d.locked = true
			d.period = cand
			d.anchor = d.t
			d.graceLeft = d.cfg.Grace
			res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, 1
		}
	}
	return res
}

// Curve returns the current event distance curve: d(m) ∈ {0,1}, NaN for
// lags whose comparison window has not filled.
func (d *EventDetector) Curve() Curve {
	out := make([]float64, d.cfg.MaxLag)
	for m := 1; m <= d.cfg.MaxLag; m++ {
		c := d.counts[m-1]
		switch {
		case !c.Full():
			out[m-1] = math.NaN()
		case c.Ones() == 0:
			out[m-1] = 0
		default:
			out[m-1] = 1
		}
	}
	return Curve{D: out}
}

// MismatchCount returns the raw mismatch count for lag m (diagnostics).
// It returns −1 when the lag's window has not filled yet.
func (d *EventDetector) MismatchCount(m int) int {
	if m < 1 || m > d.cfg.MaxLag {
		return -1
	}
	c := d.counts[m-1]
	if !c.Full() {
		return -1
	}
	return c.Ones()
}

// History returns the retained samples, oldest first (test/diagnostic aid).
func (d *EventDetector) History() []int64 { return d.hist.Snapshot(nil) }

// Reset clears all state but keeps the configuration.
func (d *EventDetector) Reset() {
	d.hist.Reset()
	for i := range d.counts {
		d.counts[i].Reset()
		d.zeroRun[i] = 0
	}
	d.locked = false
	d.period = 0
	d.anchor = 0
	d.graceLeft = 0
	d.t = 0
}

// Resize changes the window size N (paper interface DPDWindowSize) and
// sets MaxLag to newWindow−1. Retained history is replayed so that the
// detector warms up as far as the kept samples allow. The absolute sample
// clock and any compatible lock survive the resize.
func (d *EventDetector) Resize(newWindow int) error {
	if newWindow < 2 {
		return fmt.Errorf("core: window %d outside [2,%d]", newWindow, MaxWindow)
	}
	nc := d.cfg
	nc.Window = newWindow
	nc.MaxLag = 0 // recompute as newWindow−1
	nc, err := nc.withDefaults()
	if err != nil {
		return err
	}
	old := d.hist.Snapshot(nil)
	wasLocked, oldPeriod, oldAnchor := d.locked, d.period, d.anchor
	d.cfg = nc
	d.alloc()

	// Replay retained history through the new lag bank. The absolute time
	// base d.t is preserved; replay only rebuilds window state.
	keep := len(old)
	max := nc.Window + nc.MaxLag
	if keep > max {
		old = old[keep-max:]
	}
	for i, v := range old {
		for m := 1; m <= nc.MaxLag && m <= i; m++ {
			c := d.counts[m-1]
			c.Push(v != old[i-m])
			if c.Zero() {
				d.zeroRun[m-1]++
			} else {
				d.zeroRun[m-1] = 0
			}
		}
		d.hist.Push(v)
	}

	// Preserve the lock only if the new window still confirms it.
	if wasLocked && oldPeriod <= nc.MaxLag && d.counts[oldPeriod-1].Zero() {
		d.locked = true
		d.period = oldPeriod
		d.anchor = oldAnchor
		d.graceLeft = nc.Grace
	} else {
		d.locked = false
		d.period = 0
	}
	return nil
}
