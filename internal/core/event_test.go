package core

import (
	"testing"
	"testing/quick"

	"dpd/internal/series"
)

// feedAll feeds every sample and returns all results.
func feedAll(d *EventDetector, xs []int64) []Result {
	out := make([]Result, len(xs))
	for i, v := range xs {
		out[i] = d.Feed(v)
	}
	return out
}

func TestEventDetectorLocksFundamental(t *testing.T) {
	d := MustEventDetector(Config{Window: 20})
	xs := series.RepeatInt([]int64{0x100, 0x200, 0x300, 0x400, 0x500}, 20)
	rs := feedAll(d, xs)
	last := rs[len(rs)-1]
	if !last.Locked || last.Period != 5 {
		t.Fatalf("final result=%+v, want lock on period 5", last)
	}
}

func TestEventDetectorLockTime(t *testing.T) {
	// Lag p's comparison window (size N) starts filling at sample p, so the
	// earliest possible lock is at sample index p+N−1.
	n, p := 12, 3
	d := MustEventDetector(Config{Window: n})
	xs := series.RepeatInt([]int64{7, 8, 9}, 20)
	rs := feedAll(d, xs)
	for i, r := range rs {
		if r.Locked {
			if i != p+n-1 {
				t.Fatalf("locked at sample %d, want %d", i, p+n-1)
			}
			if !r.Start {
				t.Fatal("first locked sample must be a period start")
			}
			return
		}
	}
	t.Fatal("never locked")
}

func TestEventDetectorRejectsAperiodic(t *testing.T) {
	d := MustEventDetector(Config{Window: 16})
	for i := int64(0); i < 200; i++ {
		r := d.Feed(i * 31) // strictly increasing: never periodic
		if r.Locked {
			t.Fatalf("locked on aperiodic stream at %d", i)
		}
	}
}

func TestEventDetectorStartSpacing(t *testing.T) {
	d := MustEventDetector(Config{Window: 24})
	xs := series.RepeatInt([]int64{1, 2, 3, 4, 5, 6, 7}, 30)
	var starts []int
	for i, v := range xs {
		if r := d.Feed(v); r.Start {
			starts = append(starts, i)
		}
	}
	if len(starts) < 10 {
		t.Fatalf("only %d starts", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != 7 {
			t.Fatalf("starts %v not spaced by period 7", starts)
		}
	}
}

func TestEventDetectorUnlocksOnPhaseChange(t *testing.T) {
	d := MustEventDetector(Config{Window: 10})
	xs := append(series.RepeatInt([]int64{1, 2}, 20), series.RepeatInt([]int64{9, 9, 9, 8, 7}, 2)...)
	var lastLocked int
	for i, v := range xs {
		if r := d.Feed(v); r.Locked {
			lastLocked = i
		}
	}
	if lastLocked >= len(xs)-1 {
		t.Fatal("lock survived a phase change with grace 0")
	}
}

func TestEventDetectorGraceRidesThroughGlitch(t *testing.T) {
	// One corrupted sample inside an otherwise periodic stream: with grace,
	// the lock must survive; without it must drop.
	mk := func(grace int) bool {
		d := MustEventDetector(Config{Window: 8, Grace: grace})
		lockedAtEnd := false
		for i := 0; i < 200; i++ {
			v := int64(i % 4)
			if i == 100 {
				v = 99
			}
			r := d.Feed(v)
			lockedAtEnd = r.Locked
			if i == 101 && grace > 0 && !r.Locked {
				return false
			}
		}
		return lockedAtEnd
	}
	if !mk(16) {
		t.Error("grace=16 should ride through a single glitch")
	}
	// With grace 0 the lock must drop at the glitch and re-acquire later —
	// also ending locked, but dropping in between.
	d := MustEventDetector(Config{Window: 8, Grace: 0})
	droppedAt := -1
	for i := 0; i < 200; i++ {
		v := int64(i % 4)
		if i == 100 {
			v = 99
		}
		r := d.Feed(v)
		if i >= 100 && i <= 110 && !r.Locked && droppedAt < 0 {
			droppedAt = i
		}
	}
	if droppedAt < 0 {
		t.Error("grace=0 lock must drop on a glitch")
	}
}

func TestEventDetectorSwitchesToShorterPeriod(t *testing.T) {
	d := MustEventDetector(Config{Window: 8})
	// 4-periodic phase, then a long constant run: period must become 1.
	for i := 0; i < 40; i++ {
		d.Feed(int64(i % 4))
	}
	if d.Locked() != 4 {
		t.Fatalf("phase 1 lock=%d, want 4", d.Locked())
	}
	var last Result
	for i := 0; i < 40; i++ {
		last = d.Feed(42)
	}
	if !last.Locked || last.Period != 1 {
		t.Fatalf("after constant run: %+v, want period 1", last)
	}
}

func TestEventDetectorCurveMatchesNaive(t *testing.T) {
	// Differential test: the incremental curve must equal the naive eq. (2)
	// computation at every step, on a stream with phase changes.
	n := 10
	d := MustEventDetector(Config{Window: n})
	rng := series.NewRNG(5)
	var hist []int64
	for i := 0; i < 300; i++ {
		var v int64
		switch {
		case i < 100:
			v = int64(i % 4)
		case i < 200:
			v = int64(rng.Intn(3))
		default:
			v = int64(i % 7)
		}
		hist = append(hist, v)
		d.Feed(v)
		got := d.Curve()
		want := NaiveCurveSign(hist, n, n-1)
		for m := 1; m <= n-1; m++ {
			gv, wv := got.Valid(m), want.Valid(m)
			if gv != wv {
				t.Fatalf("step %d lag %d: validity %v vs naive %v", i, m, gv, wv)
			}
			if gv && got.At(m) != want.At(m) {
				t.Fatalf("step %d lag %d: d=%v naive=%v", i, m, got.At(m), want.At(m))
			}
		}
	}
}

func TestEventDetectorMismatchCount(t *testing.T) {
	d := MustEventDetector(Config{Window: 6})
	for i := 0; i < 30; i++ {
		d.Feed(int64(i % 3))
	}
	if got := d.MismatchCount(3); got != 0 {
		t.Errorf("MismatchCount(3)=%d, want 0", got)
	}
	if got := d.MismatchCount(2); got != 6 {
		t.Errorf("MismatchCount(2)=%d, want 6 (every comparison differs)", got)
	}
	if got := d.MismatchCount(0); got != -1 {
		t.Errorf("MismatchCount(0)=%d, want -1", got)
	}
	if got := d.MismatchCount(99); got != -1 {
		t.Errorf("MismatchCount(99)=%d, want -1", got)
	}
}

func TestEventDetectorResizePreservesLock(t *testing.T) {
	d := MustEventDetector(Config{Window: 64})
	for i := 0; i < 200; i++ {
		d.Feed(int64(i % 5))
	}
	if d.Locked() != 5 {
		t.Fatalf("pre-resize lock=%d", d.Locked())
	}
	if err := d.Resize(16); err != nil {
		t.Fatal(err)
	}
	if d.Window() != 16 || d.MaxLag() != 15 {
		t.Fatalf("post-resize window=%d maxLag=%d", d.Window(), d.MaxLag())
	}
	if d.Locked() != 5 {
		t.Fatalf("post-resize lock=%d, want 5 preserved", d.Locked())
	}
	// Segmentation must stay phase-aligned across the resize.
	var starts []uint64
	for i := 0; i < 50; i++ {
		if r := d.Feed(int64((200 + i) % 5)); r.Start {
			starts = append(starts, r.T)
		}
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != 5 {
			t.Fatalf("post-resize starts %v not spaced by 5", starts)
		}
	}
}

func TestEventDetectorResizeGrowDetectsLargerPeriod(t *testing.T) {
	d := MustEventDetector(Config{Window: 8}) // max lag 7 < 12
	pat := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	for i := 0; i < 60; i++ {
		if r := d.Feed(pat[i%12]); r.Locked {
			t.Fatalf("window 8 cannot certify period 12, but locked at %d", i)
		}
	}
	if err := d.Resize(32); err != nil {
		t.Fatal(err)
	}
	var locked Result
	for i := 60; i < 150; i++ {
		locked = d.Feed(pat[i%12])
	}
	if !locked.Locked || locked.Period != 12 {
		t.Fatalf("after growth: %+v, want period 12", locked)
	}
}

func TestEventDetectorResizeRejectsBadWindow(t *testing.T) {
	d := MustEventDetector(Config{Window: 8})
	if err := d.Resize(1); err == nil {
		t.Fatal("Resize(1) must fail")
	}
	if err := d.Resize(MaxWindow + 1); err == nil {
		t.Fatal("Resize beyond MaxWindow must fail")
	}
	// Failed resize must leave the detector usable.
	for i := 0; i < 30; i++ {
		d.Feed(int64(i % 2))
	}
	if d.Locked() != 2 {
		t.Fatalf("detector broken after failed resize: lock=%d", d.Locked())
	}
}

func TestEventDetectorReset(t *testing.T) {
	d := MustEventDetector(Config{Window: 8})
	for i := 0; i < 50; i++ {
		d.Feed(int64(i % 2))
	}
	d.Reset()
	if d.Locked() != 0 || d.Samples() != 0 {
		t.Fatalf("after reset lock=%d samples=%d", d.Locked(), d.Samples())
	}
	for i := 0; i < 50; i++ {
		d.Feed(int64(i % 3))
	}
	if d.Locked() != 3 {
		t.Fatalf("detector unusable after reset: lock=%d", d.Locked())
	}
}

func TestEventDetectorConfirmDelaysLock(t *testing.T) {
	d1 := MustEventDetector(Config{Window: 10, Confirm: 1})
	d5 := MustEventDetector(Config{Window: 10, Confirm: 5})
	lockAt := func(d *EventDetector) int {
		d.Reset()
		for i := 0; i < 100; i++ {
			if r := d.Feed(int64(i % 2)); r.Locked {
				return i
			}
		}
		return -1
	}
	a, b := lockAt(d1), lockAt(d5)
	if a < 0 || b < 0 {
		t.Fatalf("lock times %d,%d", a, b)
	}
	if b != a+4 {
		t.Fatalf("confirm=5 locked at %d, confirm=1 at %d; want +4 delay", b, a)
	}
}

func TestEventDetectorConfigValidation(t *testing.T) {
	bad := []Config{
		{Window: 1},
		{Window: MaxWindow * 2},
		{Window: 10, MaxLag: 11},
		{Window: 10, Confirm: -1},
		{Window: 10, Grace: -2},
	}
	for _, cfg := range bad {
		if _, err := NewEventDetector(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestEventDetectorHistoryDepth(t *testing.T) {
	d := MustEventDetector(Config{Window: 6})
	for i := 0; i < 100; i++ {
		d.Feed(int64(i))
	}
	h := d.History()
	if len(h) != 6+5 {
		t.Fatalf("history len=%d, want window+maxLag=11", len(h))
	}
	if h[len(h)-1] != 99 {
		t.Fatalf("history newest=%d, want 99", h[len(h)-1])
	}
}

// Property: for a randomly chosen pattern of distinct values cycled long
// enough, the detector locks exactly on the pattern's fundamental period.
func TestEventDetectorPropertyLocksFundamental(t *testing.T) {
	f := func(seed uint64, lenRaw uint8) bool {
		pl := int(lenRaw%9) + 2 // pattern length 2..10
		rng := series.NewRNG(seed)
		// Distinct values ⇒ fundamental = pattern length.
		pat := make([]int64, pl)
		perm := rng.Intn(1000)
		for i := range pat {
			pat[i] = int64(perm*100 + i)
		}
		d := MustEventDetector(Config{Window: 24})
		var last Result
		for i := 0; i < 24*4+pl; i++ {
			last = d.Feed(pat[i%pl])
		}
		return last.Locked && last.Period == pl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every zero lag reported by the curve on a p-periodic stream is
// a multiple of p.
func TestEventDetectorPropertyZeroLagsAreMultiples(t *testing.T) {
	f := func(seed uint64, lenRaw uint8) bool {
		pl := int(lenRaw%6) + 2
		pat := make([]int64, pl)
		for i := range pat {
			pat[i] = int64(i) // distinct
		}
		d := MustEventDetector(Config{Window: 32})
		for i := 0; i < 200; i++ {
			d.Feed(pat[i%pl])
		}
		for _, z := range d.Curve().ZeroLags(0) {
			if z%pl != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: detection is shift-invariant — rotating the pattern changes
// the phase anchor but never the locked period.
func TestEventDetectorPropertyShiftInvariant(t *testing.T) {
	f := func(rot uint8) bool {
		pat := []int64{10, 20, 30, 40, 50, 60}
		r := int(rot) % 6
		rotated := append(append([]int64{}, pat[r:]...), pat[:r]...)
		d := MustEventDetector(Config{Window: 18})
		var last Result
		for i := 0; i < 120; i++ {
			last = d.Feed(rotated[i%6])
		}
		return last.Locked && last.Period == 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
