package core

import (
	"fmt"
	"math"

	"dpd/internal/series"
)

// MagnitudeDetector implements the paper's eq. (1) metric for streams
// whose sample values are meaningful magnitudes (e.g. the number of active
// CPUs): d(m) = (1/N)·Σ |x[n] − x[n−m]|. The detected periodicity is the
// lag of a significant local minimum of d.
//
// Per lag m a sliding sum of |x[t] − x[t−m]| over the last N comparisons
// is maintained in O(1), so feeding one sample costs O(M).
type MagnitudeDetector struct {
	cfg  Config
	hist *series.Ring
	sums []*series.SlidingSum

	scale *series.EWMA // running scale of |x|, for the zero tolerance

	lastCand int // candidate lag seen on the previous step
	candRun  int // consecutive steps the candidate has persisted

	locked    bool
	period    int
	anchor    uint64
	graceLeft int
	conf      float64

	t uint64

	curveBuf []float64 // reused scratch for Curve / decide
}

// NewMagnitudeDetector returns a detector for magnitude streams.
func NewMagnitudeDetector(cfg Config) (*MagnitudeDetector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &MagnitudeDetector{cfg: c, scale: series.NewEWMA(0.05)}
	d.alloc()
	return d, nil
}

// MustMagnitudeDetector panics on config errors.
func MustMagnitudeDetector(cfg Config) *MagnitudeDetector {
	d, err := NewMagnitudeDetector(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *MagnitudeDetector) alloc() {
	d.hist = series.NewRing(d.cfg.Window + d.cfg.MaxLag)
	d.sums = make([]*series.SlidingSum, d.cfg.MaxLag)
	for i := range d.sums {
		d.sums[i] = series.NewSlidingSum(d.cfg.Window)
	}
	d.curveBuf = make([]float64, d.cfg.MaxLag)
}

// Window returns the current window size N.
func (d *MagnitudeDetector) Window() int { return d.cfg.Window }

// MaxLag returns the largest probed lag M.
func (d *MagnitudeDetector) MaxLag() int { return d.cfg.MaxLag }

// Samples returns the number of samples fed so far.
func (d *MagnitudeDetector) Samples() uint64 { return d.t }

// Locked returns the currently locked period (0 if none).
func (d *MagnitudeDetector) Locked() int {
	if !d.locked {
		return 0
	}
	return d.period
}

// zeroEps is the absolute tolerance under which a distance counts as zero,
// scaled to the stream's own magnitude so that float accumulation noise on
// large-valued streams does not mask exact periodicity.
func (d *MagnitudeDetector) zeroEps() float64 {
	return 1e-9 * (1 + d.scale.Value())
}

// Feed processes one sample and returns the detection result.
func (d *MagnitudeDetector) Feed(v float64) Result {
	d.scale.Push(math.Abs(v))
	avail := d.hist.Len()
	for m := 1; m <= d.cfg.MaxLag; m++ {
		if m > avail {
			break
		}
		d.sums[m-1].Push(math.Abs(v - d.hist.Last(m-1)))
	}
	d.hist.Push(v)
	res := d.decide()
	d.t++
	return res
}

// candidate evaluates the current curve and returns the most plausible
// periodicity lag (0 if none) together with its prominence.
func (d *MagnitudeDetector) candidate() (int, float64) {
	c := d.curve()
	eps := d.zeroEps()

	// Exact (or numerically exact) repetition: smallest zero lag wins;
	// this covers constant streams where every distance is zero.
	if f := c.Fundamental(eps); f > 0 {
		return f, 1
	}

	lag, ok := c.BestFundamentalMinimum(harmonicTol)
	if !ok {
		return 0, 0
	}
	mean := c.Mean()
	if mean <= eps {
		return 0, 0
	}
	if c.At(lag) > d.cfg.RelThreshold*mean {
		return 0, 0 // minimum not deep enough to be a periodicity
	}
	return lag, c.Prominence(lag)
}

func (d *MagnitudeDetector) decide() Result {
	res := Result{T: d.t}

	cand, prom := d.candidate()
	if cand > 0 && cand == d.lastCand {
		d.candRun++
	} else if cand > 0 {
		d.candRun = 1
	} else {
		d.candRun = 0
	}
	d.lastCand = cand
	confirmed := cand > 0 && d.candRun >= d.cfg.Confirm

	switch {
	case !d.locked && confirmed:
		d.locked = true
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		d.conf = prom
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, prom

	case d.locked && confirmed && cand != d.period:
		// The dominant minimum moved: re-lock and re-anchor.
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		d.conf = prom
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, prom

	case d.locked && cand == d.period:
		d.graceLeft = d.cfg.Grace
		d.conf = prom
		res.Locked, res.Period, res.Confidence = true, d.period, prom
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked && d.graceLeft > 0:
		d.graceLeft--
		res.Locked, res.Period, res.Confidence = true, d.period, d.conf
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked:
		d.locked = false
		d.period = 0
	}
	return res
}

// curve fills the scratch buffer with the current d(m) values.
func (d *MagnitudeDetector) curve() Curve {
	for m := 1; m <= d.cfg.MaxLag; m++ {
		s := d.sums[m-1]
		if !s.Full() {
			d.curveBuf[m-1] = math.NaN()
		} else {
			d.curveBuf[m-1] = s.Sum() / float64(d.cfg.Window)
		}
	}
	return Curve{D: d.curveBuf}
}

// Curve returns a copy of the current distance curve (paper Figure 4).
func (d *MagnitudeDetector) Curve() Curve {
	c := d.curve()
	out := make([]float64, len(c.D))
	copy(out, c.D)
	return Curve{D: out}
}

// History returns the retained samples, oldest first.
func (d *MagnitudeDetector) History() []float64 { return d.hist.Snapshot(nil) }

// Reset clears all state but keeps the configuration.
func (d *MagnitudeDetector) Reset() {
	d.hist.Reset()
	for i := range d.sums {
		d.sums[i].Reset()
	}
	d.scale.Reset()
	d.lastCand, d.candRun = 0, 0
	d.locked, d.period, d.anchor, d.graceLeft, d.conf = false, 0, 0, 0, 0
	d.t = 0
}

// Recompute refreshes every lag's sliding sum from its retained window,
// clearing accumulated floating-point drift on very long streams.
func (d *MagnitudeDetector) Recompute() {
	for _, s := range d.sums {
		s.Recompute()
	}
}

// Resize changes the window size (DPDWindowSize), replaying retained
// history. MaxLag becomes newWindow−1.
func (d *MagnitudeDetector) Resize(newWindow int) error {
	if newWindow < 2 {
		return fmt.Errorf("core: window %d outside [2,%d]", newWindow, MaxWindow)
	}
	nc := d.cfg
	nc.Window = newWindow
	nc.MaxLag = 0
	nc, err := nc.withDefaults()
	if err != nil {
		return err
	}
	old := d.hist.Snapshot(nil)
	wasLocked, oldPeriod, oldAnchor := d.locked, d.period, d.anchor
	d.cfg = nc
	d.alloc()

	keep := len(old)
	max := nc.Window + nc.MaxLag
	if keep > max {
		old = old[keep-max:]
	}
	for i, v := range old {
		for m := 1; m <= nc.MaxLag && m <= i; m++ {
			d.sums[m-1].Push(math.Abs(v - old[i-m]))
		}
		d.hist.Push(v)
	}

	// Keep the lock only if the replayed curve still supports it.
	d.locked = false
	d.lastCand, d.candRun = 0, 0
	if wasLocked && oldPeriod <= nc.MaxLag {
		if cand, prom := d.candidate(); cand == oldPeriod {
			d.locked = true
			d.period = oldPeriod
			d.anchor = oldAnchor
			d.graceLeft = nc.Grace
			d.conf = prom
			d.lastCand, d.candRun = cand, d.cfg.Confirm
		}
	}
	if !d.locked {
		d.period = 0
	}
	return nil
}
