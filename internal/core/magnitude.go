package core

import (
	"fmt"
	"math"

	"dpd/internal/series"
)

// MagnitudeDetector implements the paper's eq. (1) metric for streams
// whose sample values are meaningful magnitudes (e.g. the number of active
// CPUs): d(m) = (1/N)·Σ |x[n] − x[n−m]|. The detected periodicity is the
// lag of a significant local minimum of d.
//
// All per-lag accumulators live in one flat series.SumBank, and the curve
// analysis (zero lag, mean, local minima, harmonic suppression,
// prominence) runs as a single fused pass over the contiguous sums with a
// reusable minima scratch buffer — the whole Feed path is allocation-free.
type MagnitudeDetector struct {
	cfg  Config
	bank *series.SumBank

	scale *series.EWMA // running scale of |x|, for the zero tolerance

	lastCand int // candidate lag seen on the previous step
	candRun  int // consecutive steps the candidate has persisted

	locked    bool
	period    int
	anchor    uint64
	graceLeft int
	conf      float64

	t uint64

	curveBuf  []float64 // reused scratch: d(m) values of the current pass
	minimaBuf []int32   // reused scratch: local-minimum lags
}

// NewMagnitudeDetector returns a detector for magnitude streams.
func NewMagnitudeDetector(cfg Config) (*MagnitudeDetector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &MagnitudeDetector{cfg: c, scale: series.NewEWMA(0.05)}
	d.alloc()
	return d, nil
}

// MustMagnitudeDetector panics on config errors.
func MustMagnitudeDetector(cfg Config) *MagnitudeDetector {
	d, err := NewMagnitudeDetector(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *MagnitudeDetector) alloc() {
	d.bank = series.NewSumBank(d.cfg.Window, d.cfg.MaxLag)
	d.curveBuf = make([]float64, d.cfg.MaxLag)
	d.minimaBuf = make([]int32, 0, d.cfg.MaxLag)
}

// Window returns the current window size N.
func (d *MagnitudeDetector) Window() int { return d.cfg.Window }

// MaxLag returns the largest probed lag M.
func (d *MagnitudeDetector) MaxLag() int { return d.cfg.MaxLag }

// Samples returns the number of samples fed so far.
func (d *MagnitudeDetector) Samples() uint64 { return d.t }

// Locked returns the currently locked period (0 if none).
func (d *MagnitudeDetector) Locked() int {
	if !d.locked {
		return 0
	}
	return d.period
}

// Confidence returns the prominence of the current lock's minimum in
// [0,1] (0 if not locked).
func (d *MagnitudeDetector) Confidence() float64 {
	if !d.locked {
		return 0
	}
	return d.conf
}

// zeroEps is the absolute tolerance under which a distance counts as zero,
// scaled to the stream's own magnitude so that float accumulation noise on
// large-valued streams does not mask exact periodicity.
func (d *MagnitudeDetector) zeroEps() float64 {
	return 1e-9 * (1 + d.scale.Value())
}

// Feed processes one sample and returns the detection result.
func (d *MagnitudeDetector) Feed(v float64) Result {
	d.scale.Push(math.Abs(v))
	d.bank.Push(v)
	res := d.decide()
	d.t++
	return res
}

// FeedAll processes a batch of samples, writing one Result per sample into
// dst (grown if needed) and returning the filled slice. Passing a dst with
// sufficient capacity makes the batch path allocation-free.
func (d *MagnitudeDetector) FeedAll(vs []float64, dst []Result) []Result {
	if cap(dst) < len(vs) {
		dst = make([]Result, len(vs))
	}
	dst = dst[:len(vs)]
	for i, v := range vs {
		dst[i] = d.Feed(v)
	}
	return dst
}

// candidate evaluates the current curve and returns the most plausible
// periodicity lag (0 if none) together with its prominence. It is the
// fused equivalent of the former curve() + Fundamental +
// BestFundamentalMinimum + Mean + Prominence pipeline: one scan over the
// contiguous per-lag sums fills the reusable curve scratch, finds the
// first zero lag and accumulates the mean; a second tiny pass over the
// collected minima applies harmonic suppression. No allocation.
func (d *MagnitudeDetector) candidate() (int, float64) {
	valid := d.bank.ValidLags() // full lags are the prefix 1..valid
	if valid == 0 {
		return 0, 0
	}
	sums := d.bank.Sums()
	w := float64(d.cfg.Window)
	eps := d.zeroEps()
	dd := d.curveBuf

	// Pass 1: curve values, first zero lag, mean accumulator.
	firstZero := 0
	var meanSum float64
	for i := 0; i < valid; i++ {
		v := sums[i] / w
		dd[i] = v
		meanSum += v
		if firstZero == 0 && v <= eps {
			firstZero = i + 1
		}
	}
	// Exact (or numerically exact) repetition: smallest zero lag wins;
	// this covers constant streams where every distance is zero.
	if firstZero > 0 {
		return firstZero, 1
	}

	// Pass 2: strict local minima of the valid prefix. A lag qualifies if
	// it is below its left neighbor and not above its right one (a lag at
	// the valid boundary has no right neighbor and qualifies outright).
	minima := d.minimaBuf[:0]
	deepest := 0 // index into dd of the deepest minimum's lag-1
	for m := 2; m <= valid; m++ {
		v := dd[m-1]
		if v >= dd[m-2] {
			continue
		}
		if m < valid && v > dd[m] {
			continue
		}
		minima = append(minima, int32(m))
		if deepest == 0 || v < dd[deepest-1] {
			deepest = m
		}
	}
	d.minimaBuf = minima
	if len(minima) == 0 {
		return 0, 0
	}
	mean := meanSum / float64(valid)

	// Harmonic suppression: on a noisy p-periodic stream the minima at
	// p, 2p, 3p… have the same expected depth, and sampling noise can make
	// a multiple marginally deeper than the fundamental. Among minima
	// whose depth is within harmonicTol·mean of the deepest one, the
	// smallest lag wins.
	slack := harmonicTol * mean
	lag := deepest
	for _, m := range minima {
		if int(m) >= lag {
			break // minima are in increasing lag order
		}
		if dd[m-1] <= dd[deepest-1]+slack {
			lag = int(m)
			break
		}
	}

	if mean <= eps {
		return 0, 0
	}
	if dd[lag-1] > d.cfg.RelThreshold*mean {
		return 0, 0 // minimum not deep enough to be a periodicity
	}
	// Prominence: how deep the lag sits below the curve mean, in [0,1].
	p := 1 - dd[lag-1]/mean
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return lag, p
}

func (d *MagnitudeDetector) decide() Result {
	res := Result{T: d.t}

	cand, prom := d.candidate()
	if cand > 0 && cand == d.lastCand {
		d.candRun++
	} else if cand > 0 {
		d.candRun = 1
	} else {
		d.candRun = 0
	}
	d.lastCand = cand
	confirmed := cand > 0 && d.candRun >= d.cfg.Confirm

	switch {
	case !d.locked && confirmed:
		d.locked = true
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		d.conf = prom
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, prom

	case d.locked && confirmed && cand != d.period:
		// The dominant minimum moved: re-lock and re-anchor.
		d.period = cand
		d.anchor = d.t
		d.graceLeft = d.cfg.Grace
		d.conf = prom
		res.Locked, res.Period, res.Start, res.Confidence = true, cand, true, prom

	case d.locked && cand == d.period:
		d.graceLeft = d.cfg.Grace
		d.conf = prom
		res.Locked, res.Period, res.Confidence = true, d.period, prom
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked && d.graceLeft > 0:
		d.graceLeft--
		res.Locked, res.Period, res.Confidence = true, d.period, d.conf
		res.Start = (d.t-d.anchor)%uint64(d.period) == 0

	case d.locked:
		d.locked = false
		d.period = 0
	}
	return res
}

// Curve returns a copy of the current distance curve (paper Figure 4).
func (d *MagnitudeDetector) Curve() Curve {
	out := make([]float64, d.cfg.MaxLag)
	valid := d.bank.ValidLags()
	sums := d.bank.Sums()
	w := float64(d.cfg.Window)
	for i := range out {
		if i < valid {
			out[i] = sums[i] / w
		} else {
			out[i] = math.NaN()
		}
	}
	return Curve{D: out}
}

// History returns the retained samples, oldest first.
func (d *MagnitudeDetector) History() []float64 { return d.bank.History(nil) }

// Reset clears all state but keeps the configuration.
func (d *MagnitudeDetector) Reset() {
	d.bank.Reset()
	d.scale.Reset()
	d.lastCand, d.candRun = 0, 0
	d.locked, d.period, d.anchor, d.graceLeft, d.conf = false, 0, 0, 0, 0
	d.t = 0
}

// Recompute refreshes every lag's sliding sum from its retained window,
// clearing accumulated floating-point drift on very long streams.
func (d *MagnitudeDetector) Recompute() {
	d.bank.Recompute()
}

// Resize changes the window size (DPDWindowSize), replaying retained
// history. MaxLag becomes newWindow−1.
func (d *MagnitudeDetector) Resize(newWindow int) error {
	if newWindow < 2 {
		return fmt.Errorf("core: window %d outside [2,%d]", newWindow, MaxWindow)
	}
	nc := d.cfg
	nc.Window = newWindow
	nc.MaxLag = 0
	nc, err := nc.withDefaults()
	if err != nil {
		return err
	}
	old := d.bank.History(nil)
	wasLocked, oldPeriod, oldAnchor := d.locked, d.period, d.anchor
	d.cfg = nc
	d.alloc()

	keep := len(old)
	max := nc.Window + nc.MaxLag
	if keep > max {
		old = old[keep-max:]
	}
	for _, v := range old {
		d.bank.Push(v)
	}

	// Keep the lock only if the replayed curve still supports it.
	d.locked = false
	d.lastCand, d.candRun = 0, 0
	if wasLocked && oldPeriod <= nc.MaxLag {
		if cand, prom := d.candidate(); cand == oldPeriod {
			d.locked = true
			d.period = oldPeriod
			d.anchor = oldAnchor
			d.graceLeft = nc.Grace
			d.conf = prom
			d.lastCand, d.candRun = cand, d.cfg.Confirm
		}
	}
	if !d.locked {
		d.period = 0
	}
	return nil
}
