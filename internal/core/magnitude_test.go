package core

import (
	"math"
	"testing"

	"dpd/internal/series"
)

func TestMagnitudeDetectorExactPeriodic(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 30})
	g := series.NewPatternGenerator([]float64{1, 4, 2, 8, 5, 7})
	var last Result
	for i := 0; i < 200; i++ {
		last = d.Feed(g.Next())
	}
	if !last.Locked || last.Period != 6 {
		t.Fatalf("final=%+v, want period 6", last)
	}
	if last.Confidence != 1 {
		t.Fatalf("exact lock confidence=%v, want 1", last.Confidence)
	}
}

func TestMagnitudeDetectorConstantStreamIsPeriodOne(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 16})
	var last Result
	for i := 0; i < 100; i++ {
		last = d.Feed(42)
	}
	if !last.Locked || last.Period != 1 {
		t.Fatalf("constant stream: %+v, want period 1", last)
	}
}

func TestMagnitudeDetectorSinePeriod(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 100})
	g := series.Sine(8, 25)
	var last Result
	for i := 0; i < 500; i++ {
		last = d.Feed(g.Next())
	}
	if !last.Locked || last.Period != 25 {
		t.Fatalf("sine: %+v, want period 25", last)
	}
}

func TestMagnitudeDetectorNoisySquareWaveFigure4(t *testing.T) {
	// The paper's Figure 3/4 scenario: a CPU-usage-like wave with period 44
	// whose repetitions are similar but not identical. Eq. (1) must find the
	// local minimum at m = 44.
	d := MustMagnitudeDetector(Config{Window: 100, Confirm: 3})
	rng := series.NewRNG(99)
	g := series.WithNoise(series.Square(16, 1, 30, 14), 0.4, rng)
	var last Result
	for i := 0; i < 600; i++ {
		last = d.Feed(g.Next())
	}
	if !last.Locked || last.Period != 44 {
		t.Fatalf("noisy square: %+v, want period 44", last)
	}
	if last.Confidence <= 0.5 {
		t.Fatalf("confidence=%v, want > 0.5 for a deep minimum", last.Confidence)
	}
}

func TestMagnitudeDetectorRejectsNoise(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 64, Confirm: 4})
	rng := series.NewRNG(3)
	locks := 0
	for i := 0; i < 2000; i++ {
		if r := d.Feed(rng.Float64() * 100); r.Locked {
			locks++
		}
	}
	// Pure noise: spurious locks must be rare (< 2% of samples).
	if locks > 40 {
		t.Fatalf("%d locked samples on white noise", locks)
	}
}

func TestMagnitudeDetectorRejectsMonotonicRamp(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 32})
	for i := 0; i < 500; i++ {
		if r := d.Feed(float64(i)); r.Locked {
			t.Fatalf("locked on a monotonic ramp at %d (period %d)", i, r.Period)
		}
	}
}

func TestMagnitudeDetectorCurveMatchesNaive(t *testing.T) {
	n := 12
	d := MustMagnitudeDetector(Config{Window: n})
	rng := series.NewRNG(17)
	var hist []float64
	for i := 0; i < 250; i++ {
		v := math.Floor(rng.Float64()*8) + math.Sin(float64(i)/5)
		hist = append(hist, v)
		d.Feed(v)
		got := d.Curve()
		want := NaiveCurveL1(hist, n, n-1)
		for m := 1; m < n; m++ {
			gv, wv := got.Valid(m), want.Valid(m)
			if gv != wv {
				t.Fatalf("step %d lag %d: validity %v vs %v", i, m, gv, wv)
			}
			if gv && math.Abs(got.At(m)-want.At(m)) > 1e-9 {
				t.Fatalf("step %d lag %d: d=%v naive=%v", i, m, got.At(m), want.At(m))
			}
		}
	}
}

func TestMagnitudeDetectorStartSpacing(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 40})
	g := series.NewPatternGenerator([]float64{5, 1, 3, 9, 2, 6, 8, 4})
	var starts []uint64
	for i := 0; i < 400; i++ {
		if r := d.Feed(g.Next()); r.Start {
			starts = append(starts, r.T)
		}
	}
	if len(starts) < 5 {
		t.Fatalf("only %d starts", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != 8 {
			t.Fatalf("starts %v not spaced by 8", starts)
		}
	}
}

func TestMagnitudeDetectorAmplitudeScaleInvariance(t *testing.T) {
	// Scaling the signal must not change the detected period (eq. (1) is
	// homogeneous in the amplitude).
	for _, amp := range []float64{0.001, 1, 1000} {
		d := MustMagnitudeDetector(Config{Window: 50})
		g := series.Sine(amp, 10)
		var last Result
		for i := 0; i < 300; i++ {
			last = d.Feed(g.Next())
		}
		if !last.Locked || last.Period != 10 {
			t.Fatalf("amp=%v: %+v, want period 10", amp, last)
		}
	}
}

func TestMagnitudeDetectorResizePreservesLock(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 64})
	g := series.NewPatternGenerator([]float64{2, 7, 4})
	for i := 0; i < 300; i++ {
		d.Feed(g.Next())
	}
	if d.Locked() != 3 {
		t.Fatalf("pre-resize lock=%d", d.Locked())
	}
	if err := d.Resize(12); err != nil {
		t.Fatal(err)
	}
	if d.Locked() != 3 {
		t.Fatalf("post-resize lock=%d, want 3", d.Locked())
	}
	var last Result
	for i := 0; i < 50; i++ {
		last = d.Feed(g.Next())
	}
	if !last.Locked || last.Period != 3 {
		t.Fatalf("post-resize feed: %+v", last)
	}
}

func TestMagnitudeDetectorResizeRejectsBad(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 16})
	if err := d.Resize(0); err == nil {
		t.Fatal("Resize(0) must fail")
	}
}

func TestMagnitudeDetectorRecomputeIdempotentWhenClean(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 20})
	g := series.Sine(3, 7)
	for i := 0; i < 100; i++ {
		d.Feed(g.Next())
	}
	before := d.Curve()
	d.Recompute()
	after := d.Curve()
	for m := 1; m <= before.MaxLag(); m++ {
		if before.Valid(m) != after.Valid(m) {
			t.Fatalf("validity changed at lag %d", m)
		}
		if before.Valid(m) && math.Abs(before.At(m)-after.At(m)) > 1e-9 {
			t.Fatalf("lag %d: %v → %v after recompute", m, before.At(m), after.At(m))
		}
	}
}

func TestMagnitudeDetectorReset(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 16})
	for i := 0; i < 100; i++ {
		d.Feed(float64(i % 4))
	}
	d.Reset()
	if d.Locked() != 0 || d.Samples() != 0 {
		t.Fatalf("after reset lock=%d samples=%d", d.Locked(), d.Samples())
	}
	var last Result
	for i := 0; i < 100; i++ {
		last = d.Feed(float64(i % 5))
	}
	if !last.Locked || last.Period != 5 {
		t.Fatalf("unusable after reset: %+v", last)
	}
}

func TestMagnitudeDetectorPhaseChangeRelocks(t *testing.T) {
	d := MustMagnitudeDetector(Config{Window: 32, Grace: 4})
	g1 := series.NewPatternGenerator([]float64{1, 2, 3, 4})
	for i := 0; i < 150; i++ {
		d.Feed(g1.Next())
	}
	if d.Locked() != 4 {
		t.Fatalf("phase 1 lock=%d", d.Locked())
	}
	g2 := series.NewPatternGenerator([]float64{10, 20, 30, 40, 50, 60, 70})
	var last Result
	for i := 0; i < 300; i++ {
		last = d.Feed(g2.Next())
	}
	if !last.Locked || last.Period != 7 {
		t.Fatalf("phase 2: %+v, want period 7", last)
	}
}

func TestMagnitudeConfigRelThresholdValidation(t *testing.T) {
	if _, err := NewMagnitudeDetector(Config{Window: 16, RelThreshold: 2}); err == nil {
		t.Fatal("RelThreshold > 1 accepted")
	}
	if _, err := NewMagnitudeDetector(Config{Window: 16, RelThreshold: -0.5}); err == nil {
		t.Fatal("negative RelThreshold accepted")
	}
}

func TestMagnitudeDetectorTightThresholdRejectsShallowMinima(t *testing.T) {
	// A weakly periodic signal: small periodic component buried in noise.
	// A strict threshold must refuse to lock where a lax one accepts.
	run := func(th float64) int {
		d := MustMagnitudeDetector(Config{Window: 60, RelThreshold: th, Confirm: 2})
		rng := series.NewRNG(8)
		locks := 0
		for i := 0; i < 1200; i++ {
			v := 0.4*math.Sin(2*math.Pi*float64(i)/15) + 3*rng.Norm()
			if r := d.Feed(v); r.Locked {
				locks++
			}
		}
		return locks
	}
	strict, lax := run(0.05), run(0.95)
	if strict >= lax {
		t.Fatalf("strict threshold locked %d >= lax %d", strict, lax)
	}
}
