package core

import "testing"

// Micro benchmarks pinning the cost of the unified-interface adapter
// over the raw detector hot path: the engine must add only a tracking
// branch, not a call frame (EventEngine.Feed fuses the detector body),
// and dispatching through the Detector interface must not add more
// than the unavoidable indirect call.

func BenchmarkMicroRawEventFeed(b *testing.B) {
	d := MustEventDetector(Config{Window: 64})
	for i := 0; i < 200; i++ {
		d.Feed(int64(i % 8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Feed(int64(i % 8))
	}
}

func BenchmarkMicroEngineFeedConcrete(b *testing.B) {
	e := NewEventEngine(MustEventDetector(Config{Window: 64}))
	for i := 0; i < 200; i++ {
		e.Feed(Sample{Value: int64(i % 8)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(Sample{Value: int64(i % 8)})
	}
}

func BenchmarkMicroEngineFeedInterface(b *testing.B) {
	var e Detector = NewEventEngine(MustEventDetector(Config{Window: 64}))
	for i := 0; i < 200; i++ {
		e.Feed(Sample{Value: int64(i % 8)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feed(Sample{Value: int64(i % 8)})
	}
}
