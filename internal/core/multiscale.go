package core

import (
	"fmt"
	"sort"
)

// DefaultLadder is the window ladder used when none is given: small
// windows lock onto short inner periodicities quickly (the paper notes
// windows below 10 for very short periods), large ones capture outer
// iteration structure up to 1023 samples.
var DefaultLadder = []int{8, 32, 256, 1024}

// MultiScaleDetector runs a ladder of event detectors with increasing
// window sizes over the same stream. Nested iterative applications
// (hydro2d, turb3d in Table 2) expose different periodicities at different
// scales and phases of execution; no single window captures all of them.
//
// Deep ladder levels stay dormant while the stream is still shorter than
// their window: a level with window N cannot lock before sample N, so its
// samples are buffered and replayed in bulk the moment it could first
// matter. Streams that end before a level's window is reachable never pay
// for that level at all, and the produced results are bit-identical to
// feeding every level from the start.
type MultiScaleDetector struct {
	levels []*EventDetector
	// awake is the number of leading levels fed directly; levels[awake:]
	// are dormant and will be warmed from pend when ms.t reaches their
	// window size.
	awake   int
	pend    []int64  // samples buffered for dormant levels (cap = largest window)
	scratch []Result // backing storage for Feed's MultiResult.PerLevel
	t       uint64
}

// NewMultiScaleDetector builds a ladder detector. windows must be strictly
// increasing and each ≥ 2; nil selects DefaultLadder. The remaining Config
// fields (Confirm, Grace) apply to every level.
func NewMultiScaleDetector(windows []int, cfg Config) (*MultiScaleDetector, error) {
	if windows == nil {
		windows = DefaultLadder
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("core: empty window ladder")
	}
	ms := &MultiScaleDetector{}
	prev := 1
	for _, w := range windows {
		if w <= prev {
			return nil, fmt.Errorf("core: ladder windows must be strictly increasing, got %v", windows)
		}
		prev = w
		c := cfg
		c.Window = w
		c.MaxLag = 0
		det, err := NewEventDetector(c)
		if err != nil {
			return nil, err
		}
		ms.levels = append(ms.levels, det)
	}
	ms.pend = make([]int64, 0, prev) // prev == largest window
	ms.scratch = make([]Result, len(ms.levels))
	return ms, nil
}

// MustMultiScaleDetector panics on config errors.
func MustMultiScaleDetector(windows []int, cfg Config) *MultiScaleDetector {
	ms, err := NewMultiScaleDetector(windows, cfg)
	if err != nil {
		panic(err)
	}
	return ms
}

// Levels returns the number of ladder levels.
func (ms *MultiScaleDetector) Levels() int { return len(ms.levels) }

// Samples returns the number of samples fed so far.
func (ms *MultiScaleDetector) Samples() uint64 { return ms.t }

// Level returns the i-th underlying detector (0 = smallest window).
func (ms *MultiScaleDetector) Level(i int) *EventDetector { return ms.levels[i] }

// MultiResult aggregates the per-level results of one sample.
type MultiResult struct {
	// PerLevel holds each ladder level's result, smallest window first.
	// For results returned by Feed it aliases a scratch buffer owned by
	// the detector and is overwritten by the next Feed; callers that
	// retain results across samples must copy it (or use FeedInto /
	// FeedAll with their own storage).
	PerLevel []Result
	// Primary is the result of the largest-window level that is locked —
	// the outermost iterative structure, which is what the SelfAnalyzer
	// times (one outer iteration contains the whole parallel region).
	Primary Result
	// Shortest is the result of the smallest-window locked level, i.e.
	// the most fine-grained repetition currently active.
	Shortest Result
	// T is the sample index.
	T uint64
}

// Feed processes one event through every ladder level. The returned
// MultiResult's PerLevel slice aliases an internal scratch buffer (see
// MultiResult); Feed itself performs no allocation in steady state.
func (ms *MultiScaleDetector) Feed(v int64) MultiResult {
	return ms.FeedInto(v, ms.scratch)
}

// FeedInto is Feed with caller-owned PerLevel storage: per must have
// length Levels() and receives each level's result. Nothing is retained.
func (ms *MultiScaleDetector) FeedInto(v int64, per []Result) MultiResult {
	// Wake dormant levels whose window the stream has now reached: replay
	// every buffered sample, which reproduces the exact state the level
	// would have had if fed from the start (it cannot lock before then).
	for ms.awake < len(ms.levels) && ms.t >= uint64(ms.levels[ms.awake].Window()) {
		det := ms.levels[ms.awake]
		for _, s := range ms.pend {
			det.Feed(s)
		}
		ms.awake++
	}
	if ms.awake < len(ms.levels) {
		ms.pend = append(ms.pend, v)
	} else if len(ms.pend) > 0 {
		ms.pend = ms.pend[:0]
	}

	out := MultiResult{PerLevel: per, T: ms.t}
	out.Primary = Result{T: ms.t}
	out.Shortest = Result{T: ms.t}
	for i, det := range ms.levels {
		var r Result
		if i < ms.awake {
			r = det.Feed(v)
		} else {
			r = Result{T: ms.t} // dormant: provably unlocked at this sample
		}
		per[i] = r
		if r.Locked {
			out.Primary = r // later levels have larger windows
			if !out.Shortest.Locked {
				out.Shortest = r
			}
		}
	}
	ms.t++
	return out
}

// FeedAll processes a batch of samples, writing one MultiResult per sample
// into dst (grown if needed) and returning the filled slice. Each element's
// PerLevel storage is reused when its capacity suffices, so feeding batches
// through a recycled dst is allocation-free in steady state.
func (ms *MultiScaleDetector) FeedAll(vs []int64, dst []MultiResult) []MultiResult {
	if cap(dst) < len(vs) {
		dst = make([]MultiResult, len(vs))
	}
	dst = dst[:len(vs)]
	for i, v := range vs {
		per := dst[i].PerLevel
		if cap(per) < len(ms.levels) {
			per = make([]Result, len(ms.levels))
		}
		dst[i] = ms.FeedInto(v, per[:len(ms.levels)])
	}
	return dst
}

// LockedPeriods returns the currently locked period of each level
// (0 entries for unlocked levels), smallest window first.
func (ms *MultiScaleDetector) LockedPeriods() []int {
	out := make([]int, len(ms.levels))
	for i, det := range ms.levels {
		out[i] = det.Locked()
	}
	return out
}

// Reset clears every level.
func (ms *MultiScaleDetector) Reset() {
	for _, det := range ms.levels {
		det.Reset()
	}
	ms.awake = 0
	ms.pend = ms.pend[:0]
	ms.t = 0
}

// PeriodStat describes one distinct periodicity observed during a stream's
// lifetime, as reported in the paper's Table 2.
type PeriodStat struct {
	// Period is the periodicity in samples.
	Period int `json:"period"`
	// FirstAt is the sample index of the first confirmation.
	FirstAt uint64 `json:"first_at"`
	// LastAt is the sample index of the latest confirmation.
	LastAt uint64 `json:"last_at"`
	// Samples is the number of samples for which this period was locked.
	Samples uint64 `json:"samples"`
	// Starts is the number of period-start segmentation marks emitted.
	Starts uint64 `json:"starts"`
	// Window is the smallest detector window that confirmed the period.
	Window int `json:"window"`
}

// PeriodTracker aggregates detector results into the set of distinct
// periodicities seen over a whole stream (Table 2's "Detected
// periodicities" column).
type PeriodTracker struct {
	stats map[int]*PeriodStat
}

// NewPeriodTracker returns an empty tracker.
func NewPeriodTracker() *PeriodTracker {
	return &PeriodTracker{stats: make(map[int]*PeriodStat)}
}

// Reset clears every accumulated statistic while keeping the allocated
// period slots, so a tracker replaying streams repeatedly (a cold-start
// bench loop, a pooled stream recycled from a freelist) stops
// allocating once every recurring period owns a slot. A zeroed slot
// (Samples == 0) counts as never observed: it is skipped by Periods,
// SignificantPeriods, Stats and Stat, and re-initialized on its next
// observation.
func (pt *PeriodTracker) Reset() {
	for _, s := range pt.stats {
		s.FirstAt, s.LastAt, s.Samples, s.Starts, s.Window = 0, 0, 0, 0, 0
	}
}

// Observe folds in one result produced by a detector with the given window.
func (pt *PeriodTracker) Observe(r Result, window int) {
	if !r.Locked || r.Period <= 0 {
		return
	}
	s, ok := pt.stats[r.Period]
	if !ok {
		s = &PeriodStat{Period: r.Period, FirstAt: r.T, Window: window}
		pt.stats[r.Period] = s
	} else if s.Samples == 0 {
		// Slot recycled by Reset: first observation of the new pass.
		s.FirstAt, s.Window = r.T, window
	}
	s.LastAt = r.T
	s.Samples++
	if r.Start {
		s.Starts++
	}
	if window < s.Window {
		s.Window = window
	}
}

// ObserveMulti folds in a multi-scale result.
func (pt *PeriodTracker) ObserveMulti(mr MultiResult, ms *MultiScaleDetector) {
	for i, r := range mr.PerLevel {
		pt.Observe(r, ms.Level(i).Window())
	}
}

// Periods returns the distinct periodicities sorted ascending.
func (pt *PeriodTracker) Periods() []int {
	out := make([]int, 0, len(pt.stats))
	for p, s := range pt.stats {
		if s.Samples > 0 {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// SignificantPeriods returns periods that stayed locked for at least
// minSamples samples, filtering out transient flickers.
func (pt *PeriodTracker) SignificantPeriods(minSamples uint64) []int {
	return pt.AppendSignificant(minSamples, nil)
}

// AppendSignificant appends the significant periods (locked for at
// least minSamples samples) to dst in ascending order, recycled like
// append — the allocation-free form of SignificantPeriods for replay
// loops that reuse the result slice across Reset passes.
func (pt *PeriodTracker) AppendSignificant(minSamples uint64, dst []int) []int {
	for p, s := range pt.stats {
		if s.Samples >= minSamples {
			dst = append(dst, p)
		}
	}
	sort.Ints(dst)
	return dst
}

// Stat returns the statistics for period p (nil if never observed,
// including slots zeroed by Reset and not yet re-observed).
func (pt *PeriodTracker) Stat(p int) *PeriodStat {
	s := pt.stats[p]
	if s == nil || s.Samples == 0 {
		return nil
	}
	return s
}

// Stats returns all period statistics sorted by period.
func (pt *PeriodTracker) Stats() []PeriodStat {
	ps := pt.Periods()
	out := make([]PeriodStat, len(ps))
	for i, p := range ps {
		out[i] = *pt.stats[p]
	}
	return out
}
