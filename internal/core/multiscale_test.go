package core

import (
	"testing"

	"dpd/internal/series"
)

// nestedStream builds a hydro2d-style stream: header, a run of identical
// addresses (periodicity 1), an inner pattern repeated (periodicity
// len(inner)), and a footer — the whole thing cycled (outer periodicity =
// total length).
func nestedStream(cycles int) (stream []int64, inner, outer int) {
	header := []int64{9001, 9002, 9003}
	run := series.RepeatInt([]int64{7777}, 12)
	innerPat := []int64{100, 200, 300, 400}
	footer := []int64{8001, 8002}
	var pat []int64
	pat = append(pat, header...)
	pat = append(pat, run...)
	for i := 0; i < 6; i++ {
		pat = append(pat, innerPat...)
	}
	pat = append(pat, footer...)
	outer = len(pat) // 3+12+24+2 = 41
	for i := 0; i < cycles; i++ {
		stream = append(stream, pat...)
	}
	return stream, len(innerPat), outer
}

func TestMultiScaleDetectsNestedPeriodicities(t *testing.T) {
	stream, inner, outer := nestedStream(6)
	ms := MustMultiScaleDetector([]int{8, 16, 64}, Config{})
	tr := NewPeriodTracker()
	for _, v := range stream {
		mr := ms.Feed(v)
		tr.ObserveMulti(mr, ms)
	}
	got := tr.Periods()
	want := map[int]bool{1: true, inner: true, outer: true}
	for _, w := range []int{1, inner, outer} {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("period %d not detected; got %v", w, got)
		}
	}
	// No spurious periods beyond the constructed ones.
	for _, g := range got {
		if !want[g] {
			t.Errorf("spurious period %d detected; got %v", g, got)
		}
	}
}

func TestMultiScalePrimaryIsLargestWindowLock(t *testing.T) {
	stream, _, outer := nestedStream(8)
	ms := MustMultiScaleDetector([]int{8, 64}, Config{})
	var last MultiResult
	for _, v := range stream {
		last = ms.Feed(v)
	}
	// By the end of the stream the large window must be locked on the
	// outer period and Primary must reflect it.
	if !last.Primary.Locked || last.Primary.Period != outer {
		t.Fatalf("Primary=%+v, want outer period %d", last.Primary, outer)
	}
}

func TestMultiScaleShortestDuringInnerPhase(t *testing.T) {
	// Feed only the inner phase: the small window locks, the big one can't.
	ms := MustMultiScaleDetector([]int{8, 512}, Config{})
	var last MultiResult
	for i := 0; i < 60; i++ {
		last = ms.Feed(int64(i % 3))
	}
	if !last.Shortest.Locked || last.Shortest.Period != 3 {
		t.Fatalf("Shortest=%+v, want period 3", last.Shortest)
	}
	if last.PerLevel[1].Locked {
		t.Fatal("512-window cannot be full after 60 samples")
	}
	// Primary falls back to the small window's lock: it is the only one.
	if !last.Primary.Locked || last.Primary.Period != 3 {
		t.Fatalf("Primary=%+v, want fallback to period 3", last.Primary)
	}
}

func TestMultiScaleLockedPeriods(t *testing.T) {
	ms := MustMultiScaleDetector([]int{8, 32}, Config{})
	for i := 0; i < 100; i++ {
		ms.Feed(int64(i % 4))
	}
	lp := ms.LockedPeriods()
	if len(lp) != 2 || lp[0] != 4 || lp[1] != 4 {
		t.Fatalf("LockedPeriods=%v, want [4 4]", lp)
	}
}

func TestMultiScaleValidation(t *testing.T) {
	if _, err := NewMultiScaleDetector([]int{}, Config{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewMultiScaleDetector([]int{16, 8}, Config{}); err == nil {
		t.Error("non-increasing ladder accepted")
	}
	if _, err := NewMultiScaleDetector([]int{8, 8}, Config{}); err == nil {
		t.Error("duplicate ladder accepted")
	}
	if _, err := NewMultiScaleDetector([]int{1, 8}, Config{}); err == nil {
		t.Error("window 1 accepted")
	}
}

func TestMultiScaleDefaultLadder(t *testing.T) {
	ms := MustMultiScaleDetector(nil, Config{})
	if ms.Levels() != len(DefaultLadder) {
		t.Fatalf("Levels=%d, want %d", ms.Levels(), len(DefaultLadder))
	}
	for i, w := range DefaultLadder {
		if ms.Level(i).Window() != w {
			t.Errorf("level %d window=%d, want %d", i, ms.Level(i).Window(), w)
		}
	}
}

func TestMultiScaleReset(t *testing.T) {
	ms := MustMultiScaleDetector([]int{8, 32}, Config{})
	for i := 0; i < 100; i++ {
		ms.Feed(int64(i % 2))
	}
	ms.Reset()
	for _, p := range ms.LockedPeriods() {
		if p != 0 {
			t.Fatal("lock survived reset")
		}
	}
	var last MultiResult
	for i := 0; i < 100; i++ {
		last = ms.Feed(int64(i % 5))
	}
	if !last.Primary.Locked || last.Primary.Period != 5 {
		t.Fatalf("unusable after reset: %+v", last.Primary)
	}
}

func TestPeriodTrackerStats(t *testing.T) {
	tr := NewPeriodTracker()
	// Simulate a lock on period 4 for 10 samples with 2 starts, window 8.
	for i := uint64(0); i < 10; i++ {
		tr.Observe(Result{Locked: true, Period: 4, Start: i%5 == 0, T: 100 + i}, 8)
	}
	s := tr.Stat(4)
	if s == nil {
		t.Fatal("period 4 not tracked")
	}
	if s.FirstAt != 100 || s.LastAt != 109 || s.Samples != 10 || s.Starts != 2 || s.Window != 8 {
		t.Fatalf("stat=%+v", *s)
	}
}

func TestPeriodTrackerWindowKeepsSmallest(t *testing.T) {
	tr := NewPeriodTracker()
	tr.Observe(Result{Locked: true, Period: 6, T: 1}, 64)
	tr.Observe(Result{Locked: true, Period: 6, T: 2}, 8)
	tr.Observe(Result{Locked: true, Period: 6, T: 3}, 32)
	if got := tr.Stat(6).Window; got != 8 {
		t.Fatalf("Window=%d, want smallest 8", got)
	}
}

func TestPeriodTrackerIgnoresUnlocked(t *testing.T) {
	tr := NewPeriodTracker()
	tr.Observe(Result{Locked: false, Period: 3}, 8)
	tr.Observe(Result{Locked: true, Period: 0}, 8)
	if len(tr.Periods()) != 0 {
		t.Fatalf("Periods=%v, want empty", tr.Periods())
	}
}

func TestPeriodTrackerSignificantFilters(t *testing.T) {
	tr := NewPeriodTracker()
	for i := uint64(0); i < 100; i++ {
		tr.Observe(Result{Locked: true, Period: 5, T: i}, 8)
	}
	tr.Observe(Result{Locked: true, Period: 13, T: 200}, 8) // one flicker
	if got := tr.SignificantPeriods(10); len(got) != 1 || got[0] != 5 {
		t.Fatalf("SignificantPeriods=%v, want [5]", got)
	}
	if got := tr.Periods(); len(got) != 2 {
		t.Fatalf("Periods=%v, want both", got)
	}
}

func TestPeriodTrackerStatsSorted(t *testing.T) {
	tr := NewPeriodTracker()
	for _, p := range []int{24, 1, 269} {
		tr.Observe(Result{Locked: true, Period: p}, 8)
	}
	stats := tr.Stats()
	if len(stats) != 3 || stats[0].Period != 1 || stats[1].Period != 24 || stats[2].Period != 269 {
		t.Fatalf("Stats order wrong: %+v", stats)
	}
}
