package core

import (
	"fmt"

	"dpd/internal/series"
)

// EventPredictor uses a locked periodicity to predict future events:
// once the stream is p-periodic, x̂[t+k] = x[t+k−p] (paper §1, use 3:
// "Given the periodicity of a data stream, future parameter values can be
// predicted").
//
// The predictor also keeps online accuracy counters so callers can gauge
// how trustworthy the current lock is.
type EventPredictor struct {
	det  *EventDetector
	hist *series.IntRing // deep history for lookback, ≥ MaxLag+1 samples

	pending int64 // prediction made for the next sample
	valid   bool

	hits, misses uint64
}

// NewEventPredictor wraps an event detector. The detector is owned by the
// predictor: callers must feed samples only through Feed.
func NewEventPredictor(cfg Config) (*EventPredictor, error) {
	det, err := NewEventDetector(cfg)
	if err != nil {
		return nil, err
	}
	return &EventPredictor{
		det:  det,
		hist: series.NewIntRing(det.MaxLag() + 1),
	}, nil
}

// MustEventPredictor panics on config errors.
func MustEventPredictor(cfg Config) *EventPredictor {
	p, err := NewEventPredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Feed processes the actual next sample, scores any outstanding
// prediction, and returns the detection result.
func (p *EventPredictor) Feed(v int64) Result {
	if p.valid {
		if p.pending == v {
			p.hits++
		} else {
			p.misses++
		}
		p.valid = false
	}
	r := p.det.Feed(v)
	p.hist.Push(v)

	// Form the prediction for the next sample: x̂[t+1] = x[t+1−p].
	if r.Locked && r.Period >= 1 && p.hist.Len() >= r.Period {
		p.pending = p.hist.Last(r.Period - 1)
		p.valid = true
	}
	return r
}

// Predict returns the forecast k ≥ 1 samples ahead and whether a forecast
// is possible (a lock is held and history is deep enough).
func (p *EventPredictor) Predict(k int) (int64, bool) {
	if k < 1 {
		panic(fmt.Sprintf("core: prediction horizon %d must be >= 1", k))
	}
	period := p.det.Locked()
	if period == 0 {
		return 0, false
	}
	// x̂[t+k] = x[t + (k mod p) − p]; reduce the horizon into one period.
	off := k % period
	if off == 0 {
		off = period
	}
	back := period - off // 0 = newest retained sample
	if back >= p.hist.Len() {
		return 0, false
	}
	return p.hist.Last(back), true
}

// Accuracy returns the online one-step hit rate and the number of scored
// predictions.
func (p *EventPredictor) Accuracy() (rate float64, scored uint64) {
	scored = p.hits + p.misses
	if scored == 0 {
		return 0, 0
	}
	return float64(p.hits) / float64(scored), scored
}

// Detector exposes the wrapped detector (read-only use).
func (p *EventPredictor) Detector() *EventDetector { return p.det }

// Reset clears all state.
func (p *EventPredictor) Reset() {
	p.det.Reset()
	p.hist.Reset()
	p.valid = false
	p.hits, p.misses = 0, 0
}

// MagnitudePredictor is the magnitude-stream analogue of EventPredictor.
type MagnitudePredictor struct {
	det  *MagnitudeDetector
	hist *series.Ring

	pending float64
	valid   bool

	absErrSum float64
	scored    uint64
}

// NewMagnitudePredictor wraps a magnitude detector.
func NewMagnitudePredictor(cfg Config) (*MagnitudePredictor, error) {
	det, err := NewMagnitudeDetector(cfg)
	if err != nil {
		return nil, err
	}
	return &MagnitudePredictor{
		det:  det,
		hist: series.NewRing(det.MaxLag() + 1),
	}, nil
}

// MustMagnitudePredictor panics on config errors.
func MustMagnitudePredictor(cfg Config) *MagnitudePredictor {
	p, err := NewMagnitudePredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Feed processes the actual next sample, scoring the pending forecast.
func (p *MagnitudePredictor) Feed(v float64) Result {
	if p.valid {
		e := p.pending - v
		if e < 0 {
			e = -e
		}
		p.absErrSum += e
		p.scored++
		p.valid = false
	}
	r := p.det.Feed(v)
	p.hist.Push(v)
	if r.Locked && r.Period >= 1 && p.hist.Len() >= r.Period {
		p.pending = p.hist.Last(r.Period - 1)
		p.valid = true
	}
	return r
}

// Predict returns the forecast k ≥ 1 samples ahead.
func (p *MagnitudePredictor) Predict(k int) (float64, bool) {
	if k < 1 {
		panic(fmt.Sprintf("core: prediction horizon %d must be >= 1", k))
	}
	period := p.det.Locked()
	if period == 0 {
		return 0, false
	}
	off := k % period
	if off == 0 {
		off = period
	}
	back := period - off
	if back >= p.hist.Len() {
		return 0, false
	}
	return p.hist.Last(back), true
}

// MeanAbsError returns the online one-step mean absolute prediction error
// and the number of scored predictions.
func (p *MagnitudePredictor) MeanAbsError() (mae float64, scored uint64) {
	if p.scored == 0 {
		return 0, 0
	}
	return p.absErrSum / float64(p.scored), p.scored
}

// Detector exposes the wrapped detector.
func (p *MagnitudePredictor) Detector() *MagnitudeDetector { return p.det }

// Reset clears all state.
func (p *MagnitudePredictor) Reset() {
	p.det.Reset()
	p.hist.Reset()
	p.valid = false
	p.absErrSum, p.scored = 0, 0
}
