package core

import (
	"testing"
)

func TestEventPredictorPerfectOnPeriodicStream(t *testing.T) {
	p := MustEventPredictor(Config{Window: 16})
	pat := []int64{11, 22, 33, 44, 55}
	for i := 0; i < 300; i++ {
		p.Feed(pat[i%5])
	}
	rate, scored := p.Accuracy()
	if scored < 200 {
		t.Fatalf("scored=%d, want most samples after lock", scored)
	}
	if rate != 1 {
		t.Fatalf("hit rate=%v, want 1 on an exactly periodic stream", rate)
	}
}

func TestEventPredictorPredictHorizon(t *testing.T) {
	p := MustEventPredictor(Config{Window: 16})
	pat := []int64{11, 22, 33, 44, 55}
	n := 300
	for i := 0; i < n; i++ {
		p.Feed(pat[i%5])
	}
	// Last fed sample was index n−1; prediction k ahead must equal the
	// pattern value at (n−1+k) mod 5.
	for k := 1; k <= 12; k++ {
		got, ok := p.Predict(k)
		if !ok {
			t.Fatalf("Predict(%d) not available", k)
		}
		want := pat[(n-1+k)%5]
		if got != want {
			t.Fatalf("Predict(%d)=%d, want %d", k, got, want)
		}
	}
}

func TestEventPredictorUnavailableWithoutLock(t *testing.T) {
	p := MustEventPredictor(Config{Window: 16})
	for i := int64(0); i < 100; i++ {
		p.Feed(i * 7) // aperiodic
	}
	if _, ok := p.Predict(1); ok {
		t.Fatal("prediction available without a lock")
	}
}

func TestEventPredictorPanicsOnBadHorizon(t *testing.T) {
	p := MustEventPredictor(Config{Window: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("Predict(0) did not panic")
		}
	}()
	p.Predict(0)
}

func TestEventPredictorAccuracyDegradesOnPhaseChange(t *testing.T) {
	p := MustEventPredictor(Config{Window: 8})
	for i := 0; i < 100; i++ {
		p.Feed(int64(i % 4))
	}
	r1, _ := p.Accuracy()
	if r1 != 1 {
		t.Fatalf("phase-1 rate=%v", r1)
	}
	// Abrupt phase change: some predictions must miss.
	for i := 0; i < 50; i++ {
		p.Feed(int64(1000 + i%6))
	}
	rate, _ := p.Accuracy()
	if rate >= 1 {
		t.Fatal("accuracy did not degrade across a phase change")
	}
}

func TestEventPredictorReset(t *testing.T) {
	p := MustEventPredictor(Config{Window: 8})
	for i := 0; i < 100; i++ {
		p.Feed(int64(i % 2))
	}
	p.Reset()
	if _, scored := p.Accuracy(); scored != 0 {
		t.Fatal("accuracy survived reset")
	}
	if _, ok := p.Predict(1); ok {
		t.Fatal("prediction available after reset")
	}
}

func TestMagnitudePredictorExactStream(t *testing.T) {
	p := MustMagnitudePredictor(Config{Window: 24})
	pat := []float64{1.5, 2.5, 7.25, 3}
	for i := 0; i < 300; i++ {
		p.Feed(pat[i%4])
	}
	mae, scored := p.MeanAbsError()
	if scored < 200 {
		t.Fatalf("scored=%d", scored)
	}
	if mae != 0 {
		t.Fatalf("MAE=%v, want 0 on exact stream", mae)
	}
	got, ok := p.Predict(2)
	if !ok {
		t.Fatal("Predict unavailable")
	}
	want := pat[(300-1+2)%4]
	if got != want {
		t.Fatalf("Predict(2)=%v, want %v", got, want)
	}
}

func TestMagnitudePredictorHorizonWrapsPeriods(t *testing.T) {
	p := MustMagnitudePredictor(Config{Window: 24})
	pat := []float64{10, 20, 30}
	n := 200
	for i := 0; i < n; i++ {
		p.Feed(pat[i%3])
	}
	// Horizons k and k+3 must agree (period 3).
	for k := 1; k <= 3; k++ {
		a, okA := p.Predict(k)
		b, okB := p.Predict(k + 3)
		if !okA || !okB || a != b {
			t.Fatalf("horizon wrap broken: k=%d %v/%v", k, a, b)
		}
	}
}

func TestMagnitudePredictorNoLockNoForecast(t *testing.T) {
	p := MustMagnitudePredictor(Config{Window: 16})
	for i := 0; i < 100; i++ {
		p.Feed(float64(i) * 3.7) // ramp: aperiodic
	}
	if _, ok := p.Predict(1); ok {
		t.Fatal("forecast on aperiodic stream")
	}
}

func TestMagnitudePredictorReset(t *testing.T) {
	p := MustMagnitudePredictor(Config{Window: 16})
	for i := 0; i < 100; i++ {
		p.Feed(float64(i % 3))
	}
	p.Reset()
	if _, scored := p.MeanAbsError(); scored != 0 {
		t.Fatal("MAE state survived reset")
	}
}
