package core

// Failure-injection tests: real applications deviate from perfect
// periodicity — conditional loops appear sporadically, instrumentation
// drops events, streams switch phases abruptly. These tests pin down how
// the exact-match event metric degrades and how grace/window sizing
// recover, which is what a user integrating the DPD into a dynamic
// optimization tool needs to know.

import (
	"testing"

	"dpd/internal/series"
)

// injectExtra returns a p-periodic stream with one extra (conditional)
// event inserted every `every` periods.
func injectExtra(pat []int64, periods, every int) []int64 {
	var out []int64
	for i := 0; i < periods; i++ {
		out = append(out, pat...)
		if every > 0 && i%every == every-1 {
			out = append(out, 0x7EEF) // conditional loop address
		}
	}
	return out
}

func lockedFraction(d *EventDetector, stream []int64) float64 {
	locked := 0
	for _, v := range stream {
		if r := d.Feed(v); r.Locked {
			locked++
		}
	}
	return float64(locked) / float64(len(stream))
}

func TestConditionalLoopBreaksExactLockTemporarily(t *testing.T) {
	pat := []int64{1, 2, 3, 4, 5}
	stream := injectExtra(pat, 100, 10) // extra event every 10 periods

	// A small window recovers quickly after each anomaly: the anomaly
	// leaves the comparison windows after ~N+p samples.
	small := MustEventDetector(Config{Window: 12})
	fSmall := lockedFraction(small, stream)
	if fSmall < 0.5 {
		t.Fatalf("small window locked fraction %.2f, want ≥ 0.5", fSmall)
	}

	// A large window holds every anomaly for N samples, so with an
	// anomaly every ~50 samples and N=256 it can effectively never lock.
	large := MustEventDetector(Config{Window: 256})
	fLarge := lockedFraction(large, stream)
	if fLarge >= fSmall {
		t.Fatalf("large window fraction %.2f not below small %.2f", fLarge, fSmall)
	}
}

func TestGraceExtendsLockAcrossAnomaly(t *testing.T) {
	pat := []int64{1, 2, 3, 4, 5}
	stream := injectExtra(pat, 60, 20)

	noGrace := MustEventDetector(Config{Window: 12, Grace: 0})
	withGrace := MustEventDetector(Config{Window: 12, Grace: 20})
	f0 := lockedFraction(noGrace, stream)
	f1 := lockedFraction(withGrace, stream)
	if f1 <= f0 {
		t.Fatalf("grace did not increase locked fraction: %.2f vs %.2f", f1, f0)
	}
}

func TestDroppedEventShiftsPhaseNotPeriod(t *testing.T) {
	// Instrumentation drops one event: after recovery the period is the
	// same, only the segmentation anchor moves.
	d := MustEventDetector(Config{Window: 10})
	pat := []int64{7, 8, 9, 10}
	var stream []int64
	for i := 0; i < 50; i++ {
		stream = append(stream, pat...)
	}
	// Drop one event in the middle.
	stream = append(stream[:101], stream[102:]...)

	var lastLocked Result
	for _, v := range stream {
		if r := d.Feed(v); r.Locked {
			lastLocked = r
		}
	}
	if lastLocked.Period != 4 {
		t.Fatalf("period after drop=%d, want 4", lastLocked.Period)
	}
}

func TestAlternatingPhasesTrackLocks(t *testing.T) {
	// A program alternating between two loop nests every 60 events: the
	// detector must lock each phase's period in turn.
	d := MustEventDetector(Config{Window: 12})
	tr := NewPeriodTracker()
	for phase := 0; phase < 6; phase++ {
		var pat []int64
		if phase%2 == 0 {
			pat = []int64{1, 2, 3}
		} else {
			pat = []int64{10, 20, 30, 40, 50, 60}
		}
		for i := 0; i < 60; i++ {
			tr.Observe(d.Feed(pat[i%len(pat)]), d.Window())
		}
	}
	ps := tr.SignificantPeriods(10)
	if len(ps) != 2 || ps[0] != 3 || ps[1] != 6 {
		t.Fatalf("phases tracked %v, want [3 6]", ps)
	}
}

func TestValueCollisionAcrossPhases(t *testing.T) {
	// Two phases sharing an address (a common helper loop) must not
	// confuse the period: only whole-window matches count.
	d := MustEventDetector(Config{Window: 16})
	shared := int64(0xAB)
	p1 := []int64{shared, 2, 3, 4}
	p2 := []int64{shared, 20, 30}
	var last Result
	for i := 0; i < 200; i++ {
		last = d.Feed(p1[i%4])
	}
	if last.Period != 4 {
		t.Fatalf("phase 1 period=%d", last.Period)
	}
	for i := 0; i < 200; i++ {
		last = d.Feed(p2[i%3])
	}
	if last.Period != 3 {
		t.Fatalf("phase 2 period=%d", last.Period)
	}
}

func TestMagnitudeDetectorDriftingBaseline(t *testing.T) {
	// A periodic signal on a slow linear drift: eq. (1)'s distance at the
	// true period stays small (drift contributes |slope·p| per element)
	// while other lags stay large — the lock must hold.
	d := MustMagnitudeDetector(Config{Window: 60, Confirm: 3})
	g := series.NewPatternGenerator([]float64{0, 8, 2, 9, 4, 7})
	var last Result
	for i := 0; i < 600; i++ {
		drift := 0.001 * float64(i)
		last = d.Feed(g.Next() + drift)
	}
	if !last.Locked || last.Period != 6 {
		t.Fatalf("drifting signal: %+v, want period 6", last)
	}
}

func TestMagnitudeDetectorOutlierSpike(t *testing.T) {
	// One huge outlier sample must not permanently destroy the lock: the
	// spike leaves every lag window after N samples.
	d := MustMagnitudeDetector(Config{Window: 30, Confirm: 2, Grace: 40})
	g := series.NewPatternGenerator([]float64{1, 5, 3, 8})
	var lockedAfter bool
	for i := 0; i < 500; i++ {
		v := g.Next()
		if i == 250 {
			v = 1e6
		}
		r := d.Feed(v)
		if i > 350 {
			lockedAfter = r.Locked && r.Period == 4
		}
	}
	if !lockedAfter {
		t.Fatal("lock not recovered after outlier spike")
	}
}

func TestMultiScaleRobustToInterleavedNoiseBursts(t *testing.T) {
	rng := series.NewRNG(123)
	ms := MustMultiScaleDetector([]int{8, 32}, Config{})
	tr := NewPeriodTracker()
	for burst := 0; burst < 5; burst++ {
		for i := 0; i < 120; i++ { // periodic stretch
			tr.ObserveMulti(ms.Feed(int64(i%4)), ms)
		}
		for i := 0; i < 40; i++ { // noise burst
			tr.ObserveMulti(ms.Feed(int64(rng.Intn(1<<30))), ms)
		}
	}
	ps := tr.SignificantPeriods(50)
	if len(ps) != 1 || ps[0] != 4 {
		t.Fatalf("periods=%v, want [4] only", ps)
	}
}

// TestPropertyLockEqualsNaiveFundamental is the end-to-end differential
// invariant: with Confirm=1 and Grace=0, after every sample the online
// detector's locked period equals the fundamental (smallest zero lag) of
// the naive eq. (2) curve over the same history — on arbitrary streams
// mixing periodic phases, noise, and value collisions.
func TestPropertyLockEqualsNaiveFundamental(t *testing.T) {
	run := func(seed uint64) {
		rng := series.NewRNG(seed)
		n := 8 + rng.Intn(12) // window 8..19
		d := MustEventDetector(Config{Window: n, Confirm: 1, Grace: 0})
		var hist []int64
		patLen := 1 + rng.Intn(6)
		for i := 0; i < 400; i++ {
			// Occasionally switch regime: new pattern length or noise.
			if rng.Intn(60) == 0 {
				patLen = 1 + rng.Intn(6)
			}
			var v int64
			if rng.Intn(10) == 0 {
				v = int64(rng.Intn(4)) // collision-prone noise
			} else {
				v = int64(100 + i%patLen)
			}
			hist = append(hist, v)
			d.Feed(v)
			want := NaiveCurveSign(hist, n, n-1).Fundamental(0)
			if got := d.Locked(); got != want {
				t.Fatalf("seed %d step %d: locked=%d naive fundamental=%d", seed, i, got, want)
			}
		}
	}
	for seed := uint64(1); seed <= 25; seed++ {
		run(seed)
	}
}
