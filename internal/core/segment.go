package core

import "fmt"

// Segment is one contiguous stretch of a stream governed by a single
// periodicity — the explicit form of the paper's segmentation use case
// ("the dynamic segmentation of the data stream in periods. Periods in a
// data stream or multiples of them may represent reasonable intervals
// for performance measurement").
type Segment struct {
	// Start is the index of the first sample of the segment.
	Start uint64
	// End is the index one past the last sample (0 while open).
	End uint64
	// Period is the periodicity governing the segment.
	Period int
	// Periods is the number of complete periods the segment contains.
	Periods int
}

// Len returns the segment length in samples (0 while open).
func (s Segment) Len() uint64 {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// Segmenter turns the per-sample results of an event detector into a
// sequence of closed segments. A segment opens at the first period start
// of a lock, extends while the same period holds, and closes when the
// lock is lost or the period changes.
type Segmenter struct {
	det *EventDetector

	open    bool
	current Segment
	closed  []Segment

	// MinPeriods drops closed segments with fewer complete periods than
	// this (default 1), filtering transient flickers.
	MinPeriods int
}

// NewSegmenter wraps an event detector built from cfg.
func NewSegmenter(cfg Config) (*Segmenter, error) {
	det, err := NewEventDetector(cfg)
	if err != nil {
		return nil, err
	}
	return &Segmenter{det: det, MinPeriods: 1}, nil
}

// MustSegmenter panics on config errors.
func MustSegmenter(cfg Config) *Segmenter {
	s, err := NewSegmenter(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Feed processes one sample and returns the detector result.
func (s *Segmenter) Feed(v int64) Result {
	r := s.det.Feed(v)
	switch {
	case r.Locked && r.Start && (!s.open || r.Period != s.current.Period):
		// New segment (first lock, or a re-lock with another period).
		if s.open {
			s.close(r.T)
		}
		s.open = true
		s.current = Segment{Start: r.T, Period: r.Period}

	case r.Locked && r.Start:
		s.current.Periods++

	case !r.Locked && s.open:
		s.close(r.T)
	}
	return r
}

// close finalizes the open segment at end index `end`.
func (s *Segmenter) close(end uint64) {
	s.open = false
	s.current.End = end
	if s.current.Periods >= s.MinPeriods {
		s.closed = append(s.closed, s.current)
	}
}

// Flush closes any open segment at the current stream position and
// returns all closed segments in order.
func (s *Segmenter) Flush() []Segment {
	if s.open {
		s.close(s.det.Samples())
	}
	return s.closed
}

// Segments returns the closed segments so far (the open one excluded).
func (s *Segmenter) Segments() []Segment { return s.closed }

// Open returns the currently open segment, if any.
func (s *Segmenter) Open() (Segment, bool) { return s.current, s.open }

// Detector exposes the wrapped detector.
func (s *Segmenter) Detector() *EventDetector { return s.det }

// Reset clears all state.
func (s *Segmenter) Reset() {
	s.det.Reset()
	s.open = false
	s.current = Segment{}
	s.closed = nil
}

// String renders a segment for diagnostics.
func (s Segment) String() string {
	return fmt.Sprintf("[%d,%d) period %d ×%d", s.Start, s.End, s.Period, s.Periods)
}
