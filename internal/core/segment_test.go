package core

import (
	"strings"
	"testing"

	"dpd/internal/series"
)

func TestSegmenterSinglePhase(t *testing.T) {
	s := MustSegmenter(Config{Window: 12})
	for i := 0; i < 120; i++ {
		s.Feed(int64(i % 4))
	}
	segs := s.Flush()
	if len(segs) != 1 {
		t.Fatalf("segments=%v, want one", segs)
	}
	g := segs[0]
	if g.Period != 4 {
		t.Fatalf("period=%d", g.Period)
	}
	// Starts every 4 samples from the lock; ~(120 − lockAt)/4 periods.
	if g.Periods < 20 {
		t.Fatalf("periods=%d, want ≥ 20", g.Periods)
	}
	if g.Len() == 0 {
		t.Fatal("zero-length segment")
	}
}

func TestSegmenterPhaseChangeClosesSegment(t *testing.T) {
	s := MustSegmenter(Config{Window: 10})
	stream := append(series.RepeatInt([]int64{1, 2, 3}, 30), series.RepeatInt([]int64{7, 8, 9, 10, 11}, 30)...)
	for _, v := range stream {
		s.Feed(v)
	}
	segs := s.Flush()
	if len(segs) != 2 {
		t.Fatalf("segments=%v, want two", segs)
	}
	if segs[0].Period != 3 || segs[1].Period != 5 {
		t.Fatalf("periods=%d,%d, want 3,5", segs[0].Period, segs[1].Period)
	}
	if segs[0].End > segs[1].Start {
		t.Fatalf("segments overlap: %v then %v", segs[0], segs[1])
	}
}

func TestSegmenterAperiodicGapProducesNoSegment(t *testing.T) {
	s := MustSegmenter(Config{Window: 8})
	for i := int64(0); i < 100; i++ {
		s.Feed(i * 13)
	}
	if segs := s.Flush(); len(segs) != 0 {
		t.Fatalf("segments on aperiodic stream: %v", segs)
	}
}

func TestSegmenterMinPeriodsFilter(t *testing.T) {
	s := MustSegmenter(Config{Window: 8})
	s.MinPeriods = 15
	// Lock briefly (~10 complete periods), then noise.
	for i := 0; i < 30; i++ {
		s.Feed(int64(i % 2))
	}
	for i := int64(0); i < 50; i++ {
		s.Feed(1000 + i*7)
	}
	if segs := s.Flush(); len(segs) != 0 {
		t.Fatalf("short segment not filtered: %v", segs)
	}
}

func TestSegmenterOpenSegmentVisible(t *testing.T) {
	s := MustSegmenter(Config{Window: 8})
	for i := 0; i < 50; i++ {
		s.Feed(int64(i % 2))
	}
	open, ok := s.Open()
	if !ok {
		t.Fatal("no open segment on a locked stream")
	}
	if open.Period != 2 {
		t.Fatalf("open period=%d", open.Period)
	}
	if len(s.Segments()) != 0 {
		t.Fatal("open segment leaked into closed list")
	}
}

func TestSegmenterFlushIdempotentAfterClose(t *testing.T) {
	s := MustSegmenter(Config{Window: 8})
	for i := 0; i < 50; i++ {
		s.Feed(int64(i % 2))
	}
	a := len(s.Flush())
	b := len(s.Flush())
	if a != b {
		t.Fatalf("flush not idempotent: %d then %d", a, b)
	}
}

func TestSegmenterReset(t *testing.T) {
	s := MustSegmenter(Config{Window: 8})
	for i := 0; i < 50; i++ {
		s.Feed(int64(i % 2))
	}
	s.Reset()
	if len(s.Flush()) != 0 {
		t.Fatal("segments survived reset")
	}
	for i := 0; i < 50; i++ {
		s.Feed(int64(i % 3))
	}
	if segs := s.Flush(); len(segs) != 1 || segs[0].Period != 3 {
		t.Fatalf("unusable after reset: %v", segs)
	}
}

func TestSegmenterSegmentsCoverLockedStretch(t *testing.T) {
	// Segment boundaries must align with period starts: length of a
	// closed segment ≥ Periods × Period.
	s := MustSegmenter(Config{Window: 16})
	for i := 0; i < 200; i++ {
		s.Feed(int64(i % 5))
	}
	segs := s.Flush()
	if len(segs) != 1 {
		t.Fatalf("segments=%v", segs)
	}
	g := segs[0]
	if g.Len() < uint64(g.Periods*g.Period) {
		t.Fatalf("segment %v shorter than its periods", g)
	}
}

func TestSegmentString(t *testing.T) {
	g := Segment{Start: 10, End: 30, Period: 5, Periods: 4}
	if !strings.Contains(g.String(), "period 5") {
		t.Fatalf("String=%q", g.String())
	}
}

func TestSegmenterValidation(t *testing.T) {
	if _, err := NewSegmenter(Config{Window: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}
