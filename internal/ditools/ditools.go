// Package ditools reproduces the role DITools [Serra2000] plays in the
// paper: dynamic interposition on calls to compiler-encapsulated parallel
// loop functions. Each parallel loop is identified by the address of the
// function that encapsulates it; interposition fires registered handlers
// with that address before transferring control to the loop body
// (paper Figure 6, step (1) → (2)).
//
// In this reproduction "addresses" are stable synthetic int64 identifiers
// assigned to loop functions, and interposition is an explicit dispatch
// through a Registry rather than binary patching — the observable effect
// (the exact address sequence reaching the DPD) is identical.
package ditools

import (
	"fmt"
	"time"
)

// Event describes one intercepted call.
type Event struct {
	// Addr is the address of the encapsulated parallel-loop function.
	Addr int64
	// Now is the virtual time of the call.
	Now time.Duration
	// Seq is the zero-based global call sequence number.
	Seq uint64
}

// Handler observes an intercepted call before the loop body runs.
type Handler func(Event)

// Registry is an interposition table. The zero value is not usable; use
// NewRegistry.
type Registry struct {
	pre  []Handler
	post []Handler
	seq  uint64

	perAddr map[int64]uint64 // call counts, for diagnostics
}

// NewRegistry returns an empty interposition registry.
func NewRegistry() *Registry {
	return &Registry{perAddr: make(map[int64]uint64)}
}

// OnCall registers a handler fired before every intercepted loop body.
func (r *Registry) OnCall(h Handler) {
	if h == nil {
		panic("ditools: nil handler")
	}
	r.pre = append(r.pre, h)
}

// OnReturn registers a handler fired after every intercepted loop body.
func (r *Registry) OnReturn(h Handler) {
	if h == nil {
		panic("ditools: nil handler")
	}
	r.post = append(r.post, h)
}

// Call interposes on one loop invocation: pre-handlers run, then the body
// (the original encapsulated function), then post-handlers. A nil body is
// permitted for pure trace replay.
func (r *Registry) Call(now time.Duration, addr int64, body func()) {
	ev := Event{Addr: addr, Now: now, Seq: r.seq}
	r.seq++
	r.perAddr[addr]++
	for _, h := range r.pre {
		h(ev)
	}
	if body != nil {
		body()
	}
	for _, h := range r.post {
		h(ev)
	}
}

// Calls returns the total number of intercepted calls.
func (r *Registry) Calls() uint64 { return r.seq }

// CallsTo returns how many times addr was intercepted.
func (r *Registry) CallsTo(addr int64) uint64 { return r.perAddr[addr] }

// Addresses returns the number of distinct intercepted addresses.
func (r *Registry) Addresses() int { return len(r.perAddr) }

// Reset clears counters but keeps registered handlers.
func (r *Registry) Reset() {
	r.seq = 0
	r.perAddr = make(map[int64]uint64)
}

// String summarizes the registry state.
func (r *Registry) String() string {
	return fmt.Sprintf("ditools: %d calls to %d loops, %d pre / %d post handlers",
		r.seq, len(r.perAddr), len(r.pre), len(r.post))
}
