package ditools

import (
	"testing"
	"time"
)

func TestRegistryCallOrder(t *testing.T) {
	r := NewRegistry()
	var order []string
	r.OnCall(func(Event) { order = append(order, "pre1") })
	r.OnCall(func(Event) { order = append(order, "pre2") })
	r.OnReturn(func(Event) { order = append(order, "post") })
	r.Call(0, 0x100, func() { order = append(order, "body") })
	want := []string{"pre1", "pre2", "body", "post"}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
}

func TestRegistryEventFields(t *testing.T) {
	r := NewRegistry()
	var got []Event
	r.OnCall(func(e Event) { got = append(got, e) })
	r.Call(5*time.Millisecond, 0xA, nil)
	r.Call(7*time.Millisecond, 0xB, nil)
	r.Call(9*time.Millisecond, 0xA, nil)
	if len(got) != 3 {
		t.Fatalf("events=%d", len(got))
	}
	if got[0].Seq != 0 || got[1].Seq != 1 || got[2].Seq != 2 {
		t.Fatalf("seq numbers wrong: %+v", got)
	}
	if got[1].Addr != 0xB || got[1].Now != 7*time.Millisecond {
		t.Fatalf("event[1]=%+v", got[1])
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.Call(0, 0x1, nil)
	}
	r.Call(0, 0x2, nil)
	if r.Calls() != 6 || r.CallsTo(0x1) != 5 || r.CallsTo(0x2) != 1 || r.CallsTo(0x3) != 0 {
		t.Fatalf("calls=%d to1=%d to2=%d", r.Calls(), r.CallsTo(0x1), r.CallsTo(0x2))
	}
	if r.Addresses() != 2 {
		t.Fatalf("addresses=%d", r.Addresses())
	}
}

func TestRegistryNilBodyAllowed(t *testing.T) {
	r := NewRegistry()
	fired := false
	r.OnCall(func(Event) { fired = true })
	r.Call(0, 0x1, nil)
	if !fired {
		t.Fatal("handler not fired with nil body")
	}
}

func TestRegistryResetKeepsHandlers(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.OnCall(func(Event) { n++ })
	r.Call(0, 0x1, nil)
	r.Reset()
	if r.Calls() != 0 || r.CallsTo(0x1) != 0 {
		t.Fatal("counters survived reset")
	}
	r.Call(0, 0x1, nil)
	if n != 2 {
		t.Fatalf("handler lost across reset: n=%d", n)
	}
	// Sequence restarts.
	var seq uint64 = 99
	r.OnCall(func(e Event) { seq = e.Seq })
	r.Call(0, 0x9, nil)
	if seq != 1 {
		t.Fatalf("seq=%d after reset+1 call, want 1", seq)
	}
}

func TestRegistryNilHandlerPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	r.OnCall(nil)
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Call(0, 1, nil)
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}
