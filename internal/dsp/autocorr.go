package dsp

import "fmt"

// AutocorrDirect computes the biased sample autocorrelation of the
// mean-removed signal for lags 0..maxLag directly in O(N·M):
// r(m) = Σ_{i} (x[i]−μ)(x[i+m]−μ) / N. r(0) is the variance.
func AutocorrDirect(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		panic(fmt.Sprintf("dsp: negative maxLag %d", maxLag))
	}
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	out := make([]float64, maxLag+1)
	for m := 0; m <= maxLag; m++ {
		var s float64
		for i := 0; i+m < n; i++ {
			s += (xs[i] - mean) * (xs[i+m] - mean)
		}
		out[m] = s / float64(n)
	}
	return out
}

// AutocorrFFT computes the same biased autocorrelation via the
// Wiener–Khinchin theorem in O(N log N): ACF = IFFT(|FFT(x)|²).
// The signal is zero-padded to 2N to avoid circular wrap-around.
func AutocorrFFT(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		panic(fmt.Sprintf("dsp: negative maxLag %d", maxLag))
	}
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)

	size := NextPow2(2 * n)
	buf := make([]complex128, size)
	for i, v := range xs {
		buf[i] = complex(v-mean, 0)
	}
	FFT(buf)
	for i := range buf {
		re, im := real(buf[i]), imag(buf[i])
		buf[i] = complex(re*re+im*im, 0)
	}
	IFFT(buf)
	out := make([]float64, maxLag+1)
	for m := 0; m <= maxLag; m++ {
		out[m] = real(buf[m]) / float64(n)
	}
	return out
}

// NormalizeACF divides r(m) by r(0), yielding correlation coefficients in
// [−1, 1]. A zero-variance signal returns all zeros (no structure).
func NormalizeACF(acf []float64) []float64 {
	out := make([]float64, len(acf))
	if len(acf) == 0 || acf[0] == 0 {
		return out
	}
	for i, v := range acf {
		out[i] = v / acf[0]
	}
	return out
}
