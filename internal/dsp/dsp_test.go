package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"dpd/internal/series"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is all ones.
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a constant is an impulse at DC.
	y := []complex128{2, 2, 2, 2}
	FFT(y)
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Errorf("DC bin=%v, want 8", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("bin %d=%v, want 0", i, y[i])
		}
	}
}

// naiveDFT is the O(n²) textbook transform the hoisted-twiddle FFT is
// equivalence-tested against: X[k] = Σ_j x[j]·exp(-2πijk/n).
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(j*k)/float64(n)))
		}
		out[k] = s
	}
	return out
}

// TestFFTMatchesNaiveDFT pins the precomputed-root FFT to the direct DFT
// over random signals at every power-of-two size the estimators use, so
// the twiddle-factor hoisting cannot drift the spectrum.
func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := series.NewRNG(31)
	for _, n := range []int{1, 2, 4, 8, 32, 128, 512} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*4-2, rng.Float64()*4-2)
		}
		want := naiveDFT(x)
		FFT(x)
		for k := range x {
			if cmplx.Abs(x[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: FFT=%v, DFT=%v", n, k, x[k], want[k])
			}
		}
	}
}

func BenchmarkFFT(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)/7), 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	// A pure cosine at bin 5 of a 64-point frame concentrates power there.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*5*float64(i)/float64(n)), 0)
	}
	FFT(x)
	for k := 0; k < n; k++ {
		mag := cmplx.Abs(x[k])
		if k == 5 || k == n-5 {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Errorf("bin %d magnitude=%v, want %v", k, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude=%v, want 0", k, mag)
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT(len 3) did not panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := series.NewRNG(4)
	x := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range x {
		v := complex(rng.Float64()*10-5, rng.Float64()*10-5)
		x[i], orig[i] = v, v
	}
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Σ|x|² == (1/N)·Σ|X|².
	rng := series.NewRNG(9)
	n := 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		v := rng.Float64()*2 - 1
		x[i] = complex(v, 0)
		timeE += v * v
	}
	FFT(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE) > 1e-6*timeE {
		t.Fatalf("Parseval violated: %v vs %v", timeE, freqE)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := series.NewRNG(seed)
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			av := complex(rng.Float64(), rng.Float64())
			bv := complex(rng.Float64(), rng.Float64())
			a[i], b[i], sum[i] = av, bv, av+bv
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d)=%d, want %d", in, got, want)
		}
	}
}

func TestAutocorrDirectZeroLagIsVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	acf := AutocorrDirect(xs, 3)
	if math.Abs(acf[0]-4) > 1e-9 { // known variance 4
		t.Fatalf("r(0)=%v, want 4", acf[0])
	}
}

func TestAutocorrFFTMatchesDirect(t *testing.T) {
	rng := series.NewRNG(21)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Sin(float64(i)/7) + rng.Float64()
	}
	a := AutocorrDirect(xs, 50)
	b := AutocorrFFT(xs, 50)
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	for m := range a {
		if math.Abs(a[m]-b[m]) > 1e-6 {
			t.Fatalf("lag %d: direct=%v fft=%v", m, a[m], b[m])
		}
	}
}

func TestAutocorrEdgeCases(t *testing.T) {
	if out := AutocorrDirect(nil, 5); out != nil {
		t.Error("empty input must return nil")
	}
	if out := AutocorrFFT(nil, 5); out != nil {
		t.Error("empty input must return nil")
	}
	// maxLag clamped to n−1.
	out := AutocorrDirect([]float64{1, 2, 3}, 10)
	if len(out) != 3 {
		t.Errorf("clamped len=%d, want 3", len(out))
	}
}

func TestAutocorrPanicsOnNegativeLag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative maxLag did not panic")
		}
	}()
	AutocorrDirect([]float64{1}, -1)
}

func TestNormalizeACF(t *testing.T) {
	out := NormalizeACF([]float64{4, 2, -1})
	want := []float64{1, 0.5, -0.25}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("norm[%d]=%v, want %v", i, out[i], want[i])
		}
	}
	// Zero-variance: all zeros, no NaN.
	z := NormalizeACF([]float64{0, 0})
	for _, v := range z {
		if v != 0 {
			t.Error("zero-variance normalization must be 0")
		}
	}
}

func TestEstimatePeriodACFOnPeriodicSignal(t *testing.T) {
	g := series.NewPatternGenerator([]float64{0, 3, 1, 7, 2, 5, 8, 4, 6, 1, 0, 9})
	xs := series.Take(g, 240)
	if got := EstimatePeriodACF(xs, 60, 0.5); got != 12 {
		t.Fatalf("ACF period=%d, want 12", got)
	}
}

func TestEstimatePeriodACFOnNoise(t *testing.T) {
	rng := series.NewRNG(31)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	if got := EstimatePeriodACF(xs, 100, 0.5); got != 0 {
		t.Fatalf("ACF period on noise=%d, want 0", got)
	}
}

func TestEstimatePeriodSpectralSine(t *testing.T) {
	g := series.Sine(5, 32) // period 32 divides the padded frame
	xs := series.Take(g, 256)
	if got := EstimatePeriodSpectral(xs); got != 32 {
		t.Fatalf("spectral period=%d, want 32", got)
	}
}

func TestEstimatePeriodSpectralQuantization(t *testing.T) {
	// Period 44 in a 512-padded frame: nearest bins give 512/12≈43 or
	// 512/11≈47 — the spectral method cannot return 44 exactly. This is
	// the resolution limitation the DPD avoids.
	g := series.Square(16, 1, 30, 14)
	xs := series.Take(g, 500)
	got := EstimatePeriodSpectral(xs)
	if got == 0 {
		t.Fatal("spectral estimator found nothing")
	}
	if got == 44 {
		t.Log("note: exact 44 unexpected but acceptable")
	}
	if got < 38 || got > 50 {
		t.Fatalf("spectral period=%d, want within ~15%% of 44", got)
	}
}

func TestEstimatePeriodNaiveScan(t *testing.T) {
	xs := series.Repeat([]float64{1, 2, 3, 4, 5}, 10)
	if got := EstimatePeriodNaiveScan(xs, 20); got != 5 {
		t.Fatalf("naive scan=%d, want 5", got)
	}
	if got := EstimatePeriodNaiveScan([]float64{1, 2, 3, 4}, 2); got != 0 {
		t.Fatalf("aperiodic naive scan=%d, want 0", got)
	}
}

func TestEstimatorsAgreeOnCleanPeriodicSignal(t *testing.T) {
	// Triangle wave, period 8: harmonics fall off as 1/k², so the
	// fundamental dominates and all three estimators must agree. (An
	// arbitrary pattern need not have a dominant fundamental — e.g. a
	// low/high alternating pattern has its spectral peak at period 2 —
	// which is exactly why the DPD's exact-repeat detection is preferable
	// for loop address streams.)
	g := series.NewPatternGenerator([]float64{0, 1, 2, 3, 4, 3, 2, 1})
	xs := series.Take(g, 512)
	acf := EstimatePeriodACF(xs, 100, 0.5)
	nv := EstimatePeriodNaiveScan(xs, 100)
	sp := EstimatePeriodSpectral(xs)
	if acf != 8 || nv != 8 || sp != 8 {
		t.Fatalf("acf=%d naive=%d spectral=%d, want all 8", acf, nv, sp)
	}
}

func TestSpectralPicksDominantHarmonicNotRepeat(t *testing.T) {
	// Documents the baseline's failure mode on an alternating pattern:
	// the exact repeat length is 8 but the dominant frequency is 2.
	g := series.NewPatternGenerator([]float64{1, 9, 4, 6, 2, 8, 3, 5})
	xs := series.Take(g, 512)
	if nv := EstimatePeriodNaiveScan(xs, 100); nv != 8 {
		t.Fatalf("naive=%d, want 8", nv)
	}
	if sp := EstimatePeriodSpectral(xs); sp != 2 {
		t.Fatalf("spectral=%d, want the dominant harmonic 2", sp)
	}
}
