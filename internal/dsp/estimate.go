package dsp

// The offline period estimators below are the baselines for the
// "DPD vs conventional methods" ablation. Each consumes a buffered frame
// and returns an estimated fundamental period in samples (0 = aperiodic).

// EstimatePeriodACF estimates the period as the lag of the first
// significant local maximum of the normalized autocorrelation.
// minCorr is the correlation threshold (0.5 is a reasonable default).
func EstimatePeriodACF(xs []float64, maxLag int, minCorr float64) int {
	if len(xs) < 4 {
		return 0
	}
	acf := NormalizeACF(AutocorrFFT(xs, maxLag))
	if len(acf) < 3 {
		return 0
	}
	// Skip the zero-lag main lobe: wait until the ACF first drops below
	// the threshold, then take the first local maximum above it.
	m := 1
	for m < len(acf) && acf[m] >= minCorr {
		m++
	}
	best, bestVal := 0, minCorr
	for ; m < len(acf)-1; m++ {
		if acf[m] >= acf[m-1] && acf[m] >= acf[m+1] && acf[m] > bestVal {
			// First qualifying peak is the fundamental; stop at it.
			best, bestVal = m, acf[m]
			break
		}
	}
	_ = bestVal
	return best
}

// EstimatePeriodSpectral estimates the period from the dominant
// periodogram bin: period = N / k*, where k* maximizes the power among
// bins 1..N/2. Frequency-domain resolution is N/k, so long periods are
// quantized — one reason the paper's time-domain detector is preferable
// for loop structures.
func EstimatePeriodSpectral(xs []float64) int {
	pg := Periodogram(xs)
	if len(pg) < 2 {
		return 0
	}
	best, bestVal := 0, 0.0
	for k := 1; k < len(pg); k++ {
		if pg[k] > bestVal {
			best, bestVal = k, pg[k]
		}
	}
	if best == 0 || bestVal == 0 {
		return 0
	}
	n := NextPow2(len(xs))
	period := int(float64(n)/float64(best) + 0.5)
	if period >= len(xs) {
		return 0
	}
	return period
}

// EstimatePeriodNaiveScan is the brute-force oracle: the smallest lag p
// such that the frame repeats exactly with lag p over its whole length.
// O(N·M); only suitable offline.
func EstimatePeriodNaiveScan(xs []float64, maxLag int) int {
	for p := 1; p <= maxLag && p < len(xs); p++ {
		ok := true
		for i := p; i < len(xs); i++ {
			if xs[i] != xs[i-p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}
