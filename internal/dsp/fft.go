// Package dsp provides the signal-processing baselines the DPD is
// compared against in the ablation benchmarks: a radix-2 FFT, direct and
// FFT-accelerated autocorrelation, and periodogram/ACF period estimators.
//
// The paper's detector is an online time-domain method; these offline
// frequency-domain estimators represent the "conventional" alternative a
// dynamic optimization tool would otherwise have to run on buffered
// frames. They are implemented from scratch on the standard library.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two. The transform is
// unnormalized (IFFT applies the 1/N factor).
//
// Twiddle factors are hoisted out of the butterfly loops: the n/2 roots of
// unity for the largest stage are tabulated once per call (one Sincos
// each), and every smaller stage strides through the same table. The
// innermost loop is thereby multiplication-only — no trig, no cmplx.Exp.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Per-call root table: roots[k] = exp(-2πik/n) for k < n/2 (forward
	// transform). Stage `size` uses every (n/size)-th entry.
	half := n >> 1
	roots := make([]complex128, half)
	step := -2 * math.Pi / float64(n)
	for k := range roots {
		s, c := math.Sincos(step * float64(k))
		roots[k] = complex(c, s)
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		h := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ri := 0
			for k := 0; k < h; k++ {
				w := roots[ri]
				ri += stride
				a := x[start+k]
				b := x[start+k+h] * w
				x[start+k] = a + b
				x[start+k+h] = a - b
			}
		}
	}
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalization. len(x) must be a power of two.
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// FFTReal transforms a real signal, zero-padded to the next power of two,
// and returns the complex spectrum.
func FFTReal(xs []float64) []complex128 {
	n := NextPow2(len(xs))
	out := make([]complex128, n)
	for i, v := range xs {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// Periodogram returns the power spectrum |X(k)|²/N of the (mean-removed,
// zero-padded) signal for bins k = 0..N/2.
func Periodogram(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	centered := make([]float64, len(xs))
	for i, v := range xs {
		centered[i] = v - mean
	}
	spec := FFTReal(centered)
	n := len(spec)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(spec[k]), imag(spec[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}
