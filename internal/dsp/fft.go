// Package dsp provides the signal-processing baselines the DPD is
// compared against in the ablation benchmarks: a radix-2 FFT, direct and
// FFT-accelerated autocorrelation, and periodogram/ACF period estimators.
//
// The paper's detector is an online time-domain method; these offline
// frequency-domain estimators represent the "conventional" alternative a
// dynamic optimization tool would otherwise have to run on buffered
// frames. They are implemented from scratch on the standard library.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two. The transform is
// unnormalized (IFFT applies the 1/N factor).
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size) // forward transform
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalization. len(x) must be a power of two.
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// FFTReal transforms a real signal, zero-padded to the next power of two,
// and returns the complex spectrum.
func FFTReal(xs []float64) []complex128 {
	n := NextPow2(len(xs))
	out := make([]complex128, n)
	for i, v := range xs {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// Periodogram returns the power spectrum |X(k)|²/N of the (mean-removed,
// zero-padded) signal for bins k = 0..N/2.
func Periodogram(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	centered := make([]float64, len(xs))
	for i, v := range xs {
		centered[i] = v - mean
	}
	spec := FFTReal(centered)
	n := len(spec)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(spec[k]), imag(spec[k])
		out[k] = (re*re + im*im) / float64(n)
	}
	return out
}
