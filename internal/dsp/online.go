package dsp

import (
	"fmt"

	"dpd/internal/series"
)

// OnlineACF is a streaming autocorrelation estimator: per lag m it keeps
// an exponentially weighted estimate of E[(x[t]−μ)(x[t−m]−μ)], with μ and
// the variance tracked the same way. It is the "online conventional
// alternative" baseline to the DPD: same O(M) per-sample cost, but a
// soft correlation measure instead of the DPD's exact-repeat test — so
// it needs many periods to converge and cannot distinguish an exact
// repeat from a strongly correlated harmonic.
type OnlineACF struct {
	alpha  float64
	maxLag int

	hist *series.Ring

	mean     float64
	variance float64
	corr     []float64
	n        uint64
}

// NewOnlineACF returns an estimator for lags 1..maxLag with smoothing
// factor alpha in (0, 1].
func NewOnlineACF(maxLag int, alpha float64) (*OnlineACF, error) {
	if maxLag < 1 {
		return nil, fmt.Errorf("dsp: maxLag %d must be >= 1", maxLag)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dsp: alpha %g outside (0,1]", alpha)
	}
	return &OnlineACF{
		alpha:  alpha,
		maxLag: maxLag,
		hist:   series.NewRing(maxLag + 1),
		corr:   make([]float64, maxLag),
	}, nil
}

// MustOnlineACF panics on config errors.
func MustOnlineACF(maxLag int, alpha float64) *OnlineACF {
	a, err := NewOnlineACF(maxLag, alpha)
	if err != nil {
		panic(err)
	}
	return a
}

// Feed folds in one sample.
func (a *OnlineACF) Feed(v float64) {
	a.n++
	if a.n == 1 {
		a.mean = v
	} else {
		a.mean += a.alpha * (v - a.mean)
	}
	dv := v - a.mean
	a.variance += a.alpha * (dv*dv - a.variance)
	for m := 1; m <= a.maxLag && m <= a.hist.Len(); m++ {
		dm := a.hist.Last(m-1) - a.mean
		a.corr[m-1] += a.alpha * (dv*dm - a.corr[m-1])
	}
	a.hist.Push(v)
}

// Corr returns the normalized correlation estimate at lag m in [−1, 1]
// (0 if the variance estimate is ~0 or the lag is out of range).
func (a *OnlineACF) Corr(m int) float64 {
	if m < 1 || m > a.maxLag || a.variance <= 1e-18 {
		return 0
	}
	c := a.corr[m-1] / a.variance
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// EstimatePeriod returns the first local maximum of the correlation above
// minCorr, after the zero-lag main lobe has decayed below it (0 if none).
func (a *OnlineACF) EstimatePeriod(minCorr float64) int {
	m := 1
	for m <= a.maxLag && a.Corr(m) >= minCorr {
		m++
	}
	for ; m < a.maxLag; m++ {
		c := a.Corr(m)
		if c >= minCorr && c >= a.Corr(m-1) && c >= a.Corr(m+1) {
			return m
		}
	}
	return 0
}

// Samples returns the number of samples fed.
func (a *OnlineACF) Samples() uint64 { return a.n }

// Reset clears all state.
func (a *OnlineACF) Reset() {
	a.hist.Reset()
	a.mean, a.variance = 0, 0
	for i := range a.corr {
		a.corr[i] = 0
	}
	a.n = 0
}
