package dsp

import (
	"math"
	"testing"

	"dpd/internal/series"
)

func TestOnlineACFConvergesOnSine(t *testing.T) {
	a := MustOnlineACF(60, 0.01)
	g := series.Sine(4, 20)
	for i := 0; i < 4000; i++ {
		a.Feed(g.Next())
	}
	if got := a.EstimatePeriod(0.5); got != 20 {
		t.Fatalf("period=%d, want 20", got)
	}
	if c := a.Corr(20); c < 0.9 {
		t.Fatalf("corr(20)=%v, want ≈1", c)
	}
	if c := a.Corr(10); c > -0.5 {
		t.Fatalf("corr(10)=%v, want ≈−1 (half period)", c)
	}
}

func TestOnlineACFOnNoise(t *testing.T) {
	a := MustOnlineACF(40, 0.02)
	rng := series.NewRNG(5)
	for i := 0; i < 5000; i++ {
		a.Feed(rng.Float64())
	}
	if got := a.EstimatePeriod(0.5); got != 0 {
		t.Fatalf("period on noise=%d, want 0", got)
	}
}

func TestOnlineACFConstantSignalNoNaN(t *testing.T) {
	a := MustOnlineACF(10, 0.1)
	for i := 0; i < 500; i++ {
		a.Feed(7)
	}
	for m := 1; m <= 10; m++ {
		if c := a.Corr(m); math.IsNaN(c) || c != 0 {
			t.Fatalf("corr(%d)=%v on zero-variance signal", m, c)
		}
	}
}

func TestOnlineACFCorrBounds(t *testing.T) {
	a := MustOnlineACF(20, 0.05)
	g := series.NewPatternGenerator([]float64{0, 10, 0, 10, 5})
	for i := 0; i < 2000; i++ {
		a.Feed(g.Next())
	}
	for m := 1; m <= 20; m++ {
		if c := a.Corr(m); c < -1 || c > 1 {
			t.Fatalf("corr(%d)=%v outside [-1,1]", m, c)
		}
	}
	if a.Corr(0) != 0 || a.Corr(21) != 0 {
		t.Fatal("out-of-range lags must return 0")
	}
}

func TestOnlineACFNeedsManyPeriodsUnlikeDPD(t *testing.T) {
	// The baseline's weakness: after only a handful of periods the EWMA
	// correlation has not converged, while the DPD's exact test locks as
	// soon as one window matches. Documented behaviorally.
	a := MustOnlineACF(30, 0.01)
	g := series.NewPatternGenerator([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	for i := 0; i < 40; i++ { // 5 periods
		a.Feed(g.Next())
	}
	early := a.EstimatePeriod(0.5)
	for i := 0; i < 4000; i++ {
		a.Feed(g.Next())
	}
	late := a.EstimatePeriod(0.5)
	if late != 8 {
		t.Fatalf("converged period=%d, want 8", late)
	}
	if early == 8 {
		t.Log("note: early estimate already correct (acceptable, not typical)")
	}
}

func TestOnlineACFReset(t *testing.T) {
	a := MustOnlineACF(10, 0.05)
	g := series.Sine(1, 5)
	for i := 0; i < 1000; i++ {
		a.Feed(g.Next())
	}
	a.Reset()
	if a.Samples() != 0 {
		t.Fatal("samples survived reset")
	}
	if a.EstimatePeriod(0.5) != 0 {
		t.Fatal("stale period after reset")
	}
}

func TestOnlineACFValidation(t *testing.T) {
	if _, err := NewOnlineACF(0, 0.5); err == nil {
		t.Error("maxLag 0 accepted")
	}
	if _, err := NewOnlineACF(10, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewOnlineACF(10, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}
