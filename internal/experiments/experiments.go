// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	Figure 3 — CPU-usage trace of NAS FT (16 CPUs, 1 ms sampling)
//	Figure 4 — DPD distance curve d(m) with the minimum at m = 44
//	Figure 7 — address streams of 5 SPECfp95 apps with segmentation marks
//	Table 2  — detected periodicities and stream lengths
//	Table 3  — DPD processing overhead per application
//	§5/[Corbalan2000] — speedup computation and allocation-policy benefit
//
// Each experiment returns structured results (consumed by the benchmark
// harness and tests) plus formatted text (consumed by cmd/experiments).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"dpd/internal/apps"
	"dpd/internal/core"
	"dpd/internal/ditools"
	"dpd/internal/machine"
	"dpd/internal/nanos"
	"dpd/internal/sched"
	"dpd/internal/selfanalyzer"
	"dpd/internal/textplot"
	"dpd/internal/trace"
)

// Fig3Result is the reproduced Figure 3.
type Fig3Result struct {
	// Trace is the 1 ms CPU-usage trace of the FT model.
	Trace *trace.CPUTrace
	// Plot is the rendered figure.
	Plot string
}

// Figure3 generates the FT CPU-usage trace. iterations <= 0 selects the
// default run length; jitterSeed 0 disables the per-iteration variation.
func Figure3(iterations int, jitterSeed uint64) Fig3Result {
	tr := apps.FTCPUTrace(iterations, jitterSeed)
	plot := textplot.Plot(tr.Samples, nil, textplot.Options{
		Width:  100,
		Height: 17,
		YLabel: "Figure 3: number of CPUs used (FT, MPI/OpenMP, 1 ms sampling)",
		XLabel: fmt.Sprintf("time (ms), %d samples total", tr.Len()),
	})
	return Fig3Result{Trace: tr, Plot: plot}
}

// Fig4Result is the reproduced Figure 4.
type Fig4Result struct {
	// Curve is d(m) for m = 1..len(Curve).
	Curve []float64
	// BestLag is the detected periodicity (paper: 44).
	BestLag int
	// Confidence is the prominence of the minimum.
	Confidence float64
	// LockedAt is the sample index at which the detector first locked
	// onto BestLag, captured through the observer API; -1 if no lock
	// was established.
	LockedAt int
	// Plot is the rendered figure.
	Plot string
}

// Figure4 runs the eq. (1) magnitude engine over the Figure 3 trace and
// returns the final distance curve; an Observer subscription records
// when the final periodicity was established.
func Figure4(fig3 Fig3Result) Fig4Result {
	eng := core.NewMagnitudeEngine(core.MustMagnitudeDetector(core.Config{Window: 100, Confirm: 3}))
	firstLock := map[int]int{} // period → sample index of its first lock
	record := func(e *core.Event) {
		if _, seen := firstLock[e.Period]; !seen {
			firstLock[e.Period] = int(e.T)
		}
	}
	eng.SetObserver(core.ObserverFuncs{Lock: record, PeriodChange: record})
	var last core.Result
	for _, v := range fig3.Trace.Samples {
		last = eng.Feed(core.Sample{Magnitude: v})
	}
	curve := eng.Detector().Curve()
	lockedAt := -1
	if at, ok := firstLock[last.Period]; ok {
		lockedAt = at
	}
	res := Fig4Result{Curve: curve.D, BestLag: last.Period, Confidence: last.Confidence, LockedAt: lockedAt}
	res.Plot = textplot.Curve(curve.D, res.BestLag, textplot.Options{
		Width:  99, // one column per lag
		Height: 14,
		YLabel: "Figure 4: distance d(m) over lag m (window N=100)",
		XLabel: fmt.Sprintf("lag m (1..%d); detected periodicity m=%d", len(curve.D), res.BestLag),
	})
	return res
}

// Fig7Result is one panel of the reproduced Figure 7.
type Fig7Result struct {
	// App is the application name.
	App string
	// WindowStart/WindowLen delimit the plotted slice of the stream.
	WindowStart, WindowLen int
	// Starts are the segmentation marks (indices into the plotted slice).
	Starts []int
	// Period is the periodicity governing the plotted segmentation.
	Period int
	// Plot is the rendered panel.
	Plot string
}

// Figure7 renders, for each SPECfp95 application, a slice of the address
// stream with the DPD's period-start segmentation marks.
func Figure7() []Fig7Result {
	var out []Fig7Result
	for _, app := range apps.SPECfp95() {
		tr := app.Trace()
		ms := core.MustMultiScaleDetector(nil, core.Config{})
		// Collect segmentation marks per ladder level, then keep the level
		// that certified the outermost (largest) period: mixing marks from
		// levels with different phase anchors would corrupt the spacing.
		type mark struct{ idx, period int }
		perLevel := make([][]mark, ms.Levels())
		for i, v := range tr.Values {
			mr := ms.Feed(v)
			for lvl, r := range mr.PerLevel {
				if r.Locked && r.Start {
					perLevel[lvl] = append(perLevel[lvl], mark{i, r.Period})
				}
			}
		}
		var marks []mark
		best := 0
		for _, lm := range perLevel {
			if len(lm) == 0 {
				continue
			}
			if p := lm[len(lm)-1].period; p > best {
				best = p
				marks = lm
			}
		}
		// Plot a window covering ~3 outer iterations from the middle of
		// the stream, where segmentation is established.
		p := app.EventsPerIteration()
		wlen := 3 * p
		if wlen > tr.Len() {
			wlen = tr.Len()
		}
		wstart := tr.Len() / 2
		if wstart+wlen > tr.Len() {
			wstart = tr.Len() - wlen
		}
		var local []int
		period := 0
		for _, m := range marks {
			if m.period == best && m.idx >= wstart && m.idx < wstart+wlen {
				local = append(local, m.idx-wstart)
				period = m.period
			}
		}
		vals := make([]float64, wlen)
		for i := range vals {
			vals[i] = float64(tr.Values[wstart+i])
		}
		plot := textplot.Plot(vals, local, textplot.Options{
			Width:  100,
			Height: 10,
			YLabel: fmt.Sprintf("Figure 7 (%s): loop address stream, samples %d..%d", app.Name, wstart, wstart+wlen),
			XLabel: fmt.Sprintf("segmentation period %d", period),
		})
		out = append(out, Fig7Result{
			App: app.Name, WindowStart: wstart, WindowLen: wlen,
			Starts: local, Period: period, Plot: plot,
		})
	}
	return out
}

// Table2Row is one row of the reproduced Table 2.
type Table2Row struct {
	App     string
	Length  int
	Periods []int
	// Expected is the paper's reported periodicity set.
	Expected []int
}

// Match reports whether the detected set equals the paper's.
func (r Table2Row) Match() bool {
	if len(r.Periods) != len(r.Expected) {
		return false
	}
	for i := range r.Periods {
		if r.Periods[i] != r.Expected[i] {
			return false
		}
	}
	return true
}

// Table2 runs the multi-scale DPD over every application's address stream
// and collects the distinct confirmed periodicities.
func Table2() []Table2Row {
	var out []Table2Row
	for _, app := range apps.SPECfp95() {
		tr := app.Trace()
		ms := core.MustMultiScaleDetector(nil, core.Config{})
		pt := core.NewPeriodTracker()
		for _, v := range tr.Values {
			pt.ObserveMulti(ms.Feed(v), ms)
		}
		out = append(out, Table2Row{
			App:      app.Name,
			Length:   tr.Len(),
			Periods:  pt.SignificantPeriods(8),
			Expected: app.ExpectPeriods,
		})
	}
	return out
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	t := [][]string{{"Appl.", "Data stream length", "Detected periodicities", "Paper", "Match"}}
	for _, r := range rows {
		t = append(t, []string{
			r.App,
			fmt.Sprintf("%d", r.Length),
			intsToString(r.Periods),
			intsToString(r.Expected),
			fmt.Sprintf("%v", r.Match()),
		})
	}
	return "Table 2: Detected periodicities.\n" + textplot.Table(t)
}

// Table3Row is one row of the reproduced Table 3.
type Table3Row struct {
	App string
	// NumElems is the trace length.
	NumElems int
	// ApExTime is the application's (simulated) sequential execution time.
	ApExTime time.Duration
	// TimeProc is the real, measured time this Go implementation spends
	// processing the whole trace through the DPD.
	TimeProc time.Duration
	// Percentage is TimeProc/ApExTime·100.
	Percentage float64
	// TimePerElem is TimeProc/NumElems.
	TimePerElem time.Duration
	// Windows is the detector ladder used (cost scales with it).
	Windows []int
}

// table3Ladder returns the detector configuration an application needs:
// flat periodicities fit a small window (the paper: "for some data series
// the size of the data window can be less than N=10"); nested structures
// need the full ladder up to N=1024 — which is why the paper's hydro2d
// and turb3d cost ~30× more per element.
func table3Ladder(app *apps.App) []int {
	maxP := 0
	for _, p := range app.ExpectPeriods {
		if p > maxP {
			maxP = p
		}
	}
	if maxP <= 8 {
		return []int{16}
	}
	if maxP <= 100 {
		return []int{8, 128}
	}
	return core.DefaultLadder
}

// Table3 measures the DPD processing overhead on every application trace,
// replaying recorded traces exactly as the paper's synthetic benchmark
// does (§6.3).
func Table3() []Table3Row {
	var out []Table3Row
	for _, app := range apps.SPECfp95() {
		tr := app.Trace()
		ladder := table3Ladder(app)
		ms := core.MustMultiScaleDetector(ladder, core.Config{})

		start := time.Now()
		for _, v := range tr.Values {
			ms.Feed(v)
		}
		proc := time.Since(start)

		apex := app.SequentialTime()
		row := Table3Row{
			App:         app.Name,
			NumElems:    tr.Len(),
			ApExTime:    apex,
			TimeProc:    proc,
			Percentage:  100 * float64(proc) / float64(apex),
			TimePerElem: proc / time.Duration(tr.Len()),
			Windows:     ladder,
		}
		out = append(out, row)
	}
	return out
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	t := [][]string{{"", "NumElems", "ApExTime(sec)", "TimeProc(sec)", "Perc.", "TimexElem(ms)", "windows"}}
	for _, r := range rows {
		t = append(t, []string{
			r.App,
			fmt.Sprintf("%d", r.NumElems),
			fmt.Sprintf("%.2f", r.ApExTime.Seconds()),
			fmt.Sprintf("%.6f", r.TimeProc.Seconds()),
			fmt.Sprintf("%.4f%%", r.Percentage),
			fmt.Sprintf("%.6f", float64(r.TimePerElem)/float64(time.Millisecond)),
			intsToString(r.Windows),
		})
	}
	return "Table 3: Overhead analysis (ApExTime simulated, TimeProc measured).\n" + textplot.Table(t)
}

// SpeedupResult is the §5 case-study outcome for one application.
type SpeedupResult struct {
	App string
	// Period is the region length the DPD identified.
	Period int
	// Procs is the allocation the speedup was measured at.
	Procs int
	// Speedup is the SelfAnalyzer's measured speedup.
	Speedup float64
	// Efficiency is Speedup/Procs.
	Efficiency float64
	// EstimatedTotal vs ActualTotal validate the execution-time estimate.
	EstimatedTotal, ActualTotal time.Duration
}

// CaseStudy runs every SPECfp95 application under the SelfAnalyzer on a
// 16-CPU machine and reports the dynamically computed speedups.
func CaseStudy(cpus int) []SpeedupResult {
	if cpus <= 0 {
		cpus = 16
	}
	var out []SpeedupResult
	for _, app := range apps.SPECfp95() {
		m := machine.New(cpus)
		reg := ditools.NewRegistry()
		rt := nanos.MustNew(m, machine.DefaultCostModel(), cpus, reg)
		sa := selfanalyzer.MustAttach(rt, reg, selfanalyzer.Config{})

		// Run enough iterations for identification + measurement, capped
		// by the app's own trip count.
		iters := app.Iterations
		probe := 40
		if probe > iters {
			probe = iters
		}
		app.RunIterations(rt, probe)
		est, _ := sa.EstimateTotal(app.Iterations)
		for i := probe; i < iters; i++ {
			rt.RunIteration(app.Body)
		}
		res := SpeedupResult{App: app.Name, Procs: cpus, ActualTotal: rt.Now(), EstimatedTotal: est}
		if r := sa.Region(); r != nil {
			res.Period = r.Period
			res.Speedup = r.Speedup
			res.Efficiency = r.Efficiency()
		}
		out = append(out, res)
	}
	return out
}

// FormatCaseStudy renders the case-study results.
func FormatCaseStudy(rs []SpeedupResult) string {
	t := [][]string{{"Appl.", "region period", "procs", "speedup", "efficiency", "est. total", "actual total"}}
	for _, r := range rs {
		t = append(t, []string{
			r.App,
			fmt.Sprintf("%d", r.Period),
			fmt.Sprintf("%d", r.Procs),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%.2f", r.Efficiency),
			fmt.Sprintf("%.2fs", r.EstimatedTotal.Seconds()),
			fmt.Sprintf("%.2fs", r.ActualTotal.Seconds()),
		})
	}
	return "Case study (§5): SelfAnalyzer dynamic speedup computation.\n" + textplot.Table(t)
}

// SchedResult compares allocation policies on a SPECfp95-derived workload.
type SchedResult struct {
	Results []*sched.Result
	// CPUSaving is equipartition's CPU consumption divided by the
	// efficiency-floored performance-driven policy's: processors the
	// speedup-aware allocator frees for other work.
	CPUSaving float64
	// ScalableSpeedup is how much faster the best-scaling job (turb3d)
	// completes under performance-driven allocation than equipartition.
	ScalableSpeedup float64
}

// Scheduler reproduces the [Corbalan2000] benefit: speedup-aware
// allocation against equipartition on a mixed-scalability workload.
func Scheduler(cpus int) (SchedResult, error) {
	if cpus <= 0 {
		cpus = 16
	}
	cm := machine.DefaultCostModel()
	// curve composes the loop-level cost-model speedup with an Amdahl
	// serial fraction representing each application's non-loop glue code
	// (I/O, reductions, boundary updates), which the address-stream
	// skeletons do not model but which dominates scalability differences
	// in the real SPECfp95 codes: S(p) = 1/(f + (1−f)/S_loop(p)).
	curve := func(trip int, per time.Duration, serialFrac float64) sched.SpeedupFunc {
		return func(p int) float64 {
			s := cm.Speedup(trip, per, p)
			return 1 / (serialFrac + (1-serialFrac)/s)
		}
	}
	// Jobs derived from the SPECfp95 skeletons: Work = simulated serial
	// time, Speedup = the dominant loop's curve damped by the app's serial
	// fraction. turb3d's big loops scale well; hydro2d's many tiny loops
	// and serial glue scale poorly.
	jobs := []sched.Job{
		{Name: "tomcatv", Work: apps.Tomcatv().SequentialTime(), Speedup: curve(101, 360*time.Microsecond, 0.02)},
		{Name: "swim", Work: apps.Swim().SequentialTime(), Speedup: curve(125, 200*time.Microsecond, 0.03)},
		{Name: "apsi", Work: apps.Apsi().SequentialTime(), Speedup: curve(111, 150*time.Microsecond, 0.10)},
		{Name: "hydro2d", Work: apps.Hydro2d().SequentialTime(), Speedup: curve(100, 34*time.Microsecond, 0.35)},
		{Name: "turb3d", Work: apps.Turb3d().SequentialTime(), Speedup: curve(200, 853*time.Microsecond, 0.01)},
	}
	mk := func() []sched.Job {
		out := make([]sched.Job, len(jobs))
		copy(out, jobs)
		return out
	}
	eq, err := sched.Simulate(mk(), cpus, 100*time.Millisecond, sched.Equipartition{})
	if err != nil {
		return SchedResult{}, err
	}
	pd, err := sched.Simulate(mk(), cpus, 100*time.Millisecond, sched.PerformanceDriven{})
	if err != nil {
		return SchedResult{}, err
	}
	floor, err := sched.Simulate(mk(), cpus, 100*time.Millisecond, sched.PerformanceDriven{MinEfficiency: 0.3})
	if err != nil {
		return SchedResult{}, err
	}
	finish := func(r *sched.Result, name string) time.Duration {
		for _, j := range r.Jobs {
			if j.Name == name {
				return j.Finish
			}
		}
		return 0
	}
	return SchedResult{
		Results:         []*sched.Result{eq, pd, floor},
		CPUSaving:       float64(eq.CPUTime) / float64(floor.CPUTime),
		ScalableSpeedup: float64(finish(eq, "turb3d")) / float64(finish(pd, "turb3d")),
	}, nil
}

// FormatScheduler renders the policy comparison. The speedup-aware
// policies free processors (lower CPU time) and accelerate the jobs that
// can use them; equipartition parks processors on jobs that cannot — the
// benefit [Corbalan2000] reports from feeding SelfAnalyzer speedups into
// the allocator.
func FormatScheduler(sr SchedResult) string {
	t := [][]string{{"policy", "makespan", "avg turnaround", "cpu time"}}
	for _, r := range sr.Results {
		name := r.Policy
		if r == sr.Results[len(sr.Results)-1] {
			name += " (eff floor 0.3)"
		}
		t = append(t, []string{
			name,
			fmt.Sprintf("%.1fs", r.Makespan.Seconds()),
			fmt.Sprintf("%.1fs", r.AvgTurnaround.Seconds()),
			fmt.Sprintf("%.1fs", r.CPUTime.Seconds()),
		})
	}
	return fmt.Sprintf(
		"Processor allocation ([Corbalan2000] consumer): %.2fx CPU-time saving, %.2fx faster scalable job (turb3d).\n%s",
		sr.CPUSaving, sr.ScalableSpeedup, textplot.Table(t))
}

func intsToString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ", ")
}
