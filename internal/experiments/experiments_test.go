package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFigure3TraceShape(t *testing.T) {
	r := Figure3(50, 20010513)
	if r.Trace.Len() < 2000 {
		t.Fatalf("trace too short: %d samples", r.Trace.Len())
	}
	if err := r.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, v := range r.Trace.Samples {
		if v > peak {
			peak = v
		}
	}
	if peak != 16 {
		t.Fatalf("peak CPUs=%v, want 16 (paper: up to 16 CPUs)", peak)
	}
	if !strings.Contains(r.Plot, "Figure 3") {
		t.Fatal("plot missing title")
	}
}

func TestFigure4FindsPeriod44(t *testing.T) {
	fig3 := Figure3(50, 20010513)
	r := Figure4(fig3)
	if r.BestLag < 43 || r.BestLag > 45 {
		t.Fatalf("detected lag=%d, want ≈44 (paper Figure 4)", r.BestLag)
	}
	if r.Confidence < 0.5 {
		t.Fatalf("confidence=%v too low", r.Confidence)
	}
	// The curve itself must dip at the lag: d(best) below curve average.
	var sum float64
	n := 0
	for _, v := range r.Curve {
		if v == v { // skip NaN
			sum += v
			n++
		}
	}
	if n == 0 || r.Curve[r.BestLag-1] >= sum/float64(n) {
		t.Fatalf("d(%d)=%v not below curve mean", r.BestLag, r.Curve[r.BestLag-1])
	}
}

func TestFigure4ExactPeriodOnCleanTrace(t *testing.T) {
	fig3 := Figure3(50, 0) // jitter-free
	r := Figure4(fig3)
	if r.BestLag != 44 {
		t.Fatalf("clean trace lag=%d, want exactly 44", r.BestLag)
	}
}

func TestFigure7AllAppsSegmented(t *testing.T) {
	rs := Figure7()
	if len(rs) != 5 {
		t.Fatalf("panels=%d, want 5", len(rs))
	}
	for _, r := range rs {
		if len(r.Starts) == 0 {
			t.Errorf("%s: no segmentation marks in plotted window", r.App)
		}
		if !strings.Contains(r.Plot, "*") {
			t.Errorf("%s: marks not rendered", r.App)
		}
		// Marks must be spaced by the governing period.
		for i := 1; i < len(r.Starts); i++ {
			if d := r.Starts[i] - r.Starts[i-1]; d != r.Period {
				t.Errorf("%s: marks spaced %d, want %d", r.App, d, r.Period)
			}
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if !r.Match() {
			t.Errorf("%s: detected %v, paper %v", r.App, r.Periods, r.Expected)
		}
	}
	out := FormatTable2(rows)
	for _, name := range []string{"apsi", "hydro2d", "swim", "tomcatv", "turb3d"} {
		if !strings.Contains(out, name) {
			t.Errorf("formatted table missing %s", name)
		}
	}
	if !strings.Contains(out, "1, 24, 269") {
		t.Error("hydro2d periodicities not rendered")
	}
}

func TestTable3OverheadNegligible(t *testing.T) {
	rows := Table3()
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.App] = r
		if r.NumElems == 0 || r.TimeProc <= 0 {
			t.Fatalf("%s: empty measurement %+v", r.App, r)
		}
		// The paper's conclusion: overhead is negligible. Even against
		// simulated app times, percentages must stay below the paper's
		// worst case (3.27%).
		if r.Percentage > 3.5 {
			t.Errorf("%s: overhead %.3f%% not negligible", r.App, r.Percentage)
		}
	}
	// Shape: the nested apps (large windows) must cost more per element
	// than the flat apps (small windows), as in the paper (0.112 ms and
	// 0.108 ms vs 0.004 ms).
	flat := byName["tomcatv"].TimePerElem
	if byName["hydro2d"].TimePerElem < 4*flat {
		t.Errorf("hydro2d per-elem %v not ≫ tomcatv %v", byName["hydro2d"].TimePerElem, flat)
	}
	if byName["turb3d"].TimePerElem < 4*flat {
		t.Errorf("turb3d per-elem %v not ≫ tomcatv %v", byName["turb3d"].TimePerElem, flat)
	}
	_ = FormatTable3(rows)
}

func TestCaseStudySpeedups(t *testing.T) {
	rs := CaseStudy(16)
	if len(rs) != 5 {
		t.Fatalf("results=%d", len(rs))
	}
	for _, r := range rs {
		if r.Period == 0 {
			t.Errorf("%s: no region identified", r.App)
			continue
		}
		if r.Speedup <= 1 || r.Speedup > 16 {
			t.Errorf("%s: speedup=%v outside (1,16]", r.App, r.Speedup)
		}
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Errorf("%s: efficiency=%v", r.App, r.Efficiency)
		}
		if r.EstimatedTotal <= 0 {
			t.Errorf("%s: no execution-time estimate", r.App)
			continue
		}
		ratio := float64(r.EstimatedTotal) / float64(r.ActualTotal)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: estimate %v vs actual %v (ratio %.3f)", r.App, r.EstimatedTotal, r.ActualTotal, ratio)
		}
	}
	out := FormatCaseStudy(rs)
	if !strings.Contains(out, "speedup") {
		t.Error("case study formatting broken")
	}
}

func TestCaseStudyRegionPeriods(t *testing.T) {
	rs := CaseStudy(8)
	want := map[string]int{"tomcatv": 5, "swim": 6, "apsi": 6, "hydro2d": 269, "turb3d": 142}
	for _, r := range rs {
		if w := want[r.App]; r.Period != w {
			t.Errorf("%s: region period=%d, want outer %d", r.App, r.Period, w)
		}
	}
}

func TestSchedulerImprovement(t *testing.T) {
	sr, err := Scheduler(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("results=%d", len(sr.Results))
	}
	// The speedup-aware allocator must save substantial CPU time (the
	// freed processors are the [Corbalan2000] benefit) and finish the
	// scalable job faster than equipartition.
	if sr.CPUSaving <= 1.2 {
		t.Fatalf("cpu saving=%.3f, want > 1.2", sr.CPUSaving)
	}
	if sr.ScalableSpeedup <= 1.1 {
		t.Fatalf("scalable job speedup=%.3f, want > 1.1", sr.ScalableSpeedup)
	}
	out := FormatScheduler(sr)
	if !strings.Contains(out, "performance-driven") || !strings.Contains(out, "equipartition") {
		t.Error("scheduler formatting broken")
	}
}

func TestTable3LadderSelection(t *testing.T) {
	rows := Table3()
	for _, r := range rows {
		switch r.App {
		case "tomcatv", "swim", "apsi":
			if len(r.Windows) != 1 || r.Windows[0] != 16 {
				t.Errorf("%s: ladder=%v, want [16]", r.App, r.Windows)
			}
		case "hydro2d", "turb3d":
			if len(r.Windows) < 3 {
				t.Errorf("%s: ladder=%v, want full ladder", r.App, r.Windows)
			}
		}
	}
}

func TestFigure3Deterministic(t *testing.T) {
	a := Figure3(20, 7)
	b := Figure3(20, 7)
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("nondeterministic figure 3")
	}
	for i := range a.Trace.Samples {
		if a.Trace.Samples[i] != b.Trace.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestFigure3DefaultIterations(t *testing.T) {
	r := Figure3(0, 0)
	if r.Trace.Duration() < time.Second {
		t.Fatalf("default run too short: %v", r.Trace.Duration())
	}
}
