package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeSeq runs a fixed durability-shaped operation sequence (create,
// two writes, sync, close, rename, dir-sync) against fs, returning the
// first error.
func writeSeq(fs FS, dir string, payload []byte) error {
	tmp := filepath.Join(dir, "f.tmp")
	final := filepath.Join(dir, "f")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload[:len(payload)/2]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload[len(payload)/2:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// TestInjectorCrashMatrix: the same sequence crashed at every step
// leaves exactly the prefix of effects on disk — and the step count of
// a dry run sizes the matrix.
func TestInjectorCrashMatrix(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 64)

	dry := NewInjector(OS{}, NeverPlan())
	if err := writeSeq(dry, t.TempDir(), payload); err != nil {
		t.Fatal(err)
	}
	steps := dry.Steps()
	if steps != 7 { // create, write, write, sync, close, rename, syncdir
		t.Fatalf("dry run counted %d steps, want 7", steps)
	}

	for crash := 0; crash < steps; crash++ {
		dir := t.TempDir()
		in := NewInjector(OS{}, Plan{Seed: 42, CrashAt: crash, FailAt: -1, HangAt: -1})
		err := writeSeq(in, dir, payload)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash=%d: err = %v, want ErrCrashed", crash, err)
		}
		if !in.Crashed() {
			t.Fatalf("crash=%d: injector not crashed", crash)
		}
		// After the crash every operation fails without effect.
		if _, err := in.Create(filepath.Join(dir, "later")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash=%d: post-crash create = %v", crash, err)
		}
		final, tmp := filepath.Join(dir, "f"), filepath.Join(dir, "f.tmp")
		switch {
		case crash <= 4: // died before rename: no final file, tmp possibly torn
			if _, err := os.Stat(final); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("crash=%d: final file exists", crash)
			}
			if data, err := os.ReadFile(tmp); err == nil {
				if !bytes.HasPrefix(payload, data) {
					t.Fatalf("crash=%d: tmp is not a prefix of the payload (%d bytes)", crash, len(data))
				}
				if crash >= 3 && len(data) != len(payload) {
					t.Fatalf("crash=%d: writes completed but tmp has %d/%d bytes", crash, len(data), len(payload))
				}
			} else if crash > 0 {
				t.Fatalf("crash=%d: tmp missing after create step", crash)
			}
		case crash == 5: // died at rename: tmp intact, final absent
			if data, err := os.ReadFile(tmp); err != nil || !bytes.Equal(data, payload) {
				t.Fatalf("crash=%d: tmp = %d bytes, err %v", crash, len(data), err)
			}
		default: // died at dir-sync: rename already applied
			if data, err := os.ReadFile(final); err != nil || !bytes.Equal(data, payload) {
				t.Fatalf("crash=%d: final = %d bytes, err %v", crash, len(data), err)
			}
		}
	}
}

// TestInjectorCrashDeterminism: the same seed tears the same write at
// the same length twice.
func TestInjectorCrashDeterminism(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1024)
	read := func(seed uint64) int {
		dir := t.TempDir()
		in := NewInjector(OS{}, Plan{Seed: seed, CrashAt: 1, FailAt: -1, HangAt: -1})
		writeSeq(in, dir, payload)
		data, _ := os.ReadFile(filepath.Join(dir, "f.tmp"))
		return len(data)
	}
	a, b := read(7), read(7)
	if a != b {
		t.Fatalf("same seed produced torn lengths %d and %d", a, b)
	}
	if c := read(8); c == a {
		t.Logf("different seeds coincided (%d); legal but suspicious", c)
	}
}

// TestInjectorTransientFail: a FailAt step returns the injected error
// (ENOSPC shape, short write) and the sequence can be retried clean.
func TestInjectorTransientFail(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 256)
	dir := t.TempDir()
	in := NewInjector(OS{}, Plan{CrashAt: -1, FailAt: 1, HangAt: -1})
	err := writeSeq(in, dir, payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The injector is not crashed: a retry (fresh steps past FailAt)
	// succeeds.
	if err := writeSeq(in, dir, payload); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if data, _ := os.ReadFile(filepath.Join(dir, "f")); !bytes.Equal(data, payload) {
		t.Fatal("retry did not produce the full file")
	}
}

// TestInjectorHang: a HangAt step blocks until Release.
func TestInjectorHang(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Plan{CrashAt: -1, FailAt: -1, HangAt: 3})
	done := make(chan error, 1)
	go func() { done <- writeSeq(in, dir, []byte("hello world!")) }()
	select {
	case err := <-done:
		t.Fatalf("sequence finished during hang: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sequence still blocked after Release")
	}
}

// echoServer accepts one upstream connection at a time and echoes it.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestProxyCutAndCorrupt: the proxy forwards exactly CutAfter bytes
// then severs, and CorruptAt flips exactly one scripted byte.
func TestProxyCutAndCorrupt(t *testing.T) {
	up := echoServer(t)
	plans := []ConnPlan{
		{CutAfter: 10, CorruptAt: -1, StallAt: -1},
		{CorruptAt: 3, StallAt: -1},
		{CorruptAt: -1, StallAt: -1},
	}
	p, err := NewProxy("127.0.0.1:0", up.Addr().String(), func(i int) ConnPlan {
		if i < len(plans) {
			return plans[i]
		}
		return ConnPlan{CorruptAt: -1, StallAt: -1}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Conn 0: cut after 10 bytes — at most 10 echo back, then failure.
	c0 := dial()
	c0.Write(bytes.Repeat([]byte("A"), 64))
	c0.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(c0)
	if len(got) > 10 {
		t.Fatalf("cut connection echoed %d bytes, want <= 10", len(got))
	}
	c0.Close()

	// Conn 1: byte 3 arrives flipped.
	c1 := dial()
	msg := []byte("hello!")
	c1.Write(msg)
	c1.(*net.TCPConn).CloseWrite()
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	echo, err := io.ReadAll(c1)
	if err != nil || len(echo) != len(msg) {
		t.Fatalf("corrupt conn echo = %q, err %v", echo, err)
	}
	want := append([]byte{}, msg...)
	want[3] ^= 0x80
	if !bytes.Equal(echo, want) {
		t.Fatalf("echo = %q, want %q", echo, want)
	}
	c1.Close()

	// Conn 2: clean round trip.
	c2 := dial()
	c2.Write(msg)
	c2.(*net.TCPConn).CloseWrite()
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	echo, err = io.ReadAll(c2)
	if err != nil || !bytes.Equal(echo, msg) {
		t.Fatalf("clean conn echo = %q, err %v", echo, err)
	}
	c2.Close()

	if p.Conns() != 3 {
		t.Fatalf("proxy accepted %d conns, want 3", p.Conns())
	}
}

// TestProxyRetarget: SetUpstream moves new connections to a different
// server while the proxy address stays stable.
func TestProxyRetarget(t *testing.T) {
	up1 := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", up1.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	roundTrip := func(msg []byte) []byte {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Write(msg)
		c.(*net.TCPConn).CloseWrite()
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		echo, _ := io.ReadAll(c)
		return echo
	}
	if got := roundTrip([]byte("one")); !bytes.Equal(got, []byte("one")) {
		t.Fatalf("echo via up1 = %q", got)
	}

	// Retarget to a server that uppercases instead of echoing.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go func() {
		for {
			c, err := ln2.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf, _ := io.ReadAll(c)
				c.Write(bytes.ToUpper(buf))
			}(c)
		}
	}()
	p.SetUpstream(ln2.Addr().String())
	if got := roundTrip([]byte("two")); !bytes.Equal(got, []byte("TWO")) {
		t.Fatalf("echo via retargeted upstream = %q", got)
	}
}

// TestChaosPlanDeterminism: the same seed and index yield the same
// plan; clean indices yield no faults.
func TestChaosPlanDeterminism(t *testing.T) {
	a := ChaosPlan(99, 1, 5, 1<<20)
	b := ChaosPlan(99, 1, 5, 1<<20)
	if a != b {
		t.Fatalf("plans differ: %+v vs %+v", a, b)
	}
	if a.CutAfter <= 0 {
		t.Fatalf("faulted index has no cut: %+v", a)
	}
	clean := ChaosPlan(99, 7, 5, 1<<20)
	if clean.CutAfter != 0 || clean.CorruptAt >= 0 || clean.StallAt >= 0 {
		t.Fatalf("index past cuts should be clean: %+v", clean)
	}
}
