// Package faults is the repo's deterministic fault-injection layer: a
// filesystem shim scripted by operation step index (so every crash
// point in the durability path can be provoked on demand and
// reproduced exactly), and a flaky-network layer (net.go) that injects
// stalls, cuts, resets and corruption into live TCP streams.
//
// The discipline everywhere is determinism: faults fire at scripted
// step indices, and anything stochastic (a torn write's length, a
// corrupted byte's position) derives from a caller-supplied seed
// through splitmix64 — the same plan against the same workload always
// produces the same failure, which is what turns "we survived chaos
// once" into a regression test.
package faults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrCrashed is returned by every Injector operation at and after the
// scripted crash step: the moment the simulated process died. State
// mutated before the crash step stays on disk; the crash step itself
// applies at most a torn prefix; nothing after it has any effect.
var ErrCrashed = errors.New("faults: crashed at scripted step")

// ErrInjected wraps transient scripted failures (FailAt) so tests can
// distinguish an injected error from a real one.
var ErrInjected = errors.New("faults: injected failure")

// FS is the filesystem surface the server's durability path runs on.
// Production code uses OS; fault tests substitute an Injector. Every
// method mirrors its os counterpart.
type FS interface {
	// MkdirAll creates a directory tree like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Create creates or truncates a file for writing.
	Create(path string) (File, error)
	// Open opens a file for reading.
	Open(path string) (File, error)
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(path string) ([]os.DirEntry, error)
	// Rename atomically moves a file like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(path string) error
	// SyncDir fsyncs a directory so a just-renamed file survives a
	// crash; best effort like the server always treated it.
	SyncDir(path string) error
}

// File is the open-file surface the durability path needs.
type File interface {
	io.Reader
	io.Writer
	// Sync fsyncs the file.
	Sync() error
	// Close closes the file.
	Close() error
}

// OS is the passthrough FS over the real os package — the production
// implementation.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Create implements FS.
func (OS) Create(path string) (File, error) { return os.Create(path) }

// Open implements FS.
func (OS) Open(path string) (File, error) { return os.Open(path) }

// ReadDir implements FS.
func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Plan scripts an Injector. Steps count every mutating operation in
// order (MkdirAll, Create, each Write, each Sync, Rename, Remove,
// SyncDir), starting at 0; reads never consume a step, so the crash
// matrix enumerates exactly the write path.
type Plan struct {
	// Seed drives every derived random choice (torn-write length). The
	// zero seed is valid and deterministic like any other.
	Seed uint64
	// CrashAt is the step index at which the simulated process dies:
	// that operation applies at most a torn prefix (writes) or nothing
	// (everything else), and every later operation returns ErrCrashed.
	// Negative means never.
	CrashAt int
	// FailAt is the step index of a transient failure: the operation
	// returns FailErr without applying (writes apply a short prefix
	// first, the ENOSPC shape), and later operations proceed normally.
	// Negative means never.
	FailAt int
	// FailErr is the error FailAt returns; nil selects ENOSPC.
	FailErr error
	// HangAt is the step index that blocks until Release is called on
	// the Injector — the wedged-disk shape. Negative means never.
	HangAt int
}

// NeverPlan returns a Plan with every fault disabled, for dry runs that
// count the steps of an operation sequence.
func NeverPlan() Plan { return Plan{CrashAt: -1, FailAt: -1, HangAt: -1} }

// Injector is a scripted FS: it counts mutating operations and fires
// the Plan's faults at their step indices. It is safe for concurrent
// use; the step order of concurrent operations is whatever order they
// serialize in, so deterministic tests should drive it from one
// goroutine.
type Injector struct {
	inner FS
	plan  Plan

	mu      sync.Mutex
	step    int
	crashed bool
	hang    chan struct{} // closed by Release
	hung    bool
}

// NewInjector wraps inner (nil selects OS) with plan.
func NewInjector(inner FS, plan Plan) *Injector {
	if inner == nil {
		inner = OS{}
	}
	return &Injector{inner: inner, plan: plan, hang: make(chan struct{})}
}

// Steps returns how many mutating operations have executed so far —
// after a faultless dry run, the size of the crash matrix.
func (in *Injector) Steps() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

// Crashed reports whether the scripted crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Release unblocks a HangAt operation (idempotent).
func (in *Injector) Release() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.hung {
		in.hung = true
		close(in.hang)
	}
}

// stepFault advances the step counter and reports the fault, if any,
// scripted for this step. It returns (step, crash, fail) where crash
// means "die during this operation" and fail is a transient error.
func (in *Injector) stepFault() (step int, crash bool, fail error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return -1, true, nil
	}
	step = in.step
	in.step++
	if step == in.plan.CrashAt {
		in.crashed = true
		crash = true
	}
	if step == in.plan.FailAt {
		fail = in.plan.FailErr
		if fail == nil {
			fail = fmt.Errorf("%w: %v", ErrInjected, errNoSpace)
		} else {
			fail = fmt.Errorf("%w: %v", ErrInjected, fail)
		}
	}
	hangs := step == in.plan.HangAt
	in.mu.Unlock()
	if hangs {
		<-in.hang
	}
	return step, crash, fail
}

// errNoSpace is the default transient failure (the ENOSPC shape).
var errNoSpace = errors.New("no space left on device")

// tornLen derives the deterministic torn-prefix length for a crash
// mid-write: somewhere in [0, n), seeded by the plan and step.
func (in *Injector) tornLen(step, n int) int {
	if n <= 0 {
		return 0
	}
	return int(splitmix64(in.plan.Seed^uint64(step)) % uint64(n))
}

// splitmix64 is the repo's standard cheap mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// MkdirAll implements FS with step-indexed faults.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	_, crash, fail := in.stepFault()
	if crash {
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	return in.inner.MkdirAll(path, perm)
}

// Create implements FS with step-indexed faults.
func (in *Injector) Create(path string) (File, error) {
	_, crash, fail := in.stepFault()
	if crash {
		return nil, ErrCrashed
	}
	if fail != nil {
		return nil, fail
	}
	f, err := in.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// Open implements FS; reads are never faulted (the crash matrix is
// about the write path) and consume no step.
func (in *Injector) Open(path string) (File, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.inner.Open(path)
}

// ReadDir implements FS; reads consume no step.
func (in *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.inner.ReadDir(path)
}

// Rename implements FS with step-indexed faults.
func (in *Injector) Rename(oldpath, newpath string) error {
	_, crash, fail := in.stepFault()
	if crash {
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS with step-indexed faults.
func (in *Injector) Remove(path string) error {
	_, crash, fail := in.stepFault()
	if crash {
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	return in.inner.Remove(path)
}

// SyncDir implements FS with step-indexed faults.
func (in *Injector) SyncDir(path string) error {
	_, crash, fail := in.stepFault()
	if crash {
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	return in.inner.SyncDir(path)
}

// injFile wraps a File so its writes, syncs and closes run through the
// injector's step script.
type injFile struct {
	in *Injector
	f  File
}

// Read passes through; reads are never faulted.
func (w *injFile) Read(p []byte) (int, error) { return w.f.Read(p) }

// Write applies step faults: a crash step writes a seeded torn prefix
// then dies; a fail step writes a torn prefix and returns the transient
// error (the short-write ENOSPC shape).
func (w *injFile) Write(p []byte) (int, error) {
	step, crash, fail := w.in.stepFault()
	if crash {
		if step >= 0 {
			if n := w.in.tornLen(step, len(p)); n > 0 {
				w.f.Write(p[:n])
			}
			w.f.Close()
		}
		return 0, ErrCrashed
	}
	if fail != nil {
		n := w.in.tornLen(step, len(p))
		if n > 0 {
			w.f.Write(p[:n])
		}
		return n, fail
	}
	return w.f.Write(p)
}

// Sync applies step faults to fsync.
func (w *injFile) Sync() error {
	_, crash, fail := w.in.stepFault()
	if crash {
		w.f.Close()
		return ErrCrashed
	}
	if fail != nil {
		return fail
	}
	return w.f.Sync()
}

// Close applies step faults to close.
func (w *injFile) Close() error {
	_, crash, fail := w.in.stepFault()
	if crash {
		w.f.Close()
		return ErrCrashed
	}
	if fail != nil {
		w.f.Close()
		return fail
	}
	return w.f.Close()
}
