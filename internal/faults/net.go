package faults

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnPlan scripts the faults of one proxied connection. Offsets count
// bytes forwarded in the client→server direction (the ingest plane's
// hot direction); every fault is positional, so the same plan against
// the same byte stream reproduces the same failure — including a
// mid-frame cut, because frames sit at fixed offsets in the stream.
type ConnPlan struct {
	// CutAfter kills the connection (both directions, RST-style) once
	// this many client→server bytes have been forwarded; the cut lands
	// wherever it lands, including mid-frame. 0 disables.
	CutAfter int64
	// CorruptAt XORs 0x80 into the client→server byte at this stream
	// offset — reorder-free corruption: bytes keep their positions,
	// exactly one bit pattern changes. Negative disables.
	CorruptAt int64
	// StallAt pauses forwarding for Stall once this stream offset is
	// reached, simulating a network stall without data loss. Negative
	// disables.
	StallAt int64
	// Stall is the stall duration for StallAt.
	Stall time.Duration
	// CutReplyAfter kills the connection once this many server→client
	// bytes have been forwarded — the lost-ack shape: the server applied
	// everything, the client never heard. 0 disables.
	CutReplyAfter int64
}

// ChaosPlan derives a deterministic per-connection plan from a seed and
// the connection index: early connections get cuts at seeded offsets
// (some with a stall or a corrupted byte first), so a client driven
// through the proxy sees a different, reproducible failure on every
// reconnect. Connections at index >= cuts run clean, letting the
// workload finish.
func ChaosPlan(seed uint64, index, cuts int, span int64) ConnPlan {
	p := ConnPlan{CorruptAt: -1, StallAt: -1}
	if index >= cuts || span <= 0 {
		return p
	}
	r := splitmix64(seed + uint64(index)*0x9E3779B97F4A7C15)
	p.CutAfter = 1 + int64(r%uint64(span))
	switch index % 3 {
	case 1: // corrupt a byte before the cut lands
		p.CorruptAt = int64(splitmix64(r) % uint64(p.CutAfter))
	case 2: // stall briefly mid-stream before the cut
		p.StallAt = int64(splitmix64(r+1) % uint64(p.CutAfter))
		p.Stall = 10 * time.Millisecond
	}
	return p
}

// Proxy is an in-process flaky TCP proxy: it accepts connections,
// forwards them to an upstream address, and injects each ConnPlan's
// faults into the forwarded streams. The upstream is retargetable, so
// a test can keep a stable client-facing address across a server
// restart — the proxy plays the VIP.
type Proxy struct {
	ln       net.Listener
	upstream atomic.Value // string
	plan     func(index int) ConnPlan

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	index  int
}

// NewProxy listens on addr (use "127.0.0.1:0") and forwards to
// upstream. plan maps the i-th accepted connection (0-based) to its
// fault script; nil runs every connection clean.
func NewProxy(addr, upstream string, plan func(index int) ConnPlan) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		plan = func(int) ConnPlan { return ConnPlan{CorruptAt: -1, StallAt: -1} }
	}
	p := &Proxy{ln: ln, plan: plan, conns: make(map[net.Conn]struct{})}
	p.upstream.Store(upstream)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's client-facing address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetUpstream retargets future connections — the restarted-server
// scenario: the client keeps dialing the proxy, the proxy follows the
// server to its new address.
func (p *Proxy) SetUpstream(addr string) { p.upstream.Store(addr) }

// Conns returns how many connections the proxy has accepted.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.index
}

// Close stops the proxy and severs every live connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// acceptLoop admits and forwards connections until Close.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			cc.Close()
			return
		}
		idx := p.index
		p.index++
		p.conns[cc] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(1)
		go p.forward(cc, idx)
	}
}

// forget drops a finished connection from the teardown set.
func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// forward runs one proxied connection to completion under its plan.
func (p *Proxy) forward(cc net.Conn, idx int) {
	defer p.wg.Done()
	defer p.forget(cc)
	defer cc.Close()

	plan := p.plan(idx)
	sc, err := net.Dial("tcp", p.upstream.Load().(string))
	if err != nil {
		// Upstream down (mid-restart): drop the client like a dead
		// network would.
		return
	}
	defer sc.Close()

	// cut severs both directions at once; RST-style where possible so
	// the peer sees a hard failure, not a graceful FIN.
	var cutOnce sync.Once
	cut := func() {
		cutOnce.Do(func() {
			for _, c := range []net.Conn{cc, sc} {
				if tc, ok := c.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				c.Close()
			}
		})
	}

	var dirWG sync.WaitGroup
	dirWG.Add(2)
	go func() { // client → server: the scripted direction
		defer dirWG.Done()
		pump(cc, sc, pumpPlan{cutAfter: plan.CutAfter, corruptAt: plan.CorruptAt, stallAt: plan.StallAt, stall: plan.Stall}, cut)
	}()
	go func() { // server → client: replies; only the lost-ack cut applies
		defer dirWG.Done()
		pump(sc, cc, pumpPlan{cutAfter: plan.CutReplyAfter, corruptAt: -1, stallAt: -1}, cut)
	}()
	dirWG.Wait()
}

// pumpPlan is one direction's slice of a ConnPlan.
type pumpPlan struct {
	cutAfter  int64
	corruptAt int64
	stallAt   int64
	stall     time.Duration
}

// pump copies src→dst applying positional faults, calling cut at the
// scripted offset or closing dst's write side on EOF.
func pump(src, dst net.Conn, plan pumpPlan, cut func()) {
	var off int64
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			b := buf[:n]
			// Stall before forwarding the chunk containing the offset.
			if plan.stallAt >= 0 && off <= plan.stallAt && plan.stallAt < off+int64(n) {
				time.Sleep(plan.stall)
			}
			if plan.corruptAt >= 0 && off <= plan.corruptAt && plan.corruptAt < off+int64(n) {
				b[plan.corruptAt-off] ^= 0x80
			}
			// Cut mid-chunk: forward only the bytes before the cut.
			if plan.cutAfter > 0 && off+int64(n) >= plan.cutAfter {
				keep := plan.cutAfter - off
				if keep > 0 {
					dst.Write(b[:keep])
				}
				cut()
				return
			}
			if _, werr := dst.Write(b); werr != nil {
				cut()
				return
			}
			off += int64(n)
		}
		if err != nil {
			// EOF or peer close: half-close the write side so in-flight
			// replies drain, mirroring real TCP teardown.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			return
		}
	}
}
