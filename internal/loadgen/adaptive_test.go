package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dpd"
)

// Adaptive-placement differential: the referee for contention-adaptive
// hot-stream promotion. Eight concurrent feeders drive zipf-skewed
// traffic into an adaptive pool on a hair-trigger coordinator cadence;
// the celebrity keys must be promoted onto dedicated hot workers during
// the run, cool off and be demoted when the workload moves to a fresh
// key window, and every stream — promoted, demoted or never hot — must
// end byte-identical to a standalone detector fed the same per-key
// subsequence.

// adaptiveRefereePool builds an adaptive pool tuned to the harness's
// per-connection zipf shape: 8 conns × 8 keys means each connection's
// rank-0 celebrity takes ~37-43% of its own traffic but only ~5% of
// the global window, so the promotion threshold sits at 3% with a
// window large enough (512+ samples) to smooth batch burstiness, and
// MaxHot admits every per-connection celebrity at once. Demotion:
// below 0.5% for 25 consecutive folds (~125ms cold).
func adaptiveRefereePool(t *testing.T) *dpd.Pool {
	t.Helper()
	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:      4,
		NewDetector: refereeDetector,
		Adaptive: dpd.AdaptiveConfig{
			Enable:         true,
			MaxHot:         8,
			FoldEvery:      5 * time.Millisecond,
			PromoteShare:   0.03,
			DemoteShare:    0.005,
			PromoteAfter:   1,
			DemoteAfter:    25,
			MinFoldSamples: 512,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// diffRuns asserts every pooled stream matches the standalone replay of
// whichever run fed it (runs target disjoint key windows).
func diffRuns(t *testing.T, p *dpd.Pool, runs []struct {
	cfg Config
	rep Report
}) int {
	t.Helper()
	checked := 0
	for _, st := range p.Snapshot(nil) {
		found := false
		for _, r := range runs {
			n, ok := r.rep.StreamSamples[st.Key]
			if !ok {
				continue
			}
			found = true
			if want := replayStat(r.cfg, st.Key, n); st.Stat != want {
				t.Errorf("stream %d after %d samples: pooled %+v != standalone %+v", st.Key, n, st.Stat, want)
			}
			break
		}
		if !found {
			t.Fatalf("pool holds stream %d no run ever fed", st.Key)
		}
		checked++
	}
	return checked
}

func TestAdaptiveZipfDifferential(t *testing.T) {
	for _, theta := range []float64{0.99, 1.2} {
		theta := theta
		t.Run(fmt.Sprintf("theta=%v", theta), func(t *testing.T) {
			p := adaptiveRefereePool(t)
			defer p.Close()

			var runs []struct {
				cfg Config
				rep Report
			}
			run := func(cfg Config) Report {
				t.Helper()
				rep, err := RunPool(context.Background(), cfg, p)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, struct {
					cfg Config
					rep Report
				}{cfg, rep})
				return rep
			}

			// Phase 1: skewed traffic from 8 feeders, rate-limited so
			// the run spans many coordinator folds.
			hotCfg := Config{
				Conns: 8, Streams: 64, SamplesPerStream: 512, BatchSize: 32,
				Period: 7, PatternStride: 100, Rate: 400_000,
				Workload: Workload{Dist: Dist{Kind: DistZipf, Theta: theta}, Seed: 42},
			}
			rep := run(hotCfg)

			st := p.AdaptiveStats()
			if !st.Enabled || st.Promotions == 0 || len(st.Hot) == 0 {
				t.Fatalf("no promotion under theta=%v skew: %+v", theta, st)
			}
			// The global hottest key qualifies on every fold, so it must
			// be in the hot set — and its samples after promotion were
			// served off its dedicated ring, not a shard.
			var hottest, hottestN uint64
			for k, n := range rep.StreamSamples {
				if n > hottestN {
					hottest, hottestN = k, n
				}
			}
			var hotEntry *dpd.HotStreamInfo
			for i := range st.Hot {
				if st.Hot[i].Key == hottest {
					hotEntry = &st.Hot[i]
				}
			}
			if hotEntry == nil {
				t.Fatalf("global hottest key %d (%d samples) not promoted: %+v", hottest, rep.StreamSamples[hottest], st)
			}
			if hotEntry.Fed == 0 {
				t.Errorf("hottest key %d never fed through its hot ring", hottest)
			}

			// Phase 2+: the workload moves to fresh key windows, so the
			// old celebrities cool; keep driving disjoint windows until
			// the coordinator demotes them (deadline-bounded).
			demoted := func() bool { return p.AdaptiveStats().Demotions > 0 }
			deadline := time.Now().Add(30 * time.Second)
			for w := uint64(0); !demoted(); w++ {
				if time.Now().After(deadline) {
					t.Fatalf("no demotion after workload moved on: %+v", p.AdaptiveStats())
				}
				run(Config{
					Conns: 8, Streams: 32, SamplesPerStream: 128, BatchSize: 32,
					Period: 7, PatternStride: 100, Rate: 400_000,
					KeyBase:  100_000 + w*1_000,
					Workload: Workload{Seed: 43 + w},
				})
			}

			final := p.AdaptiveStats()
			if final.Promotions == 0 || final.Demotions == 0 {
				t.Fatalf("both transitions must be observed: %+v", final)
			}
			if final.Folds == 0 {
				t.Fatal("sampler fold counter never advanced")
			}

			// The headline: every stream the pool holds — including the
			// ones that were promoted and demoted mid-run — is
			// byte-identical to its standalone replay.
			want := 0
			for _, r := range runs {
				want += r.rep.DistinctStreams
			}
			if n := diffRuns(t, p, runs); n != want {
				t.Fatalf("differential checked %d streams, want %d", n, want)
			}
		})
	}
}
