package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"dpd"
)

// newRefereePool builds the pool under adversarial test with an
// explicit detector factory, so differential replays can construct the
// byte-identical standalone engine.
func newRefereePool(t *testing.T, shards int, idleTTL, sweepEvery uint64) *dpd.Pool {
	t.Helper()
	p, err := dpd.NewPool(dpd.PoolConfig{
		Shards:      shards,
		NewDetector: refereeDetector,
		IdleTTL:     idleTTL,
		SweepEvery:  sweepEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// refereeDetector is the single detector constructor shared by pooled
// streams and standalone replays in this file — same constructor, so
// any state divergence is the pool's fault, not a config mismatch.
func refereeDetector() dpd.Detector { return dpd.Must(dpd.WithWindow(48)) }

// replayStat feeds SampleAt(cfg, key, 0..n) into a fresh standalone
// detector and returns its final state.
func replayStat(cfg Config, key, n uint64) dpd.Stat {
	ref := refereeDetector()
	for i := uint64(0); i < n; i++ {
		ks := SampleAt(cfg, key, i)
		ref.Feed(dpd.Sample{Value: ks.Value, Magnitude: ks.Magnitude})
	}
	return ref.Snapshot()
}

// diffPoolAgainstReplay asserts every surviving pooled stream's state
// is byte-identical (struct equality — core.Stat is comparable) to a
// standalone detector fed the same per-key subsequence.
func diffPoolAgainstReplay(t *testing.T, cfg Config, p *dpd.Pool, rep Report) int {
	t.Helper()
	checked := 0
	for _, st := range p.Snapshot(nil) {
		n, ok := rep.StreamSamples[st.Key]
		if !ok {
			t.Fatalf("pool holds stream %d the report never sent to", st.Key)
		}
		if want := replayStat(cfg, st.Key, n); st.Stat != want {
			t.Errorf("stream %d after %d samples: pooled %+v != standalone %+v", st.Key, n, st.Stat, want)
		}
		checked++
	}
	return checked
}

// TestZipfDifferential is the tentpole referee: heavily skewed key
// popularity at three thetas, eight concurrent feeders hammering the
// same hot shards, and every resulting stream must match a standalone
// detector fed the identical per-key subsequence.
func TestZipfDifferential(t *testing.T) {
	for _, theta := range []float64{0.6, 0.99, 1.2} {
		theta := theta
		t.Run(fmt.Sprintf("theta=%v", theta), func(t *testing.T) {
			p := newRefereePool(t, 4, 0, 0)
			defer p.Close()
			cfg := Config{
				Conns: 8, Streams: 64, SamplesPerStream: 128, BatchSize: 32, Period: 7,
				PatternStride: 100,
				Workload:      Workload{Dist: Dist{Kind: DistZipf, Theta: theta}, Seed: 42},
			}
			rep, err := RunPool(context.Background(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Samples != 64*128 {
				t.Fatalf("applied %d samples, want %d", rep.Samples, 64*128)
			}
			if p.Len() != rep.DistinctStreams {
				t.Fatalf("pool holds %d streams, report touched %d", p.Len(), rep.DistinctStreams)
			}
			if n := diffPoolAgainstReplay(t, cfg, p, rep); n != rep.DistinctStreams {
				t.Fatalf("differential checked %d streams, want %d", n, rep.DistinctStreams)
			}
			// The skew must actually be adversarial: the hottest stream
			// dominates a uniform share. With 8 keys per conn the analytic
			// rank-0 share is ~2× uniform at theta 0.6 and ~3-4× beyond.
			var hottest uint64
			for _, n := range rep.StreamSamples {
				if n > hottest {
					hottest = n
				}
			}
			uniform := rep.Samples / uint64(rep.DistinctStreams)
			floor := 2 * uniform
			if theta < 0.9 {
				floor = uniform + uniform/2
			}
			if hottest < floor {
				t.Errorf("theta=%v: hottest stream got %d samples, uniform share %d — not skewed", theta, hottest, uniform)
			}
		})
	}
}

// TestChurnStormConvergence drives create/evict cycles through fresh
// key windows while the pool's TTL sweeps reap the previous
// generations, then referees the survivors differentially. Uniform
// keys additionally pin exact accounting: every stream materializes
// exactly once, so live + evicted must equal distinct keys touched.
func TestChurnStormConvergence(t *testing.T) {
	for _, tc := range []struct {
		name string
		dist Dist
	}{
		{name: "uniform", dist: Dist{}},
		{name: "zipf", dist: Dist{Kind: DistZipf, Theta: 0.99}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := newRefereePool(t, 4, 1024, 128)
			defer p.Close()
			cfg := Config{
				Conns: 4, Streams: 64, SamplesPerStream: 240, BatchSize: 64, Period: 6,
				Workload: Workload{Dist: tc.dist, Seed: 7, Churn: 6},
			}
			rep, err := RunPool(context.Background(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			const windows = 64 * 6
			distinct := rep.DistinctStreams
			if tc.name == "uniform" && distinct != windows {
				t.Fatalf("uniform churn touched %d distinct keys, want every windowed key %d", distinct, windows)
			}
			// Zipf only draws the popular ranks of each window, so it
			// touches fewer keys — but every generation must contribute.
			if tc.name == "zipf" && (distinct <= 64 || distinct > windows) {
				t.Fatalf("zipf churn touched %d distinct keys, want in (64, %d]", distinct, windows)
			}
			if tc.name == "uniform" {
				for k, n := range rep.StreamSamples {
					if n != 240/6 {
						t.Fatalf("key %d got %d samples, want quota %d", k, n, 240/6)
					}
				}
				// One batch per key, one generation per key: every key
				// materializes exactly once, so the pool's books must close.
				if got := p.Len() + int(p.Evicted()); got != distinct {
					t.Errorf("live %d + evicted %d = %d, want %d", p.Len(), p.Evicted(), got, distinct)
				}
			} else if got := p.Len() + int(p.Evicted()); got < distinct {
				t.Errorf("live %d + evicted %d = %d < %d distinct (missed materializations)", p.Len(), p.Evicted(), got, distinct)
			}
			// The storm must have actually stormed: TTL sweeps reaped most
			// generations mid-run, and something survived to referee.
			if p.Evicted() < uint64(distinct/2) {
				t.Errorf("only %d evictions across the storm, want ≥ %d", p.Evicted(), distinct/2)
			}
			if p.Len() == 0 || p.Len() >= distinct/2 {
				t.Errorf("pool holds %d streams after the storm, want (0, %d)", p.Len(), distinct/2)
			}
			// Survivors — fed through recycled freelist detectors — still
			// match standalone replays exactly.
			if n := diffPoolAgainstReplay(t, cfg, p, rep); n == 0 {
				t.Fatal("no surviving streams to referee")
			}
		})
	}
}

// TestChurnCycleAllocStable gates the churn path itself: once the
// freelist and staging buffers are warm, a full create→evict generation
// cycle allocates nothing — eviction recycles detector state instead of
// dropping it for the GC, and fresh keys reuse the map's tombstones.
func TestChurnCycleAllocStable(t *testing.T) {
	p := newRefereePool(t, 2, 1<<20, 1<<20)
	defer p.Close()
	const live, perKey = 32, 16
	batch := make([]dpd.KeyedSample, live)
	gen := uint64(0)
	cycle := func() {
		base := gen * live
		gen++
		// Sample-major interleave: every live key's last feed lands within
		// the final `live` samples, so EvictIdle(64) below cleanly
		// separates this generation (idle ≤ ~32/shard) from the previous
		// one (idle ≥ ~256/shard).
		for s := int64(0); s < perKey; s++ {
			for i := range batch {
				batch[i] = dpd.KeyedSample{Key: base + uint64(i), Value: s % 5}
			}
			p.FeedBatch(batch)
		}
		p.EvictIdle(64)
	}
	for i := 0; i < 6; i++ {
		cycle()
	}
	if got := p.Len(); got != live {
		t.Fatalf("after warmup, pool holds %d streams, want %d live", got, live)
	}
	// A recycling leak costs ≥ `live` allocations per cycle (a detector
	// plus stream per key materialized without the freelist). The only
	// tolerated residue is the shard maps' own tombstone housekeeping —
	// a small constant (measured ≤ 4) independent of the live set.
	if n := testing.AllocsPerRun(20, cycle); n >= live/4 {
		t.Fatalf("churn cycle allocates %.1f objects/cycle in steady state, want < %d", n, live/4)
	}
	if got := p.Len(); got != live {
		t.Fatalf("after gated cycles, pool holds %d streams, want %d", got, live)
	}
}

// TestBurstPhases runs an on/off arrival schedule over the wire and
// checks the phase machinery: the pause gaps show up in wall time but
// not in the phase's active time, and the per-phase breakdown carries
// the batch-accept histogram.
func TestBurstPhases(t *testing.T) {
	s := startServer(t, dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}})
	phases, err := ParseBurst("256:20ms")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Addr:  s.Addr(),
		Conns: 2, Streams: 8, SamplesPerStream: 512, BatchSize: 64, Period: 5,
		Workload: Workload{Phases: phases, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.Samples != 8*512 {
		t.Fatalf("applied %d samples, want %d", rep.Samples, 8*512)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "burst" {
		t.Fatalf("phase breakdown = %+v, want one burst phase", rep.Phases)
	}
	ph := rep.Phases[0]
	if ph.Samples != 8*512 {
		t.Errorf("burst phase applied %d samples, want %d", ph.Samples, 8*512)
	}
	// 2048 samples/conn in 256-sample passes ⇒ 8 passes ⇒ 7 off-gaps of
	// 20ms each; allow heavy scheduler slack but demand most of them.
	if elapsed < 100*time.Millisecond {
		t.Errorf("burst run finished in %v — the off-phases did not pause", elapsed)
	}
	if ph.Active >= elapsed {
		t.Errorf("active time %v not below wall time %v — pauses were counted as active", ph.Active, elapsed)
	}
	if ph.MelemsPerSec <= 0 {
		t.Errorf("burst phase throughput %v, want > 0", ph.MelemsPerSec)
	}
	if rep.Latency == nil || rep.Latency.Count() == 0 {
		t.Fatal("no batch-accept latencies recorded")
	}
	if rep.P99 < rep.P50 || rep.P999 < rep.P99 || rep.MaxLatency < rep.P999 {
		t.Errorf("latency quantiles not monotone: p50=%v p99=%v p999=%v max=%v",
			rep.P50, rep.P99, rep.P999, rep.MaxLatency)
	}
}

// TestRampPhase drives a linearly ramping arrival rate in-process and
// checks the shaper actually throttles: the run cannot finish faster
// than the schedule's average rate allows.
func TestRampPhase(t *testing.T) {
	p := newRefereePool(t, 2, 0, 0)
	defer p.Close()
	start := time.Now()
	rep, err := RunPool(context.Background(), Config{
		Conns: 2, Streams: 4, SamplesPerStream: 1000, BatchSize: 50, Period: 5,
		Workload: Workload{Phases: []Phase{{Name: "ramp", Samples: 1000, Rate: 20000, RampTo: 60000}}},
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.Samples != 4*1000 {
		t.Fatalf("applied %d samples, want %d", rep.Samples, 4*1000)
	}
	// 4000 samples at an average of 40k/s is 100ms of schedule; a shaper
	// that ignores RampTo's interpolation would finish almost instantly.
	if elapsed < 60*time.Millisecond {
		t.Errorf("ramp run finished in %v, want ≥ 60ms of pacing", elapsed)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "ramp" {
		t.Fatalf("phase breakdown = %+v, want one ramp phase", rep.Phases)
	}
	if rep.Phases[0].Active == 0 {
		t.Error("ramp phase recorded no active time")
	}
}

// TestStreamsPagingDuringChurn pages GET /streams while a churn storm
// creates and evicts streams underneath the cursor: every enumeration
// must stay strictly ascending, respect the page limit, and terminate.
func TestStreamsPagingDuringChurn(t *testing.T) {
	s := startServer(t, dpd.PoolConfig{Shards: 4, Detector: dpd.Config{Window: 32}, IdleTTL: 2048, SweepEvery: 128})
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), Config{
			Addr:  s.Addr(),
			Conns: 4, Streams: 48, SamplesPerStream: 240, BatchSize: 48, Period: 6,
			Rate:     40000,
			Workload: Workload{Churn: 4, Seed: 3},
		})
		done <- err
	}()
	type page struct {
		Streams []struct {
			Key uint64 `json:"key"`
		} `json:"streams"`
		Count     int     `json:"count"`
		NextAfter *uint64 `json:"next_after"`
	}
	enumerate := func() int {
		t.Helper()
		total, after, pages := 0, "", 0
		last := int64(-1)
		for {
			url := "http://" + s.HTTPAddr() + "/streams?limit=7" + after
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var pg page
			err = json.NewDecoder(resp.Body).Decode(&pg)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if pg.Count != len(pg.Streams) {
				t.Fatalf("page count %d != %d streams", pg.Count, len(pg.Streams))
			}
			if len(pg.Streams) > 7 {
				t.Fatalf("page of %d streams exceeds limit 7", len(pg.Streams))
			}
			for _, st := range pg.Streams {
				if int64(st.Key) <= last {
					t.Fatalf("paging went backwards: key %d after %d", st.Key, last)
				}
				last = int64(st.Key)
				total++
			}
			if pg.NextAfter == nil {
				return total
			}
			after = fmt.Sprintf("&after=%d", *pg.NextAfter)
			if pages++; pages > 1000 {
				t.Fatal("paging did not terminate within 1000 pages")
			}
		}
	}
	enumerations := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if enumerations == 0 {
				t.Fatal("run finished before a single mid-storm enumeration")
			}
			// One final enumeration over the settled pool.
			if n := enumerate(); n != s.Pool().Len() {
				t.Fatalf("settled enumeration saw %d streams, pool holds %d", n, s.Pool().Len())
			}
			return
		default:
			enumerate()
			enumerations++
		}
	}
}

// TestRunDeterministicUnderSeed is the reproducibility acceptance
// gate: the same seeded spec against two fresh servers produces the
// identical per-stream sample counts, the identical fingerprint, and
// the identical per-stream detector states — which in turn match the
// standalone replay.
func TestRunDeterministicUnderSeed(t *testing.T) {
	for _, mixed := range []bool{false, true} {
		mixed := mixed
		t.Run(fmt.Sprintf("mixed=%v", mixed), func(t *testing.T) {
			cfg := Config{
				Conns: 3, Streams: 24, SamplesPerStream: 120, BatchSize: 16, Period: 5,
				PatternStride: 10,
				Workload:      Workload{Dist: Dist{Kind: DistZipf, Theta: 0.99}, Seed: 42, Mixed: mixed},
			}
			run := func() (Report, map[uint64]dpd.Stat) {
				s := startServer(t, dpd.PoolConfig{Shards: 3, NewDetector: refereeDetector})
				c := cfg
				c.Addr = s.Addr()
				rep, err := Run(context.Background(), c)
				if err != nil {
					t.Fatal(err)
				}
				stats := make(map[uint64]dpd.Stat)
				for _, st := range s.Pool().Snapshot(nil) {
					stats[st.Key] = st.Stat
				}
				return rep, stats
			}
			repA, statsA := run()
			repB, statsB := run()
			if repA.Fingerprint != repB.Fingerprint {
				t.Fatalf("fingerprints differ across identical seeded runs: %#x != %#x", repA.Fingerprint, repB.Fingerprint)
			}
			if len(repA.StreamSamples) != len(repB.StreamSamples) {
				t.Fatalf("distinct streams differ: %d != %d", len(repA.StreamSamples), len(repB.StreamSamples))
			}
			for k, n := range repA.StreamSamples {
				if repB.StreamSamples[k] != n {
					t.Fatalf("stream %d: %d samples in run A, %d in run B", k, n, repB.StreamSamples[k])
				}
			}
			if len(statsA) != len(statsB) {
				t.Fatalf("server stream counts differ: %d != %d", len(statsA), len(statsB))
			}
			for k, st := range statsA {
				if statsB[k] != st {
					t.Fatalf("stream %d: detector state differs across identical runs", k)
				}
				if want := replayStat(cfg, k, repA.StreamSamples[k]); st != want {
					t.Fatalf("stream %d: server %+v != standalone replay %+v", k, st, want)
				}
			}
		})
	}
}
