package loadgen

// The cluster differential tests: a 3-node cluster driven through the
// routing client must end byte-identical to one standalone pool fed the
// same seeded workload — same per-stream sample counts (exactly once),
// same detector stats, same serialized stream state — including across
// a live mid-run migration and a kill -9 failover. These are the
// in-process versions of the CI cluster job's real-binary runs.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"dpd"
	"dpd/internal/client"
	"dpd/internal/cluster"
	"dpd/internal/obs"
	"dpd/internal/server"
)

// clusterNode is one in-process cluster member: a server.Server wired
// to a cluster.Node exactly the way cmd/dpdserver wires them, sharing
// one obs.Set across both layers (also the dpdserver wiring).
type clusterNode struct {
	name string
	srv  *server.Server
	node *cluster.Node
	obs  *obs.Set
	dead bool
}

// startClusterNode boots one member with ephemeral addresses.
func startClusterNode(t *testing.T, name string, follow time.Duration) *clusterNode {
	t.Helper()
	obsSet := obs.NewSet(0)
	node, err := cluster.NewNode(cluster.NodeConfig{
		Self:         name,
		TransferAddr: "127.0.0.1:0",
		FollowEvery:  follow,
		DialTimeout:  2 * time.Second,
		Obs:          obsSet,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		IngestAddr:         "127.0.0.1:0",
		HTTPAddr:           "127.0.0.1:0",
		Pool:               dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
		OwnerCheck:         node.OwnerCheck,
		RegisterHTTP:       node.RegisterHTTP,
		ClusterMetrics:     node.Metrics,
		ExternalDurability: true,
		Obs:                obsSet,
		Logf:               func(string, ...any) {},
	})
	if err != nil {
		node.Close()
		t.Fatal(err)
	}
	node.Start(srv)
	srv.Start()
	cn := &clusterNode{name: name, srv: srv, node: node, obs: obsSet}
	t.Cleanup(func() {
		if cn.dead {
			return
		}
		cn.node.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		cn.srv.Shutdown(ctx)
	})
	return cn
}

// startCluster boots three members and installs the epoch-1 table on
// all of them — the in-process equivalent of three dpdserver processes
// started with matching -cluster-node flags.
func startCluster(t *testing.T, follow time.Duration) []*clusterNode {
	t.Helper()
	nodes := []*clusterNode{
		startClusterNode(t, "n1", follow),
		startClusterNode(t, "n2", follow),
		startClusterNode(t, "n3", follow),
	}
	members := make([]cluster.Member, len(nodes))
	for i, cn := range nodes {
		members[i] = cluster.Member{
			Name:     cn.name,
			Ingest:   cn.srv.Addr(),
			HTTP:     cn.srv.HTTPAddr(),
			Transfer: cn.node.TransferAddr(),
		}
	}
	tab, err := cluster.NewTable(1, members, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range nodes {
		if err := cn.node.InstallTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// clusterHTTP returns every live member's HTTP address.
func clusterHTTP(nodes []*clusterNode) []string {
	addrs := make([]string, 0, len(nodes))
	for _, cn := range nodes {
		if !cn.dead {
			addrs = append(addrs, cn.srv.HTTPAddr())
		}
	}
	return addrs
}

// waitEpoch blocks until every live node's routing table reaches epoch.
func waitEpoch(t *testing.T, nodes []*clusterNode, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, cn := range nodes {
			if cn.dead {
				continue
			}
			if tab := cn.node.Table(); tab == nil || tab.Epoch < epoch {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged on epoch %d", epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// poolSamples sums one pool's applied samples across its streams.
func poolSamples(p *dpd.Pool) uint64 {
	var total uint64
	for _, st := range p.Snapshot(nil) {
		total += st.Samples
	}
	return total
}

// clusterSamples sums applied samples across every live node.
func clusterSamples(nodes []*clusterNode) uint64 {
	var total uint64
	for _, cn := range nodes {
		if !cn.dead {
			total += poolSamples(cn.srv.Pool())
		}
	}
	return total
}

// refereeRun replays cfg's exact workload into one standalone pool —
// the single-pool truth the cluster must match byte for byte.
func refereeRun(t *testing.T, cfg Config) (Report, *dpd.Pool) {
	t.Helper()
	p, err := dpd.NewPool(dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	cfg.ClusterHTTP = nil
	cfg.Addr = ""
	rep, err := RunPool(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return rep, p
}

// compareCluster checks the differential: the cluster run delivered
// every sample exactly once (fingerprint + per-stream counts equal to
// the referee's), and every stream's final detector stat and serialized
// state are byte-identical to the standalone pool's. Detaching consumes
// the streams, so this is the last act of a test.
func compareCluster(t *testing.T, nodes []*clusterNode, rep, ref Report, refPool *dpd.Pool) {
	t.Helper()
	if rep.Samples != ref.Samples {
		t.Fatalf("cluster run applied %d samples, referee %d", rep.Samples, ref.Samples)
	}
	if rep.Fingerprint != ref.Fingerprint {
		t.Fatalf("workload fingerprint diverged: cluster %#x, referee %#x", rep.Fingerprint, ref.Fingerprint)
	}
	if len(rep.StreamSamples) != len(ref.StreamSamples) {
		t.Fatalf("cluster touched %d streams, referee %d", len(rep.StreamSamples), len(ref.StreamSamples))
	}
	for key, n := range ref.StreamSamples {
		if got := rep.StreamSamples[key]; got != n {
			t.Fatalf("stream %d: cluster reported %d samples, referee %d", key, got, n)
		}
	}
	for key := range ref.StreamSamples {
		var owner *clusterNode
		for _, cn := range nodes {
			if cn.dead {
				continue
			}
			if _, ok := cn.srv.Pool().Stat(key); ok {
				if owner != nil {
					t.Fatalf("stream %d live on both %s and %s", key, owner.name, cn.name)
				}
				owner = cn
			}
		}
		if owner == nil {
			t.Fatalf("stream %d live on no node", key)
		}
		got, _ := owner.srv.Pool().Stat(key)
		want, ok := refPool.Stat(key)
		if !ok {
			t.Fatalf("stream %d missing from referee pool", key)
		}
		if got != want {
			t.Fatalf("stream %d stat diverged on %s:\n got %+v\nwant %+v", key, owner.name, got, want)
		}
		cs, had, err := owner.srv.Pool().Detach(key, nil)
		if err != nil || !had {
			t.Fatalf("detach stream %d from %s: %v %v", key, owner.name, err, had)
		}
		rs, had, err := refPool.Detach(key, nil)
		if err != nil || !had {
			t.Fatalf("detach stream %d from referee: %v %v", key, err, had)
		}
		if !bytes.Equal(cs, rs) {
			t.Fatalf("stream %d serialized state diverged on %s (%d vs %d bytes)", key, owner.name, len(cs), len(rs))
		}
	}
}

// TestClusterDifferential drives a seeded workload through the routing
// client against three nodes and requires the union of the nodes to be
// byte-identical to one standalone pool.
func TestClusterDifferential(t *testing.T) {
	nodes := startCluster(t, 50*time.Millisecond)
	cfg := Config{
		ClusterHTTP:      clusterHTTP(nodes),
		Conns:            2,
		Streams:          24,
		SamplesPerStream: 256,
		BatchSize:        32,
		Window:           16,
		RetryBudget:      10 * time.Second,
		Workload:         Workload{Seed: 7},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The placement must actually be distributed: every node owns some
	// of the 24 streams.
	for _, cn := range nodes {
		if n := cn.srv.Pool().Len(); n == 0 {
			t.Fatalf("node %s owns no streams — placement not distributed", cn.name)
		}
	}
	ref, refPool := refereeRun(t, cfg)
	compareCluster(t, nodes, rep, ref, refPool)
}

// TestClusterMigrationDifferential moves two live streams between nodes
// mid-run — one through the HTTP control plane, one through the node
// API — and still requires exactly-once delivery and byte-identical
// final state.
func TestClusterMigrationDifferential(t *testing.T) {
	nodes := startCluster(t, 50*time.Millisecond)
	cfg := Config{
		ClusterHTTP:      clusterHTTP(nodes),
		Conns:            2,
		Streams:          24,
		SamplesPerStream: 512,
		BatchSize:        32,
		Window:           16,
		// Stretch the run to ~2s so both moves race live traffic.
		Rate:        6000,
		RetryBudget: 10 * time.Second,
		Workload:    Workload{Seed: 11},
	}
	total := uint64(cfg.Streams * cfg.SamplesPerStream)

	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := Run(context.Background(), cfg)
		done <- outcome{rep, err}
	}()

	// Wait until the run is well underway, so both moves race live
	// traffic rather than an empty cluster.
	deadline := time.Now().Add(30 * time.Second)
	for clusterSamples(nodes) < total/4 {
		if time.Now().After(deadline) {
			t.Fatal("run never reached the migration point")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ownerOf finds a key's owner node under the cluster's newest table.
	ownerOf := func(key uint64) (int, *cluster.Table) {
		var best *cluster.Table
		for _, cn := range nodes {
			if tab := cn.node.Table(); best == nil || tab.Epoch > best.Epoch {
				best = tab
			}
		}
		name := best.Owner(key).Name
		for i, cn := range nodes {
			if cn.name == name {
				return i, best
			}
		}
		t.Fatalf("owner %q of key %d is not a node", name, key)
		return 0, nil
	}

	// Move key 0 via the HTTP control plane.
	oi, tab := ownerOf(0)
	target := nodes[(oi+1)%len(nodes)].name
	resp, err := http.Post(fmt.Sprintf("http://%s/cluster/move?key=0&to=%s", nodes[oi].srv.HTTPAddr(), target), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /cluster/move = %d", resp.StatusCode)
	}
	waitEpoch(t, nodes, tab.Epoch+1)

	// Move key 1 via the node API.
	oi, tab = ownerOf(1)
	target = nodes[(oi+2)%len(nodes)].name
	if _, err := nodes[oi].node.Move(1, target); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, nodes, tab.Epoch+1)

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.rep.Redirects == 0 {
		t.Fatal("migrations raced no traffic: expected at least one cluster redirect")
	}
	ref, refPool := refereeRun(t, cfg)
	compareCluster(t, nodes, out.rep, ref, refPool)
}

// TestClusterFailoverDifferential kills one node mid-run — Abort(), the
// in-process kill -9 — and requires the surviving pair plus the durable
// replication/orphan-replay machinery to finish the run exactly once,
// byte-identical to the standalone referee.
func TestClusterFailoverDifferential(t *testing.T) {
	nodes := startCluster(t, 30*time.Millisecond)
	cfg := Config{
		ClusterHTTP:      clusterHTTP(nodes),
		Conns:            2,
		Streams:          24,
		SamplesPerStream: 512,
		BatchSize:        32,
		Window:           16,
		Ack:              client.AckDurable,
		RetryBudget:      2 * time.Second,
		Workload:         Workload{Seed: 13},
	}
	total := uint64(cfg.Streams * cfg.SamplesPerStream)

	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := Run(context.Background(), cfg)
		done <- outcome{rep, err}
	}()

	// Kill the victim once it has real state: streams owned and samples
	// applied, so the failover has replicas to promote and windows to
	// replay.
	victim := nodes[2]
	deadline := time.Now().Add(30 * time.Second)
	for poolSamples(victim.srv.Pool()) < total/8 {
		if time.Now().After(deadline) {
			t.Fatal("victim never accumulated enough state to make the kill meaningful")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if victim.srv.Pool().Len() == 0 {
		t.Fatal("victim owns no streams; kill would be a no-op")
	}
	// Abort severs every client and the HTTP plane before the node's
	// transfer loops die — the same order a SIGKILL imposes on a real
	// process. Nothing is drained, nothing graceful happens.
	victim.dead = true
	victim.srv.Abort()
	victim.node.Close()

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.rep.Failovers == 0 {
		t.Fatal("run finished without declaring the killed node dead")
	}
	if out.rep.Redirects == 0 {
		t.Fatal("failover rescued no orphans: expected replayed streams")
	}
	for _, cn := range nodes[:2] {
		if tab := cn.node.Table(); tab == nil || tab.Has(victim.name) {
			t.Fatalf("node %s still routes to the killed member", cn.name)
		}
	}
	ref, refPool := refereeRun(t, cfg)
	compareCluster(t, nodes, out.rep, ref, refPool)
}

// TestMoveRollbackPinReachesTarget drives a migration into a dead
// transfer plane and requires the rollback pin (epoch+2, key pinned
// back to the sender) to reach every member — most importantly the
// migration target, which may have learned the aborted epoch before
// the link died and would otherwise accept the key's batches in
// parallel with the sender (forked history).
func TestMoveRollbackPinReachesTarget(t *testing.T) {
	nodes := []*clusterNode{
		startClusterNode(t, "n1", 50*time.Millisecond),
		startClusterNode(t, "n2", 50*time.Millisecond),
		startClusterNode(t, "n3", 50*time.Millisecond),
	}
	// A table whose n2 transfer address refuses connections: the move
	// fences, detaches, fails to ship, and must roll back.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	members := make([]cluster.Member, len(nodes))
	for i, cn := range nodes {
		members[i] = cluster.Member{
			Name:     cn.name,
			Ingest:   cn.srv.Addr(),
			HTTP:     cn.srv.HTTPAddr(),
			Transfer: cn.node.TransferAddr(),
		}
	}
	members[1].Transfer = deadAddr
	tab, err := cluster.NewTable(1, members, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range nodes {
		if err := cn.node.InstallTable(tab); err != nil {
			t.Fatal(err)
		}
	}

	var key uint64
	for k := uint64(1); ; k++ {
		if tab.Owner(k).Name == "n1" {
			key = k
			break
		}
	}
	for i := 0; i < 48; i++ {
		nodes[0].srv.Pool().Feed(key, int64(i%4))
	}
	want, _ := nodes[0].srv.Pool().Stat(key)

	if _, err := nodes[0].node.Move(key, "n2"); err == nil {
		t.Fatal("move over a dead transfer plane reported success")
	}
	got, ok := nodes[0].srv.Pool().Stat(key)
	if !ok || got != want {
		t.Fatalf("rollback did not restore the stream: ok=%v\n got %+v\nwant %+v", ok, got, want)
	}
	// The pin must propagate with no further operator action: the
	// sender retries it at the target until acknowledged and broadcasts
	// it to the rest.
	waitEpoch(t, nodes, 3)
	for _, cn := range nodes {
		cur := cn.node.Table()
		if cur.Epoch != 3 {
			t.Fatalf("%s holds epoch %d after rollback, want 3", cn.name, cur.Epoch)
		}
		if own := cur.Owner(key); own.Name != "n1" {
			t.Fatalf("%s routes key %d to %q after rollback, want n1", cn.name, key, own.Name)
		}
	}
}

// TestRouterHealsMemberlessNode exercises the admission edge of a
// member that restarted empty: with no routing table it must reject
// every batch (epoch 0) rather than fork the keys it no longer
// remembers owning, and the routing client — seeing rejections below
// its own epoch — must push its table to heal the member and then
// deliver every rescued sample exactly once.
func TestRouterHealsMemberlessNode(t *testing.T) {
	nodes := []*clusterNode{
		startClusterNode(t, "n1", 50*time.Millisecond),
		startClusterNode(t, "n2", 50*time.Millisecond),
		startClusterNode(t, "n3", 50*time.Millisecond),
	}
	members := make([]cluster.Member, len(nodes))
	for i, cn := range nodes {
		members[i] = cluster.Member{
			Name:     cn.name,
			Ingest:   cn.srv.Addr(),
			HTTP:     cn.srv.HTTPAddr(),
			Transfer: cn.node.TransferAddr(),
		}
	}
	tab, err := cluster.NewTable(1, members, nil)
	if err != nil {
		t.Fatal(err)
	}
	// n3 never gets the table installed.
	for _, cn := range nodes[:2] {
		if err := cn.node.InstallTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var key uint64
	for k := uint64(1); ; k++ {
		if tab.Owner(k).Name == "n3" {
			key = k
			break
		}
	}
	r, err := cluster.DialRouter(cluster.RouterConfig{
		HTTPAddrs: []string{nodes[0].srv.HTTPAddr()},
		Client: client.Config{
			Window:      8,
			RetryBudget: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const batches = 8
	for i := 0; i < batches; i++ {
		if err := r.SendEvents(key, []int64{int64(i), int64(i + 1), int64(i + 2)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := r.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := nodes[2].node.Table(); got == nil || got.Epoch != 1 {
		t.Fatalf("memberless node not healed by the router: %+v", got)
	}
	st, ok := nodes[2].srv.Pool().Stat(key)
	if !ok || st.Samples != 3*batches {
		t.Fatalf("healed node holds ok=%v %+v, want %d samples exactly once", ok, st, 3*batches)
	}
}
