package loadgen

import "dpd/internal/obs"

// Hist is the fixed-size log-spaced latency histogram the harness
// records batch-accept latencies into. The implementation was promoted
// to the shared observability core (dpd/internal/obs) so the server's
// own latency sites use the identical bucket geometry — client-side and
// server-side quantiles from one run are directly comparable — and the
// harness re-exports it as a bit-compatible alias so existing call
// sites, reports and tests are unchanged.
type Hist = obs.Hist
