package loadgen

import (
	"context"
	"sync"
	"time"

	"dpd"
)

// poolSink adapts a pool's batch feed path to the drive loop. Each
// feeder owns one sink, so the staging buffer is recycled without
// locking; the recorded latency is the FeedBatch call itself, which
// includes the pool's in-flight backpressure.
type poolSink struct {
	p   *dpd.Pool
	buf []dpd.KeyedSample
}

func (s *poolSink) send(key uint64, n int, fill func(i int) dpd.KeyedSample) error {
	if cap(s.buf) < n {
		s.buf = make([]dpd.KeyedSample, n)
	}
	s.buf = s.buf[:n]
	for i := 0; i < n; i++ {
		s.buf[i] = fill(i)
	}
	s.p.FeedBatch(s.buf)
	return nil
}

func (s *poolSink) sendEvents(key uint64, vals []int64) error {
	return s.send(key, len(vals), func(i int) dpd.KeyedSample {
		return dpd.KeyedSample{Key: key, Value: vals[i]}
	})
}

func (s *poolSink) sendMagnitudes(key uint64, vals []float64) error {
	return s.send(key, len(vals), func(i int) dpd.KeyedSample {
		return dpd.KeyedSample{Key: key, Magnitude: vals[i]}
	})
}

func (s *poolSink) flushStaged() error { return nil }

// RunPool executes one load run in-process against p — no sockets, no
// frames — measuring the sharded feed path itself. The workload,
// shaping, per-key sequences and Report semantics are identical to
// Run's (the drive loop is shared), so the scaling matrix and the
// differential referee stress exactly the traffic the wire path
// carries, minus the wire. The pool is not closed; the caller owns it.
func RunPool(ctx context.Context, cfg Config, p *dpd.Pool) (Report, error) {
	cfg.normalize()
	if err := cfg.Workload.validate(); err != nil {
		return Report{}, err
	}
	var (
		mu      sync.Mutex
		results []connResult
		first   error
		wg      sync.WaitGroup
	)
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res, err := driveConn(ctx, &cfg, ci, &poolSink{p: p})
			mu.Lock()
			results = append(results, res)
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	return buildReport(&cfg, time.Since(start), results), first
}
