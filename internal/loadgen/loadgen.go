// Package loadgen drives a dpd detector pool with synthetic periodic
// traffic — over the wire against a dpdserver ingest listener, or
// in-process against a dpd.Pool — the way "heavy traffic from millions
// of users" is demoed, measured and integration-tested locally without
// a fleet.
//
// Beyond the PR 5 steady uniform shape (N connections × M keyed
// streams, batched, rate-limited), a run composes adversarial
// dimensions through the Workload spec: zipf-skewed key popularity
// ("celebrity streams"), create/evict churn storms through the pool's
// TTL eviction and freelists, bursty and ramping arrivals through a
// rate shaper, and mixed event/magnitude traffic. Every draw derives
// from the seed, so any run — and any single stream's exact sample
// subsequence (SampleAt) — is reproducible, which is what lets the
// differential referee tests pin pooled results byte-identical to
// standalone detectors under every one of these workloads.
//
// Measurement rides along: each connection records every batch's accept
// latency into a zero-allocation log-bucketed histogram (Hist), merged
// across connections into the Report's p50/p99/p999 alongside Melem/s,
// with a per-phase breakdown so burst recovery is visible. Wire
// connections are internal/client Clients, so a load run also rides the
// real resilience machinery: bounded replay windows, reconnect with
// backoff, cursor resync and overload retry-after — a run survives
// server restarts mid-run and still delivers every sample exactly once.
package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dpd/internal/client"
	"dpd/internal/cluster"
	"dpd/internal/server"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the server's ingest address (ignored by RunPool).
	Addr string
	// ClusterHTTP, when non-empty, switches the run to cluster routing:
	// each connection becomes a cluster.Router bootstrapped from these
	// HTTP addresses, fanning batches to each stream's owner, following
	// wrong-node redirects across epoch bumps and failing over dead
	// members. Addr is ignored.
	ClusterHTTP []string
	// Conns is the number of concurrent TCP connections (feeder
	// goroutines for RunPool); 0 selects 1.
	Conns int
	// Streams is the number of concurrently-live keyed streams,
	// partitioned round-robin across connections (keys 0..Streams-1
	// offset by KeyBase); 0 selects Conns. With Workload.Churn, each
	// generation targets a fresh window of Streams keys.
	Streams int
	// KeyBase offsets every stream key, so successive runs can target
	// fresh or existing streams deliberately.
	KeyBase uint64
	// SamplesPerStream is how many samples each stream receives under a
	// uniform distribution (with churn, divided across generations;
	// with zipf, the per-stream mean — hot streams take more); 0
	// selects 1024.
	SamplesPerStream int
	// BatchSize is the samples per batch frame; 0 selects 256.
	BatchSize int
	// Period is the synthetic pattern's period: stream key k at its
	// per-key index i carries value (i % Period) + k·PatternStride; 0
	// selects 8.
	Period int
	// PatternStride offsets each stream's value alphabet so distinct
	// streams never share values (useful when eyeballing snapshots);
	// 0 keeps all streams on the same alphabet.
	PatternStride int64
	// Magnitude switches the generator to magnitude batch frames
	// (float64 samples) for pools running the magnitude engine.
	Magnitude bool
	// Rate bounds aggregate throughput in samples/second across all
	// connections; 0 is unlimited. Ignored when Workload.Phases shape
	// arrivals explicitly.
	Rate float64
	// Window is each connection's replay-window depth in batches; 0
	// selects the client default (256).
	Window int
	// Ack selects the window-release mode: client.AckApplied (default)
	// or client.AckDurable, which bounds loss to zero even across a
	// kill -9 of the server (at checkpoint-cadence window turnover).
	Ack client.AckMode
	// RetryBudget caps how long a connection retries without progress
	// before the run fails; 0 selects the client default (30s).
	RetryBudget time.Duration
	// Workload composes the adversarial dimensions: key distribution,
	// churn generations, arrival phases, event/magnitude mix, seed. The
	// zero value is the legacy uniform/steady workload.
	Workload Workload
}

// normalize applies defaults in place.
func (c *Config) normalize() {
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Streams <= 0 {
		c.Streams = c.Conns
	}
	if c.SamplesPerStream <= 0 {
		c.SamplesPerStream = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.BatchSize > server.MaxBatch {
		c.BatchSize = server.MaxBatch
	}
	if c.Period <= 0 {
		c.Period = 8
	}
}

// PhaseReport is one arrival phase's share of a completed run,
// aggregated across connections and cycles: how fast the phase ran and
// what its batch-accept latency tail looked like — the per-phase
// breakdown that makes burst recovery visible next to the steady state.
type PhaseReport struct {
	// Name is the phase's label from the schedule.
	Name string
	// Samples is the phase's total applied samples across connections.
	Samples uint64
	// Active is the phase's busiest connection's non-pause wall time —
	// the denominator of MelemsPerSec.
	Active time.Duration
	// MelemsPerSec is the phase's throughput in millions of samples/s.
	MelemsPerSec float64
	// P50, P99 and P999 are the phase's batch-accept latency quantiles.
	P50, P99, P999 time.Duration
}

// Report summarizes one completed run.
type Report struct {
	// Samples is the total number of samples applied by the server
	// (ping-barrier confirmed; for RunPool, applied by the pool).
	Samples uint64
	// Conns and Streams echo the effective run shape.
	Conns, Streams int
	// DistinctStreams is how many distinct keys the run touched (>
	// Streams when churn cycles through fresh key windows).
	DistinctStreams int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// MelemsPerSec is end-to-end throughput in millions of samples per
	// second: encode → TCP → decode → pool, barrier included.
	MelemsPerSec float64
	// P50, P99, P999 and MaxLatency summarize batch-accept latency: the
	// time for a batch to be accepted into the replay window (wire) or
	// applied by the pool (in-process). Under a bounded window this is
	// the backpressure signal — when the server falls behind, accepts
	// stall and the tail grows.
	P50, P99, P999, MaxLatency time.Duration
	// Latency is the merged batch-accept histogram behind those
	// quantiles.
	Latency *Hist
	// Phases breaks the run down per arrival phase (one entry per
	// schedule position; always at least the steady phase).
	Phases []PhaseReport
	// StreamSamples is every touched key's applied sample count — the
	// workload's popularity histogram (zipf shape, churn windows), and
	// the per-key replay lengths differential tests feed to SampleAt.
	StreamSamples map[uint64]uint64
	// Fingerprint is Fingerprint(StreamSamples): equal across runs of
	// the same seeded spec.
	Fingerprint uint64
	// Reconnects counts connection recoveries across the run (0 on a
	// healthy server).
	Reconnects uint64
	// ReplayedSamples counts samples re-sent during cursor resyncs;
	// the server's per-stream accounting deduplicates them.
	ReplayedSamples uint64
	// OverloadBackoffs counts server retry-after hints honored.
	OverloadBackoffs uint64
	// Redirects counts orphans replayed to a new owner after wrong-node
	// rejections (cluster routing only).
	Redirects uint64
	// Failovers counts cluster members the run's routers declared dead
	// (cluster routing only).
	Failovers uint64
}

// String renders the report the way cmd/dpdload prints it.
func (r Report) String() string {
	s := fmt.Sprintf("loadgen: %d samples over %d conns × %d streams in %v → %.2f Melem/s end-to-end",
		r.Samples, r.Conns, r.DistinctStreams, r.Elapsed.Round(time.Millisecond), r.MelemsPerSec)
	if r.Latency != nil && r.Latency.Count() > 0 {
		s += fmt.Sprintf("\n  batch-accept latency p50/p99/p999 = %v/%v/%v (max %v)",
			r.P50, r.P99, r.P999, r.MaxLatency)
	}
	if r.Reconnects > 0 || r.OverloadBackoffs > 0 {
		s += fmt.Sprintf(" (%d reconnects, %d samples replayed, %d overload backoffs)",
			r.Reconnects, r.ReplayedSamples, r.OverloadBackoffs)
	}
	if r.Redirects > 0 || r.Failovers > 0 {
		s += fmt.Sprintf(" (%d cluster redirects, %d failovers)", r.Redirects, r.Failovers)
	}
	return s
}

// connResult is one connection's contribution to the report.
type connResult struct {
	samples   uint64
	aggs      []phaseAgg
	counts    map[uint64]uint64
	stats     client.Stats
	redirects uint64
	failovers uint64
}

// batchSink abstracts where generated batches land: a resilient wire
// client or an in-process pool.
type batchSink interface {
	sendEvents(key uint64, vals []int64) error
	sendMagnitudes(key uint64, vals []float64) error
	// flushStaged pushes buffered frames before the shaper idles, so the
	// server keeps draining while the generator sleeps.
	flushStaged() error
}

// driveConn runs connection ci's whole workload into sink: generate,
// shape, time, attribute. It is the one drive loop shared by the wire
// and in-process paths, so both measure exactly the same workload.
func driveConn(ctx context.Context, cfg *Config, ci int, sink batchSink) (connResult, error) {
	g := newConnGen(cfg, ci)
	sh := newShaper(cfg)
	evs := make([]int64, cfg.BatchSize)
	mags := make([]float64, cfg.BatchSize)
	res := connResult{counts: g.counts}
	finish := func(err error) (connResult, error) {
		sh.finish()
		res.aggs = sh.aggs
		return res, err
	}
	for {
		key, start, n, ok := g.nextBatch()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		if err := sh.prepare(ctx, sink.flushStaged); err != nil {
			return finish(err)
		}
		mag := magnitudeKey(cfg, key)
		for i := 0; i < n; i++ {
			v := sampleValue(cfg, key, start+uint64(i))
			if mag {
				mags[i] = float64(v)
			} else {
				evs[i] = v
			}
		}
		t0 := time.Now()
		var err error
		if mag {
			err = sink.sendMagnitudes(key, mags[:n])
		} else {
			err = sink.sendEvents(key, evs[:n])
		}
		if err != nil {
			return finish(err)
		}
		sh.record(n, time.Since(t0))
		res.samples += uint64(n)
		if err := sh.pace(ctx, sink.flushStaged); err != nil {
			return finish(err)
		}
	}
	return finish(nil)
}

// buildReport merges per-connection results into the run summary.
func buildReport(cfg *Config, elapsed time.Duration, results []connResult) Report {
	rep := Report{
		Conns:         cfg.Conns,
		Streams:       cfg.Streams,
		Elapsed:       elapsed,
		Latency:       &Hist{},
		StreamSamples: make(map[uint64]uint64),
	}
	phases := effectivePhases(cfg)
	merged := make([]phaseAgg, len(phases))
	for _, r := range results {
		rep.Samples += r.samples
		rep.Reconnects += r.stats.Reconnects
		rep.ReplayedSamples += r.stats.ReplayedSamples
		rep.OverloadBackoffs += r.stats.OverloadBackoffs
		rep.Redirects += r.redirects
		rep.Failovers += r.failovers
		for k, n := range r.counts {
			rep.StreamSamples[k] += n
		}
		for i := range r.aggs {
			merged[i].name = r.aggs[i].name
			merged[i].samples += r.aggs[i].samples
			if r.aggs[i].active > merged[i].active {
				merged[i].active = r.aggs[i].active
			}
			merged[i].hist.Merge(&r.aggs[i].hist)
		}
	}
	for i := range merged {
		pr := PhaseReport{
			Name:    merged[i].name,
			Samples: merged[i].samples,
			Active:  merged[i].active,
			P50:     merged[i].hist.Quantile(0.50),
			P99:     merged[i].hist.Quantile(0.99),
			P999:    merged[i].hist.Quantile(0.999),
		}
		if s := merged[i].active.Seconds(); s > 0 {
			pr.MelemsPerSec = float64(merged[i].samples) / s / 1e6
		}
		rep.Phases = append(rep.Phases, pr)
		rep.Latency.Merge(&merged[i].hist)
	}
	rep.DistinctStreams = len(rep.StreamSamples)
	rep.Fingerprint = Fingerprint(rep.StreamSamples)
	rep.P50 = rep.Latency.Quantile(0.50)
	rep.P99 = rep.Latency.Quantile(0.99)
	rep.P999 = rep.Latency.Quantile(0.999)
	rep.MaxLatency = rep.Latency.Max()
	if s := elapsed.Seconds(); s > 0 {
		rep.MelemsPerSec = float64(rep.Samples) / s / 1e6
	}
	return rep
}

// Run executes one load run over the wire and blocks until every
// connection has finished and barriered (or ctx is cancelled, which
// aborts the run with its error). Connections share nothing but the
// counters, so the generator itself scales with cores.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg.normalize()
	if err := cfg.Workload.validate(); err != nil {
		return Report{}, err
	}
	var (
		mu      sync.Mutex
		results []connResult
		first   error
		wg      sync.WaitGroup
	)
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res, err := runConn(ctx, &cfg, ci)
			mu.Lock()
			results = append(results, res)
			if err != nil && first == nil {
				first = fmt.Errorf("loadgen conn %d: %w", ci, err)
			}
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	return buildReport(&cfg, time.Since(start), results), first
}

// clientSink adapts a resilient client to the drive loop.
type clientSink struct{ cl *client.Client }

func (s clientSink) sendEvents(key uint64, vals []int64) error { return s.cl.SendEvents(key, vals) }
func (s clientSink) sendMagnitudes(key uint64, vals []float64) error {
	return s.cl.SendMagnitudes(key, vals)
}
func (s clientSink) flushStaged() error { return s.cl.Flush() }

// routerSink adapts a cluster router to the drive loop.
type routerSink struct{ r *cluster.Router }

func (s routerSink) sendEvents(key uint64, vals []int64) error { return s.r.SendEvents(key, vals) }
func (s routerSink) sendMagnitudes(key uint64, vals []float64) error {
	return s.r.SendMagnitudes(key, vals)
}
func (s routerSink) flushStaged() error { return nil }

// runRouterConn drives one connection's workload through a cluster
// router: the same drive loop and barrier contract as runConn, with
// per-owner fan-out, redirect replay and failover underneath.
func runRouterConn(ctx context.Context, cfg *Config, ci int) (connResult, error) {
	rt, err := cluster.DialRouter(cluster.RouterConfig{
		HTTPAddrs: cfg.ClusterHTTP,
		Client: client.Config{
			Window:      cfg.Window,
			Ack:         cfg.Ack,
			RetryBudget: cfg.RetryBudget,
			Seed:        uint64(ci) + 1,
		},
	})
	if err != nil {
		return connResult{}, err
	}
	defer rt.Close()

	grab := func(res *connResult) {
		st := rt.Stats()
		res.stats = st.Client
		res.redirects = st.Redirects
		res.failovers = st.Failovers
	}
	res, err := driveConn(ctx, cfg, ci, routerSink{rt})
	if err != nil {
		grab(&res)
		return res, err
	}
	if err := rt.Barrier(); err != nil {
		grab(&res)
		return res, err
	}
	grab(&res)
	return res, rt.Close()
}

// runConn drives one connection through a resilient client: its share
// of the workload batch by batch, then the ping barrier and the
// graceful close. The returned result's samples are barrier-confirmed
// applied samples.
func runConn(ctx context.Context, cfg *Config, ci int) (connResult, error) {
	if len(cfg.ClusterHTTP) > 0 {
		return runRouterConn(ctx, cfg, ci)
	}
	cl, err := client.Dial(client.Config{
		Addr:        cfg.Addr,
		Window:      cfg.Window,
		Ack:         cfg.Ack,
		RetryBudget: cfg.RetryBudget,
		Seed:        uint64(ci) + 1,
	})
	if err != nil {
		return connResult{}, err
	}
	defer cl.Close()

	res, err := driveConn(ctx, cfg, ci, clientSink{cl})
	res.stats = cl.Stats()
	if err != nil {
		return res, err
	}
	// Barrier: proves every batch above was applied, surviving any
	// reconnects it takes to get there.
	if err := cl.Barrier(); err != nil {
		res.stats = cl.Stats()
		return res, err
	}
	res.stats = cl.Stats()
	return res, cl.Close()
}
