// Package loadgen drives a dpdserver ingest listener with synthetic
// periodic traffic: N connections × M keyed streams of period-P
// samples, batched and optionally rate-limited — the way "heavy
// traffic from millions of users" is demoed and integration-tested
// locally without a fleet. The generator speaks the same binary ingest
// protocol as any real client (internal/server frame codec) and ends
// every connection with a ping barrier, so when Run returns every
// generated sample has been applied by the server's pool, not merely
// buffered in a socket.
package loadgen

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dpd/internal/server"
	"dpd/internal/wire"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the server's ingest address.
	Addr string
	// Conns is the number of concurrent TCP connections; 0 selects 1.
	Conns int
	// Streams is the total number of keyed streams, partitioned
	// round-robin across connections (keys 0..Streams-1 offset by
	// KeyBase); 0 selects Conns.
	Streams int
	// KeyBase offsets every stream key, so successive runs can target
	// fresh or existing streams deliberately.
	KeyBase uint64
	// SamplesPerStream is how many samples each stream receives; 0
	// selects 1024.
	SamplesPerStream int
	// BatchSize is the samples per batch frame; 0 selects 256.
	BatchSize int
	// Period is the synthetic pattern's period: stream key k at index t
	// carries value (t % Period) + k·PatternStride; 0 selects 8.
	Period int
	// PatternStride offsets each stream's value alphabet so distinct
	// streams never share values (useful when eyeballing snapshots);
	// 0 keeps all streams on the same alphabet.
	PatternStride int64
	// Magnitude switches the generator to magnitude batch frames
	// (float64 samples) for pools running the magnitude engine.
	Magnitude bool
	// Rate bounds aggregate throughput in samples/second across all
	// connections; 0 is unlimited.
	Rate float64
}

// Report summarizes one completed run.
type Report struct {
	// Samples is the total number of samples applied by the server
	// (ping-barrier confirmed).
	Samples uint64
	// Conns and Streams echo the effective run shape.
	Conns, Streams int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// MelemsPerSec is end-to-end throughput in millions of samples per
	// second: encode → TCP → decode → pool, barrier included.
	MelemsPerSec float64
}

// String renders the report the way cmd/dpdload prints it.
func (r Report) String() string {
	return fmt.Sprintf("loadgen: %d samples over %d conns × %d streams in %v → %.2f Melem/s end-to-end",
		r.Samples, r.Conns, r.Streams, r.Elapsed.Round(time.Millisecond), r.MelemsPerSec)
}

// Run executes one load run and blocks until every connection has
// finished and barriered (or ctx is cancelled, which aborts the run
// with its error). Connections share nothing but the counter, so the
// generator itself scales with cores.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Streams <= 0 {
		cfg.Streams = cfg.Conns
	}
	if cfg.SamplesPerStream <= 0 {
		cfg.SamplesPerStream = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.BatchSize > server.MaxBatch {
		cfg.BatchSize = server.MaxBatch
	}
	if cfg.Period <= 0 {
		cfg.Period = 8
	}

	var (
		sent  atomic.Uint64
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	perConnRate := cfg.Rate / float64(cfg.Conns)
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			if err := runConn(ctx, cfg, ci, perConnRate, &sent); err != nil {
				fail(fmt.Errorf("loadgen conn %d: %w", ci, err))
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep := Report{
		Samples: sent.Load(),
		Conns:   cfg.Conns,
		Streams: cfg.Streams,
		Elapsed: elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.MelemsPerSec = float64(rep.Samples) / s / 1e6
	}
	return rep, first
}

// runConn drives one connection: its share of the streams, batch by
// batch in time order, then the ping barrier and the graceful
// terminator frame.
func runConn(ctx context.Context, cfg Config, ci int, rate float64, sent *atomic.Uint64) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	bw := bufio.NewWriterSize(nc, 64<<10)
	br := bufio.NewReaderSize(nc, 4<<10)

	var enc server.Enc
	buf := server.AppendPreamble(nil)

	// This connection's streams: keys ci, ci+Conns, ci+2·Conns, …
	var keys []uint64
	for k := ci; k < cfg.Streams; k += cfg.Conns {
		keys = append(keys, cfg.KeyBase+uint64(k))
	}

	evs := make([]int64, cfg.BatchSize)
	mags := make([]float64, cfg.BatchSize)
	connStart := time.Now()
	var connSent uint64
	for t := 0; t < cfg.SamplesPerStream; t += cfg.BatchSize {
		n := cfg.BatchSize
		if t+n > cfg.SamplesPerStream {
			n = cfg.SamplesPerStream - t
		}
		for _, key := range keys {
			if err := ctx.Err(); err != nil {
				return err
			}
			stride := cfg.PatternStride * int64(key-cfg.KeyBase)
			for i := 0; i < n; i++ {
				v := int64((t+i)%cfg.Period) + stride
				evs[i], mags[i] = v, float64(v)
			}
			if cfg.Magnitude {
				buf = enc.AppendMagnitudeBatch(buf, key, mags[:n])
			} else {
				buf = enc.AppendEventBatch(buf, key, evs[:n])
			}
			if len(buf) >= 48<<10 {
				if _, err := bw.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
			connSent += uint64(n)
			if rate > 0 {
				// Pace against the connection's own clock: sleep until the
				// sent total is back under rate × elapsed.
				ahead := time.Duration(float64(connSent)/rate*float64(time.Second)) - time.Since(connStart)
				if ahead > time.Millisecond {
					if _, err := bw.Write(buf); err != nil {
						return err
					}
					buf = buf[:0]
					if err := bw.Flush(); err != nil {
						return err
					}
					select {
					case <-time.After(ahead):
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
		}
	}

	// Barrier: the pong proves every batch above was applied in order.
	const token = 0xBA44
	buf = enc.AppendPing(buf, token)
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := awaitPong(br, token); err != nil {
		return err
	}
	sent.Add(connSent)

	// Graceful terminator, then close.
	if err := wire.WriteFrame(bw, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// awaitPong reads server frames until the barrier pong (skipping any
// subscribed events), surfacing protocol errors from the server.
func awaitPong(br *bufio.Reader, token uint64) error {
	var sf server.ServerFrame
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, server.MaxFrame, buf)
		if err != nil {
			return fmt.Errorf("awaiting pong: %w", err)
		}
		if payload == nil {
			return errors.New("server closed the stream before the pong")
		}
		buf = payload
		if err := server.DecodeServerFrame(payload, &sf); err != nil {
			return err
		}
		switch sf.Kind {
		case server.KindPong:
			if sf.Token != token {
				return fmt.Errorf("pong token %#x, want %#x", sf.Token, token)
			}
			return nil
		case server.KindError:
			return fmt.Errorf("server error %s: %s", sf.Code, sf.Msg)
		}
	}
}
