// Package loadgen drives a dpdserver ingest listener with synthetic
// periodic traffic: N connections × M keyed streams of period-P
// samples, batched and optionally rate-limited — the way "heavy
// traffic from millions of users" is demoed and integration-tested
// locally without a fleet. Each connection is an internal/client
// Client, so a load run rides the real resilience machinery: bounded
// replay windows, reconnect with backoff, cursor resync and overload
// retry-after. A run therefore survives server restarts mid-run and
// still delivers every sample exactly once, and when Run returns every
// generated sample has been applied by the server's pool (ping-barrier
// confirmed), not merely buffered in a socket.
package loadgen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dpd/internal/client"
	"dpd/internal/server"
)

// Config parameterizes one load run.
type Config struct {
	// Addr is the server's ingest address.
	Addr string
	// Conns is the number of concurrent TCP connections; 0 selects 1.
	Conns int
	// Streams is the total number of keyed streams, partitioned
	// round-robin across connections (keys 0..Streams-1 offset by
	// KeyBase); 0 selects Conns.
	Streams int
	// KeyBase offsets every stream key, so successive runs can target
	// fresh or existing streams deliberately.
	KeyBase uint64
	// SamplesPerStream is how many samples each stream receives; 0
	// selects 1024.
	SamplesPerStream int
	// BatchSize is the samples per batch frame; 0 selects 256.
	BatchSize int
	// Period is the synthetic pattern's period: stream key k at index t
	// carries value (t % Period) + k·PatternStride; 0 selects 8.
	Period int
	// PatternStride offsets each stream's value alphabet so distinct
	// streams never share values (useful when eyeballing snapshots);
	// 0 keeps all streams on the same alphabet.
	PatternStride int64
	// Magnitude switches the generator to magnitude batch frames
	// (float64 samples) for pools running the magnitude engine.
	Magnitude bool
	// Rate bounds aggregate throughput in samples/second across all
	// connections; 0 is unlimited.
	Rate float64
	// Window is each connection's replay-window depth in batches; 0
	// selects the client default (256).
	Window int
	// Ack selects the window-release mode: client.AckApplied (default)
	// or client.AckDurable, which bounds loss to zero even across a
	// kill -9 of the server (at checkpoint-cadence window turnover).
	Ack client.AckMode
	// RetryBudget caps how long a connection retries without progress
	// before the run fails; 0 selects the client default (30s).
	RetryBudget time.Duration
}

// Report summarizes one completed run.
type Report struct {
	// Samples is the total number of samples applied by the server
	// (ping-barrier confirmed).
	Samples uint64
	// Conns and Streams echo the effective run shape.
	Conns, Streams int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// MelemsPerSec is end-to-end throughput in millions of samples per
	// second: encode → TCP → decode → pool, barrier included.
	MelemsPerSec float64
	// Reconnects counts connection recoveries across the run (0 on a
	// healthy server).
	Reconnects uint64
	// ReplayedSamples counts samples re-sent during cursor resyncs;
	// the server's per-stream accounting deduplicates them.
	ReplayedSamples uint64
	// OverloadBackoffs counts server retry-after hints honored.
	OverloadBackoffs uint64
}

// String renders the report the way cmd/dpdload prints it.
func (r Report) String() string {
	s := fmt.Sprintf("loadgen: %d samples over %d conns × %d streams in %v → %.2f Melem/s end-to-end",
		r.Samples, r.Conns, r.Streams, r.Elapsed.Round(time.Millisecond), r.MelemsPerSec)
	if r.Reconnects > 0 || r.OverloadBackoffs > 0 {
		s += fmt.Sprintf(" (%d reconnects, %d samples replayed, %d overload backoffs)",
			r.Reconnects, r.ReplayedSamples, r.OverloadBackoffs)
	}
	return s
}

// Run executes one load run and blocks until every connection has
// finished and barriered (or ctx is cancelled, which aborts the run
// with its error). Connections share nothing but the counters, so the
// generator itself scales with cores.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Streams <= 0 {
		cfg.Streams = cfg.Conns
	}
	if cfg.SamplesPerStream <= 0 {
		cfg.SamplesPerStream = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.BatchSize > server.MaxBatch {
		cfg.BatchSize = server.MaxBatch
	}
	if cfg.Period <= 0 {
		cfg.Period = 8
	}

	var (
		sent       atomic.Uint64
		reconnects atomic.Uint64
		replayed   atomic.Uint64
		backoffs   atomic.Uint64
		wg         sync.WaitGroup
		errMu      sync.Mutex
		first      error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	perConnRate := cfg.Rate / float64(cfg.Conns)
	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			n, st, err := runConn(ctx, cfg, ci, perConnRate)
			sent.Add(n)
			reconnects.Add(st.Reconnects)
			replayed.Add(st.ReplayedSamples)
			backoffs.Add(st.OverloadBackoffs)
			if err != nil {
				fail(fmt.Errorf("loadgen conn %d: %w", ci, err))
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep := Report{
		Samples:          sent.Load(),
		Conns:            cfg.Conns,
		Streams:          cfg.Streams,
		Elapsed:          elapsed,
		Reconnects:       reconnects.Load(),
		ReplayedSamples:  replayed.Load(),
		OverloadBackoffs: backoffs.Load(),
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.MelemsPerSec = float64(rep.Samples) / s / 1e6
	}
	return rep, first
}

// runConn drives one connection through a resilient client: its share
// of the streams, batch by batch in time order, then the ping barrier
// and the graceful close. The returned count is barrier-confirmed
// applied samples; stats are the client's counters for aggregation.
func runConn(ctx context.Context, cfg Config, ci int, rate float64) (uint64, client.Stats, error) {
	cl, err := client.Dial(client.Config{
		Addr:        cfg.Addr,
		Window:      cfg.Window,
		Ack:         cfg.Ack,
		RetryBudget: cfg.RetryBudget,
		Seed:        uint64(ci) + 1,
	})
	if err != nil {
		return 0, client.Stats{}, err
	}
	defer cl.Close()

	// This connection's streams: keys ci, ci+Conns, ci+2·Conns, …
	var keys []uint64
	for k := ci; k < cfg.Streams; k += cfg.Conns {
		keys = append(keys, cfg.KeyBase+uint64(k))
	}

	evs := make([]int64, cfg.BatchSize)
	mags := make([]float64, cfg.BatchSize)
	connStart := time.Now()
	var connSent uint64
	for t := 0; t < cfg.SamplesPerStream; t += cfg.BatchSize {
		n := cfg.BatchSize
		if t+n > cfg.SamplesPerStream {
			n = cfg.SamplesPerStream - t
		}
		for _, key := range keys {
			if err := ctx.Err(); err != nil {
				return connSent, cl.Stats(), err
			}
			stride := cfg.PatternStride * int64(key-cfg.KeyBase)
			for i := 0; i < n; i++ {
				v := int64((t+i)%cfg.Period) + stride
				evs[i], mags[i] = v, float64(v)
			}
			if cfg.Magnitude {
				err = cl.SendMagnitudes(key, mags[:n])
			} else {
				err = cl.SendEvents(key, evs[:n])
			}
			if err != nil {
				return connSent, cl.Stats(), err
			}
			connSent += uint64(n)
			if rate > 0 {
				// Pace against the connection's own clock: sleep until the
				// sent total is back under rate × elapsed.
				ahead := time.Duration(float64(connSent)/rate*float64(time.Second)) - time.Since(connStart)
				if ahead > time.Millisecond {
					if err := cl.Flush(); err != nil {
						return connSent, cl.Stats(), err
					}
					select {
					case <-time.After(ahead):
					case <-ctx.Done():
						return connSent, cl.Stats(), ctx.Err()
					}
				}
			}
		}
	}

	// Barrier: proves every batch above was applied, surviving any
	// reconnects it takes to get there.
	if err := cl.Barrier(); err != nil {
		return connSent, cl.Stats(), err
	}
	return connSent, cl.Stats(), cl.Close()
}
