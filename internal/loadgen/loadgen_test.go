package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"dpd"
	"dpd/internal/server"
)

// startServer boots an in-process dpdserver on loopback for the
// generator to target.
func startServer(t *testing.T, poolCfg dpd.PoolConfig) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Pool:       poolCfg,
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// TestRunDrivesServer: the generator's ping barrier means that when Run
// returns, every sample is already applied — checked against the
// server's own accounting and the resulting per-stream locks.
func TestRunDrivesServer(t *testing.T) {
	s := startServer(t, dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}})
	const (
		conns   = 3
		streams = 12
		samples = 192
		period  = 5
	)
	rep, err := Run(context.Background(), Config{
		Addr:             s.Addr(),
		Conns:            conns,
		Streams:          streams,
		SamplesPerStream: samples,
		BatchSize:        64,
		Period:           period,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != streams*samples {
		t.Fatalf("report says %d samples, want %d", rep.Samples, streams*samples)
	}
	if rep.MelemsPerSec <= 0 {
		t.Fatalf("report Melem/s = %v, want > 0", rep.MelemsPerSec)
	}

	pool := s.Pool()
	if got := pool.Len(); got != streams {
		t.Fatalf("pool has %d streams, want %d", got, streams)
	}
	for k := 0; k < streams; k++ {
		st, ok := pool.Stat(uint64(k))
		if !ok {
			t.Fatalf("stream %d missing", k)
		}
		if st.Samples != samples || !st.Locked || st.Period != period {
			t.Fatalf("stream %d = %+v, want %d samples locked on period %d", k, st.Stat, samples, period)
		}
	}

	// The server's own counters agree with the report.
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SamplesTotal != streams*samples {
		t.Fatalf("server samples_total = %d, want %d", m.SamplesTotal, streams*samples)
	}
	if m.Disconnects.ProtocolError != 0 || m.Disconnects.SlowConsumer != 0 {
		t.Fatalf("loadgen tripped error paths: %+v", m.Disconnects)
	}
}

// TestRunMagnitude: the generator speaks magnitude frames for pools
// running the magnitude engine.
func TestRunMagnitude(t *testing.T) {
	s := startServer(t, dpd.PoolConfig{
		Shards:      2,
		NewDetector: func() dpd.Detector { return dpd.Must(dpd.WithMagnitude(0), dpd.WithWindow(32)) },
	})
	rep, err := Run(context.Background(), Config{
		Addr:             s.Addr(),
		Conns:            2,
		Streams:          6,
		SamplesPerStream: 160,
		BatchSize:        32,
		Period:           8,
		Magnitude:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 6*160 {
		t.Fatalf("report says %d samples, want %d", rep.Samples, 6*160)
	}
	st, ok := s.Pool().Stat(0)
	if !ok || !st.Locked || st.Period != 8 {
		t.Fatalf("magnitude stream 0 = %+v ok=%v, want locked on period 8", st, ok)
	}
}

// TestRunRateLimited: a rate bound stretches the run to at least the
// implied duration (coarse: half the ideal time, to stay robust on a
// loaded CI box).
func TestRunRateLimited(t *testing.T) {
	s := startServer(t, dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}})
	const total = 4000 // samples at 20k/s → ≥200ms ideal
	start := time.Now()
	rep, err := Run(context.Background(), Config{
		Addr:             s.Addr(),
		Conns:            2,
		Streams:          4,
		SamplesPerStream: total / 4,
		BatchSize:        100,
		Rate:             20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != total {
		t.Fatalf("report says %d samples, want %d", rep.Samples, total)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("rate-limited run finished in %v, want >= 100ms", elapsed)
	}
}

// TestRunCancel: cancelling the context aborts the run with its error.
func TestRunCancel(t *testing.T) {
	s := startServer(t, dpd.PoolConfig{Shards: 1, Detector: dpd.Config{Window: 32}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Addr: s.Addr(), Conns: 1, Streams: 1, SamplesPerStream: 1 << 20}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
