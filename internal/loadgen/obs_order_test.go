package loadgen

// The flight-recorder causal-order tests: drive one adaptive promotion,
// one live cross-node migration, and one failover through the real
// server/cluster wiring, then require /debug/events (and the underlying
// ring) to show the transitions in their causal order. Run under -race
// in CI — the recorder's seqlock must be clean while the cluster's
// replication and follow loops are live.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"dpd"
	"dpd/internal/obs"
	"dpd/internal/server"
)

// eventsDumpJSON mirrors the /debug/events payload.
type eventsDumpJSON struct {
	Count   int             `json:"count"`
	Dropped uint64          `json:"dropped"`
	Events  []obs.EventJSON `json:"events"`
}

// debugEvents fetches one node's full /debug/events dump.
func debugEvents(t *testing.T, httpAddr string) eventsDumpJSON {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/events?n=%d", httpAddr, obs.DefaultRecorderEvents))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events: %s", resp.Status)
	}
	var dump eventsDumpJSON
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding /debug/events: %v", err)
	}
	return dump
}

// findEvent returns the per-subsystem Seq of the first (newest-first
// scan, so the LATEST) matching event, or 0 when absent.
func findEvent(dump eventsDumpJSON, subsystem, kind string, key uint64) uint64 {
	for _, e := range dump.Events {
		if e.Subsystem == subsystem && e.Kind == kind && e.Key == key {
			return e.Seq
		}
	}
	return 0
}

// TestFlightRecorderPromotionOrder: skewed traffic through a live
// server with the adaptive tier promotes the hot stream, and the
// promotion shows up in /debug/events with the pool subsystem.
func TestFlightRecorderPromotionOrder(t *testing.T) {
	obsSet := obs.NewSet(0)
	srv, err := server.New(server.Config{
		IngestAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
		Pool: dpd.PoolConfig{
			Shards:   2,
			Detector: dpd.Config{Window: 32},
			Adaptive: dpd.AdaptiveConfig{
				Enable:         true,
				MaxHot:         4,
				SampleEvery:    1,
				FoldEvery:      2 * time.Millisecond,
				PromoteShare:   0.30,
				DemoteShare:    0.05,
				PromoteAfter:   1,
				DemoteAfter:    1 << 30, // hold the promotion for the test's lifetime
				MinFoldSamples: 1,
			},
		},
		Obs:  obsSet,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Abort()

	// One overwhelmingly hot key against light background traffic.
	const hotKey = 7
	deadline := time.Now().Add(10 * time.Second)
	for findEvent(debugEvents(t, srv.HTTPAddr()), "pool", "promote", hotKey) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("adaptive tier never recorded a promotion for the hot stream")
		}
		for i := 0; i < 256; i++ {
			srv.Pool().Feed(hotKey, int64(i%4))
		}
		srv.Pool().Feed(hotKey+1, 1)
		time.Sleep(time.Millisecond)
	}
	// The promotion must also be visible as adaptive state, tying the
	// event to the placement it claims happened.
	if stats := srv.Pool().AdaptiveStats(); stats.Promotions == 0 {
		t.Fatalf("promote event recorded but AdaptiveStats = %+v", stats)
	}
}

// TestFlightRecorderMigrationAndFailoverOrder scripts one live
// migration and one failover on a 3-node cluster and requires the
// recorder's per-subsystem sequence numbers to prove the causal order:
// fence before ship before flip for the migration, failover before the
// epoch install it triggers.
func TestFlightRecorderMigrationAndFailoverOrder(t *testing.T) {
	nodes := startCluster(t, 50*time.Millisecond)

	// Pick a key n1 owns and give it real state, so the move ships a
	// detector snapshot rather than a zero-stream ownership transfer.
	tab := nodes[0].node.Table()
	var key uint64
	for k := uint64(1); ; k++ {
		if tab.Owner(k).Name == "n1" {
			key = k
			break
		}
	}
	for i := 0; i < 64; i++ {
		nodes[0].srv.Pool().Feed(key, int64(i%4))
	}

	// One live migration n1 → n2.
	if _, err := nodes[0].node.Move(key, "n2"); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, nodes, tab.Epoch+1)

	dump := debugEvents(t, nodes[0].srv.HTTPAddr())
	fence := findEvent(dump, "cluster", "migration_fence", key)
	ship := findEvent(dump, "cluster", "migration_ship", key)
	flip := findEvent(dump, "cluster", "migration_flip", key)
	if fence == 0 || ship == 0 || flip == 0 {
		t.Fatalf("migration events missing: fence=%d ship=%d flip=%d\ndump: %+v", fence, ship, flip, dump.Events)
	}
	if !(fence < ship && ship < flip) {
		t.Fatalf("migration events out of causal order: fence=%d ship=%d flip=%d", fence, ship, flip)
	}
	if abort := findEvent(dump, "cluster", "migration_abort", key); abort != 0 {
		t.Fatalf("successful migration recorded an abort (seq %d)", abort)
	}
	// The pause window around the move must have been timed.
	if st := nodes[0].obs.MigrationPause.Stat(); st.Count == 0 {
		t.Error("migration pause histogram empty after a live move")
	}

	// One failover: kill n3 the kill -9 way, then declare it dead from a
	// survivor — the same call the router and the HTTP control plane use.
	victim := nodes[2]
	victim.dead = true
	victim.srv.Abort()
	victim.node.Close()
	epochBefore := nodes[0].node.Table().Epoch
	if _, err := nodes[0].node.Failover(victim.name); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, nodes[:2], epochBefore+1)

	dump = debugEvents(t, nodes[0].srv.HTTPAddr())
	var failoverSeq, installSeq uint64
	for _, e := range dump.Events {
		if e.Subsystem != "cluster" {
			continue
		}
		if e.Kind == "failover" && failoverSeq == 0 {
			failoverSeq = e.Seq
			if e.Aux != 2 {
				t.Errorf("failover event reports %d surviving members, want 2", e.Aux)
			}
		}
		if e.Kind == "epoch_install" && e.Key == epochBefore+1 && installSeq == 0 {
			installSeq = e.Seq
		}
	}
	if failoverSeq == 0 || installSeq == 0 {
		t.Fatalf("failover events missing: failover=%d epoch_install=%d", failoverSeq, installSeq)
	}
	if installSeq > failoverSeq {
		t.Fatalf("epoch install (seq %d) recorded after the failover event (seq %d) that required it", installSeq, failoverSeq)
	}
}
