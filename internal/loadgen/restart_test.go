package loadgen

// The kill -9 integration test: a load run in durable-ack mode must
// survive an Abort() of the server (the in-process equivalent of
// kill -9: no drain, no final checkpoint) followed by a restart from
// the checkpoint directory — and still end with exactly the expected
// per-stream sample counts, checked through the restarted server's own
// /streams query plane. The faults.Proxy plays the stable VIP so the
// clients keep one address across the restart.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"dpd"
	"dpd/internal/client"
	"dpd/internal/faults"
	"dpd/internal/server"
)

// startDurableServer boots a checkpointing server over dir.
func startDurableServer(t *testing.T, dir string) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		IngestAddr:      "127.0.0.1:0",
		HTTPAddr:        "127.0.0.1:0",
		Pool:            dpd.PoolConfig{Shards: 2, Detector: dpd.Config{Window: 32}},
		CheckpointDir:   dir,
		CheckpointEvery: 50 * time.Millisecond,
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s
}

// serverSamples reads one stream's applied count via GET /streams/{key}.
func serverSamples(t *testing.T, s *server.Server, key uint64) uint64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/streams/%d", s.HTTPAddr(), key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /streams/%d = %d", key, resp.StatusCode)
	}
	var body struct {
		Samples uint64 `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Samples
}

// serverSamplesTotal reads the server's lifetime applied-sample counter.
func serverSamplesTotal(t *testing.T, s *server.Server) uint64 {
	t.Helper()
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m.SamplesTotal
}

func TestRunSurvivesKillRestart(t *testing.T) {
	const (
		conns   = 2
		streams = 8
		samples = 1024
		batch   = 32
	)
	dir := t.TempDir()
	s1 := startDurableServer(t, dir)
	proxy, err := faults.NewProxy("127.0.0.1:0", s1.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := Run(context.Background(), Config{
			Addr:             proxy.Addr(),
			Conns:            conns,
			Streams:          streams,
			SamplesPerStream: samples,
			BatchSize:        batch,
			Window:           8,
			Ack:              client.AckDurable,
			RetryBudget:      30 * time.Second,
		})
		done <- outcome{rep, err}
	}()

	// Kill -9 mid-run: wait until the first server has applied a real
	// chunk of the workload, then abort it without any final checkpoint.
	deadline := time.Now().Add(15 * time.Second)
	for serverSamplesTotal(t, s1) < streams*samples/4 {
		if time.Now().After(deadline) {
			t.Fatal("run never reached the kill point")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s1.Abort()

	// Restart from the checkpoint directory and repoint the VIP; the
	// clients replay their unacked windows against the restored counts.
	s2 := startDurableServer(t, dir)
	defer s2.Abort()
	proxy.SetUpstream(s2.Addr())

	o := <-done
	if o.err != nil {
		t.Fatalf("run through kill/restart failed: %v", o.err)
	}
	if o.rep.Samples != streams*samples {
		t.Fatalf("report says %d samples, want %d", o.rep.Samples, streams*samples)
	}
	if o.rep.Reconnects == 0 {
		t.Fatalf("report %+v: the kill never forced a reconnect", o.rep)
	}

	// Exactly once, per stream, on the restarted server's own books.
	for k := uint64(0); k < streams; k++ {
		if got := serverSamples(t, s2, k); got != samples {
			t.Errorf("stream %d: %d samples after restart, want exactly %d", k, got, samples)
		}
	}
}
