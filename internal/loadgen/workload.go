package loadgen

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"dpd"
)

// DistKind enumerates key-popularity distributions.
type DistKind uint8

const (
	// DistUniform sweeps a connection's keys round-robin: every stream
	// receives exactly the same share in the same order — the PR 5
	// legacy shape, and the baseline column of the scaling matrix.
	DistUniform DistKind = iota
	// DistZipf draws a key per batch with zipf(Theta) popularity: rank
	// 0 (each connection's lowest key) is the hot "celebrity stream"
	// that takes most of the traffic as Theta grows.
	DistZipf
)

// Dist is a key-popularity distribution spec.
type Dist struct {
	// Kind selects the distribution family.
	Kind DistKind
	// Theta is the zipf skew exponent (DistZipf only): 0 is uniform,
	// 0.99 the classic hot-spot, >1 head-dominated.
	Theta float64
}

// String renders the spec in ParseDist's input syntax.
func (d Dist) String() string {
	if d.Kind == DistZipf {
		return fmt.Sprintf("zipf:%g", d.Theta)
	}
	return "uniform"
}

// ParseDist parses a -dist flag value: "uniform" (or empty) or
// "zipf:<theta>" with a finite theta ≥ 0.
func ParseDist(s string) (Dist, error) {
	switch {
	case s == "" || s == "uniform":
		return Dist{}, nil
	case s == "zipf":
		return Dist{}, fmt.Errorf("dist %q: want zipf:<theta>, e.g. zipf:0.99", s)
	case strings.HasPrefix(s, "zipf:"):
		theta, err := strconv.ParseFloat(s[len("zipf:"):], 64)
		if err != nil {
			return Dist{}, fmt.Errorf("dist %q: bad theta: %v", s, err)
		}
		if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
			return Dist{}, fmt.Errorf("dist %q: theta must be finite and >= 0", s)
		}
		return Dist{Kind: DistZipf, Theta: theta}, nil
	default:
		return Dist{}, fmt.Errorf("dist %q: want uniform or zipf:<theta>", s)
	}
}

// Phase is one segment of a rate-shaped arrival schedule. The schedule
// cycles through its phases until the run's sample budget is exhausted,
// so a two-phase on/off list produces a storm of bursts, not a single
// one.
type Phase struct {
	// Name labels the phase in the per-phase Report breakdown; phases
	// are aggregated across cycles by position, so give distinct
	// positions distinct names.
	Name string
	// Samples is the per-connection sample budget of one pass of this
	// phase; 0 means "the rest of the run" (the phase never yields).
	Samples int
	// Rate is the aggregate arrival rate across all connections in
	// samples/second at the start of the phase; 0 is unlimited.
	Rate float64
	// RampTo, when > 0 (requires Rate > 0 and Samples > 0), ramps the
	// rate linearly from Rate to RampTo across the pass — the shape of
	// a traffic ramp-up rather than a step.
	RampTo float64
	// Pause is how long the connection goes silent before the pass
	// begins — the "off" of an on/off burst cycle.
	Pause time.Duration
}

// ParseBurst parses a -burst flag value "<on>:<off>" — e.g.
// "4096:250ms" — into a repeating storm schedule: go silent for the
// off-duration, then blast on samples per connection at full speed.
// Empty input selects no shaping (one steady phase).
func ParseBurst(s string) ([]Phase, error) {
	if s == "" {
		return nil, nil
	}
	on, off, okSep := strings.Cut(s, ":")
	if !okSep {
		return nil, fmt.Errorf("burst %q: want <on-samples>:<off-duration>, e.g. 4096:250ms", s)
	}
	n, err := strconv.Atoi(on)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("burst %q: on-samples must be a positive integer", s)
	}
	d, err := time.ParseDuration(off)
	if err != nil {
		return nil, fmt.Errorf("burst %q: bad off-duration: %v", s, err)
	}
	if d < 0 {
		return nil, fmt.Errorf("burst %q: off-duration must be >= 0", s)
	}
	return []Phase{{Name: "burst", Samples: n, Pause: d}}, nil
}

// Workload composes the adversarial dimensions of a load run on top of
// Config's shape (streams, samples, batch, period). The zero value is
// the PR 5 legacy workload: uniform keys, steady arrivals, no churn.
// Every draw is a pure function of Seed, so the same spec reproduces
// the same per-stream sample sequences on any box — the property the
// differential referee tests and the golden-sequence test pin.
type Workload struct {
	// Dist selects key popularity within each connection's key set.
	Dist Dist
	// Seed makes every random draw reproducible; 0 selects 1.
	Seed uint64
	// Churn, when > 1, splits the run into that many create/evict
	// generations: each generation targets a fresh window of
	// Config.Streams keys (offset by generation × Streams), so earlier
	// generations go idle and are TTL-evicted while later ones
	// materialize — a create/evict storm through the pool's sweep and
	// freelist machinery. Per-stream sample budgets divide accordingly.
	Churn int
	// Phases shapes arrivals (bursts, ramps); nil selects one steady
	// phase at Config.Rate.
	Phases []Phase
	// Mixed makes every third stream (key ≡ 2 mod 3) carry magnitude
	// frames while the rest carry event frames, exercising both wire
	// planes and both KeyedSample fields in one run.
	Mixed bool
}

// validate rejects specs the generator cannot honor.
func (w Workload) validate() error {
	if w.Dist.Kind == DistZipf &&
		(w.Dist.Theta < 0 || math.IsNaN(w.Dist.Theta) || math.IsInf(w.Dist.Theta, 0)) {
		return fmt.Errorf("loadgen: zipf theta must be finite and >= 0, got %v", w.Dist.Theta)
	}
	if w.Churn < 0 {
		return fmt.Errorf("loadgen: churn generations must be >= 0, got %d", w.Churn)
	}
	for i, p := range w.Phases {
		if p.Samples < 0 || p.Rate < 0 || p.RampTo < 0 || p.Pause < 0 {
			return fmt.Errorf("loadgen: phase %d (%q): negative field", i, p.Name)
		}
		if p.RampTo > 0 && (p.Rate <= 0 || p.Samples <= 0) {
			return fmt.Errorf("loadgen: phase %d (%q): RampTo needs Rate > 0 and Samples > 0", i, p.Name)
		}
	}
	return nil
}

// generations returns the effective create/evict generation count.
func (w Workload) generations() int {
	if w.Churn > 1 {
		return w.Churn
	}
	return 1
}

// seed returns the effective base seed.
func (w Workload) seed() uint64 {
	if w.Seed == 0 {
		return 1
	}
	return w.Seed
}

// sampleValue is the deterministic value stream key carries at its
// per-key index i: the Config.Period periodic pattern offset by the
// stream's PatternStride lane. It depends only on (key, i) — never on
// batching or interleaving — which is what lets differential tests
// replay any stream's exact subsequence into a standalone detector.
func sampleValue(cfg *Config, key uint64, i uint64) int64 {
	stride := cfg.PatternStride * int64(key-cfg.KeyBase)
	return int64(i%uint64(cfg.Period)) + stride
}

// magnitudeKey reports whether stream key sends magnitude frames under
// cfg (all streams with Config.Magnitude, every third with
// Workload.Mixed).
func magnitudeKey(cfg *Config, key uint64) bool {
	if cfg.Magnitude {
		return true
	}
	return cfg.Workload.Mixed && key%3 == 2
}

// SampleAt returns the exact sample stream key carries at its per-key
// index i under cfg — the replay contract of the differential referee:
// feeding SampleAt(cfg, key, 0..n-1) to a standalone detector must
// reproduce the pooled stream's state byte-for-byte after the pool saw
// n samples of that key, regardless of distribution, churn, bursts or
// interleaving. Event streams populate Value (Magnitude 0) and
// magnitude streams populate Magnitude (Value 0), mirroring the
// server's frame decode exactly.
func SampleAt(cfg Config, key uint64, i uint64) dpd.KeyedSample {
	cfg.normalize()
	v := sampleValue(&cfg, key, i)
	ks := dpd.KeyedSample{Key: key}
	if magnitudeKey(&cfg, key) {
		ks.Magnitude = float64(v)
	} else {
		ks.Value = v
	}
	return ks
}

// connGen generates one connection's share of the workload: its key
// partition per churn generation, the per-batch key draw (round-robin
// or zipf), and per-key sample cursors. All state is derived from the
// spec and the connection index, so the sequence is reproducible.
type connGen struct {
	cfg   *Config
	ci    int
	gens  int
	quota int // per-key samples per generation (uniform pacing unit)

	gen  int
	keys []uint64 // current generation's keys, ascending (zipf rank 0 = keys[0])
	zipf *Zipf

	rr, tBase int // uniform sweep cursor
	budget    int // zipf: samples left in the generation

	counts map[uint64]uint64 // per-key samples generated so far
}

// newConnGen builds connection ci's generator; cfg must be normalized.
func newConnGen(cfg *Config, ci int) *connGen {
	gens := cfg.Workload.generations()
	quota := cfg.SamplesPerStream / gens
	if quota < 1 {
		quota = 1
	}
	g := &connGen{cfg: cfg, ci: ci, gens: gens, quota: quota, gen: -1,
		counts: make(map[uint64]uint64)}
	g.advance()
	return g
}

// advance moves to the next churn generation, rebuilding the key window;
// it reports false when the run is exhausted (or the connection owns no
// keys at all).
func (g *connGen) advance() bool {
	g.gen++
	if g.gen >= g.gens {
		return false
	}
	base := g.cfg.KeyBase + uint64(g.gen)*uint64(g.cfg.Streams)
	g.keys = g.keys[:0]
	for off := g.ci; off < g.cfg.Streams; off += g.cfg.Conns {
		g.keys = append(g.keys, base+uint64(off))
	}
	if len(g.keys) == 0 {
		return false
	}
	g.rr, g.tBase = 0, 0
	g.budget = len(g.keys) * g.quota
	if g.cfg.Workload.Dist.Kind == DistZipf && g.zipf == nil {
		seed := g.cfg.Workload.seed() + uint64(g.ci)*0x9e3779b97f4a7c15
		g.zipf = NewZipf(uint64(len(g.keys)), g.cfg.Workload.Dist.Theta, seed)
	}
	return true
}

// nextBatch yields the next batch: the target key, the stream's sample
// cursor before this batch, and the batch length. ok is false when the
// connection's budget is exhausted.
func (g *connGen) nextBatch() (key uint64, start uint64, n int, ok bool) {
	if g.gen >= g.gens || len(g.keys) == 0 {
		return 0, 0, 0, false
	}
	b := g.cfg.BatchSize
	if g.cfg.Workload.Dist.Kind == DistZipf {
		for g.budget == 0 {
			if !g.advance() {
				return 0, 0, 0, false
			}
		}
		key = g.keys[g.zipf.Next()]
		n = b
		if n > g.budget {
			n = g.budget
		}
		g.budget -= n
	} else {
		for g.tBase >= g.quota {
			if !g.advance() {
				return 0, 0, 0, false
			}
		}
		key = g.keys[g.rr]
		n = b
		if rem := g.quota - g.tBase; n > rem {
			n = rem
		}
		g.rr++
		if g.rr == len(g.keys) {
			g.rr = 0
			g.tBase += b
		}
	}
	start = g.counts[key]
	g.counts[key] = start + uint64(n)
	return key, start, n, true
}

// effectivePhases returns the arrival schedule: the workload's phases,
// or one unbounded steady phase at Config.Rate.
func effectivePhases(cfg *Config) []Phase {
	if len(cfg.Workload.Phases) > 0 {
		return cfg.Workload.Phases
	}
	return []Phase{{Name: "steady", Rate: cfg.Rate}}
}

// phaseAgg accumulates one phase's measurements across all its cycles
// on one connection: samples, active (non-pause) wall time, and the
// batch-accept latency histogram.
type phaseAgg struct {
	name    string
	samples uint64
	active  time.Duration
	hist    Hist
}

// shaper walks a connection through the arrival schedule: it injects
// the pauses between phases, paces sends against each phase's (possibly
// ramping) rate, and attributes every batch's accept latency to the
// phase it was sent in.
type shaper struct {
	phases []Phase
	aggs   []phaseAgg

	idx       int // current phase index; -1 before the first prepare
	left      int // samples left in the current pass; -1 = unbounded
	sent      int // samples sent in the current pass (ramp progress)
	expect    float64
	passStart time.Time
	conns     float64
}

// newShaper builds the schedule walker; cfg must be normalized.
func newShaper(cfg *Config) *shaper {
	phases := effectivePhases(cfg)
	sh := &shaper{phases: phases, aggs: make([]phaseAgg, len(phases)),
		idx: -1, conns: float64(cfg.Conns)}
	for i, p := range phases {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i)
		}
		sh.aggs[i].name = name
	}
	return sh
}

// prepare runs before each batch: on a phase boundary it closes the
// finished pass, flushes staged frames, sleeps the next phase's pause,
// and restarts the pass clock.
func (sh *shaper) prepare(ctx context.Context, flush func() error) error {
	if sh.idx >= 0 && sh.left != 0 {
		return nil
	}
	next := 0
	if sh.idx >= 0 {
		sh.closePass()
		next = (sh.idx + 1) % len(sh.phases)
	}
	p := sh.phases[next]
	if p.Pause > 0 {
		if err := flush(); err != nil {
			return err
		}
		select {
		case <-time.After(p.Pause):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	sh.idx = next
	sh.left = p.Samples
	if p.Samples == 0 {
		sh.left = -1
	}
	sh.sent = 0
	sh.expect = 0
	sh.passStart = time.Now()
	return nil
}

// closePass folds the current pass's active time into its aggregate.
func (sh *shaper) closePass() {
	sh.aggs[sh.idx].active += time.Since(sh.passStart)
}

// record attributes one sent batch (n samples, accepted in d) to the
// current phase and advances the pacing ledger.
func (sh *shaper) record(n int, d time.Duration) {
	agg := &sh.aggs[sh.idx]
	agg.samples += uint64(n)
	agg.hist.Record(d)
	p := sh.phases[sh.idx]
	rate := p.Rate
	if p.RampTo > 0 && p.Samples > 0 {
		frac := float64(sh.sent) / float64(p.Samples)
		if frac > 1 {
			frac = 1
		}
		rate = p.Rate + (p.RampTo-p.Rate)*frac
	}
	if rate > 0 {
		sh.expect += float64(n) / (rate / sh.conns)
	}
	sh.sent += n
	if sh.left > 0 {
		sh.left -= n
		if sh.left < 0 {
			sh.left = 0
		}
	}
}

// pace sleeps whenever the connection has run ahead of the phase's
// rate, flushing staged frames first so the server keeps draining
// while the generator idles.
func (sh *shaper) pace(ctx context.Context, flush func() error) error {
	p := sh.phases[sh.idx]
	if p.Rate <= 0 && p.RampTo <= 0 {
		return nil
	}
	ahead := time.Duration(sh.expect*float64(time.Second)) - time.Since(sh.passStart)
	if ahead <= time.Millisecond {
		return nil
	}
	if err := flush(); err != nil {
		return err
	}
	select {
	case <-time.After(ahead):
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// finish closes the in-flight pass; call once when the budget is done.
func (sh *shaper) finish() {
	if sh.idx >= 0 {
		sh.closePass()
	}
}

// Fingerprint hashes a per-stream sample-count map (FNV-1a over the
// ascending (key, count) pairs) into one comparable word: two runs of
// the same seeded workload must report the same value, whatever the
// scheduling — the cheap reproducibility check dpdload prints.
func Fingerprint(counts map[uint64]uint64) uint64 {
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for b := 0; b < 64; b += 8 {
			h ^= (v >> b) & 0xff
			h *= prime
		}
	}
	for _, k := range keys {
		mix(k)
		mix(counts[k])
	}
	return h
}
