package loadgen

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestParseDist is the flag-validation table for -dist.
func TestParseDist(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    Dist
		wantErr string
	}{
		{in: "", want: Dist{}},
		{in: "uniform", want: Dist{}},
		{in: "zipf:0", want: Dist{Kind: DistZipf, Theta: 0}},
		{in: "zipf:0.99", want: Dist{Kind: DistZipf, Theta: 0.99}},
		{in: "zipf:1.2", want: Dist{Kind: DistZipf, Theta: 1.2}},
		{in: "zipf", wantErr: "zipf:<theta>"},
		{in: "zipf:", wantErr: "bad theta"},
		{in: "zipf:x", wantErr: "bad theta"},
		{in: "zipf:-1", wantErr: ">= 0"},
		{in: "zipf:NaN", wantErr: "finite"},
		{in: "zipf:+Inf", wantErr: "finite"},
		{in: "pareto", wantErr: "want uniform or zipf"},
	} {
		got, err := ParseDist(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseDist(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseDist(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
		if rt, err := ParseDist(got.String()); err != nil || rt != got {
			t.Errorf("ParseDist(%q).String() does not round-trip: %+v, %v", tc.in, rt, err)
		}
	}
}

// TestParseBurst is the flag-validation table for -burst.
func TestParseBurst(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []Phase
		wantErr string
	}{
		{in: "", want: nil},
		{in: "4096:250ms", want: []Phase{{Name: "burst", Samples: 4096, Pause: 250 * time.Millisecond}}},
		{in: "1:0s", want: []Phase{{Name: "burst", Samples: 1}}},
		{in: "4096", wantErr: "<on-samples>:<off-duration>"},
		{in: ":250ms", wantErr: "positive integer"},
		{in: "0:250ms", wantErr: "positive integer"},
		{in: "-5:250ms", wantErr: "positive integer"},
		{in: "x:250ms", wantErr: "positive integer"},
		{in: "64:", wantErr: "off-duration"},
		{in: "64:soon", wantErr: "off-duration"},
		{in: "64:-1s", wantErr: ">= 0"},
	} {
		got, err := ParseBurst(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseBurst(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseBurst(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
}

// TestWorkloadValidate is the spec-validation table.
func TestWorkloadValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		w       Workload
		wantErr string
	}{
		{name: "zero value", w: Workload{}},
		{name: "zipf ok", w: Workload{Dist: Dist{Kind: DistZipf, Theta: 1.2}}},
		{name: "negative theta", w: Workload{Dist: Dist{Kind: DistZipf, Theta: -0.5}}, wantErr: "theta"},
		{name: "negative churn", w: Workload{Churn: -1}, wantErr: "churn"},
		{name: "negative phase samples", w: Workload{Phases: []Phase{{Samples: -1}}}, wantErr: "negative"},
		{name: "ramp without rate", w: Workload{Phases: []Phase{{Samples: 10, RampTo: 100}}}, wantErr: "RampTo"},
		{name: "ramp without samples", w: Workload{Phases: []Phase{{Rate: 10, RampTo: 100}}}, wantErr: "RampTo"},
		{name: "ramp ok", w: Workload{Phases: []Phase{{Samples: 10, Rate: 10, RampTo: 100}}}},
	} {
		err := tc.w.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: validate() = %v, want nil", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: validate() = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// drainGen runs a connection generator to exhaustion, returning the
// batch schedule it produced.
type genBatch struct {
	Key, Start uint64
	N          int
}

func drainGen(cfg *Config, ci int) []genBatch {
	g := newConnGen(cfg, ci)
	var out []genBatch
	for {
		key, start, n, ok := g.nextBatch()
		if !ok {
			return out
		}
		out = append(out, genBatch{key, start, n})
	}
}

// TestWorkloadGoldenSequence pins the generator's determinism two ways:
// the same spec drains to the identical batch schedule twice, and the
// resulting per-stream count fingerprint matches a golden constant — so
// a refactor that silently changes the sample sequence (new PRNG, new
// key layout) fails here rather than quietly invalidating every
// recorded benchmark.
func TestWorkloadGoldenSequence(t *testing.T) {
	cfg := Config{
		Conns: 2, Streams: 16, SamplesPerStream: 64, BatchSize: 8, Period: 8,
		Workload: Workload{Dist: Dist{Kind: DistZipf, Theta: 0.99}, Seed: 42},
	}
	cfg.normalize()
	counts := make(map[uint64]uint64)
	for ci := 0; ci < cfg.Conns; ci++ {
		a, b := drainGen(&cfg, ci), drainGen(&cfg, ci)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("conn %d: same spec drained to different schedules", ci)
		}
		var total int
		for _, gb := range a {
			counts[gb.Key] += uint64(gb.N)
			total += gb.N
		}
		if total == 0 {
			t.Fatalf("conn %d: empty schedule", ci)
		}
	}
	const golden = uint64(0xb309202f99aab2f5) // Fingerprint of this spec's per-stream counts
	if got := Fingerprint(counts); got != golden {
		t.Errorf("zipf:0.99 seed=42 fingerprint = %#x, want golden %#x", got, golden)
	}
	// The hot ranks (each conn's lowest keys) dominate.
	if counts[0] <= counts[14] || counts[1] <= counts[15] {
		t.Errorf("zipf head not hot: counts[0]=%d counts[14]=%d counts[1]=%d counts[15]=%d",
			counts[0], counts[14], counts[1], counts[15])
	}
}

// TestWorkloadUniformLegacyShape: the zero-value workload reproduces
// the PR 5 generator exactly — every key gets SamplesPerStream samples
// in contiguous per-key batches, keys swept round-robin.
func TestWorkloadUniformLegacyShape(t *testing.T) {
	cfg := Config{Conns: 3, Streams: 12, SamplesPerStream: 192, BatchSize: 64, Period: 5}
	cfg.normalize()
	for ci := 0; ci < cfg.Conns; ci++ {
		counts := make(map[uint64]uint64)
		for _, gb := range drainGen(&cfg, ci) {
			if gb.Start != counts[gb.Key] {
				t.Fatalf("conn %d key %d: batch starts at %d, cursor at %d (non-contiguous)",
					ci, gb.Key, gb.Start, counts[gb.Key])
			}
			counts[gb.Key] += uint64(gb.N)
		}
		if len(counts) != 4 {
			t.Fatalf("conn %d touched %d keys, want 4", ci, len(counts))
		}
		for k, n := range counts {
			if int(k%uint64(cfg.Conns)) != ci {
				t.Errorf("conn %d generated for key %d outside its partition", ci, k)
			}
			if n != 192 {
				t.Errorf("conn %d key %d got %d samples, want 192", ci, k, n)
			}
		}
	}
}

// TestWorkloadChurnWindows: churn generations walk disjoint fresh key
// windows of Config.Streams keys, each stream receiving the divided
// quota, never revisiting an expired window.
func TestWorkloadChurnWindows(t *testing.T) {
	cfg := Config{
		Conns: 2, Streams: 8, SamplesPerStream: 60, BatchSize: 16, Period: 8, KeyBase: 1000,
		Workload: Workload{Churn: 3},
	}
	cfg.normalize()
	counts := make(map[uint64]uint64)
	for ci := 0; ci < cfg.Conns; ci++ {
		lastWindow := -1
		for _, gb := range drainGen(&cfg, ci) {
			// Windows must advance monotonically within a conn: once a
			// generation's window is left it is never revisited.
			win := int((gb.Key - 1000) / 8)
			if win < lastWindow {
				t.Fatalf("conn %d revisited window %d after window %d", ci, win, lastWindow)
			}
			lastWindow = win
			counts[gb.Key] += uint64(gb.N)
		}
	}
	if len(counts) != 8*3 {
		t.Fatalf("churn=3 touched %d distinct keys, want %d", len(counts), 8*3)
	}
	quota := uint64(60 / 3)
	for k, n := range counts {
		if k < 1000 || k >= 1000+24 {
			t.Errorf("key %d outside the churn windows [1000,1024)", k)
		}
		if n != quota {
			t.Errorf("key %d got %d samples, want quota %d", k, n, quota)
		}
	}
}

// TestSampleAtContract: SampleAt mirrors the generator's value function
// and the server's decode mapping — event streams populate Value only,
// magnitude streams Magnitude only, and the value depends only on
// (key, index).
func TestSampleAtContract(t *testing.T) {
	cfg := Config{Streams: 9, SamplesPerStream: 32, Period: 5, PatternStride: 1000,
		Workload: Workload{Mixed: true}}
	for key := uint64(0); key < 9; key++ {
		for i := uint64(0); i < 12; i++ {
			ks := SampleAt(cfg, key, i)
			if ks.Key != key {
				t.Fatalf("SampleAt key mismatch: %d != %d", ks.Key, key)
			}
			want := int64(i%5) + 1000*int64(key)
			if key%3 == 2 {
				if ks.Value != 0 || ks.Magnitude != float64(want) {
					t.Fatalf("magnitude stream %d idx %d = %+v, want Magnitude %d", key, i, ks, want)
				}
			} else if ks.Magnitude != 0 || ks.Value != want {
				t.Fatalf("event stream %d idx %d = %+v, want Value %d", key, i, ks, want)
			}
		}
	}
}
