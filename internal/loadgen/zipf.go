package loadgen

import (
	"math"
	"sort"
)

// splitmix64 advances *s and returns the next output of the SplitMix64
// generator — the same mixer the pool's key hash is built on. It is the
// harness's only randomness source, so every draw is a pure function of
// the seed: two runs with the same seed produce bit-identical key
// sequences on any platform and Go version.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps one splitmix64 output to [0,1) with 53 bits of
// precision.
func unitFloat(s *uint64) float64 {
	return float64(splitmix64(s)>>11) / (1 << 53)
}

// Zipf draws ranks in [0,n) with P(rank=k) ∝ 1/(k+1)^theta — rank 0 is
// the hottest key, the "celebrity stream" of a skewed workload. Theta 0
// is uniform; 0.99 is the classic YCSB hot-spot; above 1 the head takes
// almost everything. Draws are deterministic under the seed.
//
// For theta < 1 it uses the Gray et al. quick inverse (the technique of
// the Doppel exemplar's zipf.go): O(n) zeta precomputation once, O(1)
// per draw. That closed form is only valid below 1, so for theta ≥ 1 it
// falls back to an exact inverse-CDF table with an O(log n) binary
// search per draw — the harness prefers exactness over speed there,
// since theta 1.2 workloads exist to stress skew, not throughput.
type Zipf struct {
	n     uint64
	theta float64
	state uint64

	// Gray quick-inverse terms (theta < 1).
	alpha, zetan, eta, halfPowTheta float64

	// Exact inverse CDF (theta ≥ 1): cum[k] = P(rank ≤ k).
	cum []float64
}

// NewZipf returns a zipf(theta) rank source over [0,n) seeded with
// seed. n must be ≥ 1 and theta ≥ 0 and finite (ParseDist enforces the
// same bounds for flag input).
func NewZipf(n uint64, theta float64, seed uint64) *Zipf {
	if n < 1 {
		panic("loadgen: NewZipf needs n >= 1")
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		panic("loadgen: NewZipf needs a finite theta >= 0")
	}
	z := &Zipf{n: n, theta: theta, state: seed}
	// Mix the seed once so 0, 1, 2… seeds do not start in the raw
	// low-entropy region of the splitmix counter.
	splitmix64(&z.state)
	if theta < 1 {
		zetan := zeta(n, theta)
		zeta2 := zeta(2, theta)
		z.alpha = 1 / (1 - theta)
		z.zetan = zetan
		z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
		z.halfPowTheta = 1 + math.Pow(0.5, theta)
		return z
	}
	z.cum = make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		z.cum[k] = sum
	}
	for k := range z.cum {
		z.cum[k] /= sum
	}
	return z
}

// N returns the rank-space size.
func (z *Zipf) N() uint64 { return z.n }

// Next draws the next rank. It never allocates.
func (z *Zipf) Next() uint64 {
	u := unitFloat(&z.state)
	if z.cum != nil {
		// Exact path: first k with cum[k] > u.
		k := sort.SearchFloat64s(z.cum, u)
		if z.cum[k] == u && k+1 < len(z.cum) { // Search finds ==; we want strictly above
			k++
		}
		return uint64(k)
	}
	if z.n == 1 {
		return 0
	}
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// zeta returns the generalized harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}
