package loadgen

import (
	"math"
	"testing"
)

// TestZipfDeterministicUnderSeed: same (n, theta, seed) ⇒ bit-identical
// draw sequences; different seeds diverge.
func TestZipfDeterministicUnderSeed(t *testing.T) {
	for _, theta := range []float64{0, 0.6, 0.99, 1, 1.2} {
		a := NewZipf(1000, theta, 42)
		b := NewZipf(1000, theta, 42)
		c := NewZipf(1000, theta, 43)
		diverged := false
		for i := 0; i < 10000; i++ {
			av, bv, cv := a.Next(), b.Next(), c.Next()
			if av != bv {
				t.Fatalf("theta=%v draw %d: same seed diverged (%d != %d)", theta, i, av, bv)
			}
			if av != cv {
				diverged = true
			}
		}
		if !diverged {
			t.Fatalf("theta=%v: seeds 42 and 43 produced identical sequences", theta)
		}
	}
}

// TestZipfInRange: every draw lands in [0, n), for both the Gray fast
// path (theta < 1) and the exact inverse-CDF path (theta ≥ 1), and for
// tiny rank spaces.
func TestZipfInRange(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 17, 1024} {
		for _, theta := range []float64{0, 0.5, 0.99, 1, 1.2, 3} {
			z := NewZipf(n, theta, 7)
			for i := 0; i < 20000; i++ {
				if r := z.Next(); r >= n {
					t.Fatalf("n=%d theta=%v: draw %d out of range", n, theta, r)
				}
			}
		}
	}
}

// TestZipfSkewShape: rank 0's share grows with theta and matches the
// analytic zipf head probability to loose tolerance; theta 0 is
// uniform.
func TestZipfSkewShape(t *testing.T) {
	const n, draws = 100, 200000
	share := func(theta float64) float64 {
		z := NewZipf(n, theta, 11)
		hot := 0
		for i := 0; i < draws; i++ {
			if z.Next() == 0 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	prev := 0.0
	for _, theta := range []float64{0, 0.6, 0.99, 1.2} {
		got := share(theta)
		want := (1 / math.Pow(1, theta)) / zeta(n, theta)
		if math.Abs(got-want) > 0.25*want+0.01 {
			t.Errorf("theta=%v: rank-0 share %.4f, analytic %.4f", theta, got, want)
		}
		if got < prev {
			t.Errorf("theta=%v: rank-0 share %.4f below theta-smaller share %.4f", theta, got, prev)
		}
		prev = got
	}
	// theta 1.2: the head dominates — rank 0 alone takes over a quarter
	// (analytically 1/ζ₁₀₀(1.2) ≈ 0.277 of all traffic).
	if s := share(1.2); s < 0.25 {
		t.Errorf("theta=1.2: rank-0 share %.4f, want > 0.25 (head-dominated)", s)
	}
}

// TestZipfMonotoneRanks: lower ranks are at least as popular as higher
// ones (averaged over many draws) for every path.
func TestZipfMonotoneRanks(t *testing.T) {
	for _, theta := range []float64{0.6, 0.99, 1.2} {
		z := NewZipf(8, theta, 5)
		var counts [8]int
		for i := 0; i < 100000; i++ {
			counts[z.Next()]++
		}
		for r := 1; r < len(counts); r++ {
			// Allow small sampling noise on adjacent ranks.
			if float64(counts[r]) > 1.1*float64(counts[r-1])+100 {
				t.Errorf("theta=%v: rank %d drawn %d times > rank %d's %d", theta, r, counts[r], r-1, counts[r-1])
			}
		}
	}
}

// TestZipfNextAllocFree: draws never allocate on either path.
func TestZipfNextAllocFree(t *testing.T) {
	for _, theta := range []float64{0.99, 1.2} {
		z := NewZipf(4096, theta, 3)
		if n := testing.AllocsPerRun(1000, func() { z.Next() }); n != 0 {
			t.Fatalf("theta=%v: Next allocates %.1f objects/op, want 0", theta, n)
		}
	}
}
