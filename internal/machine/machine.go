// Package machine simulates the shared-memory multiprocessor the paper's
// evaluation ran on (an SGI Origin 2000 under the NANOS environment).
//
// The simulator is deliberately deterministic and single-stream: one
// application advances a virtual clock, declares how many CPUs are active
// at each instant, and the machine keeps the usage ledger that the
// 1 ms CPU sampler (paper Figure 3) and the work-conservation property
// tests consume. Parallel execution cost follows an explicit analytic
// model (fork/join overhead + iteration chunking + a memory-contention
// term), which preserves the *shape* of real speedup curves — sublinear,
// saturating — without pretending to reproduce Origin-2000 cycle counts.
package machine

import (
	"fmt"
	"time"
)

// Machine is a simulated multiprocessor with a virtual clock.
type Machine struct {
	cpus   int
	now    time.Duration
	active int

	busy time.Duration // ∫ active dt, in cpu-time

	observers []Observer
}

// Observer is notified whenever the active CPU count changes or time
// advances; `now` is the time at which `active` became the current count.
type Observer func(now time.Duration, active int)

// New returns a machine with the given CPU count and the clock at zero.
// One CPU is active initially (the master thread).
func New(cpus int) *Machine {
	if cpus < 1 {
		panic(fmt.Sprintf("machine: cpu count %d must be >= 1", cpus))
	}
	return &Machine{cpus: cpus, active: 1}
}

// CPUs returns the total number of processors.
func (m *Machine) CPUs() int { return m.cpus }

// Now returns the virtual clock.
func (m *Machine) Now() time.Duration { return m.now }

// Active returns the number of currently active CPUs.
func (m *Machine) Active() int { return m.active }

// BusyTime returns the accumulated CPU time (∫ active dt).
func (m *Machine) BusyTime() time.Duration { return m.busy }

// Utilization returns busy / (cpus · elapsed), in [0, 1].
func (m *Machine) Utilization() float64 {
	if m.now == 0 {
		return 0
	}
	return float64(m.busy) / (float64(m.cpus) * float64(m.now))
}

// Observe registers an observer; it is immediately told the current state.
func (m *Machine) Observe(o Observer) {
	m.observers = append(m.observers, o)
	o(m.now, m.active)
}

// SetActive declares the number of active CPUs from the current instant.
// It panics if n is outside [0, CPUs]: the simulated runtime must never
// oversubscribe the machine it was given.
func (m *Machine) SetActive(n int) {
	if n < 0 || n > m.cpus {
		panic(fmt.Sprintf("machine: active %d outside [0,%d]", n, m.cpus))
	}
	if n == m.active {
		return
	}
	m.active = n
	for _, o := range m.observers {
		o(m.now, m.active)
	}
}

// Advance moves the clock forward by d with the current active count.
func (m *Machine) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("machine: negative advance %v", d))
	}
	m.now += d
	m.busy += time.Duration(int64(d) * int64(m.active))
	for _, o := range m.observers {
		o(m.now, m.active)
	}
}

// Run executes a span with n CPUs active for duration d, then returns the
// active count to its previous value.
func (m *Machine) Run(n int, d time.Duration) {
	prev := m.active
	m.SetActive(n)
	m.Advance(d)
	m.SetActive(prev)
}

// Reset zeroes the clock and ledgers, keeping observers registered.
func (m *Machine) Reset() {
	m.now = 0
	m.busy = 0
	m.active = 1
}

// CostModel captures how long a parallel loop takes on p processors.
// For a loop of `trip` iterations costing PerIter each:
//
//	T(p) = Fork + Join + ceil(trip/p)·PerIter·(1 + Contention·(p−1))
//
// Fork/Join model the runtime's thread wake-up and barrier; the chunking
// term is the load-balance floor; Contention adds a per-processor memory
// interference slope that makes speedup saturate, as on real ccNUMA
// hardware.
type CostModel struct {
	Fork       time.Duration
	Join       time.Duration
	Contention float64
}

// DefaultCostModel has overheads in the range of 1990s-era parallel
// runtimes (tens of microseconds per fork/join) and mild contention.
func DefaultCostModel() CostModel {
	return CostModel{
		Fork:       20 * time.Microsecond,
		Join:       30 * time.Microsecond,
		Contention: 0.015,
	}
}

// LoopTime returns the execution time of a parallel loop on p processors.
func (c CostModel) LoopTime(trip int, perIter time.Duration, p int) time.Duration {
	if trip < 0 {
		panic(fmt.Sprintf("machine: negative trip count %d", trip))
	}
	if p < 1 {
		panic(fmt.Sprintf("machine: processor count %d must be >= 1", p))
	}
	if trip == 0 {
		return 0
	}
	chunks := (trip + p - 1) / p
	per := float64(perIter) * (1 + c.Contention*float64(p-1))
	t := time.Duration(float64(chunks) * per)
	if p > 1 {
		t += c.Fork + c.Join
	}
	return t
}

// Speedup returns T(1)/T(p) under the model for the given loop shape.
func (c CostModel) Speedup(trip int, perIter time.Duration, p int) float64 {
	t1 := c.LoopTime(trip, perIter, 1)
	tp := c.LoopTime(trip, perIter, p)
	if tp == 0 {
		return 1
	}
	return float64(t1) / float64(tp)
}
