package machine

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMachineClockMonotone(t *testing.T) {
	m := New(4)
	m.Advance(10 * time.Millisecond)
	m.Advance(0)
	m.Advance(5 * time.Millisecond)
	if m.Now() != 15*time.Millisecond {
		t.Fatalf("Now=%v", m.Now())
	}
}

func TestMachineNegativeAdvancePanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	m.Advance(-time.Millisecond)
}

func TestMachineBusyAccounting(t *testing.T) {
	m := New(8)
	m.Advance(10 * time.Millisecond) // 1 cpu × 10ms
	m.SetActive(8)
	m.Advance(5 * time.Millisecond) // 8 × 5ms
	m.SetActive(2)
	m.Advance(20 * time.Millisecond) // 2 × 20ms
	want := 10*time.Millisecond + 40*time.Millisecond + 40*time.Millisecond
	if m.BusyTime() != want {
		t.Fatalf("BusyTime=%v, want %v", m.BusyTime(), want)
	}
}

func TestMachineUtilization(t *testing.T) {
	m := New(4)
	if m.Utilization() != 0 {
		t.Fatal("zero-time utilization must be 0")
	}
	m.SetActive(4)
	m.Advance(time.Second)
	if u := m.Utilization(); u != 1 {
		t.Fatalf("full utilization=%v", u)
	}
	m.SetActive(0)
	m.Advance(time.Second)
	if u := m.Utilization(); u != 0.5 {
		t.Fatalf("half utilization=%v", u)
	}
}

func TestMachineSetActiveBounds(t *testing.T) {
	m := New(4)
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetActive(%d) did not panic", bad)
				}
			}()
			m.SetActive(bad)
		}()
	}
	m.SetActive(0)
	m.SetActive(4)
}

func TestMachineRunRestoresActive(t *testing.T) {
	m := New(16)
	m.SetActive(2)
	m.Run(16, 3*time.Millisecond)
	if m.Active() != 2 {
		t.Fatalf("active=%d after Run, want 2 restored", m.Active())
	}
	if m.BusyTime() != 48*time.Millisecond {
		t.Fatalf("busy=%v", m.BusyTime())
	}
}

func TestMachineObserverSeesChanges(t *testing.T) {
	m := New(8)
	var events []int
	m.Observe(func(now time.Duration, active int) {
		events = append(events, active)
	})
	m.SetActive(8)
	m.Advance(time.Millisecond)
	m.SetActive(1)
	// Initial callback (1), change to 8, advance (8), change to 1.
	if len(events) < 4 || events[0] != 1 || events[1] != 8 || events[len(events)-1] != 1 {
		t.Fatalf("events=%v", events)
	}
}

func TestMachineReset(t *testing.T) {
	m := New(4)
	m.SetActive(4)
	m.Advance(time.Second)
	m.Reset()
	if m.Now() != 0 || m.BusyTime() != 0 || m.Active() != 1 {
		t.Fatalf("after reset now=%v busy=%v active=%d", m.Now(), m.BusyTime(), m.Active())
	}
}

func TestMachineNewPanicsOnZeroCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestCostModelSerialNoOverhead(t *testing.T) {
	c := DefaultCostModel()
	got := c.LoopTime(100, time.Millisecond, 1)
	if got != 100*time.Millisecond {
		t.Fatalf("T(1)=%v, want exactly 100ms (no fork/join on 1 cpu)", got)
	}
}

func TestCostModelZeroTrip(t *testing.T) {
	c := DefaultCostModel()
	if c.LoopTime(0, time.Millisecond, 8) != 0 {
		t.Fatal("empty loop must cost 0")
	}
}

func TestCostModelSpeedupProperties(t *testing.T) {
	c := DefaultCostModel()
	trip, per := 1024, 500*time.Microsecond
	if s := c.Speedup(trip, per, 1); s != 1 {
		t.Fatalf("S(1)=%v, want 1", s)
	}
	prev := 1.0
	for p := 2; p <= 16; p *= 2 {
		s := c.Speedup(trip, per, p)
		if s <= prev*0.9 {
			t.Fatalf("S(%d)=%v collapsed below S(%d)=%v", p, s, p/2, prev)
		}
		if s > float64(p) {
			t.Fatalf("S(%d)=%v exceeds linear", p, s)
		}
		prev = s
	}
}

func TestCostModelSublinearWithContention(t *testing.T) {
	c := CostModel{Fork: 0, Join: 0, Contention: 0.1}
	s := c.Speedup(1000, time.Millisecond, 10)
	if s >= 10 {
		t.Fatalf("S(10)=%v, want sublinear under contention", s)
	}
	if s < 4 {
		t.Fatalf("S(10)=%v, implausibly low", s)
	}
}

func TestCostModelChunkingFloor(t *testing.T) {
	// 10 iterations on 8 CPUs: two chunks — same as on 5 CPUs.
	c := CostModel{Fork: 0, Join: 0, Contention: 0}
	t8 := c.LoopTime(10, time.Millisecond, 8)
	t5 := c.LoopTime(10, time.Millisecond, 5)
	if t8 != t5 {
		t.Fatalf("chunk floor broken: T(8)=%v T(5)=%v", t8, t5)
	}
}

func TestCostModelPanics(t *testing.T) {
	c := DefaultCostModel()
	for name, f := range map[string]func(){
		"negative trip": func() { c.LoopTime(-1, time.Millisecond, 1) },
		"zero procs":    func() { c.LoopTime(1, time.Millisecond, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: work conservation — for any sequence of (active, duration)
// spans, BusyTime equals the sum of active·duration.
func TestMachinePropertyWorkConservation(t *testing.T) {
	f := func(spans []struct {
		Active uint8
		Ms     uint8
	}) bool {
		m := New(16)
		var want time.Duration
		for _, s := range spans {
			a := int(s.Active % 17)
			d := time.Duration(s.Ms) * time.Millisecond
			m.SetActive(a)
			m.Advance(d)
			want += time.Duration(int64(d) * int64(a))
		}
		return m.BusyTime() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: speedup is always within (0, p] and S(1) == 1.
func TestCostModelPropertySpeedupBounded(t *testing.T) {
	f := func(tripRaw uint16, perRaw uint16, pRaw uint8) bool {
		trip := int(tripRaw%2000) + 1
		per := time.Duration(int(perRaw%1000)+1) * time.Microsecond
		p := int(pRaw%32) + 1
		c := DefaultCostModel()
		s := c.Speedup(trip, per, p)
		return s > 0 && s <= float64(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
