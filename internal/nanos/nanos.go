// Package nanos is the NANOS-like parallel runtime substrate: it executes
// applications built from sequential spans, OpenMP-style encapsulated
// parallel loops, and MPI-style communication spans on a simulated
// machine, with per-application processor allocation that can change at
// run time (the lever the SelfAnalyzer-driven scheduling policy pulls).
//
// Parallel loops are dispatched through a ditools.Registry so that tools
// (the DPD + SelfAnalyzer) can observe the loop-address stream exactly as
// the paper's DITools interposition does.
package nanos

import (
	"fmt"
	"time"

	"dpd/internal/ditools"
	"dpd/internal/machine"
)

// LoopID is the synthetic "address" of an encapsulated parallel loop
// function (what DITools passes to the DPD).
type LoopID int64

// Runtime executes one application on a simulated machine.
type Runtime struct {
	mach  *machine.Machine
	cost  machine.CostModel
	alloc int
	reg   *ditools.Registry // may be nil: no interposition

	loopsExecuted uint64
	parallelTime  time.Duration
	serialTime    time.Duration
}

// New returns a runtime on mach with `alloc` processors initially
// allocated. reg may be nil to run without interposition.
func New(mach *machine.Machine, cost machine.CostModel, alloc int, reg *ditools.Registry) (*Runtime, error) {
	if alloc < 1 || alloc > mach.CPUs() {
		return nil, fmt.Errorf("nanos: allocation %d outside [1,%d]", alloc, mach.CPUs())
	}
	return &Runtime{mach: mach, cost: cost, alloc: alloc, reg: reg}, nil
}

// MustNew panics on configuration errors.
func MustNew(mach *machine.Machine, cost machine.CostModel, alloc int, reg *ditools.Registry) *Runtime {
	rt, err := New(mach, cost, alloc, reg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Machine returns the underlying machine.
func (rt *Runtime) Machine() *machine.Machine { return rt.mach }

// Registry returns the interposition registry (nil if none).
func (rt *Runtime) Registry() *ditools.Registry { return rt.reg }

// Allocation returns the processors currently allocated.
func (rt *Runtime) Allocation() int { return rt.alloc }

// SetAllocation changes the processor allocation, effective from the next
// parallel construct — matching runtimes that apply allocation changes at
// region boundaries.
func (rt *Runtime) SetAllocation(p int) error {
	if p < 1 || p > rt.mach.CPUs() {
		return fmt.Errorf("nanos: allocation %d outside [1,%d]", p, rt.mach.CPUs())
	}
	rt.alloc = p
	return nil
}

// Now returns the virtual time.
func (rt *Runtime) Now() time.Duration { return rt.mach.Now() }

// LoopsExecuted returns the number of parallel loops executed.
func (rt *Runtime) LoopsExecuted() uint64 { return rt.loopsExecuted }

// ParallelTime returns the wall time spent inside parallel loops.
func (rt *Runtime) ParallelTime() time.Duration { return rt.parallelTime }

// SerialTime returns the wall time spent in sequential spans.
func (rt *Runtime) SerialTime() time.Duration { return rt.serialTime }

// Sequential executes a serial span on the master thread.
func (rt *Runtime) Sequential(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("nanos: negative duration %v", d))
	}
	rt.mach.SetActive(1)
	rt.mach.Advance(d)
	rt.serialTime += d
}

// ParallelFor executes an encapsulated parallel loop: interposition fires
// first with the loop's address (paper Figure 6), then the loop body runs
// on min(allocation, trip) processors under the machine's cost model.
// It returns the loop's wall-clock duration.
func (rt *Runtime) ParallelFor(id LoopID, trip int, perIter time.Duration) time.Duration {
	if trip < 0 {
		panic(fmt.Sprintf("nanos: negative trip count %d", trip))
	}
	var dur time.Duration
	body := func() {
		p := rt.alloc
		if trip < p {
			p = trip
		}
		if p < 1 {
			p = 1
		}
		dur = rt.cost.LoopTime(trip, perIter, p)
		prev := rt.mach.Active()
		rt.mach.SetActive(p)
		rt.mach.Advance(dur)
		rt.mach.SetActive(prev)
		rt.loopsExecuted++
		rt.parallelTime += dur
	}
	if rt.reg != nil {
		rt.reg.Call(rt.mach.Now(), int64(id), body)
	} else {
		body()
	}
	return dur
}

// Communicate models an MPI-style exchange: `procs` processes each keep
// one thread active (polling/copying) for duration d. This is what closes
// parallelism between computation phases in the paper's FT trace.
func (rt *Runtime) Communicate(procs int, d time.Duration) {
	if procs < 1 || procs > rt.mach.CPUs() {
		panic(fmt.Sprintf("nanos: communicating procs %d outside [1,%d]", procs, rt.mach.CPUs()))
	}
	if d < 0 {
		panic(fmt.Sprintf("nanos: negative duration %v", d))
	}
	prev := rt.mach.Active()
	rt.mach.SetActive(procs)
	rt.mach.Advance(d)
	rt.mach.SetActive(prev)
}

// Idle models a fully idle span (e.g. waiting on an external event).
func (rt *Runtime) Idle(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("nanos: negative duration %v", d))
	}
	prev := rt.mach.Active()
	rt.mach.SetActive(0)
	rt.mach.Advance(d)
	rt.mach.SetActive(prev)
}

// Loop describes a parallel loop of an application's iterative body.
type Loop struct {
	// ID is the encapsulated function's address.
	ID LoopID
	// Trip is the iteration count of the loop.
	Trip int
	// PerIter is the cost of one iteration.
	PerIter time.Duration
	// Repeat executes the loop this many times consecutively (an inner
	// sequential loop around one parallel loop). 0 means once.
	Repeat int
}

// Segment is one element of an application's iteration body.
type Segment struct {
	// Exactly one of the following is meaningful.
	// Loop is a parallel loop when Loop.ID != 0.
	Loop Loop
	// Serial is a sequential span when > 0.
	Serial time.Duration
	// CommProcs/CommTime model a communication span when CommProcs > 0.
	CommProcs int
	CommTime  time.Duration
}

// RunSegment executes one segment.
func (rt *Runtime) RunSegment(s Segment) {
	switch {
	case s.Loop.ID != 0:
		n := s.Loop.Repeat
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			rt.ParallelFor(s.Loop.ID, s.Loop.Trip, s.Loop.PerIter)
		}
	case s.Serial > 0:
		rt.Sequential(s.Serial)
	case s.CommProcs > 0:
		rt.Communicate(s.CommProcs, s.CommTime)
	}
}

// RunIteration executes one pass over the segments (one iteration of the
// application's main sequential loop).
func (rt *Runtime) RunIteration(body []Segment) time.Duration {
	start := rt.mach.Now()
	for _, s := range body {
		rt.RunSegment(s)
	}
	return rt.mach.Now() - start
}
