package nanos

import (
	"testing"
	"time"

	"dpd/internal/ditools"
	"dpd/internal/machine"
)

func newRT(t *testing.T, cpus, alloc int) (*Runtime, *ditools.Registry) {
	t.Helper()
	m := machine.New(cpus)
	reg := ditools.NewRegistry()
	rt, err := New(m, machine.DefaultCostModel(), alloc, reg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, reg
}

func TestNewValidatesAllocation(t *testing.T) {
	m := machine.New(4)
	if _, err := New(m, machine.DefaultCostModel(), 0, nil); err == nil {
		t.Error("alloc 0 accepted")
	}
	if _, err := New(m, machine.DefaultCostModel(), 5, nil); err == nil {
		t.Error("alloc > cpus accepted")
	}
}

func TestSequentialAdvancesClockOneCPU(t *testing.T) {
	rt, _ := newRT(t, 8, 8)
	rt.Sequential(10 * time.Millisecond)
	if rt.Now() != 10*time.Millisecond {
		t.Fatalf("Now=%v", rt.Now())
	}
	if rt.Machine().BusyTime() != 10*time.Millisecond {
		t.Fatalf("busy=%v, want 1-cpu time", rt.Machine().BusyTime())
	}
	if rt.SerialTime() != 10*time.Millisecond {
		t.Fatalf("serial=%v", rt.SerialTime())
	}
}

func TestParallelForUsesAllocation(t *testing.T) {
	rt, _ := newRT(t, 16, 8)
	var active []int
	rt.Machine().Observe(func(_ time.Duration, a int) { active = append(active, a) })
	rt.ParallelFor(0x100, 800, 100*time.Microsecond)
	peak := 0
	for _, a := range active {
		if a > peak {
			peak = a
		}
	}
	if peak != 8 {
		t.Fatalf("peak active=%d, want allocation 8", peak)
	}
	if rt.LoopsExecuted() != 1 {
		t.Fatalf("loops=%d", rt.LoopsExecuted())
	}
}

func TestParallelForClampsToTrip(t *testing.T) {
	rt, _ := newRT(t, 16, 16)
	var peak int
	rt.Machine().Observe(func(_ time.Duration, a int) {
		if a > peak {
			peak = a
		}
	})
	rt.ParallelFor(0x100, 3, time.Millisecond) // only 3 iterations
	if peak != 3 {
		t.Fatalf("peak=%d, want clamp to trip 3", peak)
	}
}

func TestParallelForFiresInterposition(t *testing.T) {
	rt, reg := newRT(t, 4, 4)
	var addrs []int64
	reg.OnCall(func(e ditools.Event) { addrs = append(addrs, e.Addr) })
	rt.ParallelFor(0xAAA, 10, time.Microsecond)
	rt.ParallelFor(0xBBB, 10, time.Microsecond)
	rt.ParallelFor(0xAAA, 10, time.Microsecond)
	want := []int64{0xAAA, 0xBBB, 0xAAA}
	if len(addrs) != 3 {
		t.Fatalf("addrs=%v", addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs=%v, want %v", addrs, want)
		}
	}
}

func TestParallelForInterpositionSeesPreCallTime(t *testing.T) {
	rt, reg := newRT(t, 4, 4)
	var at time.Duration = -1
	reg.OnCall(func(e ditools.Event) { at = e.Now })
	rt.Sequential(5 * time.Millisecond)
	rt.ParallelFor(0x1, 100, time.Millisecond)
	if at != 5*time.Millisecond {
		t.Fatalf("interposition time=%v, want 5ms (before loop body)", at)
	}
}

func TestParallelForWithoutRegistry(t *testing.T) {
	m := machine.New(4)
	rt := MustNew(m, machine.DefaultCostModel(), 4, nil)
	d := rt.ParallelFor(0x1, 100, time.Millisecond)
	if d <= 0 {
		t.Fatal("loop took no time")
	}
}

func TestMoreProcessorsRunFaster(t *testing.T) {
	run := func(alloc int) time.Duration {
		m := machine.New(16)
		rt := MustNew(m, machine.DefaultCostModel(), alloc, nil)
		return rt.ParallelFor(0x1, 1600, 250*time.Microsecond)
	}
	t1, t4, t16 := run(1), run(4), run(16)
	if !(t16 < t4 && t4 < t1) {
		t.Fatalf("times not decreasing: %v %v %v", t1, t4, t16)
	}
	// Speedup must stay sublinear.
	if s := float64(t1) / float64(t16); s > 16 {
		t.Fatalf("S(16)=%v superlinear", s)
	}
}

func TestSetAllocationTakesEffectNextLoop(t *testing.T) {
	rt, _ := newRT(t, 16, 16)
	d16 := rt.ParallelFor(0x1, 1600, 100*time.Microsecond)
	if err := rt.SetAllocation(2); err != nil {
		t.Fatal(err)
	}
	d2 := rt.ParallelFor(0x1, 1600, 100*time.Microsecond)
	if d2 <= d16 {
		t.Fatalf("d2=%v not slower than d16=%v", d2, d16)
	}
	if err := rt.SetAllocation(0); err == nil {
		t.Fatal("alloc 0 accepted")
	}
	if err := rt.SetAllocation(17); err == nil {
		t.Fatal("alloc 17 accepted")
	}
}

func TestCommunicateActivatesProcs(t *testing.T) {
	rt, _ := newRT(t, 16, 16)
	var seen []int
	rt.Machine().Observe(func(_ time.Duration, a int) { seen = append(seen, a) })
	rt.Communicate(4, 2*time.Millisecond)
	found := false
	for _, a := range seen {
		if a == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("active counts %v never showed 4 communicating procs", seen)
	}
	if rt.Machine().Active() != 1 {
		t.Fatal("active not restored after Communicate")
	}
}

func TestIdleZeroCPUs(t *testing.T) {
	rt, _ := newRT(t, 4, 4)
	busy0 := rt.Machine().BusyTime()
	rt.Idle(10 * time.Millisecond)
	if rt.Machine().BusyTime() != busy0 {
		t.Fatal("idle accumulated busy time")
	}
	if rt.Now() != 10*time.Millisecond {
		t.Fatal("idle did not advance the clock")
	}
}

func TestRunIterationSegments(t *testing.T) {
	rt, reg := newRT(t, 8, 8)
	body := []Segment{
		{Serial: 2 * time.Millisecond},
		{Loop: Loop{ID: 0x10, Trip: 80, PerIter: 100 * time.Microsecond}},
		{Loop: Loop{ID: 0x20, Trip: 80, PerIter: 100 * time.Microsecond, Repeat: 3}},
		{CommProcs: 4, CommTime: time.Millisecond},
	}
	dur := rt.RunIteration(body)
	if dur <= 3*time.Millisecond {
		t.Fatalf("iteration too fast: %v", dur)
	}
	if reg.Calls() != 4 { // one + three repeats
		t.Fatalf("interposed calls=%d, want 4", reg.Calls())
	}
	if reg.CallsTo(0x20) != 3 {
		t.Fatalf("calls to 0x20=%d, want 3", reg.CallsTo(0x20))
	}
}

func TestRunIterationDeterministic(t *testing.T) {
	body := []Segment{
		{Serial: time.Millisecond},
		{Loop: Loop{ID: 0x1, Trip: 100, PerIter: 50 * time.Microsecond}},
	}
	run := func() time.Duration {
		m := machine.New(8)
		rt := MustNew(m, machine.DefaultCostModel(), 8, nil)
		return rt.RunIteration(body)
	}
	if run() != run() {
		t.Fatal("identical runs differ")
	}
}

func TestParallelForPanicsOnNegativeTrip(t *testing.T) {
	rt, _ := newRT(t, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("negative trip did not panic")
		}
	}()
	rt.ParallelFor(0x1, -1, time.Millisecond)
}

func TestStatsAccumulate(t *testing.T) {
	rt, _ := newRT(t, 8, 8)
	rt.Sequential(time.Millisecond)
	rt.ParallelFor(0x1, 10, time.Millisecond)
	rt.Sequential(time.Millisecond)
	if rt.SerialTime() != 2*time.Millisecond {
		t.Fatalf("serial=%v", rt.SerialTime())
	}
	if rt.ParallelTime() <= 0 {
		t.Fatalf("parallel=%v", rt.ParallelTime())
	}
	if rt.Now() != rt.SerialTime()+rt.ParallelTime() {
		t.Fatalf("now=%v != serial+parallel=%v", rt.Now(), rt.SerialTime()+rt.ParallelTime())
	}
}
