// Package obs is the zero-allocation observability core shared by the
// serving layers: fixed-array latency histograms (promoted from the
// load harness so server and client quantiles are bit-identical), a
// lock-free flight recorder of typed transition events, strided
// latency samplers for hot paths, and Prometheus text-exposition
// helpers. Nothing here allocates on a record path, takes a lock on an
// unsampled path, or imports any other dpd package — obs sits below
// pool, cluster and server so all three can thread it through.
package obs

import (
	"math"
	"math/bits"
	"time"
)

// Histogram geometry: durations below 2^5 ns get one exact bucket per
// nanosecond; above that, each power-of-two octave is split into 16
// log-spaced sub-buckets (≤ 6.25% relative error), up to 2^histMaxLen
// ns (~13 days), beyond which values clamp into the last bucket. The
// whole histogram is one fixed array — recording is an index
// computation and a counter increment, merging is element-wise
// addition, and neither ever allocates, so the harness can time every
// batch without perturbing the allocation-free paths it referees.
// (This is the fixed log-bucket idiom of the Doppel exemplar's stats
// package, sized for nanosecond latencies.)
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave
	histExact   = 2 * histSub      // values < histExact ns are exact
	histMinLen  = histSubBits + 2  // bits.Len of the first split octave
	histMaxLen  = 50               // last octave: [2^49, 2^50) ns
	histBuckets = histExact + (histMaxLen-histMinLen+1)*histSub
)

// Hist is a fixed-size log-spaced latency histogram: zero allocations
// on Record and Merge, mergeable across goroutines and connections
// (each recorder owns its own Hist; merge when done), with interpolated
// quantiles. The zero value is ready to use. A Hist is not safe for
// concurrent use.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    int64 // nanoseconds; 2^63 ns of summed latency ≈ 292 years
	max    int64
}

// histBucket maps a nanosecond value to its bucket index. Negative
// values clamp to 0, values at or above 2^histMaxLen ns clamp to the
// last bucket.
func histBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histExact {
		return int(v)
	}
	e := bits.Len64(v)
	if e > histMaxLen {
		return histBuckets - 1
	}
	sub := int((v >> uint(e-1-histSubBits)) & (histSub - 1))
	return histExact + (e-histMinLen)*histSub + sub
}

// histBounds returns bucket idx's half-open value range [lo, hi) in
// nanoseconds.
func histBounds(idx int) (lo, hi int64) {
	if idx < histExact {
		return int64(idx), int64(idx) + 1
	}
	block := idx - histExact
	e := block/histSub + histMinLen
	sub := int64(block % histSub)
	width := int64(1) << uint(e-1-histSubBits)
	lo = int64(1)<<uint(e-1) + sub*width
	return lo, lo + width
}

// Record adds one duration. It never allocates.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	h.counts[histBucket(ns)]++
	h.n++
	if ns > 0 {
		h.sum += ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds o into h bucket-by-bucket. Merging is commutative and
// associative, so per-goroutine histograms can be combined in any
// order. It never allocates.
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded durations.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the largest recorded duration (exact, not bucketed).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Sum returns the summed recorded duration.
func (h *Hist) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the arithmetic mean of recorded durations.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.n))
}

// Reset clears the histogram for reuse.
func (h *Hist) Reset() { *h = Hist{} }

// Quantile returns the q-quantile (q in [0,1]) of the recorded
// durations, linearly interpolated inside the winning bucket and
// clamped to the exact observed maximum. An empty histogram reports 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := histBounds(i)
			frac := float64(rank-cum) / float64(c)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
		cum += c
	}
	return time.Duration(h.max)
}
