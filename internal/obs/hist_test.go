package obs

import (
	"math"
	"testing"
	"time"
)

// splitmix64 advances the test's deterministic value stream (same
// finalizer the load harness seeds its generators with).
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestHistBucketEdges: 0 and negative clamp to bucket 0, small values
// are exact, octave boundaries land in their own octave's first
// sub-bucket, and values at or beyond the cap clamp into the last
// bucket instead of indexing out of range.
func TestHistBucketEdges(t *testing.T) {
	if got := histBucket(0); got != 0 {
		t.Errorf("histBucket(0) = %d, want 0", got)
	}
	if got := histBucket(-5); got != 0 {
		t.Errorf("histBucket(-5) = %d, want 0 (negative clamps)", got)
	}
	for v := int64(0); v < histExact; v++ {
		if got := histBucket(v); got != int(v) {
			t.Fatalf("histBucket(%d) = %d, want exact %d", v, got, v)
		}
	}
	// First split octave starts right after the exact region.
	if got := histBucket(histExact); got != histExact {
		t.Errorf("histBucket(%d) = %d, want %d", histExact, got, histExact)
	}
	// Octave boundaries: 2^k maps to that octave's sub-bucket 0, and
	// 2^k - 1 to the previous octave's last sub-bucket.
	for k := uint(6); k < histMaxLen; k++ {
		lo := int64(1) << (k - 1)
		if histBucket(lo) != histBucket(lo+1) && histBucket(lo)+1 != histBucket(lo+1) {
			t.Fatalf("2^%d: neighbors map non-monotonically", k-1)
		}
		if a, b := histBucket(lo-1), histBucket(lo); a >= b {
			t.Fatalf("2^%d boundary: bucket(%d)=%d !< bucket(%d)=%d", k-1, lo-1, a, lo, b)
		}
	}
	// Overflow clamp: the cap, MaxInt64, and everything between land in
	// the final bucket.
	last := histBuckets - 1
	for _, v := range []int64{1 << histMaxLen, 1<<histMaxLen + 12345, math.MaxInt64} {
		if got := histBucket(v); got != last {
			t.Errorf("histBucket(%d) = %d, want clamp to last bucket %d", v, got, last)
		}
	}
	// Bounds invert the mapping: every bucket's lo maps back to itself.
	for idx := 0; idx < histBuckets; idx++ {
		lo, hi := histBounds(idx)
		if hi <= lo {
			t.Fatalf("bucket %d: bounds [%d,%d) empty", idx, lo, hi)
		}
		if got := histBucket(lo); got != idx {
			t.Fatalf("bucket %d: histBucket(lo=%d) = %d", idx, lo, got)
		}
		if got := histBucket(hi - 1); got != idx {
			t.Fatalf("bucket %d: histBucket(hi-1=%d) = %d", idx, hi-1, got)
		}
	}
}

// TestHistQuantileInterpolation: quantiles of a known distribution come
// back within one bucket's resolution, interpolation is monotone in q,
// and the extremes behave (empty hist → 0; q=1 → exact max).
func TestHistQuantileInterpolation(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	// 1..1000 ns each once: quantile q ≈ 1000q ns, within 6.25% bucket
	// error plus interpolation slack.
	for v := 1; v <= 1000; v++ {
		h.Record(time.Duration(v))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := float64(h.Quantile(q))
		want := 1000 * q
		if math.Abs(got-want) > 0.08*want+2 {
			t.Errorf("Quantile(%v) = %v, want ≈ %v", q, got, want)
		}
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want the exact max 1000", got)
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v → %v after %v", q, cur, prev)
		}
		prev = cur
	}
	// A point mass sits in one exact bucket: all quantiles equal it.
	var p Hist
	for i := 0; i < 100; i++ {
		p.Record(17)
	}
	for _, q := range []float64{0.01, 0.5, 0.999} {
		if got := p.Quantile(q); got < 17 || got > 18 {
			t.Errorf("point mass Quantile(%v) = %v, want 17", q, got)
		}
	}
}

// TestHistMergeAssociativeCommutative: (a⊕b)⊕c equals a⊕(b⊕c) and b⊕a
// equals a⊕b bucket-for-bucket — per-goroutine histograms can be folded
// in any order.
func TestHistMergeAssociativeCommutative(t *testing.T) {
	mk := func(seed uint64, n int) *Hist {
		h := &Hist{}
		s := seed
		for i := 0; i < n; i++ {
			h.Record(time.Duration(splitmix64(&s) % (1 << 22)))
		}
		return h
	}
	merge := func(hs ...*Hist) *Hist {
		out := &Hist{}
		for _, h := range hs {
			out.Merge(h)
		}
		return out
	}
	a, b, c := mk(1, 500), mk(2, 300), mk(3, 700)
	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	swapped := merge(b, a, c)
	for _, o := range []*Hist{right, swapped} {
		if *left != *o {
			t.Fatal("merge is not associative/commutative: merged histograms differ")
		}
	}
	if left.Count() != 1500 {
		t.Fatalf("merged Count = %d, want 1500", left.Count())
	}
	if left.Max() != a.Max() && left.Max() != b.Max() && left.Max() != c.Max() {
		t.Fatalf("merged Max %v is none of the inputs' maxima", left.Max())
	}
}

// TestHistRecordMergeAllocFree is the measurement layer's own alloc
// gate: recording a latency and merging histograms are 0 allocs/op, so
// enabling measurement cannot disturb the allocation-free paths the
// harness referees.
func TestHistRecordMergeAllocFree(t *testing.T) {
	var h, o Hist
	i := int64(1)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(time.Duration(i * 37))
		i++
	}); n != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		o.Merge(&h)
	}); n != 0 {
		t.Fatalf("Merge allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
	}); n != 0 {
		t.Fatalf("Quantile allocates %.1f objects/op, want 0", n)
	}
}

// TestHistMeanMax: exact mean and max tracking.
func TestHistMeanMax(t *testing.T) {
	var h Hist
	for _, v := range []time.Duration{10, 20, 30} {
		h.Record(v)
	}
	if got := h.Mean(); got != 20 {
		t.Errorf("Mean = %v, want 20", got)
	}
	if got := h.Max(); got != 30 {
		t.Errorf("Max = %v, want 30", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("Reset left state behind: %d %v %v", h.Count(), h.Max(), h.Mean())
	}
}
