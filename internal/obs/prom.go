package obs

import "strconv"

// Prometheus text-exposition helpers (format version 0.0.4), hand
// rolled so the serving layer needs no client-library dependency. Each
// Append* writes one complete metric family — a "# TYPE" header plus
// its sample lines — onto b, returning the grown slice. Metric and
// label names are caller-supplied constants; values are rendered with
// the shortest round-trippable float form, so output for fixed inputs
// is byte-stable (golden-file testable).

// AppendPromType writes the "# TYPE name kind" header line.
func AppendPromType(b []byte, name, kind string) []byte {
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, kind...)
	return append(b, '\n')
}

// AppendPromSample writes one un-labeled sample line.
func AppendPromSample(b []byte, name string, v float64) []byte {
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}

// AppendPromCounter writes a complete single-sample counter family.
func AppendPromCounter(b []byte, name string, v uint64) []byte {
	b = AppendPromType(b, name, "counter")
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	return append(b, '\n')
}

// AppendPromGauge writes a complete single-sample gauge family.
func AppendPromGauge(b []byte, name string, v float64) []byte {
	b = AppendPromType(b, name, "gauge")
	return AppendPromSample(b, name, v)
}

// AppendPromLabeled writes one sample line with a single label, e.g.
// name{label="value"} v.
func AppendPromLabeled(b []byte, name, label, value string, v float64) []byte {
	b = append(b, name...)
	b = append(b, '{')
	b = append(b, label...)
	b = append(b, `="`...)
	b = append(b, value...)
	b = append(b, `"} `...)
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}

// AppendPromSummary writes a complete summary family from a HistStat:
// p50/p99/p999 quantile lines plus _sum and _count, with nanosecond
// quantiles converted to the seconds Prometheus conventions expect.
func AppendPromSummary(b []byte, name string, st HistStat) []byte {
	b = AppendPromType(b, name, "summary")
	b = AppendPromLabeled(b, name, "quantile", "0.5", float64(st.P50Ns)/1e9)
	b = AppendPromLabeled(b, name, "quantile", "0.99", float64(st.P99Ns)/1e9)
	b = AppendPromLabeled(b, name, "quantile", "0.999", float64(st.P999Ns)/1e9)
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = strconv.AppendFloat(b, float64(st.SumNs)/1e9, 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendUint(b, st.Count, 10)
	return append(b, '\n')
}
