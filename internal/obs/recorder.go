package obs

import (
	"sync/atomic"
	"time"
)

// Subsystem labels which layer recorded a flight-recorder event; each
// subsystem carries its own monotonic sequence number, so per-layer
// ordering survives even when the shared ring interleaves layers.
type Subsystem uint8

// The recorded subsystems.
const (
	// SubPool is the shard pool and its adaptive placement tier.
	SubPool Subsystem = iota
	// SubCluster is the cluster tier (migration, failover, tables).
	SubCluster
	// SubCheckpoint is the durability loop.
	SubCheckpoint
	// SubServer is the serving layer itself (admission, overload).
	SubServer
	numSubsystems
)

// String names the subsystem for event dumps.
func (s Subsystem) String() string {
	switch s {
	case SubPool:
		return "pool"
	case SubCluster:
		return "cluster"
	case SubCheckpoint:
		return "checkpoint"
	case SubServer:
		return "server"
	}
	return "unknown"
}

// EventKind is the type tag of one flight-recorder event.
type EventKind uint8

// The recorded transition kinds. These are cold-path transitions only —
// nothing here fires per sample or per frame.
const (
	// EvNone marks an empty ring slot; never recorded.
	EvNone EventKind = iota
	// EvPromote: the adaptive tier moved stream Key onto hot slot Aux.
	EvPromote
	// EvDemote: hot stream Key moved back to its shard from slot Aux.
	EvDemote
	// EvRebalance: the shard table changed from Key to Aux shards.
	EvRebalance
	// EvMigrationFence: stream Key fenced for migration toward epoch Aux.
	EvMigrationFence
	// EvMigrationShip: stream Key's state acknowledged by the target
	// (Aux = 1 when detector state was shipped, 0 for a zero-stream
	// ownership transfer).
	EvMigrationShip
	// EvMigrationFlip: the epoch-Aux table committing stream Key's move
	// became this node's routing truth.
	EvMigrationFlip
	// EvMigrationAbort: the move of stream Key failed and rolled back
	// (Aux = the epoch of the rollback pin, 0 when no pin was needed).
	EvMigrationAbort
	// EvFailover: a member was declared dead and removed; the surviving
	// table has epoch Aux and Key members.
	EvFailover
	// EvEpochInstall: routing table epoch Key installed with Aux
	// replicas promoted into the pool.
	EvEpochInstall
	// EvCheckpointBegin: checkpoint sequence Key started serializing.
	EvCheckpointBegin
	// EvCheckpointCommit: checkpoint sequence Key is durable; Aux is the
	// serialized size in bytes.
	EvCheckpointCommit
	// EvCheckpointError: checkpoint sequence Key failed.
	EvCheckpointError
	// EvOverloadShed: an overloaded error frame was sent (Aux = 1 for a
	// connection-admission reject, 2 for a pending-memory shed).
	EvOverloadShed
)

// String names the event kind for event dumps.
func (k EventKind) String() string {
	switch k {
	case EvPromote:
		return "promote"
	case EvDemote:
		return "demote"
	case EvRebalance:
		return "rebalance"
	case EvMigrationFence:
		return "migration_fence"
	case EvMigrationShip:
		return "migration_ship"
	case EvMigrationFlip:
		return "migration_flip"
	case EvMigrationAbort:
		return "migration_abort"
	case EvFailover:
		return "failover"
	case EvEpochInstall:
		return "epoch_install"
	case EvCheckpointBegin:
		return "checkpoint_begin"
	case EvCheckpointCommit:
		return "checkpoint_commit"
	case EvCheckpointError:
		return "checkpoint_error"
	case EvOverloadShed:
		return "overload_shed"
	}
	return "none"
}

// Event is one recorded transition: a nanosecond wall timestamp, the
// recording subsystem with its per-subsystem sequence number, the kind,
// and two kind-dependent operands (stream key, epoch, slot, size — see
// each EventKind's doc).
type Event struct {
	// TimeNs is the wall-clock UnixNano timestamp of the record call.
	TimeNs int64
	// Seq is the per-subsystem sequence number (1-based, monotonic).
	Seq uint64
	// Key is the first kind-dependent operand.
	Key uint64
	// Aux is the second kind-dependent operand.
	Aux uint64
	// Sub is the recording subsystem.
	Sub Subsystem
	// Kind is the transition type.
	Kind EventKind
}

// slot is one ring entry guarded by a per-slot version seqlock: the
// writer publishes an odd version, writes the event, then publishes the
// even version 2·(claim index)+2, so a reader that sees the same even
// version before and after its copy knows the copy is torn-free. The
// payload fields are individually atomic — the seqlock alone would be
// correct for torn-copy detection, but Go's race detector (rightly)
// flags plain fields written and read concurrently, and the recorder
// must be clean under -race to be usable in instrumented tests.
type slot struct {
	ver     atomic.Uint64
	timeNs  atomic.Int64
	seq     atomic.Uint64
	key     atomic.Uint64
	aux     atomic.Uint64
	subKind atomic.Uint64 // Sub<<8 | Kind
}

// Recorder is the flight recorder: a fixed-size lock-free ring of
// typed transition events. Record claims a slot with one atomic add and
// never blocks, takes no lock and performs no allocation, so it is safe
// to call from transition sites that run under pool or route locks. A
// nil *Recorder is valid and records nothing, so call sites need no
// enabled-check. Dump reads newest-first and is safe concurrent with
// writers (a slot being overwritten mid-read is skipped, not torn).
type Recorder struct {
	mask uint64
	pos  atomic.Uint64
	seqs [numSubsystems]atomic.Uint64
	ring []slot
}

// DefaultRecorderEvents is the ring capacity NewRecorder(0) selects:
// enough for minutes of transition history at any sane transition rate,
// small enough to dump in one HTTP response.
const DefaultRecorderEvents = 4096

// NewRecorder returns a recorder holding the newest n events (rounded
// up to a power of two; n <= 0 selects DefaultRecorderEvents).
func NewRecorder(n int) *Recorder {
	r := &Recorder{}
	r.init(n)
	return r
}

// init sizes the ring in place (rounded up to a power of two; n <= 0
// selects DefaultRecorderEvents), so embedding structs can initialize
// a by-value Recorder without copying its atomics.
func (r *Recorder) init(n int) {
	if n <= 0 {
		n = DefaultRecorderEvents
	}
	size := 1
	for size < n {
		size <<= 1
	}
	r.mask = uint64(size - 1)
	r.ring = make([]slot, size)
}

// Record appends one event to the ring, overwriting the oldest. It is
// lock-free, allocation-free, safe from any goroutine, and a no-op on a
// nil recorder. Call it at transitions only — never per sample.
func (r *Recorder) Record(sub Subsystem, kind EventKind, key, aux uint64) {
	if r == nil {
		return
	}
	seq := r.seqs[sub].Add(1)
	i := r.pos.Add(1) - 1
	s := &r.ring[i&r.mask]
	// Claim-derived versions, not blind increments: if a second writer
	// laps the ring onto this slot mid-write, both publish distinct even
	// versions and any concurrent reader detects the mismatch.
	s.ver.Store(2*i + 1)
	s.timeNs.Store(time.Now().UnixNano())
	s.seq.Store(seq)
	s.key.Store(key)
	s.aux.Store(aux)
	s.subKind.Store(uint64(sub)<<8 | uint64(kind))
	s.ver.Store(2*i + 2)
}

// Len returns the number of events currently held (capped at capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.pos.Load()
	if n > r.mask+1 {
		n = r.mask + 1
	}
	return int(n)
}

// Recorded returns the total number of events ever recorded, NOT capped
// at capacity: Recorded minus Cap (floored at 0) is how much history
// the ring has already overwritten.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Cap returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return int(r.mask + 1)
}

// Dump returns up to n events, newest first. Safe concurrent with
// Record: a slot overwritten while being copied is detected through its
// version seqlock and skipped (the ring lapped it — it no longer holds
// one of the newest n events anyway). A nil recorder dumps nothing.
func (r *Recorder) Dump(n int) []Event {
	if r == nil || n <= 0 {
		return nil
	}
	pos := r.pos.Load()
	avail := pos
	if avail > r.mask+1 {
		avail = r.mask + 1
	}
	if uint64(n) < avail {
		avail = uint64(n)
	}
	out := make([]Event, 0, avail)
	for k := uint64(0); k < avail; k++ {
		i := pos - 1 - k
		s := &r.ring[i&r.mask]
		v1 := s.ver.Load()
		if v1 != 2*i+2 {
			continue // mid-write, or already lapped by a newer claim
		}
		sk := s.subKind.Load()
		ev := Event{
			TimeNs: s.timeNs.Load(),
			Seq:    s.seq.Load(),
			Key:    s.key.Load(),
			Aux:    s.aux.Load(),
			Sub:    Subsystem(sk >> 8),
			Kind:   EventKind(sk & 0xff),
		}
		if s.ver.Load() != v1 {
			continue // overwritten during the copy
		}
		out = append(out, ev)
	}
	return out
}

// EventJSON is the rendered form of one Event: subsystem and kind as
// stable strings, timestamps both raw and formatted. This is the
// /debug/events element and the checkpoint-sidecar element.
type EventJSON struct {
	// TimeNs is the UnixNano timestamp of the record call.
	TimeNs int64 `json:"time_ns"`
	// Time is TimeNs rendered as RFC3339Nano for humans.
	Time string `json:"time"`
	// Subsystem is the recording layer: pool, cluster, checkpoint, server.
	Subsystem string `json:"subsystem"`
	// Seq is the per-subsystem sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// Kind is the transition type (promote, migration_fence, ...).
	Kind string `json:"kind"`
	// Key is the first kind-dependent operand.
	Key uint64 `json:"key"`
	// Aux is the second kind-dependent operand.
	Aux uint64 `json:"aux"`
}

// JSON renders the event for a dump.
func (e Event) JSON() EventJSON {
	return EventJSON{
		TimeNs:    e.TimeNs,
		Time:      time.Unix(0, e.TimeNs).UTC().Format(time.RFC3339Nano),
		Subsystem: e.Sub.String(),
		Seq:       e.Seq,
		Kind:      e.Kind.String(),
		Key:       e.Key,
		Aux:       e.Aux,
	}
}

// EventsJSON renders a Dump result for serialization.
func EventsJSON(evs []Event) []EventJSON {
	out := make([]EventJSON, len(evs))
	for i, e := range evs {
		out[i] = e.JSON()
	}
	return out
}
