package obs

import (
	"sync"
	"testing"
)

// TestRecorderDumpNewestFirst: a dump returns the most recent events in
// reverse record order, bounded by the requested count.
func TestRecorderDumpNewestFirst(t *testing.T) {
	r := NewRecorder(8)
	for i := uint64(1); i <= 5; i++ {
		r.Record(SubPool, EvPromote, i, 0)
	}
	evs := r.Dump(3)
	if len(evs) != 3 {
		t.Fatalf("Dump(3) returned %d events", len(evs))
	}
	for i, want := range []uint64{5, 4, 3} {
		if evs[i].Key != want {
			t.Errorf("Dump[%d].Key = %d, want %d", i, evs[i].Key, want)
		}
	}
	if got := len(r.Dump(100)); got != 5 {
		t.Errorf("Dump(100) returned %d events, want all 5", got)
	}
}

// TestRecorderWrap: a ring of capacity 4 holding 10 records dumps the
// newest 4, and Recorded reports the uncapped total.
func TestRecorderWrap(t *testing.T) {
	r := NewRecorder(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	for i := uint64(1); i <= 10; i++ {
		r.Record(SubCluster, EvEpochInstall, i, 0)
	}
	if r.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", r.Recorded())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4 (capped)", r.Len())
	}
	evs := r.Dump(100)
	if len(evs) != 4 {
		t.Fatalf("Dump returned %d events, want 4", len(evs))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if evs[i].Key != want {
			t.Errorf("Dump[%d].Key = %d, want %d", i, evs[i].Key, want)
		}
	}
}

// TestRecorderPerSubsystemSeq: each subsystem numbers its own events
// 1,2,3,… regardless of interleaving, so per-layer causal order is
// recoverable from a mixed dump.
func TestRecorderPerSubsystemSeq(t *testing.T) {
	r := NewRecorder(16)
	r.Record(SubPool, EvPromote, 1, 0)
	r.Record(SubCluster, EvMigrationFence, 2, 0)
	r.Record(SubPool, EvDemote, 3, 0)
	r.Record(SubCluster, EvMigrationFlip, 4, 0)
	r.Record(SubCheckpoint, EvCheckpointBegin, 5, 0)
	seqs := map[Subsystem][]uint64{}
	for _, e := range r.Dump(16) {
		seqs[e.Sub] = append([]uint64{e.Seq}, seqs[e.Sub]...) // restore oldest-first
	}
	for sub, want := range map[Subsystem][]uint64{
		SubPool:       {1, 2},
		SubCluster:    {1, 2},
		SubCheckpoint: {1},
	} {
		got := seqs[sub]
		if len(got) != len(want) {
			t.Fatalf("%v: %d events, want %d", sub, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v seq[%d] = %d, want %d", sub, i, got[i], want[i])
			}
		}
	}
}

// TestRecorderNil: a nil recorder accepts records and dumps nothing —
// call sites need no enabled-checks.
func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.Record(SubPool, EvPromote, 1, 2)
	if r.Len() != 0 || r.Cap() != 0 || r.Recorded() != 0 || r.Dump(10) != nil {
		t.Error("nil Recorder is not inert")
	}
}

// TestRecorderRecordAllocFree: Record is 0 allocs/op — it runs at
// transition sites that sit under pool and route locks.
func TestRecorderRecordAllocFree(t *testing.T) {
	r := NewRecorder(64)
	key := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		key++
		r.Record(SubPool, EvPromote, key, key)
	}); n != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", n)
	}
}

// TestRecorderConcurrent hammers the ring from several writers while a
// reader dumps continuously: every dumped event must be internally
// consistent (a writer's Key and Aux always match), proving the seqlock
// never hands out a torn copy. Run under -race in CI.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(32)
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Dump(32) {
				if e.Aux != e.Key*2 {
					t.Errorf("torn event: Key=%d Aux=%d", e.Key, e.Aux)
					return
				}
			}
		}
	}()
	var writersDone sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersDone.Add(1)
		go func(w int) {
			defer writersDone.Done()
			for i := 0; i < perWriter; i++ {
				k := uint64(w*perWriter + i + 1)
				r.Record(SubServer, EvOverloadShed, k, k*2)
			}
		}(w)
	}
	writersDone.Wait()
	close(stop)
	wg.Wait()
	if got := r.Recorded(); got != writers*perWriter {
		t.Errorf("Recorded = %d, want %d", got, writers*perWriter)
	}
}

// TestEventJSON: the rendered form carries stable subsystem and kind
// strings plus both timestamp forms.
func TestEventJSON(t *testing.T) {
	r := NewRecorder(4)
	r.Record(SubCluster, EvMigrationFence, 7, 9)
	evs := r.Dump(1)
	if len(evs) != 1 {
		t.Fatal("no event recorded")
	}
	j := evs[0].JSON()
	if j.Subsystem != "cluster" || j.Kind != "migration_fence" || j.Key != 7 || j.Aux != 9 || j.Seq != 1 {
		t.Errorf("unexpected EventJSON: %+v", j)
	}
	if j.TimeNs == 0 || j.Time == "" {
		t.Errorf("timestamps missing: %+v", j)
	}
}
