package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SampledHist is a concurrency-safe latency histogram with a strided
// admission gate for hot paths: Sampled costs one atomic add and one
// mask on every call and elects 1-in-every calls; only elected calls
// pay for a clock read and the mutex-guarded Record. The same
// randomized-countdown philosophy as the adaptive tier's contention
// sampler, reduced to a deterministic stride — what matters on the hot
// path is that the common case is branch + add, with no time syscall,
// no lock, no allocation. The zero value samples every call (stride 1).
// A nil *SampledHist reports Sampled false and ignores Observe, so
// instrumentation sites need no enabled-check.
type SampledHist struct {
	mask uint64 // stride-1; 0 samples everything
	tick atomic.Uint64

	mu sync.Mutex
	h  Hist
}

// NewSampledHist returns a histogram sampling 1 in every calls; every
// is rounded up to a power of two, and values <= 1 sample every call.
func NewSampledHist(every int) *SampledHist {
	s := &SampledHist{}
	stride := 1
	for stride < every {
		stride <<= 1
	}
	s.mask = uint64(stride - 1)
	return s
}

// SampleEvery returns the stride: one observation per SampleEvery
// Sampled calls (0 for a nil histogram).
func (s *SampledHist) SampleEvery() uint64 {
	if s == nil {
		return 0
	}
	return s.mask + 1
}

// Sampled reports whether this call is elected for timing. It is the
// hot-path gate: one atomic add and one mask, no lock, no allocation,
// false on a nil histogram.
func (s *SampledHist) Sampled() bool {
	if s == nil {
		return false
	}
	return s.tick.Add(1)&s.mask == 0
}

// Observe records one elected duration. Elected calls are 1-in-stride,
// so the mutex here is cold by construction.
func (s *SampledHist) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.h.Record(d)
	s.mu.Unlock()
}

// Snapshot copies the histogram for offline quantile computation.
func (s *SampledHist) Snapshot() Hist {
	if s == nil {
		return Hist{}
	}
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	return h
}

// Stat summarizes the histogram as the quantile set the /metrics
// payload and the Prometheus exposition publish.
func (s *SampledHist) Stat() HistStat {
	h := s.Snapshot()
	return HistStat{
		Count:       h.Count(),
		SampleEvery: s.SampleEvery(),
		P50Ns:       int64(h.Quantile(0.50)),
		P99Ns:       int64(h.Quantile(0.99)),
		P999Ns:      int64(h.Quantile(0.999)),
		MaxNs:       int64(h.Max()),
		MeanNs:      int64(h.Mean()),
		SumNs:       int64(h.Sum()),
	}
}

// HistStat is the serialized summary of one sampled latency site:
// sampled observation count, the sampling stride the counts were taken
// under, and interpolated quantiles in nanoseconds.
type HistStat struct {
	// Count is the number of sampled observations.
	Count uint64 `json:"count"`
	// SampleEvery is the stride: one observation per SampleEvery
	// operations on the instrumented path.
	SampleEvery uint64 `json:"sample_every"`
	// P50Ns is the median latency in nanoseconds.
	P50Ns int64 `json:"p50_ns"`
	// P99Ns is the 99th-percentile latency in nanoseconds.
	P99Ns int64 `json:"p99_ns"`
	// P999Ns is the 99.9th-percentile latency in nanoseconds.
	P999Ns int64 `json:"p999_ns"`
	// MaxNs is the exact largest sampled latency in nanoseconds.
	MaxNs int64 `json:"max_ns"`
	// MeanNs is the mean sampled latency in nanoseconds.
	MeanNs int64 `json:"mean_ns"`
	// SumNs is the summed sampled latency in nanoseconds.
	SumNs int64 `json:"sum_ns"`
}

// Default hot-path sampling strides. Ingest and FeedBatch run per
// frame/batch (already amortized over hundreds of samples), so 1-in-8
// keeps the added cost of the two clock reads well under the ≤2%
// overhead budget; checkpoint writes and migration pauses are rare and
// are always timed.
const (
	DefaultIngestEvery    = 8
	DefaultFeedBatchEvery = 8
)

// Set is one node's full observability core: the shared flight
// recorder plus the four server-side latency sites. The serving layer
// constructs one (or accepts one from the embedder so the cluster tier
// shares it) and threads the pieces into pool, cluster and checkpoint
// config.
type Set struct {
	// Recorder is the shared flight recorder.
	Recorder Recorder
	// Ingest times frame decode→feed on the ingest plane (per sampled
	// frame: from just before frame decode to after the pool feed).
	Ingest SampledHist
	// FeedBatch times Pool.FeedBatch (per sampled batch).
	FeedBatch SampledHist
	// CheckpointWrite times WriteCheckpoint end to end (every write).
	CheckpointWrite SampledHist
	// MigrationPause times a live migration's fence→flip window — the
	// span the stream's ingest is paused (every migration).
	MigrationPause SampledHist
}

// NewSet returns a Set with an events-deep recorder (<= 0 selects
// DefaultRecorderEvents) and default sampling strides.
func NewSet(events int) *Set {
	s := &Set{}
	s.Recorder.init(events)
	s.Ingest.mask = DefaultIngestEvery - 1
	s.FeedBatch.mask = DefaultFeedBatchEvery - 1
	return s
}

// Rec returns the set's recorder, nil-safe (a nil Set records nothing).
func (s *Set) Rec() *Recorder {
	if s == nil {
		return nil
	}
	return &s.Recorder
}
