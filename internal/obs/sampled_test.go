package obs

import (
	"strings"
	"testing"
	"time"
)

// TestSampledHistStride: NewSampledHist(8) elects exactly 1 in 8 calls,
// and the zero value / NewSampledHist(1) elect every call.
func TestSampledHistStride(t *testing.T) {
	s := NewSampledHist(8)
	if s.SampleEvery() != 8 {
		t.Fatalf("SampleEvery = %d, want 8", s.SampleEvery())
	}
	elected := 0
	for i := 0; i < 8000; i++ {
		if s.Sampled() {
			elected++
			s.Observe(time.Duration(100 + i))
		}
	}
	if elected != 1000 {
		t.Errorf("elected %d of 8000 calls, want exactly 1000", elected)
	}
	if got := s.Stat().Count; got != 1000 {
		t.Errorf("Stat().Count = %d, want 1000", got)
	}

	var every SampledHist // zero value: stride 1
	for i := 0; i < 10; i++ {
		if !every.Sampled() {
			t.Fatal("zero-value SampledHist must elect every call")
		}
	}
	// Rounding: 5 rounds up to 8.
	if got := NewSampledHist(5).SampleEvery(); got != 8 {
		t.Errorf("NewSampledHist(5).SampleEvery() = %d, want 8", got)
	}
}

// TestSampledHistNil: a nil histogram never elects and ignores
// observations, so instrumentation sites need no enabled-check.
func TestSampledHistNil(t *testing.T) {
	var s *SampledHist
	if s.Sampled() {
		t.Error("nil Sampled() = true")
	}
	s.Observe(time.Second)
	if st := s.Stat(); st.Count != 0 || st.SampleEvery != 0 {
		t.Errorf("nil Stat() = %+v, want zero", st)
	}
}

// TestSampledHistStat: quantiles and exact fields of a known
// distribution round-trip through Stat.
func TestSampledHistStat(t *testing.T) {
	var s SampledHist
	for v := 1; v <= 1000; v++ {
		if s.Sampled() {
			s.Observe(time.Duration(v))
		}
	}
	st := s.Stat()
	if st.Count != 1000 || st.SampleEvery != 1 {
		t.Fatalf("Count=%d SampleEvery=%d, want 1000/1", st.Count, st.SampleEvery)
	}
	if st.MaxNs != 1000 {
		t.Errorf("MaxNs = %d, want exact 1000", st.MaxNs)
	}
	if st.SumNs != 500500 {
		t.Errorf("SumNs = %d, want exact 500500", st.SumNs)
	}
	if st.P50Ns < 400 || st.P50Ns > 600 {
		t.Errorf("P50Ns = %d, want ≈500", st.P50Ns)
	}
	if st.P999Ns < st.P99Ns || st.P99Ns < st.P50Ns {
		t.Errorf("quantiles not monotone: %d %d %d", st.P50Ns, st.P99Ns, st.P999Ns)
	}
}

// TestSampledHistHotPathAllocFree: the Sampled gate and the elected
// Observe path are both 0 allocs/op.
func TestSampledHistHotPathAllocFree(t *testing.T) {
	s := NewSampledHist(8)
	if n := testing.AllocsPerRun(1000, func() {
		if s.Sampled() {
			s.Observe(42)
		}
	}); n != 0 {
		t.Fatalf("Sampled+Observe allocates %.1f objects/op, want 0", n)
	}
}

// TestNewSet: default strides, a live recorder, and nil-safety of Rec.
func TestNewSet(t *testing.T) {
	s := NewSet(0)
	if s.Recorder.Cap() != DefaultRecorderEvents {
		t.Errorf("recorder cap = %d, want %d", s.Recorder.Cap(), DefaultRecorderEvents)
	}
	if got := s.Ingest.SampleEvery(); got != DefaultIngestEvery {
		t.Errorf("Ingest stride = %d, want %d", got, DefaultIngestEvery)
	}
	if got := s.FeedBatch.SampleEvery(); got != DefaultFeedBatchEvery {
		t.Errorf("FeedBatch stride = %d, want %d", got, DefaultFeedBatchEvery)
	}
	if got := s.CheckpointWrite.SampleEvery(); got != 1 {
		t.Errorf("CheckpointWrite stride = %d, want 1 (every write timed)", got)
	}
	s.Rec().Record(SubPool, EvPromote, 1, 2)
	if s.Recorder.Len() != 1 {
		t.Error("Set recorder did not record")
	}
	var nilSet *Set
	if nilSet.Rec() != nil {
		t.Error("nil Set.Rec() must be nil")
	}
	nilSet.Rec().Record(SubPool, EvPromote, 1, 2) // must not panic
}

// TestPromHelpers: each Append* renders the exact exposition lines.
func TestPromHelpers(t *testing.T) {
	b := AppendPromCounter(nil, "x_total", 7)
	if got := string(b); got != "# TYPE x_total counter\nx_total 7\n" {
		t.Errorf("counter rendering:\n%q", got)
	}
	b = AppendPromGauge(nil, "g", 2.5)
	if got := string(b); got != "# TYPE g gauge\ng 2.5\n" {
		t.Errorf("gauge rendering:\n%q", got)
	}
	b = AppendPromLabeled(nil, "m", "shard", "3", 11)
	if got := string(b); got != `m{shard="3"} 11`+"\n" {
		t.Errorf("labeled rendering:\n%q", got)
	}
	st := HistStat{Count: 4, P50Ns: 500, P99Ns: 990, P999Ns: 999, SumNs: 2_000_000_000}
	out := string(AppendPromSummary(nil, "lat_seconds", st))
	for _, want := range []string{
		"# TYPE lat_seconds summary\n",
		`lat_seconds{quantile="0.5"} 5e-07` + "\n",
		"lat_seconds_sum 2\n",
		"lat_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
}
