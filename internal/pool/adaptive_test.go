package pool

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"dpd/internal/core"
)

// Adaptive-placement tests. Deterministic tests park the coordinator's
// ticker (FoldEvery far in the future) and drive adaptStep by hand, so
// promotion and demotion happen at exact, repeatable points; the churn
// test at the bottom runs the real coordinator under -race against
// every lifecycle operation at once.

// adaptiveTestConfig is a hair-trigger adaptive configuration: one
// qualifying fold promotes, one cool fold demotes, no minimum window —
// the degrees of freedom the deterministic tests want.
func adaptiveTestConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Enable:         true,
		MaxHot:         4,
		SampleEvery:    1,         // exact counts: these tests assert on shares
		FoldEvery:      time.Hour, // parked; tests call adaptStep directly
		PromoteShare:   0.30,
		DemoteShare:    0.05,
		PromoteAfter:   1,
		DemoteAfter:    1,
		MinFoldSamples: 1,
	}
}

// steps drives n coordinator rounds at 100ms synthetic spacing.
func steps(p *Pool, n int) {
	base := p.hot.lastFold
	for i := 1; i <= n; i++ {
		p.adaptStep(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
}

// feedSkewed pushes rounds batches where the hot key receives hotPer
// samples per batch and every cold key one; patterns follow feedRounds'
// per-key periods so detector states are non-trivial.
func feedSkewed(p *Pool, hotKey uint64, hotPer int, cold []uint64, rounds int, hotFed, coldFed map[uint64]int) {
	var batch []KeyedSample
	for r := 0; r < rounds; r++ {
		batch = batch[:0]
		for i := 0; i < hotPer; i++ {
			n := hotFed[hotKey]
			period := 2 + int(hotKey%5)
			batch = append(batch, KeyedSample{Key: hotKey, Value: int64(n % period)})
			hotFed[hotKey] = n + 1
		}
		for _, k := range cold {
			n := coldFed[k]
			period := 2 + int(k%5)
			batch = append(batch, KeyedSample{Key: k, Value: int64(n % period)})
			coldFed[k] = n + 1
		}
		p.FeedBatch(batch)
	}
}

// replayEvent rebuilds a standalone window-32 event detector fed key's
// exact subsequence: n samples of the key's period pattern.
func replayEvent(t *testing.T, key uint64, n int) core.Detector {
	t.Helper()
	det, err := core.NewEventEngineConfig(core.Config{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	period := 2 + int(key%5)
	for i := 0; i < n; i++ {
		det.Feed(core.Sample{Value: int64(i % period)})
	}
	return det
}

// requireIdentical asserts the pooled stream's Stat and serialized
// state are byte-identical to a standalone detector fed the same
// subsequence.
func requireIdentical(t *testing.T, p *Pool, key uint64, n int) {
	t.Helper()
	ref := replayEvent(t, key, n)
	st, ok := p.Stat(key)
	if !ok {
		t.Fatalf("stream %d missing", key)
	}
	if want := ref.Snapshot(); st.Stat != want {
		t.Fatalf("stream %d diverged: got %+v want %+v", key, st.Stat, want)
	}
	state, ok, err := p.Detach(key, nil)
	if err != nil || !ok {
		t.Fatalf("detach %d: ok=%v err=%v", key, ok, err)
	}
	want, err := core.AppendCheckpoint(ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, want) {
		t.Fatalf("stream %d serialized state not byte-identical (%d vs %d bytes)", key, len(state), len(want))
	}
	if err := p.Attach(key, state); err != nil {
		t.Fatalf("re-attach %d: %v", key, err)
	}
}

func TestSamplerHeavyHitter(t *testing.T) {
	sm := newSampler(8, 1, 1)
	for i := 0; i < 1000; i++ {
		sm.observe(42)
		sm.observe(uint64(1000 + i)) // 1000 distinct cold keys
	}
	cands := sm.fold(nil)
	var hot *hotCand
	for i := range cands {
		if cands[i].key == 42 {
			hot = &cands[i]
		}
	}
	if hot == nil {
		t.Fatal("heavy hitter 42 not in fold candidates")
	}
	// Misra-Gries lower bound: count >= true - (colliding traffic).
	if hot.count < 400 {
		t.Fatalf("heavy hitter count %d implausibly low", hot.count)
	}
	for _, s := range sm.slots {
		if s.count != 0 {
			t.Fatal("fold did not reset the sketch")
		}
	}
}

// TestSamplerStrideNoAliasing replays the failure mode of a
// deterministic stride: batches carrying keys in a fixed order whose
// period divides the stride. A clock-mask stride observes the same key
// every time and inflates it by the stride factor; the randomized
// countdown must keep every uniform key's scaled share near its true
// 1/8 share, well below a promotion-grade estimate.
func TestSamplerStrideNoAliasing(t *testing.T) {
	const stride = 8
	keys := [stride]uint64{1, 2, 3, 4, 5, 6, 11, 12}
	sm := newSampler(64, stride, 0x9e3779b97f4a7c15)
	const rounds = 4000
	for r := 0; r < rounds; r++ {
		for _, k := range keys {
			sm.wait--
			if sm.wait == 0 {
				sm.observe(k)
				sm.reload()
			}
		}
	}
	total := float64(rounds * stride)
	for _, c := range sm.fold(nil) {
		share := float64(c.count) * stride / total
		if share > 0.25 { // true share is 1/8; 2x tolerance
			t.Fatalf("key %d scaled share %.3f: stride aliases with batch order", c.key, share)
		}
	}
}

func TestAdaptivePromoteDemoteByteIdentical(t *testing.T) {
	cfg := Config{Shards: 4, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()

	const hotKey = uint64(7)
	cold := []uint64{1, 2, 3, 4, 100, 2001, 1 << 40}
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}

	feedSkewed(p, hotKey, 20, cold, 50, hotFed, coldFed)
	steps(p, 1)
	st := p.AdaptiveStats()
	if !st.Enabled || st.Promotions != 1 || st.HotStreams != 1 {
		t.Fatalf("expected one promotion, got %+v", st)
	}
	if len(st.Hot) != 1 || st.Hot[0].Key != hotKey {
		t.Fatalf("hot set should be [%d], got %+v", hotKey, st.Hot)
	}
	if p.Len() != 1+len(cold) {
		t.Fatalf("Len %d after promotion, want %d", p.Len(), 1+len(cold))
	}

	// Traffic after promotion rides the dedicated ring; state must stay
	// byte-identical to the standalone replay.
	feedSkewed(p, hotKey, 20, cold, 50, hotFed, coldFed)
	requireIdentical(t, p, hotKey, hotFed[hotKey])

	// requireIdentical detached and re-attached the hot stream, which
	// lands it back in its shard; re-promote, then cool it.
	feedSkewed(p, hotKey, 20, cold, 50, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("expected re-promotion, got %+v", st)
	}

	// Cold-only folds: the hot share collapses, demotion fires.
	feedSkewed(p, hotKey, 0, cold, 30, hotFed, coldFed)
	steps(p, 1)
	st = p.AdaptiveStats()
	if st.HotStreams != 0 || st.Demotions != 1 {
		t.Fatalf("expected demotion, got %+v", st)
	}
	requireIdentical(t, p, hotKey, hotFed[hotKey])
	for _, k := range cold {
		requireIdentical(t, p, k, coldFed[k])
	}
}

func TestAdaptiveDemotesOnSilence(t *testing.T) {
	cfg := Config{Shards: 2, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	feedSkewed(p, 9, 50, []uint64{1, 2}, 20, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}
	// No traffic at all: empty fold windows must still cool the stream.
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 0 || st.Demotions != 1 {
		t.Fatalf("silent demotion expected, got %+v", st)
	}
	requireIdentical(t, p, 9, hotFed[9])
}

func TestAdaptiveHysteresisHoldsWarmStream(t *testing.T) {
	a := adaptiveTestConfig()
	a.DemoteAfter = 3
	cfg := Config{Shards: 2, Detector: core.Config{Window: 32}, Adaptive: a}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	// Enough cold keys that none crosses PromoteShare on its own during
	// the cold-only folds below.
	cold := []uint64{1, 2, 3, 4, 5, 6, 11, 12}
	feedSkewed(p, 9, 50, cold, 20, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}
	// Two cool folds out of three: pressure resets when the stream
	// re-warms, so it must stay hot.
	feedSkewed(p, 9, 0, cold, 10, hotFed, coldFed)
	steps(p, 1)
	feedSkewed(p, 9, 0, cold, 10, hotFed, coldFed)
	steps(p, 1)
	feedSkewed(p, 9, 50, cold, 10, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 || st.Demotions != 0 {
		t.Fatalf("hysteresis should hold the warm stream hot, got %+v", st)
	}
	// Three consecutive cool folds: now it demotes.
	for i := 0; i < 3; i++ {
		feedSkewed(p, 9, 0, cold, 10, hotFed, coldFed)
		steps(p, 1)
	}
	if st := p.AdaptiveStats(); st.HotStreams != 0 || st.Demotions != 1 {
		t.Fatalf("demotion after DemoteAfter cool folds expected, got %+v", st)
	}
}

func TestAdaptiveCheckpointRestoreWithHotStreams(t *testing.T) {
	cfg := Config{Shards: 4, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	cold := []uint64{1, 2, 3, 4, 5}
	feedSkewed(p, 7, 30, cold, 40, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}

	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != p.Len() {
		t.Fatalf("restored Len %d, want %d", r.Len(), p.Len())
	}
	// Every stream — including the one that was hot at checkpoint time —
	// must resume byte-identically (placement is re-learned, state is
	// not).
	requireIdentical(t, r, 7, hotFed[7])
	for _, k := range cold {
		requireIdentical(t, r, k, coldFed[k])
	}
	if st := r.AdaptiveStats(); !st.Enabled || st.HotStreams != 0 {
		t.Fatalf("restored pool starts with an empty hot set, got %+v", st)
	}
}

func TestAdaptiveRebalanceWithHotStreams(t *testing.T) {
	cfg := Config{Shards: 2, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	cold := []uint64{1, 2, 3, 4}
	feedSkewed(p, 7, 30, cold, 40, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}
	if err := p.Rebalance(8); err != nil {
		t.Fatal(err)
	}
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("rebalance must not touch the hot set, got %+v", st)
	}
	feedSkewed(p, 7, 30, cold, 40, hotFed, coldFed)
	// Cool and verify everything.
	feedSkewed(p, 7, 0, cold, 30, hotFed, coldFed)
	steps(p, 1)
	requireIdentical(t, p, 7, hotFed[7])
	for _, k := range cold {
		requireIdentical(t, p, k, coldFed[k])
	}
}

func TestAdaptiveDetachAttachHotStream(t *testing.T) {
	cfg := Config{Shards: 4, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	feedSkewed(p, 7, 30, []uint64{1, 2}, 40, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}

	// Attach over a hot key must refuse exactly like a live shard key.
	ref := replayEvent(t, 7, hotFed[7])
	state, err := core.AppendCheckpoint(ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Attach(7, state); !errors.Is(err, ErrStreamExists) {
		t.Fatalf("attach over hot key: got %v, want ErrStreamExists", err)
	}

	// Detach fences the hot worker and hands back the exact state.
	got, ok, err := p.Detach(7, nil)
	if err != nil || !ok {
		t.Fatalf("detach hot: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("detached hot state not byte-identical to replay")
	}
	if st := p.AdaptiveStats(); st.HotStreams != 0 {
		t.Fatalf("detach must remove the stream from the hot set, got %+v", st)
	}
	if _, live := p.Stat(7); live {
		t.Fatal("stream still visible after hot detach")
	}
	if err := p.Attach(7, got); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, p, 7, hotFed[7])
}

func TestAdaptiveEvictIdleSparesHotStreams(t *testing.T) {
	cfg := Config{Shards: 2, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	cold := []uint64{1, 2, 3}
	feedSkewed(p, 7, 30, cold, 40, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}
	p.EvictIdle(0)
	if _, live := p.Stat(7); !live {
		t.Fatal("hot stream must never be idle-evicted")
	}
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("hot set should survive eviction, got %+v", st)
	}
}

func TestAdaptiveCloseWithHotStreams(t *testing.T) {
	cfg := Config{Shards: 2, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	feedSkewed(p, 7, 30, []uint64{1, 2}, 40, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}
	p.Close()
	p.Close() // idempotent with a live hot set

	// Post-Close reads observe the final state, hot streams included.
	st, ok := p.Stat(7)
	if !ok {
		t.Fatal("hot stream missing after Close")
	}
	ref := replayEvent(t, 7, hotFed[7])
	if want := ref.Snapshot(); st.Stat != want {
		t.Fatalf("post-Close hot stat diverged: got %+v want %+v", st.Stat, want)
	}
	if got := len(p.Snapshot(nil)); got != 3 {
		t.Fatalf("post-Close snapshot has %d streams, want 3", got)
	}
	var buf bytes.Buffer
	if err := p.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if as := p.AdaptiveStats(); as.HotStreams != 1 {
		t.Fatalf("post-Close AdaptiveStats lost the hot set: %+v", as)
	}
}

func TestAdaptiveFeedBatchAllocFree(t *testing.T) {
	cfg := Config{Shards: 4, Detector: core.Config{Window: 32}, Adaptive: adaptiveTestConfig()}
	p := Must(cfg)
	defer p.Close()
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}
	cold := []uint64{1, 2, 3, 4, 100, 2001}
	feedSkewed(p, 7, 30, cold, 60, hotFed, coldFed)
	steps(p, 1)
	if st := p.AdaptiveStats(); st.HotStreams != 1 {
		t.Fatalf("promotion expected, got %+v", st)
	}

	// Steady state with a promoted stream: the skewed batch (hot ring
	// push + sampler updates + cold partitioning) must not allocate.
	batch := make([]KeyedSample, 0, 64)
	n := 0
	feed := func() {
		batch = batch[:0]
		for i := 0; i < 32; i++ {
			batch = append(batch, KeyedSample{Key: 7, Value: int64(n % 4)})
			n++
		}
		for _, k := range cold {
			batch = append(batch, KeyedSample{Key: k, Value: int64(n % 3)})
		}
		p.FeedBatch(batch)
	}
	for i := 0; i < 50; i++ {
		feed() // warm staging buffers and ring
	}
	if allocs := testing.AllocsPerRun(100, feed); allocs != 0 {
		t.Fatalf("adaptive FeedBatch allocates %v/op in steady state", allocs)
	}
}

// TestAdaptiveLifecycleChurnUnderRace runs the real coordinator on a
// hair-trigger cadence while feeders heat and cool a celebrity key and
// every lifecycle operation (Checkpoint, Rebalance, EvictIdle,
// Detach/Attach, Snapshot paging, Stat) races the transitions. The
// final state of every stream must match a standalone replay exactly —
// promotion and demotion never lose or reorder a sample.
func TestAdaptiveLifecycleChurnUnderRace(t *testing.T) {
	a := AdaptiveConfig{
		Enable:         true,
		MaxHot:         2,
		FoldEvery:      2 * time.Millisecond,
		PromoteShare:   0.30,
		DemoteShare:    0.05,
		PromoteAfter:   1,
		DemoteAfter:    1,
		MinFoldSamples: 64,
	}
	cfg := Config{Shards: 4, Detector: core.Config{Window: 32}, Adaptive: a}
	p := Must(cfg)
	defer p.Close()

	const hotKey = uint64(7)
	cold := []uint64{1, 2, 3, 4, 100, 2001, 1 << 40}
	hotFed, coldFed := map[uint64]int{}, map[uint64]int{}

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(4)
	go func() { // checkpoints
		defer chaos.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Checkpoint(io.Discard)
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()
	go func() { // rebalances (paced: each one resets the samplers)
		defer chaos.Done()
		n := 2
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Rebalance(n)
				if n = n + 1; n > 6 {
					n = 2
				}
				time.Sleep(15 * time.Millisecond)
			}
		}
	}()
	go func() { // eviction sweeps (huge TTL: exercise, don't evict)
		defer chaos.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.EvictIdle(1 << 60)
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()
	go func() { // reads + detach/attach of a key this goroutine owns
		defer chaos.Done()
		const mig = uint64(555)
		p.Feed(mig, 1)
		for {
			select {
			case <-stop:
				return
			default:
				p.Snapshot(nil)
				p.SnapshotPage(0, 4, nil)
				p.Stat(hotKey)
				p.AdaptiveStats()
				if state, ok, err := p.Detach(mig, nil); err == nil && ok {
					if err := p.Attach(mig, state); err != nil {
						panic(err)
					}
				}
			}
		}
	}()

	// Three heat/cool cycles, each asserted via the transition counters
	// with a deadline, all while the chaos goroutines run.
	waitFor := func(cond func(AdaptiveStats) bool, heat bool, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond(p.AdaptiveStats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s: %+v", what, p.AdaptiveStats())
			}
			hotPer := 0
			if heat {
				hotPer = 40
			}
			feedSkewed(p, hotKey, hotPer, cold, 5, hotFed, coldFed)
		}
	}
	for cycle := uint64(1); cycle <= 3; cycle++ {
		c := cycle
		waitFor(func(st AdaptiveStats) bool { return st.Promotions >= c }, true, "promotion")
		waitFor(func(st AdaptiveStats) bool { return st.Demotions >= c }, false, "demotion")
	}
	close(stop)
	chaos.Wait()

	st := p.AdaptiveStats()
	if st.Promotions < 3 || st.Demotions < 3 {
		t.Fatalf("expected >=3 promotions and demotions, got %+v", st)
	}
	// Quiesced: every stream must equal its standalone replay,
	// byte-identically, after all that churn.
	requireIdentical(t, p, hotKey, hotFed[hotKey])
	for _, k := range cold {
		requireIdentical(t, p, k, coldFed[k])
	}
}
