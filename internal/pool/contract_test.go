package pool

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"dpd/internal/core"
)

// TestCloseIdempotentAndConcurrent: every Close call — first, repeated,
// concurrent — returns only after the pool is fully stopped, and none
// panics.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 32}})
	for i := 0; i < 200; i++ {
		p.Feed(uint64(i%8), int64(i%4))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	p.Close() // and once more, sequentially
	if got := p.Len(); got != 8 {
		t.Fatalf("Len after Close = %d, want 8", got)
	}
}

// TestClosedPoolContract pins the documented behavior of every method
// after Close — the exact sequence a serving layer's shutdown path
// walks, so "unspecified" here would be a latent server bug.
func TestClosedPoolContract(t *testing.T) {
	build := func(t *testing.T) *Pool {
		p := Must(Config{Shards: 2, Detector: core.Config{Window: 32}})
		for i := 0; i < 3*32; i++ {
			p.Feed(7, int64(i%4))
			p.Feed(9, int64(i%4))
		}
		p.Close()
		return p
	}

	t.Run("feed panics", func(t *testing.T) {
		p := build(t)
		defer func() {
			if recover() == nil {
				t.Fatal("Feed on a closed pool did not panic")
			}
		}()
		p.Feed(7, 1)
	})
	t.Run("feedbatch panics", func(t *testing.T) {
		p := build(t)
		defer func() {
			if recover() == nil {
				t.Fatal("FeedBatch on a closed pool did not panic")
			}
		}()
		p.FeedBatch([]KeyedSample{{Key: 7, Value: 1}})
	})
	t.Run("reads stay usable", func(t *testing.T) {
		p := build(t)
		if got := p.Len(); got != 2 {
			t.Fatalf("Len = %d, want 2", got)
		}
		if got := len(p.Snapshot(nil)); got != 2 {
			t.Fatalf("Snapshot returned %d streams, want 2", got)
		}
		if page, _, more := p.SnapshotPage(0, 10, nil); len(page) != 2 || more {
			t.Fatalf("SnapshotPage returned %d streams (more=%v), want 2 final", len(page), more)
		}
		st, ok := p.Stat(7)
		if !ok || st.Samples != 3*32 {
			t.Fatalf("Stat(7) = %+v ok=%v, want 96 samples", st, ok)
		}
		if got := p.Shards(); got != 2 {
			t.Fatalf("Shards = %d, want 2", got)
		}
		if lens := p.ShardLens(nil); len(lens) != 2 {
			t.Fatalf("ShardLens = %v, want 2 entries", lens)
		}
		_ = p.Evicted()
	})
	t.Run("checkpoint captures final state", func(t *testing.T) {
		p := build(t)
		var closedCkpt bytes.Buffer
		if err := p.Checkpoint(&closedCkpt); err != nil {
			t.Fatalf("Checkpoint after Close: %v", err)
		}
		restored, err := Restore(&closedCkpt, Config{Shards: 2, Detector: core.Config{Window: 32}})
		if err != nil {
			t.Fatalf("Restore of post-Close checkpoint: %v", err)
		}
		defer restored.Close()
		want, _ := p.Stat(7)
		got, ok := restored.Stat(7)
		if !ok || got.Stat != want.Stat {
			t.Fatalf("restored Stat(7) = %+v, want %+v", got, want)
		}
	})
	t.Run("rebalance errors", func(t *testing.T) {
		p := build(t)
		if err := p.Rebalance(4); err == nil {
			t.Fatal("Rebalance on a closed pool returned nil error")
		}
	})
	t.Run("evictidle is a no-op", func(t *testing.T) {
		p := build(t)
		if n := p.EvictIdle(0); n != 0 {
			t.Fatalf("EvictIdle on a closed pool evicted %d streams", n)
		}
		if got := p.Len(); got != 2 {
			t.Fatalf("Len after post-Close EvictIdle = %d, want 2", got)
		}
	})
}

// TestCheckpointRebalanceSerialize pins the Checkpoint/Rebalance
// concurrency contract: the two serialize on the pool gate — a
// checkpoint begun during a rebalance (or vice versa) blocks, never
// errors, and every produced stream is written against exactly one
// shard generation. The proof is structural: each checkpoint taken
// while rebalances and feeders hammer the pool must restore cleanly
// (Restore rejects duplicate keys outright), contain every key exactly
// once, and carry per-stream sample counts that never exceed what the
// feeders had delivered — interleaved old/new-generation frames would
// break at least one of those.
func TestCheckpointRebalanceSerialize(t *testing.T) {
	const keys = 32
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 16}})
	defer p.Close()
	batch := make([]KeyedSample, keys)
	for k := range batch {
		batch[k] = KeyedSample{Key: uint64(k), Value: int64(k % 4)}
	}
	p.FeedBatch(batch) // materialize every key before the storm

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // feeder: keeps per-key counts moving
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.FeedBatch(batch)
			}
		}
	}()
	go func() { // rebalancer: cycles the shard generation
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if err := p.Rebalance(2 + i%6); err != nil {
					t.Errorf("rebalance: %v", err)
					return
				}
			}
		}
	}()

	for i := 0; i < 25; i++ {
		var ckpt bytes.Buffer
		if err := p.Checkpoint(&ckpt); err != nil {
			t.Fatalf("checkpoint %d during rebalance storm: %v", i, err)
		}
		restored, err := Restore(bytes.NewReader(ckpt.Bytes()),
			Config{Shards: 3, Detector: core.Config{Window: 16}})
		if err != nil {
			t.Fatalf("checkpoint %d does not restore (interleaved frames?): %v", i, err)
		}
		if got := restored.Len(); got != keys {
			restored.Close()
			t.Fatalf("checkpoint %d restored %d streams, want %d", i, got, keys)
		}
		for k := uint64(0); k < keys; k++ {
			st, ok := restored.Stat(k)
			if !ok || st.Samples == 0 {
				restored.Close()
				t.Fatalf("checkpoint %d: key %d missing or empty (ok=%v)", i, k, ok)
			}
		}
		restored.Close()
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotPage: pages are sorted by key, disjoint, bounded by
// limit, and their union is exactly the live stream set.
func TestSnapshotPage(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 32}})
	defer p.Close()
	const streams = 57
	keys := make(map[uint64]bool, streams)
	for i := 0; i < streams; i++ {
		k := uint64(i*13 + 5) // non-contiguous keys
		p.Feed(k, int64(i%4))
		keys[k] = true
	}

	var all []uint64
	from := uint64(0)
	var page []StreamStat
	for {
		var more bool
		page, from, more = p.SnapshotPage(from, 10, page)
		if len(page) > 10 {
			t.Fatalf("page of %d streams exceeds limit 10", len(page))
		}
		if !sort.SliceIsSorted(page, func(i, j int) bool { return page[i].Key < page[j].Key }) {
			t.Fatalf("page not sorted by key: %v", pageKeys(page))
		}
		for _, st := range page {
			all = append(all, st.Key)
		}
		if !more {
			break
		}
	}
	if len(all) != streams {
		t.Fatalf("paged enumeration returned %d streams, want %d", len(all), streams)
	}
	seen := map[uint64]bool{}
	for _, k := range all {
		if seen[k] {
			t.Fatalf("key %d appeared in two pages", k)
		}
		seen[k] = true
		if !keys[k] {
			t.Fatalf("key %d was never fed", k)
		}
	}

	if got, _, more := p.SnapshotPage(0, 0, nil); len(got) != 0 || more {
		t.Fatalf("limit 0 returned %d streams (more=%v)", len(got), more)
	}
}

func pageKeys(page []StreamStat) []uint64 {
	ks := make([]uint64, len(page))
	for i, st := range page {
		ks[i] = st.Key
	}
	return ks
}

// TestShardLens: occupancy sums to Len and follows the shard count
// across a rebalance.
func TestShardLens(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 32}})
	defer p.Close()
	for i := 0; i < 64; i++ {
		p.Feed(uint64(i), 1)
	}
	lens := p.ShardLens(nil)
	if len(lens) != 4 {
		t.Fatalf("ShardLens has %d entries, want 4", len(lens))
	}
	sum := 0
	for _, n := range lens {
		sum += n
	}
	if sum != 64 {
		t.Fatalf("occupancy sums to %d, want 64", sum)
	}
	if err := p.Rebalance(7); err != nil {
		t.Fatal(err)
	}
	lens = p.ShardLens(lens)
	if len(lens) != 7 {
		t.Fatalf("ShardLens after rebalance has %d entries, want 7", len(lens))
	}
	sum = 0
	for _, n := range lens {
		sum += n
	}
	if sum != 64 {
		t.Fatalf("occupancy after rebalance sums to %d, want 64", sum)
	}
}

// TestStreamObserverHook: the per-key observer factory fires on every
// materialization path — fresh stream, freelist recycle, restore, and
// rebalance migration — and recycled detectors never keep a previous
// key's observer.
func TestStreamObserverHook(t *testing.T) {
	var mu sync.Mutex
	events := map[uint64]int{} // key → observer callbacks seen
	created := map[uint64]int{}
	cfg := Config{
		Shards:   1, // one shard: the idle clock below is deterministic
		Detector: core.Config{Window: 16},
		StreamObserver: func(key uint64) core.Observer {
			mu.Lock()
			created[key]++
			mu.Unlock()
			return core.ObserverFuncs{
				SegmentStart: func(e *core.Event) {
					mu.Lock()
					events[key]++
					mu.Unlock()
				},
			}
		},
	}
	p := Must(cfg)
	defer p.Close()

	// Lock stream 1 on a period-2 pattern: segment starts must flow to
	// the key-1 observer.
	for i := 0; i < 64; i++ {
		p.Feed(1, int64(i%2))
	}
	mu.Lock()
	if created[1] == 0 || events[1] == 0 {
		mu.Unlock()
		t.Fatalf("stream 1: created=%d events=%d, want both > 0", created[1], events[1])
	}
	ev1 := events[1]
	mu.Unlock()

	// Let stream 1 idle out while stream 2 drives the shard clock, then
	// revive it: the recycled detector must get a fresh key-1 observer
	// (the hook is re-consulted, not inherited from the evicted key).
	for i := 0; i < 64; i++ {
		p.Feed(2, int64(i%2))
	}
	if n := p.EvictIdle(8); n != 1 {
		t.Fatalf("EvictIdle evicted %d streams, want 1 (stream 1)", n)
	}
	for i := 0; i < 64; i++ {
		p.Feed(1, int64(i%2))
	}
	mu.Lock()
	if created[1] < 2 {
		mu.Unlock()
		t.Fatalf("stream 1 observer created %d times, want >= 2 (recycle must re-consult the hook)", created[1])
	}
	if events[1] <= ev1 {
		mu.Unlock()
		t.Fatal("revived stream 1 delivered no further events")
	}
	// Rebalance: migrated streams keep publishing to their keys.
	ev2 := events[2]
	mu.Unlock()
	if err := p.Rebalance(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		p.Feed(2, int64(i%2))
	}
	mu.Lock()
	defer mu.Unlock()
	if events[2] <= ev2 {
		t.Fatal("stream 2 delivered no events after rebalance migration")
	}
	if created[2] < 2 {
		t.Fatalf("stream 2 observer created %d times, want >= 2 (migration must re-consult the hook)", created[2])
	}
}

// TestStreamObserverRestore: streams restored from a checkpoint get
// observers too.
func TestStreamObserverRestore(t *testing.T) {
	src := Must(Config{Shards: 2, Detector: core.Config{Window: 16}})
	for i := 0; i < 48; i++ {
		src.Feed(3, int64(i%2))
	}
	var ckpt bytes.Buffer
	if err := src.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	src.Close()

	var mu sync.Mutex
	events := 0
	p, err := Restore(&ckpt, Config{
		Shards:   2,
		Detector: core.Config{Window: 16},
		StreamObserver: func(key uint64) core.Observer {
			if key != 3 {
				t.Errorf("observer hook consulted for key %d, want 3", key)
			}
			return core.ObserverFuncs{SegmentStart: func(e *core.Event) {
				mu.Lock()
				events++
				mu.Unlock()
			}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 48; i < 64; i++ {
		p.Feed(3, int64(i%2))
	}
	mu.Lock()
	defer mu.Unlock()
	if events == 0 {
		t.Fatal("restored stream delivered no events to the hook observer")
	}
}
