package pool

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dpd/internal/core"
	"dpd/internal/obs"
)

// The adaptive coordinator (Doppel's coordinator.go idiom): a single
// goroutine that periodically folds every shard's contention sketch
// into a global candidate list, computes each candidate's share of the
// fold window, and moves streams between the sharded tier and the hot
// tier through the checkpoint codec — the same byte-identical state
// movement Rebalance and Detach/Attach use, so a stream observes no
// difference between being promoted and being migrated.
//
// Hysteresis on both edges keeps placement from flapping: promotion
// requires the share to exceed PromoteShare on PromoteAfter consecutive
// folds with a statistically meaningful window (MinFoldSamples);
// demotion requires the hot stream's share to fall below the (lower)
// DemoteShare on DemoteAfter consecutive folds, and unlike promotion it
// also fires on empty windows, so a stream whose traffic vanishes
// entirely still cools back into its shard.

// Adaptive placement defaults; see AdaptiveConfig.
const (
	DefaultMaxHot         = 8
	DefaultSamplerSlots   = 64
	DefaultSampleEvery    = 8
	DefaultFoldEvery      = 100 * time.Millisecond
	DefaultPromoteShare   = 0.10
	DefaultDemoteShare    = 0.025
	DefaultPromoteAfter   = 2
	DefaultDemoteAfter    = 3
	DefaultMinFoldSamples = 1024
	DefaultHotRing        = 64
	// MaxHotStreams bounds AdaptiveConfig.MaxHot: each hot stream costs
	// a pinned goroutine and a group staging slot.
	MaxHotStreams = 64
)

// AdaptiveConfig parameterizes contention-adaptive hot-stream
// placement. The zero value (Enable false) disables the tier entirely:
// no sampler in the shards, no coordinator goroutine, and a single
// never-taken branch on the feed path.
type AdaptiveConfig struct {
	// Enable turns the adaptive tier on.
	Enable bool
	// MaxHot bounds the number of simultaneously promoted streams (and
	// therefore dedicated hot workers); 0 selects DefaultMaxHot, capped
	// at MaxHotStreams.
	MaxHot int
	// SamplerSlots is the per-shard sketch size, rounded up to a power
	// of two; 0 selects DefaultSamplerSlots.
	SamplerSlots int
	// SampleEvery is the mean number of feed calls between sketch
	// observations (randomized stride, so batch key order cannot alias
	// with it); higher values shrink the sampler's inline cost on the
	// feed path at the price of coarser share estimates. 1 observes
	// every sample; 0 selects DefaultSampleEvery.
	SampleEvery int
	// FoldEvery is the coordinator's fold-and-decide cadence; 0 selects
	// DefaultFoldEvery.
	FoldEvery time.Duration
	// PromoteShare is the fraction of a fold window one key must exceed
	// to accumulate promotion pressure; 0 selects DefaultPromoteShare.
	PromoteShare float64
	// DemoteShare is the fraction a hot stream must fall below to
	// accumulate demotion pressure; it must sit below PromoteShare (the
	// hysteresis band). 0 selects DefaultDemoteShare, or a quarter of
	// PromoteShare when that is set.
	DemoteShare float64
	// PromoteAfter is how many consecutive qualifying folds promote a
	// key; 0 selects DefaultPromoteAfter.
	PromoteAfter int
	// DemoteAfter is how many consecutive cool folds demote a stream; 0
	// selects DefaultDemoteAfter.
	DemoteAfter int
	// MinFoldSamples is the minimum fold-window total before promotion
	// decisions are made (share estimates over tiny windows are noise);
	// 0 selects DefaultMinFoldSamples. Demotion ignores it by design.
	MinFoldSamples uint64
	// HotRing is each hot worker's run-queue capacity, rounded up to a
	// power of two; 0 selects DefaultHotRing.
	HotRing int
}

// normalize applies defaults and validates; called once by New.
func (a *AdaptiveConfig) normalize() error {
	if a.MaxHot == 0 {
		a.MaxHot = DefaultMaxHot
	}
	if a.MaxHot < 1 || a.MaxHot > MaxHotStreams {
		return fmt.Errorf("pool: adaptive MaxHot %d outside [1,%d]", a.MaxHot, MaxHotStreams)
	}
	if a.SamplerSlots == 0 {
		a.SamplerSlots = DefaultSamplerSlots
	}
	if a.SamplerSlots < 1 || a.SamplerSlots > 1<<16 {
		return fmt.Errorf("pool: adaptive SamplerSlots %d outside [1,%d]", a.SamplerSlots, 1<<16)
	}
	a.SamplerSlots = ceilPow2(a.SamplerSlots)
	if a.SampleEvery == 0 {
		a.SampleEvery = DefaultSampleEvery
	}
	if a.SampleEvery < 1 || a.SampleEvery > 1<<16 {
		return fmt.Errorf("pool: adaptive SampleEvery %d outside [1,%d]", a.SampleEvery, 1<<16)
	}
	if a.FoldEvery <= 0 {
		a.FoldEvery = DefaultFoldEvery
	}
	if a.PromoteShare == 0 {
		a.PromoteShare = DefaultPromoteShare
	}
	if a.PromoteShare <= 0 || a.PromoteShare > 1 {
		return fmt.Errorf("pool: adaptive PromoteShare %v outside (0,1]", a.PromoteShare)
	}
	if a.DemoteShare == 0 {
		a.DemoteShare = a.PromoteShare / 4
	}
	if a.DemoteShare < 0 || a.DemoteShare >= a.PromoteShare {
		return fmt.Errorf("pool: adaptive DemoteShare %v must sit in [0, PromoteShare %v)", a.DemoteShare, a.PromoteShare)
	}
	if a.PromoteAfter == 0 {
		a.PromoteAfter = DefaultPromoteAfter
	}
	if a.DemoteAfter == 0 {
		a.DemoteAfter = DefaultDemoteAfter
	}
	if a.PromoteAfter < 1 || a.DemoteAfter < 1 {
		return fmt.Errorf("pool: adaptive PromoteAfter/DemoteAfter must be >= 1")
	}
	if a.MinFoldSamples == 0 {
		a.MinFoldSamples = DefaultMinFoldSamples
	}
	if a.HotRing == 0 {
		a.HotRing = DefaultHotRing
	}
	if a.HotRing < 1 || a.HotRing > 1<<16 {
		return fmt.Errorf("pool: adaptive HotRing %d outside [1,%d]", a.HotRing, 1<<16)
	}
	a.HotRing = ceilPow2(a.HotRing)
	return nil
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// adaptiveState is the pool-side root of the adaptive tier. The hot-set
// structure (slots, table, count) is mutated only under the exclusive
// gate and read under the shared gate; the decision state below is
// private to the coordinator goroutine (tests drive adaptStep directly
// only with the ticker parked); counters are atomics so AdaptiveStats
// can read them without joining the coordinator's locking.
type adaptiveState struct {
	cfg AdaptiveConfig

	// slots is the fixed hot-worker slot array (len MaxHot); nil entries
	// are free. A hot stream's slot index is its staging index in every
	// batch group's perHot.
	slots []*hotStream
	count int
	table *hotTable

	stop chan struct{} // closes to stop the coordinator
	done chan struct{} // closed when the coordinator has exited

	// Coordinator-private decision state.
	promoteStreak map[uint64]int
	demoteStreak  map[uint64]int
	cands         []hotCand
	lastFold      time.Time

	// Counters: atomics, because folds is bumped by the coordinator
	// outside any gate section while AdaptiveStats reads concurrently.
	promotions atomic.Uint64
	demotions  atomic.Uint64
	folds      atomic.Uint64
}

// newAdaptiveState builds the disabled-until-started adaptive root.
func newAdaptiveState(cfg AdaptiveConfig) *adaptiveState {
	return &adaptiveState{
		cfg:           cfg,
		slots:         make([]*hotStream, cfg.MaxHot),
		table:         emptyHotTable(),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		promoteStreak: make(map[uint64]int),
		demoteStreak:  make(map[uint64]int),
	}
}

// findLocked returns the hot stream serving key. Caller holds the gate
// (shared or exclusive).
func (a *adaptiveState) findLocked(key uint64) *hotStream { return a.table.find(key) }

// coordinator is the fold-and-decide loop; one per adaptive pool.
func (p *Pool) coordinator() {
	a := p.hot
	defer close(a.done)
	t := time.NewTicker(a.cfg.FoldEvery)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case now := <-t.C:
			p.adaptStep(now)
		}
	}
}

// adaptStep runs one coordinator round: fold every sketch under the
// shared gate, decide promotions/demotions with hysteresis, and apply
// them under the exclusive gate. Exposed to tests (deterministic
// driving with FoldEvery set far in the future); production calls come
// only from the coordinator goroutine.
func (p *Pool) adaptStep(now time.Time) {
	a := p.hot
	if a == nil {
		return
	}

	// Phase 1 — fold, under the shared gate (feeders keep running).
	p.gate.RLock()
	if p.closed.Load() {
		p.gate.RUnlock()
		return
	}
	total := uint64(0)
	cands := a.cands[:0]
	for _, sh := range p.shards {
		sh.mu.Lock()
		total += sh.clock - sh.foldBase
		sh.foldBase = sh.clock
		if sh.samp != nil {
			cands = sh.samp.fold(cands)
		}
		sh.mu.Unlock()
	}
	// Fold hot-stream windows: their traffic never touches a shard
	// clock, but it is part of the same share denominator.
	dt := now.Sub(a.lastFold)
	if dt <= 0 {
		dt = a.cfg.FoldEvery
	}
	a.lastFold = now
	hotWin := make(map[uint64]uint64, a.count)
	for _, hs := range a.slots {
		if hs == nil {
			continue
		}
		hs.mu.Lock()
		w := hs.window
		hs.window = 0
		hs.lastRate = float64(w) / dt.Seconds()
		hs.mu.Unlock()
		hotWin[hs.key] = w
		total += w
	}
	p.gate.RUnlock()
	a.cands = cands
	a.folds.Add(1)

	// Phase 2 — decide. Promotion pressure: key took >= PromoteShare of
	// a window of at least MinFoldSamples, PromoteAfter folds in a row.
	var promote []uint64
	if total >= a.cfg.MinFoldSamples {
		stride := float64(a.cfg.SampleEvery)
		for _, c := range a.cands {
			// Sketch counts come from a 1-in-SampleEvery subsample;
			// scale them back up before comparing against the full
			// shard-clock window.
			if float64(c.count)*stride >= a.cfg.PromoteShare*float64(total) {
				a.promoteStreak[c.key]++
				if a.promoteStreak[c.key] >= a.cfg.PromoteAfter {
					promote = append(promote, c.key)
					delete(a.promoteStreak, c.key)
				}
			} else {
				delete(a.promoteStreak, c.key)
			}
		}
		// Keys that vanished from the candidate list lose their streak.
		for key := range a.promoteStreak {
			if !candsContain(a.cands, key) {
				delete(a.promoteStreak, key)
			}
		}
	} else {
		clear(a.promoteStreak)
	}

	// Demotion pressure: hot stream below DemoteShare (computed against
	// this window even when the window is tiny or empty — a silent pool
	// must still cool its celebrities), DemoteAfter folds in a row.
	var demote []uint64
	for _, hs := range a.slots {
		if hs == nil {
			continue
		}
		w := hotWin[hs.key]
		if total == 0 || float64(w) < a.cfg.DemoteShare*float64(total) {
			a.demoteStreak[hs.key]++
			if a.demoteStreak[hs.key] >= a.cfg.DemoteAfter {
				demote = append(demote, hs.key)
				delete(a.demoteStreak, hs.key)
			}
		} else {
			a.demoteStreak[hs.key] = 0
		}
	}

	if len(promote) == 0 && len(demote) == 0 {
		return
	}

	// Phase 3 — apply, under the exclusive gate: all feeds drained, all
	// rings empty, transitions are plain data moves.
	p.gate.Lock()
	defer p.gate.Unlock()
	if p.closed.Load() {
		return
	}
	for _, key := range demote {
		if hs := a.findLocked(key); hs != nil {
			p.demoteLocked(hs)
		}
	}
	for _, key := range promote {
		p.promoteLocked(key)
	}
	a.table = buildHotTable(a.slots)
}

// candsContain reports whether key appears in the fold's candidates.
func candsContain(cands []hotCand, key uint64) bool {
	for _, c := range cands {
		if c.key == key {
			return true
		}
	}
	return false
}

// promoteLocked moves one stream from its shard onto a free hot-worker
// slot via the checkpoint codec. Caller holds the exclusive gate. A key
// that is already hot, no longer live, non-checkpointable (injected
// custom engine), or arriving with the hot set full is skipped — the
// sharded tier keeps serving it correctly.
func (p *Pool) promoteLocked(key uint64) {
	a := p.hot
	if a.count >= a.cfg.MaxHot || a.findLocked(key) != nil {
		return
	}
	sh := p.shards[p.shardOf(key)]
	st, live := sh.streams[key]
	if !live {
		return
	}
	buf, err := core.AppendCheckpoint(st.det, nil)
	if err != nil {
		return
	}
	det, err := core.RestoreCheckpoint(buf)
	if err != nil {
		return
	}
	slot := -1
	for i, s := range a.slots {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		return
	}
	delete(sh.streams, key)
	st.det.Reset()
	sh.free = append(sh.free, st)

	hs := &hotStream{
		key:  key,
		slot: slot,
		ring: newHotRing(a.cfg.HotRing),
		stop: make(chan struct{}),
		det:  det,
	}
	if p.cfg.StreamObserver != nil {
		if o, ok := det.(observable); ok {
			o.SetObserver(p.cfg.StreamObserver(key))
		}
	}
	a.slots[slot] = hs
	a.count++
	a.promotions.Add(1)
	p.cfg.Recorder.Record(obs.SubPool, obs.EvPromote, key, uint64(slot))
	p.wg.Add(1)
	go hs.run(p)
}

// demoteLocked moves one hot stream back into its shard via the
// checkpoint codec and retires its worker. Caller holds the exclusive
// gate (ring empty, worker parked).
func (p *Pool) demoteLocked(hs *hotStream) {
	a := p.hot
	hs.mu.Lock()
	buf, err := core.AppendCheckpoint(hs.det, nil)
	hs.mu.Unlock()
	if err != nil {
		// Cannot serialize (never the case for engines that passed
		// promotion): keep it hot rather than lose state.
		return
	}
	det, err := core.RestoreCheckpoint(buf)
	if err != nil {
		return
	}
	hs.fence()
	sh := p.shards[p.shardOf(hs.key)]
	st := &stream{key: hs.key, det: det, lastFed: sh.clock}
	sh.attach(st)
	sh.streams[hs.key] = st
	a.slots[hs.slot] = nil
	a.count--
	delete(a.demoteStreak, hs.key)
	a.demotions.Add(1)
	p.cfg.Recorder.Record(obs.SubPool, obs.EvDemote, hs.key, uint64(hs.slot))
}

// removeHotLocked detaches a hot stream from the hot set without
// re-attaching it to a shard (the Detach path: the caller owns the
// serialized state). Caller holds the exclusive gate.
func (p *Pool) removeHotLocked(hs *hotStream) {
	a := p.hot
	hs.fence()
	a.slots[hs.slot] = nil
	a.count--
	delete(a.demoteStreak, hs.key)
	a.table = buildHotTable(a.slots)
}

// HotStreamInfo describes one currently promoted stream.
type HotStreamInfo struct {
	// Key identifies the stream.
	Key uint64 `json:"key"`
	// Fed is the number of samples the hot worker has applied since
	// promotion.
	Fed uint64 `json:"fed"`
	// Rate is the stream's feed rate (samples/sec) over the previous
	// coordinator fold window.
	Rate float64 `json:"rate"`
}

// AdaptiveStats is a point-in-time view of the adaptive placement tier,
// surfaced by a serving layer's metrics endpoint.
type AdaptiveStats struct {
	// Enabled reports whether the adaptive tier is configured on.
	Enabled bool `json:"enabled"`
	// MaxHot is the configured hot-set capacity.
	MaxHot int `json:"max_hot"`
	// HotStreams is the current hot-set size.
	HotStreams int `json:"hot_streams"`
	// Promotions counts shard→hot transitions since the pool started.
	Promotions uint64 `json:"promotions"`
	// Demotions counts hot→shard transitions since the pool started.
	Demotions uint64 `json:"demotions"`
	// Folds counts coordinator sampling rounds since the pool started.
	Folds uint64 `json:"folds"`
	// Hot lists the currently promoted streams in ascending key order.
	Hot []HotStreamInfo `json:"hot,omitempty"`
}

// AdaptiveStats returns the adaptive tier's current counters and hot
// set. On a pool without the adaptive tier it returns the zero value
// (Enabled false). Safe to call concurrently with feeds; usable after
// Close.
func (p *Pool) AdaptiveStats() AdaptiveStats {
	a := p.hot
	if a == nil {
		return AdaptiveStats{}
	}
	p.gate.RLock()
	st := AdaptiveStats{
		Enabled:    true,
		MaxHot:     a.cfg.MaxHot,
		HotStreams: a.count,
		Promotions: a.promotions.Load(),
		Demotions:  a.demotions.Load(),
		Folds:      a.folds.Load(),
	}
	for _, hs := range a.slots {
		if hs == nil {
			continue
		}
		hs.mu.Lock()
		st.Hot = append(st.Hot, HotStreamInfo{Key: hs.key, Fed: hs.fed, Rate: hs.lastRate})
		hs.mu.Unlock()
	}
	p.gate.RUnlock()
	sort.Slice(st.Hot, func(i, j int) bool { return st.Hot[i].Key < st.Hot[j].Key })
	return st
}
