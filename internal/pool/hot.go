package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dpd/internal/core"
)

// Hot-stream execution: the placement a promoted "celebrity" stream
// runs on. A hot stream leaves its shard map entirely — its detector is
// owned by a dedicated worker goroutine (OS-thread-locked, so the
// scheduler keeps the hottest state on one core) fed through a bounded
// single-producer/single-consumer ring of batch runs. FeedBatch routes
// the key's samples straight onto that ring, bypassing the shard hash,
// the shard run queue and the shard map lookup; nothing the cold
// majority does contends with the celebrity, and the celebrity's feed
// path is a ring push instead of a shard-worker rendezvous.
//
// Membership of the hot set changes only under the pool's exclusive
// gate (the same phase switch Rebalance uses). While the gate is held
// exclusively every FeedBatch has returned, which means every hot ring
// is provably empty — so promotion, demotion, detach and close never
// race an in-flight run, and a stream's sample order is preserved
// exactly across placement changes.

// hotRun is one FeedBatch's slice of samples for one hot stream, staged
// in the batch group's per-slot buffer exactly like a shardRun.
type hotRun struct {
	samples []KeyedSample
	g       *group
}

// hotRing is the bounded SPSC queue between FeedBatch producers and one
// hot worker. Producers (many FeedBatch goroutines) serialize on pmu,
// so the ring itself only ever sees one producer and one consumer;
// head/tail are atomics, and the two 1-token channels carry park/wake
// hints in both directions (a dropped token is always rediscovered by
// the waiter's recheck loop, so a lost wakeup cannot wedge the ring).
type hotRing struct {
	buf  []hotRun
	mask uint64
	head atomic.Uint64 // next slot the consumer reads
	tail atomic.Uint64 // next slot the producer writes

	pmu      sync.Mutex    // serializes FeedBatch producers
	notEmpty chan struct{} // producer → consumer wake hint
	notFull  chan struct{} // consumer → producer wake hint
}

func newHotRing(capacity int) *hotRing {
	return &hotRing{
		buf:      make([]hotRun, capacity),
		mask:     uint64(capacity - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
	}
}

// push enqueues one run, blocking while the ring is full — the same
// backpressure a full shard run queue applies to feeders. The consumer
// never blocks on producers, so this cannot deadlock.
func (r *hotRing) push(run hotRun) {
	r.pmu.Lock()
	t := r.tail.Load()
	for t-r.head.Load() == uint64(len(r.buf)) {
		// Full: park until the consumer frees a slot. The token channel
		// holds at most one hint; if the consumer popped between our
		// check and the receive, the token is already there.
		<-r.notFull
	}
	r.buf[t&r.mask] = run
	r.tail.Store(t + 1)
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
	r.pmu.Unlock()
}

// hotStream is one promoted stream: detector state plus its dedicated
// worker's ring. The detector is fed only by the hot worker; readers
// (Stat, Snapshot, Checkpoint, the coordinator's rate fold) take mu,
// which the worker holds only while feeding a run.
type hotStream struct {
	key  uint64
	slot int // index in adaptiveState.slots and group.perHot
	ring *hotRing
	stop chan struct{}
	halt sync.Once // guards close(stop): Close and Detach may both fence

	mu  sync.Mutex
	det core.Detector
	fed uint64 // lifetime samples since promotion

	// Coordinator-maintained (under mu): samples since the last fold and
	// the rate computed over the previous fold window.
	window   uint64
	lastRate float64 // samples/sec over the previous fold window
}

// run is the hot worker loop: pop runs, feed the detector, count down
// the batch group. LockOSThread pins the goroutine to one OS thread so
// the hottest detector state stays on one core's cache ("pinned"
// worker). Exits when stop is closed and the ring is drained.
func (hs *hotStream) run(p *Pool) {
	defer p.wg.Done()
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	r := hs.ring
	for {
		h := r.head.Load()
		if h == r.tail.Load() {
			select {
			case <-r.notEmpty:
				continue
			case <-hs.stop:
				if r.head.Load() == r.tail.Load() {
					return
				}
				continue
			}
		}
		run := r.buf[h&r.mask]
		r.buf[h&r.mask] = hotRun{} // release the staging slice reference
		hs.mu.Lock()
		for _, ks := range run.samples {
			hs.det.Feed(ks.sample())
		}
		hs.fed += uint64(len(run.samples))
		hs.window += uint64(len(run.samples))
		hs.mu.Unlock()
		r.head.Store(h + 1)
		select {
		case r.notFull <- struct{}{}:
		default:
		}
		if run.g.pending.Add(-1) == 0 {
			run.g.done <- struct{}{}
		}
	}
}

// fence stops the hot worker (idempotently). Callers hold the exclusive
// gate, so the ring is empty and the worker is parked; it exits as soon
// as it observes the close.
func (hs *hotStream) fence() {
	hs.halt.Do(func() { close(hs.stop) })
}

// hotTable is the read-mostly hot-set lookup FeedBatch probes before
// shard partitioning: open-addressed, power-of-two, linear probing. A
// nil value marks an empty cell (key 0 is a legal stream key), so the
// cold-path miss is one multiply-shift, one array load and one
// predictable nil compare. The table is rebuilt (never mutated in
// place) under the exclusive gate on every hot-set change and read
// under the shared gate, so readers never see a partial update.
type hotTable struct {
	keys []uint64
	vals []*hotStream
	mask uint64
	n    int
}

// emptyHotTable is the table an adaptive pool starts with: one empty
// cell, so find is branch-minimal even before the first promotion.
func emptyHotTable() *hotTable {
	return &hotTable{keys: make([]uint64, 1), vals: make([]*hotStream, 1), mask: 0}
}

// find returns the hot stream serving key, or nil.
func (t *hotTable) find(key uint64) *hotStream {
	i := (key * 0x9e3779b97f4a7c15) >> 32 & t.mask
	for {
		hs := t.vals[i]
		if hs == nil {
			return nil
		}
		if t.keys[i] == key {
			return hs
		}
		i = (i + 1) & t.mask
	}
}

// buildHotTable constructs the lookup for the given hot set, sized at
// 4× occupancy (minimum 4 cells) so probe chains stay short.
func buildHotTable(slots []*hotStream) *hotTable {
	n := 0
	for _, hs := range slots {
		if hs != nil {
			n++
		}
	}
	size := 4
	for size < 4*n {
		size <<= 1
	}
	t := &hotTable{
		keys: make([]uint64, size),
		vals: make([]*hotStream, size),
		mask: uint64(size - 1),
		n:    n,
	}
	for _, hs := range slots {
		if hs == nil {
			continue
		}
		i := (hs.key * 0x9e3779b97f4a7c15) >> 32 & t.mask
		for t.vals[i] != nil {
			i = (i + 1) & t.mask
		}
		t.keys[i] = hs.key
		t.vals[i] = hs
	}
	return t
}
