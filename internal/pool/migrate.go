package pool

import (
	"errors"
	"fmt"

	"dpd/internal/core"
)

// Single-stream migration primitives. Detach and Attach are the
// network-rebalance analogue of Rebalance's in-process stream movement:
// a cluster tier detaches a stream on the old owner, ships the portable
// engine checkpoint over the wire, and attaches it on the new owner —
// the same codec, so the stream observes no difference between a local
// rebalance and a cross-node migration.
//
// Neither primitive excludes concurrent feeds of the SAME key by
// itself: Detach removes the stream under the shard lock, but a batch
// already past the caller's admission check would re-materialize the
// key with a fresh detector. The serving layer must fence the key
// before calling Detach (dpdserver does this with its feed barrier:
// ownership is re-checked under a lock the migration holds
// exclusively), and must route the key elsewhere until Attach has
// completed on the destination.

// ErrStreamExists is returned by Attach when the pool already serves
// the key; attaching over a live stream would silently fork its
// history, so the caller must Detach (or accept the existing stream)
// first.
var ErrStreamExists = errors.New("pool: attach: stream already exists")

// Detach removes one stream from the pool and returns its serialized
// engine checkpoint (appended to buf, recycled like append). The
// stream's detector is reset and recycled through the shard freelist.
// ok reports whether the key was live; a missing key is not an error —
// migrating a stream the pool has never seen ships no state and the
// destination materializes it on first feed, exactly as a fresh key.
//
// Only the stream's shard is locked; ingest on other shards continues.
// Detaching a promoted (hot) stream takes the exclusive gate instead:
// the hot worker must be fenced with no runs in flight, which is
// exactly what exclusive gate acquisition guarantees.
func (p *Pool) Detach(key uint64, buf []byte) (state []byte, ok bool, err error) {
	p.gate.RLock()
	hot := false
	if a := p.hot; a != nil && a.table.find(key) != nil {
		hot = true
	}
	if !hot {
		defer p.gate.RUnlock()
		return p.detachShard(key, buf)
	}
	p.gate.RUnlock()

	p.gate.Lock()
	defer p.gate.Unlock()
	if a := p.hot; a != nil {
		if hs := a.findLocked(key); hs != nil {
			hs.mu.Lock()
			state, err = core.AppendCheckpoint(hs.det, buf)
			hs.mu.Unlock()
			if err != nil {
				return buf, false, fmt.Errorf("pool: detach stream %d: %w", key, err)
			}
			p.removeHotLocked(hs)
			return state, true, nil
		}
	}
	// Demoted (or evicted) between the two lock acquisitions: the
	// shard path below is authoritative.
	return p.detachShard(key, buf)
}

// detachShard is the sharded-tier detach. Caller holds the gate (shared
// or exclusive).
func (p *Pool) detachShard(key uint64, buf []byte) (state []byte, ok bool, err error) {
	sh := p.shards[p.shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, live := sh.streams[key]
	if !live {
		return buf, false, nil
	}
	state, err = core.AppendCheckpoint(st.det, buf)
	if err != nil {
		return buf, false, fmt.Errorf("pool: detach stream %d: %w", key, err)
	}
	delete(sh.streams, key)
	st.det.Reset()
	sh.free = append(sh.free, st)
	return state, true, nil
}

// Attach restores one stream into the pool from a serialized engine
// checkpoint (as produced by Detach, Checkpoint frames, or
// dpd.Checkpoint). The state's engine spec must match the pool's
// detector factory — the same validation Restore applies — and the key
// must not be live (ErrStreamExists otherwise), so a misrouted
// migration can never silently fork or mix stream histories.
func (p *Pool) Attach(key uint64, state []byte) error {
	p.gate.RLock()
	defer p.gate.RUnlock()
	probe, err := core.AppendCheckpoint(p.cfg.NewDetector(), nil)
	if err != nil {
		return fmt.Errorf("pool: attach: factory detector is not checkpointable: %w", err)
	}
	probeSpec, err := core.DecodeSpec(probe)
	if err != nil {
		return fmt.Errorf("pool: attach: factory probe: %w", err)
	}
	spec, err := core.DecodeSpec(state)
	if err != nil {
		return fmt.Errorf("pool: attach stream %d: %w", key, err)
	}
	if !spec.Equal(probeSpec) {
		return fmt.Errorf("pool: attach: stream %d is a %s-engine state that does not match the pool's detector factory (%s)",
			key, spec.EngineName(), probeSpec.EngineName())
	}
	det, err := core.RestoreCheckpoint(state)
	if err != nil {
		return fmt.Errorf("pool: attach stream %d: %w", key, err)
	}
	if a := p.hot; a != nil && a.table.find(key) != nil {
		return fmt.Errorf("%w (key %d)", ErrStreamExists, key)
	}
	sh := p.shards[p.shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.streams[key]; dup {
		return fmt.Errorf("%w (key %d)", ErrStreamExists, key)
	}
	st := &stream{key: key, det: det, lastFed: sh.clock}
	sh.attach(st)
	sh.streams[key] = st
	return nil
}
