package pool

import (
	"errors"
	"testing"

	"dpd/internal/core"
)

// TestDetachAttachRoundTrip: a stream detached from one pool and
// attached to another continues byte-identically — the single-stream
// analogue of the Rebalance differential, and the primitive the cluster
// tier's cross-node migration is built on.
func TestDetachAttachRoundTrip(t *testing.T) {
	cfg := Config{Shards: 2, Detector: core.Config{Window: 16}}
	src := Must(cfg)
	defer src.Close()
	ref, err := core.NewEventEngineConfig(core.Config{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		src.Feed(7, int64(i%3))
		ref.Feed(core.Sample{Value: int64(i % 3)})
	}

	state, ok, err := src.Detach(7, nil)
	if err != nil || !ok {
		t.Fatalf("Detach(7) ok=%v err=%v", ok, err)
	}
	if _, live := src.Stat(7); live {
		t.Fatal("stream 7 still live after Detach")
	}

	dst := Must(cfg)
	defer dst.Close()
	if err := dst.Attach(7, state); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for i := 40; i < 120; i++ {
		dst.Feed(7, int64(i%3))
		ref.Feed(core.Sample{Value: int64(i % 3)})
	}
	got, ok := dst.Stat(7)
	if !ok {
		t.Fatal("stream 7 missing after Attach")
	}
	if want := ref.Snapshot(); got.Stat != want {
		t.Fatalf("migrated stream diverged: got %+v want %+v", got.Stat, want)
	}

	gotState, _, err := dst.Detach(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := core.AppendCheckpoint(ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotState) != string(wantState) {
		t.Fatal("migrated stream state is not byte-identical to the standalone reference")
	}
}

// TestDetachMissingKey: detaching a never-seen key is ok=false, not an
// error — the zero-stream migration case ships no state.
func TestDetachMissingKey(t *testing.T) {
	p := Must(Config{Shards: 2, Detector: core.Config{Window: 16}})
	defer p.Close()
	state, ok, err := p.Detach(99, nil)
	if err != nil || ok || len(state) != 0 {
		t.Fatalf("Detach(missing) = (%d bytes, %v, %v), want (0, false, nil)", len(state), ok, err)
	}
}

// TestAttachRejectsLiveKey: attaching over a live stream is
// ErrStreamExists, never a silent history fork.
func TestAttachRejectsLiveKey(t *testing.T) {
	p := Must(Config{Shards: 2, Detector: core.Config{Window: 16}})
	defer p.Close()
	p.Feed(5, 1)
	state, _, err := p.Detach(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Feed(5, 2) // re-materialized fresh
	if err := p.Attach(5, state); !errors.Is(err, ErrStreamExists) {
		t.Fatalf("Attach over live key: %v, want ErrStreamExists", err)
	}
}

// TestAttachRejectsEngineMismatch: a state from a different engine kind
// never mixes into the pool.
func TestAttachRejectsEngineMismatch(t *testing.T) {
	magCfg := Config{Shards: 1, NewDetector: func() core.Detector {
		d, err := core.NewMagnitudeDetector(core.Config{Window: 16})
		if err != nil {
			panic(err)
		}
		return core.NewMagnitudeEngine(d)
	}}
	magPool := Must(magCfg)
	defer magPool.Close()
	magPool.FeedSample(3, core.Sample{Magnitude: 1})
	state, _, err := magPool.Detach(3, nil)
	if err != nil {
		t.Fatal(err)
	}

	evPool := Must(Config{Shards: 1, Detector: core.Config{Window: 16}})
	defer evPool.Close()
	if err := evPool.Attach(3, state); err == nil {
		t.Fatal("Attach accepted a magnitude-engine state into an event-engine pool")
	}
}
