// Package pool serves many concurrent keyed data series through one
// sharded detector pool — the step from the paper's single-application
// DPD to a runtime system that watches every application of a
// multiprogrammed workload at once.
//
// Streams are identified by a uint64 key (for the paper's use case, a
// process or application id). Keys are hashed across a fixed set of
// shards; each shard owns a map of per-stream detector states and is
// drained by a dedicated worker goroutine, so the feed path takes no
// global lock. Batches handed to FeedBatch are partitioned into
// per-shard runs through recycled batch groups, keeping the steady-state
// per-sample path allocation-free end to end (the property PR 1
// established for a single detector). Expired streams are evicted by an
// idle-TTL sweep and their detector state is recycled through a per-shard
// freelist rather than released to the garbage collector.
package pool

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpd/internal/core"
	"dpd/internal/obs"
)

// KeyedSample is one sample of one keyed stream: the unit of work of the
// multi-stream feed path.
type KeyedSample struct {
	// Key identifies the stream (e.g. an application or process id).
	Key uint64
	// Value is the event sample (e.g. an encapsulated-loop address),
	// consumed by event, multi-scale and adaptive engines.
	Value int64
	// Magnitude is the magnitude sample (e.g. a CPU count), consumed by
	// magnitude engines (pools built with a NewDetector magnitude
	// factory).
	Magnitude float64
}

// sample converts the keyed sample to the unified detector unit.
func (ks KeyedSample) sample() core.Sample {
	return core.Sample{Value: ks.Value, Magnitude: ks.Magnitude}
}

// Config parameterizes a Pool. The zero value selects GOMAXPROCS shards,
// the paper-default per-stream event detector, and no idle eviction.
type Config struct {
	// Shards is the number of independent workers the key space is hashed
	// across; 0 selects runtime.GOMAXPROCS(0).
	Shards int
	// NewDetector, when non-nil, constructs each stream's detector
	// engine: the pool is generic over the unified core.Detector
	// interface, so pooled streams can run event, magnitude,
	// multi-scale or adaptive engines. The factory must return a fresh
	// independent detector on every call and is invoked from shard
	// workers (it must be safe for concurrent use; pure constructors
	// are). When nil, streams run the event engine configured by
	// Detector.
	NewDetector func() core.Detector
	// Detector configures the per-stream event detector (paper eq. 2)
	// when NewDetector is nil.
	Detector core.Config
	// StreamObserver, when non-nil, is consulted every time a stream is
	// materialized — first sample of a new key, checkpoint restore,
	// rebalance migration, or recycle from the eviction freelist — with
	// the stream's key, and the Observer it returns (nil for none) is
	// attached to that stream's detector. This is the hook a serving
	// layer uses to push per-key lock/period events to subscribers
	// without polling. Returned observers run on shard workers with the
	// shard lock held: they must be cheap, allocation-free and must not
	// call back into the Pool. Detectors that do not implement
	// SetObserver (custom engines) are served without one.
	StreamObserver func(key uint64) core.Observer
	// IdleTTL, when non-zero, expires a stream after it has gone more
	// than IdleTTL shard samples without being fed (a shard sample is one
	// sample processed by the stream's shard, so the TTL scales with the
	// shard's own traffic). Evicted detector state is recycled.
	IdleTTL uint64
	// SweepEvery is how often (in shard samples) a shard scans for idle
	// streams; 0 selects DefaultSweepEvery. Only meaningful with IdleTTL.
	SweepEvery uint64
	// Inflight bounds the number of FeedBatch calls that can be in flight
	// at once before callers block (backpressure); 0 selects 2×Shards,
	// minimum 4.
	Inflight int
	// Adaptive configures contention-adaptive hot-stream placement:
	// per-shard feed-rate sampling, and promotion of celebrity streams
	// onto dedicated pinned workers when their share of traffic crosses
	// a threshold (demotion when they cool). The zero value disables the
	// tier. See AdaptiveConfig.
	Adaptive AdaptiveConfig
	// Recorder, when non-nil, receives flight-recorder events for the
	// pool's cold transitions: promotions, demotions and rebalances.
	// Nothing is recorded per sample or per batch.
	Recorder *obs.Recorder
	// FeedLatency, when non-nil, samples FeedBatch durations (strided:
	// 1-in-SampleEvery batches pay for two clock reads; the rest pay one
	// atomic add). The serving layer surfaces its quantiles in /metrics.
	FeedLatency *obs.SampledHist
}

// DefaultSweepEvery is the default idle-sweep cadence in shard samples.
const DefaultSweepEvery = 1024

// MaxShards bounds Config.Shards; beyond this the per-shard fixed cost
// dwarfs any conceivable parallelism win.
const MaxShards = 1 << 12

// StreamStat is a point-in-time, read-only view of one stream: the
// unified core.Stat (samples, lock, period, confidence, segment
// boundaries, prediction) plus the stream's key, captured without
// stalling ingest on other shards.
type StreamStat struct {
	// Key identifies the stream.
	Key uint64
	// Stat is the stream's detector snapshot; its fields (Samples,
	// Locked, Period, Starts, LastStart, Predicted, PredictedValid, …)
	// are promoted onto StreamStat.
	core.Stat
}

// Pool owns many keyed streams, one event detector per stream, sharded
// across worker goroutines. Feed and FeedBatch may be called from any
// number of goroutines concurrently; Close must not race with them.
//
// The shard set itself is a runtime knob: Rebalance migrates every
// stream to a new shard count by serializing its detector state through
// the checkpoint codec. The gate below is the phase switch that makes
// that safe — feed and read paths hold it shared (cheap, concurrent),
// while Rebalance and Close hold it exclusively, which both blocks new
// batches and waits out in-flight ones before the shard table changes.
type Pool struct {
	gate     sync.RWMutex
	shards   []*shard
	groups   chan *group // freelist of recycled batch groups
	cfg      Config      // normalized construction config (shard factory)
	wg       sync.WaitGroup
	closed   atomic.Bool
	closedCh chan struct{} // closed when Close has fully drained the workers

	// hot is the adaptive-placement tier root; nil when Config.Adaptive
	// is disabled, so the cold configuration pays one nil check per
	// batch.
	hot *adaptiveState

	// evictedBase carries the eviction totals of shard generations
	// retired by Rebalance, so Evicted stays monotonic across shard-count
	// changes. Written under the exclusive gate, read under the shared
	// gate.
	evictedBase uint64
}

// group is one in-flight FeedBatch: per-shard staging buffers (plus
// per-hot-slot staging buffers when the adaptive tier is on) and the
// completion countdown. Groups are recycled through Pool.groups so the
// steady-state batch path performs no allocation.
type group struct {
	perShard [][]KeyedSample
	perHot   [][]KeyedSample // indexed by hot slot; nil when adaptive is off
	pending  atomic.Int32
	done     chan struct{}
}

// New returns a started pool. The detector configuration (or injected
// factory) is validated eagerly so that stream creation inside the
// shard workers cannot fail.
func New(cfg Config) (*Pool, error) {
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("pool: shards %d outside [1,%d]", cfg.Shards, MaxShards)
	}
	if cfg.NewDetector == nil {
		// Validate once, then capture the validated event configuration
		// in the default factory.
		if _, err := core.NewEventDetector(cfg.Detector); err != nil {
			return nil, err
		}
		detCfg := cfg.Detector
		cfg.NewDetector = func() core.Detector {
			eng, err := core.NewEventEngineConfig(detCfg)
			if err != nil {
				panic(err) // validated above; cannot happen
			}
			return eng
		}
	} else if probe := cfg.NewDetector(); probe == nil {
		return nil, fmt.Errorf("pool: NewDetector factory returned nil")
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = DefaultSweepEvery
	}
	if cfg.Inflight == 0 {
		cfg.Inflight = 2 * cfg.Shards
	}
	if cfg.Inflight < 4 {
		cfg.Inflight = 4
	}
	if cfg.Adaptive.Enable {
		if err := cfg.Adaptive.normalize(); err != nil {
			return nil, err
		}
	}

	p := &Pool{
		shards:   make([]*shard, cfg.Shards),
		groups:   make(chan *group, cfg.Inflight),
		cfg:      cfg,
		closedCh: make(chan struct{}),
	}
	if cfg.Adaptive.Enable {
		p.hot = newAdaptiveState(cfg.Adaptive)
	}
	for i := range p.shards {
		p.shards[i] = newShard(cfg, i)
		p.wg.Add(1)
		go p.worker(p.shards[i])
	}
	for i := 0; i < cfg.Inflight; i++ {
		g := &group{
			perShard: make([][]KeyedSample, cfg.Shards),
			done:     make(chan struct{}, 1),
		}
		if p.hot != nil {
			g.perHot = make([][]KeyedSample, cfg.Adaptive.MaxHot)
		}
		p.groups <- g
	}
	if p.hot != nil {
		p.hot.lastFold = time.Now()
		go p.coordinator()
	}
	return p, nil
}

// Must is New that panics on configuration errors; for static
// configurations in examples and benchmarks.
func Must(cfg Config) *Pool {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// shardIndex maps a stream key to a shard index among n shards: a
// splitmix64-style finalizer for avalanche, then a multiply-shift range
// reduction so no modulo sits on the partition path. It is a pure
// function of (key, n), which is what lets Rebalance compute the new
// placement of every stream before the shard table is swapped.
func shardIndex(key uint64, n int) int {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return int(uint64(uint32(key)) * uint64(n) >> 32)
}

// shardOf maps a stream key to its current shard index. Callers hold
// the gate (shared or exclusive), so the shard table cannot move
// underneath the lookup.
func (p *Pool) shardOf(key uint64) int { return shardIndex(key, len(p.shards)) }

// Feed processes one keyed event sample synchronously on the caller's
// goroutine (bypassing the shard worker queue) and returns the stream's
// detection result. Per-key ordering with concurrent FeedBatch traffic on
// the same key is the caller's responsibility. For magnitude engines use
// FeedSample.
func (p *Pool) Feed(key uint64, v int64) core.Result {
	return p.FeedSample(key, core.Sample{Value: v})
}

// FeedSample is Feed for the unified sample type: the entry point for
// pooled magnitude streams (Sample.Magnitude) and generally for any
// injected engine. Like FeedBatch, calling it on a closed pool panics.
func (p *Pool) FeedSample(key uint64, s core.Sample) core.Result {
	if p.closed.Load() {
		panic("pool: Feed on a closed Pool")
	}
	p.gate.RLock()
	if a := p.hot; a != nil && a.table.n > 0 {
		if hs := a.table.find(key); hs != nil {
			// Hot stream: feed on the caller's goroutine under the
			// stream mutex (the worker holds it only while draining
			// ring runs, so the synchronous path serializes correctly).
			hs.mu.Lock()
			r := hs.det.Feed(s)
			hs.fed++
			hs.window++
			hs.mu.Unlock()
			p.gate.RUnlock()
			return r
		}
	}
	sh := p.shards[p.shardOf(key)]
	sh.mu.Lock()
	r := sh.feedLocked(key, s)
	sh.maybeSweep()
	sh.mu.Unlock()
	p.gate.RUnlock()
	return r
}

// FeedBatch partitions a batch of keyed samples across the shard workers
// and blocks until every sample has been applied; calling it on a closed
// pool panics. Samples of the same key are processed in batch order. The
// batch slice is not retained. The
// steady-state path (all streams already exist, staging buffers warmed)
// performs no allocation; at most Config.Inflight batches proceed
// concurrently before callers block.
func (p *Pool) FeedBatch(batch []KeyedSample) {
	if len(batch) == 0 {
		return
	}
	if p.closed.Load() {
		panic("pool: FeedBatch on a closed Pool")
	}
	// Strided latency sample: an elected batch (1-in-stride) bookends
	// the call with two clock reads; every other batch pays one atomic
	// add. Neither side allocates, preserving the 0 allocs/op contract
	// with instrumentation enabled.
	var t0 time.Time
	lat := p.cfg.FeedLatency
	if lat.Sampled() {
		t0 = time.Now()
	} else {
		lat = nil
	}
	p.gate.RLock()
	g := <-p.groups
	// Hot-set split: when the adaptive tier is on AND something is
	// promoted, promoted keys are peeled off into per-slot staging
	// before shard partitioning — one predictable nil-check branch plus
	// an open-addressed array probe on the cold path. With an empty hot
	// set (the usual well-behaved-workload state) tbl stays nil and the
	// loop is byte-for-byte the non-adaptive one. The table pointer is
	// stable for the duration of the shared gate (hot-set changes hold
	// it exclusively).
	var tbl *hotTable
	if a := p.hot; a != nil && a.table.n > 0 {
		tbl = a.table
	}
	for _, s := range batch {
		if tbl != nil {
			if hs := tbl.find(s.Key); hs != nil {
				g.perHot[hs.slot] = append(g.perHot[hs.slot], s)
				continue
			}
		}
		i := p.shardOf(s.Key)
		g.perShard[i] = append(g.perShard[i], s)
	}
	active := int32(0)
	for _, run := range g.perShard {
		if len(run) > 0 {
			active++
		}
	}
	if tbl != nil {
		for _, run := range g.perHot {
			if len(run) > 0 {
				active++
			}
		}
	}
	g.pending.Store(active)
	for i, samples := range g.perShard {
		if len(samples) > 0 {
			p.shards[i].in <- shardRun{samples: samples, g: g}
		}
	}
	if tbl != nil {
		for slot, samples := range g.perHot {
			if len(samples) > 0 {
				// slots[slot] is exactly the stream the table resolved:
				// both are immutable under the shared gate.
				p.hot.slots[slot].ring.push(hotRun{samples: samples, g: g})
			}
		}
	}
	<-g.done
	for i := range g.perShard {
		g.perShard[i] = g.perShard[i][:0]
	}
	if tbl != nil {
		for i := range g.perHot {
			g.perHot[i] = g.perHot[i][:0]
		}
	}
	p.groups <- g
	p.gate.RUnlock()
	if lat != nil {
		lat.Observe(time.Since(t0))
	}
}

// worker drains one shard's run queue until Close.
func (p *Pool) worker(sh *shard) {
	defer p.wg.Done()
	for r := range sh.in {
		sh.mu.Lock()
		for _, ks := range r.samples {
			sh.feedLocked(ks.Key, ks.sample())
		}
		sh.maybeSweep()
		sh.mu.Unlock()
		if r.g.pending.Add(-1) == 0 {
			r.g.done <- struct{}{}
		}
	}
}

// Snapshot appends one StreamStat per live stream to dst (recycled like
// append) and returns the filled slice. Shards are locked one at a time,
// so ingest continues on every other shard while one is read; stream
// order is unspecified — sort by Key if a stable order is needed.
func (p *Pool) Snapshot(dst []StreamStat) []StreamStat {
	p.gate.RLock()
	defer p.gate.RUnlock()
	dst = dst[:0]
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, st := range sh.streams {
			dst = append(dst, st.stat())
		}
		sh.mu.Unlock()
	}
	if a := p.hot; a != nil {
		for _, hs := range a.slots {
			if hs == nil {
				continue
			}
			hs.mu.Lock()
			dst = append(dst, StreamStat{Key: hs.key, Stat: hs.det.Snapshot()})
			hs.mu.Unlock()
		}
	}
	return dst
}

// SnapshotPage appends to dst (recycled like append) the stats of up to
// limit live streams whose keys are at least from, in ascending key
// order — the enumeration hook a query plane pages a large pool with:
// request (0, limit), then (next, limit) until more comes back false.
// The (next, more) cursor is computed from the key selection itself, so
// a stream evicted mid-page shortens that page without silently ending
// the enumeration — "short page" and "last page" are distinct signals.
//
// Selection runs in two passes so shard locks never cover page
// assembly: first the limit smallest qualifying keys are chosen with a
// bounded max-heap (O(streams·log limit) on bare keys, shards locked
// one at a time), then each key's Stat is captured. Like Snapshot, the
// pool-wide view is slightly time-skewed: a stream created behind the
// cursor during paging is missed until the next sweep, and one evicted
// between the passes drops off its page. limit <= 0 returns an empty
// final page.
func (p *Pool) SnapshotPage(from uint64, limit int, dst []StreamStat) (page []StreamStat, next uint64, more bool) {
	dst = dst[:0]
	if limit <= 0 {
		return dst, from, false
	}
	heap := make([]uint64, 0, limit)
	p.gate.RLock()
	for _, sh := range p.shards {
		sh.mu.Lock()
		for key := range sh.streams {
			if key < from {
				continue
			}
			if len(heap) < limit {
				heap = append(heap, key)
				siftUp(heap)
			} else if key < heap[0] {
				heap[0] = key
				siftDown(heap)
			}
		}
		sh.mu.Unlock()
	}
	if a := p.hot; a != nil {
		for _, hs := range a.slots {
			if hs == nil || hs.key < from {
				continue
			}
			key := hs.key
			if len(heap) < limit {
				heap = append(heap, key)
				siftUp(heap)
			} else if key < heap[0] {
				heap[0] = key
				siftDown(heap)
			}
		}
	}
	p.gate.RUnlock()
	sort.Slice(heap, func(i, j int) bool { return heap[i] < heap[j] })
	for _, key := range heap {
		if st, ok := p.Stat(key); ok {
			dst = append(dst, st)
		}
	}
	// A full selection means keys beyond this page may exist; resume
	// after the largest selected key (unless it is the last possible
	// key, where the space is exhausted by construction).
	if len(heap) == limit && heap[limit-1] != ^uint64(0) {
		return dst, heap[limit-1] + 1, true
	}
	return dst, from, false
}

// siftUp restores the max-heap property after appending to h.
func siftUp(h []uint64) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the max-heap property after replacing h[0].
func siftDown(h []uint64) {
	i := 0
	for {
		largest := i
		if l := 2*i + 1; l < len(h) && h[l] > h[largest] {
			largest = l
		}
		if r := 2*i + 2; r < len(h) && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// ShardLens appends the per-shard live-stream counts to dst (recycled
// like append): the shard-occupancy view a metrics endpoint reports so
// hash skew across the shard set is observable.
func (p *Pool) ShardLens(dst []int) []int {
	p.gate.RLock()
	defer p.gate.RUnlock()
	dst = dst[:0]
	for _, sh := range p.shards {
		sh.mu.Lock()
		dst = append(dst, len(sh.streams))
		sh.mu.Unlock()
	}
	return dst
}

// ShardSamples appends each shard's processed-sample count (since the
// pool was created or last rebalanced) to dst, recycled like append.
// Samples served by promoted hot workers are not counted anywhere here
// — that is the observable effect of adaptive placement: a promoted
// celebrity's traffic leaves its old shard's counter, which falls back
// to the uniform baseline.
func (p *Pool) ShardSamples(dst []uint64) []uint64 {
	p.gate.RLock()
	defer p.gate.RUnlock()
	dst = dst[:0]
	for _, sh := range p.shards {
		sh.mu.Lock()
		dst = append(dst, sh.clock)
		sh.mu.Unlock()
	}
	return dst
}

// Stat returns the current view of one stream and whether it exists.
func (p *Pool) Stat(key uint64) (StreamStat, bool) {
	p.gate.RLock()
	defer p.gate.RUnlock()
	if a := p.hot; a != nil {
		if hs := a.table.find(key); hs != nil {
			hs.mu.Lock()
			st := StreamStat{Key: hs.key, Stat: hs.det.Snapshot()}
			hs.mu.Unlock()
			return st, true
		}
	}
	sh := p.shards[p.shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[key]
	if !ok {
		return StreamStat{}, false
	}
	return st.stat(), true
}

// Len returns the number of live streams across all shards.
func (p *Pool) Len() int {
	p.gate.RLock()
	defer p.gate.RUnlock()
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += len(sh.streams)
		sh.mu.Unlock()
	}
	if a := p.hot; a != nil {
		n += a.count
	}
	return n
}

// Shards returns the number of shards the key space is hashed across.
// It changes only through Rebalance.
func (p *Pool) Shards() int {
	p.gate.RLock()
	defer p.gate.RUnlock()
	return len(p.shards)
}

// Evicted returns the total number of streams expired by idle eviction
// (automatic sweeps and EvictIdle combined) since the pool was created.
func (p *Pool) Evicted() uint64 {
	p.gate.RLock()
	defer p.gate.RUnlock()
	n := p.evictedBase
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.evicted
		sh.mu.Unlock()
	}
	return n
}

// EvictIdle immediately expires every sharded stream that has gone more
// than ttl shard samples without being fed, regardless of
// Config.IdleTTL, and returns the number evicted. Promoted (hot)
// streams are never idle-evicted — by definition they are the busiest
// keys, and a hot stream whose traffic stops is first demoted back to
// its shard by the coordinator, where the TTL applies again. Detector state is recycled. On a closed
// pool it evicts nothing, so late sweeps cannot erode the final state a
// post-Close Checkpoint captures.
func (p *Pool) EvictIdle(ttl uint64) int {
	if p.closed.Load() {
		return 0
	}
	p.gate.RLock()
	defer p.gate.RUnlock()
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.sweep(ttl)
		sh.mu.Unlock()
	}
	return n
}

// Close stops the shard workers and waits for them to drain. It must
// not be called concurrently with Feed or FeedBatch. It is idempotent:
// every call, first or not, returns only after the pool is fully
// stopped, so a shutdown path with several owners can Close defensively.
//
// The contract after Close — the exact sequence a serving layer's
// shutdown hits:
//
//   - Feed, FeedSample and FeedBatch panic (like a send on a closed
//     channel, this is a caller ordering bug, not a recoverable state).
//   - Snapshot, SnapshotPage, Stat, Len, Shards, ShardLens and Evicted
//     remain usable and observe the final state.
//   - Checkpoint remains usable and captures the final quiesced state —
//     close first, checkpoint last is the loss-free shutdown order.
//   - Rebalance and EvictIdle return an error / evict nothing.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		// Another Close got there first; wait until its drain has fully
		// finished. (The gate alone is not a handshake: a second caller
		// could acquire it before the first Close does.)
		<-p.closedCh
		return
	}
	if a := p.hot; a != nil {
		// Stop and join the coordinator before taking the gate, so no
		// promotion or demotion can start once the drain begins. (A
		// round already past its closed check finishes first — it holds
		// the gate we are about to take.)
		close(a.stop)
		<-a.done
	}
	p.gate.Lock()
	defer p.gate.Unlock()
	for _, sh := range p.shards {
		close(sh.in)
	}
	if a := p.hot; a != nil {
		// Rings are empty under the exclusive gate; fencing parks each
		// hot worker permanently. Hot streams stay in their slots so
		// post-Close reads and Checkpoint observe the final state.
		for _, hs := range a.slots {
			if hs != nil {
				hs.fence()
			}
		}
	}
	p.wg.Wait()
	close(p.closedCh)
}
