package pool

import (
	"testing"

	"dpd/internal/core"
)

// feedRounds pushes `rounds` samples into every listed key through
// FeedBatch, one sample per key per round; key k's stream cycles a
// period-(2+k%5) pattern so different streams lock different periods.
func feedRounds(p *Pool, keys []uint64, rounds int) {
	batch := make([]KeyedSample, len(keys))
	for r := 0; r < rounds; r++ {
		for i, k := range keys {
			period := 2 + int(k%5)
			batch[i] = KeyedSample{Key: k, Value: int64(r % period)}
		}
		p.FeedBatch(batch)
	}
}

func TestPoolDetectsPerStreamPeriods(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 32}})
	defer p.Close()

	keys := []uint64{0, 1, 2, 3, 4, 100, 2001, 1 << 40}
	feedRounds(p, keys, 100)

	if got := p.Len(); got != len(keys) {
		t.Fatalf("Len() = %d, want %d", got, len(keys))
	}
	for _, k := range keys {
		st, ok := p.Stat(k)
		if !ok {
			t.Fatalf("stream %d missing", k)
		}
		want := 2 + int(k%5)
		if !st.Locked || st.Period != want {
			t.Errorf("stream %d: locked=%v period=%d, want locked period %d", k, st.Locked, st.Period, want)
		}
		if st.Samples != 100 {
			t.Errorf("stream %d: samples=%d, want 100", k, st.Samples)
		}
		if st.Starts == 0 {
			t.Errorf("stream %d: no period starts observed", k)
		}
		if !st.PredictedValid {
			t.Errorf("stream %d: no prediction despite lock", k)
		}
	}
}

func TestPoolSnapshotCoversAllStreams(t *testing.T) {
	p := Must(Config{Shards: 3, Detector: core.Config{Window: 16}})
	defer p.Close()

	keys := []uint64{7, 8, 9, 10, 11}
	feedRounds(p, keys, 50)

	var dst []StreamStat
	dst = p.Snapshot(dst)
	if len(dst) != len(keys) {
		t.Fatalf("snapshot has %d streams, want %d", len(dst), len(keys))
	}
	seen := map[uint64]StreamStat{}
	for _, s := range dst {
		seen[s.Key] = s
	}
	for _, k := range keys {
		s, ok := seen[k]
		if !ok {
			t.Fatalf("snapshot missing stream %d", k)
		}
		direct, _ := p.Stat(k)
		if s != direct {
			t.Errorf("stream %d: snapshot %+v != Stat %+v", k, s, direct)
		}
	}
	// The recycled destination must be reusable.
	dst2 := p.Snapshot(dst)
	if len(dst2) != len(keys) {
		t.Fatalf("recycled snapshot has %d streams, want %d", len(dst2), len(keys))
	}
}

func TestPoolPredictionMatchesStream(t *testing.T) {
	p := Must(Config{Shards: 1, Detector: core.Config{Window: 16}})
	defer p.Close()

	// Period-3 stream 0,1,2,0,1,2,... last fed value at round r-1.
	const key = 42
	rounds := 40
	for r := 0; r < rounds; r++ {
		p.Feed(key, int64(r%3))
	}
	st, ok := p.Stat(key)
	if !ok || !st.PredictedValid {
		t.Fatalf("no prediction: %+v", st)
	}
	if want := int64(rounds % 3); st.Predicted != want {
		t.Errorf("predicted %d, want %d", st.Predicted, want)
	}
}

func TestPoolIdleEvictionRecyclesStreams(t *testing.T) {
	p := Must(Config{
		Shards:     1,
		Detector:   core.Config{Window: 8},
		IdleTTL:    20,
		SweepEvery: 10,
	})
	defer p.Close()

	p.Feed(1, 0)
	for i := 0; i < 100; i++ {
		p.Feed(2, int64(i%3))
	}
	if got := p.Len(); got != 1 {
		t.Fatalf("after idling stream 1: Len() = %d, want 1 (evicted)", got)
	}
	if got := p.Evicted(); got != 1 {
		t.Fatalf("Evicted() = %d, want 1", got)
	}
	// Re-feeding the evicted key creates a fresh stream (freelist reuse).
	p.Feed(1, 7)
	st, ok := p.Stat(1)
	if !ok {
		t.Fatal("stream 1 missing after re-feed")
	}
	if st.Samples != 1 || st.Locked || st.Starts != 0 {
		t.Errorf("recycled stream carries stale state: %+v", st)
	}
}

func TestPoolEvictIdleForcedSweep(t *testing.T) {
	p := Must(Config{Shards: 1, Detector: core.Config{Window: 8}})
	defer p.Close()

	feedRounds(p, []uint64{1, 2, 3, 4}, 5)
	if n := p.EvictIdle(1 << 30); n != 0 {
		t.Fatalf("EvictIdle(huge) evicted %d, want 0", n)
	}
	// Idleness is strict (> ttl): key 4 was fed at the shard's current
	// clock, so EvictIdle(0) expires exactly the other three.
	if n := p.EvictIdle(0); n != 3 {
		t.Fatalf("EvictIdle(0) evicted %d, want 3", n)
	}
	if got := p.Len(); got != 1 {
		t.Fatalf("Len() = %d after EvictIdle(0), want 1", got)
	}
}

func TestPoolFeedBatchPreservesPerKeyOrder(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 16}})
	defer p.Close()

	// One batch carrying several consecutive samples of the same key must
	// apply them in order: a period-2 stream interleaved any other way
	// would not lock.
	var batch []KeyedSample
	for i := 0; i < 60; i++ {
		batch = append(batch, KeyedSample{Key: 5, Value: int64(i % 2)})
	}
	p.FeedBatch(batch)
	st, _ := p.Stat(5)
	if !st.Locked || st.Period != 2 {
		t.Fatalf("in-batch order broken: %+v, want locked period 2", st)
	}
}

func TestPoolConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := New(Config{Shards: MaxShards + 1}); err == nil {
		t.Error("oversized shards accepted")
	}
	if _, err := New(Config{Detector: core.Config{Window: 1}}); err == nil {
		t.Error("invalid detector config accepted")
	}
	p, err := New(Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if p.Shards() < 1 {
		t.Errorf("zero config produced %d shards", p.Shards())
	}
	p.Close()
	p.Close() // idempotent
}

func TestPoolFeedBatchAfterClosePanics(t *testing.T) {
	p := Must(Config{Shards: 1, Detector: core.Config{Window: 8}})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("FeedBatch on a closed pool did not panic")
		}
	}()
	p.FeedBatch([]KeyedSample{{Key: 1, Value: 2}})
}

func TestPoolShardOfCoversAllShards(t *testing.T) {
	p := Must(Config{Shards: 8, Detector: core.Config{Window: 8}})
	defer p.Close()

	hit := make([]bool, 8)
	for k := uint64(0); k < 4096; k++ {
		i := p.shardOf(k)
		if i < 0 || i >= 8 {
			t.Fatalf("shardOf(%d) = %d out of range", k, i)
		}
		hit[i] = true
	}
	for i, h := range hit {
		if !h {
			t.Errorf("shard %d never selected by 4096 sequential keys", i)
		}
	}
}

// magnitudeWave is a deterministic FT-like CPU-usage sample: period-44
// square-ish wave, phase-shifted per key.
func magnitudeWave(key uint64, i int) float64 {
	if (i+int(key%7))%44 < 30 {
		return 16
	}
	return 1
}

// TestPoolInjectedMagnitudeEngine proves a pooled stream can run the
// eq. (1) magnitude engine through Config.NewDetector, with per-stream
// state identical to a standalone engine fed the same wave.
func TestPoolInjectedMagnitudeEngine(t *testing.T) {
	cfg := core.Config{Window: 100, Confirm: 3}
	p := Must(Config{
		Shards: 2,
		NewDetector: func() core.Detector {
			return core.NewMagnitudeEngine(core.MustMagnitudeDetector(cfg))
		},
	})
	defer p.Close()

	keys := []uint64{3, 11, 40}
	const n = 400
	batch := make([]KeyedSample, len(keys))
	for i := 0; i < n; i++ {
		for j, k := range keys {
			batch[j] = KeyedSample{Key: k, Magnitude: magnitudeWave(k, i)}
		}
		p.FeedBatch(batch)
	}
	for _, k := range keys {
		eng := core.NewMagnitudeEngine(core.MustMagnitudeDetector(cfg))
		for i := 0; i < n; i++ {
			eng.Feed(core.Sample{Magnitude: magnitudeWave(k, i)})
		}
		want := eng.Snapshot()
		got, ok := p.Stat(k)
		if !ok {
			t.Fatalf("stream %d missing", k)
		}
		if got.Stat != want {
			t.Errorf("stream %d diverges from standalone magnitude engine:\n  pool:       %+v\n  standalone: %+v", k, got.Stat, want)
		}
		if !got.Locked || got.Period != 44 {
			t.Errorf("stream %d: locked=%v period=%d, want locked period 44", k, got.Locked, got.Period)
		}
	}
}

// TestPoolInjectedMultiScaleEngine proves a pooled stream can run the
// multi-scale ladder, detecting the outer period of a nested stream.
func TestPoolInjectedMultiScaleEngine(t *testing.T) {
	windows := []int{8, 64}
	p := Must(Config{
		Shards: 2,
		NewDetector: func() core.Detector {
			return core.NewMultiScaleEngine(core.MustMultiScaleDetector(windows, core.Config{}))
		},
	})
	defer p.Close()

	// Nested stream: inner period 3 (0,1,2) with an outer marker every
	// 12 samples -> outer period 12 once the 64-window fills.
	value := func(i int) int64 {
		if i%12 == 0 {
			return 99
		}
		return int64(i % 3)
	}
	const key, n = 7, 300
	eng := core.NewMultiScaleEngine(core.MustMultiScaleDetector(windows, core.Config{}))
	for i := 0; i < n; i++ {
		got := p.FeedSample(key, core.Sample{Value: value(i)})
		want := eng.Feed(core.Sample{Value: value(i)})
		if got != want {
			t.Fatalf("sample %d: pool %+v != standalone %+v", i, got, want)
		}
	}
	got, _ := p.Stat(key)
	if got.Stat != eng.Snapshot() {
		t.Errorf("snapshot diverges:\n  pool:       %+v\n  standalone: %+v", got.Stat, eng.Snapshot())
	}
	if !got.Locked || got.Period != 12 {
		t.Errorf("pooled ladder: locked=%v period=%d, want outer period 12", got.Locked, got.Period)
	}
}

// TestPoolInjectedAdaptiveEngine proves a pooled stream can run the
// adaptive-window engine, shrinking its window after a stable lock.
func TestPoolInjectedAdaptiveEngine(t *testing.T) {
	policy := core.AdaptivePolicy{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 16, Headroom: 2.5, GrowAfter: 32}
	p := Must(Config{
		Shards: 1,
		NewDetector: func() core.Detector {
			return core.NewAdaptiveEngine(core.MustAdaptiveDetector(policy, core.Config{}))
		},
	})
	defer p.Close()

	const key, n = 9, 300
	eng := core.NewAdaptiveEngine(core.MustAdaptiveDetector(policy, core.Config{}))
	for i := 0; i < n; i++ {
		got := p.Feed(key, int64(i%5))
		want := eng.Feed(core.Sample{Value: int64(i % 5)})
		if got != want {
			t.Fatalf("sample %d: pool %+v != standalone %+v", i, got, want)
		}
	}
	got, _ := p.Stat(key)
	if got.Stat != eng.Snapshot() {
		t.Errorf("snapshot diverges:\n  pool:       %+v\n  standalone: %+v", got.Stat, eng.Snapshot())
	}
	if !got.Locked || got.Period != 5 {
		t.Errorf("pooled adaptive: locked=%v period=%d, want locked period 5", got.Locked, got.Period)
	}
	if got.Window >= policy.MaxWindow {
		t.Errorf("window %d did not shrink below MaxWindow %d despite stable lock", got.Window, policy.MaxWindow)
	}
}

// TestPoolNilFactoryResultRejected: a NewDetector factory returning nil
// is a construction-time error, not a worker panic.
func TestPoolNilFactoryResultRejected(t *testing.T) {
	if _, err := New(Config{NewDetector: func() core.Detector { return nil }}); err == nil {
		t.Fatal("nil-returning factory accepted")
	}
}
