package pool

import (
	"testing"

	"dpd/internal/core"
)

// feedRounds pushes `rounds` samples into every listed key through
// FeedBatch, one sample per key per round; key k's stream cycles a
// period-(2+k%5) pattern so different streams lock different periods.
func feedRounds(p *Pool, keys []uint64, rounds int) {
	batch := make([]KeyedSample, len(keys))
	for r := 0; r < rounds; r++ {
		for i, k := range keys {
			period := 2 + int(k%5)
			batch[i] = KeyedSample{Key: k, Value: int64(r % period)}
		}
		p.FeedBatch(batch)
	}
}

func TestPoolDetectsPerStreamPeriods(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 32}})
	defer p.Close()

	keys := []uint64{0, 1, 2, 3, 4, 100, 2001, 1 << 40}
	feedRounds(p, keys, 100)

	if got := p.Len(); got != len(keys) {
		t.Fatalf("Len() = %d, want %d", got, len(keys))
	}
	for _, k := range keys {
		st, ok := p.Stat(k)
		if !ok {
			t.Fatalf("stream %d missing", k)
		}
		want := 2 + int(k%5)
		if !st.Locked || st.Period != want {
			t.Errorf("stream %d: locked=%v period=%d, want locked period %d", k, st.Locked, st.Period, want)
		}
		if st.Samples != 100 {
			t.Errorf("stream %d: samples=%d, want 100", k, st.Samples)
		}
		if st.Starts == 0 {
			t.Errorf("stream %d: no period starts observed", k)
		}
		if !st.PredictedValid {
			t.Errorf("stream %d: no prediction despite lock", k)
		}
	}
}

func TestPoolSnapshotCoversAllStreams(t *testing.T) {
	p := Must(Config{Shards: 3, Detector: core.Config{Window: 16}})
	defer p.Close()

	keys := []uint64{7, 8, 9, 10, 11}
	feedRounds(p, keys, 50)

	var dst []StreamStat
	dst = p.Snapshot(dst)
	if len(dst) != len(keys) {
		t.Fatalf("snapshot has %d streams, want %d", len(dst), len(keys))
	}
	seen := map[uint64]StreamStat{}
	for _, s := range dst {
		seen[s.Key] = s
	}
	for _, k := range keys {
		s, ok := seen[k]
		if !ok {
			t.Fatalf("snapshot missing stream %d", k)
		}
		direct, _ := p.Stat(k)
		if s != direct {
			t.Errorf("stream %d: snapshot %+v != Stat %+v", k, s, direct)
		}
	}
	// The recycled destination must be reusable.
	dst2 := p.Snapshot(dst)
	if len(dst2) != len(keys) {
		t.Fatalf("recycled snapshot has %d streams, want %d", len(dst2), len(keys))
	}
}

func TestPoolPredictionMatchesStream(t *testing.T) {
	p := Must(Config{Shards: 1, Detector: core.Config{Window: 16}})
	defer p.Close()

	// Period-3 stream 0,1,2,0,1,2,... last fed value at round r-1.
	const key = 42
	rounds := 40
	for r := 0; r < rounds; r++ {
		p.Feed(key, int64(r%3))
	}
	st, ok := p.Stat(key)
	if !ok || !st.PredictedValid {
		t.Fatalf("no prediction: %+v", st)
	}
	if want := int64(rounds % 3); st.Predicted != want {
		t.Errorf("predicted %d, want %d", st.Predicted, want)
	}
}

func TestPoolIdleEvictionRecyclesStreams(t *testing.T) {
	p := Must(Config{
		Shards:     1,
		Detector:   core.Config{Window: 8},
		IdleTTL:    20,
		SweepEvery: 10,
	})
	defer p.Close()

	p.Feed(1, 0)
	for i := 0; i < 100; i++ {
		p.Feed(2, int64(i%3))
	}
	if got := p.Len(); got != 1 {
		t.Fatalf("after idling stream 1: Len() = %d, want 1 (evicted)", got)
	}
	if got := p.Evicted(); got != 1 {
		t.Fatalf("Evicted() = %d, want 1", got)
	}
	// Re-feeding the evicted key creates a fresh stream (freelist reuse).
	p.Feed(1, 7)
	st, ok := p.Stat(1)
	if !ok {
		t.Fatal("stream 1 missing after re-feed")
	}
	if st.Samples != 1 || st.Locked || st.Starts != 0 {
		t.Errorf("recycled stream carries stale state: %+v", st)
	}
}

func TestPoolEvictIdleForcedSweep(t *testing.T) {
	p := Must(Config{Shards: 1, Detector: core.Config{Window: 8}})
	defer p.Close()

	feedRounds(p, []uint64{1, 2, 3, 4}, 5)
	if n := p.EvictIdle(1 << 30); n != 0 {
		t.Fatalf("EvictIdle(huge) evicted %d, want 0", n)
	}
	// Idleness is strict (> ttl): key 4 was fed at the shard's current
	// clock, so EvictIdle(0) expires exactly the other three.
	if n := p.EvictIdle(0); n != 3 {
		t.Fatalf("EvictIdle(0) evicted %d, want 3", n)
	}
	if got := p.Len(); got != 1 {
		t.Fatalf("Len() = %d after EvictIdle(0), want 1", got)
	}
}

func TestPoolFeedBatchPreservesPerKeyOrder(t *testing.T) {
	p := Must(Config{Shards: 4, Detector: core.Config{Window: 16}})
	defer p.Close()

	// One batch carrying several consecutive samples of the same key must
	// apply them in order: a period-2 stream interleaved any other way
	// would not lock.
	var batch []KeyedSample
	for i := 0; i < 60; i++ {
		batch = append(batch, KeyedSample{Key: 5, Value: int64(i % 2)})
	}
	p.FeedBatch(batch)
	st, _ := p.Stat(5)
	if !st.Locked || st.Period != 2 {
		t.Fatalf("in-batch order broken: %+v, want locked period 2", st)
	}
}

func TestPoolConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Error("negative shards accepted")
	}
	if _, err := New(Config{Shards: MaxShards + 1}); err == nil {
		t.Error("oversized shards accepted")
	}
	if _, err := New(Config{Detector: core.Config{Window: 1}}); err == nil {
		t.Error("invalid detector config accepted")
	}
	p, err := New(Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if p.Shards() < 1 {
		t.Errorf("zero config produced %d shards", p.Shards())
	}
	p.Close()
	p.Close() // idempotent
}

func TestPoolFeedBatchAfterClosePanics(t *testing.T) {
	p := Must(Config{Shards: 1, Detector: core.Config{Window: 8}})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("FeedBatch on a closed pool did not panic")
		}
	}()
	p.FeedBatch([]KeyedSample{{Key: 1, Value: 2}})
}

func TestPoolShardOfCoversAllShards(t *testing.T) {
	p := Must(Config{Shards: 8, Detector: core.Config{Window: 8}})
	defer p.Close()

	hit := make([]bool, 8)
	for k := uint64(0); k < 4096; k++ {
		i := p.shardOf(k)
		if i < 0 || i >= 8 {
			t.Fatalf("shardOf(%d) = %d out of range", k, i)
		}
		hit[i] = true
	}
	for i, h := range hit {
		if !h {
			t.Errorf("shard %d never selected by 4096 sequential keys", i)
		}
	}
}
