package pool

import (
	"fmt"
	"sync"
	"testing"

	"dpd/internal/core"
)

// streamValue is the deterministic sample of stream `key` at local index
// i: a periodic pattern with a per-stream period and phase, plus an
// aperiodic prefix so locks are acquired mid-stream, not at startup.
func streamValue(key uint64, i int) int64 {
	if i < 17 {
		return int64(key)*1e6 + int64(i) // aperiodic prefix, unique per key
	}
	period := 3 + int(key%7)
	phase := int(key % 3)
	return int64((i + phase) % period)
}

// standaloneStat feeds stream `key` through a fresh standalone engine
// sequentially; its Snapshot is exactly the stat a pooled stream
// reports.
func standaloneStat(t *testing.T, cfg core.Config, key uint64, n int) StreamStat {
	t.Helper()
	det, err := core.NewEventDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEventEngine(det)
	for i := 0; i < n; i++ {
		eng.Feed(core.Sample{Value: streamValue(key, i)})
	}
	return StreamStat{Key: key, Stat: eng.Snapshot()}
}

// TestPoolMatchesStandaloneDetectors is the PR 2 differential: many
// goroutines concurrently feed interleaved keyed streams through one
// pool, and every stream's final detection state must be identical to
// feeding that stream alone through a standalone detector sequentially.
// Run under -race this also proves the feed/snapshot paths are
// data-race-free.
func TestPoolMatchesStandaloneDetectors(t *testing.T) {
	const (
		feeders         = 8
		keysPerFeeder   = 16
		samplesPerKey   = 400
		samplesPerBatch = 5 // consecutive samples per key per batch
	)
	cfg := core.Config{Window: 48}
	p := Must(Config{Shards: 4, Detector: cfg})
	defer p.Close()

	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			// Feeder f owns the disjoint keys f, feeders+f, 2*feeders+f, …
			// and interleaves them within every batch.
			keys := make([]uint64, keysPerFeeder)
			for i := range keys {
				keys[i] = uint64(i*feeders + f)
			}
			var batch []KeyedSample
			for i := 0; i < samplesPerKey; i += samplesPerBatch {
				batch = batch[:0]
				for _, k := range keys {
					for j := 0; j < samplesPerBatch; j++ {
						batch = append(batch, KeyedSample{Key: k, Value: streamValue(k, i+j)})
					}
				}
				p.FeedBatch(batch)
			}
		}(f)
	}
	// Concurrent snapshots while feeding: must not disturb results (and,
	// under -race, must not race with the shard workers).
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var dst []StreamStat
		for {
			select {
			case <-stop:
				return
			default:
				dst = p.Snapshot(dst)
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()

	if got, want := p.Len(), feeders*keysPerFeeder; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	for k := uint64(0); k < feeders*keysPerFeeder; k++ {
		got, ok := p.Stat(k)
		if !ok {
			t.Fatalf("stream %d missing from pool", k)
		}
		want := standaloneStat(t, cfg, k, samplesPerKey)
		if got != want {
			t.Errorf("stream %d diverges from standalone detector:\n  pool:       %+v\n  standalone: %+v", k, got, want)
		}
	}
}

// TestPoolRebalanceUnderConcurrentFeeders is the live-rebalancing
// differential: 8 goroutines feed disjoint keyed streams while another
// goroutine cycles the shard count up and down through Rebalance (and a
// fourth kind keeps taking snapshots). No stream may be lost, and every
// stream's final Stat must be identical to a standalone detector fed
// the same sequence — rebalancing must be invisible to stream state.
// Run under -race this also proves the gate/migration paths are
// data-race-free.
func TestPoolRebalanceUnderConcurrentFeeders(t *testing.T) {
	const (
		feeders         = 8
		keysPerFeeder   = 12
		samplesPerKey   = 360
		samplesPerBatch = 4
	)
	cfg := core.Config{Window: 48}
	p := Must(Config{Shards: 4, Detector: cfg})
	defer p.Close()

	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			keys := make([]uint64, keysPerFeeder)
			for i := range keys {
				keys[i] = uint64(i*feeders + f)
			}
			var batch []KeyedSample
			for i := 0; i < samplesPerKey; i += samplesPerBatch {
				batch = batch[:0]
				for _, k := range keys {
					for j := 0; j < samplesPerBatch; j++ {
						batch = append(batch, KeyedSample{Key: k, Value: streamValue(k, i+j)})
					}
				}
				p.FeedBatch(batch)
			}
		}(f)
	}

	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	bgWG.Add(2)
	go func() { // shard-count churn while batches are in flight
		defer bgWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := []int{7, 2, 13, 4}[i%4]
			if err := p.Rebalance(n); err != nil {
				t.Errorf("Rebalance(%d): %v", n, err)
				return
			}
		}
	}()
	go func() { // concurrent snapshots across rebalances
		defer bgWG.Done()
		var dst []StreamStat
		for {
			select {
			case <-stop:
				return
			default:
				dst = p.Snapshot(dst)
			}
		}
	}()
	wg.Wait()
	close(stop)
	bgWG.Wait()

	if got, want := p.Len(), feeders*keysPerFeeder; got != want {
		t.Fatalf("Len() = %d, want %d: rebalancing lost streams", got, want)
	}
	for k := uint64(0); k < feeders*keysPerFeeder; k++ {
		got, ok := p.Stat(k)
		if !ok {
			t.Fatalf("stream %d missing after rebalances", k)
		}
		want := standaloneStat(t, cfg, k, samplesPerKey)
		if got != want {
			t.Errorf("stream %d diverged across rebalances:\n  pool:       %+v\n  standalone: %+v", k, got, want)
		}
	}
}

// TestPoolFeedMatchesStandalonePerSample checks the synchronous Feed
// path result-by-result: concurrent goroutines with disjoint keys each
// compare every pooled Result against a standalone detector fed the same
// sequence.
func TestPoolFeedMatchesStandalonePerSample(t *testing.T) {
	const (
		feeders       = 6
		samplesPerKey = 300
	)
	cfg := core.Config{Window: 32}
	p := Must(Config{Shards: 3, Detector: cfg})
	defer p.Close()

	errs := make(chan error, feeders)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			ref := core.MustEventDetector(cfg)
			for i := 0; i < samplesPerKey; i++ {
				v := streamValue(key, i)
				got := p.Feed(key, v)
				want := ref.Feed(v)
				if got != want {
					select {
					case errs <- fmt.Errorf("key %d sample %d: pool %+v != standalone %+v", key, i, got, want):
					default:
					}
					return
				}
			}
		}(uint64(f))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
