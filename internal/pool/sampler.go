package pool

// Contention sampler: the per-shard half of adaptive placement. Each
// shard keeps a tiny power-of-two array of {key, count} slots updated
// inline in feedLocked under the shard lock, on roughly one in
// SampleEvery samples (randomized countdown) — a Misra-Gries-style
// heavy-hitter sketch (the ddtxn candidates.go idiom): a hit increments
// its slot, an empty slot is claimed, and a collision decays the
// incumbent, so only keys that repeatedly dominate their slot survive
// until the next fold. The update is branch-predictable, touches one
// cache line, performs no allocation and no atomic operation; when the
// adaptive tier is disabled the sampler pointer is nil and the feed
// path pays a single never-taken branch.
//
// The coordinator periodically folds every shard's sketch (copying and
// zeroing the slots under the shard lock) into a global candidate list
// and compares each surviving count against the fold's total sample
// window to decide promotions. Sketch counts are lower bounds on true
// frequencies — exact enough for "is this key taking a double-digit
// share of all traffic", which is the only question promotion asks.

// samplerSlot is one sketch cell: the key currently owning the cell and
// its decayed occurrence count since the last fold.
type samplerSlot struct {
	key   uint64
	count uint64
}

// sampler is one shard's heavy-hitter sketch. All access is under the
// owning shard's mutex.
//
// The sketch subsamples: it observes roughly one in SampleEvery feed
// calls, chosen by a randomized countdown (wait draws uniformly from
// [1, 2*stride-1], mean = stride) so the seven-in-eight fast path is a
// decrement and a never-taken branch. The stride must be randomized,
// not a fixed clock mask: real batches often carry keys in a fixed
// order, and any deterministic stride whose period divides the batch
// period would observe the *same* key every time, inflating its count
// by the stride factor. Heavy-hitter shares are relative, so the
// subsample sees the same celebrities; the coordinator multiplies
// sketch counts back by the stride before comparing them against the
// unstrided shard-clock window.
type sampler struct {
	slots  []samplerSlot
	shift  uint   // 64 - log2(len(slots)): multiply-shift slot index
	wait   uint32 // feed calls until the next observation
	stride uint32 // configured mean sampling stride (SampleEvery)
	rng    uint64 // xorshift64 state for countdown draws
}

// newSampler builds a sketch with the given power-of-two slot count,
// mean sampling stride, and a per-shard seed decorrelating countdown
// phases across shards.
func newSampler(slots, stride int, seed uint64) *sampler {
	shift := uint(64)
	for n := slots; n > 1; n >>= 1 {
		shift--
	}
	if seed == 0 {
		seed = 1
	}
	sm := &sampler{
		slots:  make([]samplerSlot, slots),
		shift:  shift,
		stride: uint32(stride),
		rng:    seed,
	}
	sm.reload()
	return sm
}

// reload draws the countdown until the next observation. Caller holds
// the shard lock; runs once per observation, not per sample.
func (sm *sampler) reload() {
	if sm.stride <= 1 {
		sm.wait = 1
		return
	}
	x := sm.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sm.rng = x
	sm.wait = uint32(x)%(2*sm.stride-1) + 1
}

// observe records one occurrence of key. Caller holds the shard lock.
func (sm *sampler) observe(key uint64) {
	s := &sm.slots[(key*0x9e3779b97f4a7c15)>>sm.shift]
	switch {
	case s.key == key && s.count > 0:
		s.count++
	case s.count == 0:
		s.key = key
		s.count = 1
	default:
		s.count--
	}
}

// hotCand is one folded candidate: a key and its (lower-bound) sample
// count over the fold window.
type hotCand struct {
	key   uint64
	count uint64
}

// fold appends every surviving candidate to dst and resets the sketch
// for the next window. Caller holds the shard lock.
func (sm *sampler) fold(dst []hotCand) []hotCand {
	for i := range sm.slots {
		s := &sm.slots[i]
		if s.count > 0 {
			dst = append(dst, hotCand{key: s.key, count: s.count})
			s.key, s.count = 0, 0
		}
	}
	return dst
}
