package pool

import (
	"sync"

	"dpd/internal/core"
)

// runQueueDepth is the per-shard run queue capacity. It only needs to
// cover the in-flight batch groups that can target one shard at once;
// beyond that, senders block, which is the intended backpressure.
const runQueueDepth = 64

// shardRun is one shard's slice of a FeedBatch: a contiguous run of
// samples staged in the batch group's per-shard buffer.
type shardRun struct {
	samples []KeyedSample
	g       *group
}

// stream is the per-key detector state. Evicted streams are recycled
// through the shard freelist, so the struct and its detector survive and
// are reset rather than released.
type stream struct {
	key     uint64
	det     *core.EventDetector
	samples uint64
	starts  uint64
	last    uint64 // stream-local index of the most recent period start
	lastFed uint64 // shard clock at the stream's most recent sample
}

// stat captures the stream's current StreamStat. Caller holds the shard
// lock.
func (st *stream) stat() StreamStat {
	s := StreamStat{
		Key:     st.key,
		Samples: st.samples,
		Starts:  st.starts,
	}
	if p := st.det.Locked(); p != 0 {
		s.Locked = true
		s.Period = p
	}
	if st.starts > 0 {
		s.LastStart = st.last
	}
	if v, ok := st.det.PredictNext(); ok {
		s.Predicted, s.PredictedValid = v, true
	}
	return s
}

// shard owns one partition of the key space: a map of streams, a freelist
// of recycled stream states, and the idle-eviction clock. The mutex
// serializes the shard worker against Feed, Snapshot and eviction; it is
// never held across shards, so there is no global lock anywhere on the
// feed path.
type shard struct {
	mu      sync.Mutex
	in      chan shardRun
	streams map[uint64]*stream
	free    []*stream

	detCfg     core.Config
	ttl        uint64
	sweepEvery uint64

	clock   uint64 // samples processed by this shard
	sweepAt uint64 // clock value of the next automatic sweep
	evicted uint64
}

func newShard(cfg Config) *shard {
	return &shard{
		in:         make(chan shardRun, runQueueDepth),
		streams:    make(map[uint64]*stream),
		detCfg:     cfg.Detector,
		ttl:        cfg.IdleTTL,
		sweepEvery: cfg.SweepEvery,
		sweepAt:    cfg.SweepEvery,
	}
}

// feedLocked feeds one sample to its stream, creating the stream from the
// freelist (or fresh) on first sight. Caller holds the shard lock.
func (sh *shard) feedLocked(key uint64, v int64) core.Result {
	st, ok := sh.streams[key]
	if !ok {
		st = sh.newStream(key)
		sh.streams[key] = st
	}
	r := st.det.Feed(v)
	st.samples++
	if r.Start {
		st.starts++
		st.last = r.T
	}
	sh.clock++
	st.lastFed = sh.clock
	return r
}

// newStream pops a recycled stream state or builds a fresh one. The pool
// validated the detector configuration at construction, so MustEventDetector
// cannot panic here.
func (sh *shard) newStream(key uint64) *stream {
	if n := len(sh.free); n > 0 {
		st := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		st.key = key
		st.samples = 0
		st.starts = 0
		st.last = 0
		st.lastFed = 0
		return st
	}
	return &stream{key: key, det: core.MustEventDetector(sh.detCfg)}
}

// maybeSweep runs the idle sweep when the TTL policy is enabled and the
// cadence has elapsed. Caller holds the shard lock.
func (sh *shard) maybeSweep() {
	if sh.ttl == 0 || sh.clock < sh.sweepAt {
		return
	}
	sh.sweepAt = sh.clock + sh.sweepEvery
	sh.sweep(sh.ttl)
}

// sweep evicts every stream idle for more than ttl shard samples,
// recycling detector state through the freelist, and returns the number
// evicted. Caller holds the shard lock.
func (sh *shard) sweep(ttl uint64) int {
	n := 0
	for key, st := range sh.streams {
		if sh.clock-st.lastFed > ttl {
			delete(sh.streams, key)
			st.det.Reset()
			sh.free = append(sh.free, st)
			sh.evicted++
			n++
		}
	}
	return n
}
