package pool

import (
	"sync"

	"dpd/internal/core"
)

// runQueueDepth is the per-shard run queue capacity. It only needs to
// cover the in-flight batch groups that can target one shard at once;
// beyond that, senders block, which is the intended backpressure.
const runQueueDepth = 64

// shardRun is one shard's slice of a FeedBatch: a contiguous run of
// samples staged in the batch group's per-shard buffer.
type shardRun struct {
	samples []KeyedSample
	g       *group
}

// stream is the per-key detector state: any engine satisfying the
// unified core.Detector interface, which itself tracks samples, segment
// starts and prediction (surfaced through Snapshot). Evicted streams
// are recycled through the shard freelist, so the struct and its
// detector survive and are reset rather than released.
type stream struct {
	key     uint64
	det     core.Detector
	lastFed uint64 // shard clock at the stream's most recent sample
}

// stat captures the stream's current StreamStat. Caller holds the shard
// lock.
func (st *stream) stat() StreamStat {
	return StreamStat{Key: st.key, Stat: st.det.Snapshot()}
}

// shard owns one partition of the key space: a map of streams, a freelist
// of recycled stream states, and the idle-eviction clock. The mutex
// serializes the shard worker against Feed, Snapshot and eviction; it is
// never held across shards, so there is no global lock anywhere on the
// feed path.
type shard struct {
	mu      sync.Mutex
	in      chan shardRun
	streams map[uint64]*stream
	free    []*stream

	newDet     func() core.Detector
	streamObs  func(key uint64) core.Observer
	ttl        uint64
	sweepEvery uint64

	clock   uint64 // samples processed by this shard
	sweepAt uint64 // clock value of the next automatic sweep
	evicted uint64

	// samp is the contention sampler (nil when the adaptive tier is
	// off); foldBase is the shard clock at the coordinator's last fold,
	// so clock-foldBase is this shard's contribution to the fold window.
	samp     *sampler
	foldBase uint64
}

func newShard(cfg Config, idx int) *shard {
	sh := &shard{
		in:         make(chan shardRun, runQueueDepth),
		streams:    make(map[uint64]*stream),
		newDet:     cfg.NewDetector,
		streamObs:  cfg.StreamObserver,
		ttl:        cfg.IdleTTL,
		sweepEvery: cfg.SweepEvery,
		sweepAt:    cfg.SweepEvery,
	}
	if cfg.Adaptive.Enable {
		seed := (uint64(idx) + 1) * 0x9e3779b97f4a7c15
		sh.samp = newSampler(cfg.Adaptive.SamplerSlots, cfg.Adaptive.SampleEvery, seed)
	}
	return sh
}

// observable is the observer-attachment surface every built-in engine
// adapter offers; custom engines without it are served unobserved.
type observable interface {
	SetObserver(core.Observer)
}

// attach wires the pool's StreamObserver hook to one stream's detector.
// It runs on every materialization path — fresh, recycled, restored,
// rebalanced — so a detector recycled from the freelist never keeps a
// previous key's observer: the hook is re-consulted with the new key
// (and a nil return detaches).
func (sh *shard) attach(st *stream) {
	if sh.streamObs == nil {
		return
	}
	if o, ok := st.det.(observable); ok {
		o.SetObserver(sh.streamObs(st.key))
	}
}

// feedLocked feeds one sample to its stream, creating the stream from the
// freelist (or fresh) on first sight. Caller holds the shard lock.
func (sh *shard) feedLocked(key uint64, s core.Sample) core.Result {
	st, ok := sh.streams[key]
	if !ok {
		st = sh.newStream(key)
		sh.streams[key] = st
	}
	r := st.det.Feed(s)
	sh.clock++
	st.lastFed = sh.clock
	if sm := sh.samp; sm != nil {
		if sm.wait--; sm.wait == 0 {
			sm.observe(key)
			sm.reload()
		}
	}
	return r
}

// newStream pops a recycled stream state or builds a fresh one via the
// injected detector factory. The pool validated the factory (or the
// default event configuration) at construction, so this cannot fail.
func (sh *shard) newStream(key uint64) *stream {
	var st *stream
	if n := len(sh.free); n > 0 {
		st = sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		st.key = key
		st.lastFed = 0
	} else {
		st = &stream{key: key, det: sh.newDet()}
	}
	sh.attach(st)
	return st
}

// maybeSweep runs the idle sweep when the TTL policy is enabled and the
// cadence has elapsed. Caller holds the shard lock.
func (sh *shard) maybeSweep() {
	if sh.ttl == 0 || sh.clock < sh.sweepAt {
		return
	}
	sh.sweepAt = sh.clock + sh.sweepEvery
	sh.sweep(sh.ttl)
}

// sweep evicts every stream idle for more than ttl shard samples,
// recycling detector state through the freelist, and returns the number
// evicted. Caller holds the shard lock.
func (sh *shard) sweep(ttl uint64) int {
	n := 0
	for key, st := range sh.streams {
		if sh.clock-st.lastFed > ttl {
			delete(sh.streams, key)
			st.det.Reset()
			sh.free = append(sh.free, st)
			sh.evicted++
			n++
		}
	}
	return n
}
