package pool

import (
	"bufio"
	"fmt"
	"io"
	"runtime"

	"dpd/internal/core"
	"dpd/internal/obs"
	"dpd/internal/wire"
)

// Pool state portability: Checkpoint streams every per-stream detector
// state out shard by shard, Restore rebuilds a pool from that stream,
// and Rebalance migrates live streams to a different shard count — all
// three through the same engine checkpoint codec, so a detector state
// moves between processes and between shards in exactly one format.
//
// On-stream layout (after the engine codec, everything is frames):
//
//	magic "DPDP" | version u8 |
//	frame*        (payload: uvarint key | engine checkpoint)
//	frame(len=0)  (terminator)
//
// Checkpoint quiesces one shard at a time (its mutex), never the whole
// pool: feeders keep running on every other shard while one shard's
// streams are serialized into a staging buffer, and the buffer is
// written out after the shard lock is released. The cross-shard picture
// is therefore slightly time-skewed — each shard is internally
// consistent, the pool as a whole is not a single instant. That is the
// right trade for a serving system: a restored pool resumes every
// stream from a valid recent state without the checkpoint ever stalling
// ingest globally.

const (
	// poolMagic heads a pool checkpoint stream.
	poolMagic = "DPDP"
	// poolStateVersion is the pool container format version.
	poolStateVersion = 1
	// maxStreamFrame bounds one stream's frame so a corrupted length
	// prefix cannot demand unbounded memory: comfortably above the
	// largest legal engine state (a MaxWindow event bank is ~512 MiB on
	// paper, but real configurations sit in kilobytes; this cap admits
	// every configuration the constructors accept while still bounding
	// a hostile 2^60 length claim).
	maxStreamFrame = 1 << 30
)

// Checkpoint writes the state of every live stream to w, shard by
// shard. Feeders may run concurrently: only the shard currently being
// serialized is quiesced (its mutex held), so ingest never stops
// globally. Shard-count and eviction configuration are NOT part of the
// checkpoint — Restore takes a fresh Config, which is how a checkpoint
// taken on an 8-shard pool restores onto 2 shards or 32.
//
// Checkpoint fails if a stream's detector was built by an injected
// factory whose type is not one of the built-in engines.
//
// Concurrency contract with Rebalance: the two serialize on the pool
// gate (Checkpoint holds it shared for its whole duration, Rebalance
// exclusively), so a checkpoint stream is written entirely against one
// shard generation — it can never interleave frames from the old and
// new shard tables, duplicate a migrating stream, or drop one.
// Whichever call starts second blocks until the first completes; there
// is no error path for the overlap. TestCheckpointRebalanceSerialize
// pins this.
func (p *Pool) Checkpoint(w io.Writer) error {
	p.gate.RLock()
	defer p.gate.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(poolMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(poolStateVersion); err != nil {
		return err
	}
	var staged, frame []byte
	for _, sh := range p.shards {
		staged = staged[:0]
		var encErr error
		sh.mu.Lock()
		for _, st := range sh.streams {
			frame = wire.AppendUvarint(frame[:0], st.key)
			frame, encErr = core.AppendCheckpoint(st.det, frame)
			if encErr != nil {
				break
			}
			staged = wire.AppendFrame(staged, frame)
		}
		sh.mu.Unlock()
		if encErr != nil {
			return fmt.Errorf("pool: checkpoint: %w", encErr)
		}
		if _, err := bw.Write(staged); err != nil {
			return err
		}
	}
	// Hot streams live outside the shard maps; serialize them through
	// the identical frame format (a checkpoint does not record
	// placement — Restore re-learns it from traffic, exactly as it
	// re-learns shard assignment from its own Config.Shards).
	if a := p.hot; a != nil {
		staged = staged[:0]
		var encErr error
		for _, hs := range a.slots {
			if hs == nil {
				continue
			}
			hs.mu.Lock()
			frame = wire.AppendUvarint(frame[:0], hs.key)
			frame, encErr = core.AppendCheckpoint(hs.det, frame)
			hs.mu.Unlock()
			if encErr != nil {
				return fmt.Errorf("pool: checkpoint: %w", encErr)
			}
			staged = wire.AppendFrame(staged, frame)
		}
		if _, err := bw.Write(staged); err != nil {
			return err
		}
	}
	if err := wire.WriteFrame(bw, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// Restore builds a started pool from a checkpoint stream written by
// Checkpoint, placing every stream on the shard the new configuration
// hashes it to. The configuration's detector factory must build the
// same engine kind and configuration the checkpoint carries: every
// stream's spec is validated against a factory probe, and a mismatch is
// a descriptive error, never a silently mixed pool. Idle-TTL clocks
// restart from zero.
func Restore(r io.Reader, cfg Config) (*Pool, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			p.Close()
		}
	}()

	probe, err := core.AppendCheckpoint(p.cfg.NewDetector(), nil)
	if err != nil {
		return nil, fmt.Errorf("pool: restore: factory detector is not checkpointable: %w", err)
	}
	probeSpec, err := core.DecodeSpec(probe)
	if err != nil {
		return nil, fmt.Errorf("pool: restore: factory probe: %w", err)
	}

	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pool: restore header: %w", err)
	}
	if string(hdr[:4]) != poolMagic {
		return nil, fmt.Errorf("pool: restore: bad magic %q", hdr[:4])
	}
	if hdr[4] != poolStateVersion {
		return nil, fmt.Errorf("pool: restore: unsupported pool format version %d (this build reads version %d)", hdr[4], poolStateVersion)
	}

	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, maxStreamFrame, buf)
		if err != nil {
			return nil, fmt.Errorf("pool: restore: %w", err)
		}
		if payload == nil {
			break // terminator
		}
		buf = payload
		dec := wire.NewDec(payload)
		key := dec.Uvarint()
		if dec.Err() != nil {
			return nil, fmt.Errorf("pool: restore: stream key: %w", dec.Err())
		}
		state := payload[dec.Offset():]
		spec, err := core.DecodeSpec(state)
		if err != nil {
			return nil, fmt.Errorf("pool: restore: stream %d: %w", key, err)
		}
		if !spec.Equal(probeSpec) {
			return nil, fmt.Errorf("pool: restore: stream %d is a %s-engine state that does not match the pool's detector factory (%s); pass the configuration the checkpoint was taken with",
				key, spec.EngineName(), probeSpec.EngineName())
		}
		det, err := core.RestoreCheckpoint(state)
		if err != nil {
			return nil, fmt.Errorf("pool: restore: stream %d: %w", key, err)
		}
		sh := p.shards[p.shardOf(key)]
		sh.mu.Lock()
		_, dup := sh.streams[key]
		if !dup {
			st := &stream{key: key, det: det}
			sh.attach(st)
			sh.streams[key] = st
		}
		sh.mu.Unlock()
		if dup {
			return nil, fmt.Errorf("pool: restore: duplicate stream %d in checkpoint", key)
		}
	}
	ok = true
	return p, nil
}

// Rebalance changes the number of shards at run time, migrating every
// live stream to its new shard by serializing its detector through the
// checkpoint codec and restoring it on the other side — the same
// phase-aware state movement a cross-process restore uses, so a stream
// observes no difference between being rebalanced and being
// checkpoint/restored. newShards 0 selects runtime.GOMAXPROCS(0).
//
// Rebalance waits for in-flight batches to complete and blocks new ones
// for the duration (feeders block, they do not fail), then swaps the
// shard table atomically with respect to the feed gate. Per-stream
// detector state — and therefore every subsequent Result and Stat — is
// preserved exactly; the per-shard idle-TTL clocks restart, since shard
// sample counts are meaningless across a re-partition.
//
// Rebalance concurrent with Checkpoint serializes (never errors, never
// interleaves): see the Checkpoint contract note. Promoted (hot)
// streams are untouched: they live outside the shard maps, so changing
// the shard count neither moves nor re-keys them; contention sampling
// restarts on the fresh shard generation.
func (p *Pool) Rebalance(newShards int) error {
	if newShards == 0 {
		newShards = runtime.GOMAXPROCS(0)
	}
	if newShards < 1 || newShards > MaxShards {
		return fmt.Errorf("pool: rebalance shards %d outside [1,%d]", newShards, MaxShards)
	}
	p.gate.Lock()
	defer p.gate.Unlock()
	if p.closed.Load() {
		return fmt.Errorf("pool: Rebalance on a closed Pool")
	}
	if newShards == len(p.shards) {
		return nil
	}

	// Probe once: every stream came from the same factory (or passed the
	// Restore spec check), so one non-checkpointable probe means the
	// whole migration is impossible and nothing has been touched yet.
	if _, err := core.AppendCheckpoint(p.cfg.NewDetector(), nil); err != nil {
		return fmt.Errorf("pool: rebalance: %w", err)
	}

	// Build and fill the next shard generation without mutating the
	// current one, so any migration error aborts with the pool intact.
	next := make([]*shard, newShards)
	for i := range next {
		next[i] = newShard(p.cfg, i)
	}
	var buf []byte
	for _, sh := range p.shards {
		for key, st := range sh.streams {
			var err error
			buf, err = core.AppendCheckpoint(st.det, buf[:0])
			if err != nil {
				return fmt.Errorf("pool: rebalance stream %d: %w", key, err)
			}
			det, err := core.RestoreCheckpoint(buf)
			if err != nil {
				return fmt.Errorf("pool: rebalance stream %d: %w", key, err)
			}
			ns := next[shardIndex(key, newShards)]
			st := &stream{key: key, det: det}
			ns.attach(st)
			ns.streams[key] = st
		}
	}

	// Point of no return: swap the table, start the new workers, retire
	// the old generation. The exclusive gate guarantees no run is queued
	// on any old shard and no feeder holds a stale shard pointer.
	p.cfg.Recorder.Record(obs.SubPool, obs.EvRebalance, uint64(len(p.shards)), uint64(newShards))
	old := p.shards
	p.shards = next
	for _, sh := range next {
		p.wg.Add(1)
		go p.worker(sh)
	}
	for _, sh := range old {
		p.evictedBase += sh.evicted
		close(sh.in)
	}

	// Re-shape the batch staging buffers. Shrinking keeps the backing
	// array (and the per-shard []KeyedSample capacities hidden beyond
	// the new length), so growing back to a previously used shard count
	// re-exposes warmed buffers and the steady-state feed path returns
	// to 0 allocs/op without re-warming.
	for i := 0; i < cap(p.groups); i++ {
		g := <-p.groups
		if cap(g.perShard) >= newShards {
			g.perShard = g.perShard[:newShards]
		} else {
			g.perShard = append(g.perShard[:cap(g.perShard)], make([][]KeyedSample, newShards-cap(g.perShard))...)
		}
		for j := range g.perShard {
			g.perShard[j] = g.perShard[j][:0]
		}
		p.groups <- g
	}
	return nil
}
