package pool

import (
	"bytes"
	"strings"
	"testing"

	"dpd/internal/core"
)

// feedDeterministic drives the same keyed traffic into a pool twice
// over: keys 0..streams-1, samples streamValue(key, from..to).
func feedDeterministic(p *Pool, streams, from, to int) {
	batch := make([]KeyedSample, 0, streams)
	for i := from; i < to; i++ {
		batch = batch[:0]
		for k := 0; k < streams; k++ {
			batch = append(batch, KeyedSample{Key: uint64(k), Value: streamValue(uint64(k), i)})
		}
		p.FeedBatch(batch)
	}
}

// TestPoolCheckpointRestoreDifferential: checkpoint a live pool, restore
// it onto a different shard count, keep feeding both — every stream's
// final Stat must equal the pool that never stopped.
func TestPoolCheckpointRestoreDifferential(t *testing.T) {
	const (
		streams = 64
		cut     = 200
		total   = 450
	)
	cfg := core.Config{Window: 48, Grace: 1}
	ref := Must(Config{Shards: 4, Detector: cfg})
	defer ref.Close()
	feedDeterministic(ref, streams, 0, cut)

	var sink bytes.Buffer
	if err := ref.Checkpoint(&sink); err != nil {
		t.Fatal(err)
	}
	// Restore onto a different shard count: shard count is serving
	// topology, not stream state.
	restored, err := Restore(&sink, Config{Shards: 7, Detector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got, want := restored.Len(), streams; got != want {
		t.Fatalf("restored Len = %d, want %d", got, want)
	}

	feedDeterministic(ref, streams, cut, total)
	feedDeterministic(restored, streams, cut, total)

	for k := uint64(0); k < streams; k++ {
		got, ok := restored.Stat(k)
		if !ok {
			t.Fatalf("stream %d missing after restore", k)
		}
		want, _ := ref.Stat(k)
		if got != want {
			t.Errorf("stream %d diverged after restore:\n  restored: %+v\n  ref:      %+v", k, got, want)
		}
	}
}

// TestPoolCheckpointRestoreInjectedEngines: pools of magnitude,
// multi-scale and adaptive engines round-trip the same way.
func TestPoolCheckpointRestoreInjectedEngines(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory func() core.Detector
		sample  func(key uint64, i int) core.Sample
	}{
		{
			"magnitude",
			func() core.Detector {
				return core.NewMagnitudeEngine(core.MustMagnitudeDetector(core.Config{Window: 40}))
			},
			func(key uint64, i int) core.Sample {
				return core.Sample{Magnitude: float64((i + int(key)) % (5 + int(key%3)))}
			},
		},
		{
			"multiscale",
			func() core.Detector {
				return core.NewMultiScaleEngine(core.MustMultiScaleDetector([]int{8, 64}, core.Config{}))
			},
			func(key uint64, i int) core.Sample {
				return core.Sample{Value: int64((i + int(key)) % 6)}
			},
		},
		{
			"adaptive",
			func() core.Detector {
				return core.NewAdaptiveEngine(core.MustAdaptiveDetector(
					core.AdaptivePolicy{MinWindow: 8, MaxWindow: 64, ShrinkAfter: 16, Headroom: 2.5, GrowAfter: 32}, core.Config{}))
			},
			func(key uint64, i int) core.Sample {
				return core.Sample{Value: int64((i + int(key)) % 5)}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const streams, cut, total = 24, 150, 300
			ref := Must(Config{Shards: 3, NewDetector: tc.factory})
			defer ref.Close()
			feed := func(p *Pool, from, to int) {
				for i := from; i < to; i++ {
					for k := uint64(0); k < streams; k++ {
						p.FeedSample(k, tc.sample(k, i))
					}
				}
			}
			feed(ref, 0, cut)
			var sink bytes.Buffer
			if err := ref.Checkpoint(&sink); err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(&sink, Config{Shards: 5, NewDetector: tc.factory})
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			feed(ref, cut, total)
			feed(restored, cut, total)
			for k := uint64(0); k < streams; k++ {
				got, ok := restored.Stat(k)
				want, _ := ref.Stat(k)
				if !ok || got != want {
					t.Fatalf("stream %d: restored %+v (ok=%v) != ref %+v", k, got, ok, want)
				}
			}
		})
	}
}

// TestPoolRestoreRejectsMismatchedFactory: restoring an event-engine
// checkpoint into a magnitude-engine pool must fail descriptively.
func TestPoolRestoreRejectsMismatchedFactory(t *testing.T) {
	ref := Must(Config{Shards: 2, Detector: core.Config{Window: 32}})
	defer ref.Close()
	feedDeterministic(ref, 8, 0, 50)
	var sink bytes.Buffer
	if err := ref.Checkpoint(&sink); err != nil {
		t.Fatal(err)
	}
	_, err := Restore(&sink, Config{Shards: 2, NewDetector: func() core.Detector {
		return core.NewMagnitudeEngine(core.MustMagnitudeDetector(core.Config{Window: 32}))
	}})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched factory: err = %v", err)
	}
	// A different window for the same engine must be rejected too.
	_, err = Restore(bytes.NewReader(sink.Bytes()), Config{Shards: 2, Detector: core.Config{Window: 64}})
	if err == nil {
		t.Fatal("mismatched window accepted")
	}
}

// TestPoolRestoreTruncated: cutting the checkpoint stream anywhere must
// error, never panic or hang.
func TestPoolRestoreTruncated(t *testing.T) {
	cfg := core.Config{Window: 32}
	ref := Must(Config{Shards: 2, Detector: cfg})
	defer ref.Close()
	feedDeterministic(ref, 8, 0, 60)
	var sink bytes.Buffer
	if err := ref.Checkpoint(&sink); err != nil {
		t.Fatal(err)
	}
	full := sink.Bytes()
	step := len(full)/61 + 1
	for cut := 0; cut < len(full); cut += step {
		if _, err := Restore(bytes.NewReader(full[:cut]), Config{Shards: 2, Detector: cfg}); err == nil {
			t.Fatalf("cut=%d: truncated pool checkpoint accepted", cut)
		}
	}
}

// TestPoolRebalancePreservesStreams: single-threaded rebalances up and
// down leave every stream's Stat exactly as a never-rebalanced pool.
func TestPoolRebalancePreservesStreams(t *testing.T) {
	const streams, phase = 48, 120
	cfg := core.Config{Window: 40}
	p := Must(Config{Shards: 4, Detector: cfg})
	defer p.Close()
	ref := Must(Config{Shards: 4, Detector: cfg})
	defer ref.Close()

	at := 0
	for _, n := range []int{9, 2, 16, 4} {
		feedDeterministic(p, streams, at, at+phase)
		feedDeterministic(ref, streams, at, at+phase)
		at += phase
		if err := p.Rebalance(n); err != nil {
			t.Fatalf("Rebalance(%d): %v", n, err)
		}
		if got := p.Shards(); got != n {
			t.Fatalf("Shards() = %d after Rebalance(%d)", got, n)
		}
		if got, want := p.Len(), streams; got != want {
			t.Fatalf("lost streams: Len = %d, want %d after Rebalance(%d)", got, want, n)
		}
	}
	feedDeterministic(p, streams, at, at+phase)
	feedDeterministic(ref, streams, at, at+phase)
	for k := uint64(0); k < streams; k++ {
		got, ok := p.Stat(k)
		want, _ := ref.Stat(k)
		if !ok || got != want {
			t.Fatalf("stream %d after rebalances: %+v (ok=%v) != %+v", k, got, ok, want)
		}
	}
}

// TestPoolRebalanceSameCountIsNoop and bounds checking.
func TestPoolRebalanceValidation(t *testing.T) {
	p := Must(Config{Shards: 3, Detector: core.Config{Window: 16}})
	defer p.Close()
	if err := p.Rebalance(3); err != nil {
		t.Fatalf("same-count rebalance: %v", err)
	}
	if err := p.Rebalance(-1); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if err := p.Rebalance(MaxShards + 1); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	p.Close()
	if err := p.Rebalance(2); err == nil {
		t.Fatal("rebalance on closed pool accepted")
	}
}

// TestPoolCheckpointConcurrentWithFeeding: a checkpoint taken while
// feeders are running yields a stream set that restores cleanly — the
// per-shard quiesce must not deadlock with batch traffic.
func TestPoolCheckpointConcurrentWithFeeding(t *testing.T) {
	cfg := core.Config{Window: 32}
	p := Must(Config{Shards: 4, Detector: cfg})
	defer p.Close()
	feedDeterministic(p, 32, 0, 100)

	done := make(chan struct{})
	go func() {
		defer close(done)
		feedDeterministic(p, 32, 100, 400)
	}()
	var sink bytes.Buffer
	if err := p.Checkpoint(&sink); err != nil {
		t.Fatal(err)
	}
	<-done
	restored, err := Restore(&sink, Config{Shards: 4, Detector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got, want := restored.Len(), 32; got != want {
		t.Fatalf("restored Len = %d, want %d", got, want)
	}
	// Every restored stream must be a valid mid-stream state: samples
	// within the fed range.
	var dst []StreamStat
	for _, st := range restored.Snapshot(dst) {
		if st.Samples < 100 || st.Samples > 400 {
			t.Fatalf("stream %d restored with %d samples, outside fed range [100,400]", st.Key, st.Samples)
		}
	}
}
