// Package sched implements the consumer that motivates the paper's
// speedup computation: performance-driven processor allocation
// [Corbalan2000]. A multiprogrammed workload of parallel applications
// shares a machine; at every scheduling quantum the allocator
// redistributes processors using each application's measured speedup
// curve — exactly the information the SelfAnalyzer extracts at run time
// via the DPD.
//
// Two policies are provided: Equipartition (the classic space-sharing
// baseline) and PerformanceDriven (greedy marginal-speedup allocation,
// which gives processors to the applications that convert them into the
// most progress). The paper's claim ("providing a great benefit as we
// have shown in [Corbalan2000]") is reproduced as: on workloads with
// heterogeneous scalability, PerformanceDriven achieves lower makespan
// and average turnaround than Equipartition.
package sched

import (
	"fmt"
	"sort"
	"time"
)

// SpeedupFunc maps a processor count (>= 1) to the application's speedup
// over serial execution. It must satisfy S(1) == 1 and be non-decreasing.
type SpeedupFunc func(p int) float64

// Job is one application of the workload.
type Job struct {
	// Name identifies the job.
	Name string
	// Work is the serial execution time (total work at S = 1).
	Work time.Duration
	// Speedup is the job's scalability curve.
	Speedup SpeedupFunc
	// Arrival is when the job enters the system.
	Arrival time.Duration
	// MaxProcs caps the allocation (0 = unlimited).
	MaxProcs int
}

// JobState is the scheduler-visible state of a job during simulation.
type JobState struct {
	Job
	// Remaining is the serial-equivalent work left.
	Remaining time.Duration
	// Alloc is the current processor allocation.
	Alloc int
	// Finish is the completion time (0 while running).
	Finish time.Duration
	// CPUTime is the accumulated processor time consumed.
	CPUTime time.Duration
}

// Done reports whether the job completed.
func (j *JobState) Done() bool { return j.Finish > 0 }

// Turnaround returns Finish − Arrival for a completed job.
func (j *JobState) Turnaround() time.Duration { return j.Finish - j.Arrival }

// Policy distributes totalCPUs over the runnable jobs. Implementations
// must return one allocation per job (0 allowed), summing to at most
// totalCPUs, and must respect MaxProcs caps.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate returns the processor share of each runnable job.
	Allocate(jobs []*JobState, totalCPUs int) []int
}

// Equipartition divides processors evenly among runnable jobs, handing
// leftovers to the earliest-arrived jobs — the classic space-sharing
// baseline the paper's related work compares against.
type Equipartition struct{}

// Name implements Policy.
func (Equipartition) Name() string { return "equipartition" }

// Allocate implements Policy.
func (Equipartition) Allocate(jobs []*JobState, totalCPUs int) []int {
	out := make([]int, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	base := totalCPUs / len(jobs)
	extra := totalCPUs % len(jobs)
	for i := range jobs {
		a := base
		if i < extra {
			a++
		}
		out[i] = capAlloc(jobs[i], a)
	}
	redistribute(jobs, out, totalCPUs)
	return out
}

// PerformanceDriven allocates greedily by marginal speedup: each
// processor goes to the job whose speedup curve gains the most from one
// more processor. With every job holding the measured S(p) the
// SelfAnalyzer provides, this maximizes aggregate progress per quantum.
type PerformanceDriven struct {
	// MinEfficiency, when > 0, stops giving a job further processors once
	// its marginal gain per processor falls below this threshold,
	// releasing them to jobs that use them better.
	MinEfficiency float64
}

// Name implements Policy.
func (p PerformanceDriven) Name() string { return "performance-driven" }

// Allocate implements Policy.
func (p PerformanceDriven) Allocate(jobs []*JobState, totalCPUs int) []int {
	out := make([]int, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	// Every runnable job gets one processor first (no starvation).
	remaining := totalCPUs
	for i := range jobs {
		if remaining == 0 {
			break
		}
		out[i] = 1
		remaining--
	}
	// Greedy marginal-speedup assignment for the rest.
	for remaining > 0 {
		best, bestGain := -1, 0.0
		for i, j := range jobs {
			if j.MaxProcs > 0 && out[i] >= j.MaxProcs {
				continue
			}
			if out[i] == 0 {
				continue // job got no seed processor (more jobs than CPUs)
			}
			gain := j.Speedup(out[i]+1) - j.Speedup(out[i])
			if p.MinEfficiency > 0 && gain < p.MinEfficiency {
				continue
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // nobody benefits: leave processors idle
		}
		out[best]++
		remaining--
	}
	return out
}

// capAlloc clamps a to the job's MaxProcs.
func capAlloc(j *JobState, a int) int {
	if j.MaxProcs > 0 && a > j.MaxProcs {
		return j.MaxProcs
	}
	return a
}

// redistribute hands processors freed by MaxProcs caps to uncapped jobs.
func redistribute(jobs []*JobState, out []int, totalCPUs int) {
	used := 0
	for _, a := range out {
		used += a
	}
	for spare := totalCPUs - used; spare > 0; {
		progressed := false
		for i := range jobs {
			if spare == 0 {
				break
			}
			if jobs[i].MaxProcs == 0 || out[i] < jobs[i].MaxProcs {
				out[i]++
				spare--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}

// Result summarizes one workload run under one policy.
type Result struct {
	// Policy is the policy name.
	Policy string
	// Jobs holds the final per-job states, in input order.
	Jobs []*JobState
	// Makespan is the completion time of the last job.
	Makespan time.Duration
	// AvgTurnaround is the mean job turnaround.
	AvgTurnaround time.Duration
	// CPUTime is the total processor time consumed by all jobs.
	CPUTime time.Duration
}

// Simulate runs the workload on `cpus` processors under the policy with
// the given re-allocation quantum, until every job completes.
func Simulate(jobs []Job, cpus int, quantum time.Duration, policy Policy) (*Result, error) {
	if cpus < 1 {
		return nil, fmt.Errorf("sched: cpu count %d must be >= 1", cpus)
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("sched: quantum %v must be positive", quantum)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: empty workload")
	}
	states := make([]*JobState, len(jobs))
	for i, j := range jobs {
		if j.Work <= 0 {
			return nil, fmt.Errorf("sched: job %q has non-positive work", j.Name)
		}
		if j.Speedup == nil {
			return nil, fmt.Errorf("sched: job %q has no speedup curve", j.Name)
		}
		states[i] = &JobState{Job: j, Remaining: j.Work}
	}

	now := time.Duration(0)
	for {
		// Runnable set: arrived, not finished.
		var run []*JobState
		for _, s := range states {
			if !s.Done() && s.Arrival <= now {
				run = append(run, s)
			}
		}
		if len(run) == 0 {
			// Jump to the next arrival, or finish.
			next := time.Duration(-1)
			for _, s := range states {
				if !s.Done() && (next < 0 || s.Arrival < next) {
					next = s.Arrival
				}
			}
			if next < 0 {
				break // all done
			}
			now = next
			continue
		}

		alloc := policy.Allocate(run, cpus)
		if len(alloc) != len(run) {
			return nil, fmt.Errorf("sched: policy %s returned %d allocations for %d jobs", policy.Name(), len(alloc), len(run))
		}
		used := 0
		for i, a := range alloc {
			if a < 0 {
				return nil, fmt.Errorf("sched: negative allocation for %q", run[i].Name)
			}
			used += a
		}
		if used > cpus {
			return nil, fmt.Errorf("sched: policy %s oversubscribed %d > %d", policy.Name(), used, cpus)
		}

		// Advance one quantum (or less, if a job finishes inside it).
		step := quantum
		for i, s := range run {
			if alloc[i] == 0 {
				continue
			}
			rate := s.Speedup(alloc[i]) // serial work per wall second
			need := time.Duration(float64(s.Remaining) / rate)
			if need < step {
				step = need
			}
		}
		if step <= 0 {
			step = time.Nanosecond // degenerate numeric guard
		}
		for i, s := range run {
			s.Alloc = alloc[i]
			if alloc[i] == 0 {
				continue
			}
			rate := s.Speedup(alloc[i])
			done := time.Duration(rate * float64(step))
			s.CPUTime += time.Duration(int64(step) * int64(alloc[i]))
			if done >= s.Remaining {
				s.Remaining = 0
				s.Finish = now + step
			} else {
				s.Remaining -= done
			}
		}
		now += step
	}

	res := &Result{Policy: policy.Name(), Jobs: states}
	var sumT time.Duration
	for _, s := range states {
		if s.Finish > res.Makespan {
			res.Makespan = s.Finish
		}
		sumT += s.Turnaround()
		res.CPUTime += s.CPUTime
	}
	res.AvgTurnaround = sumT / time.Duration(len(states))
	return res, nil
}

// Compare runs the same workload under several policies and returns the
// results sorted by average turnaround (best first).
func Compare(jobs []Job, cpus int, quantum time.Duration, policies ...Policy) ([]*Result, error) {
	var out []*Result
	for _, p := range policies {
		r, err := Simulate(jobs, cpus, quantum, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AvgTurnaround < out[j].AvgTurnaround })
	return out, nil
}
