package sched

import (
	"math"
	"testing"
	"time"

	"dpd/internal/machine"
)

// linearTo returns a speedup curve linear up to k processors, flat after.
func linearTo(k int) SpeedupFunc {
	return func(p int) float64 {
		if p <= 0 {
			return 0
		}
		if p > k {
			return float64(k)
		}
		return float64(p)
	}
}

// amdahl returns a curve with serial fraction f.
func amdahl(f float64) SpeedupFunc {
	return func(p int) float64 {
		if p <= 0 {
			return 0
		}
		return 1 / (f + (1-f)/float64(p))
	}
}

func TestSimulateSingleJobLinear(t *testing.T) {
	jobs := []Job{{Name: "a", Work: 64 * time.Second, Speedup: linearTo(64)}}
	r, err := Simulate(jobs, 16, time.Second, Equipartition{})
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly parallel 64s of work on 16 cpus → 4s.
	if r.Makespan != 4*time.Second {
		t.Fatalf("makespan=%v, want 4s", r.Makespan)
	}
	if !r.Jobs[0].Done() {
		t.Fatal("job not finished")
	}
}

func TestSimulateSerialJobIgnoresExtraCPUs(t *testing.T) {
	jobs := []Job{{Name: "serial", Work: 10 * time.Second, Speedup: linearTo(1)}}
	r, err := Simulate(jobs, 16, time.Second, PerformanceDriven{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 10*time.Second {
		t.Fatalf("makespan=%v, want 10s", r.Makespan)
	}
}

func TestEquipartitionSplitsEvenly(t *testing.T) {
	a := &JobState{Job: Job{Name: "a", Speedup: linearTo(99)}}
	b := &JobState{Job: Job{Name: "b", Speedup: linearTo(99)}}
	c := &JobState{Job: Job{Name: "c", Speedup: linearTo(99)}}
	alloc := Equipartition{}.Allocate([]*JobState{a, b, c}, 16)
	if alloc[0]+alloc[1]+alloc[2] != 16 {
		t.Fatalf("alloc=%v does not use all cpus", alloc)
	}
	for _, x := range alloc {
		if x < 5 || x > 6 {
			t.Fatalf("alloc=%v not even", alloc)
		}
	}
}

func TestEquipartitionRespectsMaxProcs(t *testing.T) {
	a := &JobState{Job: Job{Name: "a", MaxProcs: 2, Speedup: linearTo(2)}}
	b := &JobState{Job: Job{Name: "b", Speedup: linearTo(99)}}
	alloc := Equipartition{}.Allocate([]*JobState{a, b}, 16)
	if alloc[0] != 2 {
		t.Fatalf("capped job got %d, want 2", alloc[0])
	}
	if alloc[1] != 14 {
		t.Fatalf("uncapped job got %d, want the released 14", alloc[1])
	}
}

func TestPerformanceDrivenFavorsScalableJob(t *testing.T) {
	scalable := &JobState{Job: Job{Name: "s", Speedup: linearTo(64)}}
	poor := &JobState{Job: Job{Name: "p", Speedup: amdahl(0.5)}}
	alloc := PerformanceDriven{}.Allocate([]*JobState{scalable, poor}, 16)
	if alloc[0] <= alloc[1] {
		t.Fatalf("alloc=%v: scalable job must get more processors", alloc)
	}
	if alloc[0]+alloc[1] > 16 {
		t.Fatalf("oversubscribed: %v", alloc)
	}
}

func TestPerformanceDrivenNoStarvation(t *testing.T) {
	jobs := []*JobState{
		{Job: Job{Name: "a", Speedup: linearTo(64)}},
		{Job: Job{Name: "b", Speedup: amdahl(0.9)}},
		{Job: Job{Name: "c", Speedup: amdahl(0.9)}},
	}
	alloc := PerformanceDriven{}.Allocate(jobs, 8)
	for i, a := range alloc {
		if a < 1 {
			t.Fatalf("job %d starved: %v", i, alloc)
		}
	}
}

func TestPerformanceDrivenMinEfficiencyLeavesIdle(t *testing.T) {
	// A single job with a hard knee: beyond 4 processors, zero gain.
	jobs := []*JobState{{Job: Job{Name: "knee", Speedup: linearTo(4)}}}
	alloc := PerformanceDriven{MinEfficiency: 0.1}.Allocate(jobs, 16)
	if alloc[0] != 4 {
		t.Fatalf("alloc=%v, want exactly the useful 4", alloc)
	}
}

// The paper's claim: performance-driven allocation beats equipartition on
// workloads with heterogeneous scalability.
func TestPerformanceDrivenBeatsEquipartition(t *testing.T) {
	jobs := []Job{
		{Name: "scalable", Work: 200 * time.Second, Speedup: linearTo(16)},
		{Name: "medium", Work: 100 * time.Second, Speedup: amdahl(0.2)},
		{Name: "poor", Work: 50 * time.Second, Speedup: amdahl(0.7)},
	}
	rs, err := Compare(jobs, 16, time.Second, Equipartition{}, PerformanceDriven{})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Policy != "performance-driven" {
		t.Fatalf("best policy=%s, want performance-driven", rs[0].Policy)
	}
	var eq, pd *Result
	for _, r := range rs {
		switch r.Policy {
		case "equipartition":
			eq = r
		case "performance-driven":
			pd = r
		}
	}
	// Average turnaround is the headline benefit; makespan and CPU time
	// can tip either way because the poorly scaling straggler holds few
	// processors under PD until the scalable jobs drain.
	if pd.AvgTurnaround >= eq.AvgTurnaround {
		t.Fatalf("pd turnaround %v >= eq %v", pd.AvgTurnaround, eq.AvgTurnaround)
	}
}

func TestMinEfficiencyReducesCPUBurn(t *testing.T) {
	// With an efficiency floor, the allocator refuses to shower processors
	// on a job that cannot use them, cutting total CPU consumption.
	mk := func() []Job {
		return []Job{
			{Name: "poor", Work: 50 * time.Second, Speedup: amdahl(0.7)},
		}
	}
	plain, err := Simulate(mk(), 16, time.Second, PerformanceDriven{})
	if err != nil {
		t.Fatal(err)
	}
	floor, err := Simulate(mk(), 16, time.Second, PerformanceDriven{MinEfficiency: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if floor.CPUTime >= plain.CPUTime {
		t.Fatalf("efficiency floor did not cut CPU time: %v vs %v", floor.CPUTime, plain.CPUTime)
	}
	// The job still finishes, only slightly later.
	if float64(floor.Makespan) > 1.5*float64(plain.Makespan) {
		t.Fatalf("efficiency floor overly slowed the job: %v vs %v", floor.Makespan, plain.Makespan)
	}
}

func TestPoliciesEquivalentOnHomogeneousWorkload(t *testing.T) {
	mk := func() []Job {
		return []Job{
			{Name: "a", Work: 100 * time.Second, Speedup: amdahl(0.1)},
			{Name: "b", Work: 100 * time.Second, Speedup: amdahl(0.1)},
		}
	}
	eq, err := Simulate(mk(), 16, time.Second, Equipartition{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Simulate(mk(), 16, time.Second, PerformanceDriven{})
	if err != nil {
		t.Fatal(err)
	}
	// Identical jobs: both policies split 8/8; results must agree closely.
	ratio := float64(pd.Makespan) / float64(eq.Makespan)
	if math.Abs(ratio-1) > 0.02 {
		t.Fatalf("homogeneous: pd %v vs eq %v", pd.Makespan, eq.Makespan)
	}
}

func TestArrivalsRespected(t *testing.T) {
	jobs := []Job{
		{Name: "early", Work: 10 * time.Second, Speedup: linearTo(16)},
		{Name: "late", Work: 10 * time.Second, Speedup: linearTo(16), Arrival: 100 * time.Second},
	}
	r, err := Simulate(jobs, 16, time.Second, Equipartition{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs[1].Finish < 100*time.Second {
		t.Fatalf("late job finished at %v before its arrival", r.Jobs[1].Finish)
	}
	if r.Jobs[1].Turnaround() > 2*time.Second {
		t.Fatalf("late job turnaround=%v, want ~10s/16cpus", r.Jobs[1].Turnaround())
	}
}

func TestSimulateValidation(t *testing.T) {
	good := []Job{{Name: "a", Work: time.Second, Speedup: linearTo(1)}}
	if _, err := Simulate(good, 0, time.Second, Equipartition{}); err == nil {
		t.Error("cpus=0 accepted")
	}
	if _, err := Simulate(good, 4, 0, Equipartition{}); err == nil {
		t.Error("quantum=0 accepted")
	}
	if _, err := Simulate(nil, 4, time.Second, Equipartition{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Simulate([]Job{{Name: "w", Work: 0, Speedup: linearTo(1)}}, 4, time.Second, Equipartition{}); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := Simulate([]Job{{Name: "n", Work: time.Second}}, 4, time.Second, Equipartition{}); err == nil {
		t.Error("nil speedup accepted")
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	jobs := []Job{{Name: "a", Work: 16 * time.Second, Speedup: linearTo(16)}}
	r, err := Simulate(jobs, 16, time.Second, Equipartition{})
	if err != nil {
		t.Fatal(err)
	}
	// 16s serial work, linear: 1s wall on 16 cpus → 16 cpu-seconds.
	if r.CPUTime != 16*time.Second {
		t.Fatalf("cpu time=%v, want 16s", r.CPUTime)
	}
}

func TestCostModelCurveWorksAsSpeedupFunc(t *testing.T) {
	cm := machine.DefaultCostModel()
	f := SpeedupFunc(func(p int) float64 { return cm.Speedup(1000, 100*time.Microsecond, p) })
	jobs := []Job{{Name: "app", Work: 30 * time.Second, Speedup: f}}
	r, err := Simulate(jobs, 8, time.Second, PerformanceDriven{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan >= 30*time.Second || r.Makespan <= 30*time.Second/8 {
		t.Fatalf("makespan=%v outside plausible range", r.Makespan)
	}
}

func TestMoreJobsThanCPUs(t *testing.T) {
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{Name: string(rune('a' + i)), Work: time.Second, Speedup: linearTo(4)})
	}
	r, err := Simulate(jobs, 4, 100*time.Millisecond, PerformanceDriven{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range r.Jobs {
		if !j.Done() {
			t.Fatalf("job %s never finished", j.Name)
		}
	}
}
