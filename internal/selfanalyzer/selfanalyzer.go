// Package selfanalyzer reproduces the paper's §5 case study: a run-time
// library that dynamically computes the speedup achieved by the parallel
// regions of an application and estimates its total execution time,
// using the DPD to discover the iterative structure when the source code
// is not available.
//
// Wiring (paper Figure 6): DITools intercepts each encapsulated
// parallel-loop call (1); the loop address is passed to the DPD (2); when
// the DPD signals the start of a period, the SelfAnalyzer identifies the
// parallel region by the starting address and the period length and
// takes over measurement (3).
//
// Speedup follows the paper's definition: the execution time of one
// iteration of the main loop executed with a baseline number of
// processors, divided by the execution time of one iteration with the
// currently allocated processors. To obtain the baseline measurement the
// SelfAnalyzer temporarily lowers the runtime's allocation for exactly
// one iteration — the address stream is unchanged by allocation, so the
// DPD lock (which sees events, not time) is undisturbed.
package selfanalyzer

import (
	"fmt"
	"time"

	"dpd/internal/core"
	"dpd/internal/ditools"
	"dpd/internal/nanos"
)

// Phase is the analyzer's measurement state.
type Phase int

// Analyzer phases, in lifecycle order.
const (
	// PhaseSearch: no periodic structure identified yet.
	PhaseSearch Phase = iota
	// PhaseMeasureCurrent: timing one iteration at the current allocation.
	PhaseMeasureCurrent
	// PhaseMeasureBaseline: timing one iteration at the baseline allocation.
	PhaseMeasureBaseline
	// PhaseSteady: speedup known; iteration times tracked continuously.
	PhaseSteady
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseSearch:
		return "search"
	case PhaseMeasureCurrent:
		return "measure-current"
	case PhaseMeasureBaseline:
		return "measure-baseline"
	case PhaseSteady:
		return "steady"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Region describes an identified iterative parallel region, keyed as in
// the paper by the address of the starting function and the period length.
type Region struct {
	// StartAddr is the address of the function starting each period.
	StartAddr int64
	// Period is the region length in loop-call events.
	Period int
	// IdentifiedAt is the virtual time of identification.
	IdentifiedAt time.Duration

	// CurrentProcs / CurrentTime are the measured iteration at the
	// application's allocation.
	CurrentProcs int
	CurrentTime  time.Duration
	// BaselineProcs / BaselineTime are the measured baseline iteration.
	BaselineProcs int
	BaselineTime  time.Duration

	// Speedup is BaselineTime/CurrentTime once both are measured (0 before).
	Speedup float64
	// Iterations is the number of completed iterations observed.
	Iterations int
	// MeanIterTime is the running mean iteration time at the current
	// allocation (excludes the baseline iteration).
	MeanIterTime time.Duration

	iterTimeSum time.Duration
	iterTimeN   int
}

// Efficiency returns Speedup/CurrentProcs in [0,1] (0 if not measured).
func (r *Region) Efficiency() float64 {
	if r.CurrentProcs == 0 || r.Speedup == 0 {
		return 0
	}
	return r.Speedup / float64(r.CurrentProcs)
}

// Config parameterizes the analyzer.
type Config struct {
	// Baseline is the processor count of the reference measurement.
	// Defaults to 1 (speedup against serial execution, as in Amdahl).
	Baseline int
	// Windows is the DPD window ladder; nil selects core.DefaultLadder.
	Windows []int
	// DPD carries detector options (Confirm, Grace).
	DPD core.Config
}

// SelfAnalyzer watches one application through DITools interposition.
// It consumes the DPD through the unified engine's subscription API:
// instead of inspecting every per-sample result, it subscribes an
// Observer and reacts only to segment-start transitions — the literal
// form of the paper's Figure 6, where the detection point drives
// InitParallelRegion.
type SelfAnalyzer struct {
	rt  *nanos.Runtime
	eng *core.MultiScaleEngine

	baseline int
	phase    Phase
	region   *Region

	// measurement bookkeeping
	iterStart    time.Duration
	restoreProcs int

	// cur is the ditools event being fed, stashed for the observer
	// callback that fires synchronously inside eng.Feed.
	cur ditools.Event

	events uint64
}

// Attach builds a SelfAnalyzer on rt and registers its interposition
// handler with reg. The analyzer starts observing immediately.
func Attach(rt *nanos.Runtime, reg *ditools.Registry, cfg Config) (*SelfAnalyzer, error) {
	if cfg.Baseline == 0 {
		cfg.Baseline = 1
	}
	if cfg.Baseline < 1 || cfg.Baseline > rt.Machine().CPUs() {
		return nil, fmt.Errorf("selfanalyzer: baseline %d outside [1,%d]", cfg.Baseline, rt.Machine().CPUs())
	}
	det, err := core.NewMultiScaleDetector(cfg.Windows, cfg.DPD)
	if err != nil {
		return nil, err
	}
	sa := &SelfAnalyzer{rt: rt, eng: core.NewMultiScaleEngine(det), baseline: cfg.Baseline, phase: PhaseSearch}
	sa.eng.SetObserver(core.ObserverFuncs{SegmentStart: sa.onSegmentStart})
	reg.OnCall(sa.onCall)
	return sa, nil
}

// MustAttach panics on configuration errors.
func MustAttach(rt *nanos.Runtime, reg *ditools.Registry, cfg Config) *SelfAnalyzer {
	sa, err := Attach(rt, reg, cfg)
	if err != nil {
		panic(err)
	}
	return sa
}

// onCall is the DITools handler: it stashes the runtime event and feeds
// the DPD engine; all region bookkeeping happens in onSegmentStart,
// which the engine calls back synchronously when — and only when — a
// sample begins a period.
func (sa *SelfAnalyzer) onCall(e ditools.Event) {
	sa.events++
	sa.cur = e
	sa.eng.Feed(core.Sample{Value: e.Addr})
}

// onSegmentStart is the Observer callback (paper Figure 6 step 3): the
// detection point identifies the region, period starts advance the
// measurement state machine.
func (sa *SelfAnalyzer) onSegmentStart(ev *core.Event) {
	e := sa.cur
	// Re-identify when an enclosing (longer) period is discovered: the
	// outermost structure is the application's main loop.
	if sa.region == nil || ev.Period > sa.region.Period {
		sa.initRegion(e, ev.Period)
		return
	}
	if ev.Period != sa.region.Period {
		return // an inner periodicity; the outer region stays authoritative
	}
	sa.onPeriodStart(e)
}

// initRegion corresponds to the paper's InitParallelRegion(address, length).
func (sa *SelfAnalyzer) initRegion(e ditools.Event, period int) {
	sa.region = &Region{
		StartAddr:    e.Addr,
		Period:       period,
		IdentifiedAt: e.Now,
		CurrentProcs: sa.rt.Allocation(),
	}
	sa.phase = PhaseMeasureCurrent
	sa.iterStart = e.Now
}

// onPeriodStart advances the measurement state machine at each iteration
// boundary of the identified region.
func (sa *SelfAnalyzer) onPeriodStart(e ditools.Event) {
	r := sa.region
	iterTime := e.Now - sa.iterStart
	sa.iterStart = e.Now

	switch sa.phase {
	case PhaseMeasureCurrent:
		r.CurrentProcs = sa.rt.Allocation()
		r.CurrentTime = iterTime
		r.Iterations++
		r.iterTimeSum += iterTime
		r.iterTimeN++
		// Switch to the baseline allocation for exactly one iteration.
		sa.restoreProcs = sa.rt.Allocation()
		if err := sa.rt.SetAllocation(sa.baseline); err == nil {
			r.BaselineProcs = sa.baseline
			sa.phase = PhaseMeasureBaseline
		} else {
			// Cannot lower allocation (already at baseline): speedup 1.
			r.BaselineProcs = sa.restoreProcs
			r.BaselineTime = iterTime
			r.Speedup = 1
			sa.phase = PhaseSteady
		}

	case PhaseMeasureBaseline:
		r.BaselineTime = iterTime
		r.Iterations++
		_ = sa.rt.SetAllocation(sa.restoreProcs)
		if r.CurrentTime > 0 {
			r.Speedup = float64(r.BaselineTime) / float64(r.CurrentTime)
		}
		sa.phase = PhaseSteady

	case PhaseSteady:
		r.Iterations++
		if sa.rt.Allocation() != r.CurrentProcs {
			// The processor allocation changed (e.g. the scheduler acted
			// on our speedup): the measured iteration time and speedup no
			// longer describe the current execution. Re-measure from the
			// next iteration, keeping the region identity.
			r.CurrentProcs = sa.rt.Allocation()
			r.CurrentTime = 0
			r.BaselineTime = 0
			r.Speedup = 0
			r.iterTimeSum = 0
			r.iterTimeN = 0
			r.MeanIterTime = 0
			sa.phase = PhaseMeasureCurrent
			break
		}
		r.iterTimeSum += iterTime
		r.iterTimeN++
	}

	if r.iterTimeN > 0 {
		r.MeanIterTime = r.iterTimeSum / time.Duration(r.iterTimeN)
	}
}

// Phase returns the current measurement phase.
func (sa *SelfAnalyzer) Phase() Phase { return sa.phase }

// Region returns the identified region (nil while searching).
func (sa *SelfAnalyzer) Region() *Region { return sa.region }

// Events returns the number of loop-call events observed.
func (sa *SelfAnalyzer) Events() uint64 { return sa.events }

// Detector exposes the underlying multi-scale DPD ladder.
func (sa *SelfAnalyzer) Detector() *core.MultiScaleDetector { return sa.eng.Ladder() }

// Snapshot returns the engine's unified detector state (outer lock,
// segment-start count, window) without disturbing the analysis.
func (sa *SelfAnalyzer) Snapshot() core.Stat { return sa.eng.Snapshot() }

// Speedup returns the measured speedup and whether it is available yet.
func (sa *SelfAnalyzer) Speedup() (float64, bool) {
	if sa.region == nil || sa.region.Speedup == 0 {
		return 0, false
	}
	return sa.region.Speedup, true
}

// EstimateRemaining predicts the wall time of itersRemaining further
// iterations from the measured mean iteration time (paper: "measurements
// for a particular iteration can be used to predict the behavior of the
// next iterations").
func (sa *SelfAnalyzer) EstimateRemaining(itersRemaining int) (time.Duration, bool) {
	if sa.region == nil || sa.region.MeanIterTime == 0 || itersRemaining < 0 {
		return 0, false
	}
	return time.Duration(itersRemaining) * sa.region.MeanIterTime, true
}

// EstimateTotal predicts the application's total execution time given its
// main-loop trip count: elapsed time so far plus the remaining iterations.
// Iterations completed before the region was identified are inferred from
// the total event count (events/period), since every main-loop iteration
// emits exactly one period of loop calls.
func (sa *SelfAnalyzer) EstimateTotal(totalIters int) (time.Duration, bool) {
	if sa.region == nil || sa.region.MeanIterTime == 0 {
		return 0, false
	}
	done := int(sa.events) / sa.region.Period
	if done > totalIters {
		done = totalIters
	}
	rem, _ := sa.EstimateRemaining(totalIters - done)
	return sa.rt.Now() + rem, true
}
