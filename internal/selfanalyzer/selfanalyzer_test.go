package selfanalyzer

import (
	"testing"
	"time"

	"dpd/internal/apps"
	"dpd/internal/ditools"
	"dpd/internal/machine"
	"dpd/internal/nanos"
)

// harness runs app on a machine with the analyzer attached.
func harness(t *testing.T, cpus, alloc int, cfg Config) (*nanos.Runtime, *SelfAnalyzer) {
	t.Helper()
	m := machine.New(cpus)
	reg := ditools.NewRegistry()
	rt := nanos.MustNew(m, machine.DefaultCostModel(), alloc, reg)
	sa, err := Attach(rt, reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, sa
}

func TestIdentifiesTomcatvRegion(t *testing.T) {
	rt, sa := harness(t, 8, 8, Config{})
	app := apps.Tomcatv()
	app.RunIterations(rt, 60)
	r := sa.Region()
	if r == nil {
		t.Fatal("no region identified")
	}
	if r.Period != 5 {
		t.Fatalf("region period=%d, want 5", r.Period)
	}
	if r.Iterations < 20 {
		t.Fatalf("iterations=%d, want many", r.Iterations)
	}
}

func TestSpeedupMeasuredAgainstBaseline(t *testing.T) {
	rt, sa := harness(t, 8, 8, Config{Baseline: 1})
	app := apps.Tomcatv()
	app.RunIterations(rt, 60)
	s, ok := sa.Speedup()
	if !ok {
		t.Fatal("speedup not available")
	}
	// 8 processors on tomcatv's loops: substantial but sublinear speedup.
	if s <= 2 || s > 8 {
		t.Fatalf("speedup=%v, want in (2,8]", s)
	}
	if sa.Phase() != PhaseSteady {
		t.Fatalf("phase=%v, want steady", sa.Phase())
	}
	r := sa.Region()
	if r.BaselineProcs != 1 || r.CurrentProcs != 8 {
		t.Fatalf("procs: baseline=%d current=%d", r.BaselineProcs, r.CurrentProcs)
	}
	if r.BaselineTime <= r.CurrentTime {
		t.Fatalf("baseline %v not slower than current %v", r.BaselineTime, r.CurrentTime)
	}
}

func TestSpeedupMatchesCostModelPrediction(t *testing.T) {
	rt, sa := harness(t, 16, 16, Config{Baseline: 1})
	app := apps.Swim()
	app.RunIterations(rt, 60)
	s, ok := sa.Speedup()
	if !ok {
		t.Fatal("speedup not available")
	}
	// The analytic model for swim's loops (trip 125, 200µs/iter).
	want := machine.DefaultCostModel().Speedup(125, 200*time.Microsecond, 16)
	if s < want*0.85 || s > want*1.15 {
		t.Fatalf("measured speedup %v, analytic %v", s, want)
	}
}

func TestAllocationRestoredAfterBaseline(t *testing.T) {
	rt, sa := harness(t, 8, 8, Config{Baseline: 1})
	app := apps.Tomcatv()
	app.RunIterations(rt, 60)
	if rt.Allocation() != 8 {
		t.Fatalf("allocation=%d after measurement, want restored 8", rt.Allocation())
	}
	if sa.Region().BaselineTime == 0 {
		t.Fatal("baseline never measured")
	}
}

func TestBaselineEqualsAllocationGivesSpeedupOne(t *testing.T) {
	rt, sa := harness(t, 4, 1, Config{Baseline: 1})
	app := apps.Tomcatv()
	app.RunIterations(rt, 40)
	s, ok := sa.Speedup()
	if !ok {
		t.Fatal("speedup not available")
	}
	if s < 0.99 || s > 1.01 {
		t.Fatalf("speedup=%v on 1 cpu, want ≈1", s)
	}
}

func TestEstimateTotalAccuracy(t *testing.T) {
	// Run the full app; mid-run estimates must predict the true total.
	m := machine.New(8)
	reg := ditools.NewRegistry()
	rt := nanos.MustNew(m, machine.DefaultCostModel(), 8, reg)
	sa := MustAttach(rt, reg, Config{})
	app := apps.Tomcatv()

	app.RunIterations(rt, 100)
	est, ok := sa.EstimateTotal(app.Iterations)
	if !ok {
		t.Fatal("estimate unavailable after 100 iterations")
	}

	// Execute the remaining iterations and compare.
	for i := 100; i < app.Iterations; i++ {
		rt.RunIteration(app.Body)
	}
	actual := rt.Now()
	ratio := float64(est) / float64(actual)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("estimate %v vs actual %v (ratio %v)", est, actual, ratio)
	}
}

func TestEstimateRemaining(t *testing.T) {
	rt, sa := harness(t, 8, 8, Config{})
	app := apps.Tomcatv()
	app.RunIterations(rt, 50)
	rem, ok := sa.EstimateRemaining(10)
	if !ok || rem <= 0 {
		t.Fatalf("remaining=(%v,%v)", rem, ok)
	}
	r10 := rem
	rem20, _ := sa.EstimateRemaining(20)
	if rem20 != 2*r10 {
		t.Fatalf("estimate not linear: %v vs %v", rem20, r10)
	}
	if _, ok := sa.EstimateRemaining(-1); ok {
		t.Fatal("negative remaining accepted")
	}
}

func TestNoRegionOnAperiodicStream(t *testing.T) {
	m := machine.New(4)
	reg := ditools.NewRegistry()
	rt := nanos.MustNew(m, machine.DefaultCostModel(), 4, reg)
	sa := MustAttach(rt, reg, Config{})
	// Distinct addresses: never periodic.
	for i := 0; i < 500; i++ {
		rt.ParallelFor(nanos.LoopID(0x1000+i*0x40), 10, 10*time.Microsecond)
	}
	if sa.Region() != nil {
		t.Fatalf("region identified on aperiodic stream: %+v", sa.Region())
	}
	if _, ok := sa.Speedup(); ok {
		t.Fatal("speedup on aperiodic stream")
	}
	if _, ok := sa.EstimateTotal(100); ok {
		t.Fatal("estimate on aperiodic stream")
	}
}

func TestNestedAppIdentifiesOuterRegion(t *testing.T) {
	// turb3d has inner period 12 and outer 142; the analyzer must settle
	// on the outer (main-loop) structure.
	rt, sa := harness(t, 8, 8, Config{})
	app := apps.Turb3d()
	app.RunIterations(rt, app.Iterations)
	r := sa.Region()
	if r == nil {
		t.Fatal("no region identified")
	}
	if r.Period != 142 {
		t.Fatalf("region period=%d, want outer 142", r.Period)
	}
}

func TestEfficiency(t *testing.T) {
	rt, sa := harness(t, 8, 8, Config{})
	app := apps.Swim()
	app.RunIterations(rt, 60)
	r := sa.Region()
	e := r.Efficiency()
	if e <= 0 || e > 1 {
		t.Fatalf("efficiency=%v, want in (0,1]", e)
	}
}

func TestAttachValidatesBaseline(t *testing.T) {
	m := machine.New(4)
	reg := ditools.NewRegistry()
	rt := nanos.MustNew(m, machine.DefaultCostModel(), 4, reg)
	if _, err := Attach(rt, reg, Config{Baseline: 5}); err == nil {
		t.Fatal("baseline > cpus accepted")
	}
	if _, err := Attach(rt, reg, Config{Baseline: -1}); err == nil {
		t.Fatal("negative baseline accepted")
	}
}

func TestPhaseStringer(t *testing.T) {
	for _, p := range []Phase{PhaseSearch, PhaseMeasureCurrent, PhaseMeasureBaseline, PhaseSteady, Phase(99)} {
		if p.String() == "" {
			t.Errorf("empty string for phase %d", int(p))
		}
	}
}

func TestEventsCounted(t *testing.T) {
	rt, sa := harness(t, 4, 4, Config{})
	app := apps.Tomcatv()
	app.RunIterations(rt, 10)
	if sa.Events() != 50 {
		t.Fatalf("events=%d, want 50", sa.Events())
	}
}

func TestReMeasureAfterAllocationChange(t *testing.T) {
	rt, sa := harness(t, 16, 16, Config{})
	app := apps.Tomcatv()
	app.RunIterations(rt, 40)
	s16, ok := sa.Speedup()
	if !ok {
		t.Fatal("no initial speedup")
	}

	// The scheduler halves the allocation mid-run: the analyzer must
	// notice, drop the stale measurement, and re-measure.
	if err := rt.SetAllocation(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rt.RunIteration(app.Body)
	}
	s4, ok := sa.Speedup()
	if !ok {
		t.Fatal("no re-measured speedup")
	}
	if s4 >= s16 {
		t.Fatalf("speedup on 4 cpus (%v) not below 16-cpu speedup (%v)", s4, s16)
	}
	r := sa.Region()
	if r.CurrentProcs != 4 {
		t.Fatalf("CurrentProcs=%d, want 4", r.CurrentProcs)
	}
	if r.Period != 5 {
		t.Fatalf("region identity lost: period=%d", r.Period)
	}
}

func TestReMeasureKeepsEstimatesUsable(t *testing.T) {
	rt, sa := harness(t, 8, 8, Config{})
	app := apps.Swim()
	app.RunIterations(rt, 30)
	if err := rt.SetAllocation(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rt.RunIteration(app.Body)
	}
	// Mean iteration time must now reflect the 2-CPU execution: estimates
	// for the remaining iterations use the new allocation.
	rem, ok := sa.EstimateRemaining(10)
	if !ok {
		t.Fatal("estimate unavailable after re-measurement")
	}
	iter2 := sa.Region().MeanIterTime
	if iter2 <= 0 || rem != 10*iter2 {
		t.Fatalf("remaining=%v mean=%v", rem, iter2)
	}
}
