package series

import (
	"fmt"
	"math"
	"math/bits"
)

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// CountBank is the flat struct-of-arrays replacement for a []*SlidingCount
// lag ladder: it maintains, for every lag m = 1..lags, the count of
// mismatches x[t] != x[t-m] over a sliding window of the last `window`
// comparisons, plus a packed bitset of the lags that are currently zero
// (full window, no mismatch) — the paper's eq. (2) d(m) == 0 predicate.
//
// The mismatch bits of one sample are packed into ceil(lags/64) uint64
// words and stored row-per-sample; updating a sample therefore costs one
// XOR per word plus one counter adjustment per *changed* bit. On a locked
// periodic stream almost no bits change, so the steady-state cost is the
// single contiguous compare pass that builds the new row.
//
// Everything is allocation-free after construction.
type CountBank struct {
	window int // N: comparisons per lag window
	lags   int // M: probed lags 1..M
	wpl    int // words per row: ceil(lags/64)

	hist   []int64  // power-of-two ring of the last >= window+lags samples
	rows   []uint64 // window rows of packed mismatch bits; bit j = lag j+1
	ones   []int32  // per-lag mismatch count inside the window
	zero   []uint64 // packed: bit j set iff lag j+1 is full and ones == 0
	zeroAt []uint64 // per-lag sample index when the zero state began

	row int    // physical row for the next push: t mod window
	t   uint64 // samples pushed so far
}

// NewCountBank returns a bank of `lags` sliding mismatch windows of size
// `window`. It panics on non-positive sizes (configuration bug).
func NewCountBank(window, lags int) *CountBank {
	if window <= 0 || lags <= 0 {
		panic(fmt.Sprintf("series: count bank window=%d lags=%d must be positive", window, lags))
	}
	wpl := (lags + 63) / 64
	return &CountBank{
		window: window,
		lags:   lags,
		wpl:    wpl,
		hist:   make([]int64, nextPow2(window+lags)),
		rows:   make([]uint64, window*wpl),
		ones:   make([]int32, lags),
		zero:   make([]uint64, wpl),
		zeroAt: make([]uint64, lags),
	}
}

// Window returns the comparison window size N.
func (b *CountBank) Window() int { return b.window }

// Lags returns the number of probed lags M.
func (b *CountBank) Lags() int { return b.lags }

// Len returns the number of samples pushed so far.
func (b *CountBank) Len() uint64 { return b.t }

// Push feeds one sample: every available lag m <= min(t, lags) is compared
// against x[t-m] in one pass over the contiguous history, and the per-lag
// windows, counts and zero bitset are updated from the changed bits only.
func (b *CountBank) Push(v int64) {
	t := b.t
	h := b.hist
	mask := uint64(len(h) - 1)
	L := b.lags
	if t < uint64(L) {
		L = int(t)
	}
	rowOff := b.row * b.wpl
	if L > 0 {
		base := t - 1
		var w uint64
		wi := 0
		for j := 0; j < L; j++ {
			// Branchless mismatch bit: (diff|-diff)>>63 is 1 iff diff != 0.
			diff := uint64(v ^ h[(base-uint64(j))&mask])
			w |= (diff | -diff) >> 63 << uint(j&63)
			if j&63 == 63 {
				b.applyWord(rowOff, wi, w, t)
				w = 0
				wi++
			}
		}
		if L&63 != 0 {
			b.applyWord(rowOff, wi, w, t)
		}
	}
	// The lag whose window fills exactly at this push (at most one): its
	// zero state could not be recorded earlier because Full was false.
	if t >= uint64(b.window) {
		if j := t - uint64(b.window); j < uint64(b.lags) {
			if b.ones[j] == 0 {
				b.zero[j>>6] |= 1 << (j & 63)
				b.zeroAt[j] = t
			}
		}
	}
	h[t&mask] = v
	b.t++
	b.row++
	if b.row == b.window {
		b.row = 0
	}
}

// applyWord replaces word wi of the current row with nw, adjusting the
// per-lag counters and the zero bitset for every changed bit.
func (b *CountBank) applyWord(rowOff, wi int, nw uint64, t uint64) {
	old := b.rows[rowOff+wi]
	ch := old ^ nw
	if ch == 0 {
		return
	}
	b.rows[rowOff+wi] = nw
	for ch != 0 {
		bit := bits.TrailingZeros64(ch)
		ch &= ch - 1
		j := wi<<6 + bit
		if nw>>uint(bit)&1 != 0 {
			b.ones[j]++
			if b.ones[j] == 1 {
				b.zero[wi] &^= 1 << uint(bit)
			}
		} else {
			b.ones[j]--
			// Full after this push iff (t+1)-(j+1) >= window.
			if b.ones[j] == 0 && t >= uint64(j)+uint64(b.window) {
				b.zero[wi] |= 1 << uint(bit)
				b.zeroAt[j] = t
			}
		}
	}
}

// Full reports whether lag m's comparison window has filled at least once.
func (b *CountBank) Full(m int) bool {
	return m >= 1 && m <= b.lags && b.t >= uint64(m)+uint64(b.window)
}

// Ones returns the mismatch count currently inside lag m's window.
func (b *CountBank) Ones(m int) int { return int(b.ones[m-1]) }

// Zero reports whether lag m's window is full and mismatch-free, i.e.
// d(m) == 0 in the sense of paper eq. (2).
func (b *CountBank) Zero(m int) bool {
	if m < 1 || m > b.lags {
		return false
	}
	j := uint(m - 1)
	return b.zero[j>>6]>>(j&63)&1 != 0
}

// ZeroRun returns the number of consecutive pushes for which lag m has
// been zero (0 if it is not currently zero).
func (b *CountBank) ZeroRun(m int) int {
	if !b.Zero(m) {
		return 0
	}
	return int(b.t - b.zeroAt[m-1])
}

// FirstConfirmed returns the smallest lag that has been zero for at least
// `confirm` consecutive pushes, or 0 if none. This is the detector's
// candidate query; with confirm == 1 it is the first set bit of the zero
// bitset.
func (b *CountBank) FirstConfirmed(confirm int) int {
	need := uint64(confirm)
	for wi, w := range b.zero {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &= w - 1
			j := wi<<6 + bit
			if b.t-b.zeroAt[j] >= need {
				return j + 1
			}
		}
	}
	return 0
}

// Recent returns the sample pushed `back` positions ago (0 = the most
// recent push) without allocating, and whether it is still retained: the
// ring keeps the newest window+lags samples.
func (b *CountBank) Recent(back int) (int64, bool) {
	if back < 0 || uint64(back) >= b.t || back >= b.window+b.lags {
		return 0, false
	}
	mask := uint64(len(b.hist) - 1)
	return b.hist[(b.t-1-uint64(back))&mask], true
}

// History copies the newest min(Len, window+lags) samples into dst
// (oldest first), growing it as needed, and returns the filled slice.
func (b *CountBank) History(dst []int64) []int64 {
	n := uint64(b.window + b.lags)
	if b.t < n {
		n = b.t
	}
	if cap(dst) < int(n) {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	mask := uint64(len(b.hist) - 1)
	start := b.t - n
	for i := range dst {
		dst[i] = b.hist[(start+uint64(i))&mask]
	}
	return dst
}

// Reset discards all state but keeps the configuration and storage.
func (b *CountBank) Reset() {
	clear(b.rows)
	clear(b.ones)
	clear(b.zero)
	clear(b.zeroAt)
	b.row = 0
	b.t = 0
}

// SumBank is the flat struct-of-arrays replacement for a []*SlidingSum lag
// ladder: for every lag m = 1..lags it maintains the sum of the absolute
// differences |x[t] - x[t-m]| over a sliding window of the last `window`
// comparisons — the paper's eq. (1) numerator. Values live in one
// contiguous lag-major array, sums in another; one push walks both with a
// modulo-free wrapping cursor.
//
// Everything is allocation-free after construction.
type SumBank struct {
	window int
	lags   int

	hist []float64 // power-of-two ring of the last >= window+lags samples
	vals []float64 // lags rows x window columns of retained |x-x'| values
	sums []float64 // per-lag running sum over its window

	t uint64
}

// NewSumBank returns a bank of `lags` sliding |x[t]-x[t-m]| sums of size
// `window`. It panics on non-positive sizes.
func NewSumBank(window, lags int) *SumBank {
	if window <= 0 || lags <= 0 {
		panic(fmt.Sprintf("series: sum bank window=%d lags=%d must be positive", window, lags))
	}
	return &SumBank{
		window: window,
		lags:   lags,
		hist:   make([]float64, nextPow2(window+lags)),
		vals:   make([]float64, lags*window),
		sums:   make([]float64, lags),
	}
}

// Window returns the comparison window size N.
func (b *SumBank) Window() int { return b.window }

// Lags returns the number of probed lags M.
func (b *SumBank) Lags() int { return b.lags }

// Len returns the number of samples pushed so far.
func (b *SumBank) Len() uint64 { return b.t }

// Push feeds one sample, updating every available lag's window and sum in
// one pass over the contiguous bank.
func (b *SumBank) Push(v float64) {
	t := b.t
	h := b.hist
	mask := uint64(len(h) - 1)
	L := b.lags
	if t < uint64(L) {
		L = int(t)
	}
	if L > 0 {
		n := b.window
		base := t - 1
		// Lag m's window has seen t-m pushes, so its write cursor sits at
		// (t-m) mod n; consecutive lags differ by one slot, so the flat
		// offset advances by n-1 per lag with a conditional wrap.
		p := int(base % uint64(n))
		off := p
		for j := 0; j < L; j++ {
			a := math.Abs(v - h[(base-uint64(j))&mask])
			b.sums[j] += a - b.vals[off]
			b.vals[off] = a
			off += n - 1
			p--
			if p < 0 {
				p = n - 1
				off += n
			}
		}
	}
	h[t&mask] = v
	b.t++
}

// Full reports whether lag m's comparison window has filled at least once.
func (b *SumBank) Full(m int) bool {
	return m >= 1 && m <= b.lags && b.t >= uint64(m)+uint64(b.window)
}

// ValidLags returns the number of lags with a full window; full lags are
// always the prefix 1..ValidLags since smaller lags warm up first.
func (b *SumBank) ValidLags() int {
	if b.t <= uint64(b.window) {
		return 0
	}
	v := b.t - uint64(b.window)
	if v > uint64(b.lags) {
		return b.lags
	}
	return int(v)
}

// Sum returns the current sum over lag m's window.
func (b *SumBank) Sum(m int) float64 { return b.sums[m-1] }

// Sums returns the live per-lag sums (index i = lag i+1). The slice is
// owned by the bank and mutated by Push; callers must not retain it across
// pushes or write to it.
func (b *SumBank) Sums() []float64 { return b.sums }

// Recompute recalculates every lag's sum from its retained window values,
// discarding accumulated floating-point drift on very long streams.
func (b *SumBank) Recompute() {
	for j := 0; j < b.lags; j++ {
		var s float64
		row := b.vals[j*b.window : (j+1)*b.window]
		for _, a := range row {
			s += a
		}
		b.sums[j] = s
	}
}

// History copies the newest min(Len, window+lags) samples into dst
// (oldest first), growing it as needed, and returns the filled slice.
func (b *SumBank) History(dst []float64) []float64 {
	n := uint64(b.window + b.lags)
	if b.t < n {
		n = b.t
	}
	if cap(dst) < int(n) {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	mask := uint64(len(b.hist) - 1)
	start := b.t - n
	for i := range dst {
		dst[i] = b.hist[(start+uint64(i))&mask]
	}
	return dst
}

// Reset discards all state but keeps the configuration and storage.
func (b *SumBank) Reset() {
	clear(b.vals)
	clear(b.sums)
	b.t = 0
}
