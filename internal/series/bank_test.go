package series

import (
	"math"
	"testing"
)

// countBankReference mirrors a CountBank with the legacy per-lag
// structures: one SlidingCount per lag plus an IntRing history.
type countBankReference struct {
	window, lags int
	hist         *IntRing
	counts       []*SlidingCount
	zeroRun      []int
}

func newCountBankReference(window, lags int) *countBankReference {
	r := &countBankReference{
		window:  window,
		lags:    lags,
		hist:    NewIntRing(window + lags),
		counts:  make([]*SlidingCount, lags),
		zeroRun: make([]int, lags),
	}
	for i := range r.counts {
		r.counts[i] = NewSlidingCount(window)
	}
	return r
}

func (r *countBankReference) push(v int64) {
	avail := r.hist.Len()
	for m := 1; m <= r.lags && m <= avail; m++ {
		c := r.counts[m-1]
		c.Push(v != r.hist.Last(m-1))
		if c.Zero() {
			r.zeroRun[m-1]++
		} else {
			r.zeroRun[m-1] = 0
		}
	}
	r.hist.Push(v)
}

func (r *countBankReference) firstConfirmed(confirm int) int {
	for m := 1; m <= r.lags; m++ {
		if r.zeroRun[m-1] >= confirm {
			return m
		}
	}
	return 0
}

// TestCountBankMatchesSlidingCounts drives the flat bank and the legacy
// per-lag ladder through an adversarial stream (periodic phases, noise,
// phase changes) and requires identical counts, zero states, zero runs and
// candidate answers at every step.
func TestCountBankMatchesSlidingCounts(t *testing.T) {
	const window, lags = 10, 9
	b := NewCountBank(window, lags)
	ref := newCountBankReference(window, lags)
	rng := NewRNG(42)
	for i := 0; i < 600; i++ {
		var v int64
		switch {
		case i < 150:
			v = int64(i % 4)
		case i < 300:
			v = int64(rng.Intn(3))
		case i < 450:
			v = 7 // constant run: period 1
		default:
			v = int64(i % 6)
		}
		b.Push(v)
		ref.push(v)
		for m := 1; m <= lags; m++ {
			c := ref.counts[m-1]
			if got, want := b.Full(m), c.Full(); got != want {
				t.Fatalf("step %d lag %d: Full=%v, reference %v", i, m, got, want)
			}
			if got, want := b.Ones(m), c.Ones(); got != want {
				t.Fatalf("step %d lag %d: Ones=%d, reference %d", i, m, got, want)
			}
			if got, want := b.Zero(m), c.Zero(); got != want {
				t.Fatalf("step %d lag %d: Zero=%v, reference %v", i, m, got, want)
			}
			if got, want := b.ZeroRun(m), ref.zeroRun[m-1]; got != want {
				t.Fatalf("step %d lag %d: ZeroRun=%d, reference %d", i, m, got, want)
			}
		}
		for _, confirm := range []int{1, 2, 5} {
			if got, want := b.FirstConfirmed(confirm), ref.firstConfirmed(confirm); got != want {
				t.Fatalf("step %d confirm %d: candidate %d, reference %d", i, confirm, got, want)
			}
		}
	}
}

func TestCountBankHistory(t *testing.T) {
	b := NewCountBank(6, 5)
	for i := int64(0); i < 100; i++ {
		b.Push(i)
	}
	h := b.History(nil)
	if len(h) != 11 {
		t.Fatalf("history len=%d, want window+lags=11", len(h))
	}
	for i, v := range h {
		if v != int64(89+i) {
			t.Fatalf("history[%d]=%d, want %d", i, v, 89+i)
		}
	}
	// Reusing a big-enough dst must not allocate a fresh slice.
	dst := make([]int64, 0, 16)
	h2 := b.History(dst)
	if &h2[0] != &dst[:1][0] {
		t.Fatal("History did not reuse dst")
	}
}

func TestCountBankRecent(t *testing.T) {
	b := NewCountBank(6, 5)
	for i := int64(0); i < 100; i++ {
		b.Push(i)
	}
	for back := 0; back < 11; back++ { // window+lags = 11 retained
		v, ok := b.Recent(back)
		if !ok || v != int64(99-back) {
			t.Fatalf("Recent(%d) = %d,%v, want %d,true", back, v, ok, 99-back)
		}
	}
	if _, ok := b.Recent(11); ok {
		t.Error("Recent(window+lags) claimed retention beyond the ring")
	}
	if _, ok := b.Recent(-1); ok {
		t.Error("Recent(-1) accepted")
	}
	// A bank younger than its retention depth only serves what was pushed.
	y := NewCountBank(6, 5)
	y.Push(7)
	if v, ok := y.Recent(0); !ok || v != 7 {
		t.Fatalf("young Recent(0) = %d,%v, want 7,true", v, ok)
	}
	if _, ok := y.Recent(1); ok {
		t.Error("young Recent(1) claimed a sample never pushed")
	}
}

func TestCountBankReset(t *testing.T) {
	b := NewCountBank(4, 3)
	for i := 0; i < 50; i++ {
		b.Push(int64(i % 2))
	}
	if b.FirstConfirmed(1) != 2 {
		t.Fatalf("pre-reset candidate=%d, want 2", b.FirstConfirmed(1))
	}
	b.Reset()
	if b.Len() != 0 || b.FirstConfirmed(1) != 0 {
		t.Fatal("reset did not clear state")
	}
	for i := 0; i < 50; i++ {
		b.Push(int64(i % 3))
	}
	if b.FirstConfirmed(1) != 3 {
		t.Fatalf("post-reset candidate=%d, want 3", b.FirstConfirmed(1))
	}
}

// TestCountBankManyLags exercises the multi-word bitset paths (lags > 64).
func TestCountBankManyLags(t *testing.T) {
	const window, lags = 150, 149
	b := NewCountBank(window, lags)
	ref := newCountBankReference(window, lags)
	rng := NewRNG(7)
	for i := 0; i < 800; i++ {
		var v int64
		if i < 400 {
			v = int64(i % 70) // period beyond the first bitset word
		} else {
			v = int64(rng.Intn(2))
		}
		b.Push(v)
		ref.push(v)
		if got, want := b.FirstConfirmed(1), ref.firstConfirmed(1); got != want {
			t.Fatalf("step %d: candidate %d, reference %d", i, got, want)
		}
	}
	for m := 1; m <= lags; m++ {
		if got, want := b.Ones(m), ref.counts[m-1].Ones(); got != want {
			t.Fatalf("lag %d: Ones=%d, reference %d", m, got, want)
		}
	}
}

// TestSumBankMatchesSlidingSums drives the flat sum bank and the legacy
// per-lag SlidingSum ladder and requires sums to agree to float tolerance.
func TestSumBankMatchesSlidingSums(t *testing.T) {
	const window, lags = 12, 11
	b := NewSumBank(window, lags)
	hist := NewRing(window + lags)
	sums := make([]*SlidingSum, lags)
	for i := range sums {
		sums[i] = NewSlidingSum(window)
	}
	rng := NewRNG(11)
	for i := 0; i < 500; i++ {
		v := math.Floor(rng.Float64()*9) + math.Sin(float64(i)/3)
		avail := hist.Len()
		for m := 1; m <= lags && m <= avail; m++ {
			sums[m-1].Push(math.Abs(v - hist.Last(m-1)))
		}
		hist.Push(v)
		b.Push(v)
		for m := 1; m <= lags; m++ {
			if got, want := b.Full(m), sums[m-1].Full(); got != want {
				t.Fatalf("step %d lag %d: Full=%v, reference %v", i, m, got, want)
			}
			if got, want := b.Sum(m), sums[m-1].Sum(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("step %d lag %d: Sum=%v, reference %v", i, m, got, want)
			}
		}
	}
	if got, want := b.ValidLags(), lags; got != want {
		t.Fatalf("ValidLags=%d, want %d", got, want)
	}
}

func TestSumBankRecomputeFixesDrift(t *testing.T) {
	b := NewSumBank(8, 4)
	for i := 0; i < 200; i++ {
		b.Push(float64(i%5) * 1e12)
	}
	// Corrupt the running sums, then Recompute must restore them exactly
	// from the retained window values.
	want := make([]float64, b.Lags())
	copy(want, b.Sums())
	b.Sums()[2] += 123
	b.Recompute()
	for i, s := range b.Sums() {
		if math.Abs(s-want[i]) > 1e-3 {
			t.Fatalf("lag %d: recomputed sum %v, want %v", i+1, s, want[i])
		}
	}
}

func TestSumBankValidLagsWarmup(t *testing.T) {
	b := NewSumBank(5, 4)
	for i := 0; i < 20; i++ {
		wantValid := i - 5
		if wantValid < 0 {
			wantValid = 0
		}
		if wantValid > 4 {
			wantValid = 4
		}
		if got := b.ValidLags(); got != wantValid {
			t.Fatalf("after %d pushes: ValidLags=%d, want %d", i, got, wantValid)
		}
		b.Push(float64(i))
	}
}

func BenchmarkCountBankPush(b *testing.B) {
	for _, cfg := range []struct{ n, m int }{{32, 31}, {1024, 1023}} {
		b.Run(benchSize(cfg.n), func(b *testing.B) {
			bank := NewCountBank(cfg.n, cfg.m)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bank.Push(int64(i % 5))
			}
		})
	}
}

// BenchmarkCountBankVsSlidingCounts is the before/after ablation for the
// flat-bank refactor: the same lag ladder maintained by the legacy
// per-lag SlidingCount objects.
func BenchmarkCountBankVsSlidingCounts(b *testing.B) {
	const n, m = 1024, 1023
	b.Run("flat-bank", func(b *testing.B) {
		bank := NewCountBank(n, m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bank.Push(int64(i % 5))
		}
	})
	b.Run("per-lag-legacy", func(b *testing.B) {
		ref := newCountBankReference(n, m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ref.push(int64(i % 5))
		}
	})
}

func BenchmarkSumBankPush(b *testing.B) {
	bank := NewSumBank(100, 99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bank.Push(float64(i % 7))
	}
}

func benchSize(n int) string {
	switch n {
	case 32:
		return "N=32"
	case 1024:
		return "N=1024"
	default:
		return "N=?"
	}
}
