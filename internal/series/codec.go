package series

import (
	"fmt"

	"dpd/internal/wire"
)

// State codecs: every windowed structure can append its exact run-time
// state — wrap cursors, packed bitsets, accumulated sums, the sample
// clock — to a byte buffer and load it back, so a detector built on
// these structures can be checkpointed and restored to byte-identical
// subsequent behavior. The encoding is the wire idiom: uvarint scalars,
// fixed-width little-endian bulk arrays.
//
// AppendState never fails and performs no allocation when the buffer
// capacity suffices. LoadState returns the number of bytes consumed; it
// validates geometry against the receiver (the caller chooses the
// configuration; the codec only restores state), never panics, and
// never reads past the declared fields, so it is safe on hostile input.

// AppendState appends the bank's state to buf and returns the extended
// buffer. Only the newest min(Len, window+lags) history samples are
// encoded: older entries are unreachable through every accessor.
func (b *CountBank) AppendState(buf []byte) []byte {
	buf = wire.AppendUint(buf, b.window)
	buf = wire.AppendUint(buf, b.lags)
	buf = wire.AppendUvarint(buf, b.t)
	buf = wire.AppendUint(buf, b.row)
	n := histKeep(b.t, b.window+b.lags)
	mask := uint64(len(b.hist) - 1)
	start := b.t - uint64(n)
	for i := 0; i < n; i++ {
		buf = wire.AppendI64(buf, b.hist[(start+uint64(i))&mask])
	}
	buf = wire.AppendU64s(buf, b.rows)
	for _, v := range b.ones {
		buf = wire.AppendUvarint(buf, uint64(v))
	}
	buf = wire.AppendU64s(buf, b.zero)
	buf = wire.AppendU64s(buf, b.zeroAt)
	return buf
}

// LoadState restores the bank from data, returning the bytes consumed.
// The encoded geometry must match the receiver's window and lags.
func (b *CountBank) LoadState(data []byte) (int, error) {
	d := wire.NewDec(data)
	w := d.Uint(MaxDim)
	l := d.Uint(MaxDim)
	if d.Err() == nil && (w != b.window || l != b.lags) {
		return 0, fmt.Errorf("series: count bank %dx%d cannot load checkpoint of geometry %dx%d", b.window, b.lags, w, l)
	}
	t := d.Uvarint()
	row := d.Uint(b.window - 1)
	n := histKeep(t, b.window+b.lags)
	if !d.Need(8 * (n + len(b.rows) + len(b.zero) + len(b.zeroAt))) {
		return 0, fmt.Errorf("series: count bank checkpoint: %w", d.Err())
	}
	clear(b.hist)
	mask := uint64(len(b.hist) - 1)
	start := t - uint64(n)
	for i := 0; i < n; i++ {
		b.hist[(start+uint64(i))&mask] = d.I64()
	}
	d.U64s(b.rows)
	for i := range b.ones {
		b.ones[i] = int32(d.Uint(b.window))
	}
	d.U64s(b.zero)
	d.U64s(b.zeroAt)
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("series: count bank checkpoint: %w", err)
	}
	// Mask the padding bits of the last word of every packed row and of
	// the zero bitset: legitimate encodes never set them, and a set bit
	// beyond `lags` would index out of range on the next Push.
	if pad := b.lags & 63; pad != 0 {
		m := uint64(1)<<uint(pad) - 1
		for r := 0; r < b.window; r++ {
			b.rows[(r+1)*b.wpl-1] &= m
		}
		b.zero[b.wpl-1] &= m
	}
	b.t = t
	b.row = row
	return d.Offset(), nil
}

// AppendState appends the bank's state to buf and returns the extended
// buffer; see CountBank.AppendState for the retained-history contract.
func (b *SumBank) AppendState(buf []byte) []byte {
	buf = wire.AppendUint(buf, b.window)
	buf = wire.AppendUint(buf, b.lags)
	buf = wire.AppendUvarint(buf, b.t)
	n := histKeep(b.t, b.window+b.lags)
	mask := uint64(len(b.hist) - 1)
	start := b.t - uint64(n)
	for i := 0; i < n; i++ {
		buf = wire.AppendF64(buf, b.hist[(start+uint64(i))&mask])
	}
	buf = wire.AppendF64s(buf, b.vals)
	buf = wire.AppendF64s(buf, b.sums)
	return buf
}

// LoadState restores the bank from data, returning the bytes consumed.
// Sums are restored bit-exact, so subsequent incremental updates follow
// the same floating-point trajectory as the checkpointed bank.
func (b *SumBank) LoadState(data []byte) (int, error) {
	d := wire.NewDec(data)
	w := d.Uint(MaxDim)
	l := d.Uint(MaxDim)
	if d.Err() == nil && (w != b.window || l != b.lags) {
		return 0, fmt.Errorf("series: sum bank %dx%d cannot load checkpoint of geometry %dx%d", b.window, b.lags, w, l)
	}
	t := d.Uvarint()
	n := histKeep(t, b.window+b.lags)
	if !d.Need(8 * (n + len(b.vals) + len(b.sums))) {
		return 0, fmt.Errorf("series: sum bank checkpoint: %w", d.Err())
	}
	clear(b.hist)
	mask := uint64(len(b.hist) - 1)
	start := t - uint64(n)
	for i := 0; i < n; i++ {
		b.hist[(start+uint64(i))&mask] = d.F64()
	}
	d.F64s(b.vals)
	d.F64s(b.sums)
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("series: sum bank checkpoint: %w", err)
	}
	b.t = t
	return d.Offset(), nil
}

// AppendState appends the ring's state: capacity, cursor, clock, and
// the live values in logical (oldest-first) order.
func (r *Ring) AppendState(buf []byte) []byte {
	buf = wire.AppendUint(buf, len(r.buf))
	buf = wire.AppendUint(buf, r.head)
	buf = wire.AppendUint(buf, r.count)
	buf = wire.AppendUvarint(buf, r.total)
	for i := 0; i < r.count; i++ {
		buf = wire.AppendF64(buf, r.At(i))
	}
	return buf
}

// LoadState restores the ring from data, returning the bytes consumed.
// The encoded capacity must match the receiver's.
func (r *Ring) LoadState(data []byte) (int, error) {
	d := wire.NewDec(data)
	c := d.Uint(MaxDim)
	if d.Err() == nil && c != len(r.buf) {
		return 0, fmt.Errorf("series: ring of capacity %d cannot load checkpoint of capacity %d", len(r.buf), c)
	}
	head := d.Uint(len(r.buf) - 1)
	count := d.Uint(len(r.buf))
	total := d.Uvarint()
	if !d.Need(8 * count) {
		return 0, fmt.Errorf("series: ring checkpoint: %w", d.Err())
	}
	clear(r.buf)
	for i := 0; i < count; i++ {
		idx := head + i
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		r.buf[idx] = d.F64()
	}
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("series: ring checkpoint: %w", err)
	}
	r.head = head
	r.count = count
	r.total = total
	return d.Offset(), nil
}

// AppendState appends the ring's state; see Ring.AppendState.
func (r *IntRing) AppendState(buf []byte) []byte {
	buf = wire.AppendUint(buf, len(r.buf))
	buf = wire.AppendUint(buf, r.head)
	buf = wire.AppendUint(buf, r.count)
	buf = wire.AppendUvarint(buf, r.total)
	for i := 0; i < r.count; i++ {
		buf = wire.AppendI64(buf, r.At(i))
	}
	return buf
}

// LoadState restores the ring from data; see Ring.LoadState.
func (r *IntRing) LoadState(data []byte) (int, error) {
	d := wire.NewDec(data)
	c := d.Uint(MaxDim)
	if d.Err() == nil && c != len(r.buf) {
		return 0, fmt.Errorf("series: int ring of capacity %d cannot load checkpoint of capacity %d", len(r.buf), c)
	}
	head := d.Uint(len(r.buf) - 1)
	count := d.Uint(len(r.buf))
	total := d.Uvarint()
	if !d.Need(8 * count) {
		return 0, fmt.Errorf("series: int ring checkpoint: %w", d.Err())
	}
	clear(r.buf)
	for i := 0; i < count; i++ {
		idx := head + i
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		r.buf[idx] = d.I64()
	}
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("series: int ring checkpoint: %w", err)
	}
	r.head = head
	r.count = count
	r.total = total
	return d.Offset(), nil
}

// AppendState appends the counter's state: window, cursor, and the
// valid mismatch bits packed 8 per byte in logical order.
func (s *SlidingCount) AppendState(buf []byte) []byte {
	buf = wire.AppendUint(buf, len(s.bits))
	buf = wire.AppendUint(buf, s.head)
	buf = wire.AppendUint(buf, s.count)
	var acc uint8
	for i := 0; i < s.count; i++ {
		idx := s.head + i
		if idx >= len(s.bits) {
			idx -= len(s.bits)
		}
		acc |= s.bits[idx] << uint(i&7)
		if i&7 == 7 {
			buf = wire.AppendU8(buf, acc)
			acc = 0
		}
	}
	if s.count&7 != 0 {
		buf = wire.AppendU8(buf, acc)
	}
	return buf
}

// LoadState restores the counter from data, returning the bytes
// consumed. The mismatch total is recomputed from the restored bits, so
// the loaded state is internally consistent by construction.
func (s *SlidingCount) LoadState(data []byte) (int, error) {
	d := wire.NewDec(data)
	w := d.Uint(MaxDim)
	if d.Err() == nil && w != len(s.bits) {
		return 0, fmt.Errorf("series: sliding count of window %d cannot load checkpoint of window %d", len(s.bits), w)
	}
	head := d.Uint(len(s.bits) - 1)
	count := d.Uint(len(s.bits))
	packed := d.Bytes((count + 7) / 8)
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("series: sliding count checkpoint: %w", err)
	}
	clear(s.bits)
	ones := 0
	for i := 0; i < count; i++ {
		b := packed[i>>3] >> uint(i&7) & 1
		idx := head + i
		if idx >= len(s.bits) {
			idx -= len(s.bits)
		}
		s.bits[idx] = b
		ones += int(b)
	}
	s.head = head
	s.count = count
	s.ones = ones
	return d.Offset(), nil
}

// AppendState appends the average's state: the observation count and
// the exact bits of the current value (alpha is configuration).
func (e *EWMA) AppendState(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, e.n)
	return wire.AppendF64(buf, e.value)
}

// LoadState restores the average from data, returning the bytes
// consumed.
func (e *EWMA) LoadState(data []byte) (int, error) {
	d := wire.NewDec(data)
	n := d.Uvarint()
	v := d.F64()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("series: ewma checkpoint: %w", err)
	}
	e.n = n
	e.value = v
	return d.Offset(), nil
}

// MaxDim bounds every decoded geometry field (window sizes, lag counts,
// ring capacities) so a corrupted checkpoint cannot demand an absurd
// allocation or loop bound; it comfortably exceeds the largest legal
// detector window.
const MaxDim = 1 << 20

// histKeep returns how many of the newest history samples are encoded:
// the retained reach of the ring, capped by the sample clock.
func histKeep(t uint64, reach int) int {
	if t < uint64(reach) {
		return int(t)
	}
	return reach
}
