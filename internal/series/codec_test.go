package series

import (
	"math"
	"testing"
)

// TestCountBankStateRoundTrip: a restored bank must report identical
// query results AND produce identical behavior on every subsequent push
// — including wrap-cursor position, zero-run ages and window fills.
func TestCountBankStateRoundTrip(t *testing.T) {
	for _, warm := range []int{0, 1, 7, 40, 97, 300} {
		a := NewCountBank(40, 39)
		for i := 0; i < warm; i++ {
			a.Push(int64(i % 6))
		}
		buf := a.AppendState(nil)
		b := NewCountBank(40, 39)
		n, err := b.LoadState(buf)
		if err != nil {
			t.Fatalf("warm=%d: LoadState: %v", warm, err)
		}
		if n != len(buf) {
			t.Fatalf("warm=%d: consumed %d of %d bytes", warm, n, len(buf))
		}
		for i := 0; i < 200; i++ {
			v := int64((i + warm) % 6)
			a.Push(v)
			b.Push(v)
			for m := 1; m <= 39; m++ {
				if a.Zero(m) != b.Zero(m) || a.ZeroRun(m) != b.ZeroRun(m) || a.Ones(m) != b.Ones(m) || a.Full(m) != b.Full(m) {
					t.Fatalf("warm=%d push=%d lag=%d: restored bank diverged (zero %v/%v run %d/%d ones %d/%d)",
						warm, i, m, a.Zero(m), b.Zero(m), a.ZeroRun(m), b.ZeroRun(m), a.Ones(m), b.Ones(m))
				}
			}
			if a.FirstConfirmed(3) != b.FirstConfirmed(3) {
				t.Fatalf("warm=%d push=%d: FirstConfirmed diverged", warm, i)
			}
		}
	}
}

// TestCountBankStateGeometryMismatch: loading into a differently shaped
// bank must error descriptively, not corrupt state.
func TestCountBankStateGeometryMismatch(t *testing.T) {
	a := NewCountBank(32, 31)
	buf := a.AppendState(nil)
	b := NewCountBank(64, 63)
	if _, err := b.LoadState(buf); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestCountBankStateTruncated: every prefix of a valid encoding must be
// rejected without panicking.
func TestCountBankStateTruncated(t *testing.T) {
	a := NewCountBank(16, 15)
	for i := 0; i < 100; i++ {
		a.Push(int64(i % 4))
	}
	buf := a.AppendState(nil)
	for cut := 0; cut < len(buf); cut += 7 {
		b := NewCountBank(16, 15)
		if _, err := b.LoadState(buf[:cut]); err == nil {
			t.Fatalf("cut=%d: truncated state accepted", cut)
		}
	}
}

// TestCountBankStateHostilePaddingBits: an encoding whose packed rows /
// zero bitset have bits set beyond the lag count must not cause
// out-of-range lag indexes on subsequent pushes.
func TestCountBankStateHostilePaddingBits(t *testing.T) {
	a := NewCountBank(8, 7) // lags 7 → one word with 57 padding bits
	for i := 0; i < 50; i++ {
		a.Push(int64(i % 3))
	}
	buf := a.AppendState(nil)
	// Corrupt: set high bits in every trailing row word and the zero set.
	// Word layout: window,lags,t,row are varints ≤ 2 bytes each here; we
	// just flip high bytes across the fixed-width tail, which covers the
	// rows and bitset regions.
	for i := len(buf) - 8*10; i < len(buf); i += 3 {
		if i >= 0 {
			buf[i] |= 0xF0
		}
	}
	b := NewCountBank(8, 7)
	if _, err := b.LoadState(buf); err != nil {
		return // rejected outright is fine too
	}
	for i := 0; i < 200; i++ { // must not panic
		b.Push(int64(i % 5))
		b.FirstConfirmed(1)
	}
}

// TestSumBankStateRoundTrip: restored sums must be bit-exact so the
// subsequent incremental float trajectory is identical.
func TestSumBankStateRoundTrip(t *testing.T) {
	for _, warm := range []int{0, 3, 25, 120} {
		a := NewSumBank(24, 23)
		for i := 0; i < warm; i++ {
			a.Push(math.Sin(float64(i)) * 100)
		}
		buf := a.AppendState(nil)
		b := NewSumBank(24, 23)
		if _, err := b.LoadState(buf); err != nil {
			t.Fatalf("warm=%d: %v", warm, err)
		}
		for i := 0; i < 150; i++ {
			v := math.Sin(float64(i+warm)) * 100
			a.Push(v)
			b.Push(v)
			for m := 1; m <= 23; m++ {
				if math.Float64bits(a.Sum(m)) != math.Float64bits(b.Sum(m)) {
					t.Fatalf("warm=%d push=%d lag=%d: sum %g != %g (not bit-exact)", warm, i, m, a.Sum(m), b.Sum(m))
				}
			}
			if a.ValidLags() != b.ValidLags() {
				t.Fatalf("warm=%d push=%d: ValidLags diverged", warm, i)
			}
		}
	}
}

func TestRingStateRoundTrip(t *testing.T) {
	for _, warm := range []int{0, 2, 5, 13} {
		a := NewRing(5)
		for i := 0; i < warm; i++ {
			a.Push(float64(i) * 1.5)
		}
		buf := a.AppendState(nil)
		b := NewRing(5)
		n, err := b.LoadState(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("warm=%d: n=%d err=%v", warm, n, err)
		}
		if a.Len() != b.Len() || a.Total() != b.Total() {
			t.Fatalf("warm=%d: Len/Total diverged", warm)
		}
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("warm=%d: At(%d) %g != %g", warm, i, a.At(i), b.At(i))
			}
		}
		a.Push(99)
		b.Push(99)
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("warm=%d: post-push At(%d) diverged", warm, i)
			}
		}
	}
}

func TestIntRingStateRoundTrip(t *testing.T) {
	a := NewIntRing(4)
	for i := 0; i < 11; i++ {
		a.Push(int64(-i * 3))
	}
	buf := a.AppendState(nil)
	b := NewIntRing(4)
	if _, err := b.LoadState(buf); err != nil {
		t.Fatal(err)
	}
	a.Push(7)
	b.Push(7)
	if a.Len() != b.Len() || a.Total() != b.Total() {
		t.Fatal("Len/Total diverged")
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("At(%d): %d != %d", i, a.At(i), b.At(i))
		}
	}
}

func TestSlidingCountStateRoundTrip(t *testing.T) {
	for _, warm := range []int{0, 3, 10, 27} {
		a := NewSlidingCount(10)
		for i := 0; i < warm; i++ {
			a.Push(i%3 == 0)
		}
		buf := a.AppendState(nil)
		b := NewSlidingCount(10)
		if _, err := b.LoadState(buf); err != nil {
			t.Fatalf("warm=%d: %v", warm, err)
		}
		for i := 0; i < 40; i++ {
			ga := a.Push((i+warm)%4 == 0)
			gb := b.Push((i+warm)%4 == 0)
			if ga != gb || a.Zero() != b.Zero() || a.Full() != b.Full() {
				t.Fatalf("warm=%d push=%d: diverged (ones %d/%d)", warm, i, ga, gb)
			}
		}
	}
}

// TestRingStateCapacityMismatch mirrors the bank geometry check for
// rings and sliding counts.
func TestRingStateCapacityMismatch(t *testing.T) {
	buf := NewRing(5).AppendState(nil)
	if _, err := NewRing(6).LoadState(buf); err == nil {
		t.Fatal("ring capacity mismatch accepted")
	}
	ibuf := NewIntRing(5).AppendState(nil)
	if _, err := NewIntRing(4).LoadState(ibuf); err == nil {
		t.Fatal("int ring capacity mismatch accepted")
	}
	sbuf := NewSlidingCount(8).AppendState(nil)
	if _, err := NewSlidingCount(9).LoadState(sbuf); err == nil {
		t.Fatal("sliding count window mismatch accepted")
	}
}
