package series

import (
	"fmt"
	"math"
)

// RNG is a small deterministic xorshift64* generator. The evaluation must
// be exactly reproducible across runs and platforms, so nothing in this
// repository uses math/rand's global state.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. A zero seed is remapped to a fixed odd constant
// because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("series: Intn bound must be positive, got %d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns an approximately standard-normal value (Irwin–Hall with 12
// uniforms; exact enough for synthetic noise injection).
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Generator produces one sample per call. Generators are the synthetic
// data-stream sources used throughout the tests and benchmarks.
type Generator interface {
	// Next returns the next sample in the stream.
	Next() float64
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func() float64

// Next calls the underlying function.
func (f GeneratorFunc) Next() float64 { return f() }

// Take draws n samples from g into a new slice.
func Take(g Generator, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// PatternGenerator cycles through a fixed pattern forever, producing an
// exactly periodic stream whose period is len(pattern) (or a divisor of it
// if the pattern itself repeats internally).
type PatternGenerator struct {
	pattern []float64
	pos     int
}

// NewPatternGenerator returns a generator cycling over pattern.
// It panics on an empty pattern.
func NewPatternGenerator(pattern []float64) *PatternGenerator {
	if len(pattern) == 0 {
		panic("series: empty pattern")
	}
	p := make([]float64, len(pattern))
	copy(p, pattern)
	return &PatternGenerator{pattern: p}
}

// Next returns the next sample of the cycle.
func (g *PatternGenerator) Next() float64 {
	v := g.pattern[g.pos]
	g.pos = (g.pos + 1) % len(g.pattern)
	return v
}

// Phase returns the current position inside the pattern.
func (g *PatternGenerator) Phase() int { return g.pos }

// Sine returns a generator for A*sin(2π t/period) sampled at t = 0,1,2,...
func Sine(amplitude, period float64) Generator {
	t := 0.0
	return GeneratorFunc(func() float64 {
		v := amplitude * math.Sin(2*math.Pi*t/period)
		t++
		return v
	})
}

// Square returns a generator alternating high for `high` samples then low
// for `low` samples, forever. Period is high+low. This is the shape of a
// CPU-usage trace of a fork/join region: parallelism opens (high) and
// closes (low).
func Square(highValue, lowValue float64, high, low int) Generator {
	if high <= 0 || low <= 0 {
		panic(fmt.Sprintf("series: square wave segments must be positive, got %d/%d", high, low))
	}
	pos := 0
	period := high + low
	return GeneratorFunc(func() float64 {
		v := lowValue
		if pos < high {
			v = highValue
		}
		pos = (pos + 1) % period
		return v
	})
}

// Sawtooth returns a generator ramping 0,1,...,period-1 and repeating.
func Sawtooth(period int) Generator {
	if period <= 0 {
		panic(fmt.Sprintf("series: sawtooth period must be positive, got %d", period))
	}
	pos := 0
	return GeneratorFunc(func() float64 {
		v := float64(pos)
		pos = (pos + 1) % period
		return v
	})
}

// Constant returns a generator that always yields v (period 1).
func Constant(v float64) Generator {
	return GeneratorFunc(func() float64 { return v })
}

// WithNoise wraps g, adding zero-mean noise of the given standard deviation
// drawn from rng. Used to test eq. (1)'s local-minimum detection on
// imperfectly repeating streams (the paper's Figure 3 trace is of this
// kind: "the pattern of CPU use is not exactly the same").
func WithNoise(g Generator, stddev float64, rng *RNG) Generator {
	return GeneratorFunc(func() float64 {
		return g.Next() + stddev*rng.Norm()
	})
}

// Concat returns a generator that yields counts[i] samples from gens[i] in
// order, then keeps yielding from the last generator forever. It models
// program phases: an initialization phase followed by an iterative phase.
func Concat(gens []Generator, counts []int) Generator {
	if len(gens) == 0 || len(gens) != len(counts) {
		panic("series: Concat requires equal non-empty gens and counts")
	}
	idx, used := 0, 0
	return GeneratorFunc(func() float64 {
		for idx < len(gens)-1 && used >= counts[idx] {
			idx++
			used = 0
		}
		used++
		return gens[idx].Next()
	})
}

// Nested builds an event pattern with nested iteration structure:
// the inner pattern repeated `reps` times, prefixed by `header` and
// suffixed by `footer`. Cycling the result yields a stream with an inner
// periodicity of len(inner) and an outer periodicity of
// len(header) + reps*len(inner) + len(footer) — the hydro2d/turb3d shape
// from Table 2 of the paper.
func Nested(header, inner, footer []float64, reps int) []float64 {
	if reps < 0 {
		panic(fmt.Sprintf("series: negative reps %d", reps))
	}
	out := make([]float64, 0, len(header)+reps*len(inner)+len(footer))
	out = append(out, header...)
	for i := 0; i < reps; i++ {
		out = append(out, inner...)
	}
	out = append(out, footer...)
	return out
}

// IntPattern converts an int64 pattern to float64 for generators that feed
// the magnitude-metric detector in tests.
func IntPattern(vals []int64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(v)
	}
	return out
}

// Repeat returns the pattern repeated n times into a fresh slice.
func Repeat(pattern []float64, n int) []float64 {
	out := make([]float64, 0, len(pattern)*n)
	for i := 0; i < n; i++ {
		out = append(out, pattern...)
	}
	return out
}

// RepeatInt returns the integer pattern repeated n times.
func RepeatInt(pattern []int64, n int) []int64 {
	out := make([]int64, 0, len(pattern)*n)
	for i := 0; i < n; i++ {
		out = append(out, pattern...)
	}
	return out
}
