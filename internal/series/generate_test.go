package series

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64=%v outside [0,1)", v)
		}
	}
}

func TestRNGIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13)=%d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGNormRoughMoments(t *testing.T) {
	r := NewRNG(42)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Norm mean=%v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("Norm variance=%v, want ~1", variance)
	}
}

func TestPatternGeneratorCycles(t *testing.T) {
	g := NewPatternGenerator([]float64{10, 20, 30})
	got := Take(g, 7)
	want := []float64{10, 20, 30, 10, 20, 30, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Take[%d]=%v, want %v", i, got[i], want[i])
		}
	}
	if g.Phase() != 1 {
		t.Errorf("Phase=%d, want 1", g.Phase())
	}
}

func TestPatternGeneratorCopiesInput(t *testing.T) {
	p := []float64{1, 2}
	g := NewPatternGenerator(p)
	p[0] = 99
	if g.Next() != 1 {
		t.Fatal("generator aliased caller's slice")
	}
}

func TestPatternGeneratorStreamIsPeriodic(t *testing.T) {
	g := NewPatternGenerator([]float64{3, 1, 4, 1, 5})
	xs := Take(g, 50)
	if !IsPeriodic(xs, 5) {
		t.Fatal("pattern stream not 5-periodic")
	}
	if FundamentalPeriod(xs, 10) != 5 {
		t.Fatalf("fundamental=%d, want 5", FundamentalPeriod(xs, 10))
	}
}

func TestSinePeriodicity(t *testing.T) {
	g := Sine(2, 25)
	xs := Take(g, 100)
	// Sampled sine with integer period is exactly periodic up to float noise.
	for i := 25; i < len(xs); i++ {
		if math.Abs(xs[i]-xs[i-25]) > 1e-9 {
			t.Fatalf("sine not 25-periodic at %d: %v vs %v", i, xs[i], xs[i-25])
		}
	}
}

func TestSquareShape(t *testing.T) {
	g := Square(16, 1, 3, 2)
	got := Take(g, 10)
	want := []float64{16, 16, 16, 1, 1, 16, 16, 16, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("square[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestSquarePeriodEqualsHighPlusLow(t *testing.T) {
	g := Square(8, 0, 30, 14)
	xs := Take(g, 200)
	if FundamentalPeriod(xs, 100) != 44 {
		t.Fatalf("square period=%d, want 44", FundamentalPeriod(xs, 100))
	}
}

func TestSquarePanicsOnBadSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Square with zero segment did not panic")
		}
	}()
	Square(1, 0, 0, 3)
}

func TestSawtooth(t *testing.T) {
	g := Sawtooth(4)
	got := Take(g, 9)
	want := []float64{0, 1, 2, 3, 0, 1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("saw[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestConstantHasPeriodOne(t *testing.T) {
	xs := Take(Constant(5), 20)
	if FundamentalPeriod(xs, 5) != 1 {
		t.Fatalf("constant fundamental=%d, want 1", FundamentalPeriod(xs, 5))
	}
}

func TestWithNoisePreservesMean(t *testing.T) {
	rng := NewRNG(11)
	g := WithNoise(Constant(10), 0.5, rng)
	xs := Take(g, 5000)
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Fatalf("noisy mean=%v, want ~10", m)
	}
}

func TestWithNoiseZeroStddevIsIdentity(t *testing.T) {
	rng := NewRNG(1)
	g := WithNoise(Sawtooth(3), 0, rng)
	xs := Take(g, 12)
	if !IsPeriodic(xs, 3) {
		t.Fatal("zero-noise wrapper broke periodicity")
	}
}

func TestConcatPhases(t *testing.T) {
	g := Concat(
		[]Generator{Constant(1), Constant(2), Constant(3)},
		[]int{2, 3, 1},
	)
	got := Take(g, 8)
	want := []float64{1, 1, 2, 2, 2, 3, 3, 3} // last generator continues
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concat[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestConcatPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Concat did not panic")
		}
	}()
	Concat([]Generator{Constant(1)}, []int{1, 2})
}

func TestNestedShape(t *testing.T) {
	out := Nested([]float64{9}, []float64{1, 2}, []float64{8, 8}, 3)
	want := []float64{9, 1, 2, 1, 2, 1, 2, 8, 8}
	if len(out) != len(want) {
		t.Fatalf("len=%d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("nested[%d]=%v, want %v", i, out[i], want[i])
		}
	}
}

func TestNestedOuterPeriod(t *testing.T) {
	// Cycling a nested pattern gives outer period = total pattern length.
	pat := Nested([]float64{100}, []float64{1, 2, 3}, nil, 4) // len 13
	g := NewPatternGenerator(pat)
	xs := Take(g, 130)
	if p := FundamentalPeriodInt(toInt(xs), 20); p != 13 {
		t.Fatalf("outer period=%d, want 13", p)
	}
}

func toInt(xs []float64) []int64 {
	out := make([]int64, len(xs))
	for i, v := range xs {
		out[i] = int64(v)
	}
	return out
}

func TestRepeatAndRepeatInt(t *testing.T) {
	if got := Repeat([]float64{1, 2}, 3); len(got) != 6 || got[5] != 2 {
		t.Fatalf("Repeat=%v", got)
	}
	if got := RepeatInt([]int64{7}, 4); len(got) != 4 || got[0] != 7 {
		t.Fatalf("RepeatInt=%v", got)
	}
	if got := Repeat([]float64{1}, 0); len(got) != 0 {
		t.Fatalf("Repeat n=0 gave %v", got)
	}
}

func TestIntPattern(t *testing.T) {
	got := IntPattern([]int64{-1, 0, 5})
	want := []float64{-1, 0, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IntPattern[%d]=%v", i, got[i])
		}
	}
}

// Property: any pattern cycled long enough has fundamental period dividing
// the pattern length.
func TestPatternPropertyFundamentalDividesLength(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		pat := make([]float64, len(raw))
		for i, v := range raw {
			pat[i] = float64(v % 4)
		}
		g := NewPatternGenerator(pat)
		xs := Take(g, 6*len(pat))
		p := FundamentalPeriod(xs, len(pat))
		return p >= 1 && len(pat)%p == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
