// Package series provides the low-level data-series plumbing the DPD is
// built on: fixed-capacity ring buffers, incrementally maintained sliding
// window accumulators, deterministic synthetic signal generators, and
// small-sample statistics.
//
// Everything in this package is allocation-free on the hot path: the DPD
// processes one sample per intercepted runtime event, so per-sample cost
// must stay O(window) worst case with zero garbage.
package series

import "fmt"

// Ring is a fixed-capacity FIFO ring buffer of float64 samples.
// Once full, pushing a new sample evicts the oldest one.
//
// Index 0 always refers to the oldest retained sample and Len()-1 to the
// newest, regardless of where the physical write cursor is.
type Ring struct {
	buf   []float64
	head  int // physical index of the oldest element
	count int // number of valid elements
	total uint64
}

// NewRing returns a ring buffer holding at most capacity samples.
// It panics if capacity is not positive, since a zero-capacity ring can
// never hold a sample and indicates a configuration bug.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("series: ring capacity must be positive, got %d", capacity))
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Cap returns the fixed capacity of the ring.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of samples currently stored (<= Cap).
func (r *Ring) Len() int { return r.count }

// Total returns the number of samples ever pushed, including evicted ones.
func (r *Ring) Total() uint64 { return r.total }

// Full reports whether the ring has reached capacity.
func (r *Ring) Full() bool { return r.count == len(r.buf) }

// Push appends a sample, evicting the oldest if the ring is full.
// It returns the evicted sample and whether an eviction happened.
// Indexing is modulo-free: cursors advance with a conditional wrap.
func (r *Ring) Push(v float64) (evicted float64, wasFull bool) {
	r.total++
	if r.count < len(r.buf) {
		idx := r.head + r.count
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		r.buf[idx] = v
		r.count++
		return 0, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	return evicted, true
}

// At returns the sample at logical index i (0 = oldest, Len()-1 = newest).
// It panics on out-of-range access; the DPD indexes only within bounds it
// itself maintains, so a violation is a programming error.
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("series: ring index %d out of range [0,%d)", i, r.count))
	}
	idx := r.head + i
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	return r.buf[idx]
}

// Last returns the sample pushed k steps ago; Last(0) is the newest sample.
// It panics if fewer than k+1 samples are stored.
func (r *Ring) Last(k int) float64 {
	return r.At(r.count - 1 - k)
}

// Newest returns the most recently pushed sample.
func (r *Ring) Newest() float64 { return r.Last(0) }

// Oldest returns the oldest retained sample.
func (r *Ring) Oldest() float64 { return r.At(0) }

// Reset discards all samples but keeps the capacity.
func (r *Ring) Reset() {
	r.head = 0
	r.count = 0
	r.total = 0
}

// Resize changes the ring capacity, retaining the newest min(Len, capacity)
// samples. The Total counter is preserved. It panics if capacity <= 0.
func (r *Ring) Resize(capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("series: ring capacity must be positive, got %d", capacity))
	}
	if capacity == len(r.buf) {
		return
	}
	keep := r.count
	if keep > capacity {
		keep = capacity
	}
	nb := make([]float64, capacity)
	// Copy the newest `keep` samples in logical order.
	for i := 0; i < keep; i++ {
		nb[i] = r.At(r.count - keep + i)
	}
	r.buf = nb
	r.head = 0
	r.count = keep
}

// Snapshot copies the logical contents (oldest first) into dst, growing it
// as needed, and returns the filled slice. A nil dst allocates.
func (r *Ring) Snapshot(dst []float64) []float64 {
	if cap(dst) < r.count {
		dst = make([]float64, r.count)
	}
	dst = dst[:r.count]
	for i := 0; i < r.count; i++ {
		dst[i] = r.At(i)
	}
	return dst
}

// IntRing is a fixed-capacity FIFO ring buffer of int64 samples, used for
// event streams (loop addresses, message tags) where exact integer equality
// matters and float rounding must not.
type IntRing struct {
	buf   []int64
	head  int
	count int
	total uint64
}

// NewIntRing returns an integer ring buffer holding at most capacity samples.
func NewIntRing(capacity int) *IntRing {
	if capacity <= 0 {
		panic(fmt.Sprintf("series: ring capacity must be positive, got %d", capacity))
	}
	return &IntRing{buf: make([]int64, capacity)}
}

// Cap returns the fixed capacity of the ring.
func (r *IntRing) Cap() int { return len(r.buf) }

// Len returns the number of samples currently stored.
func (r *IntRing) Len() int { return r.count }

// Total returns the number of samples ever pushed.
func (r *IntRing) Total() uint64 { return r.total }

// Full reports whether the ring has reached capacity.
func (r *IntRing) Full() bool { return r.count == len(r.buf) }

// Push appends a sample, evicting the oldest if full.
// Indexing is modulo-free: cursors advance with a conditional wrap.
func (r *IntRing) Push(v int64) (evicted int64, wasFull bool) {
	r.total++
	if r.count < len(r.buf) {
		idx := r.head + r.count
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		r.buf[idx] = v
		r.count++
		return 0, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = v
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	return evicted, true
}

// At returns the sample at logical index i (0 = oldest).
func (r *IntRing) At(i int) int64 {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("series: ring index %d out of range [0,%d)", i, r.count))
	}
	idx := r.head + i
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	return r.buf[idx]
}

// Last returns the sample pushed k steps ago; Last(0) is the newest.
func (r *IntRing) Last(k int) int64 {
	return r.At(r.count - 1 - k)
}

// Reset discards all samples but keeps the capacity.
func (r *IntRing) Reset() {
	r.head = 0
	r.count = 0
	r.total = 0
}

// Resize changes capacity, retaining the newest samples.
func (r *IntRing) Resize(capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("series: ring capacity must be positive, got %d", capacity))
	}
	if capacity == len(r.buf) {
		return
	}
	keep := r.count
	if keep > capacity {
		keep = capacity
	}
	nb := make([]int64, capacity)
	for i := 0; i < keep; i++ {
		nb[i] = r.At(r.count - keep + i)
	}
	r.buf = nb
	r.head = 0
	r.count = keep
}

// Snapshot copies the logical contents (oldest first) into dst.
func (r *IntRing) Snapshot(dst []int64) []int64 {
	if cap(dst) < r.count {
		dst = make([]int64, r.count)
	}
	dst = dst[:r.count]
	for i := 0; i < r.count; i++ {
		dst[i] = r.At(i)
	}
	return dst
}
