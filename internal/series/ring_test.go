package series

import (
	"testing"
	"testing/quick"
)

func TestRingPushBelowCapacity(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		_, wasFull := r.Push(float64(i))
		if wasFull {
			t.Fatalf("push %d reported eviction before capacity", i)
		}
	}
	if r.Len() != 3 || r.Full() {
		t.Fatalf("Len=%d Full=%v, want 3,false", r.Len(), r.Full())
	}
}

func TestRingEvictionOrder(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 3; i++ {
		r.Push(float64(i))
	}
	evicted, wasFull := r.Push(99)
	if !wasFull || evicted != 0 {
		t.Fatalf("got evicted=%v wasFull=%v, want 0,true", evicted, wasFull)
	}
	want := []float64{1, 2, 99}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Errorf("At(%d)=%v, want %v", i, got, w)
		}
	}
}

func TestRingFIFOOrderLong(t *testing.T) {
	r := NewRing(7)
	for i := 0; i < 100; i++ {
		r.Push(float64(i))
	}
	// Ring must hold exactly the last 7 values in order.
	for i := 0; i < 7; i++ {
		want := float64(100 - 7 + i)
		if got := r.At(i); got != want {
			t.Errorf("At(%d)=%v, want %v", i, got, want)
		}
	}
	if r.Newest() != 99 || r.Oldest() != 93 {
		t.Errorf("Newest=%v Oldest=%v, want 99, 93", r.Newest(), r.Oldest())
	}
}

func TestRingLast(t *testing.T) {
	r := NewRing(5)
	for i := 0; i < 5; i++ {
		r.Push(float64(i * 10))
	}
	for k := 0; k < 5; k++ {
		want := float64((4 - k) * 10)
		if got := r.Last(k); got != want {
			t.Errorf("Last(%d)=%v, want %v", k, got, want)
		}
	}
}

func TestRingTotalCountsEvicted(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 9; i++ {
		r.Push(1)
	}
	if r.Total() != 9 {
		t.Fatalf("Total=%d, want 9", r.Total())
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(3)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("after Reset Len=%d Total=%d", r.Len(), r.Total())
	}
	r.Push(7)
	if r.At(0) != 7 {
		t.Fatalf("push after reset: At(0)=%v", r.At(0))
	}
}

func TestRingResizeShrinkKeepsNewest(t *testing.T) {
	r := NewRing(6)
	for i := 0; i < 6; i++ {
		r.Push(float64(i))
	}
	r.Resize(3)
	if r.Cap() != 3 || r.Len() != 3 {
		t.Fatalf("Cap=%d Len=%d, want 3,3", r.Cap(), r.Len())
	}
	for i := 0; i < 3; i++ {
		if got, want := r.At(i), float64(3+i); got != want {
			t.Errorf("At(%d)=%v, want %v", i, got, want)
		}
	}
}

func TestRingResizeGrowKeepsAll(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ { // wraps
		r.Push(float64(i))
	}
	r.Resize(8)
	if r.Len() != 3 {
		t.Fatalf("Len=%d, want 3", r.Len())
	}
	for i, want := range []float64{2, 3, 4} {
		if got := r.At(i); got != want {
			t.Errorf("At(%d)=%v, want %v", i, got, want)
		}
	}
	// And it can now fill to the new capacity.
	for i := 0; i < 5; i++ {
		r.Push(100 + float64(i))
	}
	if !r.Full() || r.Oldest() != 2 {
		t.Errorf("after growth Full=%v Oldest=%v", r.Full(), r.Oldest())
	}
}

func TestRingResizeNoopSameCapacity(t *testing.T) {
	r := NewRing(4)
	r.Push(1)
	r.Resize(4)
	if r.Len() != 1 || r.At(0) != 1 {
		t.Fatalf("noop resize lost data: Len=%d", r.Len())
	}
}

func TestRingSnapshot(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Push(float64(i))
	}
	got := r.Snapshot(nil)
	want := []float64{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("snapshot len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("snapshot[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestRingSnapshotReusesBuffer(t *testing.T) {
	r := NewRing(3)
	r.Push(1)
	r.Push(2)
	buf := make([]float64, 0, 8)
	got := r.Snapshot(buf)
	if len(got) != 2 || cap(got) != 8 {
		t.Fatalf("len=%d cap=%d, want len 2 in caller's buffer", len(got), cap(got))
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestRingPanicsOnBadIndex(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At(1) on 1-element ring did not panic")
		}
	}()
	r.At(1)
}

// Property: a ring of capacity c fed any sequence retains exactly the last
// min(len, c) values in order.
func TestRingPropertyRetainsSuffix(t *testing.T) {
	f := func(vals []float64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing(capacity)
		for _, v := range vals {
			r.Push(v)
		}
		n := len(vals)
		keep := n
		if keep > capacity {
			keep = capacity
		}
		if r.Len() != keep {
			return false
		}
		for i := 0; i < keep; i++ {
			if r.At(i) != vals[n-keep+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Resize never loses the newest min(Len, newCap) elements.
func TestRingPropertyResizePreservesNewest(t *testing.T) {
	f := func(vals []float64, c1Raw, c2Raw uint8) bool {
		c1 := int(c1Raw%16) + 1
		c2 := int(c2Raw%16) + 1
		r := NewRing(c1)
		for _, v := range vals {
			r.Push(v)
		}
		before := r.Snapshot(nil)
		r.Resize(c2)
		keep := len(before)
		if keep > c2 {
			keep = c2
		}
		after := r.Snapshot(nil)
		if len(after) != keep {
			return false
		}
		for i := 0; i < keep; i++ {
			if after[i] != before[len(before)-keep+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntRingBasics(t *testing.T) {
	r := NewIntRing(3)
	for i := int64(0); i < 5; i++ {
		r.Push(i)
	}
	if r.Len() != 3 || !r.Full() {
		t.Fatalf("Len=%d Full=%v", r.Len(), r.Full())
	}
	for i, want := range []int64{2, 3, 4} {
		if got := r.At(i); got != want {
			t.Errorf("At(%d)=%d, want %d", i, got, want)
		}
	}
	if r.Last(0) != 4 || r.Last(2) != 2 {
		t.Errorf("Last(0)=%d Last(2)=%d", r.Last(0), r.Last(2))
	}
}

func TestIntRingResizeAndSnapshot(t *testing.T) {
	r := NewIntRing(5)
	for i := int64(0); i < 9; i++ {
		r.Push(i)
	}
	r.Resize(2)
	got := r.Snapshot(nil)
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("snapshot=%v, want [7 8]", got)
	}
}

func TestIntRingReset(t *testing.T) {
	r := NewIntRing(2)
	r.Push(1)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("Len=%d Total=%d after reset", r.Len(), r.Total())
	}
}

func TestIntRingPropertyMatchesFloatRing(t *testing.T) {
	f := func(vals []int64, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		ir := NewIntRing(capacity)
		fr := NewRing(capacity)
		for _, v := range vals {
			ir.Push(v)
			fr.Push(float64(v))
		}
		if ir.Len() != fr.Len() {
			return false
		}
		for i := 0; i < ir.Len(); i++ {
			if float64(ir.At(i)) != fr.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRingPush(b *testing.B) {
	r := NewRing(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(float64(i))
	}
}

func BenchmarkIntRingPush(b *testing.B) {
	r := NewIntRing(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(int64(i))
	}
}
